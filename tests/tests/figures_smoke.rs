//! Smoke tests over the figure harnesses: every experiment must run and
//! produce the paper's qualitative shape at reduced size.

use hulkv::{MemorySetup, SocConfig};
use hulkv_bench::{fig6, fig8, fig9, table1, table2};
use hulkv_kernels::iot::Scale;
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_kernels::synthetic::run_sweep_point;

#[test]
fn fig6_all_kernels_win_when_amortized() {
    let rows = fig6::speedup_table(&KernelParams::tiny()).unwrap();
    assert_eq!(rows.len(), Kernel::ALL.len());
    for r in &rows {
        assert!(r.verified, "{}", r.kernel);
        assert!(r.speedup_x1000 > 1.0, "{}: {}", r.kernel, r.speedup_x1000);
        assert!(r.cluster_gops_per_w > r.host_gops_per_w, "{}", r.kernel);
    }
}

#[test]
fn fig7_orderings_hold_at_extremes() {
    // At zero misses all configurations tie; at full misses the ordering
    // is DDR < Hyper and the LLC is neutral-to-harmful (thrash).
    let zero: Vec<_> = MemorySetup::ALL
        .iter()
        .map(|&s| run_sweep_point(s, 0, 16).unwrap())
        .collect();
    let spread = zero
        .iter()
        .map(|p| p.cycles_per_read)
        .fold(f64::MIN, f64::max)
        / zero
            .iter()
            .map(|p| p.cycles_per_read)
            .fold(f64::MAX, f64::min);
    assert!(spread < 1.05, "configs should tie at zero misses: {spread}");

    let ddr = run_sweep_point(MemorySetup::DdrOnly, 64, 16).unwrap();
    let hyper = run_sweep_point(MemorySetup::HyperOnly, 64, 16).unwrap();
    assert!(hyper.cycles_per_read > 2.0 * ddr.cycles_per_read);
}

#[test]
fn fig8_five_benchmarks_cached_parity() {
    let rows = fig8::llc_effect(Scale(1)).unwrap();
    assert_eq!(rows.len(), 5);
    for r in &rows {
        let n = r.normalized_cycles();
        assert!(n[1] < 1.10, "{}: {}", r.bench, n[1]);
        // No configuration should be *faster* than DDR4+LLC by much.
        for v in n {
            assert!(v > 0.9, "{}", r.bench);
        }
    }
}

#[test]
fn fig9_regimes_partition_cleanly() {
    let rows = fig9::ccr_table(&KernelParams::tiny()).unwrap();
    let compute_bound = rows.iter().filter(|r| r.ccr_hyper > 1.0).count();
    let memory_bound = rows.len() - compute_bound;
    assert!(compute_bound >= 3, "need compute-bound points");
    assert!(memory_bound >= 1, "need memory-bound points");
    for r in &rows {
        assert!(r.eff_hyper > 0.0 && r.eff_lpddr > 0.0, "{}", r.name);
    }
}

#[test]
fn tables_are_consistent() {
    let t1 = table1::rows(&SocConfig::default());
    assert!(t1.iter().any(|r| r.platform == "This work"));
    let (rows, total) = table2::rows();
    let sum: f64 = rows.iter().map(|r| r.max_power_mw).sum();
    assert!((sum - total.max_power_mw).abs() < 1e-9);
}
