//! End-to-end integration: host program → shared memory → offload →
//! cluster kernel → results back, across memory configurations.

use hulkv::{map, HulkV, MemorySetup, SocConfig};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_rv::{Asm, Reg, Xlen};

#[test]
fn offload_works_on_every_memory_setup() {
    // The heterogeneous runtime must be oblivious to the memory backend.
    let p = KernelParams::tiny();
    for setup in MemorySetup::ALL {
        let mut soc = HulkV::new(SocConfig::with_memory_setup(setup)).unwrap();
        let run = Kernel::MatMulI8.run_on_cluster(&mut soc, &p, 8).unwrap();
        assert!(run.verified, "{}: bad cluster result", setup.name());
    }
}

#[test]
fn host_prepares_data_cluster_consumes_it() {
    // The host writes a vector into hulk_malloc'd shared memory through
    // its caches; the cluster doubles it in place; the host checks.
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let n = 64u64;
    let buf = soc.hulk_malloc((n * 4) as usize).unwrap();

    // Host: store i*3 at buf[i] (through L1D, write-through to DRAM).
    let mut host = Asm::new(Xlen::Rv64);
    host.li(Reg::T0, 0); // i
    let top = host.label();
    host.bind(top);
    host.li(Reg::T1, 3);
    host.mul(Reg::T1, Reg::T1, Reg::T0);
    host.slli(Reg::T2, Reg::T0, 2);
    host.add(Reg::T2, Reg::T2, Reg::A0);
    host.sw(Reg::T1, Reg::T2, 0);
    host.addi(Reg::T0, Reg::T0, 1);
    host.li(Reg::T3, n as i64);
    host.blt(Reg::T0, Reg::T3, top);
    host.ebreak();
    soc.run_host_program(
        &host.assemble().unwrap(),
        |core| core.set_reg(Reg::A0, buf),
        10_000_000,
    )
    .unwrap();

    // Cluster: each core doubles its strided share.
    let mut k = Asm::new(Xlen::Rv32);
    k.csrr(Reg::T0, hulkv_rv::csr::addr::MHARTID); // i = hartid
    let loop_top = k.label();
    let done = k.label();
    k.bind(loop_top);
    k.li(Reg::T3, n as i64);
    k.bge(Reg::T0, Reg::T3, done);
    k.slli(Reg::T1, Reg::T0, 2);
    k.add(Reg::T1, Reg::T1, Reg::A0);
    k.lw(Reg::T2, Reg::T1, 0);
    k.slli(Reg::T2, Reg::T2, 1);
    k.sw(Reg::T2, Reg::T1, 0);
    k.add(Reg::T0, Reg::T0, Reg::A7);
    k.j(loop_top);
    k.bind(done);
    k.ebreak();
    let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();
    soc.offload(kernel, &[(Reg::A0, buf), (Reg::A7, 8)], 8, 10_000_000)
        .unwrap();

    for i in 0..n {
        let mut w = [0u8; 4];
        soc.read_mem(buf + i * 4, &mut w).unwrap();
        assert_eq!(u32::from_le_bytes(w), (i * 6) as u32, "element {i}");
    }
}

#[test]
fn offload_overhead_breakdown_is_consistent() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let mut k = Asm::new(Xlen::Rv32);
    k.ebreak();
    let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();

    let first = soc.offload(kernel, &[], 8, 1_000_000).unwrap();
    let second = soc.offload(kernel, &[], 8, 1_000_000).unwrap();
    assert!(first.code_loaded && !second.code_loaded);
    assert!(first.overhead_cycles.get() > second.overhead_cycles.get());
    // Total = overhead + team (converted); never less than overhead.
    assert!(first.total_soc_cycles >= first.overhead_cycles);
    // The descriptor cost floor from the config.
    assert!(second.overhead_cycles.get() >= soc.config().offload_descriptor_cycles);
}

#[test]
fn mailbox_sees_every_offload() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let mut k = Asm::new(Xlen::Rv32);
    k.ebreak();
    let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();
    for _ in 0..3 {
        soc.offload(kernel, &[], 4, 1_000_000).unwrap();
    }
    assert_eq!(soc.mailbox().stats().get("host_to_cluster"), 3);
    assert_eq!(soc.mailbox().stats().get("cluster_to_host"), 3);
}

#[test]
fn iopmp_blocks_cluster_outside_shared_windows() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    // A kernel that reads the CLINT region must die on the IOPMP.
    let mut k = Asm::new(Xlen::Rv32);
    k.li(Reg::T0, map::CLINT_BASE as i64);
    k.lw(Reg::T1, Reg::T0, 0);
    k.ebreak();
    let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();
    assert!(soc.offload(kernel, &[], 1, 1_000_000).is_err());

    // While DRAM and L2SPM stay reachable.
    let mut ok = Asm::new(Xlen::Rv32);
    ok.li(Reg::T0, map::SHARED_BASE as i64);
    ok.lw(Reg::T1, Reg::T0, 0);
    ok.li(Reg::T0, map::L2SPM_BASE as i64);
    ok.lw(Reg::T1, Reg::T0, 0);
    ok.ebreak();
    let kernel = soc.register_kernel(&ok.assemble().unwrap()).unwrap();
    assert!(soc.offload(kernel, &[], 1, 1_000_000).is_ok());
}

#[test]
fn many_kernels_coexist_in_the_l2spm() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let buf = soc.hulk_malloc(4).unwrap();
    let mut handles = Vec::new();
    for i in 0..10u32 {
        let mut k = Asm::new(Xlen::Rv32);
        k.li(Reg::T1, i as i64 * 11);
        k.sw(Reg::T1, Reg::A0, 0);
        k.ebreak();
        handles.push(soc.register_kernel(&k.assemble().unwrap()).unwrap());
    }
    for (i, &h) in handles.iter().enumerate() {
        soc.offload(h, &[(Reg::A0, buf)], 1, 1_000_000).unwrap();
        let mut w = [0u8; 4];
        soc.read_mem(buf, &mut w).unwrap();
        assert_eq!(u32::from_le_bytes(w), i as u32 * 11);
    }
    assert_eq!(soc.stats().get("kernel_loads"), 10);
}
