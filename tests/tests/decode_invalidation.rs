//! Cross-side store-to-code: one side of the SoC patches the other
//! side's instruction memory, and the patched code must (a) actually
//! execute, and (b) do so with bit-identical cycle counts whether the
//! decoded-instruction caches are on or off.
//!
//! This guards the two invalidation paths that self-modifying-code
//! watermarks inside a single core cannot see: the host writing the
//! cluster's L2SPM kernel copy, and the cluster writing host code in
//! DRAM.

use hulkv::{map, HulkV, SocConfig};
use hulkv_rv::{Asm, Reg, Xlen};

/// A SoC with the decoded-instruction cache + fetch µTLB switched on or
/// off on *both* sides.
fn build_soc(decode: bool) -> HulkV {
    let mut cfg = SocConfig::default();
    cfg.cluster.decode_cache = decode;
    let mut soc = HulkV::new(cfg).unwrap();
    soc.host_mut().set_decode_cache(decode);
    soc
}

fn read_u32(soc: &mut HulkV, addr: u64) -> u32 {
    let mut w = [0u8; 4];
    soc.read_mem(addr, &mut w).unwrap();
    u32::from_le_bytes(w)
}

/// Single `li t0, imm` instruction word (imm fits in 12 bits).
fn li_word(xlen: Xlen, imm: i64) -> u32 {
    let mut a = Asm::new(xlen);
    a.li(Reg::T0, imm);
    let words = a.assemble().unwrap();
    assert_eq!(words.len(), 1, "imm must encode as a single addi");
    words[0]
}

/// Host patches cluster code: the kernel's lazily-loaded L2SPM copy is
/// overwritten by a host store between two offloads of the *same*
/// kernel; the second offload reuses the cached copy and must execute
/// the patched instruction.
fn host_patches_cluster_code(decode: bool) -> (Vec<u32>, Vec<u64>) {
    let mut soc = build_soc(decode);
    let buf = soc.hulk_malloc(4).unwrap();

    // Kernel: t0 = 111; *a0 = t0.
    let mut k = Asm::new(Xlen::Rv32);
    k.li(Reg::T0, 111);
    k.sw(Reg::T0, Reg::A0, 0);
    k.ebreak();
    let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();

    let r1 = soc
        .offload(kernel, &[(Reg::A0, buf)], 1, 1_000_000)
        .unwrap();
    assert!(r1.code_loaded);
    let v1 = read_u32(&mut soc, buf);

    // Host: store `li t0, 222` over the kernel's first word in the
    // L2SPM (the first registered kernel loads at offset 0). The store
    // goes through the host L1D (write-through), like a driver poking
    // accelerator program memory.
    let patch = li_word(Xlen::Rv32, 222);
    let mut h = Asm::new(Xlen::Rv64);
    h.sw(Reg::A1, Reg::A0, 0);
    h.ebreak();
    let hc = soc
        .run_host_program(
            &h.assemble().unwrap(),
            |core| {
                core.set_reg(Reg::A0, map::L2SPM_BASE);
                core.set_reg(Reg::A1, patch as u64);
            },
            1_000_000,
        )
        .unwrap();

    // The runtime's icache-flush doorbell: without it the cluster's
    // persistent shared L1.5 I-cache serves the stale pre-patch bytes.
    soc.cluster_mut().flush_icache().unwrap();

    let r2 = soc
        .offload(kernel, &[(Reg::A0, buf)], 1, 1_000_000)
        .unwrap();
    assert!(!r2.code_loaded, "second offload must reuse the L2 copy");
    let v2 = read_u32(&mut soc, buf);

    (
        vec![v1, v2],
        vec![
            r1.total_soc_cycles.get(),
            r1.team.cycles.get(),
            hc.get(),
            r2.total_soc_cycles.get(),
            r2.team.cycles.get(),
        ],
    )
}

/// Cluster patches host code: a kernel stores a new instruction word
/// over the host program in DRAM; after the model's `fence.i`
/// equivalent (L1I flush + decoded-entry invalidation) the host re-runs
/// the patched code in place.
fn cluster_patches_host_code(decode: bool) -> (Vec<u32>, Vec<u64>) {
    let mut soc = build_soc(decode);
    let buf = soc.hulk_malloc(4).unwrap();

    // Host program at HOST_CODE: t0 = 5; *a0 = t0.
    let mut h = Asm::new(Xlen::Rv64);
    h.li(Reg::T0, 5);
    h.sw(Reg::T0, Reg::A0, 0);
    h.ebreak();
    let c1 = soc
        .run_host_program(
            &h.assemble().unwrap(),
            |core| core.set_reg(Reg::A0, buf),
            1_000_000,
        )
        .unwrap();
    let v1 = read_u32(&mut soc, buf);

    // Kernel: *a0 = a1 — patches the host's `li t0, 5` to `li t0, 9`
    // through the cluster's AXI master and the IOPMP's DRAM window.
    let mut k = Asm::new(Xlen::Rv32);
    k.sw(Reg::A1, Reg::A0, 0);
    k.ebreak();
    let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();
    let patch = li_word(Xlen::Rv64, 9);
    let r = soc
        .offload(
            kernel,
            &[(Reg::A0, map::HOST_CODE), (Reg::A1, patch as u64)],
            1,
            1_000_000,
        )
        .unwrap();

    // The driver's fence.i equivalent after a cross-side code write,
    // then re-run the patched program *without* reloading it.
    soc.host_mut().flush_l1().unwrap();
    soc.host_mut().core_mut().invalidate_decoded();
    let core = soc.host_mut().core_mut();
    core.set_pc(map::HOST_CODE);
    core.set_reg(Reg::A0, buf);
    core.resume();
    let c2 = soc.host_mut().run(1_000_000).unwrap();
    let v2 = read_u32(&mut soc, buf);

    (
        vec![v1, v2],
        vec![
            c1.get(),
            r.total_soc_cycles.get(),
            r.team.cycles.get(),
            c2.get(),
        ],
    )
}

#[test]
fn host_store_to_cluster_code_takes_effect() {
    let (vals, _) = host_patches_cluster_code(true);
    assert_eq!(vals, vec![111, 222]);
}

#[test]
fn host_store_to_cluster_code_is_cycle_identical_with_decode_cache() {
    let (vals_on, cycles_on) = host_patches_cluster_code(true);
    let (vals_off, cycles_off) = host_patches_cluster_code(false);
    assert_eq!(vals_on, vals_off);
    assert_eq!(
        cycles_on, cycles_off,
        "decode cache must be cycle-invisible across a cross-side code patch"
    );
}

#[test]
fn cluster_store_to_host_code_takes_effect() {
    let (vals, _) = cluster_patches_host_code(true);
    assert_eq!(vals, vec![5, 9]);
}

#[test]
fn cluster_store_to_host_code_is_cycle_identical_with_decode_cache() {
    let (vals_on, cycles_on) = cluster_patches_host_code(true);
    let (vals_off, cycles_off) = cluster_patches_host_code(false);
    assert_eq!(vals_on, vals_off);
    assert_eq!(
        cycles_on, cycles_off,
        "decode cache must be cycle-invisible across a cross-side code patch"
    );
}
