//! Integration tests of the snapshot/restore layer: per-peripheral digest
//! coverage, twin-SoC determinism, byte-identical round-trips, and
//! checkpoints taken at awkward microarchitectural moments (interrupt
//! pending, mid hardware loop).

use hulkv::{map, HulkV, IoPmp, Mailbox, Recorder, SocConfig};
use hulkv_host::{Clint, Plic};
use hulkv_mem::{shared, Sram};
use hulkv_rv::csr::addr;
use hulkv_rv::{Asm, Core, FlatBus, Reg, Xlen};
use hulkv_sim::{Cycles, Snapshot};

/// Every interrupt-fabric block must contribute to the digest: mutating
/// any one of CLINT, PLIC, mailbox or IOPMP state flips it.
#[test]
fn peripheral_digests_cover_their_state() {
    let mut clint = Clint::new();
    let d = clint.state_digest();
    clint.advance(1);
    assert_ne!(clint.state_digest(), d, "CLINT mtime not in digest");

    let mut plic = Plic::new();
    let d = plic.state_digest();
    plic.raise(5);
    assert_ne!(plic.state_digest(), d, "PLIC pending not in digest");

    let mut mbox = Mailbox::new(4);
    let d = mbox.state_digest();
    mbox.host_send(0xdead_beef).unwrap();
    assert_ne!(mbox.state_digest(), d, "mailbox FIFO not in digest");

    let mut iopmp = IoPmp::new(shared(Sram::new("s", 64, Cycles::new(1))));
    let d = iopmp.state_digest();
    iopmp.allow(0x1000, 0x1000);
    assert_ne!(iopmp.state_digest(), d, "IOPMP windows not in digest");
}

fn counting_program() -> Vec<u32> {
    let mut p = Asm::new(Xlen::Rv64);
    p.li(Reg::A0, 0);
    p.li(Reg::T0, 1000);
    let top = p.label();
    p.bind(top);
    p.addi(Reg::A0, Reg::A0, 1);
    p.bne(Reg::A0, Reg::T0, top);
    p.ebreak();
    p.assemble().unwrap()
}

/// Two SoCs driven through an identical stimulus sequence — host program,
/// peripheral time, external interrupts, DRAM writes — land on the same
/// combined digest, and any single-sided perturbation breaks the
/// agreement (so the digest actually covers the whole SoC).
#[test]
fn twin_socs_agree_on_combined_digest() {
    let drive = |soc: &mut HulkV| {
        soc.write_mem(map::DRAM_BASE + 0x1000, b"twin stimulus")
            .unwrap();
        soc.advance_time(123);
        soc.raise_peripheral_irq(7);
        soc.run_host_program(&counting_program(), |_| {}, 1_000_000)
            .unwrap();
    };
    let mut a = HulkV::new(SocConfig::default()).unwrap();
    let mut b = HulkV::new(SocConfig::default()).unwrap();
    drive(&mut a);
    drive(&mut b);
    assert_eq!(a.state_digest(), b.state_digest());

    // CLINT time is digest-visible.
    b.advance_time(1);
    assert_ne!(a.state_digest(), b.state_digest());
    a.advance_time(1);
    assert_eq!(a.state_digest(), b.state_digest());

    // PLIC pending state is digest-visible.
    b.raise_peripheral_irq(9);
    assert_ne!(a.state_digest(), b.state_digest());
    a.raise_peripheral_irq(9);
    assert_eq!(a.state_digest(), b.state_digest());

    // DRAM contents are digest-visible.
    b.write_mem(map::DRAM_BASE + 0x2000, &[1]).unwrap();
    assert_ne!(a.state_digest(), b.state_digest());
}

/// snapshot -> bytes -> parse -> restore -> snapshot must reproduce the
/// serialized form byte for byte, through both the JSON sections and the
/// binary page/blob arena.
#[test]
fn snapshot_round_trip_is_byte_identical() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    soc.write_mem(map::DRAM_BASE + 0x4000, &[0xAB; 256])
        .unwrap();
    soc.advance_time(77);
    soc.run_host_program(&counting_program(), |_| {}, 1_000_000)
        .unwrap();

    let snap = soc.snapshot();
    let bytes = snap.to_bytes();
    let parsed = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(parsed.to_bytes(), bytes, "serializer is not deterministic");

    let restored = HulkV::from_snapshot(&parsed).unwrap();
    assert_eq!(restored.state_digest(), soc.state_digest());
    assert_eq!(
        restored.snapshot().to_bytes(),
        bytes,
        "restore -> snapshot round trip altered state"
    );
}

/// Checkpoint taken while a timer interrupt is in flight (mtimecmp
/// reached, handler not yet finished): the restored machine must deliver
/// the rest of the interrupt exactly like the original.
#[test]
fn checkpoint_mid_interrupt_replays_identically() {
    let build = || {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let mut handler = Asm::new(Xlen::Rv64);
        handler.li(Reg::A0, 0x77);
        handler.csrw(addr::MIE, Reg::Zero);
        handler.mret();
        let handler_addr = map::HOST_CODE + 0x200;
        soc.host_mut()
            .load_program(handler_addr, &handler.assemble().unwrap())
            .unwrap();

        let mut main = Asm::new(Xlen::Rv64);
        main.li(Reg::T0, handler_addr as i64);
        main.csrw(addr::MTVEC, Reg::T0);
        main.li(Reg::T0, (map::CLINT_BASE + 0x4000) as i64);
        main.li(Reg::T1, 50);
        main.sd(Reg::T1, Reg::T0, 0);
        main.li(Reg::T0, 1 << 7);
        main.csrw(addr::MIE, Reg::T0);
        main.li(Reg::T0, 1 << 3);
        main.csrw(addr::MSTATUS, Reg::T0);
        main.li(Reg::A0, 0);
        let spin = main.label();
        main.bind(spin);
        main.beqz(Reg::A0, spin);
        main.ebreak();
        soc.host_mut()
            .load_program(map::HOST_CODE, &main.assemble().unwrap())
            .unwrap();
        let core = soc.host_mut().core_mut();
        core.set_pc(map::HOST_CODE);
        core.resume();
        soc
    };

    let step = |soc: &mut HulkV| {
        soc.advance_time(1);
        soc.host_mut().step().unwrap().halted
    };

    // Run the original up to just past the timer deadline, so MTIP is
    // raised but the handler has not completed.
    let mut original = build();
    for _ in 0..52 {
        if step(&mut original) {
            panic!("halted before the interrupt window");
        }
    }
    assert_ne!(
        original.host().core().csrs().read(addr::MIP) & (1 << 7),
        0,
        "timer interrupt not pending at the checkpoint"
    );

    let snap = original.snapshot();
    let mut restored = HulkV::from_snapshot(&snap).unwrap();
    assert_eq!(restored.state_digest(), original.state_digest());

    // Drive both to completion with the same stimulus; they must stay in
    // lockstep through interrupt entry, the handler, and the mret.
    for _ in 0..100_000 {
        let ha = step(&mut original);
        let hb = step(&mut restored);
        assert_eq!(ha, hb, "halt divergence after mid-interrupt restore");
        if ha {
            break;
        }
    }
    assert!(original.host().core().is_halted());
    assert_eq!(original.host().core().reg(Reg::A0), 0x77);
    assert_eq!(restored.host().core().reg(Reg::A0), 0x77);
    assert_eq!(restored.state_digest(), original.state_digest());
}

/// Checkpoint taken in the middle of an XpulpV2 hardware loop on a bare
/// ri5cy core: loop start/end/count state must survive serialization.
#[test]
fn checkpoint_mid_hw_loop_replays_identically() {
    let mut p = Asm::new(Xlen::Rv32);
    p.li(Reg::A0, 0);
    p.lp_counti(0, 100);
    let (s, e) = (p.label(), p.label());
    p.lp_starti(0, s);
    p.lp_endi(0, e);
    p.bind(s);
    p.addi(Reg::A0, Reg::A0, 1);
    p.bind(e);
    p.ebreak();
    let words = p.assemble().unwrap();

    let build = |words: &[u32]| {
        let mut bus = FlatBus::new(0x1_0000);
        bus.load_words(0x1000, words);
        let mut core = Core::ri5cy(0);
        core.set_pc(0x1000);
        (core, bus)
    };

    // Run the original halfway into the loop body.
    let (mut core, mut bus) = build(&words);
    for _ in 0..40 {
        core.step(&mut bus).unwrap();
    }

    // Serialize the bare core + flat memory through the snapshot layer.
    let mut snap = Snapshot::new();
    let cj = core.snapshot_into(&mut snap);
    let bj = bus.snapshot_into(&mut snap);
    snap.set_section("core", cj);
    snap.set_section("bus", bj);
    let bytes = snap.to_bytes();

    let parsed = Snapshot::from_bytes(&bytes).unwrap();
    let (mut core2, mut bus2) = build(&words);
    core2
        .restore_from(&parsed, parsed.section("core").unwrap())
        .unwrap();
    bus2.restore_from(&parsed, parsed.section("bus").unwrap())
        .unwrap();
    assert_eq!(core2.state_digest(), core.state_digest());

    // Both finish the loop in lockstep and agree on the final count.
    loop {
        let a = core.step(&mut bus).unwrap();
        let b = core2.step(&mut bus2).unwrap();
        assert_eq!(a.halted, b.halted, "halt divergence mid hardware loop");
        if a.halted {
            break;
        }
    }
    assert_eq!(core.reg(Reg::A0), 100);
    assert_eq!(core2.reg(Reg::A0), 100);
    assert_eq!(core2.state_digest(), core.state_digest());
    assert_eq!(bus2.content_digest(), bus.content_digest());
}

/// The flight recorder checkpoints mid-program; resuming from such a
/// checkpoint and from the start must agree with the live recorder run.
#[test]
fn recorder_mid_program_checkpoints_resume() {
    let cfg = SocConfig::default();
    let mut rec = Recorder::new(cfg, 500, 8).unwrap();
    rec.write_mem(map::DRAM_BASE + 0x100, &[7; 64]).unwrap();
    rec.advance_time(42);
    rec.run_host_program(&counting_program(), &[], 1_000_000)
        .unwrap();
    let (live, recording) = rec.finish();

    assert!(
        recording.checkpoints.iter().any(|c| c.in_progress),
        "expected at least one mid-program checkpoint at period 500"
    );

    let straight = recording.replay_to_end().unwrap();
    assert_eq!(straight.state_digest(), live.state_digest());
    for i in 0..recording.checkpoints.len() {
        let resumed = recording.resume_from(i).unwrap();
        assert_eq!(
            resumed.state_digest(),
            live.state_digest(),
            "checkpoint {i} diverged"
        );
    }

    // The serialized recording survives its own round trip.
    let bytes = recording.to_bytes();
    let back = hulkv::Recording::from_bytes(&bytes).unwrap();
    assert_eq!(back.to_bytes(), bytes);
    assert_eq!(
        back.replay_to_end().unwrap().state_digest(),
        live.state_digest()
    );
}
