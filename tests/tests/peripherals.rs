//! Integration tests of the peripheral domain: UART, I2S, µDMA streaming,
//! and CLINT/PLIC interrupt delivery into the CVA6 core.

use hulkv::{map, HulkV, SocConfig};
use hulkv_host::{I2sSource, Uart};
use hulkv_mem::{shared, SharedMem};
use hulkv_rv::csr::addr;
use hulkv_rv::{Asm, Reg, Xlen};
use std::cell::RefCell;
use std::rc::Rc;

const UART_BASE: u64 = map::PERIPH_BASE;
const I2S_BASE: u64 = map::PERIPH_BASE + 0x1000;

#[test]
fn host_program_prints_over_uart() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let uart = Rc::new(RefCell::new(Uart::new(115_200, 50_000_000)));
    let uart_dyn: SharedMem = uart.clone();
    soc.map_device("uart", UART_BASE, uart_dyn).unwrap();

    // Store "OK\n" byte by byte to TXDATA.
    let mut p = Asm::new(Xlen::Rv64);
    p.li(Reg::T0, UART_BASE as i64);
    for b in b"OK\n" {
        p.li(Reg::T1, *b as i64);
        p.sb(Reg::T1, Reg::T0, 0);
    }
    p.ebreak();
    soc.run_host_program(&p.assemble().unwrap(), |_| {}, 10_000_000)
        .unwrap();
    assert_eq!(uart.borrow().output(), b"OK\n");
}

#[test]
fn udma_streams_i2s_into_l2spm() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let mic: SharedMem = shared(I2sSource::new(16_000, 50_000_000, 440.0));
    soc.map_device("i2s", I2S_BASE, mic).unwrap();

    // Drain 128 samples (256 bytes) into the L2SPM without the core.
    let dst = map::L2SPM_BASE + 0x2_0000;
    let cycles = soc.udma_transfer(I2S_BASE, dst, 256).unwrap();
    assert!(cycles.get() > 0);

    let mut buf = vec![0u8; 256];
    soc.read_mem(dst, &mut buf).unwrap();
    let samples: Vec<i16> = buf
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes(c.try_into().expect("pair")))
        .collect();
    assert!(samples.iter().any(|&s| s > 1000), "no signal captured");
    // The µDMA paid the real-time pacing of the source.
    assert!(cycles.get() >= 128, "{cycles}");
}

#[test]
fn clint_timer_interrupt_reaches_the_host() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();

    // Handler at HOST_CODE+0x200: set a0 = 0x77, disable timer, mret.
    let mut handler = Asm::new(Xlen::Rv64);
    handler.li(Reg::A0, 0x77);
    handler.csrw(addr::MIE, Reg::Zero);
    handler.mret();
    let handler_words = handler.assemble().unwrap();
    let handler_addr = map::HOST_CODE + 0x200;

    // Main: install mtvec, program mtimecmp via the CLINT, enable MTIE,
    // then spin until the handler fires.
    let mut main = Asm::new(Xlen::Rv64);
    main.li(Reg::T0, handler_addr as i64);
    main.csrw(addr::MTVEC, Reg::T0);
    main.li(Reg::T0, (map::CLINT_BASE + 0x4000) as i64);
    main.li(Reg::T1, 50); // mtimecmp = 50 ticks
    main.sd(Reg::T1, Reg::T0, 0);
    main.li(Reg::T0, 1 << 7);
    main.csrw(addr::MIE, Reg::T0);
    main.li(Reg::T0, 1 << 3);
    main.csrw(addr::MSTATUS, Reg::T0);
    main.li(Reg::A0, 0);
    let spin = main.label();
    main.bind(spin);
    main.beqz(Reg::A0, spin);
    main.ebreak();

    soc.host_mut()
        .load_program(handler_addr, &handler_words)
        .unwrap();
    soc.host_mut()
        .load_program(map::HOST_CODE, &main.assemble().unwrap())
        .unwrap();
    let core = soc.host_mut().core_mut();
    core.set_pc(map::HOST_CODE);
    core.resume();

    // Co-simulate: step the host, advancing peripheral time.
    for _ in 0..100_000 {
        soc.advance_time(1);
        let out = soc.host_mut().step().unwrap();
        if out.halted {
            break;
        }
    }
    assert!(soc.host().core().is_halted(), "program never completed");
    assert_eq!(soc.host().core().reg(Reg::A0), 0x77);
}

#[test]
fn plic_external_interrupt_reaches_the_host() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();

    // Host enables PLIC source 5 and external interrupts, then spins.
    let mut handler = Asm::new(Xlen::Rv64);
    // Claim, record the id in a0, complete, stop further interrupts.
    handler.li(Reg::T0, (map::PLIC_BASE + 0x20_0004) as i64);
    handler.lwu(Reg::A0, Reg::T0, 0); // claim
    handler.sw(Reg::A0, Reg::T0, 0); // complete
    handler.csrw(addr::MIE, Reg::Zero);
    handler.mret();
    let handler_addr = map::HOST_CODE + 0x200;

    let mut main = Asm::new(Xlen::Rv64);
    main.li(Reg::T0, handler_addr as i64);
    main.csrw(addr::MTVEC, Reg::T0);
    main.li(Reg::T0, (map::PLIC_BASE + 5 * 4) as i64);
    main.li(Reg::T1, 7);
    main.sw(Reg::T1, Reg::T0, 0); // priority[5] = 7
    main.li(Reg::T0, (map::PLIC_BASE + 0x2000) as i64);
    main.li(Reg::T1, 1 << 5);
    main.sd(Reg::T1, Reg::T0, 0); // enable source 5
    main.li(Reg::T0, 1 << 11);
    main.csrw(addr::MIE, Reg::T0);
    main.li(Reg::T0, 1 << 3);
    main.csrw(addr::MSTATUS, Reg::T0);
    main.li(Reg::A0, 0);
    let spin = main.label();
    main.bind(spin);
    main.beqz(Reg::A0, spin);
    main.ebreak();

    soc.host_mut()
        .load_program(handler_addr, &handler.assemble().unwrap())
        .unwrap();
    soc.host_mut()
        .load_program(map::HOST_CODE, &main.assemble().unwrap())
        .unwrap();
    let core = soc.host_mut().core_mut();
    core.set_pc(map::HOST_CODE);
    core.resume();

    // Let the setup run, then a peripheral raises its line.
    for _ in 0..40 {
        soc.host_mut().step().unwrap();
    }
    soc.raise_peripheral_irq(5);
    for _ in 0..10_000 {
        if soc.host_mut().step().unwrap().halted {
            break;
        }
    }
    assert!(soc.host().core().is_halted(), "program never completed");
    assert_eq!(soc.host().core().reg(Reg::A0), 5, "claimed wrong source");
}
