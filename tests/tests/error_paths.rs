//! Negative-path integration tests: the SoC must fail loudly and
//! descriptively, never silently corrupt state.

use hulkv::{map, HulkV, SocConfig, SocError};
use hulkv_rv::{parse_program, Asm, RvError, Xlen};

#[test]
fn runaway_host_program_times_out() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let mut a = Asm::new(Xlen::Rv64);
    let spin = a.label();
    a.bind(spin);
    a.j(spin);
    let err = soc.run_host_program(&a.assemble().unwrap(), |_| {}, 10_000);
    match err {
        Err(SocError::Exec(RvError::Timeout { cycles })) => assert!(cycles >= 10_000),
        other => panic!("expected timeout, got {other:?}"),
    }
}

#[test]
fn runaway_cluster_kernel_times_out() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let mut k = Asm::new(Xlen::Rv32);
    let spin = k.label();
    k.bind(spin);
    k.j(spin);
    let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();
    let err = soc.offload(kernel, &[], 1, 5_000);
    assert!(matches!(err, Err(SocError::Exec(RvError::Timeout { .. }))));
}

#[test]
fn illegal_instruction_reports_pc_and_word() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let mut a = Asm::new(Xlen::Rv64);
    a.nop();
    a.word(0xFFFF_FFFF);
    let err = soc
        .run_host_program(&a.assemble().unwrap(), |_| {}, 10_000)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("illegal instruction"), "{msg}");
    assert!(msg.contains("0xffffffff"), "{msg}");
}

#[test]
fn unmapped_address_faults_with_address() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let err = soc
        .run_host_assembly("li t0, 0x70000000\nld t1, 0(t0)\nebreak\n")
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("unmapped") || msg.contains("memory fault"),
        "{msg}"
    );
}

#[test]
fn xpulp_on_host_is_illegal() {
    // The host (no Xpulp) must reject cluster-only opcodes.
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let words = parse_program("p.mac a0, a1, a2\nebreak\n", Xlen::Rv32).unwrap();
    let err = soc.run_host_program(&words, |_| {}, 10_000);
    assert!(matches!(
        err,
        Err(SocError::Exec(RvError::IllegalInstruction { .. }))
    ));
}

#[test]
fn kernel_space_exhaustion_reported() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    // Register kernels until the L2SPM code window (half the L2SPM) would
    // overflow on load: each binary is ~64 kB of nops.
    let mut a = Asm::new(Xlen::Rv32);
    for _ in 0..16_000 {
        a.nop();
    }
    a.ebreak();
    let words = a.assemble().unwrap();
    let mut hit_limit = false;
    for _ in 0..8 {
        let k = soc.register_kernel(&words).unwrap();
        match soc.offload(k, &[], 1, 10_000_000) {
            Ok(_) => {}
            Err(SocError::OutOfKernelSpace) => {
                hit_limit = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(hit_limit, "kernel space never exhausted");
}

#[test]
fn assembly_errors_surface_through_the_soc() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let err = soc.run_host_assembly("bogus t0, t1\n").unwrap_err();
    assert!(err.to_string().contains("bogus"), "{err}");
}

#[test]
fn shared_allocation_respects_memory_size() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    // Allocate nearly all of the shared window, then overflow it.
    let available = soc.config().main_memory_bytes() - (map::SHARED_BASE - map::DRAM_BASE);
    assert!(soc.hulk_malloc(available as usize - 128).is_ok());
    assert!(matches!(
        soc.hulk_malloc(4096),
        Err(SocError::OutOfSharedMemory { .. })
    ));
}
