//! Integration tests of the full memory hierarchy: data must be identical
//! through every path (host caches, LLC, DMA, cluster port), and the
//! timing relations the paper relies on must hold at SoC level.

use hulkv::{map, HulkV, MemorySetup, SocConfig};
use hulkv_mem::{shared, Llc, LlcConfig, MemoryDevice, Sram};
use hulkv_rv::{Asm, Reg, Xlen};
use hulkv_sim::{Cycles, SplitMix64};

#[test]
fn host_store_visible_to_cluster_and_back() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let buf = soc.hulk_malloc(8).unwrap();

    // Host stores through L1D (write-through) + LLC.
    let mut h = Asm::new(Xlen::Rv64);
    h.li(Reg::T0, 0x1122_3344);
    h.sw(Reg::T0, Reg::A0, 0);
    h.ebreak();
    soc.run_host_program(
        &h.assemble().unwrap(),
        |c| c.set_reg(Reg::A0, buf),
        1_000_000,
    )
    .unwrap();

    // Cluster reads it through the IOPMP + AXI + LLC, increments, writes.
    let mut k = Asm::new(Xlen::Rv32);
    k.lw(Reg::T0, Reg::A0, 0);
    k.addi(Reg::T0, Reg::T0, 1);
    k.sw(Reg::T0, Reg::A0, 0);
    k.ebreak();
    let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();
    soc.offload(kernel, &[(Reg::A0, buf)], 1, 1_000_000)
        .unwrap();

    // Host reads it back.
    let mut h2 = Asm::new(Xlen::Rv64);
    h2.lw(Reg::A0, Reg::A0, 0);
    h2.ebreak();
    soc.run_host_program(
        &h2.assemble().unwrap(),
        |c| c.set_reg(Reg::A0, buf),
        1_000_000,
    )
    .unwrap();
    assert_eq!(soc.host().core().reg(Reg::A0), 0x1122_3345);
}

#[test]
fn dma_staged_tile_matches_backdoor_contents() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let src = soc.hulk_malloc(1024).unwrap();
    let data: Vec<u8> = (0..1024u32).map(|v| v as u8).collect();
    soc.write_mem(src, &data).unwrap();

    let cycles = soc.cluster_mut().dma_to_tcdm(src, 0x800, 1024).unwrap();
    assert!(cycles.get() > 0);
    let mut out = vec![0u8; 1024];
    soc.cluster_mut().tcdm_read(0x800, &mut out).unwrap();
    assert_eq!(out, data);
}

#[test]
fn llc_reduces_dram_traffic_for_reused_data() {
    // Two SoCs, same program re-reading a 64 kB region twice; the LLC one
    // must hit DRAM far less.
    let prog = {
        let mut p = Asm::new(Xlen::Rv64);
        p.li(Reg::T3, 2);
        let pass = p.label();
        p.bind(pass);
        p.li(Reg::T0, (map::DRAM_BASE + 0x50_0000) as i64);
        p.li(Reg::T2, 1024);
        let top = p.label();
        p.bind(top);
        p.ld(Reg::T1, Reg::T0, 0);
        p.addi(Reg::T0, Reg::T0, 64);
        p.addi(Reg::T2, Reg::T2, -1);
        p.bnez(Reg::T2, top);
        p.addi(Reg::T3, Reg::T3, -1);
        p.bnez(Reg::T3, pass);
        p.ebreak();
        p.assemble().unwrap()
    };
    let mut traffic = Vec::new();
    for setup in [MemorySetup::HyperWithLlc, MemorySetup::HyperOnly] {
        let mut soc = HulkV::new(SocConfig::with_memory_setup(setup)).unwrap();
        soc.run_host_program(&prog, |_| {}, 1_000_000_000).unwrap();
        traffic.push(soc.dram_stats().get("bytes_read"));
    }
    assert!(
        traffic[0] < traffic[1] / 15 * 10,
        "LLC {} vs raw {}",
        traffic[0],
        traffic[1]
    );
}

#[test]
fn cluster_tcdm_is_much_faster_than_dram_access() {
    // The premise of the explicit-memory-management model: compute from
    // the TCDM, never directly from DRAM.
    let make_prog = |base: u64| {
        let mut k = Asm::new(Xlen::Rv32);
        k.li(Reg::T0, base as i64);
        k.li(Reg::T2, 0);
        k.lp_counti(0, 512);
        let (ls, le) = (k.label(), k.label());
        k.lp_starti(0, ls);
        k.lp_endi(0, le);
        k.bind(ls);
        k.p_lw_post(Reg::T1, Reg::T0, 4);
        k.add(Reg::T2, Reg::T2, Reg::T1);
        k.bind(le);
        k.ebreak();
        k.assemble().unwrap()
    };

    let mut soc = HulkV::new(SocConfig::default()).unwrap();
    let tcdm_kernel = soc
        .register_kernel(&make_prog(hulkv_cluster::TCDM_BASE))
        .unwrap();
    let dram_kernel = soc.register_kernel(&make_prog(map::SHARED_BASE)).unwrap();
    let fast = soc.offload(tcdm_kernel, &[], 1, 10_000_000).unwrap();
    let slow = soc.offload(dram_kernel, &[], 1, 100_000_000).unwrap();
    // The LLC absorbs most of the sequential stream, so the gap is a few
    // times rather than the raw ~50x HyperRAM latency ratio.
    assert!(
        slow.team.cycles.get() > 3 * fast.team.cycles.get(),
        "tcdm {} vs dram {}",
        fast.team.cycles,
        slow.team.cycles
    );
}

/// The LLC is transparent: any access sequence reads the same data
/// with and without it. (Seeded, deterministic randomized test.)
#[test]
fn llc_is_data_transparent() {
    for seed in 0..16u64 {
        let plain = shared(Sram::new("plain", 1 << 16, Cycles::new(5)));
        let backing = shared(Sram::new("backing", 1 << 16, Cycles::new(5)));
        let mut llc = Llc::new(
            LlcConfig {
                lines: 16,
                ways: 2,
                ..LlcConfig::default()
            },
            backing,
        )
        .unwrap();

        let mut rng = SplitMix64::new(0xcafe_0000 + seed);
        for _ in 0..200 {
            let addr = rng.next_below((1 << 16) - 8);
            let len = 1 + rng.next_below(8) as usize;
            if rng.next_below(2) == 0 {
                let mut data = vec![0u8; len];
                rng.fill_bytes(&mut data);
                llc.write(addr, &data).unwrap();
                plain.borrow_mut().write(addr, &data).unwrap();
            } else {
                let mut a = vec![0u8; len];
                let mut b = vec![0u8; len];
                llc.read(addr, &mut a).unwrap();
                plain.borrow_mut().read(addr, &mut b).unwrap();
                assert_eq!(a, b);
            }
        }
        // And after a flush the backing store matches everywhere touched.
        llc.flush().unwrap();
        let mut a = vec![0u8; 1 << 16];
        let mut b = vec![0u8; 1 << 16];
        llc.read(0, &mut a).unwrap();
        plain.borrow_mut().read(0, &mut b).unwrap();
        assert_eq!(a, b);
    }
}
