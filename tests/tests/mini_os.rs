//! A miniature operating system on the CVA6 model: machine-mode kernel,
//! Sv39 page tables, a user-mode process, and an ecall syscall ABI — the
//! ingredients behind the paper's "Linux-capable" claim, exercised through
//! the real fetch/translate/trap paths.

use hulkv::{map, HulkV, SocConfig};
use hulkv_rv::csr::addr;
use hulkv_rv::{parse_program, Xlen};

const PTE_V: u64 = 1 << 0;
const PTE_R: u64 = 1 << 1;
const PTE_W: u64 = 1 << 2;
const PTE_X: u64 = 1 << 3;
const PTE_U: u64 = 1 << 4;
const PTE_A: u64 = 1 << 6;
const PTE_D: u64 = 1 << 7;

/// Physical layout (all inside DRAM, identity-mapped for the user region).
const ROOT_PT: u64 = map::DRAM_BASE + 0x00F0_0000;
const L1_PT: u64 = map::DRAM_BASE + 0x00F0_1000;
const USER_CODE: u64 = 0x8800_0000; // 2 MB-aligned VA == PA
const CONSOLE: u64 = map::DRAM_BASE + 0x00F8_0000;
const HANDLER: u64 = map::HOST_CODE + 0x400;

#[test]
fn user_process_makes_syscalls_through_sv39() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();

    // --- Page tables: one U|R|W|X 2 MB megapage for the user process. ---
    let vpn2 = (USER_CODE >> 30) & 0x1FF;
    let vpn1 = (USER_CODE >> 21) & 0x1FF;
    let root_entry = ((L1_PT - map::DRAM_BASE + map::DRAM_BASE) >> 12 << 10) | PTE_V;
    let leaf = ((USER_CODE >> 12) << 10) | PTE_V | PTE_R | PTE_W | PTE_X | PTE_U | PTE_A | PTE_D;
    soc.write_mem(ROOT_PT + vpn2 * 8, &root_entry.to_le_bytes())
        .unwrap();
    soc.write_mem(L1_PT + vpn1 * 8, &leaf.to_le_bytes())
        .unwrap();

    // --- The machine-mode syscall handler (the "kernel"). ---
    // ABI: a7 = 1 -> putchar(a0); a7 = 93 -> exit(a0). Console cursor in
    // mscratch.
    let handler = parse_program(
        &format!(
            "
            csrr t0, {mcause}
            li   t1, 8            # environment call from U-mode
            bne  t0, t1, fail
            li   t2, 93
            beq  a7, t2, exit_sys
            li   t2, 1
            bne  a7, t2, fail
            csrr t3, {mscratch}
            sb   a0, 0(t3)
            addi t3, t3, 1
            csrw {mscratch}, t3
            csrr t4, {mepc}
            addi t4, t4, 4
            csrw {mepc}, t4
            mret
        exit_sys:
            ebreak
        fail:
            li   a0, -1
            ebreak
            ",
            mcause = addr::MCAUSE,
            mscratch = addr::MSCRATCH,
            mepc = addr::MEPC,
        ),
        Xlen::Rv64,
    )
    .unwrap();
    soc.host_mut().load_program(HANDLER, &handler).unwrap();

    // --- The user process: print "HULK" then exit(42). ---
    let mut user_src = String::new();
    for b in b"HULK" {
        user_src.push_str(&format!("li a7, 1\nli a0, {b}\necall\n"));
    }
    user_src.push_str("li a7, 93\nli a0, 42\necall\n");
    let user = parse_program(&user_src, Xlen::Rv64).unwrap();
    soc.host_mut().load_program(USER_CODE, &user).unwrap();

    // --- Boot: M-mode sets up CSRs and drops to U with paging on. ---
    let boot = parse_program(
        &format!(
            "
            li   t0, {handler}
            csrw {mtvec}, t0
            li   t0, {console}
            csrw {mscratch}, t0
            li   t0, {satp}
            csrw {satp_csr}, t0
            li   t0, {entry}
            csrw {mepc}, t0
            mret                  # mstatus.MPP resets to U
            ",
            handler = HANDLER,
            mtvec = addr::MTVEC,
            mscratch = addr::MSCRATCH,
            console = CONSOLE,
            satp = (8u64 << 60) | (ROOT_PT >> 12),
            satp_csr = addr::SATP,
            entry = USER_CODE,
            mepc = addr::MEPC,
        ),
        Xlen::Rv64,
    )
    .unwrap();

    soc.run_host_program(&boot, |_| {}, 10_000_000).unwrap();

    // The process exited through the kernel with status 42...
    assert_eq!(soc.host().core().reg(hulkv_rv::Reg::A0), 42);
    assert_eq!(
        soc.host().core().priv_mode(),
        hulkv_rv::PrivMode::Machine,
        "exit syscall is handled in M-mode"
    );
    // ...after printing through the syscall ABI, across privilege and
    // translation boundaries.
    let mut console = [0u8; 4];
    soc.read_mem(CONSOLE, &mut console).unwrap();
    assert_eq!(&console, b"HULK");
    // And mcause reflects the last user ecall.
    assert_eq!(soc.host().core().csrs().read(addr::MCAUSE), 8);
}

#[test]
fn user_process_cannot_touch_kernel_memory() {
    let mut soc = HulkV::new(SocConfig::default()).unwrap();

    // Same user mapping as above.
    let vpn2 = (USER_CODE >> 30) & 0x1FF;
    let vpn1 = (USER_CODE >> 21) & 0x1FF;
    let root_entry = (L1_PT >> 12 << 10) | PTE_V;
    let leaf = ((USER_CODE >> 12) << 10) | PTE_V | PTE_R | PTE_W | PTE_X | PTE_U | PTE_A | PTE_D;
    soc.write_mem(ROOT_PT + vpn2 * 8, &root_entry.to_le_bytes())
        .unwrap();
    soc.write_mem(L1_PT + vpn1 * 8, &leaf.to_le_bytes())
        .unwrap();

    // Trap handler: record mcause and stop.
    let handler =
        parse_program(&format!("csrr a0, {}\nebreak\n", addr::MCAUSE), Xlen::Rv64).unwrap();
    soc.host_mut().load_program(HANDLER, &handler).unwrap();

    // User process dereferences an unmapped kernel address.
    let user = parse_program(
        &format!(
            "li t0, {}\nld t1, 0(t0)\nebreak\n",
            map::DRAM_BASE + 0x10_0000
        ),
        Xlen::Rv64,
    )
    .unwrap();
    soc.host_mut().load_program(USER_CODE, &user).unwrap();

    let boot = parse_program(
        &format!(
            "
            li t0, {HANDLER}
            csrw {}, t0
            li t0, {}
            csrw {}, t0
            li t0, {USER_CODE}
            csrw {}, t0
            mret
            ",
            addr::MTVEC,
            (8u64 << 60) | (ROOT_PT >> 12),
            addr::SATP,
            addr::MEPC,
        ),
        Xlen::Rv64,
    )
    .unwrap();
    soc.run_host_program(&boot, |_| {}, 10_000_000).unwrap();

    // Load page fault = cause 13.
    assert_eq!(soc.host().core().reg(hulkv_rv::Reg::A0), 13);
}
