#!/usr/bin/env bash
# Local CI gate: everything a PR must pass before merging.
# Mirrors the checks the driver runs, so `./ci.sh` == a green PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "CI OK"
