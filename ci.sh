#!/usr/bin/env bash
# Local CI gate: everything a PR must pass before merging.
# Mirrors the checks the driver runs, so `./ci.sh` == a green PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== preflight: committed baselines =="
# Fail fast, before any long cargo step, if a gate's committed baseline
# is missing or unparseable — a truncated checkout or a bad merge would
# otherwise surface minutes later as a confusing in-gate error.
check_baseline() {
  local file="$1" regen="$2"
  if [ ! -f "$file" ]; then
    echo "ci.sh: missing baseline $file" >&2
    echo "ci.sh: regenerate it with: $regen" >&2
    exit 1
  fi
  if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$file" 2>/dev/null; then
    echo "ci.sh: baseline $file is not valid JSON" >&2
    echo "ci.sh: restore it from git or regenerate with: $regen" >&2
    exit 1
  fi
}
check_baseline BENCH_sim_throughput.baseline.json \
  "cargo run --release -p hulkv-bench --bin sim_throughput -- --out BENCH_sim_throughput.baseline.json"
check_baseline crates/analyze/lint_baseline.json \
  "cargo run --release -p hulkv-analyze --bin hulkv-lint -- --write-baseline"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "== guest-program lint (hulkv-lint) =="
# Static analysis over every kernel, benchmark, example, and committed
# fuzz repro. Fails only on findings NOT accepted (with a justification)
# in crates/analyze/lint_baseline.json.
cargo run --release -p hulkv-analyze --bin hulkv-lint -- --ci

echo "== differential fuzz (fixed seed) =="
# 500 random programs per ISA side, fast paths on vs off in lockstep;
# any architectural or cycle divergence fails the gate and leaves a
# minimized repro in fuzz/repros/.
cargo run --release -p hulkv-fuzz --bin fuzz_iss -- --ci-budget --seed 20260807

echo "== simulator throughput smoke + telemetry =="
# Quick decode-cache on/off run: proves cycle-count neutrality and fails
# if simulated MIPS regressed >30% against the committed baseline (the
# baseline is deliberately conservative to absorb machine variance).
# --timeline-out also samples the mixed workload: the bench itself
# verifies the timeline (non-empty, windows contiguous and monotone in
# cycles, integrated energy == avg power x time within 1%) and aborts on
# any violation; the shell re-checks the exported file's shape so a
# silently-empty export also fails.
timeline="$(mktemp --suffix=.csv)"
trap 'rm -f "$timeline"' EXIT
cargo run --release -p hulkv-bench --bin sim_throughput -- \
  --quick --baseline BENCH_sim_throughput.baseline.json \
  --timeline-out "$timeline"
awk -F, '
  NR == 1 { next }                        # header
  $2 + 0 <= $1 + 0 { print "ci.sh: timeline window " NR " not monotone"; bad = 1 }
  NR > 2 && $1 + 0 != prev_end { print "ci.sh: timeline gap at row " NR; bad = 1 }
  { prev_end = $2 + 0; rows++ }
  END {
    if (rows < 1) { print "ci.sh: timeline is empty"; bad = 1 }
    exit bad
  }
' "$timeline"

echo "== snapshot / record-replay gate (hulkv-replay) =="
# Records a Figure-6 workload with a checkpoint every 10k host cycles,
# then `verify` restores EVERY checkpoint in the ring (including the
# middle mid-program ones) and replays each to completion, asserting the
# final state digest, cycle count and Stats all equal the straight-line
# run. Printed snapshot size and save/restore latency come from the same
# pass. Run twice: decode cache on and off must both replay bit-exactly.
replay_dir="$(mktemp -d)"
trap 'rm -f "$timeline"; rm -rf "$replay_dir"' EXIT
cargo build --release -q -p hulkv-replay
replay=target/release/hulkv-replay
"$replay" record --out "$replay_dir/fig6.hrec" --kernel relu-int8 --period 10000
"$replay" verify "$replay_dir/fig6.hrec" | tee "$replay_dir/verify.log"
grep -q "VERIFY OK" "$replay_dir/verify.log"
"$replay" record --out "$replay_dir/fig6_nodc.hrec" --kernel relu-int8 \
  --period 10000 --no-decode-cache
"$replay" verify "$replay_dir/fig6_nodc.hrec" | tee "$replay_dir/verify_nodc.log"
grep -q "VERIFY OK" "$replay_dir/verify_nodc.log"

# Scripted time-travel session: goto, single-step back, state diff and a
# memory watchpoint must all work end-to-end on the recording.
cat > "$replay_dir/session.txt" <<'EOF'
info
goto 20000
regs
step 5
back 3
diff 20000 30000
watch pc 0x80100004
continue 100000
quit
EOF
"$replay" debug "$replay_dir/fig6.hrec" --script "$replay_dir/session.txt" \
  | tee "$replay_dir/debug.log"
grep -q "fields differ" "$replay_dir/debug.log"
grep -q "watch 0 hit" "$replay_dir/debug.log"

echo "CI OK"
