#!/usr/bin/env bash
# Local CI gate: everything a PR must pass before merging.
# Mirrors the checks the driver runs, so `./ci.sh` == a green PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "== simulator throughput smoke =="
# Quick decode-cache on/off run: proves cycle-count neutrality and fails
# if simulated MIPS regressed >30% against the committed baseline (the
# baseline is deliberately conservative to absorb machine variance).
cargo run --release -p hulkv-bench --bin sim_throughput -- \
  --quick --baseline BENCH_sim_throughput.baseline.json

echo "CI OK"
