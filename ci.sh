#!/usr/bin/env bash
# Local CI gate: everything a PR must pass before merging.
# Mirrors the checks the driver runs, so `./ci.sh` == a green PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "== guest-program lint (hulkv-lint) =="
# Static analysis over every kernel, benchmark, example, and committed
# fuzz repro. Fails only on findings NOT accepted (with a justification)
# in crates/analyze/lint_baseline.json.
cargo run --release -p hulkv-analyze --bin hulkv-lint -- --ci

echo "== differential fuzz (fixed seed) =="
# 500 random programs per ISA side, fast paths on vs off in lockstep;
# any architectural or cycle divergence fails the gate and leaves a
# minimized repro in fuzz/repros/.
cargo run --release -p hulkv-fuzz --bin fuzz_iss -- --ci-budget --seed 20260807

echo "== simulator throughput smoke + telemetry =="
# Quick decode-cache on/off run: proves cycle-count neutrality and fails
# if simulated MIPS regressed >30% against the committed baseline (the
# baseline is deliberately conservative to absorb machine variance).
# --timeline-out also samples the mixed workload: the bench itself
# verifies the timeline (non-empty, windows contiguous and monotone in
# cycles, integrated energy == avg power x time within 1%) and aborts on
# any violation; the shell re-checks the exported file's shape so a
# silently-empty export also fails.
timeline="$(mktemp --suffix=.csv)"
trap 'rm -f "$timeline"' EXIT
cargo run --release -p hulkv-bench --bin sim_throughput -- \
  --quick --baseline BENCH_sim_throughput.baseline.json \
  --timeline-out "$timeline"
awk -F, '
  NR == 1 { next }                        # header
  $2 + 0 <= $1 + 0 { print "ci.sh: timeline window " NR " not monotone"; bad = 1 }
  NR > 2 && $1 + 0 != prev_end { print "ci.sh: timeline gap at row " NR; bad = 1 }
  { prev_end = $2 + 0; rows++ }
  END {
    if (rows < 1) { print "ci.sh: timeline is empty"; bad = 1 }
    exit bad
  }
' "$timeline"

echo "CI OK"
