//! Audio pipeline: the IoT use case HULK-V's peripheral domain exists for.
//!
//! An I2S microphone streams samples; the µDMA drains them into the L2SPM
//! without waking any core; the PMCA FIR-filters the block in parallel;
//! and the host reports the result over the UART.
//!
//! Run with: `cargo run -p hulkv-examples --bin audio_pipeline --release`

use hulkv::{map, HulkV, SocConfig};
use hulkv_examples::{audio_fir_kernel, uart_report_program};
use hulkv_host::{I2sSource, Uart};
use hulkv_mem::{shared, SharedMem};
use hulkv_rv::Reg;
use std::cell::RefCell;
use std::rc::Rc;

const UART_BASE: u64 = map::PERIPH_BASE;
const I2S_BASE: u64 = map::PERIPH_BASE + 0x1000;
const SAMPLES: usize = 1024;
const TAPS: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut soc = HulkV::new(SocConfig::default())?;
    let uart = Rc::new(RefCell::new(Uart::new(115_200, 50_000_000)));
    let uart_dyn: SharedMem = uart.clone();
    soc.map_device("uart", UART_BASE, uart_dyn)?;
    soc.map_device(
        "i2s",
        I2S_BASE,
        shared(I2sSource::new(16_000, 50_000_000, 440.0)),
    )?;

    // 1. µDMA drains one block of samples into the L2SPM (the core sleeps).
    let capture = map::L2SPM_BASE + 0x3_0000;
    let dma_cycles = soc.udma_transfer(I2S_BASE, capture, (SAMPLES + TAPS - 1) * 2)?;
    println!(
        "captured {} samples via uDMA in {} SoC cycles (real-time paced)",
        SAMPLES + TAPS - 1,
        dma_cycles.get()
    );

    // 2. A moving-average FIR (16 taps of 1) on the PMCA, using the
    //    Xpulp SIMD dot product, 8 cores.
    let coeffs = capture + 0x8000;
    let coeff_data: Vec<u8> = std::iter::repeat_n(1i16, TAPS)
        .flat_map(|c| c.to_le_bytes())
        .collect();
    soc.write_mem(coeffs, &coeff_data)?;
    let out = soc.hulk_malloc(SAMPLES * 4)?;

    let kernel = soc.register_kernel(&audio_fir_kernel(TAPS)?)?;
    let r = soc.offload(
        kernel,
        &[
            (Reg::A0, capture),
            (Reg::A1, coeffs),
            (Reg::A2, out),
            (Reg::A3, SAMPLES as u64),
            (Reg::A7, 8),
        ],
        8,
        50_000_000,
    )?;
    println!(
        "FIR on 8 PMCA cores: {} cluster cycles ({} SoC cycles end to end)",
        r.team.cycles.get(),
        r.total_soc_cycles.get()
    );

    // 3. The host scans the filtered signal for its peak and prints it.
    let mut peak = 0i32;
    for i in 0..SAMPLES as u64 {
        let mut w = [0u8; 4];
        soc.read_mem(out + i * 4, &mut w)?;
        peak = peak.max(i32::from_le_bytes(w).abs());
    }
    let report = format!("peak(|y|) = {peak}\n");
    let words = uart_report_program(&report, UART_BASE)?;
    soc.run_host_program(&words, |_| {}, 10_000_000)?;
    print!(
        "host console: {}",
        String::from_utf8_lossy(uart.borrow().output())
    );

    // Sanity: a 16-tap moving average of a 12000-amplitude 440 Hz tone at
    // 16 kHz keeps a healthy fraction of the amplitude.
    assert!(peak > 30_000, "unexpectedly weak filtered signal: {peak}");
    Ok(())
}
