//! Memory explorer: measure how the four memory configurations of the
//! paper (DDR4/HyperRAM × with/without LLC) behave under a pointer-chasing
//! workload, and what that costs in interface power.
//!
//! Run with: `cargo run -p hulkv-examples --bin memory_explorer --release`

use hulkv::MemorySetup;
use hulkv_kernels::iot::{IotBenchmark, Scale};
use hulkv_power::DramInterfacePower;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pointer-chase (64 kB list, 32k hops) across memory configurations:\n");
    println!(
        "{:<12} {:>12} {:>12} {:>14}",
        "config", "cycles", "L1D miss", "DRAM bytes"
    );
    let mut baseline = None;
    for setup in MemorySetup::ALL {
        let run = IotBenchmark::PointerChase.run(setup, Scale(1))?;
        let base = *baseline.get_or_insert(run.cycles.get() as f64);
        println!(
            "{:<12} {:>12} {:>11.1}% {:>14}   ({:.2}x)",
            setup.name(),
            run.cycles.get(),
            run.l1d_miss_ratio * 100.0,
            run.dram_bytes_read,
            run.cycles.get() as f64 / base,
        );
    }

    println!("\nmemory-interface power at IoT bandwidths:");
    let hyper = DramInterfacePower::hyperram();
    let lpddr = DramInterfacePower::lpddr4();
    println!("{:<10} {:>14} {:>14}", "BW (MB/s)", hyper.name, lpddr.name);
    for mbps in [0u32, 50, 100, 200, 400] {
        let bw = mbps as f64 * 1e6;
        println!(
            "{:<10} {:>12.1}mW {:>12.1}mW",
            mbps,
            hyper.power_mw(bw),
            lpddr.power_mw(bw)
        );
    }
    println!(
        "\nThe fully digital HyperRAM path idles at {:.0} mW where the LPDDR4\n\
         controller+PHY idles at {:.0} mW — the 2x system-efficiency gap of Figure 9.",
        hyper.static_mw, lpddr.static_mw
    );
    Ok(())
}
