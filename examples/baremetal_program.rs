//! Bare-metal programming: use the assembler and the raw core models
//! directly — hardware loops, post-increment addressing, packed SIMD and
//! the Sv39 MMU — without the SoC harness.
//!
//! Run with: `cargo run -p hulkv-examples --bin baremetal_program`

use hulkv_examples::{countdown_program, sv39_probe_program, xpulp_dotp_program};
use hulkv_rv::csr::addr;
use hulkv_rv::{Core, CostModel, FlatBus, Reg, Xlen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- A: Xpulp dot product on one RI5CY core ------------------------
    // 16 int8 pairs with hardware loop + packed SIMD: 4 MACs per sdotsp.
    let mut bus = FlatBus::new(1 << 16);
    bus.load_words(0, &xpulp_dotp_program(0x1000, 0x1100, 4)?);
    let x: Vec<i8> = (1..=16).collect();
    let w: Vec<i8> = (1..=16).rev().collect();
    bus.write_bytes(0x1000, &x.iter().map(|&v| v as u8).collect::<Vec<_>>());
    bus.write_bytes(0x1100, &w.iter().map(|&v| v as u8).collect::<Vec<_>>());

    let mut core = Core::ri5cy(0);
    core.run(&mut bus, 10_000)?;
    let expect: i32 = x.iter().zip(&w).map(|(&a, &b)| a as i32 * b as i32).sum();
    println!(
        "RI5CY dot product: {} (expected {}) in {} cycles, {} instructions",
        core.reg(Reg::A0) as i32,
        expect,
        core.cycles().get(),
        core.instret()
    );
    assert_eq!(core.reg(Reg::A0) as i32, expect);

    // --- B: Sv39 virtual memory on the CVA6 model ----------------------
    // Identity-map a gigapage with a single level-2 PTE, enter supervisor
    // mode, and run a load through translation.
    let mut bus = FlatBus::new(1 << 20);
    bus.load_words(0x8000, &sv39_probe_program(0x5000)?);
    bus.write_bytes(0x5000, &0xFEED_F00D_u64.to_le_bytes()[..8]);
    // Root page table at 0x10000: entry 0 = identity RWX gigapage.
    let pte: u64 = 0xCF; // V|R|W|X|A|D, PPN 0
    bus.write_bytes(0x10_000, &pte.to_le_bytes());

    let mut core = Core::new(Xlen::Rv64, CostModel::cva6());
    core.csrs_mut()
        .write(addr::SATP, (8u64 << 60) | (0x10_000 >> 12));
    core.set_priv_mode(hulkv_rv::PrivMode::Supervisor);
    core.set_pc(0x8000);
    core.run(&mut bus, 10_000)?;
    println!(
        "CVA6 load through Sv39: {:#x} at privilege {:?}",
        core.reg(Reg::A0),
        core.priv_mode()
    );
    assert_eq!(core.reg(Reg::A0), 0xFEED_F00D);

    // --- C: cost-model comparison --------------------------------------
    // The same scalar loop on both microarchitectures.
    let words = countdown_program(1000)?;

    for (name, mut core) in [
        ("CVA6 ", Core::new(Xlen::Rv32, CostModel::cva6())),
        ("RI5CY", Core::ri5cy(0)),
    ] {
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &words);
        core.run(&mut bus, 100_000)?;
        println!(
            "{name}: 1000-iteration countdown in {} cycles (taken-branch penalty differs)",
            core.cycles().get()
        );
    }
    Ok(())
}
