//! Shared support for the HULK-V examples (each example is a standalone
//! binary; see `quickstart.rs` first).
//!
//! The guest programs the examples assemble live here rather than inline
//! in the binaries so that `hulkv-lint` can statically analyze exactly
//! the code the examples run — [`guest_programs`] is the lint surface.

use hulkv_rv::{Asm, Reg, RvError, Xlen};

/// Where an example program executes, which fixes the ISA flavour and the
/// memory view `hulkv-lint` checks it against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExampleTarget {
    /// RV64 program run through [`hulkv::HulkV::run_host_program`] (loads
    /// at `map::HOST_CODE`, checked against the host bus map).
    Host,
    /// RV32 Xpulp kernel offloaded to the PMCA (executes from the L2SPM,
    /// checked against the TCDM + IOPMP windows).
    Cluster,
    /// Program run on a raw core over a [`hulkv_rv::FlatBus`] at the given
    /// base — no SoC memory view applies.
    Raw {
        /// Load/entry address on the flat bus.
        base: u64,
        /// Register width of the raw core.
        xlen: Xlen,
    },
}

/// One example guest program surfaced for static analysis.
#[derive(Debug, Clone)]
pub struct ExampleProgram {
    /// Report / baseline key.
    pub name: &'static str,
    /// Assembled instruction words.
    pub words: Vec<u32>,
    /// Where it runs.
    pub target: ExampleTarget,
}

/// `quickstart`: sum the integers `1..=1000` on the host.
pub fn host_sum_program() -> Result<Vec<u32>, RvError> {
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::A0, 0);
    a.li(Reg::T0, 1000);
    let top = a.label();
    a.bind(top);
    a.add(Reg::A0, Reg::A0, Reg::T0);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.ebreak();
    a.assemble()
}

/// `quickstart`: each PMCA core squares its hart id and stores the result
/// into the shared buffer passed in `a0`.
pub fn hart_square_kernel() -> Result<Vec<u32>, RvError> {
    let mut a = Asm::new(Xlen::Rv32);
    a.csrr(Reg::T0, hulkv_rv::csr::addr::MHARTID);
    a.mul(Reg::T1, Reg::T0, Reg::T0);
    a.slli(Reg::T0, Reg::T0, 2);
    a.add(Reg::T0, Reg::T0, Reg::A0);
    a.sw(Reg::T1, Reg::T0, 0);
    a.ebreak();
    a.assemble()
}

/// `audio_pipeline`: int16 FIR on the PMCA — each core filters samples
/// `hartid, hartid + ncores, …` with a hardware loop around the Xpulp
/// packed dot product. Arguments: `a0` = samples, `a1` = coefficients,
/// `a2` = output, `a3` = sample count, `a7` = core count.
pub fn audio_fir_kernel(taps: usize) -> Result<Vec<u32>, RvError> {
    let mut k = Asm::new(Xlen::Rv32);
    k.csrr(Reg::S0, hulkv_rv::csr::addr::MHARTID);
    let done = k.label();
    let loop_i = k.label();
    k.bind(loop_i);
    k.bge(Reg::S0, Reg::A3, done);
    k.slli(Reg::T0, Reg::S0, 1);
    k.add(Reg::T0, Reg::T0, Reg::A0);
    k.mv(Reg::T1, Reg::A1);
    k.li(Reg::T4, 0);
    k.lp_counti(0, (taps / 2) as i64);
    let (ls, le) = (k.label(), k.label());
    k.lp_starti(0, ls);
    k.lp_endi(0, le);
    k.bind(ls);
    k.p_lw_post(Reg::T5, Reg::T0, 4);
    k.p_lw_post(Reg::T6, Reg::T1, 4);
    k.pv_sdotsp_h(Reg::T4, Reg::T5, Reg::T6);
    k.bind(le);
    k.slli(Reg::T2, Reg::S0, 2);
    k.add(Reg::T2, Reg::T2, Reg::A2);
    k.sw(Reg::T4, Reg::T2, 0);
    k.add(Reg::S0, Reg::S0, Reg::A7);
    k.j(loop_i);
    k.bind(done);
    k.ebreak();
    k.assemble()
}

/// `audio_pipeline`: the host prints `report` byte-by-byte to a UART
/// mapped at `uart_base`.
pub fn uart_report_program(report: &str, uart_base: u64) -> Result<Vec<u32>, RvError> {
    let mut p = Asm::new(Xlen::Rv64);
    p.li(Reg::T0, uart_base as i64);
    for b in report.bytes() {
        p.li(Reg::T1, b as i64);
        p.sb(Reg::T1, Reg::T0, 0);
    }
    p.ebreak();
    p.assemble()
}

/// `baremetal_program` part A: Xpulp int8 dot product with a hardware
/// loop, reading `words` packed words from `x` and `w`.
pub fn xpulp_dotp_program(x: u64, w: u64, words: i64) -> Result<Vec<u32>, RvError> {
    let mut a = Asm::new(Xlen::Rv32);
    a.li(Reg::T0, x as i64);
    a.li(Reg::T1, w as i64);
    a.li(Reg::A0, 0);
    a.lp_counti(0, words);
    let (ls, le) = (a.label(), a.label());
    a.lp_starti(0, ls);
    a.lp_endi(0, le);
    a.bind(ls);
    a.p_lw_post(Reg::T2, Reg::T0, 4);
    a.p_lw_post(Reg::T3, Reg::T1, 4);
    a.pv_sdotsp_b(Reg::A0, Reg::T2, Reg::T3);
    a.bind(le);
    a.ebreak();
    a.assemble()
}

/// `baremetal_program` part B: one RV64 load through Sv39 translation.
pub fn sv39_probe_program(addr: u64) -> Result<Vec<u32>, RvError> {
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::T0, addr as i64);
    a.ld(Reg::A0, Reg::T0, 0);
    a.ebreak();
    a.assemble()
}

/// `baremetal_program` part C: an `n`-iteration countdown loop (the
/// cost-model comparison workload).
pub fn countdown_program(n: i64) -> Result<Vec<u32>, RvError> {
    let mut a = Asm::new(Xlen::Rv32);
    a.li(Reg::T0, n);
    let top = a.label();
    a.bind(top);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.ebreak();
    a.assemble()
}

/// Every guest program the examples assemble, with the parameters the
/// binaries use — the `hulkv-lint` input set.
///
/// # Panics
///
/// Panics if an example program fails to assemble (a bug by definition:
/// the same builders run in the examples).
pub fn guest_programs() -> Vec<ExampleProgram> {
    let raw32 = |base| ExampleTarget::Raw {
        base,
        xlen: Xlen::Rv32,
    };
    vec![
        ExampleProgram {
            name: "examples/quickstart/host-sum",
            words: host_sum_program().expect("assemble"),
            target: ExampleTarget::Host,
        },
        ExampleProgram {
            name: "examples/quickstart/hart-square",
            words: hart_square_kernel().expect("assemble"),
            target: ExampleTarget::Cluster,
        },
        ExampleProgram {
            name: "examples/audio-pipeline/fir",
            words: audio_fir_kernel(16).expect("assemble"),
            target: ExampleTarget::Cluster,
        },
        ExampleProgram {
            name: "examples/audio-pipeline/uart-report",
            words: uart_report_program("peak(|y|) = 0\n", hulkv::map::PERIPH_BASE)
                .expect("assemble"),
            target: ExampleTarget::Host,
        },
        ExampleProgram {
            name: "examples/baremetal/xpulp-dotp",
            words: xpulp_dotp_program(0x1000, 0x1100, 4).expect("assemble"),
            target: raw32(0),
        },
        ExampleProgram {
            name: "examples/baremetal/sv39-probe",
            words: sv39_probe_program(0x5000).expect("assemble"),
            target: ExampleTarget::Raw {
                base: 0x8000,
                xlen: Xlen::Rv64,
            },
        },
        ExampleProgram {
            name: "examples/baremetal/countdown",
            words: countdown_program(1000).expect("assemble"),
            target: raw32(0),
        },
    ]
}
