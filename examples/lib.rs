//! Shared support for the HULK-V examples (each example is a standalone
//! binary; see `quickstart.rs` first).
