//! Quickstart: boot a HULK-V SoC, run a program on the Linux-class host,
//! then offload a parallel kernel to the 8-core PMCA.
//!
//! Run with: `cargo run -p hulkv-examples --bin quickstart`

use hulkv::{HulkV, SocConfig};
use hulkv_examples::{hart_square_kernel, host_sum_program};
use hulkv_rv::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the flagship SoC: CVA6 host @900 MHz, 8-core PMCA @400 MHz,
    //    512 kB L2SPM, 128 kB LLC, 512 MB HyperRAM.
    let mut soc = HulkV::new(SocConfig::default())?;
    println!(
        "HULK-V up: {} MB of main memory behind {}",
        soc.config().main_memory_bytes() >> 20,
        if soc.config().llc.is_some() {
            "a 128 kB LLC"
        } else {
            "no LLC"
        },
    );

    // 2. Run a scalar program on the host: sum the integers 1..=1000.
    let cycles = soc.run_host_program(&host_sum_program()?, |_| {}, 1_000_000)?;
    println!(
        "host: sum(1..=1000) = {} in {} CVA6 cycles",
        soc.host().core().reg(Reg::A0),
        cycles.get()
    );

    // 3. Offload to the PMCA: each of the 8 cores squares its hart id and
    //    stores the result into a shared buffer allocated with hulk_malloc.
    let buf = soc.hulk_malloc(8 * 4)?;
    let k = soc.register_kernel(&hart_square_kernel()?)?;
    let result = soc.offload(k, &[(Reg::A0, buf)], 8, 1_000_000)?;
    println!(
        "cluster: offload took {} SoC cycles ({} of overhead{})",
        result.total_soc_cycles.get(),
        result.overhead_cycles.get(),
        if result.code_loaded {
            ", incl. lazy code load"
        } else {
            ""
        },
    );
    print!("cluster results (hart_id^2): ");
    for hart in 0..8u64 {
        let mut word = [0u8; 4];
        soc.read_mem(buf + hart * 4, &mut word)?;
        print!("{} ", u32::from_le_bytes(word));
    }
    println!();

    // 4. A second offload rides the cached kernel code — cheaper.
    let again = soc.offload(k, &[(Reg::A0, buf)], 8, 1_000_000)?;
    println!(
        "second offload: {} SoC cycles (code already resident)",
        again.total_soc_cycles.get()
    );
    assert!(again.total_soc_cycles < result.total_soc_cycles);
    Ok(())
}
