//! Quickstart: boot a HULK-V SoC, run a program on the Linux-class host,
//! then offload a parallel kernel to the 8-core PMCA.
//!
//! Run with: `cargo run -p hulkv-examples --bin quickstart`

use hulkv::{HulkV, SocConfig};
use hulkv_rv::{Asm, Reg, Xlen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the flagship SoC: CVA6 host @900 MHz, 8-core PMCA @400 MHz,
    //    512 kB L2SPM, 128 kB LLC, 512 MB HyperRAM.
    let mut soc = HulkV::new(SocConfig::default())?;
    println!(
        "HULK-V up: {} MB of main memory behind {}",
        soc.config().main_memory_bytes() >> 20,
        if soc.config().llc.is_some() {
            "a 128 kB LLC"
        } else {
            "no LLC"
        },
    );

    // 2. Run a scalar program on the host: sum the integers 1..=1000.
    let mut host_prog = Asm::new(Xlen::Rv64);
    host_prog.li(Reg::A0, 0);
    host_prog.li(Reg::T0, 1000);
    let top = host_prog.label();
    host_prog.bind(top);
    host_prog.add(Reg::A0, Reg::A0, Reg::T0);
    host_prog.addi(Reg::T0, Reg::T0, -1);
    host_prog.bnez(Reg::T0, top);
    host_prog.ebreak();

    let cycles = soc.run_host_program(&host_prog.assemble()?, |_| {}, 1_000_000)?;
    println!(
        "host: sum(1..=1000) = {} in {} CVA6 cycles",
        soc.host().core().reg(Reg::A0),
        cycles.get()
    );

    // 3. Offload to the PMCA: each of the 8 cores squares its hart id and
    //    stores the result into a shared buffer allocated with hulk_malloc.
    let buf = soc.hulk_malloc(8 * 4)?;
    let mut kernel = Asm::new(Xlen::Rv32);
    kernel.csrr(Reg::T0, hulkv_rv::csr::addr::MHARTID);
    kernel.mul(Reg::T1, Reg::T0, Reg::T0);
    kernel.slli(Reg::T0, Reg::T0, 2);
    kernel.add(Reg::T0, Reg::T0, Reg::A0);
    kernel.sw(Reg::T1, Reg::T0, 0);
    kernel.ebreak();

    let k = soc.register_kernel(&kernel.assemble()?)?;
    let result = soc.offload(k, &[(Reg::A0, buf)], 8, 1_000_000)?;
    println!(
        "cluster: offload took {} SoC cycles ({} of overhead{})",
        result.total_soc_cycles.get(),
        result.overhead_cycles.get(),
        if result.code_loaded {
            ", incl. lazy code load"
        } else {
            ""
        },
    );
    print!("cluster results (hart_id^2): ");
    for hart in 0..8u64 {
        let mut word = [0u8; 4];
        soc.read_mem(buf + hart * 4, &mut word)?;
        print!("{} ", u32::from_le_bytes(word));
    }
    println!();

    // 4. A second offload rides the cached kernel code — cheaper.
    let again = soc.offload(k, &[(Reg::A0, buf)], 8, 1_000_000)?;
    println!(
        "second offload: {} SoC cycles (code already resident)",
        again.total_soc_cycles.get()
    );
    assert!(again.total_soc_cycles < result.total_soc_cycles);
    Ok(())
}
