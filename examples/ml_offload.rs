//! ML offload: run an int8 matrix multiplication — the inner kernel of
//! quantized DNN inference — on the scalar host and on the SIMD cluster,
//! and compare cycles, GOps and energy efficiency like Figure 6 does.
//!
//! Run with: `cargo run -p hulkv-examples --bin ml_offload --release`

use hulkv::{HulkV, SocConfig};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_power::PowerModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = KernelParams::small();
    let mut soc = HulkV::new(SocConfig::default())?;
    let power = PowerModel::gf22fdx_tt();

    println!(
        "int8 matmul, {0}x{0} tile ({1} ops per run)",
        params.matmul_n,
        Kernel::MatMulI8.ops(&params)
    );

    // Scalar baseline on CVA6 @900 MHz.
    let host = Kernel::MatMulI8.run_on_host(&mut soc, &params)?;
    let host_seconds = host.cycles.get() as f64 / 900.0e6;
    let host_gops = host.ops as f64 / host_seconds / 1e9;
    println!(
        "CVA6    : {:>9} cycles  {:>6.3} GOps  {:>6.2} GOps/W  (verified: {})",
        host.cycles.get(),
        host_gops,
        host_gops / (power.cva6.max_power_mw() / 1000.0),
        host.verified
    );

    // 8-core Xpulp cluster @400 MHz.
    let cluster = Kernel::MatMulI8.run_on_cluster(&mut soc, &params, 8)?;
    let kernel_seconds = cluster.kernel_cycles.get() as f64 / 400.0e6;
    let cluster_gops = cluster.ops as f64 / kernel_seconds / 1e9;
    println!(
        "PMCA x8 : {:>9} cycles  {:>6.3} GOps  {:>6.2} GOps/W  (verified: {})",
        cluster.kernel_cycles.get(),
        cluster_gops,
        cluster_gops / (power.pmca.max_power_mw() / 1000.0),
        cluster.verified
    );

    println!(
        "speedup : {:.1}x when executed once, {:.1}x amortized over 1000 runs",
        host_seconds / (cluster.soc_cycles_amortized(1) / 450.0e6),
        host_seconds / (cluster.soc_cycles_amortized(1000) / 450.0e6),
    );

    // Scaling: how the same kernel behaves on 1, 2, 4, 8 cores.
    println!("\nteam scaling (kernel cycles):");
    for cores in [1usize, 2, 4, 8] {
        let mut soc = HulkV::new(SocConfig::default())?;
        let run = Kernel::MatMulI8.run_on_cluster(&mut soc, &params, cores)?;
        println!("  {cores} core(s): {:>9}", run.kernel_cycles.get());
    }
    Ok(())
}
