//! Figure 8: the LLC effect on the five CPU-centric IoT benchmarks.

use hulkv::{MemorySetup, SocError};
use hulkv_kernels::iot::{IotBenchmark, IotRun, Scale};

/// One benchmark's runs over the four memory configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// One run per [`MemorySetup::ALL`] entry, in that order.
    pub runs: [IotRun; 4],
}

impl Fig8Row {
    /// Cycles normalized to the DDR4+LLC configuration (the paper plots
    /// relative performance).
    pub fn normalized_cycles(&self) -> [f64; 4] {
        let base = self.runs[0].cycles.get() as f64;
        [
            1.0,
            self.runs[1].cycles.get() as f64 / base,
            self.runs[2].cycles.get() as f64 / base,
            self.runs[3].cycles.get() as f64 / base,
        ]
    }
}

/// Runs the full Figure-8 grid.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn llc_effect(scale: Scale) -> Result<Vec<Fig8Row>, SocError> {
    let mut rows = Vec::new();
    for bench in IotBenchmark::FIGURE8 {
        let mut runs = Vec::with_capacity(4);
        for setup in MemorySetup::ALL {
            runs.push(bench.run(setup, scale)?);
        }
        let runs: [IotRun; 4] = runs.try_into().expect("four runs");
        rows.push(Fig8Row {
            bench: bench.name(),
            runs,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_configs_stay_close() {
        // "cases 1 and 2 have very similar performance, closer than 5%,
        // meaning that LPDDR/DDR memories would be oversized".
        let rows = llc_effect(Scale(1)).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.runs.iter().all(|r| r.verified), "{}", row.bench);
            let n = row.normalized_cycles();
            assert!(
                n[1] < 1.10,
                "{}: Hyper+LLC at {:.2}x of DDR4+LLC",
                row.bench,
                n[1]
            );
        }
    }
}
