//! Shared observability plumbing for the bench binaries.
//!
//! Every binary in `src/bin` accepts two optional flags:
//!
//! * `--metrics-out <path>` — writes a [`MetricsSnapshot`] JSON document
//!   with the activity counters of every SoC block plus the per-block
//!   power envelope of the GF22FDX model;
//! * `--trace-out <path>` — writes a Chrome `trace_event` JSON file
//!   (loadable in Perfetto / `chrome://tracing`) with one track per host
//!   hart, cluster core, DMA engine, L1/LLC cache and the DRAM controller.
//!
//! Both flags run the same instrumented reference workload — an int8
//! matrix multiplication executed first on the CVA6 host and then
//! offloaded to the 8-core PMCA — on a freshly built flagship SoC, so the
//! exported documents are comparable across binaries and runs. A hot-spot
//! profile of the host-side run is printed alongside.

use hulkv::{HulkV, SocConfig};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_power::PowerModel;
use hulkv_rv::{hotspot_report, Xlen};
use hulkv_sim::{category, Tracer};

/// Parsed observability flags.
#[derive(Debug, Default, Clone)]
pub struct ObsArgs {
    /// Destination for the metrics JSON document, if requested.
    pub metrics_out: Option<String>,
    /// Destination for the Chrome-trace JSON file, if requested.
    pub trace_out: Option<String>,
}

impl ObsArgs {
    /// Parses `--metrics-out <path>` / `--trace-out <path>` (also the
    /// `--flag=path` spelling) from the process arguments. Unknown
    /// arguments are ignored — the binaries have no other flags.
    pub fn from_env() -> Self {
        let mut out = ObsArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut bind = |slot: &mut Option<String>, flag: &str| {
                if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                    *slot = Some(v.to_owned());
                } else if arg == flag {
                    *slot = args.next();
                }
            };
            bind(&mut out.metrics_out, "--metrics-out");
            bind(&mut out.trace_out, "--trace-out");
        }
        out
    }

    /// Whether any output was requested.
    pub fn active(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some()
    }
}

/// Runs the instrumented reference workload and writes the requested
/// documents. `figures` lets a binary attach its headline numbers to the
/// metrics snapshot (they land under the `figures` key).
///
/// # Panics
///
/// Panics if the workload fails or an output file cannot be written —
/// appropriate for a benchmark binary's top level.
pub fn emit(args: &ObsArgs, figures: &[(&str, f64)]) {
    if !args.active() {
        return;
    }

    let mut soc = HulkV::new(SocConfig::default()).expect("default SoC");
    let tracer = Tracer::shared(1 << 18);
    tracer.borrow_mut().enable(category::ALL);
    soc.attach_tracer(tracer.clone());
    soc.host_mut().core_mut().enable_profile();

    let params = KernelParams::tiny();
    Kernel::MatMulI8
        .run_on_host(&mut soc, &params)
        .expect("host matmul");
    Kernel::MatMulI8
        .run_on_cluster(&mut soc, &params, 8)
        .expect("cluster matmul offload");

    if let Some(path) = &args.metrics_out {
        let mut snap = soc.metrics_snapshot();
        let power = PowerModel::gf22fdx_tt();
        for block in power.blocks() {
            snap.set_power_mw(block.name, block.max_power_mw());
        }
        for &(name, value) in figures {
            snap.set_figure(name, value);
        }
        std::fs::write(path, format!("{}\n", snap.to_json()))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("metrics written to {path}");
    }

    if let Some(path) = &args.trace_out {
        let t = tracer.borrow();
        std::fs::write(path, format!("{}\n", t.chrome_trace()))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "trace written to {path} ({} events{}) — load it in Perfetto",
            t.len(),
            if t.dropped() > 0 {
                format!(", {} dropped", t.dropped())
            } else {
                String::new()
            }
        );
    }

    if let Some(profile) = soc.host_mut().core_mut().take_profile() {
        println!();
        println!("{}", hotspot_report(&profile, Xlen::Rv64, false, 5));
    }
}

/// One-call wrapper for binary `main`s: parse the flags, and if any output
/// was requested, run the instrumented workload and write it.
pub fn finish(figures: &[(&str, f64)]) {
    emit(&ObsArgs::from_env(), figures);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_args_are_a_no_op() {
        let args = ObsArgs::default();
        assert!(!args.active());
        emit(&args, &[]); // must not build a SoC or write anything
    }

    #[test]
    fn emit_writes_metrics_and_trace_files() {
        let dir = std::env::temp_dir();
        let metrics = dir.join("hulkv_obs_test_metrics.json");
        let trace = dir.join("hulkv_obs_test_trace.json");
        let args = ObsArgs {
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            trace_out: Some(trace.to_string_lossy().into_owned()),
        };
        emit(&args, &[("answer", 42.0)]);

        let m = std::fs::read_to_string(&metrics).unwrap();
        let snap = hulkv_sim::MetricsSnapshot::parse(&m).unwrap();
        assert!(snap.blocks.iter().any(|b| b.name() == "cluster"));
        assert!(snap.total_power_mw() > 0.0);
        assert_eq!(snap.figures.get("answer"), Some(&42.0));

        let t = std::fs::read_to_string(&trace).unwrap();
        let json = hulkv_sim::Json::parse(&t).unwrap();
        let events = json.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // Thread-name metadata for at least the four required tracks.
        let named: std::collections::BTreeSet<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        for required in ["host/cva6", "cluster/core0", "dma/udma", "mem/llc"] {
            assert!(named.contains(required), "missing {required} in {named:?}");
        }
        let _ = std::fs::remove_file(metrics);
        let _ = std::fs::remove_file(trace);
    }
}
