//! Shared observability plumbing for the bench binaries.
//!
//! Every binary in `src/bin` accepts two optional flags:
//!
//! * `--metrics-out <path>` — writes a [`MetricsSnapshot`] JSON document
//!   with the activity counters of every SoC block plus the per-block
//!   power envelope of the GF22FDX model;
//! * `--trace-out <path>` — writes a Chrome `trace_event` JSON file
//!   (loadable in Perfetto / `chrome://tracing`) with one track per host
//!   hart, cluster core, DMA engine, L1/LLC cache and the DRAM controller;
//! * `--timeline-out <path>` — samples every block's counters at a fixed
//!   period (`--timeline-period <cycles>`, default 1000 SoC cycles),
//!   enriches each window with Table II power and integrated energy, and
//!   writes the time series as CSV (when the path ends in `.csv`) or
//!   JSONL. With `--trace-out` the same windows also appear as Chrome
//!   counter tracks in the trace; with `--metrics-out` the integrated
//!   energy totals land in the snapshot's `energy` section.
//!
//! Both flags run the same instrumented reference workload — an int8
//! matrix multiplication executed first on the CVA6 host and then
//! offloaded to the 8-core PMCA — on a freshly built flagship SoC, so the
//! exported documents are comparable across binaries and runs. A hot-spot
//! profile of the host-side run is printed alongside.

use hulkv::{HulkV, SocConfig};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_power::{EnergySummary, PowerModel};
use hulkv_rv::{hotspot_report, Xlen};
use hulkv_sim::{category, Timeline, Tracer};

/// Parsed observability flags.
#[derive(Debug, Default, Clone)]
pub struct ObsArgs {
    /// Destination for the metrics JSON document, if requested.
    pub metrics_out: Option<String>,
    /// Destination for the Chrome-trace JSON file, if requested.
    pub trace_out: Option<String>,
    /// Destination for the telemetry timeline (CSV or JSONL), if
    /// requested.
    pub timeline_out: Option<String>,
    /// Sampling period in SoC-interconnect cycles (default 1000).
    pub timeline_period: Option<u64>,
}

impl ObsArgs {
    /// Parses `--metrics-out <path>` / `--trace-out <path>` (also the
    /// `--flag=path` spelling) from the process arguments. Unknown
    /// arguments are ignored — the binaries have no other flags.
    pub fn from_env() -> Self {
        let mut out = ObsArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut bind = |slot: &mut Option<String>, flag: &str| {
                if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                    *slot = Some(v.to_owned());
                } else if arg == flag {
                    *slot = args.next();
                }
            };
            bind(&mut out.metrics_out, "--metrics-out");
            bind(&mut out.trace_out, "--trace-out");
            bind(&mut out.timeline_out, "--timeline-out");
            let mut period = None;
            bind(&mut period, "--timeline-period");
            if let Some(p) = period {
                out.timeline_period = p.parse().ok();
            }
        }
        out
    }

    /// Whether any output was requested.
    pub fn active(&self) -> bool {
        self.metrics_out.is_some() || self.trace_out.is_some() || self.timeline_out.is_some()
    }
}

/// Runs the instrumented reference workload and writes the requested
/// documents. `figures` lets a binary attach its headline numbers to the
/// metrics snapshot (they land under the `figures` key).
///
/// # Panics
///
/// Panics if the workload fails or an output file cannot be written —
/// appropriate for a benchmark binary's top level.
pub fn emit(args: &ObsArgs, figures: &[(&str, f64)]) {
    if !args.active() {
        return;
    }

    let mut soc = HulkV::new(SocConfig::default()).expect("default SoC");
    let tracer = Tracer::shared(1 << 18);
    tracer.borrow_mut().enable(category::ALL);
    soc.attach_tracer(tracer.clone());
    soc.host_mut().core_mut().enable_profile();
    if args.timeline_out.is_some() {
        soc.enable_timeline(args.timeline_period.unwrap_or(1000));
    }

    let params = KernelParams::tiny();
    Kernel::MatMulI8
        .run_on_host(&mut soc, &params)
        .expect("host matmul");
    Kernel::MatMulI8
        .run_on_cluster(&mut soc, &params, 8)
        .expect("cluster matmul offload");

    let power = PowerModel::gf22fdx_tt();
    let soc_mhz = soc.config().host.soc_freq.as_mhz_f64();
    let mut timeline = soc.take_timeline();
    let summary = timeline.as_mut().map(|tl| {
        let cores = soc.config().cluster.cores as u64;
        let s = hulkv_power::enrich_timeline(tl, &power, soc_mhz, cores);
        verify_timeline(tl, &s, soc_mhz);
        s
    });

    if let Some(path) = &args.metrics_out {
        let mut snap = soc.metrics_snapshot();
        for block in power.blocks() {
            snap.set_power_mw(block.name, block.max_power_mw());
        }
        if let Some(s) = &summary {
            s.apply_to(&mut snap);
        }
        for &(name, value) in figures {
            snap.set_figure(name, value);
        }
        std::fs::write(path, format!("{}\n", snap.to_json()))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("metrics written to {path}");
    }

    if let Some(path) = &args.timeline_out {
        let tl = timeline.as_ref().expect("timeline was enabled");
        let body = if path.ends_with(".csv") {
            tl.to_csv()
        } else {
            tl.to_jsonl()
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        let s = summary.as_ref().expect("summary computed with timeline");
        println!(
            "timeline written to {path} ({} windows, {:.3} mJ over {} soc cycles, peak {:.1} mW)",
            tl.len(),
            s.total_mj,
            s.duration_cycles,
            s.peak_power_mw
        );
    }

    if let Some(path) = &args.trace_out {
        let t = tracer.borrow();
        let counters = timeline
            .as_ref()
            .map(Timeline::chrome_counter_events)
            .unwrap_or_default();
        std::fs::write(path, format!("{}\n", t.chrome_trace_with(&counters)))
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "trace written to {path} ({} events{}) — load it in Perfetto",
            t.len(),
            if t.dropped() > 0 {
                format!(", {} dropped", t.dropped())
            } else {
                String::new()
            }
        );
    }

    if let Some(profile) = soc.host_mut().core_mut().take_profile() {
        println!();
        println!("{}", hotspot_report(&profile, Xlen::Rv64, false, 5));
    }
}

/// One-call wrapper for binary `main`s: parse the flags, and if any output
/// was requested, run the instrumented workload and write it.
pub fn finish(figures: &[(&str, f64)]) {
    emit(&ObsArgs::from_env(), figures);
}

/// Sanity-checks an enriched timeline before it is exported: windows must
/// exist, be contiguous and monotone in cycles, and the integrated energy
/// must equal the time-weighted average power times the covered time to
/// within 1 % — the CI gate for the telemetry path.
///
/// # Panics
///
/// Panics when any invariant is violated.
pub fn verify_timeline(tl: &Timeline, summary: &EnergySummary, soc_mhz: f64) {
    assert!(!tl.is_empty(), "timeline must hold at least one window");
    let mut last_end = 0;
    for w in tl.windows() {
        assert_eq!(w.start_cycle, last_end, "windows must be contiguous");
        assert!(w.end_cycle > w.start_cycle, "windows must be monotone");
        last_end = w.end_cycle;
    }
    let duration_s = summary.duration_cycles as f64 / (soc_mhz * 1e6);
    let recomputed_mj = summary.avg_power_mw * duration_s;
    let err = (recomputed_mj - summary.total_mj).abs() / summary.total_mj.max(f64::MIN_POSITIVE);
    assert!(
        err < 0.01,
        "integrated energy {:.6} mJ deviates from avg-power × time {:.6} mJ by {:.4}%",
        summary.total_mj,
        recomputed_mj,
        err * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_args_are_a_no_op() {
        let args = ObsArgs::default();
        assert!(!args.active());
        emit(&args, &[]); // must not build a SoC or write anything
    }

    #[test]
    fn emit_writes_metrics_and_trace_files() {
        let dir = std::env::temp_dir();
        let metrics = dir.join("hulkv_obs_test_metrics.json");
        let trace = dir.join("hulkv_obs_test_trace.json");
        let args = ObsArgs {
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            trace_out: Some(trace.to_string_lossy().into_owned()),
            ..ObsArgs::default()
        };
        emit(&args, &[("answer", 42.0)]);

        let m = std::fs::read_to_string(&metrics).unwrap();
        let snap = hulkv_sim::MetricsSnapshot::parse(&m).unwrap();
        assert!(snap.blocks.iter().any(|b| b.name() == "cluster"));
        assert!(snap.total_power_mw() > 0.0);
        assert_eq!(snap.figures.get("answer"), Some(&42.0));

        let t = std::fs::read_to_string(&trace).unwrap();
        let json = hulkv_sim::Json::parse(&t).unwrap();
        let events = json.get("traceEvents").and_then(|e| e.as_arr()).unwrap();
        // Thread-name metadata for at least the four required tracks.
        let named: std::collections::BTreeSet<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        for required in ["host/cva6", "cluster/core0", "dma/udma", "mem/llc"] {
            assert!(named.contains(required), "missing {required} in {named:?}");
        }
        let _ = std::fs::remove_file(metrics);
        let _ = std::fs::remove_file(trace);
    }

    #[test]
    fn emit_writes_timeline_with_integrated_energy() {
        let dir = std::env::temp_dir();
        let timeline = dir.join("hulkv_obs_test_timeline.csv");
        let metrics = dir.join("hulkv_obs_test_metrics_v2.json");
        let trace = dir.join("hulkv_obs_test_trace_tl.json");
        let args = ObsArgs {
            metrics_out: Some(metrics.to_string_lossy().into_owned()),
            trace_out: Some(trace.to_string_lossy().into_owned()),
            timeline_out: Some(timeline.to_string_lossy().into_owned()),
            timeline_period: Some(500),
        };
        // emit() runs verify_timeline internally: contiguity, monotonicity
        // and the 1 % energy identity are all asserted on this path.
        emit(&args, &[]);

        let csv = std::fs::read_to_string(&timeline).unwrap();
        let mut lines = csv.lines();
        assert!(lines
            .next()
            .unwrap()
            .starts_with("start_cycle,end_cycle,energy_mj"));
        assert!(lines.next().is_some(), "timeline must be non-empty");

        let snap =
            hulkv_sim::MetricsSnapshot::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        assert!(snap.energy["total_mj"] > 0.0);
        assert!(snap.energy["peak_power_mw"] >= snap.energy["avg_power_mw"]);

        // The Chrome trace gained the telemetry counter track.
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("soc/telemetry"));
        assert!(t.contains("\"ph\":\"C\""));
        let _ = std::fs::remove_file(timeline);
        let _ = std::fs::remove_file(metrics);
        let _ = std::fs::remove_file(trace);
    }
}
