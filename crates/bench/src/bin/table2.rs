//! Prints Table II (power consumption at 25C, 0.8V, TT).

use hulkv_bench::table2;

fn main() {
    println!("Table II: Power consumption at 25C, 0.8V, TT");
    println!(
        "{:<10} {:>10} {:>12} {:>16} {:>12} {:>14}",
        "Block", "Area(mm2)", "Leakage(mW)", "Dynamic(uW/MHz)", "MaxFreq(MHz)", "MaxPower(mW)"
    );
    let (rows, total) = table2::rows();
    for r in &rows {
        println!(
            "{:<10} {:>10.2} {:>12.2} {:>16.1} {:>12.0} {:>14.2}",
            r.block, r.area_mm2, r.leakage_mw, r.dyn_uw_per_mhz, r.max_freq_mhz, r.max_power_mw
        );
    }
    println!(
        "{:<10} {:>10.2} {:>12.2} {:>16.1} {:>12} {:>14.2}",
        total.block,
        total.area_mm2,
        total.leakage_mw,
        total.dyn_uw_per_mhz,
        "-",
        total.max_power_mw
    );
    hulkv_bench::obs::finish(&[("table2_total_max_power_mw", total.max_power_mw)]);
}
