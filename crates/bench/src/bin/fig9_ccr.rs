//! Prints Figure 9: GOps and relative energy efficiency vs CCR_hyper.

use hulkv_bench::fig9;
use hulkv_kernels::suite::KernelParams;

fn main() {
    let mut rows = fig9::ccr_table(&KernelParams::small()).expect("figure 9");
    rows.sort_by(|a, b| a.ccr_hyper.total_cmp(&b.ccr_hyper));
    println!("Figure 9: HULK-V energy efficiency vs CCR_hyper");
    println!("(CCR < 1: memory-bound | CCR > 1: compute-bound)");
    println!(
        "{:<16} {:>10} {:>11} {:>11} {:>12} {:>12} {:>8}",
        "workload", "CCR_hyper", "GOps Hyper", "GOps LPDDR", "eff Hyper", "eff LPDDR", "rel eff"
    );
    for r in &rows {
        println!(
            "{:<16} {:>10.2} {:>11.3} {:>11.3} {:>12.2} {:>12.2} {:>8.2}",
            r.name,
            r.ccr_hyper,
            r.gops_hyper,
            r.gops_lpddr,
            r.eff_hyper,
            r.eff_lpddr,
            r.relative_efficiency
        );
    }
    hulkv_bench::obs::finish(&[]);
}
