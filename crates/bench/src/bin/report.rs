//! Runs every experiment and prints the full paper-reproduction report.

fn run(name: &str) {
    println!("\n=== {name} ===\n");
}

fn main() {
    run("Table I");
    std::process::Command::new(
        std::env::current_exe()
            .unwrap()
            .parent()
            .unwrap()
            .join("table1"),
    )
    .status()
    .ok();
    for bin in [
        "table2",
        "fig6_speedup",
        "fig6_efficiency",
        "fig7_llc_sweep",
        "fig8_llc_effect",
        "fig9_ccr",
        "ablations",
    ] {
        run(bin);
        std::process::Command::new(std::env::current_exe().unwrap().parent().unwrap().join(bin))
            .status()
            .ok();
    }
    hulkv_bench::obs::finish(&[]);
}
