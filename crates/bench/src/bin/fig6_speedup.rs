//! Prints Figure 6 (left): PMCA speedup over CVA6, x1 and x1000 executions.

use hulkv_bench::fig6;
use hulkv_kernels::suite::KernelParams;

fn main() {
    let rows = fig6::speedup_table(&KernelParams::small()).expect("figure 6");
    println!("Figure 6 (left): Speedup on PMCA vs CVA6 (wall-clock, ASIC frequencies)");
    println!(
        "{:<14} {:>6} {:>12} {:>14} {:>11} {:>13} {:>9}",
        "kernel", "type", "host cycles", "PMCA cycles", "speedup x1", "speedup x1000", "verified"
    );
    for r in &rows {
        println!(
            "{:<14} {:>6} {:>12} {:>14} {:>11.2} {:>13.1} {:>9}",
            r.kernel,
            if r.float { "float" } else { "int" },
            r.host_cycles,
            r.cluster_cycles,
            r.speedup_x1,
            r.speedup_x1000,
            r.verified
        );
    }
    let best = rows.iter().map(|r| r.speedup_x1000).fold(0.0, f64::max);
    hulkv_bench::obs::finish(&[("fig6_max_speedup_x1000", best)]);
}
