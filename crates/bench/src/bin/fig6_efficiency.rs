//! Prints Figure 6 (right): energy efficiency on PMCA vs CVA6.

use hulkv_bench::fig6;
use hulkv_kernels::suite::KernelParams;

fn main() {
    let rows = fig6::speedup_table(&KernelParams::small()).expect("figure 6");
    println!("Figure 6 (right): Energy efficiency at max block frequency (Table II powers)");
    println!(
        "{:<14} {:>11} {:>11} {:>14} {:>14} {:>8}",
        "kernel", "CVA6 GOps", "PMCA GOps", "CVA6 GOps/W", "PMCA GOps/W", "ratio"
    );
    for r in &rows {
        println!(
            "{:<14} {:>11.3} {:>11.2} {:>14.2} {:>14.1} {:>8.1}",
            r.kernel,
            r.host_gops,
            r.cluster_gops,
            r.host_gops_per_w,
            r.cluster_gops_per_w,
            r.cluster_gops_per_w / r.host_gops_per_w
        );
    }
    let best = rows
        .iter()
        .map(|r| r.cluster_gops_per_w)
        .fold(0.0, f64::max);
    hulkv_bench::obs::finish(&[("fig6_max_cluster_gops_per_w", best)]);
}
