//! Prints Figure 8: the Last-Level-Cache effect on the IoT benchmarks.

use hulkv_bench::fig8;
use hulkv_kernels::iot::Scale;

fn main() {
    let rows = fig8::llc_effect(Scale(1)).expect("figure 8");
    println!("Figure 8: Last Level Cache effect (cycles, normalized to DDR4+LLC)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "DDR4+LLC", "Hyper+LLC", "DDR4", "Hyper", "verified"
    );
    for r in &rows {
        let n = r.normalized_cycles();
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10}",
            r.bench,
            n[0],
            n[1],
            n[2],
            n[3],
            r.runs.iter().all(|x| x.verified)
        );
    }
    hulkv_bench::obs::finish(&[]);
}
