//! Prints the design-space ablation studies.

use hulkv_bench::ablations;
use hulkv_kernels::suite::KernelParams;

fn main() {
    println!("Ablation A: LLC capacity (synthetic benchmark, 37% miss knob)");
    println!("{:>10} {:>14}", "LLC (kB)", "cycles/read");
    for p in ablations::llc_size_sweep().expect("llc sweep") {
        println!("{:>10} {:>14.1}", p.size_bytes / 1024, p.cycles_per_read);
    }

    println!("\nAblation B: HyperBUS configuration (64 kB DMA tile)");
    println!("{:<22} {:>12} {:>14}", "config", "cycles", "bytes/cycle");
    for p in ablations::hyperbus_sweep().expect("hyperbus sweep") {
        println!(
            "{:<22} {:>12} {:>14.2}",
            p.config, p.tile_cycles, p.bytes_per_cycle
        );
    }

    println!("\nAblation C: PMCA team scaling (matmul-int8)");
    println!("{:>6} {:>14} {:>12}", "cores", "cycles", "efficiency");
    for p in ablations::team_scaling(&KernelParams::small()).expect("team scaling") {
        println!(
            "{:>6} {:>14} {:>11.0}%",
            p.cores,
            p.kernel_cycles,
            p.efficiency * 100.0
        );
    }

    println!("\nAblation D: offload amortization (fir-int16)");
    println!("{:>8} {:>18}", "times", "SoC cycles/run");
    for p in ablations::offload_amortization(&KernelParams::small()).expect("amortization") {
        println!("{:>8} {:>18.0}", p.times, p.soc_cycles_per_run);
    }
    hulkv_bench::obs::finish(&[]);
}
