//! Prints Figure 7: the Last-Level-Cache sweep on the synthetic benchmark.

use hulkv::MemorySetup;
use hulkv_bench::fig7;

fn main() {
    let points = fig7::llc_sweep(64).expect("figure 7");
    println!("Figure 7: Sweep on Last Level Cache (cycles per read vs L1D miss ratio)");
    println!(
        "{:>10} {:>10} | {:>10} {:>10} {:>10} {:>10}",
        "miss knob", "L1D miss", "DDR4+LLC", "Hyper+LLC", "DDR4", "Hyper"
    );
    for chunk in points.chunks(4) {
        let by = |s: MemorySetup| chunk.iter().find(|p| p.setup == s).expect("setup present");
        let l1 = by(MemorySetup::HyperWithLlc).l1d_miss_ratio;
        println!(
            "{:>10.2} {:>10.2} | {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            chunk[0].miss_fraction,
            l1,
            by(MemorySetup::DdrWithLlc).cycles_per_read,
            by(MemorySetup::HyperWithLlc).cycles_per_read,
            by(MemorySetup::DdrOnly).cycles_per_read,
            by(MemorySetup::HyperOnly).cycles_per_read,
        );
    }
    hulkv_bench::obs::finish(&[]);
}
