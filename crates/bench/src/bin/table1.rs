//! Prints Table I (state-of-the-art comparison).

use hulkv::SocConfig;
use hulkv_bench::table1;

fn main() {
    println!("Table I: Comparison with State-of-Art");
    println!(
        "{:<18} {:<11} {:<28} {:<10} {:<26} {:<12}",
        "Platform", "OS", "Memory", "ASIC/FPGA", "Host CPU", "Accelerators"
    );
    for r in table1::rows(&SocConfig::default()) {
        println!(
            "{:<18} {:<11} {:<28} {:<10} {:<26} {:<12}",
            r.platform, r.os, r.memory, r.asic_fpga, r.host_cpu, r.accelerators
        );
    }
    hulkv_bench::obs::finish(&[]);
}
