//! Simulator-throughput benchmark: wall-clock simulated MIPS.
//!
//! Unlike every other binary in this crate, this one measures the
//! *simulator*, not the simulated SoC: how many instructions per host
//! wall-clock second the ISS retires. Three workloads run:
//!
//! 1. **Decode-bound microbench** — a pure ALU/branch loop on the bare
//!    CVA6 core model in supervisor mode under Sv39 (flat memory, no
//!    cache hierarchy in the loop), so the ISS front end — page-table
//!    walk, fetch, decode — dominates every simulated step. This is the
//!    workload the decoded-instruction cache + micro-TLB target and the
//!    one the ≥3x speedup gate is measured on. It runs twice, decode
//!    cache on and off, which both yields the fast-path speedup and
//!    proves cycle-count neutrality (the two runs must agree bit-for-bit
//!    on simulated cycles).
//! 2. **Dhrystone-style loop** — ALU/branch/load/store through the full
//!    host L1I/L1D/LLC hierarchy, also on vs. off, for a figure closer to
//!    real host code (every fetch replay still revalidates the L1I).
//! 3. **Mixed workload** — the obs reference workload (host int8 matmul +
//!    8-core PMCA offload) on a full SoC, for an end-to-end MIPS figure.
//!
//! Results land in `BENCH_sim_throughput.json`. Flags:
//!
//! * `--quick` — smaller iteration counts (CI smoke run);
//! * `--out <path>` — output path (default `BENCH_sim_throughput.json`);
//! * `--baseline <path>` — compare against a committed baseline and exit
//!   non-zero if host-side MIPS regressed by more than 30%;
//! * `--timeline-out <path>` — sample the mixed-workload SoC every 1000
//!   interconnect cycles and write the power/energy-enriched time series
//!   (CSV when the path ends in `.csv`, JSONL otherwise).

use std::time::Instant;

use hulkv::{HulkV, SocConfig};
use hulkv_bench::obs::verify_timeline;
use hulkv_host::{Host, HostConfig};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_mem::{shared, Bus, Sram};
use hulkv_power::{enrich_timeline, PowerModel};
use hulkv_rv::csr::addr as csr_addr;
use hulkv_rv::{Asm, Core, FlatBus, PrivMode, Reg, Xlen};
use hulkv_sim::{Cycles, Json};

/// Allowed fractional MIPS regression versus the committed baseline.
const REGRESSION_BUDGET: f64 = 0.30;

struct Args {
    quick: bool,
    out: String,
    baseline: Option<String>,
    timeline_out: Option<String>,
}

impl Args {
    fn from_env() -> Self {
        let mut out = Args {
            quick: false,
            out: "BENCH_sim_throughput.json".into(),
            baseline: None,
            timeline_out: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut bind = |slot: &mut String, flag: &str| {
                if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                    *slot = v.to_owned();
                } else if arg == flag {
                    if let Some(v) = args.next() {
                        *slot = v;
                    }
                }
            };
            if arg == "--quick" {
                out.quick = true;
            }
            bind(&mut out.out, "--out");
            let mut base = out.baseline.take().unwrap_or_default();
            bind(&mut base, "--baseline");
            out.baseline = (!base.is_empty()).then_some(base);
            let mut tl = out.timeline_out.take().unwrap_or_default();
            bind(&mut tl, "--timeline-out");
            out.timeline_out = (!tl.is_empty()).then_some(tl);
        }
        out
    }
}

fn fresh_host() -> Host {
    let mut bus = Bus::new("axi", Cycles::new(2));
    bus.map(
        "dram",
        0x8000_0000,
        shared(Sram::new("dram", 1 << 20, Cycles::new(20))),
    )
    .expect("map dram");
    Host::new(HostConfig::default(), shared(bus))
}

/// The decode-bound microbench: `iters` passes over a short pure ALU /
/// branch body that stays resident in the L1I after the first pass. With
/// no data-memory traffic, fetch + decode dominate each simulated step,
/// which is exactly the cost the decoded-instruction cache removes — this
/// is the workload the ≥3x acceptance gate is measured on.
fn microbench_words(iters: i64) -> Vec<u32> {
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::T0, iters);
    a.li(Reg::A0, 0);
    let top = a.label();
    a.bind(top);
    a.add(Reg::A0, Reg::A0, Reg::T0);
    a.slli(Reg::T2, Reg::A0, 1);
    a.xor(Reg::A0, Reg::A0, Reg::T2);
    a.srli(Reg::T3, Reg::A0, 3);
    a.sub(Reg::A0, Reg::A0, Reg::T3);
    a.andi(Reg::T2, Reg::A0, 0xff);
    a.or(Reg::A0, Reg::A0, Reg::T2);
    a.addi(Reg::A0, Reg::A0, 3);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.ebreak();
    a.assemble().expect("assemble microbench")
}

/// A dhrystone-style loop mixing ALU, branches and L1D loads/stores —
/// closer to real host code, reported alongside the decode-bound figure.
fn dhrystone_words(iters: i64) -> Vec<u32> {
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::T0, iters);
    a.li(Reg::T1, 0x8001_0000u32 as i64);
    a.li(Reg::A0, 0);
    let top = a.label();
    a.bind(top);
    a.add(Reg::A0, Reg::A0, Reg::T0);
    a.slli(Reg::T2, Reg::A0, 1);
    a.xor(Reg::A0, Reg::A0, Reg::T2);
    a.sd(Reg::A0, Reg::T1, 0);
    a.ld(Reg::T3, Reg::T1, 0);
    a.sub(Reg::A0, Reg::A0, Reg::T3);
    a.addi(Reg::A0, Reg::A0, 3);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.ebreak();
    a.assemble().expect("assemble dhrystone loop")
}

struct HostRun {
    mips: f64,
    cycles: u64,
    instret: u64,
    decode_hits: u64,
    wall_s: f64,
}

/// Runs `words` on a bare CVA6 core model over flat memory, in supervisor
/// mode under Sv39 with an identity-mapped 4 KiB code page: the pure-ISS
/// configuration the decode-bound microbench is timed in. With the fast
/// path off this is exactly the pre-cache interpreter — a three-level
/// page-table walk, a fetch and a full decode on every single step; with
/// it on, the micro-TLB + decoded-entry replay skip all three. The flat
/// bus charges zero cycles everywhere, so both runs retire identical
/// simulated cycle counts.
fn run_iss(words: &[u32], decode: bool) -> HostRun {
    const ROOT: u64 = 0x8000;
    const L1: u64 = 0x9000;
    const L0: u64 = 0xA000;
    const CODE: u64 = 0x1000; // VA == PA: vpn2 = 0, vpn1 = 0, vpn0 = 1
    const PTE_LEAF: u64 = 0x4B; // V | R | X | A

    let mut bus = FlatBus::new(1 << 16);
    bus.load_words(CODE, words);
    let pte = |pa: u64, flags: u64| ((pa >> 12) << 10) | flags;
    bus.write_bytes(ROOT, &pte(L1, 1).to_le_bytes());
    bus.write_bytes(L1, &pte(L0, 1).to_le_bytes());
    bus.write_bytes(L0 + 8, &pte(CODE, PTE_LEAF).to_le_bytes());

    let mut core = Core::cva6();
    core.set_decode_cache(decode);
    core.set_priv_mode(PrivMode::Supervisor);
    core.csrs_mut()
        .write(csr_addr::SATP, (8 << 60) | (ROOT >> 12));
    core.set_pc(CODE);
    let t0 = Instant::now();
    let cycles = core.run(&mut bus, u64::MAX).expect("run");
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = core.stats();
    HostRun {
        mips: core.instret() as f64 / wall_s / 1e6,
        cycles: cycles.get(),
        instret: core.instret(),
        decode_hits: stats.get("decode_hits"),
        wall_s,
    }
}

fn run_host(words: &[u32], decode: bool) -> HostRun {
    let mut host = fresh_host();
    host.core_mut().set_decode_cache(decode);
    host.load_program(0x8000_0000, words).expect("load");
    host.core_mut().set_pc(0x8000_0000);
    host.core_mut().set_reg(Reg::Sp, 0x8008_0000);
    let t0 = Instant::now();
    let cycles = host.run(u64::MAX).expect("run");
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let stats = host.core().stats();
    HostRun {
        mips: host.core().instret() as f64 / wall_s / 1e6,
        cycles: cycles.get(),
        instret: host.core().instret(),
        decode_hits: stats.get("decode_hits"),
        wall_s,
    }
}

struct MixedRun {
    mips: f64,
    instret: u64,
    wall_s: f64,
}

fn run_mixed(params: &KernelParams, timeline_out: Option<&str>) -> MixedRun {
    let mut soc = HulkV::new(SocConfig::default()).expect("default SoC");
    if timeline_out.is_some() {
        soc.enable_timeline(1000);
    }
    let t0 = Instant::now();
    Kernel::MatMulI8
        .run_on_host(&mut soc, params)
        .expect("host matmul");
    Kernel::MatMulI8
        .run_on_cluster(&mut soc, params, 8)
        .expect("cluster matmul offload");
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    if let Some(path) = timeline_out {
        let mut tl = soc.take_timeline().expect("timeline was enabled");
        let power = PowerModel::gf22fdx_tt();
        let soc_mhz = soc.config().host.soc_freq.as_mhz_f64();
        let cores = soc.config().cluster.cores as u64;
        let summary = enrich_timeline(&mut tl, &power, soc_mhz, cores);
        verify_timeline(&tl, &summary, soc_mhz);
        let body = if path.ends_with(".csv") {
            tl.to_csv()
        } else {
            tl.to_jsonl()
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!(
            "timeline written to {path} ({} windows, {:.3} mJ, avg {:.1} mW, peak {:.1} mW)",
            tl.len(),
            summary.total_mj,
            summary.avg_power_mw,
            summary.peak_power_mw
        );
    }
    let instret = soc.host().core().instret() + soc.cluster().stats().get("instret");
    MixedRun {
        mips: instret as f64 / wall_s / 1e6,
        instret,
        wall_s,
    }
}

fn main() {
    let args = Args::from_env();
    // Quick mode still needs ~10ms timing windows per pass: much below
    // that, scheduler noise swamps the on/off ratio.
    let iters = if args.quick { 120_000 } else { 400_000 };
    let words = microbench_words(iters);
    let dhry = dhrystone_words(iters);

    // Warm-up pass absorbs one-time costs (page-in, allocator), then each
    // configuration runs several times and reports its best pass: wall
    // clock on a shared machine is noisy upward only, so the minimum is
    // the low-noise estimate of simulator speed (simulated cycle counts
    // are identical across passes either way).
    let reps = if args.quick { 3 } else { 5 };
    let best = |f: &dyn Fn() -> HostRun| {
        let mut best = f();
        for _ in 1..reps {
            let r = f();
            assert_eq!(r.cycles, best.cycles, "nondeterministic simulation");
            if r.wall_s < best.wall_s {
                best = r;
            }
        }
        best
    };
    run_iss(&words, true);
    let on = best(&|| run_iss(&words, true));
    let off = best(&|| run_iss(&words, false));
    let dhry_on = best(&|| run_host(&dhry, true));
    let dhry_off = best(&|| run_host(&dhry, false));
    let cycle_neutral = on.cycles == off.cycles && dhry_on.cycles == dhry_off.cycles;
    let speedup = on.mips / off.mips;
    let dhry_speedup = dhry_on.mips / dhry_off.mips;

    let params = if args.quick {
        KernelParams::tiny()
    } else {
        KernelParams::small()
    };
    let mixed = run_mixed(&params, args.timeline_out.as_deref());

    println!(
        "decode-bound microbench ({} instructions simulated):",
        on.instret
    );
    println!(
        "  decode cache on : {:>8.2} MIPS  ({} cycles, {} decode hits, {:.3}s)",
        on.mips, on.cycles, on.decode_hits, on.wall_s
    );
    println!(
        "  decode cache off: {:>8.2} MIPS  ({} cycles, {:.3}s)",
        off.mips, off.cycles, off.wall_s
    );
    println!("  speedup         : {speedup:>8.2}x");
    println!(
        "dhrystone-style loop ({} instructions simulated):",
        dhry_on.instret
    );
    println!(
        "  decode cache on : {:>8.2} MIPS   off: {:>8.2} MIPS   speedup {dhry_speedup:.2}x",
        dhry_on.mips, dhry_off.mips
    );
    println!(
        "cycle-neutral: {}",
        if cycle_neutral { "yes" } else { "NO — BUG" }
    );
    println!(
        "mixed workload: {:.2} MIPS ({} instructions, {:.3}s)",
        mixed.mips, mixed.instret, mixed.wall_s
    );

    let doc = Json::obj([
        ("schema_version", Json::from(1u64)),
        ("quick", Json::from(args.quick)),
        ("mips_host_on", Json::from(on.mips)),
        ("mips_host_off", Json::from(off.mips)),
        ("speedup", Json::from(speedup)),
        ("cycle_neutral", Json::from(cycle_neutral)),
        ("host_cycles", Json::from(on.cycles)),
        ("host_instret", Json::from(on.instret)),
        ("decode_hits", Json::from(on.decode_hits)),
        ("mips_dhrystone_on", Json::from(dhry_on.mips)),
        ("mips_dhrystone_off", Json::from(dhry_off.mips)),
        ("dhrystone_speedup", Json::from(dhry_speedup)),
        ("mips_mixed", Json::from(mixed.mips)),
        ("mixed_instret", Json::from(mixed.instret)),
    ]);
    std::fs::write(&args.out, format!("{doc}\n"))
        .unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    println!("results written to {}", args.out);

    if !cycle_neutral {
        eprintln!("FAIL: decode cache changed simulated cycle counts");
        std::process::exit(1);
    }

    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading baseline {path}: {e}"));
        let base = Json::parse(&text).unwrap_or_else(|e| panic!("parsing baseline {path}: {e}"));
        let base_mips = base
            .get("mips_host_on")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("baseline {path} lacks mips_host_on"));
        let floor = base_mips * (1.0 - REGRESSION_BUDGET);
        println!("baseline host MIPS {base_mips:.2}, regression floor {floor:.2}");
        if on.mips < floor {
            eprintln!(
                "FAIL: host MIPS {:.2} regressed more than {:.0}% below baseline {:.2}",
                on.mips,
                REGRESSION_BUDGET * 100.0,
                base_mips
            );
            std::process::exit(1);
        }
    }
}
