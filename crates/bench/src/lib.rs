//! Benchmark harnesses regenerating every table and figure of the HULK-V
//! paper.
//!
//! Each module computes one experiment's data; the `src/bin` binaries
//! print them as tables, and the Criterion benches in `benches/` time the
//! underlying simulations. The mapping to the paper:
//!
//! | module | regenerates |
//! |---|---|
//! | [`table1`] | Table I — state-of-the-art comparison |
//! | [`table2`] | Table II — per-block power/area/frequency |
//! | [`fig6`] | Figure 6 — PMCA-vs-CVA6 speedup and energy efficiency |
//! | [`fig7`] | Figure 7 — LLC sweep on the synthetic benchmark |
//! | [`fig8`] | Figure 8 — LLC effect on the IoT benchmarks |
//! | [`fig9`] | Figure 9 — GOps and efficiency vs `CCR_hyper` |
//! | [`ablations`] | design-space ablations (LLC size, HyperBUS width/latency, team scaling, offload amortization) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs;
pub mod table1;
pub mod table2;

/// Formats a floating-point cell with a sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}
