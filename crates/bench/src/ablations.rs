//! Ablation studies over HULK-V's design parameters: the knobs §III calls
//! out as parameterizable (LLC geometry, HyperBUS width and latency,
//! cluster team size, instruction-cache sizing).

use hulkv::{HulkV, MainMemory, SocConfig, SocError};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_kernels::synthetic::run_sweep_point_with_config;
use hulkv_mem::{HyperRamConfig, LlcConfig};
use hulkv_sim::Cycles;

/// LLC capacity ablation: the Figure-7 workload at a fixed 37 % miss knob
/// under different LLC sizes (`lines` scales capacity at constant ways).
#[derive(Debug, Clone, PartialEq)]
pub struct LlcSizePoint {
    /// LLC capacity in bytes.
    pub size_bytes: u64,
    /// Cycles per read on the synthetic benchmark.
    pub cycles_per_read: f64,
}

/// Sweeps the LLC size from 32 kB to 512 kB.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn llc_size_sweep() -> Result<Vec<LlcSizePoint>, SocError> {
    let mut out = Vec::new();
    for lines in [64usize, 128, 256, 512, 1024] {
        let llc = LlcConfig {
            lines,
            ..LlcConfig::default()
        };
        let size = llc.size_bytes();
        let cfg = SocConfig {
            llc: Some(llc),
            ..SocConfig::default()
        };
        let p = run_sweep_point_with_config(cfg, 24, 64)?;
        out.push(LlcSizePoint {
            size_bytes: size,
            cycles_per_read: p.cycles_per_read,
        });
    }
    Ok(out)
}

/// HyperBUS ablation: DMA bandwidth for a 64 kB tile under the four
/// controller configurations (§III-B: one or two buses, 1× or 2× initial
/// latency).
#[derive(Debug, Clone, PartialEq)]
pub struct HyperBusPoint {
    /// Configuration label.
    pub config: &'static str,
    /// Cluster cycles to DMA a 64 kB tile from DRAM into the TCDM.
    pub tile_cycles: u64,
    /// Effective bandwidth in bytes per SoC cycle.
    pub bytes_per_cycle: f64,
}

/// Measures the four HyperBUS configurations.
///
/// # Errors
///
/// Propagates SoC and memory errors.
pub fn hyperbus_sweep() -> Result<Vec<HyperBusPoint>, SocError> {
    let variants: [(&str, bool, bool); 4] = [
        ("1 bus, 2x latency", false, true),
        ("1 bus, 1x latency", false, false),
        ("2 buses, 2x latency", true, true),
        ("2 buses, 1x latency", true, false),
    ];
    let mut out = Vec::new();
    for (label, dual, fixed2x) in variants {
        let cfg = SocConfig {
            main_memory: MainMemory::HyperRam(HyperRamConfig {
                dual_bus: dual,
                fixed_2x_latency: fixed2x,
                ..HyperRamConfig::default()
            }),
            ..SocConfig::default()
        };
        let mut soc = HulkV::new(cfg)?;
        let src = soc.hulk_malloc(64 * 1024)?;
        let cycles: Cycles = soc.cluster_mut().dma_to_tcdm(src, 0, 64 * 1024)?;
        out.push(HyperBusPoint {
            config: label,
            tile_cycles: cycles.get(),
            bytes_per_cycle: 64.0 * 1024.0 / cycles.get() as f64,
        });
    }
    Ok(out)
}

/// Team-size scaling of the int8 matmul kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct TeamScalePoint {
    /// Cores in the team.
    pub cores: usize,
    /// Kernel cycles.
    pub kernel_cycles: u64,
    /// Parallel efficiency vs the single-core run.
    pub efficiency: f64,
}

/// Measures matmul-int8 on 1–8 cores.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn team_scaling(params: &KernelParams) -> Result<Vec<TeamScalePoint>, SocError> {
    let mut base = None;
    let mut out = Vec::new();
    for cores in [1usize, 2, 4, 8] {
        let mut soc = HulkV::new(SocConfig::default())?;
        let run = Kernel::MatMulI8.run_on_cluster(&mut soc, params, cores)?;
        let cycles = run.kernel_cycles.get();
        let single = *base.get_or_insert(cycles);
        out.push(TeamScalePoint {
            cores,
            kernel_cycles: cycles,
            efficiency: single as f64 / (cycles as f64 * cores as f64),
        });
    }
    Ok(out)
}

/// Offload-amortization ablation: per-run SoC cycles for 1–1000
/// repetitions of a short kernel (the Figure-6 "lazy loading" effect).
#[derive(Debug, Clone, PartialEq)]
pub struct AmortizationPoint {
    /// Kernel executions per offload.
    pub times: u64,
    /// Average SoC cycles per execution.
    pub soc_cycles_per_run: f64,
}

/// Measures amortization on the FIR kernel.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn offload_amortization(params: &KernelParams) -> Result<Vec<AmortizationPoint>, SocError> {
    let mut soc = HulkV::new(SocConfig::default())?;
    let run = Kernel::FirI16.run_on_cluster(&mut soc, params, 8)?;
    Ok([1u64, 10, 100, 1000]
        .iter()
        .map(|&times| AmortizationPoint {
            times,
            soc_cycles_per_run: run.soc_cycles_amortized(times),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_llc_never_hurts_this_workload() {
        let points = llc_size_sweep().unwrap();
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(
                w[1].cycles_per_read <= w[0].cycles_per_read * 1.02,
                "{} B -> {} B regressed",
                w[0].size_bytes,
                w[1].size_bytes
            );
        }
        // The 96 kB footprint fits from 128 kB upward: a clear knee.
        let small = &points[0]; // 32 kB
        let big = &points[2]; // 128 kB
        assert!(small.cycles_per_read > 1.5 * big.cycles_per_read);
    }

    #[test]
    fn dual_bus_roughly_doubles_bandwidth() {
        let points = hyperbus_sweep().unwrap();
        let single = points
            .iter()
            .find(|p| p.config.starts_with("1 bus, 2x"))
            .unwrap();
        let dual = points
            .iter()
            .find(|p| p.config.starts_with("2 buses, 2x"))
            .unwrap();
        let gain = single.tile_cycles as f64 / dual.tile_cycles as f64;
        // Only the data phase halves; the per-burst command/address and
        // access latency do not, so the gain is below the ideal 2x.
        assert!(gain > 1.3, "dual-bus gain {gain}");
        // Latency config matters much less for long DMA bursts.
        let relaxed = points
            .iter()
            .find(|p| p.config.starts_with("1 bus, 1x"))
            .unwrap();
        let lat_gain = single.tile_cycles as f64 / relaxed.tile_cycles as f64;
        assert!(lat_gain < gain, "latency should matter less than width");
    }

    #[test]
    fn team_scaling_is_near_linear() {
        // Benchmark-sized tiles: one row per core is too little work for
        // a scaling study, so use the real problem size.
        let points = team_scaling(&KernelParams::small()).unwrap();
        let eight = points.iter().find(|p| p.cores == 8).unwrap();
        assert!(
            eight.efficiency > 0.85,
            "8-core efficiency {}",
            eight.efficiency
        );
    }

    #[test]
    fn amortization_converges() {
        let points = offload_amortization(&KernelParams::tiny()).unwrap();
        for w in points.windows(2) {
            assert!(w[1].soc_cycles_per_run < w[0].soc_cycles_per_run);
        }
    }
}
