//! Figure 7: the LLC sweep on the synthetic strided benchmark.

use hulkv::{MemorySetup, SocError};
use hulkv_kernels::synthetic::{run_sweep_point, SweepPoint};

/// The miss-knob values swept (0–100 % of the reads per round).
pub const SWEEP: [usize; 9] = [0, 8, 16, 24, 32, 40, 48, 56, 64];

/// Runs the full Figure-7 grid: every memory setup × every sweep point.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn llc_sweep(rounds: usize) -> Result<Vec<SweepPoint>, SocError> {
    let mut out = Vec::new();
    for &m in &SWEEP {
        for setup in MemorySetup::ALL {
            out.push(run_sweep_point(setup, m, rounds)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grid_is_complete_and_shaped() {
        let points = llc_sweep(32).unwrap();
        assert_eq!(points.len(), SWEEP.len() * 4);
        // Cycles per read never decrease with the miss knob, per setup.
        for setup in MemorySetup::ALL {
            let series: Vec<_> = points.iter().filter(|p| p.setup == setup).collect();
            for w in series.windows(2) {
                assert!(
                    w[1].cycles_per_read >= w[0].cycles_per_read * 0.95,
                    "{}: non-monotone sweep",
                    setup.name()
                );
            }
        }
    }
}
