//! Figure 9: GOps and relative energy efficiency against `CCR_hyper`.
//!
//! The workload set follows the paper: the DSP kernel suite (on the
//! cluster, with their DMA tile traffic as main-memory communication), the
//! two end-to-end DNNs deployed DORY-style, and Dhrystone on the host.

use hulkv::{HulkV, SocConfig, SocError};
use hulkv_kernels::dnn::DnnModel;
use hulkv_kernels::iot::{IotBenchmark, Scale};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_power::{CcrPoint, ComputeBlock, MemoryKind};

/// One Figure-9 row: a workload's position in both panels.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Workload name.
    pub name: String,
    /// `CCR_hyper` (x-axis of both panels).
    pub ccr_hyper: f64,
    /// Achieved GOps on the HyperRAM system.
    pub gops_hyper: f64,
    /// Achieved GOps on the LPDDR4 system.
    pub gops_lpddr: f64,
    /// GOps/W on the HyperRAM system.
    pub eff_hyper: f64,
    /// GOps/W on the LPDDR4 system.
    pub eff_lpddr: f64,
    /// Relative efficiency HyperRAM / LPDDR4 (right panel's y-axis).
    pub relative_efficiency: f64,
}

impl Fig9Row {
    fn from_point(p: &CcrPoint) -> Self {
        Fig9Row {
            name: p.name.clone(),
            ccr_hyper: p.ccr(MemoryKind::Hyper),
            gops_hyper: p.gops(MemoryKind::Hyper),
            gops_lpddr: p.gops(MemoryKind::Lpddr4),
            eff_hyper: p.gops_per_w(MemoryKind::Hyper),
            eff_lpddr: p.gops_per_w(MemoryKind::Lpddr4),
            relative_efficiency: p.relative_efficiency(),
        }
    }
}

/// Computes every Figure-9 workload point.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn ccr_table(params: &KernelParams) -> Result<Vec<Fig9Row>, SocError> {
    let cluster_hz = 400.0e6;
    let host_hz = 900.0e6;
    let mut points = Vec::new();
    let mut matmul_macs_per_cycle = 8.0;

    // DSP kernels on the cluster: per invocation, the DMA streams the
    // input tiles in and the result out; that is the communication side.
    for kernel in Kernel::ALL {
        let mut soc = HulkV::new(SocConfig::default())?;
        let run = kernel.run_on_cluster(&mut soc, params, 8)?;
        let compute_seconds = run.kernel_cycles.get() as f64 / cluster_hz;
        if kernel == Kernel::MatMulI8 {
            matmul_macs_per_cycle = run.ops as f64 / 2.0 / run.kernel_cycles.get() as f64;
        }
        points.push(CcrPoint::new(
            kernel.name(),
            ComputeBlock::Pmca,
            run.ops as f64,
            compute_seconds,
            kernel.tile_bytes(params) as f64,
        ));
    }

    // The two end-to-end DNNs, tiled against the 512 kB L2SPM, computing
    // at the measured int8 matmul throughput.
    for model in [DnnModel::classifier(), DnnModel::dronet()] {
        points.push(model.ccr_point(matmul_macs_per_cycle, cluster_hz, 512 * 1024));
    }

    // Dhrystone on the host: compute-bound by construction.
    let dhry = IotBenchmark::Dhrystone.run(hulkv::MemorySetup::HyperWithLlc, Scale(1))?;
    let dhry_ops = 8.0 * 20_000.0; // ALU ops per iteration × iterations
    points.push(CcrPoint::new(
        "dhrystone",
        ComputeBlock::Cva6,
        dhry_ops,
        dhry.cycles.get() as f64 / host_hz,
        (dhry.dram_bytes_read as f64).max(64.0),
    ));

    Ok(points.iter().map(Fig9Row::from_point).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape_holds() {
        let rows = ccr_table(&KernelParams::small()).unwrap();
        assert_eq!(rows.len(), Kernel::ALL.len() + 3);

        for r in &rows {
            // Left panel: compute-bound points achieve the same GOps on
            // both memories; memory-bound ones gain from LPDDR4 bandwidth.
            if r.ccr_hyper > 1.0 {
                assert!(
                    (r.gops_lpddr / r.gops_hyper - 1.0).abs() < 0.05,
                    "{}: compute-bound but GOps differ",
                    r.name
                );
                // Right panel: ~2x efficiency for high-reuse workloads.
                assert!(
                    r.relative_efficiency > 1.4,
                    "{}: rel eff {}",
                    r.name,
                    r.relative_efficiency
                );
            } else {
                assert!(r.gops_lpddr > r.gops_hyper, "{}", r.name);
            }
        }

        // The DNNs are compute-bound with roughly double efficiency.
        for name in ["classifier-dnn", "dronet"] {
            let r = rows.iter().find(|r| r.name == name).unwrap();
            assert!(r.ccr_hyper > 1.0, "{name} should be compute-bound");
            assert!(
                r.relative_efficiency > 1.5,
                "{name}: {}",
                r.relative_efficiency
            );
        }
    }
}
