//! Table I: comparison with the state of the art.
//!
//! The table is a qualitative platform survey; the "This work" row is
//! filled from this repository's configuration so the comparison stays
//! live with the model.

use hulkv::SocConfig;

/// One platform row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformRow {
    /// Platform name (with citation tag).
    pub platform: &'static str,
    /// Operating-system support.
    pub os: &'static str,
    /// Memory subsystem.
    pub memory: String,
    /// ASIC or FPGA availability.
    pub asic_fpga: &'static str,
    /// Host CPU.
    pub host_cpu: &'static str,
    /// Accelerators.
    pub accelerators: &'static str,
}

/// Builds the full Table-I data set, ending with the "This work" row
/// derived from `cfg`.
pub fn rows(cfg: &SocConfig) -> Vec<PlatformRow> {
    let hyper_mb = cfg.main_memory_bytes() >> 20;
    let l2_kb = cfg.l2spm_bytes / 1024;
    vec![
        PlatformRow {
            platform: "Vega [2]",
            os: "RTOS",
            memory: "512KB SRAM + 512MB Hyper".into(),
            asic_fpga: "ASIC",
            host_cpu: "Ri5cy 200MHz",
            accelerators: "PMCA",
        },
        PlatformRow {
            platform: "Sapphire [10]",
            os: "RTOS",
            memory: "4MB-3GB DDR/Hyper".into(),
            asic_fpga: "FPGA",
            host_cpu: "VexRiscv 400MHz",
            accelerators: "No",
        },
        PlatformRow {
            platform: "i.MX RT [11]",
            os: "RTOS",
            memory: "1.5MB SRAM".into(),
            asic_fpga: "ASIC",
            host_cpu: "CortexM7 800MHz",
            accelerators: "MIPI",
        },
        PlatformRow {
            platform: "HeroV2 [15]",
            os: "Linux",
            memory: "1GB DDR4".into(),
            asic_fpga: "FPGA",
            host_cpu: "Quad-Core CortexA53 1GHz",
            accelerators: "PMCA",
        },
        PlatformRow {
            platform: "Raspberry Pi0 [3]",
            os: "Linux",
            memory: "512MB LPDDR2".into(),
            asic_fpga: "ASIC",
            host_cpu: "Quad-Core CortexA53 1GHz",
            accelerators: "No",
        },
        PlatformRow {
            platform: "Unmatched [12]",
            os: "Linux",
            memory: "16GB DDR4".into(),
            asic_fpga: "ASIC",
            host_cpu: "U74 1GHz",
            accelerators: "No",
        },
        PlatformRow {
            platform: "This work",
            os: "Linux/RTOS",
            memory: format!("{l2_kb}KB SRAM + {hyper_mb}MB Hyper"),
            asic_fpga: "ASIC/FPGA",
            host_cpu: "CVA6 900MHz",
            accelerators: "PMCA",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_work_row_tracks_the_config() {
        let table = rows(&SocConfig::default());
        assert_eq!(table.len(), 7);
        let us = table.last().unwrap();
        assert_eq!(us.platform, "This work");
        assert!(us.memory.contains("512KB SRAM"));
        assert!(us.memory.contains("512MB Hyper"));
        assert_eq!(us.os, "Linux/RTOS");
    }

    #[test]
    fn only_heterogeneous_linux_platform() {
        // The paper's claim: HULK-V uniquely combines Linux capability,
        // a PMCA and an ASIC implementation at IoT power.
        let table = rows(&SocConfig::default());
        let unique: Vec<_> = table
            .iter()
            .filter(|r| {
                r.os.contains("Linux") && r.accelerators == "PMCA" && r.asic_fpga.contains("ASIC")
            })
            .collect();
        assert_eq!(unique.len(), 1);
        assert_eq!(unique[0].platform, "This work");
    }
}
