//! Table II: per-block area, leakage, dynamic power, max frequency and
//! max power in the GF22FDX typical corner.

use hulkv_power::{BlockPower, PowerModel};

/// One row of Table II (plus the derived max-power column).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Block name.
    pub block: &'static str,
    /// Area, mm².
    pub area_mm2: f64,
    /// Leakage, mW.
    pub leakage_mw: f64,
    /// Dynamic power, µW/MHz.
    pub dyn_uw_per_mhz: f64,
    /// Max frequency, MHz.
    pub max_freq_mhz: f64,
    /// Max power, mW.
    pub max_power_mw: f64,
}

impl Table2Row {
    fn from_block(b: &BlockPower) -> Self {
        Table2Row {
            block: b.name,
            area_mm2: b.area_mm2,
            leakage_mw: b.leakage_mw,
            dyn_uw_per_mhz: b.dyn_uw_per_mhz,
            max_freq_mhz: b.max_freq_mhz,
            max_power_mw: b.max_power_mw(),
        }
    }
}

/// Builds the Table-II rows plus the "Total" row.
pub fn rows() -> (Vec<Table2Row>, Table2Row) {
    let p = PowerModel::gf22fdx_tt();
    let rows: Vec<Table2Row> = p
        .blocks()
        .iter()
        .map(|b| Table2Row::from_block(b))
        .collect();
    let total = Table2Row {
        block: "Total",
        area_mm2: p.die_area_mm2(),
        leakage_mw: p.total_leakage_mw(),
        dyn_uw_per_mhz: rows.iter().map(|r| r.dyn_uw_per_mhz).sum(),
        max_freq_mhz: 0.0,
        max_power_mw: p.total_max_power_mw(),
    };
    (rows, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_published_values() {
        let (rows, total) = rows();
        assert_eq!(rows.len(), 4);
        let cva6 = rows.iter().find(|r| r.block == "CVA6").unwrap();
        assert_eq!(cva6.max_freq_mhz, 900.0);
        assert!((cva6.max_power_mw - 47.54).abs() < 0.2);
        assert!((total.leakage_mw - 14.94).abs() < 0.01);
        assert!(total.max_power_mw < 250.0);
        assert!(total.area_mm2 < 9.0);
    }
}
