//! Figure 6: PMCA speedup over CVA6 (left) and energy efficiency (right).
//!
//! The left plot shows the cluster's speedup in execution time when the
//! offloaded kernel runs once (lazy code load dominates short kernels) and
//! 1000 times (overhead amortized). The right plot shows GOps/W for both
//! engines at their maximum frequencies, using the Table-II block powers —
//! the paper's 157-vs-4.9 GOps/W headline lives here.

use hulkv::{HulkV, SocConfig, SocError};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_power::PowerModel;

/// One kernel's Figure-6 measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Floating-point kernel?
    pub float: bool,
    /// CVA6 cycles for one kernel execution.
    pub host_cycles: u64,
    /// Cluster-domain cycles for one kernel execution (team only).
    pub cluster_cycles: u64,
    /// Speedup in wall-clock when the kernel executes once per offload.
    pub speedup_x1: f64,
    /// Speedup when the kernel executes 1000× per offload.
    pub speedup_x1000: f64,
    /// CVA6 GOps at 900 MHz.
    pub host_gops: f64,
    /// Cluster GOps at 400 MHz (amortized).
    pub cluster_gops: f64,
    /// CVA6 energy efficiency against the CVA6 block power.
    pub host_gops_per_w: f64,
    /// Cluster energy efficiency against the PMCA block power.
    pub cluster_gops_per_w: f64,
    /// Both sides verified against the golden reference.
    pub verified: bool,
}

/// Runs the whole Figure-6 suite.
///
/// # Errors
///
/// Propagates SoC and execution errors.
pub fn speedup_table(params: &KernelParams) -> Result<Vec<Fig6Row>, SocError> {
    let power = PowerModel::gf22fdx_tt();
    let host_hz = power.cva6.max_freq_mhz * 1e6;
    let soc_hz = 450.0e6;
    let cluster_hz = power.pmca.max_freq_mhz * 1e6;
    let mut rows = Vec::new();

    for kernel in Kernel::ALL {
        let mut soc = HulkV::new(SocConfig::default())?;
        let host = kernel.run_on_host(&mut soc, params)?;
        let cluster = kernel.run_on_cluster(&mut soc, params, 8)?;

        let host_seconds = host.cycles.get() as f64 / host_hz;
        let x1_seconds = cluster.soc_cycles_amortized(1) / soc_hz;
        let x1000_seconds = cluster.soc_cycles_amortized(1000) / soc_hz;
        let ops = host.ops as f64;

        let host_gops = ops / host_seconds / 1e9;
        let cluster_kernel_seconds = cluster.kernel_cycles.get() as f64 / cluster_hz;
        let cluster_gops = ops / cluster_kernel_seconds / 1e9;

        rows.push(Fig6Row {
            kernel: kernel.name(),
            float: kernel.is_float(),
            host_cycles: host.cycles.get(),
            cluster_cycles: cluster.kernel_cycles.get(),
            speedup_x1: host_seconds / x1_seconds,
            speedup_x1000: host_seconds / x1000_seconds,
            host_gops,
            cluster_gops,
            host_gops_per_w: host_gops / (power.cva6.max_power_mw() / 1000.0),
            cluster_gops_per_w: cluster_gops / (power.pmca.max_power_mw() / 1000.0),
            verified: host.verified && cluster.verified,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_shape_holds() {
        let rows = speedup_table(&KernelParams::small()).unwrap();
        assert_eq!(rows.len(), Kernel::ALL.len());
        for r in &rows {
            assert!(r.verified, "{} failed verification", r.kernel);
            // Amortized execution always beats one-shot.
            assert!(r.speedup_x1000 >= r.speedup_x1, "{}", r.kernel);
            // Offloading amortized kernels always pays off.
            assert!(r.speedup_x1000 > 1.0, "{}: {}", r.kernel, r.speedup_x1000);
        }
        // Paper: matmul-int8 is the headline kernel with the largest gap;
        // FP kernels give at least ~5x when amortized.
        let mm = rows.iter().find(|r| r.kernel == "matmul-int8").unwrap();
        assert!(
            mm.speedup_x1000 > 20.0,
            "int8 matmul speedup {}",
            mm.speedup_x1000
        );
        assert!(mm.cluster_gops_per_w / mm.host_gops_per_w > 10.0);
        for r in rows
            .iter()
            .filter(|r| r.float && r.kernel.contains("matmul"))
        {
            assert!(r.speedup_x1000 > 5.0, "{}: {}", r.kernel, r.speedup_x1000);
        }
    }
}
