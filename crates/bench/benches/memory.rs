//! Benches of the memory-substrate models themselves: the cost of
//! simulating HyperRAM bursts, LLC traffic, DMA transfers, and a full
//! offload round trip. Plain `harness = false` timing loops so the
//! workspace builds without external crates.

use hulkv::{HulkV, SocConfig};
use hulkv_mem::{shared, Ddr, DdrConfig, HyperRam, HyperRamConfig, Llc, LlcConfig, MemoryDevice};
use hulkv_rv::{Asm, Reg, Xlen};
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: u32 = 10;

fn bench(name: &str, mut f: impl FnMut()) {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..SAMPLES {
        f();
    }
    let per_iter = start.elapsed() / SAMPLES;
    println!("{name:<34} {:>12.3?}/iter", per_iter);
}

fn main() {
    let mut ram = HyperRam::new(HyperRamConfig::default());
    let mut buf = [0u8; 64];
    bench("memory/hyperram_line_read", || {
        black_box(ram.read(0x1000, &mut buf).unwrap());
    });

    let mut ddr = Ddr::new(DdrConfig::default());
    bench("memory/ddr_line_read", || {
        black_box(ddr.read(0x1000, &mut buf).unwrap());
    });

    let dram = shared(HyperRam::new(HyperRamConfig::default()));
    let mut llc = Llc::new(LlcConfig::default(), dram).unwrap();
    let mut small = [0u8; 8];
    llc.read(0, &mut small).unwrap(); // warm the line
    bench("memory/llc_hit", || {
        black_box(llc.read(0, &mut small).unwrap());
    });

    let mut k = Asm::new(Xlen::Rv32);
    k.ebreak();
    let words = k.assemble().unwrap();
    bench("soc/offload_round_trip", || {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let kernel = soc.register_kernel(&words).unwrap();
        black_box(soc.offload(kernel, &[], 8, 1_000_000).unwrap());
    });

    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::T0, 10_000);
    let top = a.label();
    a.bind(top);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.ebreak();
    let host_words = a.assemble().unwrap();
    bench("soc/host_20k_instructions", || {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        black_box(
            soc.run_host_program(&host_words, |_| {}, 10_000_000)
                .unwrap(),
        );
    });
}
