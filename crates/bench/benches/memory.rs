//! Criterion benches of the memory-substrate models themselves: the cost
//! of simulating HyperRAM bursts, LLC traffic, DMA transfers, and a full
//! offload round trip.

use criterion::{criterion_group, criterion_main, Criterion};
use hulkv::{HulkV, SocConfig};
use hulkv_mem::{shared, Ddr, DdrConfig, HyperRam, HyperRamConfig, Llc, LlcConfig, MemoryDevice};
use hulkv_rv::{Asm, Reg, Xlen};
use std::hint::black_box;

fn hyperram_bursts(c: &mut Criterion) {
    let mut ram = HyperRam::new(HyperRamConfig::default());
    let mut buf = [0u8; 64];
    c.bench_function("memory/hyperram_line_read", |b| {
        b.iter(|| black_box(ram.read(0x1000, &mut buf).unwrap()))
    });
}

fn ddr_bursts(c: &mut Criterion) {
    let mut ddr = Ddr::new(DdrConfig::default());
    let mut buf = [0u8; 64];
    c.bench_function("memory/ddr_line_read", |b| {
        b.iter(|| black_box(ddr.read(0x1000, &mut buf).unwrap()))
    });
}

fn llc_hit_traffic(c: &mut Criterion) {
    let dram = shared(HyperRam::new(HyperRamConfig::default()));
    let mut llc = Llc::new(LlcConfig::default(), dram).unwrap();
    let mut buf = [0u8; 8];
    llc.read(0, &mut buf).unwrap(); // warm the line
    c.bench_function("memory/llc_hit", |b| {
        b.iter(|| black_box(llc.read(0, &mut buf).unwrap()))
    });
}

fn offload_round_trip(c: &mut Criterion) {
    let mut k = Asm::new(Xlen::Rv32);
    k.ebreak();
    let words = k.assemble().unwrap();
    c.bench_function("soc/offload_round_trip", |b| {
        b.iter(|| {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            let kernel = soc.register_kernel(&words).unwrap();
            black_box(soc.offload(kernel, &[], 8, 1_000_000).unwrap())
        })
    });
}

fn host_instruction_throughput(c: &mut Criterion) {
    let mut a = Asm::new(Xlen::Rv64);
    a.li(Reg::T0, 10_000);
    let top = a.label();
    a.bind(top);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, top);
    a.ebreak();
    let words = a.assemble().unwrap();
    c.bench_function("soc/host_20k_instructions", |b| {
        b.iter(|| {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            black_box(soc.run_host_program(&words, |_| {}, 10_000_000).unwrap())
        })
    });
}

criterion_group! {
    name = memory;
    config = Criterion::default().sample_size(10);
    targets = hyperram_bursts, ddr_bursts, llc_hit_traffic, offload_round_trip,
              host_instruction_throughput
}
criterion_main!(memory);
