//! Benches timing the regeneration of each paper figure (on reduced
//! problem sizes, so `cargo bench` exercises every experiment's code path
//! in seconds). Plain `harness = false` timing loops so the workspace
//! builds without external crates.

use hulkv::{HulkV, MemorySetup, SocConfig};
use hulkv_kernels::iot::{IotBenchmark, Scale};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_kernels::synthetic::run_sweep_point;
use std::hint::black_box;
use std::time::Instant;

const SAMPLES: u32 = 10;

fn bench(name: &str, mut f: impl FnMut()) {
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..SAMPLES {
        f();
    }
    let per_iter = start.elapsed() / SAMPLES;
    println!("{name:<34} {:>12.3?}/iter", per_iter);
}

fn main() {
    let p = KernelParams::tiny();
    bench("fig6/matmul_i8_host", || {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        black_box(Kernel::MatMulI8.run_on_host(&mut soc, &p).unwrap());
    });
    bench("fig6/matmul_i8_cluster_offload", || {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        black_box(Kernel::MatMulI8.run_on_cluster(&mut soc, &p, 8).unwrap());
    });
    bench("fig7/sweep_point_hyper_llc", || {
        black_box(run_sweep_point(MemorySetup::HyperWithLlc, 32, 8).unwrap());
    });
    bench("fig8/crc32_hyper_llc", || {
        black_box(
            IotBenchmark::Crc32
                .run(MemorySetup::HyperWithLlc, Scale(1))
                .unwrap(),
        );
    });
    bench("fig9/dnn_ccr_points", || {
        use hulkv_kernels::dnn::DnnModel;
        for m in [DnnModel::classifier(), DnnModel::dronet()] {
            black_box(m.ccr_point(10.0, 400.0e6, 512 * 1024));
        }
    });
    bench("table2/power_model", || {
        use hulkv_power::PowerModel;
        black_box(PowerModel::gf22fdx_tt().total_max_power_mw());
    });
}
