//! Criterion benches timing the regeneration of each paper figure (on
//! reduced problem sizes, so `cargo bench` exercises every experiment's
//! code path in seconds).

use criterion::{criterion_group, criterion_main, Criterion};
use hulkv::{HulkV, MemorySetup, SocConfig};
use hulkv_kernels::iot::{IotBenchmark, Scale};
use hulkv_kernels::suite::{Kernel, KernelParams};
use hulkv_kernels::synthetic::run_sweep_point;
use std::hint::black_box;

fn fig6_host_kernel(c: &mut Criterion) {
    let p = KernelParams::tiny();
    c.bench_function("fig6/matmul_i8_host", |b| {
        b.iter(|| {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            black_box(Kernel::MatMulI8.run_on_host(&mut soc, &p).unwrap())
        })
    });
}

fn fig6_cluster_kernel(c: &mut Criterion) {
    let p = KernelParams::tiny();
    c.bench_function("fig6/matmul_i8_cluster_offload", |b| {
        b.iter(|| {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            black_box(Kernel::MatMulI8.run_on_cluster(&mut soc, &p, 8).unwrap())
        })
    });
}

fn fig7_sweep_point(c: &mut Criterion) {
    c.bench_function("fig7/sweep_point_hyper_llc", |b| {
        b.iter(|| black_box(run_sweep_point(MemorySetup::HyperWithLlc, 32, 8).unwrap()))
    });
}

fn fig8_iot_benchmark(c: &mut Criterion) {
    c.bench_function("fig8/crc32_hyper_llc", |b| {
        b.iter(|| black_box(IotBenchmark::Crc32.run(MemorySetup::HyperWithLlc, Scale(1)).unwrap()))
    });
}

fn fig9_dnn_tiling(c: &mut Criterion) {
    use hulkv_kernels::dnn::DnnModel;
    c.bench_function("fig9/dnn_ccr_points", |b| {
        b.iter(|| {
            for m in [DnnModel::classifier(), DnnModel::dronet()] {
                black_box(m.ccr_point(10.0, 400.0e6, 512 * 1024));
            }
        })
    });
}

fn table2_power_model(c: &mut Criterion) {
    use hulkv_power::PowerModel;
    c.bench_function("table2/power_model", |b| {
        b.iter(|| black_box(PowerModel::gf22fdx_tt().total_max_power_mw()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig6_host_kernel, fig6_cluster_kernel, fig7_sweep_point,
              fig8_iot_benchmark, fig9_dnn_tiling, table2_power_model
}
criterion_main!(figures);
