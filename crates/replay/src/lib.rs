//! # hulkv-replay: time-travel debugging over flight recordings
//!
//! A [`hulkv::Recording`] pins down a run completely: the SoC
//! configuration, the command journal (the nondeterminism frontier — in a
//! single-threaded simulator everything else is a deterministic function
//! of it), and a ring of periodic full-machine snapshots. The
//! [`Debugger`] turns that into a navigable timeline:
//!
//! * [`Debugger::goto_cycle`] — jump anywhere; backward jumps restore the
//!   nearest checkpoint at or before the target and re-execute forward;
//! * [`Debugger::step`] / [`Debugger::step_back`] — single host
//!   instructions in either direction (backward = restore + replay to
//!   `instret − 1`, so it is exact, not approximate);
//! * watchpoints on the PC and on memory ranges, checked at instruction
//!   granularity;
//! * [`Debugger::diff`] — a field-level state delta between two cycles,
//!   walking the schema-checked snapshot sections (and resolving blob and
//!   page payloads, which JSON equality alone would miss);
//! * [`Debugger::trace_window`] / [`Debugger::timeline_window`] — re-run
//!   any window with a `hulkv-trace` tracer or a Timeline attached, for
//!   cross-referencing recorded state against event streams.
//!
//! Every navigation uses the same execution machinery as the recording
//! run ([`hulkv::HulkV::run_host_until`]), so the debugger's cursor state
//! is bit-identical to the original run at every instruction boundary —
//! inspection is via side-effect-free peeks and never perturbs it.

use hulkv::{apply_command, Command, HulkV, RecordError, Recording};
use hulkv_rv::{disassemble_word, Reg, Xlen};
use hulkv_sim::{category, Json, Snapshot, Tracer};
use std::collections::BTreeSet;

/// What a single [`Debugger::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Advanced one host instruction, or applied one whole non-program
    /// command (those are atomic at the journal level).
    Stepped,
    /// The journal is exhausted; the cursor did not move.
    EndOfRecording,
}

/// A watchpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Watch {
    /// Break when the host PC reaches this address.
    Pc(u64),
    /// Break when any byte of `[addr, addr + len)` changes.
    Mem {
        /// Watched base address.
        addr: u64,
        /// Watched length in bytes.
        len: usize,
    },
}

/// A triggered watchpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchHit {
    /// Index into the watch list.
    pub index: usize,
    /// Host cycle at the hit.
    pub cycle: u64,
    /// Host PC at the hit.
    pub pc: u64,
    /// Human-readable description.
    pub desc: String,
}

/// The time-travel debugger: a cursor over a [`Recording`].
#[derive(Debug)]
pub struct Debugger {
    recording: Recording,
    soc: HulkV,
    next_cmd: usize,
    /// `Some(limit)` while the cursor sits inside a host program;
    /// `limit` is its absolute host-cycle budget.
    in_cmd: Option<u64>,
}

impl Debugger {
    /// Opens a recording with the cursor at cycle zero.
    ///
    /// # Errors
    ///
    /// On an unbuildable embedded configuration.
    pub fn new(recording: Recording) -> Result<Self, RecordError> {
        let soc = recording.fresh_soc()?;
        Ok(Debugger {
            recording,
            soc,
            next_cmd: 0,
            in_cmd: None,
        })
    }

    /// The recording under the cursor.
    pub fn recording(&self) -> &Recording {
        &self.recording
    }

    /// The machine at the cursor (inspect via peeks; do not drive it
    /// directly or the cursor bookkeeping goes stale).
    pub fn soc(&self) -> &HulkV {
        &self.soc
    }

    /// Host-core cycle count at the cursor.
    pub fn cycles(&self) -> u64 {
        self.soc.host().core().cycles().get()
    }

    /// Host-core retired-instruction count at the cursor.
    pub fn instret(&self) -> u64 {
        self.soc.host().core().instret()
    }

    /// Host PC at the cursor.
    pub fn pc(&self) -> u64 {
        self.soc.host().core().pc()
    }

    /// Whether the cursor is past the last journal entry.
    pub fn at_end(&self) -> bool {
        self.in_cmd.is_none() && self.next_cmd >= self.recording.commands.len()
    }

    /// Rewinds to cycle zero (a fresh machine — no checkpoint needed).
    ///
    /// # Errors
    ///
    /// On an unbuildable embedded configuration.
    pub fn reset_to_start(&mut self) -> Result<(), RecordError> {
        self.soc = self.recording.fresh_soc()?;
        self.next_cmd = 0;
        self.in_cmd = None;
        Ok(())
    }

    /// Restores checkpoint `idx` and aligns the journal cursor with it.
    ///
    /// # Errors
    ///
    /// On a missing checkpoint or a malformed snapshot.
    pub fn reset_to_checkpoint(&mut self, idx: usize) -> Result<(), RecordError> {
        let cp = self
            .recording
            .checkpoints
            .get(idx)
            .ok_or_else(|| RecordError::Diverged(format!("no checkpoint {idx}")))?;
        self.soc = self.recording.restore_checkpoint(cp)?;
        if cp.in_progress {
            self.next_cmd = cp.cmd_index + 1;
            self.in_cmd = Some(cp.limit);
        } else {
            self.next_cmd = cp.cmd_index;
            self.in_cmd = None;
        }
        Ok(())
    }

    /// Starts the next journal command if the cursor is between commands.
    /// Returns `false` at the end of the journal. Host programs are
    /// *entered* (loaded, registers applied) without retiring anything;
    /// other commands apply atomically.
    fn advance_command(&mut self) -> Result<bool, RecordError> {
        if self.next_cmd >= self.recording.commands.len() {
            return Ok(false);
        }
        let cmd = &self.recording.commands[self.next_cmd];
        self.next_cmd += 1;
        if let Command::RunHostProgram {
            words,
            regs,
            max_cycles,
        } = cmd
        {
            self.soc.start_host_program(words, regs)?;
            let limit = self
                .soc
                .host()
                .core()
                .cycles()
                .get()
                .saturating_add(*max_cycles);
            self.in_cmd = Some(limit);
        } else {
            apply_command(&mut self.soc, cmd)?;
        }
        Ok(true)
    }

    /// Advances one host instruction (or applies one whole non-program
    /// command when the cursor is between programs).
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn step(&mut self) -> Result<StepEvent, RecordError> {
        loop {
            if self.in_cmd.is_some() {
                if self.soc.host().core().is_halted() {
                    self.in_cmd = None;
                    continue;
                }
                let target = self.cycles() + 1;
                let halted = self.soc.run_host_until(target)?;
                if halted {
                    self.in_cmd = None;
                }
                return Ok(StepEvent::Stepped);
            }
            let was_program = matches!(
                self.recording.commands.get(self.next_cmd),
                Some(Command::RunHostProgram { .. })
            );
            if !self.advance_command()? {
                return Ok(StepEvent::EndOfRecording);
            }
            if !was_program {
                return Ok(StepEvent::Stepped);
            }
            // A program was entered; loop to retire its first instruction.
        }
    }

    /// Moves the cursor to the first instruction boundary at or after
    /// `cycle` (host-core cycles). Backward moves restore the nearest
    /// checkpoint at or before the target — or a fresh machine if the
    /// ring evicted it — and re-execute forward.
    ///
    /// # Errors
    ///
    /// Propagates restore and execution errors.
    pub fn goto_cycle(&mut self, cycle: u64) -> Result<(), RecordError> {
        if self.cycles() > cycle {
            match self.recording.checkpoint_at_or_before(cycle) {
                Some(i) => self.reset_to_checkpoint(i)?,
                None => self.reset_to_start()?,
            }
        }
        while self.cycles() < cycle {
            if self.in_cmd.is_some() {
                if self.soc.host().core().is_halted() {
                    self.in_cmd = None;
                    continue;
                }
                let halted = self.soc.run_host_until(cycle)?;
                if halted {
                    self.in_cmd = None;
                }
            } else if !self.advance_command()? {
                break;
            }
        }
        Ok(())
    }

    /// Moves the cursor to exactly `instret` retired host instructions
    /// (stopping early only if the journal ends first).
    ///
    /// # Errors
    ///
    /// Propagates restore and execution errors.
    pub fn goto_instret(&mut self, instret: u64) -> Result<(), RecordError> {
        if self.instret() > instret {
            match self.recording.checkpoint_at_or_before_instret(instret) {
                Some(i) => self.reset_to_checkpoint(i)?,
                None => self.reset_to_start()?,
            }
        }
        while self.instret() < instret {
            if matches!(self.step()?, StepEvent::EndOfRecording) {
                break;
            }
        }
        Ok(())
    }

    /// Steps one host instruction backward (exact: restores a checkpoint
    /// and replays to `instret − 1`). Returns `false` at cycle zero.
    ///
    /// # Errors
    ///
    /// Propagates restore and execution errors.
    pub fn step_back(&mut self) -> Result<bool, RecordError> {
        let Some(target) = self.instret().checked_sub(1) else {
            return Ok(false);
        };
        self.goto_instret(target)?;
        Ok(true)
    }

    /// Runs forward until a watchpoint triggers, the journal ends, or
    /// `max_steps` instructions retire. Memory watches fire on any change
    /// relative to the bytes at call time.
    ///
    /// # Errors
    ///
    /// Propagates execution errors.
    pub fn run_until_watch(
        &mut self,
        watches: &[Watch],
        max_steps: u64,
    ) -> Result<Option<WatchHit>, RecordError> {
        let mut baselines: Vec<Option<Vec<u8>>> = watches
            .iter()
            .map(|w| match w {
                Watch::Mem { addr, len } => {
                    let mut b = vec![0u8; *len];
                    self.soc.peek_mem(*addr, &mut b).ok().map(|()| b)
                }
                Watch::Pc(_) => None,
            })
            .collect();
        for _ in 0..max_steps {
            if matches!(self.step()?, StepEvent::EndOfRecording) {
                return Ok(None);
            }
            let (pc, cycle) = (self.pc(), self.cycles());
            for (i, w) in watches.iter().enumerate() {
                match w {
                    Watch::Pc(a) => {
                        if pc == *a {
                            return Ok(Some(WatchHit {
                                index: i,
                                cycle,
                                pc,
                                desc: format!("pc reached {a:#x}"),
                            }));
                        }
                    }
                    Watch::Mem { addr, len } => {
                        let mut b = vec![0u8; *len];
                        if self.soc.peek_mem(*addr, &mut b).is_ok()
                            && baselines[i].as_deref() != Some(&b[..])
                        {
                            let desc = format!("mem {addr:#x}+{len:#x} changed");
                            baselines[i] = Some(b);
                            return Ok(Some(WatchHit {
                                index: i,
                                cycle,
                                pc,
                                desc,
                            }));
                        }
                    }
                }
            }
        }
        Ok(None)
    }

    /// Disassembles `count` words starting at `addr` via the
    /// side-effect-free peek path. Returns `(addr, word, text)` rows.
    pub fn disasm(&self, addr: u64, count: usize) -> Vec<(u64, u32, String)> {
        let mut rows = Vec::with_capacity(count);
        for i in 0..count {
            let a = addr + i as u64 * 4;
            let mut b = [0u8; 4];
            if self.soc.peek_mem(a, &mut b).is_err() {
                break;
            }
            let w = u32::from_le_bytes(b);
            rows.push((a, w, disassemble_word(w, Xlen::Rv64, false)));
        }
        rows
    }

    /// A one-line register dump of the host core.
    pub fn regs(&self) -> String {
        let core = self.soc.host().core();
        let mut s = format!(
            "pc={:#018x} cycle={} instret={} priv={:?} halted={}\n",
            core.pc(),
            core.cycles().get(),
            core.instret(),
            core.priv_mode(),
            core.is_halted()
        );
        for (i, r) in Reg::ALL.iter().enumerate() {
            s.push_str(&format!("{r:>5}={:#018x}", core.reg(*r)));
            s.push(if i % 4 == 3 { '\n' } else { ' ' });
        }
        s
    }

    /// Field-level state delta between two cycles. Leaves the cursor at
    /// `cycle_b`.
    ///
    /// # Errors
    ///
    /// Propagates navigation errors.
    pub fn diff(&mut self, cycle_a: u64, cycle_b: u64) -> Result<Vec<String>, RecordError> {
        self.goto_cycle(cycle_a)?;
        let a = self.soc.snapshot();
        self.goto_cycle(cycle_b)?;
        let b = self.soc.snapshot();
        Ok(diff_snapshots(&a, &b))
    }

    /// Re-runs `[from, to)` with a structured tracer attached and returns
    /// the formatted event stream — recorded state cross-referenced with
    /// `hulkv-trace` events.
    ///
    /// # Errors
    ///
    /// Propagates navigation errors.
    pub fn trace_window(
        &mut self,
        from: u64,
        to: u64,
        capacity: usize,
    ) -> Result<Vec<String>, RecordError> {
        self.goto_cycle(from)?;
        let tracer = Tracer::shared(capacity);
        tracer.borrow_mut().enable(category::ALL);
        self.soc.attach_tracer(tracer.clone());
        self.goto_cycle(to)?;
        let t = tracer.borrow();
        Ok(t.events()
            .map(|r| format!("{:>12} +{:<6} {:?} {:?}", r.ts, r.dur, r.track, r.event))
            .collect())
    }

    /// Re-runs `[from, to)` with a Timeline sampling every `period` SoC
    /// cycles and returns its CSV — recorded state cross-referenced with
    /// telemetry windows.
    ///
    /// # Errors
    ///
    /// Propagates navigation errors.
    pub fn timeline_window(
        &mut self,
        from: u64,
        to: u64,
        period: u64,
    ) -> Result<String, RecordError> {
        self.goto_cycle(from)?;
        self.soc.enable_timeline(period);
        self.goto_cycle(to)?;
        let tl = self
            .soc
            .take_timeline()
            .ok_or_else(|| RecordError::Diverged("timeline vanished mid-window".into()))?;
        Ok(tl.to_csv())
    }
}

/// Walks two snapshots section by section and returns the list of
/// differing fields as `path: left != right` lines. Blob and paged-image
/// descriptors are resolved and their *contents* compared — two images
/// with identical layout but different bytes do differ.
pub fn diff_snapshots(a: &Snapshot, b: &Snapshot) -> Vec<String> {
    let mut out = Vec::new();
    let names: BTreeSet<&str> = a.section_names().chain(b.section_names()).collect();
    for name in names {
        match (a.section(name), b.section(name)) {
            (Ok(va), Ok(vb)) => diff_json(name, va, vb, a, b, &mut out),
            (Ok(_), Err(_)) => out.push(format!("{name}: section only in left snapshot")),
            (Err(_), Ok(_)) => out.push(format!("{name}: section only in right snapshot")),
            (Err(_), Err(_)) => {}
        }
    }
    out
}

fn is_blob_desc(j: &Json) -> bool {
    matches!(j, Json::Obj(m) if m.len() == 2 && m.contains_key("off") && m.contains_key("len"))
}

fn is_paged_desc(j: &Json) -> bool {
    matches!(j, Json::Obj(m) if m.len() == 3
        && m.contains_key("size") && m.contains_key("count") && m.contains_key("data"))
}

fn diff_json(
    path: &str,
    va: &Json,
    vb: &Json,
    sa: &Snapshot,
    sb: &Snapshot,
    out: &mut Vec<String>,
) {
    if is_blob_desc(va) && is_blob_desc(vb) {
        match (sa.blob(va), sb.blob(vb)) {
            (Ok(ba), Ok(bb)) => {
                if ba != bb {
                    let at = ba
                        .iter()
                        .zip(bb.iter())
                        .position(|(x, y)| x != y)
                        .unwrap_or(ba.len().min(bb.len()));
                    out.push(format!(
                        "{path}: blob differs ({} vs {} bytes, first at +{at:#x})",
                        ba.len(),
                        bb.len()
                    ));
                }
            }
            _ => out.push(format!("{path}: unresolvable blob descriptor")),
        }
        return;
    }
    if is_paged_desc(va) && is_paged_desc(vb) {
        let (mut pa, mut pb) = (
            std::collections::BTreeMap::new(),
            std::collections::BTreeMap::new(),
        );
        let digest = |page: &[u8]| hulkv_sim::Fnv64::new().write(page).finish();
        let _ = sa.visit_pages(va, |idx, page| {
            pa.insert(idx, digest(page));
            Ok(())
        });
        let _ = sb.visit_pages(vb, |idx, page| {
            pb.insert(idx, digest(page));
            Ok(())
        });
        let pages: BTreeSet<u64> = pa.keys().chain(pb.keys()).copied().collect();
        let mut diffs: Vec<u64> = pages
            .into_iter()
            .filter(|i| pa.get(i) != pb.get(i))
            .collect();
        if !diffs.is_empty() {
            let extra = diffs.len().saturating_sub(8);
            diffs.truncate(8);
            let list = diffs
                .iter()
                .map(|i| format!("{i:#x}"))
                .collect::<Vec<_>>()
                .join(", ");
            let more = if extra > 0 {
                format!(" (+{extra} more)")
            } else {
                String::new()
            };
            out.push(format!("{path}: pages differ at {list}{more}"));
        }
        return;
    }
    match (va, vb) {
        (Json::Obj(ma), Json::Obj(mb)) => {
            let keys: BTreeSet<&str> = ma.keys().chain(mb.keys()).map(String::as_str).collect();
            for k in keys {
                let sub = format!("{path}.{k}");
                match (ma.get(k), mb.get(k)) {
                    (Some(x), Some(y)) => diff_json(&sub, x, y, sa, sb, out),
                    (Some(_), None) => out.push(format!("{sub}: only in left")),
                    (None, Some(_)) => out.push(format!("{sub}: only in right")),
                    (None, None) => {}
                }
            }
        }
        (Json::Arr(aa), Json::Arr(ab)) => {
            if aa.len() != ab.len() {
                out.push(format!("{path}: array length {} vs {}", aa.len(), ab.len()));
                return;
            }
            for (i, (x, y)) in aa.iter().zip(ab.iter()).enumerate() {
                diff_json(&format!("{path}[{i}]"), x, y, sa, sb, out);
            }
        }
        _ => {
            if va != vb {
                out.push(format!("{path}: {va} != {vb}"));
            }
        }
    }
}
