//! `hulkv-replay` — record, verify and time-travel-debug HULK-V runs.
//!
//! ```text
//! hulkv-replay record --out FILE [--kernel NAME] [--cores N]
//!                     [--period N] [--capacity N] [--no-decode-cache]
//! hulkv-replay verify FILE            exhaustive checkpoint/replay audit
//! hulkv-replay info FILE              recording summary
//! hulkv-replay debug FILE [--script FILE]   scripted or stdin session
//! ```

use hulkv::{Recorder, Recording, SocConfig};
use hulkv_kernels::suite::{record_fig6_kernel, Kernel, KernelParams};
use hulkv_replay::{Debugger, StepEvent, Watch};
use std::io::{BufRead, Write};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("record") => cmd_record(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("debug") => cmd_debug(&args[1..]),
        _ => {
            eprintln!("usage: hulkv-replay <record|verify|info|debug> ...");
            2
        }
    };
    std::process::exit(code);
}

fn parse_num(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn fail(msg: &str) -> i32 {
    eprintln!("hulkv-replay: {msg}");
    1
}

// ---------------------------------------------------------------- record

fn cmd_record(args: &[String]) -> i32 {
    let mut out = None;
    let mut kernel = Kernel::MatMulI8;
    let mut cores = 8usize;
    let mut period = 10_000u64;
    let mut capacity = 64usize;
    let mut decode_cache = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            "--kernel" => {
                let Some(name) = it.next() else {
                    return fail("--kernel needs a name");
                };
                match Kernel::ALL.iter().find(|k| k.name() == name) {
                    Some(k) => kernel = *k,
                    None => {
                        let names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
                        return fail(&format!(
                            "unknown kernel {name:?}; one of: {}",
                            names.join(", ")
                        ));
                    }
                }
            }
            "--cores" => cores = it.next().and_then(|s| parse_num(s)).unwrap_or(8) as usize,
            "--period" => period = it.next().and_then(|s| parse_num(s)).unwrap_or(10_000),
            "--capacity" => capacity = it.next().and_then(|s| parse_num(s)).unwrap_or(64) as usize,
            "--no-decode-cache" => decode_cache = false,
            other => return fail(&format!("unknown record flag {other:?}")),
        }
    }
    let Some(out) = out else {
        return fail("record needs --out FILE");
    };

    let mut cfg = SocConfig::default();
    cfg.host.decode_cache = decode_cache;
    cfg.cluster.decode_cache = decode_cache;
    let mut rec = match Recorder::new(cfg, period, capacity) {
        Ok(r) => r,
        Err(e) => return fail(&format!("SoC bring-up failed: {e}")),
    };
    if let Err(e) = record_fig6_kernel(&mut rec, kernel, &KernelParams::small(), cores) {
        return fail(&format!("workload failed under recording: {e}"));
    }
    let (soc, recording) = rec.finish();
    let bytes = recording.to_bytes();
    if let Err(e) = std::fs::write(&out, &bytes) {
        return fail(&format!("writing {out}: {e}"));
    }
    println!(
        "recorded {} ({} cycles, {} commands, {} checkpoints, {} bytes) digest={:#018x}",
        kernel.name(),
        soc.host().core().cycles().get(),
        recording.commands.len(),
        recording.checkpoints.len(),
        bytes.len(),
        soc.state_digest()
    );
    0
}

// ---------------------------------------------------------------- verify

fn load(path: &str) -> Result<Recording, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    Recording::from_bytes(&bytes).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_verify(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        return fail("verify needs a recording file");
    };
    let recording = match load(path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };

    // Reference run: straight-line replay of the whole journal.
    let reference = match recording.replay_to_end() {
        Ok(s) => s,
        Err(e) => return fail(&format!("straight-line replay failed: {e}")),
    };
    let ref_digest = reference.state_digest();
    let ref_cycles = reference.host().core().cycles().get();
    let ref_stats = reference.metrics_snapshot().to_json().to_string();
    println!("straight-line: {ref_cycles} cycles, digest {ref_digest:#018x}");

    // Snapshot save latency and size on the final state.
    let t0 = Instant::now();
    let snap = reference.snapshot();
    let snap_bytes = snap.to_bytes();
    let save_us = t0.elapsed().as_micros();
    println!("snapshot: {} bytes, save {} us", snap_bytes.len(), save_us);

    // Every checkpoint must resume to the identical final state.
    let mut restore_us_total = 0u128;
    for (i, cp) in recording.checkpoints.iter().enumerate() {
        let t0 = Instant::now();
        let resumed = match recording.resume_from(i) {
            Ok(s) => s,
            Err(e) => return fail(&format!("resume from checkpoint {i}: {e}")),
        };
        restore_us_total += t0.elapsed().as_micros();
        let digest = resumed.state_digest();
        let cycles = resumed.host().core().cycles().get();
        let stats = resumed.metrics_snapshot().to_json().to_string();
        if digest != ref_digest || cycles != ref_cycles || stats != ref_stats {
            eprintln!(
                "checkpoint {i} (cycle {}): digest {digest:#018x} vs {ref_digest:#018x}, \
                 cycles {cycles} vs {ref_cycles}, stats match: {}",
                cp.host_cycle,
                stats == ref_stats
            );
            return fail("resume-from-checkpoint diverged from straight-line replay");
        }
        println!(
            "checkpoint {i}: cycle {} ({} bytes) -> replay converged",
            cp.host_cycle,
            cp.bytes.len()
        );
    }
    let n = recording.checkpoints.len().max(1) as u128;
    println!(
        "verified {} checkpoints, restore+replay avg {} us",
        recording.checkpoints.len(),
        restore_us_total / n
    );
    println!("VERIFY OK digest={ref_digest:#018x}");
    0
}

// ------------------------------------------------------------------ info

fn cmd_info(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        return fail("info needs a recording file");
    };
    let recording = match load(path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    println!(
        "{} commands, {} checkpoints",
        recording.commands.len(),
        recording.checkpoints.len()
    );
    for (i, cp) in recording.checkpoints.iter().enumerate() {
        println!(
            "  checkpoint {i}: cycle {} instret {} cmd_index {}{} ({} bytes)",
            cp.host_cycle,
            cp.instret,
            cp.cmd_index,
            if cp.in_progress { " (mid-program)" } else { "" },
            cp.bytes.len()
        );
    }
    0
}

// ----------------------------------------------------------------- debug

fn cmd_debug(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        return fail("debug needs a recording file");
    };
    let mut script = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--script" => script = it.next().cloned(),
            other => return fail(&format!("unknown debug flag {other:?}")),
        }
    }
    let recording = match load(path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let mut dbg = match Debugger::new(recording) {
        Ok(d) => d,
        Err(e) => return fail(&format!("opening debugger: {e}")),
    };

    let lines: Box<dyn Iterator<Item = String>> = match script {
        Some(f) => match std::fs::read_to_string(&f) {
            Ok(text) => Box::new(
                text.lines()
                    .map(String::from)
                    .collect::<Vec<_>>()
                    .into_iter(),
            ),
            Err(e) => return fail(&format!("reading script {f}: {e}")),
        },
        None => {
            let stdin = std::io::stdin();
            Box::new(stdin.lock().lines().map_while(Result::ok))
        }
    };

    let mut watches: Vec<Watch> = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        println!("(replay) {line}");
        std::io::stdout().flush().ok();
        let words: Vec<&str> = line.split_whitespace().collect();
        if let Err(e) = run_debug_line(&mut dbg, &mut watches, &words) {
            eprintln!("hulkv-replay: {e}");
            return 1;
        }
        if words[0] == "quit" {
            break;
        }
    }
    0
}

fn run_debug_line(
    dbg: &mut Debugger,
    watches: &mut Vec<Watch>,
    words: &[&str],
) -> Result<(), String> {
    let num = |i: usize| -> Result<u64, String> {
        words
            .get(i)
            .and_then(|s| parse_num(s))
            .ok_or_else(|| format!("{}: bad or missing numeric argument", words[0]))
    };
    match words[0] {
        "goto" => {
            dbg.goto_cycle(num(1)?).map_err(|e| e.to_string())?;
            println!(
                "at cycle {} pc {:#x} instret {}",
                dbg.cycles(),
                dbg.pc(),
                dbg.instret()
            );
        }
        "step" => {
            let n = num(1).unwrap_or(1);
            for _ in 0..n {
                if matches!(
                    dbg.step().map_err(|e| e.to_string())?,
                    StepEvent::EndOfRecording
                ) {
                    println!("end of recording");
                    break;
                }
            }
            println!(
                "at cycle {} pc {:#x} instret {}",
                dbg.cycles(),
                dbg.pc(),
                dbg.instret()
            );
        }
        "back" => {
            let n = num(1).unwrap_or(1);
            for _ in 0..n {
                if !dbg.step_back().map_err(|e| e.to_string())? {
                    println!("at start of recording");
                    break;
                }
            }
            println!(
                "at cycle {} pc {:#x} instret {}",
                dbg.cycles(),
                dbg.pc(),
                dbg.instret()
            );
        }
        "regs" => print!("{}", dbg.regs()),
        "csr" => {
            let addr = num(1)? as u16;
            println!(
                "csr {:#x} = {:#018x}",
                addr,
                dbg.soc().host().core().csrs().read(addr)
            );
        }
        "mem" => {
            let addr = num(1)?;
            let len = num(2)? as usize;
            let mut buf = vec![0u8; len];
            dbg.soc()
                .peek_mem(addr, &mut buf)
                .map_err(|e| e.to_string())?;
            for (i, chunk) in buf.chunks(16).enumerate() {
                let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
                println!("{:#010x}: {}", addr + i as u64 * 16, hex.join(" "));
            }
        }
        "disasm" => {
            let addr = num(1)?;
            let n = num(2).unwrap_or(8) as usize;
            for (a, w, text) in dbg.disasm(addr, n) {
                println!("{a:#010x}: {w:08x}  {text}");
            }
        }
        "watch" => match (words.get(1).copied(), words.get(2), words.get(3)) {
            (Some("pc"), Some(_), _) => {
                let addr = num(2)?;
                watches.push(Watch::Pc(addr));
                println!("watch {} set: pc {addr:#x}", watches.len() - 1);
            }
            (Some("mem"), Some(_), Some(_)) => {
                let (addr, len) = (num(2)?, num(3)? as usize);
                watches.push(Watch::Mem { addr, len });
                println!("watch {} set: mem {addr:#x}+{len:#x}", watches.len() - 1);
            }
            _ => return Err("usage: watch pc ADDR | watch mem ADDR LEN".into()),
        },
        "continue" => {
            let max = num(1).unwrap_or(10_000_000);
            match dbg
                .run_until_watch(watches, max)
                .map_err(|e| e.to_string())?
            {
                Some(hit) => println!(
                    "watch {} hit at cycle {} pc {:#x}: {}",
                    hit.index, hit.cycle, hit.pc, hit.desc
                ),
                None => println!("no watch hit (cycle {} pc {:#x})", dbg.cycles(), dbg.pc()),
            }
        }
        "diff" => {
            let (a, b) = (num(1)?, num(2)?);
            let lines = dbg.diff(a, b).map_err(|e| e.to_string())?;
            println!("diff cycle {a} -> {b}: {} fields differ", lines.len());
            for l in &lines {
                println!("  {l}");
            }
        }
        "trace" => {
            let (a, b) = (num(1)?, num(2)?);
            let events = dbg.trace_window(a, b, 65_536).map_err(|e| e.to_string())?;
            println!("trace cycle {a} -> {b}: {} events", events.len());
            for e in events.iter().take(200) {
                println!("  {e}");
            }
            if events.len() > 200 {
                println!("  ... +{} more", events.len() - 200);
            }
        }
        "timeline" => {
            let (a, b, p) = (num(1)?, num(2)?, num(3)?);
            print!(
                "{}",
                dbg.timeline_window(a, b, p).map_err(|e| e.to_string())?
            );
        }
        "info" => {
            println!(
                "cycle {} instret {} pc {:#x}, {} commands, {} checkpoints, at_end {}",
                dbg.cycles(),
                dbg.instret(),
                dbg.pc(),
                dbg.recording().commands.len(),
                dbg.recording().checkpoints.len(),
                dbg.at_end()
            );
        }
        "quit" => {}
        other => return Err(format!("unknown command {other:?}")),
    }
    Ok(())
}
