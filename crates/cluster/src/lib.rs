//! The Programmable Multi-Core Accelerator (PMCA) of HULK-V (§III-C).
//!
//! The PMCA is built around eight CV32E4/RI5CY-class RV32 cores with the
//! Xpulp DSP extension, sharing:
//!
//! * a 128 kB L1 scratchpad (**TCDM**) organized as 16 × 8 kB word-interleaved
//!   SRAM banks, single-cycle when conflict-free;
//! * a two-level instruction cache (512 B private per core, 4 kB shared);
//! * a cluster DMA with one AXI port and four TCDM ports;
//! * an event unit for fine-grain fork/join thread dispatch.
//!
//! The cluster avoids data caches entirely: software moves tiles between the
//! SoC memory (L2SPM / DRAM) and the TCDM with the DMA, double-buffering to
//! overlap computation and communication — the explicit-memory-management
//! style the paper inherits from DORY.
//!
//! # Example
//!
//! ```
//! use hulkv_cluster::{Cluster, ClusterConfig, TCDM_BASE};
//! use hulkv_mem::{shared, MemoryDevice, Sram};
//! use hulkv_rv::{Asm, Reg, Xlen};
//!
//! // SoC-side memory holding the kernel binary at 0x8000_0000.
//! let mut l2 = Sram::new("l2spm", 1 << 20, hulkv_sim::Cycles::new(2));
//! let mut a = Asm::new(Xlen::Rv32);
//! a.li(Reg::T0, 5);
//! a.li(Reg::T1, 7);
//! a.add(Reg::A0, Reg::T0, Reg::T1);
//! // Store the per-core result into the TCDM, indexed by hart id.
//! a.csrr(Reg::T2, hulkv_rv::csr::addr::MHARTID);
//! a.slli(Reg::T2, Reg::T2, 2);
//! a.li(Reg::T3, TCDM_BASE as i64);
//! a.add(Reg::T3, Reg::T3, Reg::T2);
//! a.sw(Reg::A0, Reg::T3, 0);
//! a.ebreak();
//! for (i, w) in a.assemble()?.iter().enumerate() {
//!     l2.write_u32(i as u64 * 4, *w)?;
//! }
//!
//! let mut bus = hulkv_mem::Bus::new("axi", hulkv_sim::Cycles::new(2));
//! bus.map("l2spm", 0x8000_0000, shared(l2))?;
//! let mut cluster = Cluster::new(ClusterConfig::default(), shared(bus));
//! let result = cluster.run_team(0x8000_0000, &[], 8, 1_000_000)?;
//! assert_eq!(cluster.tcdm_read_u32(0)?, 12);
//! assert_eq!(cluster.tcdm_read_u32(7 * 4)?, 12);
//! assert!(result.cycles.get() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pmca;

pub use pmca::{Cluster, ClusterConfig, CorePerf, TeamResult, PERF_BASE, TCDM_BASE};
