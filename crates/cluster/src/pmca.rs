//! The cluster model: cores, TCDM, two-level I-cache, DMA, event unit.

use hulkv_mem::{
    Cache, CacheConfig, DmaEngine, MemoryDevice, SharedMem, Sram, Transfer1d, Transfer2d,
    WritePolicy,
};
use hulkv_rv::{Core, CoreBus, Reg, RvError};
use hulkv_sim::{convert_freq, Cycles, Freq, SharedTracer, SimError, Stats, Track};
use std::cell::RefCell;
use std::rc::Rc;

/// Cluster-local base address of the L1 scratchpad (TCDM).
pub const TCDM_BASE: u64 = 0x1000_0000;

/// Cluster-local base address of the per-core performance-counter unit,
/// a PULP-style peripheral window each core sees privately (the same
/// address reads *its own* counters, like `mhartid`-relative CSRs).
///
/// Word registers, read-only (stores to the window are ignored, as on the
/// real peripheral where the counters are bus-owned):
///
/// | offset | counter |
/// |--------|---------|
/// | 0x00   | TCDM data accesses issued by this core |
/// | 0x04   | TCDM bank-conflict stall cycles |
/// | 0x08   | private-I$ hits |
/// | 0x0C   | private-I$ misses |
/// | 0x10   | external (AXI) data accesses |
/// | 0x14   | external-access stall cycles (cluster domain) |
pub const PERF_BASE: u64 = 0x1020_0000;

/// Size of the perf-counter register window: six word registers.
pub const PERF_WINDOW_BYTES: u64 = 24;

/// Static configuration of the PMCA.
///
/// # Example
///
/// ```
/// use hulkv_cluster::ClusterConfig;
///
/// let cfg = ClusterConfig::default();
/// assert_eq!(cfg.cores, 8);
/// assert_eq!(cfg.tcdm_bytes(), 128 * 1024); // 16 x 8 kB banks
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of RV32 cores (8 in HULK-V).
    pub cores: usize,
    /// Number of word-interleaved TCDM banks (16).
    pub banks: usize,
    /// Bytes per bank (8 kB).
    pub bank_bytes: usize,
    /// Private per-core instruction cache size (512 B).
    pub icache_private_bytes: usize,
    /// Shared instruction cache size (4 kB).
    pub icache_shared_bytes: usize,
    /// Cluster clock (400 MHz in the ASIC).
    pub freq: Freq,
    /// SoC interconnect clock, for AXI-port domain crossing (450 MHz).
    pub soc_freq: Freq,
    /// Fixed cost of an event-unit barrier at team join.
    pub barrier_cycles: u64,
    /// Per-core stack carved from the top of the TCDM.
    pub stack_bytes: usize,
    /// Whether the cores use the simulator's decoded-instruction cache
    /// (host-side fast path; cycle-neutral, off only for ablation runs).
    pub decode_cache: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cores: 8,
            banks: 16,
            bank_bytes: 8 * 1024,
            icache_private_bytes: 512,
            icache_shared_bytes: 4 * 1024,
            freq: Freq::mhz(400),
            soc_freq: Freq::mhz(450),
            barrier_cycles: 8,
            stack_bytes: 1024,
            decode_cache: true,
        }
    }
}

impl ClusterConfig {
    /// Total TCDM capacity.
    pub fn tcdm_bytes(&self) -> usize {
        self.banks * self.bank_bytes
    }
}

/// End-of-run snapshot of one core's performance-counter unit plus its
/// timing-stable core-side events — the simulator-side truth the guest's
/// own [`PERF_BASE`] window and HPM CSR reads are cross-checked against.
///
/// Only timing-stable events live here (identical whether the simulator's
/// decoded-instruction fast path is on or off), so whole-[`TeamResult`]
/// equality stays meaningful for differential harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorePerf {
    /// TCDM data accesses the core issued.
    pub tcdm_accesses: u64,
    /// TCDM bank-conflict stall cycles charged to the core.
    pub tcdm_conflict_stalls: u64,
    /// Private instruction-cache hits.
    pub icache_hits: u64,
    /// Private instruction-cache misses.
    pub icache_misses: u64,
    /// Data accesses that left the cluster through the AXI master port.
    pub ext_accesses: u64,
    /// Stall cycles those external accesses cost, in cluster cycles.
    pub ext_stall_cycles: u64,
    /// Xpulp hardware-loop back-edges taken.
    pub hwloop_iters: u64,
    /// Taken branches.
    pub taken_branches: u64,
}

/// Result of one fork/join team execution on the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TeamResult {
    /// Team wall-clock, in cluster cycles: `max` over the cores plus the
    /// event-unit barrier.
    pub cycles: Cycles,
    /// Cycles each participating core spent.
    pub per_core: Vec<Cycles>,
    /// Instructions retired by each core.
    pub per_core_instret: Vec<u64>,
    /// Final architectural state digest of each core
    /// ([`Core::state_digest`]): lets differential harnesses compare
    /// whole-team outcomes without re-running cores.
    pub per_core_state: Vec<u64>,
    /// Sum of GOps-weighted arithmetic operations across the team.
    pub arith_ops: u64,
    /// Each core's final performance-counter snapshot.
    pub per_core_perf: Vec<CorePerf>,
}

/// The Programmable Multi-Core Accelerator.
///
/// Created over a [`SharedMem`] giving access to the SoC address space
/// through the cluster's AXI master port (in HULK-V, filtered by an IOPMP
/// that the host configures — modeled in the SoC crate). See the
/// [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    tcdm: SharedMem,
    // Typed alias of `tcdm` so snapshots can reach the SRAM backdoor
    // without going through `MemoryDevice::read` (which would bump stats).
    tcdm_typed: Rc<RefCell<Sram>>,
    ext: SharedMem,
    // Kept as the concrete type (not `SharedMem`) so [`Cluster::flush_icache`]
    // can reach `Cache::flush`; clones coerce to `SharedMem` where needed.
    shared_icache: Rc<RefCell<Cache>>,
    dma: DmaEngine,
    stats: Stats,
    busy_cycles: Cycles,
    tracer: Option<SharedTracer>,
}

impl Cluster {
    /// Builds the cluster; `ext` is the SoC-side interconnect reachable
    /// through the AXI master port (addresses pass through unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero cores or banks).
    pub fn new(cfg: ClusterConfig, ext: SharedMem) -> Self {
        assert!(cfg.cores > 0 && cfg.banks > 0, "degenerate cluster config");
        let tcdm_typed = Rc::new(RefCell::new(Sram::new(
            "tcdm",
            cfg.tcdm_bytes(),
            Cycles::new(1),
        )));
        let tcdm: SharedMem = tcdm_typed.clone();
        let shared_icache = Rc::new(RefCell::new(
            Cache::new(
                CacheConfig {
                    name: "icache_l1_5".into(),
                    ways: 2,
                    sets: (cfg.icache_shared_bytes / 32 / 2)
                        .max(1)
                        .next_power_of_two(),
                    line_bytes: 32,
                    hit_latency: Cycles::new(1),
                    write_policy: WritePolicy::WriteThrough,
                    write_allocate: false,
                    write_buffer: true,
                },
                ext.clone(),
            )
            .expect("shared I-cache geometry"),
        ));
        Cluster {
            cfg,
            tcdm,
            tcdm_typed,
            ext,
            shared_icache,
            dma: DmaEngine::new("cluster_dma", Cycles::new(16), 64),
            stats: Stats::new("cluster"),
            busy_cycles: Cycles::ZERO,
            tracer: None,
        }
    }

    /// Attaches a structured SoC tracer: the cluster DMA records its
    /// transfers, every core of each subsequent team records retires on
    /// its own per-hart track, and the external port (in the full SoC, the
    /// IOPMP) records protection events.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.dma.set_tracer(tracer.clone(), Track::ClusterDma);
        self.ext.borrow_mut().attach_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Activity counters (team launches, DMA traffic, TCDM conflicts…).
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Cluster-domain cycles spent computing so far (for utilization).
    pub fn busy_cycles(&self) -> Cycles {
        self.busy_cycles
    }

    /// Resets activity counters and the busy-cycle accumulator.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.busy_cycles = Cycles::ZERO;
    }

    /// FNV-1a digest of the cluster-resident state: TCDM contents, the
    /// shared L1.5 I-cache, and the busy-cycle accumulator. Cores are
    /// transient (created per [`Cluster::run_team`]) so none exist to
    /// digest between team runs.
    pub fn state_digest(&self) -> u64 {
        hulkv_sim::Fnv64::new()
            .write_u64(self.tcdm_typed.borrow().content_digest())
            .write_u64(self.shared_icache.borrow().state_digest())
            .write_u64(self.busy_cycles.get())
            .finish()
    }

    /// Serializes the cluster into `snap`: TCDM contents + stats, the
    /// shared I-cache, DMA-engine stats, activity counters and the
    /// busy-cycle accumulator. Valid only between team runs (cores are
    /// transient per [`Cluster::run_team`]).
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::{hex, stats_to_json};
        let tcdm = self.tcdm_typed.borrow().snapshot_into(snap);
        let icache = self.shared_icache.borrow().snapshot_into(snap);
        hulkv_sim::Json::obj([
            ("tcdm", tcdm),
            ("shared_icache", icache),
            ("dma", self.dma.snapshot_json()),
            ("stats", stats_to_json(&self.stats)),
            ("busy_cycles", hex(self.busy_cycles.get())),
        ])
    }

    /// Restores state written by [`Cluster::snapshot_into`].
    ///
    /// # Errors
    ///
    /// On a malformed or geometry-mismatched section.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, get_u64, restore_stats};
        self.tcdm_typed
            .borrow_mut()
            .restore_from(snap, get(j, "tcdm")?)?;
        self.shared_icache
            .borrow_mut()
            .restore_from(snap, get(j, "shared_icache")?)?;
        self.dma.restore_json(get(j, "dma")?)?;
        restore_stats(&mut self.stats, get(j, "stats")?)?;
        self.busy_cycles = Cycles::new(get_u64(j, "busy_cycles")?);
        Ok(())
    }

    /// Backdoor TCDM write (test setup and host-side tile pushes go through
    /// [`Cluster::dma_to_tcdm`] instead).
    ///
    /// # Errors
    ///
    /// Propagates TCDM range errors.
    pub fn tcdm_write(&mut self, offset: u64, data: &[u8]) -> Result<(), SimError> {
        self.tcdm.borrow_mut().write(offset, data).map(|_| ())
    }

    /// Backdoor TCDM read.
    ///
    /// # Errors
    ///
    /// Propagates TCDM range errors.
    pub fn tcdm_read(&mut self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        self.tcdm.borrow_mut().read(offset, buf).map(|_| ())
    }

    /// Side-effect-free TCDM read (no latency, no access counters) — the
    /// debugger's inspection path.
    ///
    /// # Errors
    ///
    /// Propagates range errors.
    pub fn tcdm_peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        use hulkv_mem::MemoryDevice;
        self.tcdm_typed.borrow().peek(offset, buf)
    }

    /// Flushes the shared L1.5 instruction cache — the PULP runtime's
    /// icache-flush doorbell. Required after cluster code in the L2SPM is
    /// modified from outside the cluster (e.g. the host patching a loaded
    /// kernel): the per-team private I-caches start cold, but this cache
    /// persists across [`Cluster::run_team`] calls and would otherwise
    /// serve stale instruction bytes.
    ///
    /// # Errors
    ///
    /// Propagates backing errors (none occur: the cache is write-through).
    pub fn flush_icache(&mut self) -> Result<(), SimError> {
        self.shared_icache.borrow_mut().flush().map(|_| ())
    }

    /// Backdoor TCDM `u32` read.
    ///
    /// # Errors
    ///
    /// Propagates TCDM range errors.
    pub fn tcdm_read_u32(&mut self, offset: u64) -> Result<u32, SimError> {
        Ok(self.tcdm.borrow_mut().read_u32(offset)?.0)
    }

    /// DMA a contiguous block from the SoC address space into the TCDM.
    /// Returns the transfer time in cluster cycles.
    ///
    /// # Errors
    ///
    /// Propagates range errors from either side.
    pub fn dma_to_tcdm(
        &mut self,
        ext_addr: u64,
        tcdm_offset: u64,
        bytes: usize,
    ) -> Result<Cycles, SimError> {
        let lat = self.dma.run_1d(
            &self.ext,
            &self.tcdm,
            Transfer1d {
                src: ext_addr,
                dst: tcdm_offset,
                bytes,
            },
        )?;
        self.stats.add("dma_bytes_in", bytes as u64);
        Ok(convert_freq(lat, self.cfg.soc_freq, self.cfg.freq))
    }

    /// DMA a contiguous block from the TCDM out to the SoC address space.
    ///
    /// # Errors
    ///
    /// Propagates range errors from either side.
    pub fn dma_from_tcdm(
        &mut self,
        tcdm_offset: u64,
        ext_addr: u64,
        bytes: usize,
    ) -> Result<Cycles, SimError> {
        let lat = self.dma.run_1d(
            &self.tcdm,
            &self.ext,
            Transfer1d {
                src: tcdm_offset,
                dst: ext_addr,
                bytes,
            },
        )?;
        self.stats.add("dma_bytes_out", bytes as u64);
        Ok(convert_freq(lat, self.cfg.soc_freq, self.cfg.freq))
    }

    /// 2D-DMA a tile (e.g. a sub-matrix) from the SoC address space into the
    /// TCDM — the access pattern DORY-style tiling leans on.
    ///
    /// # Errors
    ///
    /// Propagates range errors from either side.
    pub fn dma_to_tcdm_2d(
        &mut self,
        ext_addr: u64,
        ext_stride: u64,
        tcdm_offset: u64,
        row_bytes: usize,
        rows: usize,
    ) -> Result<Cycles, SimError> {
        let lat = self.dma.run_2d(
            &self.ext,
            &self.tcdm,
            Transfer2d {
                src: ext_addr,
                dst: tcdm_offset,
                row_bytes,
                rows,
                src_stride: ext_stride,
                dst_stride: row_bytes as u64,
            },
        )?;
        self.stats.add("dma_bytes_in", (row_bytes * rows) as u64);
        Ok(convert_freq(lat, self.cfg.soc_freq, self.cfg.freq))
    }

    /// Runs a fork/join team: `num_cores` cores start at `entry` with `args`
    /// preloaded into registers (same values on every core; cores
    /// differentiate through the `mhartid` CSR), run to `ebreak`, and join
    /// at the event-unit barrier.
    ///
    /// Returns the team timing; TCDM contents carry the results.
    ///
    /// # Errors
    ///
    /// Propagates core execution errors and enforces `max_cycles` per core.
    pub fn run_team(
        &mut self,
        entry: u64,
        args: &[(Reg, u64)],
        num_cores: usize,
        max_cycles: u64,
    ) -> Result<TeamResult, RvError> {
        let num_cores = num_cores.min(self.cfg.cores).max(1);
        let mut per_core = Vec::with_capacity(num_cores);
        let mut per_core_instret = Vec::with_capacity(num_cores);
        let mut per_core_state = Vec::with_capacity(num_cores);
        let mut per_core_perf = Vec::with_capacity(num_cores);
        let mut arith_ops = 0u64;
        let tcdm_bytes = self.cfg.tcdm_bytes() as u64;
        let tcdm_top = TCDM_BASE + tcdm_bytes;
        // Per-team constants, hoisted out of the per-core loop.
        //
        // Expected extra TCDM-bank-conflict stall, in 1/65536ths of a cycle
        // per access. With N cores issuing uniformly random accesses over B
        // word-interleaved banks, the chance another given core hits the same
        // bank in the same cycle is 1/B; summed over the N-1 peers and halved
        // (the loser of a 2-way collision stalls, the winner does not) the
        // expected stall is (N-1)/(2B) cycles per access, encoded Q16:
        let conflict_q16 = if num_cores > 1 {
            ((num_cores as u64 - 1) << 16) / (2 * self.cfg.banks as u64)
        } else {
            0
        };

        for hartid in 0..num_cores {
            let mut core = Core::ri5cy(hartid as u64);
            core.set_decode_cache(self.cfg.decode_cache);
            if let Some(t) = &self.tracer {
                core.set_tracer(t.clone());
            }
            core.set_pc(entry);
            core.set_reg(Reg::Sp, tcdm_top - (hartid * self.cfg.stack_bytes) as u64);
            for &(r, v) in args {
                core.set_reg(r, v);
            }
            let mut private_icache = Cache::new(
                CacheConfig {
                    name: format!("icache_p{hartid}"),
                    ways: 1,
                    sets: (self.cfg.icache_private_bytes / 32)
                        .max(1)
                        .next_power_of_two(),
                    line_bytes: 32,
                    hit_latency: Cycles::new(1),
                    write_policy: WritePolicy::WriteThrough,
                    write_allocate: false,
                    write_buffer: true,
                },
                self.shared_icache.clone(),
            )
            .expect("private I-cache geometry");

            // Scoped so the bus releases the I$ borrow for the stats
            // reads below.
            let (b_tcdm, b_conflicts, b_ext, b_ext_stalls) = {
                let mut bus = ClusterCoreBus {
                    tcdm: &self.tcdm,
                    ext: &self.ext,
                    icache: &mut private_icache,
                    tcdm_bytes,
                    cluster_freq: self.cfg.freq,
                    soc_freq: self.cfg.soc_freq,
                    conflict_q16,
                    conflict_acc: 0,
                    conflicts: 0,
                    tcdm_accesses: 0,
                    ext_accesses: 0,
                    ext_stall_cycles: 0,
                };
                core.run(&mut bus, max_cycles)?;
                (
                    bus.tcdm_accesses,
                    bus.conflicts,
                    bus.ext_accesses,
                    bus.ext_stall_cycles,
                )
            };
            self.stats.add("tcdm_conflicts", b_conflicts);
            per_core.push(core.cycles());
            per_core_instret.push(core.instret());
            per_core_state.push(core.state_digest());
            self.stats.add("instret", core.instret());
            let cs = core.stats();
            arith_ops += cs.get("arith_ops");
            for key in ["decode_hits", "decode_misses", "decode_invalidations"] {
                self.stats.add(key, cs.get(key));
            }
            let perf = CorePerf {
                tcdm_accesses: b_tcdm,
                tcdm_conflict_stalls: b_conflicts,
                icache_hits: private_icache.stats().get("hits"),
                icache_misses: private_icache.stats().get("misses"),
                ext_accesses: b_ext,
                ext_stall_cycles: b_ext_stalls,
                hwloop_iters: cs.get("hwloop_iters"),
                taken_branches: cs.get("taken_branches"),
            };
            self.stats.add("tcdm_accesses", perf.tcdm_accesses);
            self.stats.add("icache_p_hits", perf.icache_hits);
            self.stats.add("icache_p_misses", perf.icache_misses);
            self.stats.add("ext_accesses", perf.ext_accesses);
            self.stats.add("ext_stall_cycles", perf.ext_stall_cycles);
            self.stats.add("hwloop_iters", perf.hwloop_iters);
            per_core_perf.push(perf);
        }

        let max = per_core.iter().copied().fold(Cycles::ZERO, Cycles::max);
        let cycles = max + Cycles::new(self.cfg.barrier_cycles);
        self.busy_cycles += cycles;
        self.stats.inc("teams");
        self.stats.add("team_cycles", cycles.get());
        Ok(TeamResult {
            cycles,
            per_core,
            per_core_instret,
            per_core_state,
            arith_ops,
            per_core_perf,
        })
    }
}

/// Per-core view of the cluster memory system during a team run.
struct ClusterCoreBus<'a> {
    tcdm: &'a SharedMem,
    ext: &'a SharedMem,
    icache: &'a mut Cache,
    tcdm_bytes: u64,
    cluster_freq: Freq,
    soc_freq: Freq,
    conflict_q16: u64,
    conflict_acc: u64,
    conflicts: u64,
    tcdm_accesses: u64,
    ext_accesses: u64,
    ext_stall_cycles: u64,
}

impl ClusterCoreBus<'_> {
    fn tcdm_offset(&self, addr: u64, len: usize) -> Option<u64> {
        if addr >= TCDM_BASE && addr + len as u64 <= TCDM_BASE + self.tcdm_bytes {
            Some(addr - TCDM_BASE)
        } else {
            None
        }
    }

    fn perf_offset(&self, addr: u64, len: usize) -> Option<u64> {
        if addr >= PERF_BASE && addr + len as u64 <= PERF_BASE + PERF_WINDOW_BYTES {
            Some(addr - PERF_BASE)
        } else {
            None
        }
    }

    /// Byte image of the perf-counter window ([`PERF_BASE`] register map).
    /// Reads of the window itself are not counted as data accesses.
    fn perf_image(&self) -> [u8; PERF_WINDOW_BYTES as usize] {
        let regs = [
            self.tcdm_accesses,
            self.conflicts,
            self.icache.stats().get("hits"),
            self.icache.stats().get("misses"),
            self.ext_accesses,
            self.ext_stall_cycles,
        ];
        let mut img = [0u8; PERF_WINDOW_BYTES as usize];
        for (i, r) in regs.iter().enumerate() {
            img[i * 4..][..4].copy_from_slice(&(*r as u32).to_le_bytes());
        }
        img
    }

    /// Expected bank-conflict stall for one TCDM access: a Q16 fractional
    /// accumulator keeps the model deterministic and smooth.
    fn conflict_stall(&mut self) -> Cycles {
        self.conflict_acc += self.conflict_q16;
        if self.conflict_acc >= 1 << 16 {
            self.conflict_acc -= 1 << 16;
            self.conflicts += 1;
            Cycles::new(1)
        } else {
            Cycles::ZERO
        }
    }

    fn ext_stall(&self, soc_lat: Cycles) -> Cycles {
        convert_freq(soc_lat, self.soc_freq, self.cluster_freq).saturating_sub(Cycles::new(1))
    }
}

impl CoreBus for ClusterCoreBus<'_> {
    #[inline]
    fn fetch(&mut self, addr: u64) -> Result<(u32, Cycles), SimError> {
        let mut b = [0u8; 4];
        let lat = self.icache.read(addr, &mut b)?;
        // A private-I$ hit (1 cycle) is fully pipelined.
        Ok((u32::from_le_bytes(b), self.ext_stall(lat).max(Cycles::ZERO)))
    }

    #[inline]
    fn fetch_touch(&mut self, addr: u64) -> bool {
        self.icache.probe_fetch(addr, 4)
    }

    #[inline]
    fn fetch_epoch(&self) -> u64 {
        self.icache.epoch()
    }

    #[inline]
    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        if let Some(off) = self.tcdm_offset(addr, buf.len()) {
            self.tcdm_accesses += 1;
            self.tcdm.borrow_mut().read(off, buf)?;
            Ok(self.conflict_stall())
        } else if let Some(off) = self.perf_offset(addr, buf.len()) {
            let img = self.perf_image();
            buf.copy_from_slice(&img[off as usize..off as usize + buf.len()]);
            Ok(Cycles::ZERO)
        } else {
            let lat = self.ext.borrow_mut().read(addr, buf)?;
            let stall = self.ext_stall(lat);
            self.ext_accesses += 1;
            self.ext_stall_cycles += stall.get();
            Ok(stall)
        }
    }

    #[inline]
    fn store(&mut self, addr: u64, data: &[u8]) -> Result<Cycles, SimError> {
        if let Some(off) = self.tcdm_offset(addr, data.len()) {
            self.tcdm_accesses += 1;
            self.tcdm.borrow_mut().write(off, data)?;
            Ok(self.conflict_stall())
        } else if self.perf_offset(addr, data.len()).is_some() {
            // The counters are bus-owned: stores are accepted and dropped.
            Ok(Cycles::ZERO)
        } else {
            let lat = self.ext.borrow_mut().write(addr, data)?;
            let stall = self.ext_stall(lat);
            self.ext_accesses += 1;
            self.ext_stall_cycles += stall.get();
            Ok(stall)
        }
    }

    fn hpm_icache_misses(&self) -> u64 {
        self.icache.stats().get("misses")
    }

    fn hpm_conflict_stalls(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv_mem::{shared, Bus};
    use hulkv_rv::{Asm, Xlen};

    fn soc_with_program(words: &[u32]) -> SharedMem {
        let mut l2 = Sram::new("l2spm", 1 << 20, Cycles::new(2));
        for (i, w) in words.iter().enumerate() {
            l2.write_u32(i as u64 * 4, *w).unwrap();
        }
        let mut bus = Bus::new("axi", Cycles::new(2));
        bus.map("l2spm", 0x8000_0000, shared(l2)).unwrap();
        shared(bus)
    }

    fn store_result_per_hart(a: &mut Asm, value_reg: Reg) {
        a.csrr(Reg::T5, hulkv_rv::csr::addr::MHARTID);
        a.slli(Reg::T5, Reg::T5, 2);
        a.li(Reg::T6, TCDM_BASE as i64);
        a.add(Reg::T6, Reg::T6, Reg::T5);
        a.sw(value_reg, Reg::T6, 0);
    }

    #[test]
    fn eight_cores_run_the_same_binary() {
        let mut a = Asm::new(Xlen::Rv32);
        a.csrr(Reg::A0, hulkv_rv::csr::addr::MHARTID);
        a.slli(Reg::A0, Reg::A0, 1); // 2 * hartid
        store_result_per_hart(&mut a, Reg::A0);
        a.ebreak();
        let ext = soc_with_program(&a.assemble().unwrap());
        let mut cluster = Cluster::new(ClusterConfig::default(), ext);
        let r = cluster.run_team(0x8000_0000, &[], 8, 100_000).unwrap();
        for hart in 0..8u64 {
            assert_eq!(cluster.tcdm_read_u32(hart * 4).unwrap(), 2 * hart as u32);
        }
        assert_eq!(r.per_core.len(), 8);
        assert_eq!(cluster.stats().get("teams"), 1);
    }

    #[test]
    fn args_reach_all_cores() {
        let mut a = Asm::new(Xlen::Rv32);
        a.add(Reg::A0, Reg::A0, Reg::A1);
        store_result_per_hart(&mut a, Reg::A0);
        a.ebreak();
        let ext = soc_with_program(&a.assemble().unwrap());
        let mut cluster = Cluster::new(ClusterConfig::default(), ext);
        cluster
            .run_team(0x8000_0000, &[(Reg::A0, 30), (Reg::A1, 12)], 4, 100_000)
            .unwrap();
        for hart in 0..4u64 {
            assert_eq!(cluster.tcdm_read_u32(hart * 4).unwrap(), 42);
        }
    }

    #[test]
    fn team_cycles_are_max_plus_barrier() {
        // Core 0 does more work than the others.
        let mut a = Asm::new(Xlen::Rv32);
        a.csrr(Reg::T0, hulkv_rv::csr::addr::MHARTID);
        let skip = a.label();
        a.bnez(Reg::T0, skip);
        a.li(Reg::T1, 1000);
        let top = a.label();
        a.bind(top);
        a.addi(Reg::T1, Reg::T1, -1);
        a.bnez(Reg::T1, top);
        a.bind(skip);
        a.ebreak();
        let ext = soc_with_program(&a.assemble().unwrap());
        let mut cluster = Cluster::new(ClusterConfig::default(), ext);
        let r = cluster.run_team(0x8000_0000, &[], 8, 1_000_000).unwrap();
        let max = r.per_core.iter().copied().fold(Cycles::ZERO, Cycles::max);
        assert_eq!(r.cycles, max + Cycles::new(8));
        assert!(r.per_core[0] > r.per_core[1] * 10);
    }

    #[test]
    fn tcdm_loads_are_single_cycle_when_alone() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, TCDM_BASE as i64);
        for _ in 0..64 {
            a.lw(Reg::T1, Reg::T0, 0);
        }
        a.ebreak();
        let ext = soc_with_program(&a.assemble().unwrap());
        let mut cluster = Cluster::new(ClusterConfig::default(), ext);
        let r = cluster.run_team(0x8000_0000, &[], 1, 100_000).unwrap();
        // After I$ warm-up, each lw retires in 1 cycle; generous bound.
        assert!(r.per_core[0].get() < 64 + 80, "cycles {}", r.per_core[0]);
        assert_eq!(cluster.stats().get("tcdm_conflicts"), 0);
    }

    #[test]
    fn bank_conflicts_grow_with_team_size() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, TCDM_BASE as i64);
        a.lp_counti(0, 1024);
        let (s, e) = (a.label(), a.label());
        a.lp_starti(0, s);
        a.lp_endi(0, e);
        a.bind(s);
        a.lw(Reg::T1, Reg::T0, 0);
        a.bind(e);
        a.ebreak();
        let words = a.assemble().unwrap();

        let mut solo = Cluster::new(ClusterConfig::default(), soc_with_program(&words));
        let r1 = solo.run_team(0x8000_0000, &[], 1, 1_000_000).unwrap();
        let mut full = Cluster::new(ClusterConfig::default(), soc_with_program(&words));
        let r8 = full.run_team(0x8000_0000, &[], 8, 1_000_000).unwrap();
        assert!(full.stats().get("tcdm_conflicts") > 0);
        assert!(r8.cycles > r1.cycles);
        // But the conflict tax is mild: 16 banks for 8 cores.
        assert!(r8.cycles.get() < r1.cycles.get() * 2);
    }

    #[test]
    fn decode_cache_is_cycle_neutral_for_teams() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, TCDM_BASE as i64);
        a.li(Reg::T2, 300);
        let top = a.label();
        a.bind(top);
        a.lw(Reg::T1, Reg::T0, 0);
        a.addi(Reg::T1, Reg::T1, 1);
        a.sw(Reg::T1, Reg::T0, 4);
        a.addi(Reg::T2, Reg::T2, -1);
        a.bnez(Reg::T2, top);
        a.ebreak();
        let words = a.assemble().unwrap();

        let mut on = Cluster::new(ClusterConfig::default(), soc_with_program(&words));
        let r_on = on.run_team(0x8000_0000, &[], 8, 1_000_000).unwrap();
        let cfg_off = ClusterConfig {
            decode_cache: false,
            ..ClusterConfig::default()
        };
        let mut off = Cluster::new(cfg_off, soc_with_program(&words));
        let r_off = off.run_team(0x8000_0000, &[], 8, 1_000_000).unwrap();
        assert_eq!(r_on.cycles, r_off.cycles);
        assert_eq!(r_on.per_core, r_off.per_core);
        assert!(on.stats().get("decode_hits") > 1000);
        assert_eq!(off.stats().get("decode_hits"), 0);
    }

    #[test]
    fn ext_access_slower_than_tcdm() {
        let mut tcdm_prog = Asm::new(Xlen::Rv32);
        tcdm_prog.li(Reg::T0, TCDM_BASE as i64);
        for _ in 0..32 {
            tcdm_prog.lw(Reg::T1, Reg::T0, 0);
        }
        tcdm_prog.ebreak();
        let mut ext_prog = Asm::new(Xlen::Rv32);
        ext_prog.li(Reg::T0, 0x8008_0000u32 as i64);
        for _ in 0..32 {
            ext_prog.lw(Reg::T1, Reg::T0, 0);
        }
        ext_prog.ebreak();

        let mut c1 = Cluster::new(
            ClusterConfig::default(),
            soc_with_program(&tcdm_prog.assemble().unwrap()),
        );
        let t1 = c1.run_team(0x8000_0000, &[], 1, 100_000).unwrap();
        let mut c2 = Cluster::new(
            ClusterConfig::default(),
            soc_with_program(&ext_prog.assemble().unwrap()),
        );
        let t2 = c2.run_team(0x8000_0000, &[], 1, 100_000).unwrap();
        assert!(t2.cycles > t1.cycles);
    }

    #[test]
    fn dma_round_trip() {
        let ext = soc_with_program(&[]);
        let mut cluster = Cluster::new(ClusterConfig::default(), ext.clone());
        ext.borrow_mut().write(0x8000_1000, &[7u8; 256]).unwrap();
        let c_in = cluster.dma_to_tcdm(0x8000_1000, 0x200, 256).unwrap();
        assert!(c_in.get() > 0);
        let mut buf = [0u8; 256];
        cluster.tcdm_read(0x200, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 256]);

        cluster.tcdm_write(0x400, &[9u8; 64]).unwrap();
        cluster.dma_from_tcdm(0x400, 0x8000_2000, 64).unwrap();
        let mut out = [0u8; 64];
        ext.borrow_mut().read(0x8000_2000, &mut out).unwrap();
        assert_eq!(out, [9u8; 64]);
        assert_eq!(cluster.stats().get("dma_bytes_in"), 256);
        assert_eq!(cluster.stats().get("dma_bytes_out"), 64);
    }

    #[test]
    fn dma_2d_gathers_matrix_tile() {
        let ext = soc_with_program(&[]);
        let mut cluster = Cluster::new(ClusterConfig::default(), ext.clone());
        // A 4x4 tile out of a 64-byte-stride matrix.
        for row in 0..4u8 {
            ext.borrow_mut()
                .write(0x8000_1000 + row as u64 * 64, &[row + 1; 4])
                .unwrap();
        }
        cluster.dma_to_tcdm_2d(0x8000_1000, 64, 0, 4, 4).unwrap();
        let mut buf = [0u8; 16];
        cluster.tcdm_read(0, &mut buf).unwrap();
        assert_eq!(&buf[0..4], &[1; 4]);
        assert_eq!(&buf[12..16], &[4; 4]);
    }

    #[test]
    fn perf_unit_matches_simulator_stats_exactly() {
        // The guest reads its perf-counter window and stores the values to
        // the TCDM; the test compares them to the simulator-side CorePerf.
        // Registers are read before the result stores, so the guest values
        // trail the final counters by a statically known tail: six TCDM
        // stores (and zero external accesses / conflicts on a solo core).
        let mut a = Asm::new(Xlen::Rv32);
        // Workload: 8 TCDM loads + 4 TCDM stores + 2 external loads.
        a.li(Reg::T0, TCDM_BASE as i64);
        for i in 0..8 {
            a.lw(Reg::T1, Reg::T0, 0x100 + 4 * i);
        }
        for i in 0..4 {
            a.sw(Reg::T1, Reg::T0, 0x200 + 4 * i);
        }
        a.li(Reg::T2, 0x8008_0000u32 as i64);
        a.lw(Reg::T3, Reg::T2, 0);
        a.lw(Reg::T3, Reg::T2, 4);
        // Read the six perf registers, then store them to TCDM 0x00..0x18.
        a.li(Reg::T2, PERF_BASE as i64);
        for i in 0..6 {
            a.lw(Reg::T3, Reg::T2, 4 * i);
            a.sw(Reg::T3, Reg::T0, 4 * i);
        }
        a.ebreak();
        let ext = soc_with_program(&a.assemble().unwrap());
        let mut cluster = Cluster::new(ClusterConfig::default(), ext);
        let r = cluster.run_team(0x8000_0000, &[], 1, 100_000).unwrap();
        let perf = r.per_core_perf[0];
        let mut guest = |i: u64| cluster.tcdm_read_u32(i * 4).unwrap() as u64;

        // Stores interleave with the register reads: the read of register i
        // happens after i result stores.
        for (i, (name, fin)) in [
            ("tcdm_accesses", perf.tcdm_accesses),
            ("tcdm_conflict_stalls", perf.tcdm_conflict_stalls),
            ("icache_hits", perf.icache_hits),
            ("icache_misses", perf.icache_misses),
            ("ext_accesses", perf.ext_accesses),
            ("ext_stall_cycles", perf.ext_stall_cycles),
        ]
        .iter()
        .enumerate()
        {
            let tail = match i {
                // Register 0 is read before all six result stores land.
                0 => 6,
                // Solo core: no conflicts ever.
                1 => 0,
                // The I$ counters move with tail *fetches*, checked below.
                2 | 3 => continue,
                // The external phase is over before the reads: tail-dead.
                _ => 0,
            };
            assert_eq!(guest(i as u64) + tail, *fin, "{name}");
        }
        assert_eq!(perf.tcdm_accesses, 8 + 4 + 6, "workload + result stores");
        assert_eq!(perf.ext_accesses, 2);
        assert!(perf.ext_stall_cycles > 0, "AXI accesses are not free");
        // I$ counters: the guest snapshot can only trail the final value
        // (the tail keeps fetching but never invalidates).
        assert!(guest(2) <= perf.icache_hits);
        assert!(guest(3) <= perf.icache_misses);
        assert!(perf.icache_hits > 0 && perf.icache_misses > 0);
    }

    #[test]
    fn hpm_csrs_work_on_cluster_cores() {
        // Cluster cores self-measure through the same HPM CSRs as the host:
        // count hardware-loop iterations and cross-check against CorePerf.
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, 12); // HpmEvent::HwLoopIter
        a.csrw(hulkv_rv::csr::addr::MHPMEVENT3, Reg::T0);
        a.li(Reg::A0, 0);
        a.lp_counti(0, 10);
        let (s, e) = (a.label(), a.label());
        a.lp_starti(0, s);
        a.lp_endi(0, e);
        a.bind(s);
        a.addi(Reg::A0, Reg::A0, 1);
        a.bind(e);
        a.csrr(Reg::A1, hulkv_rv::csr::addr::MHPMCOUNTER3);
        store_result_per_hart(&mut a, Reg::A1);
        a.ebreak();
        let ext = soc_with_program(&a.assemble().unwrap());
        let mut cluster = Cluster::new(ClusterConfig::default(), ext);
        let r = cluster.run_team(0x8000_0000, &[], 2, 100_000).unwrap();
        for hart in 0..2 {
            assert_eq!(cluster.tcdm_read_u32(hart * 4).unwrap(), 9);
            assert_eq!(r.per_core_perf[hart as usize].hwloop_iters, 9);
        }
        assert_eq!(cluster.stats().get("hwloop_iters"), 18);
    }

    #[test]
    fn perf_window_stores_are_dropped() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, PERF_BASE as i64);
        a.li(Reg::T1, 0xDEAD);
        a.sw(Reg::T1, Reg::T0, 0); // ignored: counters are bus-owned
        a.lw(Reg::A0, Reg::T0, 4); // conflict stalls: solo core -> 0
        store_result_per_hart(&mut a, Reg::A0);
        a.ebreak();
        let ext = soc_with_program(&a.assemble().unwrap());
        let mut cluster = Cluster::new(ClusterConfig::default(), ext);
        let r = cluster.run_team(0x8000_0000, &[], 1, 100_000).unwrap();
        assert_eq!(cluster.tcdm_read_u32(0).unwrap(), 0);
        // The dropped store is not a TCDM access either.
        assert_eq!(r.per_core_perf[0].tcdm_accesses, 1);
    }

    #[test]
    fn team_size_clamped_to_config() {
        let mut a = Asm::new(Xlen::Rv32);
        a.ebreak();
        let ext = soc_with_program(&a.assemble().unwrap());
        let mut cluster = Cluster::new(ClusterConfig::default(), ext);
        let r = cluster.run_team(0x8000_0000, &[], 99, 100_000).unwrap();
        assert_eq!(r.per_core.len(), 8);
    }
}
