//! Off-chip memory interface power: HyperRAM vs LPDDR4.

/// Power model of one main-memory interface (controller + PHY + device
/// interface activity).
///
/// The HyperRAM path is fully digital: the controller measures 0.27 mm² and
/// burns under 2 mW — "around two orders of magnitude less than DDR
/// controllers". The LPDDR4 path needs a large mixed-signal PHY whose
/// standby power alone runs to hundreds of mW (the paper cites the i.MX 8M
/// measurements \[14\]); this fixed cost is what halves the energy efficiency
/// of compute-bound IoT workloads on DDR-based systems (Figure 9, right).
///
/// # Example
///
/// ```
/// use hulkv_power::DramInterfacePower;
///
/// let hyper = DramInterfacePower::hyperram();
/// let lpddr = DramInterfacePower::lpddr4();
/// // At a modest 100 MB/s the LPDDR interface burns far more.
/// let bw = 100.0e6;
/// assert!(lpddr.power_mw(bw) > 10.0 * hyper.power_mw(bw));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramInterfacePower {
    /// Interface name.
    pub name: &'static str,
    /// Always-on power (controller + PHY + device standby), mW.
    pub static_mw: f64,
    /// Transfer energy, pJ per byte moved.
    pub pj_per_byte: f64,
    /// Peak interface bandwidth, bytes per second.
    pub peak_bandwidth_bps: f64,
}

impl DramInterfacePower {
    /// The HyperRAM interface: the 1.16 mW digital controller plus the
    /// device's standby current, with DRAM-array transfer energy.
    pub fn hyperram() -> Self {
        DramInterfacePower {
            name: "HyperRAM",
            static_mw: 4.0,
            pj_per_byte: 120.0,
            peak_bandwidth_bps: 450.0e6, // 3.6 Gb/s at 225 MHz DDR
        }
    }

    /// An LPDDR4 interface sized for this class of SoC: controller +
    /// mixed-signal PHY standby in the hundreds of mW, lower per-byte
    /// energy thanks to the wide fast bus.
    pub fn lpddr4() -> Self {
        DramInterfacePower {
            name: "LPDDR4",
            static_mw: 230.0,
            pj_per_byte: 60.0,
            peak_bandwidth_bps: 3.6e9, // an order of magnitude above the SoC
        }
    }

    /// Interface power at a sustained bandwidth of `bytes_per_second`.
    pub fn power_mw(&self, bytes_per_second: f64) -> f64 {
        self.static_mw + self.pj_per_byte * bytes_per_second * 1e-9
    }

    /// Energy for moving `bytes` over `seconds` (static + transfer), mJ.
    pub fn energy_mj(&self, bytes: f64, seconds: f64) -> f64 {
        self.static_mw * seconds + self.pj_per_byte * bytes * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyper_static_power_two_orders_below_lpddr() {
        let h = DramInterfacePower::hyperram();
        let l = DramInterfacePower::lpddr4();
        assert!(l.static_mw / h.static_mw > 50.0);
    }

    #[test]
    fn lpddr_wins_per_byte_but_loses_standing_still() {
        let h = DramInterfacePower::hyperram();
        let l = DramInterfacePower::lpddr4();
        assert!(l.pj_per_byte < h.pj_per_byte);
        assert!(l.power_mw(0.0) > h.power_mw(0.0));
    }

    #[test]
    fn crossover_is_beyond_hyperram_bandwidth() {
        // Below the HyperRAM's own peak bandwidth, the HyperRAM interface
        // always consumes less: the premise of the Figure-9 claim.
        let h = DramInterfacePower::hyperram();
        let l = DramInterfacePower::lpddr4();
        let mut bw = 0.0f64;
        while bw <= h.peak_bandwidth_bps {
            assert!(h.power_mw(bw) < l.power_mw(bw), "at {bw} B/s");
            bw += 50.0e6;
        }
    }

    #[test]
    fn energy_accounts_static_and_transfer() {
        let h = DramInterfacePower::hyperram();
        let e = h.energy_mj(1e6, 0.5);
        assert!((e - (4.0 * 0.5 + 120.0 * 1e6 * 1e-9)).abs() < 1e-9);
    }
}
