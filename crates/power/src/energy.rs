//! Energy integration over a telemetry [`Timeline`].
//!
//! The timeline sampler (in `hulkv-sim`) records *what happened* per
//! window — raw counter deltas. This module turns activity into watts and
//! joules: each window's deltas are mapped to per-block utilizations, run
//! through the Table II [`PowerModel`], and integrated into millijoules.
//! The utilization mapping follows the paper's methodology of scaling each
//! block's dynamic power by its busy fraction:
//!
//! * **CVA6** — retired instructions over the window's core-domain cycles
//!   (IPC, clamped to 1);
//! * **PMCA** — cluster-wide retired instructions over `cores ×`
//!   cluster-domain cycles;
//! * **mem ctrl** — bytes moved through main memory over the controller's
//!   peak of 2 bytes/cycle (HyperRAM's 16-bit DDR bus);
//! * **top** — a fixed 30 % interconnect activity factor whenever the
//!   window saw any traffic at all, idle leakage otherwise.
//!
//! Energy per window is `P_total · Δt` with
//! `Δt = Δcycles / (f_soc · 10⁶)` seconds, so milliwatts integrate
//! directly to millijoules. Because [`EnergySummary::avg_power_mw`] is the
//! *time-weighted* mean `Σ Pᵢ·Δtᵢ / Σ Δtᵢ`, the identity
//! `total_mj == avg_power_mw × duration_s` holds exactly (up to float
//! rounding) — CI asserts it to 1 %.

use crate::blocks::PowerModel;
use hulkv_sim::{Timeline, TimelineWindow};

/// Whole-run energy figures derived from an enriched timeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergySummary {
    /// Integrated energy over all windows, in millijoules.
    pub total_mj: f64,
    /// Time-weighted average power over the run, in milliwatts.
    pub avg_power_mw: f64,
    /// Highest single-window total power, in milliwatts.
    pub peak_power_mw: f64,
    /// Start cycle of the peak-power window.
    pub peak_window_start_cycle: u64,
    /// Total cycles covered by the timeline (SoC clock domain).
    pub duration_cycles: u64,
}

impl EnergySummary {
    /// Copies the summary into a [`MetricsSnapshot`]'s `energy` section.
    pub fn apply_to(&self, snap: &mut hulkv_sim::MetricsSnapshot) {
        snap.set_energy("total_mj", self.total_mj);
        snap.set_energy("avg_power_mw", self.avg_power_mw);
        snap.set_energy("peak_power_mw", self.peak_power_mw);
        snap.set_energy(
            "peak_window_start_cycle",
            self.peak_window_start_cycle as f64,
        );
        snap.set_energy("duration_cycles", self.duration_cycles as f64);
    }
}

fn delta(w: &TimelineWindow, key: &str) -> u64 {
    w.deltas.get(key).copied().unwrap_or(0)
}

fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Fills every window's `power_mw`, `energy_mj` and utilization figures
/// from its counter deltas, and returns the whole-run [`EnergySummary`].
///
/// `soc_mhz` is the clock the timeline's cycle cursor counts in (the SoC
/// interconnect domain); `cluster_cores` is the PMCA core count used to
/// normalize cluster IPC.
pub fn enrich_timeline(
    tl: &mut Timeline,
    model: &PowerModel,
    soc_mhz: f64,
    cluster_cores: u64,
) -> EnergySummary {
    assert!(soc_mhz > 0.0, "soc_mhz must be positive");
    let cores = cluster_cores.max(1) as f64;
    let mut summary = EnergySummary::default();
    let mut weighted_power = 0.0;
    for w in tl.windows_mut() {
        let soc_cycles = w.cycles() as f64;
        let active = !w.deltas.is_empty();

        let cva6_cycles = soc_cycles * model.cva6.max_freq_mhz / soc_mhz;
        let util_cva6 = clamp01(delta(w, "core.instret") as f64 / cva6_cycles.max(1.0));

        let pmca_cycles = soc_cycles * model.pmca.max_freq_mhz / soc_mhz;
        let util_pmca =
            clamp01(delta(w, "cluster.instret") as f64 / (cores * pmca_cycles.max(1.0)));

        // Only the main-memory devices: caches expose bytes_read /
        // bytes_written counters of their own that must not count here.
        let mem_bytes = delta(w, "hyperram.bytes_read")
            + delta(w, "hyperram.bytes_written")
            + delta(w, "ddr.bytes_read")
            + delta(w, "ddr.bytes_written");
        let mem_cycles = soc_cycles * model.mem_ctrl.max_freq_mhz / soc_mhz;
        let util_mem = clamp01(mem_bytes as f64 / (2.0 * mem_cycles.max(1.0)));

        let util_top = if active { 0.3 } else { 0.0 };

        w.power_mw.insert(
            "cva6".into(),
            model.cva6.power_mw(model.cva6.max_freq_mhz, util_cva6),
        );
        w.power_mw.insert(
            "pmca".into(),
            model.pmca.power_mw(model.pmca.max_freq_mhz, util_pmca),
        );
        w.power_mw.insert(
            "mem_ctrl".into(),
            model
                .mem_ctrl
                .power_mw(model.mem_ctrl.max_freq_mhz, util_mem),
        );
        w.power_mw.insert(
            "top".into(),
            model.top.power_mw(model.top.max_freq_mhz, util_top),
        );
        w.figures.insert("util_cva6".into(), util_cva6);
        w.figures.insert("util_pmca".into(), util_pmca);
        w.figures.insert("util_mem_ctrl".into(), util_mem);

        let total_mw = w.total_power_mw();
        let dt_s = soc_cycles / (soc_mhz * 1e6);
        w.energy_mj = total_mw * dt_s;

        summary.total_mj += w.energy_mj;
        summary.duration_cycles += w.cycles();
        weighted_power += total_mw * soc_cycles;
        if total_mw > summary.peak_power_mw {
            summary.peak_power_mw = total_mw;
            summary.peak_window_start_cycle = w.start_cycle;
        }
    }
    if summary.duration_cycles > 0 {
        summary.avg_power_mw = weighted_power / summary.duration_cycles as f64;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv_sim::Stats;

    fn stats(name: &str, pairs: &[(&str, u64)]) -> Stats {
        let mut s = Stats::new(name);
        for &(k, v) in pairs {
            s.set(k, v);
        }
        s
    }

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::new(1000);
        // Window 1: host busy (IPC 0.5 in the 900 MHz core domain),
        // some main-memory traffic.
        tl.sample(
            1000,
            &[
                stats("core", &[("instret", 1000)]),
                stats("hyperram", &[("bytes_read", 512)]),
            ],
        );
        // Window 2: fully idle.
        tl.sample(
            2000,
            &[
                stats("core", &[("instret", 1000)]),
                stats("hyperram", &[("bytes_read", 512)]),
            ],
        );
        tl
    }

    #[test]
    fn enrichment_fills_power_energy_and_figures() {
        let mut tl = sample_timeline();
        let model = PowerModel::gf22fdx_tt();
        let summary = enrich_timeline(&mut tl, &model, 450.0, 8);
        let busy = &tl.windows()[0];
        let idle = &tl.windows()[1];
        // 1000 instret over 1000 soc cycles = 2000 core cycles → IPC 0.5.
        assert!((busy.figures["util_cva6"] - 0.5).abs() < 1e-9);
        assert_eq!(idle.figures["util_cva6"], 0.0);
        // Idle window still pays leakage on every block.
        assert!(idle.total_power_mw() > 0.0);
        assert!(busy.total_power_mw() > idle.total_power_mw());
        assert!(busy.energy_mj > 0.0);
        assert_eq!(summary.peak_window_start_cycle, 0);
        assert_eq!(summary.duration_cycles, 2000);
        assert!((summary.peak_power_mw - busy.total_power_mw()).abs() < 1e-12);
    }

    #[test]
    fn energy_equals_average_power_times_time() {
        let mut tl = sample_timeline();
        let model = PowerModel::gf22fdx_tt();
        let soc_mhz = 450.0;
        let summary = enrich_timeline(&mut tl, &model, soc_mhz, 8);
        let duration_s = summary.duration_cycles as f64 / (soc_mhz * 1e6);
        let recomputed = summary.avg_power_mw * duration_s;
        assert!(
            (recomputed - summary.total_mj).abs() <= 1e-12 * summary.total_mj.max(1.0),
            "{recomputed} vs {}",
            summary.total_mj
        );
    }

    #[test]
    fn utilization_is_clamped_and_cache_bytes_are_ignored() {
        let mut tl = Timeline::new(10);
        // Absurd instret (more than one per core cycle) and cache-side
        // byte counters that must not drive the memory controller.
        tl.sample(
            10,
            &[
                stats("core", &[("instret", 1_000_000)]),
                stats("l1d", &[("bytes_read", 1_000_000)]),
            ],
        );
        let model = PowerModel::gf22fdx_tt();
        enrich_timeline(&mut tl, &model, 450.0, 8);
        let w = &tl.windows()[0];
        assert_eq!(w.figures["util_cva6"], 1.0);
        assert_eq!(w.figures["util_mem_ctrl"], 0.0);
    }

    #[test]
    fn summary_round_trips_into_a_snapshot() {
        let mut tl = sample_timeline();
        let model = PowerModel::gf22fdx_tt();
        let summary = enrich_timeline(&mut tl, &model, 450.0, 8);
        let mut snap = hulkv_sim::MetricsSnapshot::new();
        summary.apply_to(&mut snap);
        assert_eq!(snap.energy["total_mj"], summary.total_mj);
        assert_eq!(snap.energy["duration_cycles"], 2000.0);
        assert_eq!(snap.energy.len(), 5);
    }
}
