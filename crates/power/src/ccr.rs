//! Computation-to-communication analysis (Figure 9).

use crate::{DramInterfacePower, PowerModel};

/// Which block executes a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComputeBlock {
    /// The CVA6 host core.
    Cva6,
    /// The 8-core PMCA.
    Pmca,
}

/// Which main-memory interface backs the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// HyperRAM behind the fully digital controller.
    Hyper,
    /// LPDDR4 behind a mixed-signal PHY.
    Lpddr4,
}

impl MemoryKind {
    /// The interface power model.
    pub fn interface(self) -> DramInterfacePower {
        match self {
            MemoryKind::Hyper => DramInterfacePower::hyperram(),
            MemoryKind::Lpddr4 => DramInterfacePower::lpddr4(),
        }
    }
}

/// One workload point of the Figure-9 analysis.
///
/// `CCR_hyper` "is defined as the ratio between the computing time and the
/// time spent reading from the main memory, assuming full overlap of
/// computation and communication phases" — the double-buffered regime of
/// explicitly memory-managed accelerators. A point left of `CCR = 1` is
/// memory-bound; right of it, compute-bound.
///
/// # Example
///
/// ```
/// use hulkv_power::{CcrPoint, ComputeBlock, MemoryKind};
///
/// // A matmul tile: lots of ops, little traffic => compute-bound.
/// let p = CcrPoint::new("matmul", ComputeBlock::Pmca, 4.0e9, 0.35, 20.0e6);
/// assert!(p.ccr(MemoryKind::Hyper) > 1.0);
/// // HyperRAM doubles its efficiency vs LPDDR4 at identical GOps.
/// let rel = p.gops_per_w(MemoryKind::Hyper) / p.gops_per_w(MemoryKind::Lpddr4);
/// assert!(rel > 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CcrPoint {
    /// Workload name.
    pub name: String,
    /// Executing block.
    pub block: ComputeBlock,
    /// Arithmetic operations per kernel invocation.
    pub ops: f64,
    /// Pure compute time per invocation, in seconds (at the block's
    /// maximum frequency, from the cycle-level simulation).
    pub compute_seconds: f64,
    /// Bytes read from main memory per invocation.
    pub dram_bytes: f64,
}

impl CcrPoint {
    /// Creates a workload point.
    pub fn new(
        name: impl Into<String>,
        block: ComputeBlock,
        ops: f64,
        compute_seconds: f64,
        dram_bytes: f64,
    ) -> Self {
        CcrPoint {
            name: name.into(),
            block,
            ops,
            compute_seconds,
            dram_bytes,
        }
    }

    /// Time spent reading `dram_bytes` from the given memory.
    pub fn mem_seconds(&self, mem: MemoryKind) -> f64 {
        self.dram_bytes / mem.interface().peak_bandwidth_bps
    }

    /// The computation-to-communication ratio against HyperRAM timing when
    /// `mem` is [`MemoryKind::Hyper`] (the paper's `CCR_hyper`), or the
    /// equivalent ratio for another memory.
    pub fn ccr(&self, mem: MemoryKind) -> f64 {
        self.compute_seconds / self.mem_seconds(mem)
    }

    /// Wall-clock per invocation with full compute/transfer overlap.
    pub fn wall_seconds(&self, mem: MemoryKind) -> f64 {
        self.compute_seconds.max(self.mem_seconds(mem))
    }

    /// Achieved GOps with full overlap: compute-bound points reach their
    /// peak, memory-bound points are clipped by bandwidth.
    pub fn gops(&self, mem: MemoryKind) -> f64 {
        self.ops / self.wall_seconds(mem) / 1e9
    }

    /// SoC + memory-interface power while running, mW.
    pub fn power_mw(&self, mem: MemoryKind) -> f64 {
        let soc = PowerModel::gf22fdx_tt();
        let bw = self.dram_bytes / self.wall_seconds(mem);
        let block = match self.block {
            ComputeBlock::Cva6 => soc.host_workload_power_mw(0.5),
            ComputeBlock::Pmca => soc.cluster_workload_power_mw(0.5),
        };
        // The HyperRAM controller is already inside the SoC model; the
        // interface model adds the off-chip/PHY side, or replaces the
        // digital controller with the LPDDR4 subsystem.
        block + mem.interface().power_mw(bw)
    }

    /// Energy efficiency in GOps/W.
    pub fn gops_per_w(&self, mem: MemoryKind) -> f64 {
        self.gops(mem) / (self.power_mw(mem) / 1000.0)
    }

    /// Relative efficiency HyperRAM / LPDDR4 — the Figure-9 right plot.
    pub fn relative_efficiency(&self) -> f64 {
        self.gops_per_w(MemoryKind::Hyper) / self.gops_per_w(MemoryKind::Lpddr4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_bound() -> CcrPoint {
        // 1 GOp over 10 ms of compute, 1 MB of traffic.
        CcrPoint::new("cb", ComputeBlock::Pmca, 1.0e9, 10.0e-3, 1.0e6)
    }

    fn memory_bound() -> CcrPoint {
        // Tiny compute, 100 MB of traffic.
        CcrPoint::new("mb", ComputeBlock::Pmca, 1.0e8, 0.1e-3, 100.0e6)
    }

    #[test]
    fn ccr_separates_the_regimes() {
        assert!(compute_bound().ccr(MemoryKind::Hyper) > 1.0);
        assert!(memory_bound().ccr(MemoryKind::Hyper) < 1.0);
    }

    #[test]
    fn memory_bound_gains_gops_from_lpddr() {
        let mb = memory_bound();
        assert!(mb.gops(MemoryKind::Lpddr4) > 2.0 * mb.gops(MemoryKind::Hyper));
        // Compute-bound points do not.
        let cb = compute_bound();
        let ratio = cb.gops(MemoryKind::Lpddr4) / cb.gops(MemoryKind::Hyper);
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_doubles_efficiency_on_hyper() {
        let rel = compute_bound().relative_efficiency();
        assert!(rel > 1.5 && rel < 3.0, "relative efficiency {rel}");
    }

    #[test]
    fn extremely_memory_bound_can_favor_lpddr() {
        let rel = memory_bound().relative_efficiency();
        assert!(rel < 1.0, "relative efficiency {rel}");
    }

    #[test]
    fn wall_clock_is_the_overlap_max() {
        let p = compute_bound();
        assert!((p.wall_seconds(MemoryKind::Hyper) - 10.0e-3).abs() < 1e-12);
        let q = memory_bound();
        assert!(q.wall_seconds(MemoryKind::Hyper) > q.compute_seconds);
    }
}
