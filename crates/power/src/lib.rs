//! Power, energy and efficiency models for the HULK-V SoC.
//!
//! The paper's methodology combines FPGA-measured operations-per-cycle with
//! post-layout power numbers from Synopsys PrimeTime (Table II). This crate
//! holds the second half of that pipeline:
//!
//! * [`BlockPower`] / [`PowerModel`] — the per-block silicon figures of
//!   Table II (area, leakage, dynamic power per MHz, max frequency) in the
//!   GF22FDX typical corner at 0.8 V, 25 °C;
//! * [`DramInterfacePower`] — the off-chip memory interface: the ~2 mW
//!   fully digital HyperRAM controller against the hundreds-of-mW
//!   LPDDR4 controller + mixed-signal PHY it replaces;
//! * [`CcrPoint`] — the computation-to-communication analysis behind
//!   Figure 9: `CCR_hyper` is compute time over main-memory read time
//!   assuming full overlap, the regime split between compute-bound and
//!   memory-bound workloads.
//!
//! # Example
//!
//! ```
//! use hulkv_power::PowerModel;
//!
//! let p = PowerModel::gf22fdx_tt();
//! // Table II: the whole SoC tops out below 250 mW.
//! assert!(p.total_max_power_mw() < 250.0);
//! // The fully digital memory controller is tiny.
//! assert!(p.mem_ctrl.max_power_mw() < 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod ccr;
mod dram;
pub mod energy;

pub use blocks::{BlockPower, PowerModel};
pub use ccr::{CcrPoint, ComputeBlock, MemoryKind};
pub use dram::DramInterfacePower;
pub use energy::{enrich_timeline, EnergySummary};
