//! Per-block silicon power figures (Table II of the paper).

/// Post-layout figures of one SoC block in the GF22FDX typical corner
/// (0.8 V, 25 °C).
///
/// # Example
///
/// ```
/// use hulkv_power::PowerModel;
///
/// let cva6 = PowerModel::gf22fdx_tt().cva6;
/// // 47.5 µW/MHz at 900 MHz plus leakage ≈ 47.5 mW.
/// assert!((cva6.max_power_mw() - 47.54).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPower {
    /// Block name as it appears in Table II.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Leakage power in mW.
    pub leakage_mw: f64,
    /// Dynamic power in µW/MHz at full activity.
    pub dyn_uw_per_mhz: f64,
    /// Maximum frequency in MHz (SSG corner sign-off).
    pub max_freq_mhz: f64,
}

impl BlockPower {
    /// Power at `freq_mhz` with the given activity `utilization`
    /// (0.0 = clock-gated idle, 1.0 = the PrimeTime full-activity trace).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn power_mw(&self, freq_mhz: f64, utilization: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&utilization),
            "utilization must be in [0, 1]"
        );
        self.leakage_mw + self.dyn_uw_per_mhz * freq_mhz * utilization / 1000.0
    }

    /// Power at the block's maximum frequency and full activity — the
    /// "Max Power" column of Table II.
    pub fn max_power_mw(&self) -> f64 {
        self.power_mw(self.max_freq_mhz, 1.0)
    }

    /// Energy in millijoules for running `seconds` at `freq_mhz` and
    /// `utilization`.
    pub fn energy_mj(&self, freq_mhz: f64, utilization: f64, seconds: f64) -> f64 {
        self.power_mw(freq_mhz, utilization) * seconds
    }
}

/// The four Table-II blocks of HULK-V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// "Top": the host interconnect, L2SPM, LLC and peripherals.
    pub top: BlockPower,
    /// The CVA6 host core.
    pub cva6: BlockPower,
    /// The 8-core accelerator cluster.
    pub pmca: BlockPower,
    /// The HyperRAM memory controller.
    pub mem_ctrl: BlockPower,
}

impl PowerModel {
    /// The published Table II values.
    pub fn gf22fdx_tt() -> Self {
        PowerModel {
            top: BlockPower {
                name: "Top",
                area_mm2: 7.28,
                leakage_mw: 4.23,
                dyn_uw_per_mhz: 214.7,
                max_freq_mhz: 450.0,
            },
            cva6: BlockPower {
                name: "CVA6",
                area_mm2: 0.49,
                leakage_mw: 4.79,
                dyn_uw_per_mhz: 47.5,
                max_freq_mhz: 900.0,
            },
            pmca: BlockPower {
                name: "PMCA",
                area_mm2: 1.56,
                leakage_mw: 5.78,
                dyn_uw_per_mhz: 206.0,
                max_freq_mhz: 400.0,
            },
            mem_ctrl: BlockPower {
                name: "Mem Ctrl.",
                area_mm2: 0.27,
                leakage_mw: 0.14,
                dyn_uw_per_mhz: 2.3,
                max_freq_mhz: 450.0,
            },
        }
    }

    /// All blocks, in Table II row order.
    pub fn blocks(&self) -> [&BlockPower; 4] {
        [&self.top, &self.cva6, &self.pmca, &self.mem_ctrl]
    }

    /// The "Total" row: every block at maximum frequency and activity.
    pub fn total_max_power_mw(&self) -> f64 {
        self.blocks().iter().map(|b| b.max_power_mw()).sum()
    }

    /// Total leakage.
    pub fn total_leakage_mw(&self) -> f64 {
        self.blocks().iter().map(|b| b.leakage_mw).sum()
    }

    /// Die area (the "Top" hierarchy contains the others).
    pub fn die_area_mm2(&self) -> f64 {
        self.top.area_mm2
    }

    /// Power of a host-only workload: CVA6 at full tilt, the top domain
    /// serving it, the cluster clock-gated (leakage only), plus the memory
    /// controller at `mem_utilization`.
    pub fn host_workload_power_mw(&self, mem_utilization: f64) -> f64 {
        self.cva6.max_power_mw()
            + self.top.power_mw(self.top.max_freq_mhz, 0.3)
            + self.pmca.power_mw(0.0, 0.0)
            + self
                .mem_ctrl
                .power_mw(self.mem_ctrl.max_freq_mhz, mem_utilization)
    }

    /// Power of a cluster workload: PMCA at full tilt, host idling at its
    /// runtime duty cycle, top domain moving tiles, plus the controller.
    pub fn cluster_workload_power_mw(&self, mem_utilization: f64) -> f64 {
        self.pmca.max_power_mw()
            + self.cva6.power_mw(self.cva6.max_freq_mhz, 0.05)
            + self.top.power_mw(self.top.max_freq_mhz, 0.3)
            + self
                .mem_ctrl
                .power_mw(self.mem_ctrl.max_freq_mhz, mem_utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper() {
        let p = PowerModel::gf22fdx_tt();
        // Table II's published rows round the underlying trace data;
        // leakage + dyn·f reconstructs them to within half a milliwatt.
        assert!((p.top.max_power_mw() - 100.53).abs() < 0.5);
        assert!((p.cva6.max_power_mw() - 47.54).abs() < 0.2);
        assert!((p.pmca.max_power_mw() - 88.18).abs() < 0.2);
        assert!((p.mem_ctrl.max_power_mw() - 1.16).abs() < 0.05);
        assert!((p.total_max_power_mw() - 237.41).abs() < 0.5);
        assert!((p.total_leakage_mw() - 14.94).abs() < 0.01);
    }

    #[test]
    fn die_smaller_than_9mm2() {
        assert!(PowerModel::gf22fdx_tt().die_area_mm2() < 9.0);
    }

    #[test]
    fn power_scales_with_frequency_and_utilization() {
        let b = PowerModel::gf22fdx_tt().pmca;
        let full = b.power_mw(400.0, 1.0);
        let half_freq = b.power_mw(200.0, 1.0);
        let half_util = b.power_mw(400.0, 0.5);
        assert!(full > half_freq && full > half_util);
        assert!((half_freq - half_util).abs() < 1e-9);
        assert!((b.power_mw(0.0, 0.0) - b.leakage_mw).abs() < 1e-12);
    }

    #[test]
    fn energy_integrates_power() {
        let b = PowerModel::gf22fdx_tt().cva6;
        let e = b.energy_mj(900.0, 1.0, 2.0);
        assert!((e - 2.0 * b.max_power_mw()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_panics() {
        PowerModel::gf22fdx_tt().top.power_mw(450.0, 1.5);
    }

    #[test]
    fn workload_envelopes_within_250mw() {
        let p = PowerModel::gf22fdx_tt();
        assert!(p.host_workload_power_mw(1.0) < 250.0);
        assert!(p.cluster_workload_power_mw(1.0) < 250.0);
        // And the paper's lower bound: "from 70 mW".
        assert!(p.host_workload_power_mw(0.0) > 70.0);
    }
}
