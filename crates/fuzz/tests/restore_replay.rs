//! Wires a fuzz repro through the snapshot layer: a generated program is
//! run partway on the exact bare-core environment the lockstep driver
//! builds, checkpointed mid-flight, and the restored twin must finish the
//! run in perfect lockstep with the original. This is the repro workflow
//! for divergences the fuzzer finds — checkpoint just before the
//! interesting retire, then replay the window at will.

use hulkv_fuzz::gen::{self, Isa};
use hulkv_fuzz::lockstep::repro_env;
use hulkv_sim::{Snapshot, SplitMix64};

fn checkpoint_and_replay(isa: Isa, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let prog = gen::generate(&mut rng, isa);

    // Run the original partway into the program on the fast side.
    let (mut core, mut bus) = repro_env(&prog, true);
    let mut pre_steps = 0;
    for _ in 0..200 {
        if core.step(&mut bus).unwrap().halted {
            break;
        }
        pre_steps += 1;
    }

    // Checkpoint through the serialized form, not a clone: the bytes are
    // what a repro file would carry.
    let mut snap = Snapshot::new();
    let cj = core.snapshot_into(&mut snap);
    let bj = bus.snapshot_into(&mut snap);
    snap.set_section("core", cj);
    snap.set_section("bus", bj);
    let bytes = snap.to_bytes();

    let parsed = Snapshot::from_bytes(&bytes).unwrap();
    let (mut core2, mut bus2) = repro_env(&prog, true);
    core2
        .restore_from(&parsed, parsed.section("core").unwrap())
        .unwrap();
    bus2.restore_from(&parsed, parsed.section("bus").unwrap())
        .unwrap();
    assert_eq!(
        core2.state_digest(),
        core.state_digest(),
        "restore diverged immediately (isa {isa:?}, {pre_steps} steps in)"
    );
    assert_eq!(bus2.content_digest(), bus.content_digest());

    // Replay the rest of the program in lockstep.
    for i in 0..2_000 {
        let halted = core.is_halted();
        assert_eq!(halted, core2.is_halted(), "halt divergence at step {i}");
        if halted {
            break;
        }
        let a = core.step(&mut bus).unwrap();
        let b = core2.step(&mut bus2).unwrap();
        assert_eq!(a.halted, b.halted, "halt divergence at step {i}");
        assert_eq!(
            core2.state_digest(),
            core.state_digest(),
            "state divergence at step {i} (isa {isa:?})"
        );
    }
    assert_eq!(bus2.content_digest(), bus.content_digest());
}

#[test]
fn rv32_pulp_repro_restores_and_replays() {
    checkpoint_and_replay(Isa::Rv32Pulp, 0x2026_0807);
}

#[test]
fn rv64_sv39_repro_restores_and_replays() {
    checkpoint_and_replay(Isa::Rv64Sv39, 0x2026_0809);
}
