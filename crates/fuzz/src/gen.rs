//! Deterministic random-program generation for the differential fuzzer.
//!
//! Programs are built as a list of [`GenItem`]s — small, self-contained
//! recipes that each expand to a handful of instructions through the
//! [`Asm`] builder. Keeping the IR at item granularity (rather than raw
//! words) buys two things:
//!
//! - **any subset of items still assembles**: every control-transfer an
//!   item emits binds its own labels, so the shrinker can delete arbitrary
//!   item ranges and re-assemble without dangling references;
//! - **repros stay readable**: a minimized program is a short list of
//!   `Debug`-printed items plus its disassembly, not an opaque blob.
//!
//! All randomness flows from a caller-provided [`SplitMix64`], so a
//! program is a pure function of `(root seed, ISA side, program index)`.

use hulkv_rv::compressed::compress;
use hulkv_rv::csr::addr;
use hulkv_rv::inst::{AluOp, FReg, Inst};
use hulkv_rv::{Asm, HpmEvent, Reg, Xlen};
use hulkv_sim::SplitMix64;

/// Which harness a program targets. The four sides differ in XLEN, the
/// extension set the generator may draw from, and the data-region layout
/// the emitted load/store items address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// RV64 IMAFDC + Zicsr on a bare [`hulkv_rv::Core`] over a flat bus,
    /// running in S-mode under randomly chosen Sv39 page tables (including
    /// hostile ones with missing A/D bits) with trap-and-skip handling.
    Rv64Sv39,
    /// RV32 IMF + Xpulp (hardware loops, post-increment, SIMD) on a bare
    /// RI5CY-class core over a flat bus in M-mode.
    Rv32Pulp,
    /// RV64 M-mode programs run through the full CVA6 [`hulkv_host::Host`]
    /// (L1 caches + clock bridge), exercising the decode cache over a
    /// timing-stateful bus.
    Rv64Host,
    /// RV32 Xpulp programs run through [`hulkv_cluster::Cluster::run_team`]
    /// with the decode cache on vs off.
    Rv32Cluster,
}

impl Isa {
    /// The register width of this side.
    pub fn xlen(self) -> Xlen {
        match self {
            Isa::Rv64Sv39 | Isa::Rv64Host => Xlen::Rv64,
            Isa::Rv32Pulp | Isa::Rv32Cluster => Xlen::Rv32,
        }
    }

    /// Base of the always-mapped, always-writable data sandbox.
    pub fn benign_base(self) -> u64 {
        match self {
            Isa::Rv64Sv39 | Isa::Rv32Pulp => 0x4_0000,
            Isa::Rv64Host => 0x8001_0000,
            Isa::Rv32Cluster => hulkv_cluster::TCDM_BASE,
        }
    }

    /// Base of the second data region. On [`Isa::Rv64Sv39`] its 16 pages
    /// carry randomized PTE flags in page table B (missing A, missing D,
    /// read-only, user-only, unmapped…); on the other sides it is plain
    /// memory with a different locality (external DRAM for the cluster).
    pub fn hostile_base(self) -> u64 {
        match self {
            Isa::Rv64Sv39 | Isa::Rv32Pulp => 0x5_0000,
            Isa::Rv64Host => 0x8003_0000,
            Isa::Rv32Cluster => 0x8004_0000,
        }
    }
}

/// Scratch registers the items may freely clobber. Excluded by design:
/// `sp` (cluster stacks), `s0`/`s1` (data-region bases), `s2`–`s5`
/// (pre-materialized `satp` values), and `t5` (trap-handler scratch).
pub(crate) const WRITABLE: [Reg; 23] = [
    Reg::Ra,
    Reg::Gp,
    Reg::Tp,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
    Reg::S10,
    Reg::S11,
    Reg::T3,
    Reg::T4,
    Reg::T6,
];

/// Registers items may read: everything writable plus the stable bases.
const READABLE: [Reg; 26] = [
    Reg::Ra,
    Reg::Gp,
    Reg::Tp,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
    Reg::S10,
    Reg::S11,
    Reg::T3,
    Reg::T4,
    Reg::T6,
    Reg::Zero,
    Reg::S0,
    Reg::S1,
];

fn wr(idx: u8) -> Reg {
    WRITABLE[idx as usize % WRITABLE.len()]
}

fn rd_any(idx: u8) -> Reg {
    READABLE[idx as usize % READABLE.len()]
}

/// `addi x31, x31, imm` — the canonical patch/straddle payload: a 4-byte
/// instruction with an architecturally visible effect on `t6`.
fn addi_t6(imm: i8) -> u32 {
    ((imm as i32 as u32 & 0xFFF) << 20) | (31 << 15) | (31 << 7) | 0x13
}

const C_NOP: u32 = 0x0001;

/// One self-contained program building block. Every variant expands to a
/// short instruction sequence with no references outside itself (other
/// than the reserved base registers), so deleting any subset of items
/// yields a program that still assembles and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenItem {
    /// Register-register ALU / mul / div op from the per-XLEN table.
    Alu { op: u8, rd: u8, rs1: u8, rs2: u8 },
    /// Immediate ALU op (shift immediates are masked to the XLEN).
    AluImm { op: u8, rd: u8, rs1: u8, imm: i16 },
    /// Load a full-width constant.
    Li { rd: u8, value: u64 },
    /// Conditional branch over one filler instruction (label is bound
    /// inside the item).
    Branch { cond: u8, rs1: u8, rs2: u8 },
    /// Integer or FP load/store into one of the two data regions, with
    /// optional misalignment and page-straddling offsets.
    LoadStore {
        op: u8,
        reg: u8,
        hostile: bool,
        page: u8,
        off: u16,
    },
    /// AMO or LR/SC pair at a width-aligned sandbox address.
    Amo {
        op: u8,
        rd: u8,
        rs2: u8,
        hostile: bool,
        off: u16,
    },
    /// FP register op (F everywhere, D on RV64).
    Fp {
        op: u8,
        rd: u8,
        rs1: u8,
        rs2: u8,
        rs3: u8,
    },
    /// CSR probe: reading `cycle`/`instret` folds the timing model into
    /// architectural state, so a cycle divergence between the fast and
    /// reference runs becomes a register divergence too. Also exercises
    /// the HPM group (`mhpmcounter`/`hpmcounter` reads, counter writes,
    /// arming of microarchitecture-independent event selectors).
    CsrProbe { op: u8, rd: u8, rs1: u8 },
    /// `csrw satp, s{2+table}` — switch between bare mode and the three
    /// prebuilt page tables (benign / hostile A-D / 2 MiB superpage).
    /// RV64 Sv39 side only.
    SatpSwitch { table: u8 },
    /// `ecall`: privilege round-trip through the M-mode handler.
    Ecall,
    /// `fence.i`: the architectural decoded-entry invalidation point.
    FenceI,
    /// Self-modifying code: a two-iteration loop whose body patches its
    /// own `nop` slot into `addi t6, t6, imm` between the iterations,
    /// with or without a `fence.i`. A stale decoded entry replays the
    /// dead `nop` and diverges in `t6`.
    SmcPatch { imm: i8, fence: bool },
    /// RVC parcel alignment: `c.nop`, then a 4-byte `addi t6` *straddling
    /// the word boundary* (PC ≡ 2 mod 4), then `c.nop`. Combined with the
    /// randomized entry offset this puts 4-byte fetches across Sv39 page
    /// boundaries. RV64 sides only.
    RvcStraddle { imm: i8 },
    /// Two compressed instructions packed into one word (c.addi / c.li /
    /// c.mv / c.add), exercising 2-byte decode-cache slots. RV64 only.
    RvcPair {
        kind_a: u8,
        kind_b: u8,
        rd: u8,
        rs: u8,
        imm: i8,
    },
    /// Xpulp hardware loop (`lp.starti`/`lp.endi`/`lp.counti`) around a
    /// tiny ALU body. RV32 sides only.
    HwLoop { body: u8, count: u8 },
    /// Xpulp ALU / bit-manipulation / SIMD / packed-f16 op. RV32 only.
    Xpulp { op: u8, rd: u8, rs1: u8, rs2: u8 },
    /// Xpulp post-increment load/store through a scratch pointer.
    XpulpPostInc {
        op: u8,
        reg: u8,
        hostile: bool,
        off: u16,
        stride: i8,
    },
}

const ALU_RV64: usize = 20;
const ALU_RV32: usize = 16;

fn emit_alu(a: &mut Asm, op: u8, rd: Reg, rs1: Reg, rs2: Reg, xlen: Xlen) {
    let n = if xlen == Xlen::Rv64 {
        ALU_RV64
    } else {
        ALU_RV32
    };
    match op as usize % n {
        0 => a.add(rd, rs1, rs2),
        1 => a.sub(rd, rs1, rs2),
        2 => a.and(rd, rs1, rs2),
        3 => a.or(rd, rs1, rs2),
        4 => a.xor(rd, rs1, rs2),
        5 => a.sll(rd, rs1, rs2),
        6 => a.srl(rd, rs1, rs2),
        7 => a.sra(rd, rs1, rs2),
        8 => a.slt(rd, rs1, rs2),
        9 => a.sltu(rd, rs1, rs2),
        10 => a.mul(rd, rs1, rs2),
        11 => a.mulh(rd, rs1, rs2),
        12 => a.mulhu(rd, rs1, rs2),
        13 => a.div(rd, rs1, rs2),
        14 => a.divu(rd, rs1, rs2),
        15 => a.rem(rd, rs1, rs2),
        16 => a.addw(rd, rs1, rs2),
        17 => a.subw(rd, rs1, rs2),
        18 => a.sllw(rd, rs1, rs2),
        19 => a.mulw(rd, rs1, rs2),
        _ => unreachable!(),
    }
}

fn emit_alu_imm(a: &mut Asm, op: u8, rd: Reg, rs1: Reg, imm: i16, xlen: Xlen) {
    let imm = imm as i64 % 2048;
    let shamt = imm.unsigned_abs() as i64 & if xlen == Xlen::Rv64 { 63 } else { 31 };
    let n = if xlen == Xlen::Rv64 { 11 } else { 9 };
    match op as usize % n {
        0 => a.addi(rd, rs1, imm),
        1 => a.andi(rd, rs1, imm),
        2 => a.ori(rd, rs1, imm),
        3 => a.xori(rd, rs1, imm),
        4 => a.slti(rd, rs1, imm),
        5 => a.sltiu(rd, rs1, imm),
        6 => a.slli(rd, rs1, shamt),
        7 => a.srli(rd, rs1, shamt),
        8 => a.srai(rd, rs1, shamt),
        9 => a.addiw(rd, rs1, imm),
        10 => a.slliw(rd, rs1, shamt & 31),
        _ => unreachable!(),
    }
}

/// (is_store, width, fp) for each load/store opcode index.
fn ls_table(xlen: Xlen) -> &'static [(bool, u64, bool)] {
    const RV64: &[(bool, u64, bool)] = &[
        (false, 1, false), // lb
        (false, 1, false), // lbu
        (false, 2, false), // lh
        (false, 2, false), // lhu
        (false, 4, false), // lw
        (false, 4, false), // lwu
        (false, 8, false), // ld
        (true, 1, false),  // sb
        (true, 2, false),  // sh
        (true, 4, false),  // sw
        (true, 8, false),  // sd
        (false, 4, true),  // flw
        (false, 8, true),  // fld
        (true, 4, true),   // fsw
        (true, 8, true),   // fsd
    ];
    const RV32: &[(bool, u64, bool)] = &[
        (false, 1, false),
        (false, 1, false),
        (false, 2, false),
        (false, 2, false),
        (false, 4, false),
        (true, 1, false),
        (true, 2, false),
        (true, 4, false),
        (false, 4, true), // flw
        (true, 4, true),  // fsw
    ];
    if xlen == Xlen::Rv64 {
        RV64
    } else {
        RV32
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_load_store(a: &mut Asm, isa: Isa, op: u8, reg: u8, hostile: bool, page: u8, off: u16) {
    let xlen = isa.xlen();
    let table = ls_table(xlen);
    let idx = op as usize % table.len();
    let (_, width, _) = table[idx];
    // Half the offsets are width-aligned; the rest may be misaligned and
    // may straddle a page boundary (the interesting Sv39 case).
    let mut off = (off % 4096) as u64;
    if off.is_multiple_of(2) {
        off &= !(width - 1);
    }
    let base = if hostile {
        isa.hostile_base()
    } else {
        isa.benign_base()
    };
    let addr = base + (page as u64 % 16) * 4096 + off;
    a.li(Reg::T0, addr as i64);
    let r = wr(reg);
    let f = FReg(reg % 32);
    match (xlen, idx) {
        (Xlen::Rv64, 0) => a.lb(r, Reg::T0, 0),
        (Xlen::Rv64, 1) => a.lbu(r, Reg::T0, 0),
        (Xlen::Rv64, 2) => a.lh(r, Reg::T0, 0),
        (Xlen::Rv64, 3) => a.lhu(r, Reg::T0, 0),
        (Xlen::Rv64, 4) => a.lw(r, Reg::T0, 0),
        (Xlen::Rv64, 5) => a.lwu(r, Reg::T0, 0),
        (Xlen::Rv64, 6) => a.ld(r, Reg::T0, 0),
        (Xlen::Rv64, 7) => a.sb(rd_any(reg), Reg::T0, 0),
        (Xlen::Rv64, 8) => a.sh(rd_any(reg), Reg::T0, 0),
        (Xlen::Rv64, 9) => a.sw(rd_any(reg), Reg::T0, 0),
        (Xlen::Rv64, 10) => a.sd(rd_any(reg), Reg::T0, 0),
        (Xlen::Rv64, 11) => a.flw(f, Reg::T0, 0),
        (Xlen::Rv64, 12) => a.fld(f, Reg::T0, 0),
        (Xlen::Rv64, 13) => a.fsw(f, Reg::T0, 0),
        (Xlen::Rv64, 14) => a.fsd(f, Reg::T0, 0),
        (Xlen::Rv32, 0) => a.lb(r, Reg::T0, 0),
        (Xlen::Rv32, 1) => a.lbu(r, Reg::T0, 0),
        (Xlen::Rv32, 2) => a.lh(r, Reg::T0, 0),
        (Xlen::Rv32, 3) => a.lhu(r, Reg::T0, 0),
        (Xlen::Rv32, 4) => a.lw(r, Reg::T0, 0),
        (Xlen::Rv32, 5) => a.sb(rd_any(reg), Reg::T0, 0),
        (Xlen::Rv32, 6) => a.sh(rd_any(reg), Reg::T0, 0),
        (Xlen::Rv32, 7) => a.sw(rd_any(reg), Reg::T0, 0),
        (Xlen::Rv32, 8) => a.flw(f, Reg::T0, 0),
        (Xlen::Rv32, 9) => a.fsw(f, Reg::T0, 0),
        _ => unreachable!(),
    }
}

fn emit_amo(a: &mut Asm, isa: Isa, op: u8, rd: u8, rs2: u8, hostile: bool, off: u16) {
    let xlen = isa.xlen();
    let n = if xlen == Xlen::Rv64 { 5 } else { 3 };
    let idx = op as usize % n;
    let width: u64 = if idx >= 3 { 8 } else { 4 };
    let base = if hostile {
        isa.hostile_base()
    } else {
        isa.benign_base()
    };
    let addr = (base + off as u64 % 0xF000) & !(width - 1);
    a.li(Reg::T0, addr as i64);
    let (rd, rs2) = (wr(rd), rd_any(rs2));
    match idx {
        0 => a.amoadd_w(rd, rs2, Reg::T0),
        1 => a.amoswap_w(rd, rs2, Reg::T0),
        2 => {
            a.lr_w(rd, Reg::T0);
            a.sc_w(rd, rs2, Reg::T0);
        }
        3 => a.amoadd_d(rd, rs2, Reg::T0),
        4 => {
            a.lr_d(rd, Reg::T0);
            a.sc_d(rd, rs2, Reg::T0);
        }
        _ => unreachable!(),
    }
}

fn emit_fp(a: &mut Asm, op: u8, rd: u8, rs1: u8, rs2: u8, rs3: u8, xlen: Xlen) {
    let n = if xlen == Xlen::Rv64 { 19 } else { 11 };
    let (fd, f1, f2, f3) = (
        FReg(rd % 32),
        FReg(rs1 % 32),
        FReg(rs2 % 32),
        FReg(rs3 % 32),
    );
    let (xd, x1) = (wr(rd), rd_any(rs1));
    match op as usize % n {
        0 => a.fmv_w_x(fd, x1),
        1 => a.fadd_s(fd, f1, f2),
        2 => a.fsub_s(fd, f1, f2),
        3 => a.fmul_s(fd, f1, f2),
        4 => a.fdiv_s(fd, f1, f2),
        5 => a.fmadd_s(fd, f1, f2, f3),
        6 => a.feq_s(xd, f1, f2),
        7 => a.flt_s(xd, f1, f2),
        8 => a.fcvt_s_w(fd, x1),
        9 => a.fcvt_w_s(xd, f1),
        10 => a.fmv_x_w(xd, f1),
        11 => a.fmv_d_x(fd, x1),
        12 => a.fadd_d(fd, f1, f2),
        13 => a.fmul_d(fd, f1, f2),
        14 => a.fdiv_d(fd, f1, f2),
        15 => a.fmadd_d(fd, f1, f2, f3),
        16 => a.fcvt_d_l(fd, x1),
        17 => a.fcvt_l_d(xd, f1),
        18 => a.fmv_x_d(xd, f1),
        _ => unreachable!(),
    }
}

fn emit_csr_probe(a: &mut Asm, op: u8, rd: u8, rs1: u8) {
    let (rd, rs) = (wr(rd), rd_any(rs1));
    // HPM probes pick their counter off the operand byte. Only
    // microarchitecture-independent selectors are armed (taken branches,
    // loads, stores): decode-cache and TLB event counts legitimately
    // differ between the lockstep fast and reference sides, so arming
    // them would turn an expected timing difference into a register
    // divergence.
    let hpm = rs1 as u16 % addr::HPM_COUNTERS;
    match op % 11 {
        0 => a.csrr(rd, addr::CYCLE),
        1 => a.csrr(rd, addr::INSTRET),
        2 => a.csrw(addr::MSCRATCH, rs),
        3 => a.csrr(rd, addr::MSCRATCH),
        4 => a.csrw(addr::FFLAGS, rs),
        5 => a.csrr(rd, addr::FFLAGS),
        6 => a.csrrw(rd, addr::MSCRATCH, rs),
        7 => a.csrr(rd, addr::MHPMCOUNTER3 + hpm),
        8 => a.csrr(rd, addr::HPMCOUNTER3 + hpm),
        9 => {
            const STABLE: [HpmEvent; 3] = [HpmEvent::TakenBranch, HpmEvent::Load, HpmEvent::Store];
            a.li(Reg::T0, STABLE[rs1 as usize % STABLE.len()] as i64);
            a.csrw(addr::MHPMEVENT3 + hpm, Reg::T0);
        }
        10 => a.csrw(addr::MHPMCOUNTER3 + hpm, rs),
        _ => unreachable!(),
    }
}

fn emit_smc(a: &mut Asm, imm: i8, fence: bool) {
    // li t1, 2
    // la t0, slot ; li t2, <addi t6,t6,imm>
    // loop:
    // slot: nop                  <- becomes addi t6 after the first pass
    //   sw t2, 0(t0) ; [fence.i]
    //   addi t1, t1, -1 ; bnez t1, loop
    a.li(Reg::T1, 2);
    let slot = a.label();
    let top = a.label();
    a.la(Reg::T0, slot);
    a.li(Reg::T2, addi_t6(imm) as i64);
    a.bind(top);
    a.bind(slot);
    a.nop();
    a.sw(Reg::T2, Reg::T0, 0);
    if fence {
        a.fence_i();
    }
    a.addi(Reg::T1, Reg::T1, -1);
    a.bnez(Reg::T1, top);
}

fn emit_rvc_straddle(a: &mut Asm, imm: i8) {
    let e = addi_t6(imm);
    a.word(C_NOP | (e & 0xFFFF) << 16);
    a.word((e >> 16) | C_NOP << 16);
}

fn rvc_parcel(kind: u8, rd: Reg, rs: Reg, imm: i8, xlen: Xlen) -> u16 {
    let imm = (imm % 32) as i64;
    let inst = match kind % 4 {
        0 => Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1: rd,
            imm,
        },
        1 => Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1: Reg::Zero,
            imm,
        },
        2 => Inst::Op {
            op: AluOp::Add,
            rd,
            rs1: Reg::Zero,
            rs2: rs,
        },
        _ => Inst::Op {
            op: AluOp::Add,
            rd,
            rs1: rd,
            rs2: rs,
        },
    };
    compress(&inst, xlen).unwrap_or(C_NOP as u16)
}

fn emit_rvc_pair(a: &mut Asm, kind_a: u8, kind_b: u8, rd: u8, rs: u8, imm: i8, xlen: Xlen) {
    let (rd, rs) = (wr(rd), wr(rs));
    let lo = rvc_parcel(kind_a, rd, rs, imm, xlen);
    let hi = rvc_parcel(kind_b, rs, rd, imm.wrapping_neg(), xlen);
    a.word(lo as u32 | (hi as u32) << 16);
}

fn emit_hwloop(a: &mut Asm, body: u8, count: u8) {
    let idx = body % 2;
    a.lp_counti(idx, 1 + (count % 8) as i64);
    let (s, e) = (a.label(), a.label());
    a.lp_starti(idx, s);
    a.lp_endi(idx, e);
    a.bind(s);
    match body % 4 {
        0 => a.addi(Reg::T1, Reg::T1, 1),
        1 => a.add(Reg::A0, Reg::A0, Reg::A1),
        2 => {
            a.xor(Reg::A2, Reg::A2, Reg::A3);
            a.addi(Reg::A3, Reg::A3, 3)
        }
        _ => a.p_mac(Reg::A4, Reg::A5, Reg::A6),
    }
    a.bind(e);
}

fn emit_xpulp(a: &mut Asm, op: u8, rd: u8, rs1: u8, rs2: u8) {
    let (rd, rs1, rs2) = (wr(rd), rd_any(rs1), rd_any(rs2));
    match op % 30 {
        0 => a.p_mac(rd, rs1, rs2),
        1 => a.p_msu(rd, rs1, rs2),
        2 => a.p_min(rd, rs1, rs2),
        3 => a.p_max(rd, rs1, rs2),
        4 => a.p_abs(rd, rs1),
        5 => a.p_clip(rd, rs1, rs2),
        6 => a.p_exths(rd, rs1),
        7 => a.p_exthz(rd, rs1),
        8 => a.p_cnt(rd, rs1),
        9 => a.p_ff1(rd, rs1),
        10 => a.p_fl1(rd, rs1),
        11 => a.p_ror(rd, rs1, rs2),
        12 => a.pv_add_b(rd, rs1, rs2),
        13 => a.pv_add_h(rd, rs1, rs2),
        14 => a.pv_sub_b(rd, rs1, rs2),
        15 => a.pv_max_b(rd, rs1, rs2),
        16 => a.pv_min_b(rd, rs1, rs2),
        17 => a.pv_avg_h(rd, rs1, rs2),
        18 => a.pv_sra_h(rd, rs1, rs2),
        19 => a.pv_dotsp_b(rd, rs1, rs2),
        20 => a.pv_sdotsp_b(rd, rs1, rs2),
        21 => a.pv_sdotup_b(rd, rs1, rs2),
        22 => a.pv_extract_b(rd, rs1, rs2),
        23 => a.pv_insert_b(rd, rs1, rs2),
        24 => a.pv_shuffle_b(rd, rs1, rs2),
        25 => a.vfadd_h(rd, rs1, rs2),
        26 => a.vfsub_h(rd, rs1, rs2),
        27 => a.vfmul_h(rd, rs1, rs2),
        28 => a.vfmac_h(rd, rs1, rs2),
        29 => a.vfmax_h(rd, rs1, rs2),
        _ => unreachable!(),
    }
}

fn emit_xpulp_postinc(a: &mut Asm, isa: Isa, op: u8, reg: u8, hostile: bool, off: u16, stride: i8) {
    let base = if hostile {
        isa.hostile_base()
    } else {
        isa.benign_base()
    };
    let addr = (base + off as u64 % 0xF000) & !3;
    a.li(Reg::T0, addr as i64);
    let r = wr(reg);
    let stride = stride as i64;
    match op % 6 {
        0 => a.p_lw_post(r, Reg::T0, stride & !3),
        1 => a.p_lh_post(r, Reg::T0, stride & !1),
        2 => a.p_lbu_post(r, Reg::T0, stride),
        3 => a.p_sw_post(rd_any(reg), Reg::T0, stride & !3),
        4 => a.p_sh_post(rd_any(reg), Reg::T0, stride & !1),
        5 => a.p_sb_post(rd_any(reg), Reg::T0, stride),
        _ => unreachable!(),
    }
}

impl GenItem {
    /// Expands the item into `a`. `isa` selects XLEN-specific op tables
    /// and the data-region bases.
    pub fn emit(&self, a: &mut Asm, isa: Isa) {
        let xlen = isa.xlen();
        match *self {
            GenItem::Alu { op, rd, rs1, rs2 } => {
                emit_alu(a, op, wr(rd), rd_any(rs1), rd_any(rs2), xlen)
            }
            GenItem::AluImm { op, rd, rs1, imm } => {
                emit_alu_imm(a, op, wr(rd), rd_any(rs1), imm, xlen)
            }
            GenItem::Li { rd, value } => {
                let v = if xlen == Xlen::Rv64 {
                    value as i64
                } else {
                    value as u32 as i64
                };
                a.li(wr(rd), v)
            }
            GenItem::Branch { cond, rs1, rs2 } => {
                let skip = a.label();
                let (rs1, rs2) = (rd_any(rs1), rd_any(rs2));
                match cond % 6 {
                    0 => a.beq(rs1, rs2, skip),
                    1 => a.bne(rs1, rs2, skip),
                    2 => a.blt(rs1, rs2, skip),
                    3 => a.bge(rs1, rs2, skip),
                    4 => a.bltu(rs1, rs2, skip),
                    _ => a.bgeu(rs1, rs2, skip),
                }
                a.addi(Reg::T1, Reg::T1, 1);
                a.bind(skip);
            }
            GenItem::LoadStore {
                op,
                reg,
                hostile,
                page,
                off,
            } => emit_load_store(a, isa, op, reg, hostile, page, off),
            GenItem::Amo {
                op,
                rd,
                rs2,
                hostile,
                off,
            } => emit_amo(a, isa, op, rd, rs2, hostile, off),
            GenItem::Fp {
                op,
                rd,
                rs1,
                rs2,
                rs3,
            } => emit_fp(a, op, rd, rs1, rs2, rs3, xlen),
            GenItem::CsrProbe { op, rd, rs1 } => emit_csr_probe(a, op, rd, rs1),
            GenItem::SatpSwitch { table } => {
                let src = [Reg::S2, Reg::S3, Reg::S4, Reg::S5][table as usize % 4];
                a.csrw(addr::SATP, src);
            }
            GenItem::Ecall => a.ecall(),
            GenItem::FenceI => a.fence_i(),
            GenItem::SmcPatch { imm, fence } => emit_smc(a, imm, fence),
            GenItem::RvcStraddle { imm } => emit_rvc_straddle(a, imm),
            GenItem::RvcPair {
                kind_a,
                kind_b,
                rd,
                rs,
                imm,
            } => emit_rvc_pair(a, kind_a, kind_b, rd, rs, imm, xlen),
            GenItem::HwLoop { body, count } => emit_hwloop(a, body, count),
            GenItem::Xpulp { op, rd, rs1, rs2 } => emit_xpulp(a, op, rd, rs1, rs2),
            GenItem::XpulpPostInc {
                op,
                reg,
                hostile,
                off,
                stride,
            } => emit_xpulp_postinc(a, isa, op, reg, hostile, off, stride),
        }
    }
}

/// A generated program plus everything the harness needs to reproduce its
/// environment bit-for-bit: entry point, initial translation mode, the
/// hostile page-table flags, data/register seeds and the interrupt
/// schedule.
#[derive(Debug, Clone)]
pub struct Program {
    /// Which harness/extension side this program targets.
    pub isa: Isa,
    /// Entry PC. On the Sv39 side this is sometimes placed just before a
    /// page boundary so the instruction stream crosses pages early.
    pub entry: u64,
    /// Initial `satp` selector, 0–3 (bare / table A / table B / table C).
    pub initial_satp: u8,
    /// Leaf PTE flags of the 16 hostile data pages in table B.
    pub hostile_flags: [u8; 16],
    /// `(retire index, cause code)` machine-interrupt injections, applied
    /// to both runs at identical step indices.
    pub interrupts: Vec<(u64, u64)>,
    /// Seed for the data-region prefill.
    pub data_seed: u64,
    /// Seed for the initial integer/FP register file.
    pub reg_seed: u64,
    /// The instruction stream.
    pub items: Vec<GenItem>,
}

impl Program {
    /// Assembles the item stream, terminated by `ebreak` plus a safety
    /// tail (a second `ebreak` and padding so trailing RVC parcels can
    /// always fetch a full word).
    pub fn words(&self) -> Vec<u32> {
        let mut a = Asm::new(self.isa.xlen());
        for item in &self.items {
            item.emit(&mut a, self.isa);
        }
        a.ebreak();
        a.nop();
        a.ebreak();
        a.nop();
        a.assemble().expect("generated program must assemble")
    }
}

/// Leaf-flag menu for hostile pages in table B: V/R/W/X/U/A/D subsets
/// chosen to hit every fault path the walker implements (invalid,
/// non-leaf at level 0, missing A, read-only, missing D, user-only) plus
/// fully mapped pages so some accesses succeed.
const HOSTILE_FLAGS: [u8; 8] = [
    0x00, // invalid
    0x01, // V only: level-0 pointer -> fault
    0x03, // V|R, A clear -> faults on any access
    0x43, // V|R|A: read-only (store faults on W)
    0x47, // V|R|W|A, D clear -> store faults
    0xC7, // V|R|W|A|D: fully mapped rw
    0xD7, // V|R|W|U|A|D: user page -> S-mode access faults (no SUM)
    0xC7, // weight full mappings a bit higher
];

fn pick_item(rng: &mut SplitMix64, isa: Isa) -> GenItem {
    // Weighted variant choice per side. The `u8` fields are drawn wide
    // and reduced modulo the per-XLEN table sizes at emit time.
    let b = |rng: &mut SplitMix64| rng.next_u64() as u8;
    let weights: &[(u32, u8)] = match isa {
        // (weight, tag)
        Isa::Rv64Sv39 => &[
            (20, 0),
            (14, 1),
            (5, 2),
            (8, 3),
            (16, 4),
            (4, 5),
            (8, 6),
            (4, 7),
            (5, 8),
            (2, 9),
            (2, 10),
            (3, 11),
            (4, 12),
            (5, 13),
        ],
        Isa::Rv64Host => &[
            (20, 0),
            (14, 1),
            (5, 2),
            (8, 3),
            (16, 4),
            (4, 5),
            (8, 6),
            (4, 7),
            (2, 9),
            (2, 10),
            (3, 11),
            (4, 12),
            (5, 13),
        ],
        Isa::Rv32Pulp => &[
            (18, 0),
            (12, 1),
            (5, 2),
            (8, 3),
            (14, 4),
            (3, 5),
            (7, 6),
            (4, 7),
            (2, 9),
            (2, 10),
            (3, 11),
            (6, 14),
            (12, 15),
            (4, 16),
        ],
        Isa::Rv32Cluster => &[
            (18, 0),
            (12, 1),
            (5, 2),
            (8, 3),
            (14, 4),
            (3, 5),
            (7, 6),
            (3, 7),
            (2, 10),
            (3, 11),
            (6, 14),
            (12, 15),
            (4, 16),
        ],
    };
    let total: u32 = weights.iter().map(|w| w.0).sum();
    let mut roll = rng.next_below(total as u64) as u32;
    let tag = weights
        .iter()
        .find(|(w, _)| {
            if roll < *w {
                true
            } else {
                roll -= *w;
                false
            }
        })
        .expect("weights cover the roll")
        .1;
    match tag {
        0 => GenItem::Alu {
            op: b(rng),
            rd: b(rng),
            rs1: b(rng),
            rs2: b(rng),
        },
        1 => GenItem::AluImm {
            op: b(rng),
            rd: b(rng),
            rs1: b(rng),
            imm: rng.next_u64() as i16,
        },
        2 => GenItem::Li {
            rd: b(rng),
            value: rng.next_u64(),
        },
        3 => GenItem::Branch {
            cond: b(rng),
            rs1: b(rng),
            rs2: b(rng),
        },
        4 => GenItem::LoadStore {
            op: b(rng),
            reg: b(rng),
            hostile: rng.next_below(2) == 1,
            page: b(rng),
            off: rng.next_u64() as u16,
        },
        5 => GenItem::Amo {
            op: b(rng),
            rd: b(rng),
            rs2: b(rng),
            hostile: rng.next_below(2) == 1,
            off: rng.next_u64() as u16,
        },
        6 => GenItem::Fp {
            op: b(rng),
            rd: b(rng),
            rs1: b(rng),
            rs2: b(rng),
            rs3: b(rng),
        },
        7 => GenItem::CsrProbe {
            op: b(rng),
            rd: b(rng),
            rs1: b(rng),
        },
        8 => GenItem::SatpSwitch { table: b(rng) },
        9 => GenItem::Ecall,
        10 => GenItem::FenceI,
        11 => GenItem::SmcPatch {
            imm: b(rng) as i8,
            fence: rng.next_below(2) == 1,
        },
        12 => GenItem::RvcStraddle { imm: b(rng) as i8 },
        13 => GenItem::RvcPair {
            kind_a: b(rng),
            kind_b: b(rng),
            rd: b(rng),
            rs: b(rng),
            imm: b(rng) as i8,
        },
        14 => GenItem::HwLoop {
            body: b(rng),
            count: b(rng),
        },
        15 => GenItem::Xpulp {
            op: b(rng),
            rd: b(rng),
            rs1: b(rng),
            rs2: b(rng),
        },
        16 => GenItem::XpulpPostInc {
            op: b(rng),
            reg: b(rng),
            hostile: rng.next_below(2) == 1,
            off: rng.next_u64() as u16,
            stride: b(rng) as i8,
        },
        _ => unreachable!(),
    }
}

/// Code-region base for the bare-core sides; the host/cluster sides place
/// code in DRAM behind their memory hierarchies.
pub const CODE_BASE: u64 = 0x1_0000;

fn entry_for(rng: &mut SplitMix64, isa: Isa) -> u64 {
    match isa {
        Isa::Rv64Sv39 => {
            // Half the programs start just under a page boundary so the
            // stream (including RVC-misaligned parcels) crosses pages
            // within the first few items.
            if rng.next_below(2) == 0 {
                CODE_BASE
            } else {
                CODE_BASE + 0xF80 + 4 * rng.next_below(30)
            }
        }
        Isa::Rv32Pulp => CODE_BASE + 4 * rng.next_below(16),
        Isa::Rv64Host => 0x8000_1000,
        Isa::Rv32Cluster => 0x8000_0000,
    }
}

/// Generates one random program for `isa`. Everything — item stream,
/// entry offset, page-table hostility, interrupt schedule, data and
/// register seeds — is drawn from `rng`, so the program is a pure
/// function of the seed.
pub fn generate(rng: &mut SplitMix64, isa: Isa) -> Program {
    let n_items = 16 + rng.next_below(176) as usize;
    let entry = entry_for(rng, isa);
    let initial_satp = if isa == Isa::Rv64Sv39 {
        rng.next_below(4) as u8
    } else {
        0
    };
    let mut hostile_flags = [0u8; 16];
    for f in &mut hostile_flags {
        *f = HOSTILE_FLAGS[rng.next_below(HOSTILE_FLAGS.len() as u64) as usize];
    }
    let interrupts = match isa {
        Isa::Rv64Sv39 | Isa::Rv64Host => {
            let n = rng.next_below(4);
            let mut v: Vec<(u64, u64)> = (0..n)
                .map(|_| {
                    let code = [3u64, 7, 11][rng.next_below(3) as usize];
                    (rng.next_below(400), code)
                })
                .collect();
            v.sort_unstable();
            v
        }
        Isa::Rv32Pulp => {
            let n = rng.next_below(4);
            let mut v: Vec<(u64, u64)> = (0..n)
                .map(|_| {
                    // Codes 3 and 7 only: their low bits cannot collide
                    // with any exception cause the RV32 handler must
                    // distinguish (mcause's interrupt bit sits at bit 63
                    // and is invisible to 32-bit compares).
                    let code = [3u64, 7][rng.next_below(2) as usize];
                    (rng.next_below(400), code)
                })
                .collect();
            v.sort_unstable();
            v
        }
        Isa::Rv32Cluster => Vec::new(),
    };
    let data_seed = rng.next_u64();
    let reg_seed = rng.next_u64();
    let items = (0..n_items).map(|_| pick_item(rng, isa)).collect();
    Program {
        isa,
        entry,
        initial_satp,
        hostile_flags,
        interrupts,
        data_seed,
        reg_seed,
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for isa in [
            Isa::Rv64Sv39,
            Isa::Rv32Pulp,
            Isa::Rv64Host,
            Isa::Rv32Cluster,
        ] {
            let p1 = generate(&mut SplitMix64::new(42), isa);
            let p2 = generate(&mut SplitMix64::new(42), isa);
            assert_eq!(p1.items, p2.items);
            assert_eq!(p1.entry, p2.entry);
            assert_eq!(p1.words(), p2.words());
            let p3 = generate(&mut SplitMix64::new(43), isa);
            assert_ne!(p1.words(), p3.words());
        }
    }

    #[test]
    fn every_subset_still_assembles() {
        let p = generate(&mut SplitMix64::new(7), Isa::Rv64Sv39);
        for cut in 0..p.items.len().min(24) {
            let mut q = p.clone();
            q.items.remove(cut);
            let w = q.words();
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn rvc_pairs_compress() {
        // The four RVC kinds must actually produce compressed parcels
        // (not the c.nop fallback) for in-range operands.
        for kind in 0..4u8 {
            let parcel = rvc_parcel(kind, Reg::A0, Reg::A1, 5, Xlen::Rv64);
            assert_ne!(parcel & 0b11, 0b11, "kind {kind} must be 16-bit");
        }
    }

    #[test]
    fn addi_t6_encodes_addi() {
        let w = addi_t6(1);
        // opcode OP-IMM, rd=x31, funct3=0, rs1=x31.
        assert_eq!(w & 0x7F, 0x13);
        assert_eq!((w >> 7) & 0x1F, 31);
        assert_eq!((w >> 15) & 0x1F, 31);
        assert_eq!(w >> 20, 1);
        let neg = addi_t6(-1);
        assert_eq!(neg >> 20, 0xFFF);
    }
}
