//! Delta-debugging minimizer for diverging programs.
//!
//! Classic ddmin over the program's [`GenItem`] list: repeatedly try to
//! delete chunks of items (halving chunk size as deletions stop
//! succeeding) while the program still diverges. Program metadata — ISA
//! side, entry point, seeds, page-table flags, interrupt schedule — is
//! preserved, so the minimized repro replays in exactly the same
//! environment as the original.

use crate::gen::Program;
use crate::lockstep::Divergence;

/// Minimizes `prog` with respect to `diverges`: the returned program is a
/// subset of the original's items that still produces a divergence, along
/// with that divergence. If the input never diverges, returns `None`.
pub fn shrink(
    prog: &Program,
    diverges: impl Fn(&Program) -> Option<Divergence>,
) -> Option<(Program, Divergence)> {
    let mut best_div = diverges(prog)?;
    let mut items = prog.items.clone();
    let mut chunk = items.len().div_ceil(2).max(1);
    while chunk >= 1 {
        let mut progressed = false;
        let mut start = 0;
        while start < items.len() {
            let end = (start + chunk).min(items.len());
            let mut candidate: Vec<_> = items[..start].to_vec();
            candidate.extend_from_slice(&items[end..]);
            if candidate.is_empty() {
                start = end;
                continue;
            }
            let mut trial = prog.clone();
            trial.items = candidate;
            if let Some(div) = diverges(&trial) {
                items = trial.items;
                best_div = div;
                progressed = true;
                // Re-scan from the same offset: the list shrank under us.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            break;
        }
        if !progressed {
            chunk /= 2;
        }
    }
    let mut out = prog.clone();
    out.items = items;
    Some((out, best_div))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Isa};
    use hulkv_sim::SplitMix64;

    #[test]
    fn shrink_isolates_the_single_guilty_item() {
        let mut rng = SplitMix64::new(0xD1FF);
        let prog = generate(&mut rng, Isa::Rv64Sv39);
        assert!(prog.items.len() > 4);
        // Pretend the 7th item is the sole trigger.
        let guilty = prog.items[6.min(prog.items.len() - 1)];
        let oracle = |p: &Program| {
            p.items.contains(&guilty).then(|| Divergence {
                step: 0,
                what: "synthetic".into(),
            })
        };
        let (min, _) = shrink(&prog, oracle).expect("input diverges");
        assert_eq!(min.items, vec![guilty]);
        assert_eq!(min.entry, prog.entry);
        assert_eq!(min.data_seed, prog.data_seed);
    }

    #[test]
    fn shrink_returns_none_when_no_divergence() {
        let mut rng = SplitMix64::new(0xD1FE);
        let prog = generate(&mut rng, Isa::Rv32Pulp);
        assert!(shrink(&prog, |_| None).is_none());
    }

    #[test]
    fn shrink_handles_conjunction_of_two_items() {
        let mut rng = SplitMix64::new(0xD200);
        let prog = generate(&mut rng, Isa::Rv64Sv39);
        assert!(prog.items.len() > 10);
        let (a, b) = (prog.items[2], prog.items[prog.items.len() - 3]);
        if a == b {
            return; // degenerate draw; covered by the single-item test
        }
        let oracle = |p: &Program| {
            (p.items.contains(&a) && p.items.contains(&b)).then(|| Divergence {
                step: 0,
                what: "synthetic pair".into(),
            })
        };
        let (min, _) = shrink(&prog, oracle).expect("input diverges");
        assert!(min.items.len() <= 4, "kept {} items", min.items.len());
        assert!(min.items.contains(&a) && min.items.contains(&b));
    }
}
