//! Differential fuzzing campaign driver.
//!
//! Runs N random programs per ISA side in lockstep (fast paths on vs
//! off). Every campaign is reproducible from the printed seed; the first
//! divergence is delta-debugged to a minimal program and written to the
//! repro directory, and the process exits non-zero.
//!
//! ```text
//! fuzz_iss [--seed N] [--programs N] [--ci-budget]
//!          [--inject-divergence] [--repro-dir DIR] [--json]
//!          [--metrics-out PATH] [--trace-out PATH]
//! ```
//!
//! `--metrics-out` writes a schema-v2 [`MetricsSnapshot`] with the
//! campaign's per-side program/retire counters; `--trace-out` attaches a
//! structured tracer to every fast-side core and writes the campaign's
//! Chrome trace.

use hulkv_analyze::{analyze, AnalyzeConfig, GuestProgram, Side};
use hulkv_fuzz::{generate, run_differential, shrink, Isa, LockstepOptions, Program};
use hulkv_rv::disassemble_word;
use hulkv_sim::{category, Json, MetricsSnapshot, SplitMix64, Stats, Tracer};
use std::fmt::Write as _;
use std::process::ExitCode;

const SIDES: [Isa; 4] = [
    Isa::Rv64Sv39,
    Isa::Rv32Pulp,
    Isa::Rv64Host,
    Isa::Rv32Cluster,
];

struct Cli {
    seed: u64,
    programs: u64,
    inject_divergence: bool,
    repro_dir: String,
    json: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        seed: 1,
        programs: 100,
        inject_divergence: false,
        repro_dir: "fuzz/repros".to_string(),
        json: false,
        metrics_out: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--seed" => cli.seed = num("--seed")?,
            "--programs" => cli.programs = num("--programs")?,
            "--ci-budget" => cli.programs = 500,
            "--inject-divergence" => cli.inject_divergence = true,
            "--repro-dir" => {
                cli.repro_dir = args.next().ok_or("--repro-dir needs a value")?;
            }
            "--json" => cli.json = true,
            "--metrics-out" => {
                cli.metrics_out = Some(args.next().ok_or("--metrics-out needs a value")?);
            }
            "--trace-out" => {
                cli.trace_out = Some(args.next().ok_or("--trace-out needs a value")?);
            }
            "--help" | "-h" => {
                return Err("usage: fuzz_iss [--seed N] [--programs N] [--ci-budget] \
                     [--inject-divergence] [--repro-dir DIR] [--json] \
                     [--metrics-out PATH] [--trace-out PATH]"
                    .into())
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(cli)
}

/// Renders a diverging program as a self-contained repro report.
fn render_repro(prog: &Program, side_seed: u64, index: u64, what: &str, step: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HULK-V differential fuzzer repro");
    let _ = writeln!(out, "isa: {:?}", prog.isa);
    let _ = writeln!(out, "side-seed: {side_seed:#x}  program-index: {index}");
    let _ = writeln!(out, "entry: {:#x}", prog.entry);
    let _ = writeln!(out, "initial-satp-slot: {}", prog.initial_satp);
    let _ = writeln!(out, "hostile-page-flags: {:02x?}", prog.hostile_flags);
    let _ = writeln!(out, "interrupts (step, cause): {:?}", prog.interrupts);
    let _ = writeln!(out, "data-seed: {:#x}", prog.data_seed);
    let _ = writeln!(out, "reg-seed: {:#x}", prog.reg_seed);
    let _ = writeln!(out, "divergence at step {step}: {what}");
    let _ = writeln!(out, "\nitems ({}):", prog.items.len());
    for item in &prog.items {
        let _ = writeln!(out, "  {item:?}");
    }
    let xpulp = matches!(prog.isa, Isa::Rv32Pulp | Isa::Rv32Cluster);
    let xlen = prog.isa.xlen();
    let _ = writeln!(out, "\ndisassembly:");
    for (i, w) in prog.words().iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:#010x}: {:08x}  {}",
            prog.entry + i as u64 * 4,
            w,
            disassemble_word(*w, xlen, xpulp)
        );
    }
    out
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let tracer = cli.trace_out.as_ref().map(|_| {
        let t = Tracer::shared(1 << 18);
        t.borrow_mut().enable(category::ALL);
        t
    });
    let opts = LockstepOptions {
        inject_divergence: cli.inject_divergence,
        tracer: tracer.clone(),
        ..LockstepOptions::default()
    };
    println!(
        "fuzz_iss: seed {} ({} programs per side; rerun with --seed {} to reproduce)",
        cli.seed, cli.programs, cli.seed
    );

    let mut side_reports = Vec::new();
    let mut side_stats: Vec<Stats> = Vec::new();
    let mut total_programs = 0u64;
    let mut total_retired = 0u64;
    let mut static_findings = 0u64;
    for (s, isa) in SIDES.iter().enumerate() {
        let side_seed = cli.seed ^ ((s as u64 + 1) << 32);
        let mut retired = 0u64;
        for k in 0..cli.programs {
            let mut rng = SplitMix64::new(side_seed).fork(k);
            let prog = generate(&mut rng, *isa);
            total_programs += 1;
            // Every generated program also goes through the static
            // analyzer — a termination and robustness test on exactly the
            // hostile inputs the fuzzer is good at producing (the
            // findings themselves are expected: the generator emits
            // misaligned and wild accesses on purpose).
            let side = match isa {
                Isa::Rv32Pulp | Isa::Rv32Cluster => Side::Cluster,
                Isa::Rv64Sv39 | Isa::Rv64Host => Side::Host,
            };
            let gp = GuestProgram::from_words(
                &format!("fuzz/{isa:?}/{k}"),
                &prog.words(),
                prog.entry,
                side,
            );
            static_findings += analyze(&gp, &AnalyzeConfig::default()).findings.len() as u64;
            let div = match run_differential(&prog, &opts) {
                Ok(stats) => {
                    retired += stats.retired;
                    continue;
                }
                Err(div) => div,
            };
            eprintln!(
                "divergence: {isa:?} program {k} (side seed {side_seed:#x}) step {}: {}",
                div.step, div.what
            );
            eprintln!("shrinking...");
            let (min, min_div) = shrink(&prog, |p| run_differential(p, &opts).err())
                .expect("diverging program must still diverge when re-run");
            let report = render_repro(&min, side_seed, k, &min_div.what, min_div.step);
            let path = format!("{}/repro_{isa:?}_{side_seed:x}_{k}.txt", cli.repro_dir);
            if let Err(e) = std::fs::create_dir_all(&cli.repro_dir)
                .and_then(|()| std::fs::write(&path, &report))
            {
                eprintln!("failed to write repro to {path}: {e}");
                eprintln!("{report}");
            } else {
                eprintln!(
                    "minimized to {} items; repro written to {path}",
                    min.items.len()
                );
            }
            return ExitCode::FAILURE;
        }
        total_retired += retired;
        let mut s = Stats::new(format!("fuzz_{isa:?}").to_lowercase());
        s.add("programs", cli.programs);
        s.add("retired", retired);
        side_stats.push(s);
        side_reports.push(Json::obj([
            ("isa", Json::Str(format!("{isa:?}"))),
            ("programs", Json::from(cli.programs)),
            ("retired", Json::from(retired)),
        ]));
        println!(
            "  {isa:?}: {} programs, {retired} instructions retired, 0 divergences",
            cli.programs
        );
    }

    if let Some(path) = &cli.metrics_out {
        let mut snap = MetricsSnapshot::new();
        let mut campaign = Stats::new("campaign");
        campaign.add("programs", total_programs);
        campaign.add("retired", total_retired);
        campaign.add("static_findings", static_findings);
        campaign.add("divergences", 0);
        snap.push_block(campaign);
        for s in side_stats {
            snap.push_block(s);
        }
        snap.set_figure("seed", cli.seed as f64);
        if let Err(e) = std::fs::write(path, format!("{}\n", snap.to_json())) {
            eprintln!("failed to write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics written to {path}");
    }
    if let (Some(path), Some(t)) = (&cli.trace_out, &tracer) {
        let t = t.borrow();
        if let Err(e) = std::fs::write(path, format!("{}\n", t.chrome_trace())) {
            eprintln!("failed to write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace written to {path} ({} events, {} dropped)",
            t.len(),
            t.dropped()
        );
    }

    if cli.json {
        let summary = Json::obj([
            ("seed", Json::from(cli.seed)),
            ("programs", Json::from(total_programs)),
            ("retired", Json::from(total_retired)),
            ("divergences", Json::from(0u64)),
            ("static_findings", Json::from(static_findings)),
            ("sides", Json::Arr(side_reports)),
        ]);
        println!("{summary}");
    } else {
        println!(
            "fuzz_iss: {total_programs} programs, 0 divergences \
             ({static_findings} static findings, all analyzed without hangs)"
        );
    }
    ExitCode::SUCCESS
}
