//! Lockstep differential co-simulation: the same program runs twice —
//! fast paths on (decoded-instruction cache + fetch µTLB) vs the plain
//! reference interpreter — and every observable architectural fact is
//! compared as the runs advance.
//!
//! The comparison ladder, cheapest first:
//!
//! - **every retire**: PC, cycle count, instret, halt state, and the two
//!   step results (both sides must succeed, or fail with the *same*
//!   error);
//! - **every `digest_every` retires and at program end**: the full
//!   architectural digest ([`Core::state_digest`]: registers, FP file,
//!   CSRs, reservation, hardware loops) and the memory-image digest
//!   ([`FlatBus::content_digest`]).
//!
//! Cycle counts are compared directly — the decode cache and µTLB are
//! *required* to be cycle-neutral, so a timing drift is a divergence even
//! when architectural state agrees.

use crate::gen::{Isa, Program};
use hulkv_cluster::{Cluster, ClusterConfig};
use hulkv_host::{Host, HostConfig};
use hulkv_mem::{Bus, MemoryDevice, Sram};
use hulkv_rv::csr::addr;
use hulkv_rv::inst::FReg;
use hulkv_rv::{Asm, Core, FlatBus, PrivMode, Reg, Xlen};
use hulkv_sim::{Cycles, Fnv64, SharedTracer, SplitMix64};
use std::cell::RefCell;
use std::rc::Rc;

/// M-mode trap handler base (identity-mapped in every page table).
pub const HANDLER_BASE: u64 = 0x1000;
/// Flat-bus size for the bare-core sides.
const MEM_BYTES: usize = 0x10_0000;

/// Physical bases of the three prebuilt Sv39 page-table sets.
const PT_A: u64 = 0x8_0000;
const PT_B: u64 = 0x8_3000;
const PT_C: u64 = 0x8_6000;

const PTE_FULL: u64 = 0xCF; // V|R|W|X|A|D

/// A point where the fast and reference runs stopped agreeing.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Retire index at which the mismatch was observed.
    pub step: u64,
    /// Human-readable description of what differed.
    pub what: String,
}

/// Driver knobs.
#[derive(Debug, Clone)]
pub struct LockstepOptions {
    /// Hard cap on retires per program (runaway-loop guard).
    pub max_steps: u64,
    /// Full state/memory digests are compared every this many retires.
    pub digest_every: u64,
    /// Test-only knob: flip one bit of `sp` in the *fast* run after the
    /// third retire, forcing a divergence so the report/shrink/repro
    /// pipeline can be validated end to end.
    pub inject_divergence: bool,
    /// Optional structured tracer attached to the *fast* side's core, so
    /// a fuzzing campaign can export what the fast paths actually did as
    /// a Chrome trace. Never attached to the reference side — tracing
    /// must not be able to mask a divergence by perturbing both runs.
    pub tracer: Option<SharedTracer>,
}

impl Default for LockstepOptions {
    fn default() -> Self {
        LockstepOptions {
            max_steps: 20_000,
            digest_every: 16,
            inject_divergence: false,
            tracer: None,
        }
    }
}

/// Summary of one agreeing lockstep run.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockstepStats {
    /// Steps driven (including interrupt-entry steps that retire nothing).
    pub steps: u64,
    /// Instructions actually retired.
    pub retired: u64,
}

fn satp_of(root: u64) -> u64 {
    (8u64 << 60) | (root >> 12)
}

/// The four `satp` values materialized into `s2..s5`, indexed by
/// [`Program::initial_satp`] as well.
fn satp_values() -> [u64; 4] {
    [0, satp_of(PT_A), satp_of(PT_B), satp_of(PT_C)]
}

/// Trap-and-skip M-mode handler. Interrupts clear the whole `mip` and
/// return; exceptions skip the faulting (always 4-byte) instruction.
///
/// The interrupt test differs per XLEN: RV64 checks `mcause`'s sign bit,
/// while RV32 compares against the injectable cause codes directly (the
/// model keeps the interrupt bit at bit 63, which a 32-bit compare cannot
/// see; codes 3 and 7 cannot collide with any exception cause the RV32
/// side can raise).
fn handler_words(xlen: Xlen) -> Vec<u32> {
    let mut a = Asm::new(xlen);
    let is_irq = a.label();
    match xlen {
        Xlen::Rv64 => {
            a.csrr(Reg::T5, addr::MCAUSE);
            a.blt(Reg::T5, Reg::Zero, is_irq);
        }
        Xlen::Rv32 => {
            a.csrr(Reg::T5, addr::MCAUSE);
            a.addi(Reg::T5, Reg::T5, -3);
            a.beqz(Reg::T5, is_irq);
            a.csrr(Reg::T5, addr::MCAUSE);
            a.addi(Reg::T5, Reg::T5, -7);
            a.beqz(Reg::T5, is_irq);
        }
    }
    a.csrr(Reg::T5, addr::MEPC);
    a.addi(Reg::T5, Reg::T5, 4);
    a.csrw(addr::MEPC, Reg::T5);
    a.mret();
    a.bind(is_irq);
    a.csrw(addr::MIP, Reg::Zero);
    a.mret();
    a.assemble().expect("handler assembles")
}

fn write_pte(bus: &mut FlatBus, at: u64, pa: u64, flags: u64) {
    let pte = ((pa >> 12) << 10) | flags;
    bus.write_bytes(at, &pte.to_le_bytes());
}

/// Builds the three Sv39 table sets over the flat 1 MiB physical space:
///
/// - **A** (`s3`): full identity map, every page `V|R|W|X|A|D`;
/// - **B** (`s4`): identity, but the 16 hostile data pages
///   (`0x5_0000..0x6_0000`) carry the program's randomized flags —
///   missing A, missing D, read-only, user-only, invalid…;
/// - **C** (`s5`): a single 2 MiB superpage leaf at level 1.
fn build_tables(bus: &mut FlatBus, hostile_flags: &[u8; 16]) {
    for (root, l0_flags) in [(PT_A, None), (PT_B, Some(hostile_flags))] {
        let (l1, l0) = (root + 0x1000, root + 0x2000);
        write_pte(bus, root, l1, 0x01); // V-only pointer
        write_pte(bus, l1, l0, 0x01);
        for page in 0..256u64 {
            let mut flags = PTE_FULL;
            if let Some(hf) = l0_flags {
                if (0x50..0x60).contains(&page) {
                    flags = hf[(page - 0x50) as usize] as u64;
                }
            }
            write_pte(bus, l0 + page * 8, page << 12, flags);
        }
    }
    // Table C: level-1 superpage leaf covering PA 0..2 MiB.
    write_pte(bus, PT_C, PT_C + 0x1000, 0x01);
    write_pte(bus, PT_C + 0x1000, 0, PTE_FULL);
}

fn seed_regs(core: &mut Core, prog: &Program) {
    let mask = match prog.isa.xlen() {
        Xlen::Rv64 => u64::MAX,
        Xlen::Rv32 => 0xFFFF_FFFF,
    };
    let mut rng = SplitMix64::new(prog.reg_seed);
    for r in crate::gen::WRITABLE {
        core.set_reg(r, rng.next_u64() & mask);
    }
    for i in 0..32u8 {
        let bits = match prog.isa.xlen() {
            Xlen::Rv64 => rng.next_u64(),
            // NaN-boxed single-precision patterns.
            Xlen::Rv32 => 0xFFFF_FFFF_0000_0000 | (rng.next_u64() & 0xFFFF_FFFF),
        };
        core.set_freg(FReg(i), bits);
    }
    core.set_reg(Reg::Sp, 0x7_0000);
    core.set_reg(Reg::S0, prog.isa.benign_base());
    core.set_reg(Reg::S1, prog.isa.hostile_base());
    core.set_reg(Reg::T5, 0);
}

/// Builds one side of a bare-core run exactly as the lockstep driver
/// does: flat memory image (handler, code, data prefill, page tables)
/// plus a seeded core. Public so snapshot/replay tests can reconstruct
/// the precise environment of a fuzz repro and checkpoint mid-program.
pub fn repro_env(prog: &Program, fast: bool) -> (Core, FlatBus) {
    build_env(prog, fast)
}

/// Builds one side of a bare-core run: flat memory image (handler, code,
/// data prefill, page tables) plus a core with everything but the decode
/// cache identical.
fn build_env(prog: &Program, fast: bool) -> (Core, FlatBus) {
    let mut bus = FlatBus::new(MEM_BYTES);
    bus.load_words(HANDLER_BASE, &handler_words(prog.isa.xlen()));
    bus.load_words(prog.entry, &prog.words());
    let mut drng = SplitMix64::new(prog.data_seed);
    let mut data = vec![0u8; 0x2_0000];
    drng.fill_bytes(&mut data);
    bus.write_bytes(0x4_0000, &data);

    let mut core = match prog.isa {
        Isa::Rv64Sv39 => Core::cva6(),
        Isa::Rv32Pulp => Core::ri5cy(0),
        _ => panic!("build_env is for the bare-core sides"),
    };
    core.set_decode_cache(fast);
    core.set_pc(prog.entry);
    core.csrs_mut().write(addr::MTVEC, HANDLER_BASE);
    core.csrs_mut()
        .write(addr::MIE, (1 << 3) | (1 << 7) | (1 << 11));
    let mstatus = core.csrs().read(addr::MSTATUS);
    core.csrs_mut().write(addr::MSTATUS, mstatus | (1 << 3));
    seed_regs(&mut core, prog);

    if prog.isa == Isa::Rv64Sv39 {
        build_tables(&mut bus, &prog.hostile_flags);
        let satps = satp_values();
        core.set_reg(Reg::S2, satps[0]);
        core.set_reg(Reg::S3, satps[1]);
        core.set_reg(Reg::S4, satps[2]);
        core.set_reg(Reg::S5, satps[3]);
        core.csrs_mut()
            .write(addr::SATP, satps[prog.initial_satp as usize % 4]);
        core.set_priv_mode(PrivMode::Supervisor);
    }
    (core, bus)
}

fn diff_state(step: u64, fast: &Core, refc: &Core) -> Divergence {
    let mut what = format!(
        "state digest mismatch: fast {:#018x} vs ref {:#018x}",
        fast.state_digest(),
        refc.state_digest()
    );
    for (i, r) in Reg::ALL.iter().enumerate() {
        if fast.reg(*r) != refc.reg(*r) {
            what.push_str(&format!(
                "; x{i}: fast {:#x} vs ref {:#x}",
                fast.reg(*r),
                refc.reg(*r)
            ));
        }
    }
    for i in 0..32u8 {
        if fast.freg(FReg(i)) != refc.freg(FReg(i)) {
            what.push_str(&format!(
                "; f{i}: fast {:#x} vs ref {:#x}",
                fast.freg(FReg(i)),
                refc.freg(FReg(i))
            ));
        }
    }
    if fast.csrs().digest() != refc.csrs().digest() {
        what.push_str("; CSR file differs");
    }
    Divergence { step, what }
}

fn compare_full(
    step: u64,
    fast: &Core,
    fbus: &FlatBus,
    refc: &Core,
    rbus: &FlatBus,
) -> Result<(), Divergence> {
    if fast.state_digest() != refc.state_digest() {
        return Err(diff_state(step, fast, refc));
    }
    if fbus.content_digest() != rbus.content_digest() {
        return Err(Divergence {
            step,
            what: format!(
                "memory digest mismatch: fast {:#018x} vs ref {:#018x}",
                fbus.content_digest(),
                rbus.content_digest()
            ),
        });
    }
    Ok(())
}

fn compare_cheap(step: u64, fast: &Core, refc: &Core) -> Result<(), Divergence> {
    if fast.pc() != refc.pc()
        || fast.cycles() != refc.cycles()
        || fast.instret() != refc.instret()
        || fast.is_halted() != refc.is_halted()
    {
        return Err(Divergence {
            step,
            what: format!(
                "retire mismatch: fast pc={:#x} cycles={} instret={} halted={} \
                 vs ref pc={:#x} cycles={} instret={} halted={}",
                fast.pc(),
                fast.cycles().get(),
                fast.instret(),
                fast.is_halted(),
                refc.pc(),
                refc.cycles().get(),
                refc.instret(),
                refc.is_halted()
            ),
        });
    }
    Ok(())
}

/// Runs `prog` in lockstep on the fast and reference interpreters.
/// Returns the run summary, or the first [`Divergence`] observed.
pub fn run_lockstep(prog: &Program, opts: &LockstepOptions) -> Result<LockstepStats, Divergence> {
    let (mut fast, mut fbus) = build_env(prog, true);
    let (mut refc, mut rbus) = build_env(prog, false);
    if let Some(t) = &opts.tracer {
        fast.set_tracer(t.clone());
    }
    let mut step = 0u64;
    let mut injected = false;
    loop {
        if step >= opts.max_steps {
            compare_full(step, &fast, &fbus, &refc, &rbus)?;
            return Ok(LockstepStats {
                steps: step,
                retired: fast.instret(),
            });
        }
        for &(_, code) in prog.interrupts.iter().filter(|&&(at, _)| at == step) {
            fast.set_interrupt_pending(code, true);
            refc.set_interrupt_pending(code, true);
        }
        let rf = fast.step(&mut fbus);
        let rr = refc.step(&mut rbus);
        step += 1;
        match (rf, rr) {
            (Ok(_), Ok(_)) => {}
            (Err(ef), Err(er)) => {
                let (sf, sr) = (format!("{ef:?}"), format!("{er:?}"));
                if sf != sr {
                    return Err(Divergence {
                        step,
                        what: format!("error mismatch: fast {sf} vs ref {sr}"),
                    });
                }
                // Both interpreters rejected the program identically —
                // that is agreement, and the end of the run.
                compare_full(step, &fast, &fbus, &refc, &rbus)?;
                return Ok(LockstepStats {
                    steps: step,
                    retired: fast.instret(),
                });
            }
            (Ok(_), Err(er)) => {
                return Err(Divergence {
                    step,
                    what: format!("fast path ran, reference errored: {er:?}"),
                });
            }
            (Err(ef), Ok(_)) => {
                return Err(Divergence {
                    step,
                    what: format!("reference ran, fast path errored: {ef:?}"),
                });
            }
        }
        compare_cheap(step, &fast, &refc)?;
        if opts.inject_divergence && !injected && step >= 3 {
            // `sp` is never read or written by generated items, so the
            // flip survives untouched until the next digest compare.
            fast.set_reg(Reg::Sp, fast.reg(Reg::Sp) ^ 1);
            injected = true;
        }
        if fast.is_halted() {
            compare_full(step, &fast, &fbus, &refc, &rbus)?;
            return Ok(LockstepStats {
                steps: step,
                retired: fast.instret(),
            });
        }
        if step.is_multiple_of(opts.digest_every) {
            compare_full(step, &fast, &fbus, &refc, &rbus)?;
        }
    }
}

/// Builds one side of a host-level run: CVA6 host over a 1 MiB DRAM with
/// the handler at the DRAM base and the program one page in.
fn build_host(prog: &Program, fast: bool) -> (Host, Rc<RefCell<Sram>>) {
    let dram = Rc::new(RefCell::new(Sram::new("dram", 1 << 20, Cycles::new(20))));
    let mut bus = Bus::new("axi", Cycles::new(2));
    bus.map("dram", 0x8000_0000, dram.clone()).unwrap();
    let mut host = Host::new(HostConfig::default(), hulkv_mem::shared(bus));
    host.set_decode_cache(fast);
    host.load_program(0x8000_0000, &handler_words(Xlen::Rv64))
        .unwrap();
    host.load_program(prog.entry, &prog.words()).unwrap();
    let mut drng = SplitMix64::new(prog.data_seed);
    let mut data = vec![0u8; 0x4_0000];
    drng.fill_bytes(&mut data);
    host.write_mem(prog.isa.benign_base(), &data).unwrap();
    host.flush_l1().unwrap();

    let core = host.core_mut();
    core.set_pc(prog.entry);
    core.csrs_mut().write(addr::MTVEC, 0x8000_0000);
    core.csrs_mut()
        .write(addr::MIE, (1 << 3) | (1 << 7) | (1 << 11));
    let mstatus = core.csrs().read(addr::MSTATUS);
    core.csrs_mut().write(addr::MSTATUS, mstatus | (1 << 3));
    seed_regs(core, prog);
    core.set_reg(Reg::Sp, 0x8000_F000);
    (host, dram)
}

/// Lockstep driver over the full CVA6 host (L1 caches, clock bridge):
/// decode cache on vs off must stay architecturally identical *and*
/// cycle-identical even though the bus is timing-stateful.
pub fn run_host_lockstep(
    prog: &Program,
    opts: &LockstepOptions,
) -> Result<LockstepStats, Divergence> {
    assert_eq!(prog.isa, Isa::Rv64Host);
    let (mut fast, fdram) = build_host(prog, true);
    let (mut refc, rdram) = build_host(prog, false);
    if let Some(t) = &opts.tracer {
        fast.core_mut().set_tracer(t.clone());
    }
    let mut step = 0u64;
    loop {
        if step >= opts.max_steps {
            break;
        }
        for &(_, code) in prog.interrupts.iter().filter(|&&(at, _)| at == step) {
            fast.core_mut().set_interrupt_pending(code, true);
            refc.core_mut().set_interrupt_pending(code, true);
        }
        let rf = fast.step();
        let rr = refc.step();
        step += 1;
        match (rf, rr) {
            (Ok(_), Ok(_)) => {}
            (Err(ef), Err(er)) => {
                let (sf, sr) = (format!("{ef:?}"), format!("{er:?}"));
                if sf != sr {
                    return Err(Divergence {
                        step,
                        what: format!("host error mismatch: fast {sf} vs ref {sr}"),
                    });
                }
                break;
            }
            (a, b) => {
                return Err(Divergence {
                    step,
                    what: format!("host step results differ: fast {a:?} vs ref {b:?}"),
                });
            }
        }
        compare_cheap(step, fast.core(), refc.core())?;
        if fast.core().state_digest() != refc.core().state_digest() {
            return Err(diff_state(step, fast.core(), refc.core()));
        }
        if fast.core().is_halted() {
            break;
        }
    }
    // Final memory comparison through the DRAM backdoor (write-through L1
    // keeps it coherent; flush covers any write-buffer residue).
    fast.flush_l1().unwrap();
    refc.flush_l1().unwrap();
    let (df, dr) = (
        fdram.borrow().content_digest(),
        rdram.borrow().content_digest(),
    );
    if df != dr {
        return Err(Divergence {
            step,
            what: format!("host DRAM digest mismatch: fast {df:#018x} vs ref {dr:#018x}"),
        });
    }
    Ok(LockstepStats {
        steps: step,
        retired: fast.core().instret(),
    })
}

/// Builds one side of a cluster run and returns the cluster plus its L2
/// handle for the end-of-run memory comparison.
fn build_cluster(prog: &Program, decode: bool) -> (Cluster, Rc<RefCell<Sram>>) {
    let l2 = Rc::new(RefCell::new(Sram::new("l2spm", 1 << 20, Cycles::new(2))));
    for (i, w) in prog.words().iter().enumerate() {
        l2.borrow_mut().write_u32(i as u64 * 4, *w).unwrap();
    }
    let mut drng = SplitMix64::new(prog.data_seed);
    let mut data = vec![0u8; 0x2_0000];
    drng.fill_bytes(&mut data);
    l2.borrow_mut().write(0x4_0000, &data).unwrap();
    let mut bus = Bus::new("axi", Cycles::new(2));
    bus.map("l2spm", 0x8000_0000, l2.clone()).unwrap();
    let cfg = ClusterConfig {
        decode_cache: decode,
        ..ClusterConfig::default()
    };
    let mut cluster = Cluster::new(cfg, hulkv_mem::shared(bus));
    let mut trng = SplitMix64::new(prog.data_seed ^ 0x7CD);
    let mut tcdm = vec![0u8; 0x1_0000];
    trng.fill_bytes(&mut tcdm);
    cluster.tcdm_write(0, &tcdm).unwrap();
    (cluster, l2)
}

/// Differential check of [`Cluster::run_team`]: the same team program with
/// the decode cache on vs off must produce identical per-core cycles,
/// instret, final architectural state digests, and memory images.
pub fn run_cluster_lockstep(prog: &Program, num_cores: usize) -> Result<LockstepStats, Divergence> {
    assert_eq!(prog.isa, Isa::Rv32Cluster);
    let mut rng = SplitMix64::new(prog.reg_seed);
    let mask = 0xFFFF_FFFFu64;
    let mut args: Vec<(Reg, u64)> = crate::gen::WRITABLE
        .iter()
        .map(|&r| (r, rng.next_u64() & mask))
        .collect();
    args.push((Reg::S0, prog.isa.benign_base()));
    args.push((Reg::S1, prog.isa.hostile_base()));

    let (mut fast, fl2) = build_cluster(prog, true);
    let (mut refc, rl2) = build_cluster(prog, false);
    let rf = fast.run_team(prog.entry, &args, num_cores, 500_000);
    let rr = refc.run_team(prog.entry, &args, num_cores, 500_000);
    let (tf, tr) = match (rf, rr) {
        (Ok(tf), Ok(tr)) => (tf, tr),
        (Err(ef), Err(er)) => {
            let (sf, sr) = (format!("{ef:?}"), format!("{er:?}"));
            if sf != sr {
                return Err(Divergence {
                    step: 0,
                    what: format!("team error mismatch: fast {sf} vs ref {sr}"),
                });
            }
            return Ok(LockstepStats::default());
        }
        (a, b) => {
            return Err(Divergence {
                step: 0,
                what: format!("team results differ in kind: fast {a:?} vs ref {b:?}"),
            });
        }
    };
    if tf.cycles != tr.cycles || tf.per_core != tr.per_core {
        return Err(Divergence {
            step: 0,
            what: format!(
                "team cycle mismatch: fast {:?}/{:?} vs ref {:?}/{:?}",
                tf.cycles, tf.per_core, tr.cycles, tr.per_core
            ),
        });
    }
    if tf.per_core_instret != tr.per_core_instret {
        return Err(Divergence {
            step: 0,
            what: format!(
                "team instret mismatch: fast {:?} vs ref {:?}",
                tf.per_core_instret, tr.per_core_instret
            ),
        });
    }
    if tf.per_core_state != tr.per_core_state {
        return Err(Divergence {
            step: 0,
            what: format!(
                "per-core state digest mismatch: fast {:x?} vs ref {:x?}",
                tf.per_core_state, tr.per_core_state
            ),
        });
    }
    let mut ftcdm = vec![0u8; fast.config().tcdm_bytes()];
    let mut rtcdm = vec![0u8; refc.config().tcdm_bytes()];
    fast.tcdm_read(0, &mut ftcdm).unwrap();
    refc.tcdm_read(0, &mut rtcdm).unwrap();
    let fd = Fnv64::new().write(&ftcdm).finish();
    let rd = Fnv64::new().write(&rtcdm).finish();
    if fd != rd {
        return Err(Divergence {
            step: 0,
            what: format!("TCDM digest mismatch: fast {fd:#018x} vs ref {rd:#018x}"),
        });
    }
    let (lf, lr) = (fl2.borrow().content_digest(), rl2.borrow().content_digest());
    if lf != lr {
        return Err(Divergence {
            step: 0,
            what: format!("L2 digest mismatch: fast {lf:#018x} vs ref {lr:#018x}"),
        });
    }
    Ok(LockstepStats {
        steps: tf.per_core_instret.iter().sum(),
        retired: tf.per_core_instret.iter().sum(),
    })
}

/// Dispatches a program to the harness matching its ISA side.
pub fn run_differential(
    prog: &Program,
    opts: &LockstepOptions,
) -> Result<LockstepStats, Divergence> {
    match prog.isa {
        Isa::Rv64Sv39 | Isa::Rv32Pulp => run_lockstep(prog, opts),
        Isa::Rv64Host => run_host_lockstep(prog, opts),
        Isa::Rv32Cluster => run_cluster_lockstep(prog, 2),
    }
}
