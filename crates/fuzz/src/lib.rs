//! Differential co-simulation fuzzer for the HULK-V ISS fast paths.
//!
//! The simulator's hot loop carries two architectural accelerators — the
//! decoded-instruction cache and the fetch µTLB — that are required to be
//! *invisible*: same architectural state, same trap behavior, same cycle
//! counts as the plain reference interpreter. This crate checks that
//! claim the adversarial way:
//!
//! 1. [`gen`] draws random-but-deterministic programs over four ISA
//!    sides (RV64 IMAFDC+Zicsr bare core with Sv39, RV32 IMF+Xpulp bare
//!    core, the CVA6 host with its L1 caches, and the multi-core
//!    cluster), deliberately weighted toward the fast paths' weak spots:
//!    self-modifying code, `fence.i`, `satp` switches, RVC parcels
//!    straddling page boundaries, hostile page tables with missing A/D
//!    bits, and interrupts at random retire counts.
//! 2. [`lockstep`] runs each program twice — fast paths on vs off — and
//!    compares PC/cycles/instret every retire plus full state and memory
//!    digests periodically.
//! 3. [`shrink`] delta-debugs any diverging program down to a minimal
//!    repro, which the `fuzz_iss` binary writes to `fuzz/repros/`.
//!
//! Everything is seeded: a printed seed reproduces the whole campaign.

pub mod gen;
pub mod lockstep;
pub mod shrink;

pub use gen::{generate, GenItem, Isa, Program};
pub use lockstep::{
    run_cluster_lockstep, run_differential, run_host_lockstep, run_lockstep, Divergence,
    LockstepOptions, LockstepStats,
};
pub use shrink::shrink;

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv_sim::SplitMix64;

    fn sweep(isa: Isa, seed: u64, n: u64) -> (u64, u64) {
        let opts = LockstepOptions::default();
        let mut total_retired = 0;
        for k in 0..n {
            let mut rng = SplitMix64::new(seed).fork(k);
            let prog = generate(&mut rng, isa);
            match run_differential(&prog, &opts) {
                Ok(stats) => total_retired += stats.retired,
                Err(div) => panic!(
                    "seed {seed} program {k} ({isa:?}) diverged at step {}: {}\nitems: {:#?}",
                    div.step, div.what, prog.items
                ),
            }
        }
        (n, total_retired)
    }

    #[test]
    fn rv64_sv39_sweep_has_no_divergence() {
        let (_, retired) = sweep(Isa::Rv64Sv39, 0xF00D_0001, 40);
        assert!(retired > 0, "sweep retired nothing");
    }

    #[test]
    fn rv32_pulp_sweep_has_no_divergence() {
        let (_, retired) = sweep(Isa::Rv32Pulp, 0xF00D_0002, 40);
        assert!(retired > 0, "sweep retired nothing");
    }

    #[test]
    fn host_sweep_has_no_divergence() {
        let (_, retired) = sweep(Isa::Rv64Host, 0xF00D_0003, 10);
        assert!(retired > 0, "sweep retired nothing");
    }

    #[test]
    fn cluster_sweep_has_no_divergence() {
        let (_, retired) = sweep(Isa::Rv32Cluster, 0xF00D_0004, 10);
        assert!(retired > 0, "sweep retired nothing");
    }

    #[test]
    fn static_analyzer_terminates_on_generated_programs() {
        // The same hostile inputs the differential fuzzer runs also feed
        // the static analyzer: whatever the generator emits (misaligned
        // accesses, wild jumps, hw-loop abuse, trap-happy CSR traffic),
        // analysis must terminate without panicking — the iteration
        // budget is the only backstop this asserts.
        use hulkv_analyze::{analyze, AnalyzeConfig, GuestProgram, Side};
        for isa in [
            Isa::Rv64Sv39,
            Isa::Rv32Pulp,
            Isa::Rv64Host,
            Isa::Rv32Cluster,
        ] {
            for k in 0..40 {
                let mut rng = SplitMix64::new(0x0057_A71C).fork(k);
                let prog = generate(&mut rng, isa);
                let side = match isa {
                    Isa::Rv32Pulp | Isa::Rv32Cluster => Side::Cluster,
                    Isa::Rv64Sv39 | Isa::Rv64Host => Side::Host,
                };
                let gp = GuestProgram::from_words("fuzzed", &prog.words(), prog.entry, side);
                let report = analyze(&gp, &AnalyzeConfig::default());
                // Findings must carry coherent PCs (inside or at least
                // derived from the image the analyzer was handed).
                for f in &report.findings {
                    assert!(f.pc >= gp.base && f.pc < gp.end().max(gp.base + 4));
                }
            }
        }
    }

    #[test]
    fn static_analyzer_terminates_on_garbage_bytes() {
        use hulkv_analyze::{analyze, AnalyzeConfig, GuestProgram, Side};
        let mut rng = SplitMix64::new(0xDEAD_BEA7);
        for trial in 0..32 {
            let words: Vec<u32> = (0..256).map(|_| rng.next_u32()).collect();
            let side = if trial % 2 == 0 {
                Side::Host
            } else {
                Side::Cluster
            };
            let gp = GuestProgram::from_words("garbage", &words, 0x1000, side);
            let _ = analyze(&gp, &AnalyzeConfig::default());
        }
    }

    #[test]
    fn injected_divergence_is_caught_and_shrinks() {
        let opts = LockstepOptions {
            inject_divergence: true,
            ..LockstepOptions::default()
        };
        let mut rng = SplitMix64::new(0xBAD_0001);
        let prog = generate(&mut rng, Isa::Rv64Sv39);
        let div = run_differential(&prog, &opts).expect_err("injection must diverge");
        assert!(div.step >= 3, "diverged before the injection point");
        let (min, min_div) =
            shrink(&prog, |p| run_differential(p, &opts).err()).expect("shrinks to a repro");
        assert!(!min.items.is_empty());
        assert!(min.items.len() <= prog.items.len());
        assert!(!min_div.what.is_empty());
    }
}
