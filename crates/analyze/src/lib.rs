//! Static analysis for HULK-V guest binaries.
//!
//! The dynamic half of the verification pipeline (the PR-3 differential
//! fuzzer, the trace infrastructure) only catches a bug when an execution
//! reaches it. This crate adds the static half: it reuses the real
//! [`hulkv_rv`] decoder to recover a control-flow graph from a raw guest
//! image ([`cfg`]), runs a small abstract interpreter over the integer
//! register file ([`absint`] — a constant/alignment/range lattice), and
//! powers a catalogue of checks ([`checks`]) that flag provable
//! software/platform mismatches *before* anything executes:
//!
//! * Xpulp hardware-loop legality (branches into or out of a body, loop
//!   state written inside a body, bad nesting, unreachable end markers);
//! * accesses the SoC address map or the IOPMP provably rejects, resolved
//!   per side (host view vs. cluster view);
//! * provably misaligned loads, stores and AMOs;
//! * stores into executable regions with no `fence.i` on the path behind
//!   them, and host stores into the cluster's L2SPM code window;
//! * undecodable or unreachable instructions and branches leaving the
//!   image;
//! * CSR misuse (writes to read-only or unimplemented CSRs).
//!
//! Every finding carries a PC, the disassembly of the offending
//! instruction and a machine-readable JSON rendering ([`report`]); the
//! `hulkv-lint` binary diffs findings against a committed baseline so CI
//! fails only on *new* ones. Warning classes map onto `hulkv-trace` event
//! categories, and [`dynamic`] closes the loop by executing a flagged
//! program and confirming findings against the recorded events.
//!
//! # Example
//!
//! ```
//! use hulkv_analyze::{analyze, AnalyzeConfig, CheckKind, GuestProgram, Side};
//! use hulkv_rv::{Asm, Reg, Xlen};
//!
//! // A store through a provably misaligned pointer.
//! let mut a = Asm::new(Xlen::Rv32);
//! a.li(Reg::T0, 0x1000_0002);
//! a.sw(Reg::T1, Reg::T0, 0);
//! a.ebreak();
//! let prog = GuestProgram::from_words("demo", &a.assemble()?, 0, Side::Cluster);
//! let report = analyze(&prog, &AnalyzeConfig::default());
//! assert!(report.findings.iter().any(|f| f.kind == CheckKind::Misaligned));
//! # Ok::<(), hulkv_rv::RvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod cfg;
pub mod checks;
pub mod dynamic;
pub mod report;

pub use checks::{CheckKind, Finding, Severity};
pub use report::{Baseline, Report};

use hulkv_rv::Xlen;

/// Which HULK-V core a guest binary targets. The side fixes the register
/// width, the extension set the decoder accepts, and the default memory
/// view the map checks resolve against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The RV64GC CVA6 host (no Xpulp; host address map).
    Host,
    /// An RV32 Xpulp PMCA core (TCDM plus the IOPMP windows).
    Cluster,
}

impl Side {
    /// Register width of this side.
    pub fn xlen(self) -> Xlen {
        match self {
            Side::Host => Xlen::Rv64,
            Side::Cluster => Xlen::Rv32,
        }
    }

    /// Whether the decoder should accept Xpulp encodings.
    pub fn xpulp(self) -> bool {
        matches!(self, Side::Cluster)
    }
}

/// A guest binary to analyze: a raw little-endian image, the address it
/// is loaded at, and the core it targets. Execution is assumed to enter
/// at `base`.
#[derive(Debug, Clone)]
pub struct GuestProgram {
    /// Display name used in findings and baselines.
    pub name: String,
    /// The raw image bytes.
    pub bytes: Vec<u8>,
    /// Load (and entry) address.
    pub base: u64,
    /// Target core.
    pub side: Side,
}

impl GuestProgram {
    /// Builds a program from assembled instruction words (the form every
    /// generator in this repository produces).
    pub fn from_words(name: &str, words: &[u32], base: u64, side: Side) -> Self {
        GuestProgram {
            name: name.to_string(),
            bytes: words.iter().flat_map(|w| w.to_le_bytes()).collect(),
            base,
            side,
        }
    }

    /// End address (exclusive) of the image.
    pub fn end(&self) -> u64 {
        self.base + self.bytes.len() as u64
    }
}

/// A named physical window data accesses may legally touch.
#[derive(Debug, Clone)]
pub struct Region {
    /// Display name (`"tcdm"`, `"dram"`, …).
    pub name: String,
    /// Base address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    fn contains_span(&self, lo: u64, hi_incl: u64, size: usize) -> bool {
        let end = self.base as u128 + self.size as u128;
        lo >= self.base && hi_incl as u128 + size as u128 <= end
    }
}

/// The memory view a program's data accesses are checked against: the set
/// of windows the side may touch, and which finding a provable escape
/// raises (plain map error on the host, IOPMP denial on the cluster).
#[derive(Debug, Clone)]
pub struct MemView {
    /// Allowed windows.
    pub regions: Vec<Region>,
    /// Finding kind for accesses provably outside every window.
    pub deny_kind: CheckKind,
    /// Host-side window holding PMCA kernel code (stores into it are
    /// cross-side self-modifying code); `None` on the cluster view.
    pub cluster_code: Option<(u64, u64)>,
}

impl MemView {
    /// The CVA6 host's view for a SoC configuration: the bus windows of
    /// [`hulkv::host_regions`], with the kernel half of the L2SPM marked
    /// as cluster code.
    pub fn host(cfg: &hulkv::SocConfig) -> Self {
        MemView {
            regions: hulkv::host_regions(cfg)
                .into_iter()
                .map(|(name, base, size)| Region {
                    name: name.to_string(),
                    base,
                    size,
                })
                .collect(),
            deny_kind: CheckKind::MemMap,
            // The offload runtime packs kernel binaries into the lower
            // half of the L2SPM; host benchmark data lives in the upper
            // half (see `hulkv_kernels::suite::host_data_base`).
            cluster_code: Some((hulkv::map::L2SPM_BASE, cfg.l2spm_bytes as u64 / 2)),
        }
    }

    /// A PMCA core's view for a SoC configuration: the TCDM plus the
    /// windows the host's IOPMP whitelists
    /// ([`hulkv::default_iopmp_windows`]); everything else is a provable
    /// IOPMP denial.
    pub fn cluster(cfg: &hulkv::SocConfig) -> Self {
        let mut regions = vec![Region {
            name: "tcdm".to_string(),
            base: hulkv_cluster::TCDM_BASE,
            size: cfg.cluster.tcdm_bytes() as u64,
        }];
        regions.extend(
            hulkv::default_iopmp_windows(cfg)
                .into_iter()
                .enumerate()
                .map(|(i, (base, size))| Region {
                    name: ["l2spm", "dram"].get(i).unwrap_or(&"iopmp").to_string(),
                    base,
                    size,
                }),
        );
        MemView {
            regions,
            deny_kind: CheckKind::IopmpDenied,
            cluster_code: None,
        }
    }
}

/// Analyzer knobs.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeConfig {
    /// Memory view for map/IOPMP checks; `None` (e.g. for raw-core
    /// programs over a [`hulkv_rv::FlatBus`]) skips them.
    pub view: Option<MemView>,
}

impl AnalyzeConfig {
    /// The default view for a side under the default SoC configuration.
    pub fn for_side(side: Side) -> Self {
        let cfg = hulkv::SocConfig::default();
        AnalyzeConfig {
            view: Some(match side {
                Side::Host => MemView::host(&cfg),
                Side::Cluster => MemView::cluster(&cfg),
            }),
        }
    }
}

/// Runs CFG recovery, the abstract interpreter and the full check suite
/// over one guest program.
pub fn analyze(prog: &GuestProgram, cfg: &AnalyzeConfig) -> Report {
    let graph = cfg::recover(prog);
    let absint = absint::interpret(prog, &graph);
    let mut findings = checks::run_all(prog, &graph, &absint, cfg);
    findings.sort_by_key(|f| (f.pc, f.kind as u32));
    Report {
        program: prog.name.clone(),
        findings,
    }
}
