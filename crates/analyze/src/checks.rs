//! The check catalogue: every analysis that turns the CFG and the
//! abstract state into findings.
//!
//! All map/alignment checks only fire on *provable* violations — the
//! whole abstract value set must be illegal — so a top address (e.g. a
//! runtime kernel argument) never produces a false positive. Warning
//! classes map onto `hulkv-trace` event categories (see
//! [`CheckKind::trace_category`]) so the dynamic harness in
//! [`crate::dynamic`] can confirm a static finding against recorded
//! events from an actual execution.

use crate::absint::AbsintResult;
use crate::cfg::{Cfg, HwLoopRegion};
use crate::{AnalyzeConfig, GuestProgram};
use hulkv_rv::csr::addr;
use hulkv_rv::inst::{CsrOp, CsrSrc, Inst, Reg};
use hulkv_rv::{disassemble, disassemble_word};
use hulkv_sim::category;
use std::collections::BTreeSet;

/// Finding severity: errors are provable platform violations, warnings
/// are hazards, infos are hygiene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene / informational.
    Info,
    /// A hazard that is legal but almost certainly unintended.
    Warning,
    /// A provable violation that faults or corrupts state at runtime.
    Error,
}

impl Severity {
    /// Lower-case display name (`"error"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The check that produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CheckKind {
    /// A reachable parcel does not decode on this side.
    Undecodable,
    /// Decoded code never reached from the entry.
    Unreachable,
    /// A direct branch or jump targets an address outside the image.
    OutOfImageJump,
    /// A data access provably outside every host bus window.
    MemMap,
    /// A cluster data access the IOPMP provably denies.
    IopmpDenied,
    /// A provably misaligned load/store/AMO.
    Misaligned,
    /// A store into this image's own code with no `fence.i` behind it.
    SmcNoFence,
    /// A host store into the L2SPM window holding PMCA kernel code
    /// (requires a `Cluster::flush_icache` doorbell before the next
    /// offload).
    CrossSideSmc,
    /// A branch crossing a hardware-loop body boundary.
    HwLoopBranch,
    /// Hardware-loop state written inside a loop body.
    HwLoopSetupInBody,
    /// Hardware-loop bodies that overlap without nesting.
    HwLoopNesting,
    /// A degenerate loop body (empty, inverted, or with an end marker no
    /// instruction boundary reaches).
    HwLoopBody,
    /// A loop armed with a provably zero iteration count.
    HwLoopCount,
    /// A write to a read-only CSR.
    CsrReadOnly,
    /// An access to a CSR the cores do not implement.
    CsrUnknown,
    /// The abstract interpreter hit its iteration budget; value-dependent
    /// checks were skipped for this program.
    AnalysisBudget,
}

impl CheckKind {
    /// Stable machine-readable name (used in baselines and JSON).
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Undecodable => "undecodable",
            CheckKind::Unreachable => "unreachable",
            CheckKind::OutOfImageJump => "out-of-image-jump",
            CheckKind::MemMap => "mem-map",
            CheckKind::IopmpDenied => "iopmp-denied",
            CheckKind::Misaligned => "misaligned",
            CheckKind::SmcNoFence => "smc-no-fence",
            CheckKind::CrossSideSmc => "cross-side-smc",
            CheckKind::HwLoopBranch => "hwloop-branch",
            CheckKind::HwLoopSetupInBody => "hwloop-setup-in-body",
            CheckKind::HwLoopNesting => "hwloop-nesting",
            CheckKind::HwLoopBody => "hwloop-body",
            CheckKind::HwLoopCount => "hwloop-count",
            CheckKind::CsrReadOnly => "csr-read-only",
            CheckKind::CsrUnknown => "csr-unknown",
            CheckKind::AnalysisBudget => "analysis-budget",
        }
    }

    /// Default severity.
    pub fn severity(self) -> Severity {
        match self {
            CheckKind::Undecodable
            | CheckKind::MemMap
            | CheckKind::IopmpDenied
            | CheckKind::OutOfImageJump => Severity::Error,
            CheckKind::Misaligned
            | CheckKind::SmcNoFence
            | CheckKind::CrossSideSmc
            | CheckKind::HwLoopBranch
            | CheckKind::HwLoopSetupInBody
            | CheckKind::HwLoopNesting
            | CheckKind::HwLoopBody
            | CheckKind::CsrReadOnly => Severity::Warning,
            CheckKind::Unreachable
            | CheckKind::HwLoopCount
            | CheckKind::CsrUnknown
            | CheckKind::AnalysisBudget => Severity::Info,
        }
    }

    /// The `hulkv-trace` category whose events confirm this finding
    /// dynamically, when one exists.
    pub fn trace_category(self) -> Option<u32> {
        match self {
            CheckKind::IopmpDenied | CheckKind::Misaligned | CheckKind::MemMap => {
                Some(category::PROTECT)
            }
            CheckKind::SmcNoFence | CheckKind::CrossSideSmc => Some(category::DECODE),
            _ => None,
        }
    }
}

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The check that fired.
    pub kind: CheckKind,
    /// Severity (defaults to [`CheckKind::severity`]).
    pub severity: Severity,
    /// PC of the offending instruction.
    pub pc: u64,
    /// Disassembly at that PC.
    pub disasm: String,
    /// Human-readable explanation.
    pub message: String,
}

struct Ctx<'a> {
    prog: &'a GuestProgram,
    cfg: &'a Cfg,
    abs: &'a AbsintResult,
    findings: Vec<Finding>,
}

impl Ctx<'_> {
    fn disasm_at(&self, pc: u64) -> String {
        match self.cfg.insts.get(&pc) {
            Some(ci) => match &ci.inst {
                Some(inst) => disassemble(inst),
                None => format!(".word {:#010x}", ci.raw),
            },
            None => "<not decoded>".to_string(),
        }
    }

    fn emit(&mut self, kind: CheckKind, pc: u64, message: String) {
        let disasm = self.disasm_at(pc);
        self.findings.push(Finding {
            kind,
            severity: kind.severity(),
            pc,
            disasm,
            message,
        });
    }
}

/// Runs every check over one program.
pub fn run_all(
    prog: &GuestProgram,
    cfg: &Cfg,
    abs: &AbsintResult,
    config: &AnalyzeConfig,
) -> Vec<Finding> {
    let mut ctx = Ctx {
        prog,
        cfg,
        abs,
        findings: Vec::new(),
    };
    check_decode(&mut ctx);
    check_unreachable(&mut ctx);
    check_out_of_image(&mut ctx);
    if abs.budget_exhausted {
        ctx.emit(
            CheckKind::AnalysisBudget,
            prog.base,
            "abstract interpretation exceeded its iteration budget; \
             value-dependent checks degraded to top"
                .to_string(),
        );
    }
    check_memory(&mut ctx, config);
    check_hw_loops(&mut ctx);
    check_csrs(&mut ctx);
    ctx.findings
}

fn check_decode(ctx: &mut Ctx<'_>) {
    let bad: Vec<u64> = ctx
        .cfg
        .insts
        .iter()
        .filter(|(_, ci)| ci.inst.is_none())
        .map(|(&pc, _)| pc)
        .collect();
    for pc in bad {
        let raw = ctx.cfg.insts[&pc].raw;
        ctx.emit(
            CheckKind::Undecodable,
            pc,
            format!(
                "reachable parcel {raw:#010x} does not decode on the {:?} side",
                ctx.prog.side
            ),
        );
    }
}

/// Linear-sweep the image and report decodable instructions the reachable
/// sweep never visited. Suppressed when a computed goto exists (its
/// target set is unknown, so nothing is provably unreachable).
fn check_unreachable(ctx: &mut Ctx<'_>) {
    if ctx.cfg.has_computed_goto {
        return;
    }
    let xlen = ctx.prog.side.xlen();
    let xpulp = ctx.prog.side.xpulp();
    let mut pc = ctx.prog.base;
    // Report only the first PC of each contiguous dead run to keep the
    // output proportional to the number of holes, not their size.
    let mut run_start: Option<(u64, u32)> = None;
    let mut runs: Vec<(u64, u32)> = Vec::new();
    while pc < ctx.prog.end() {
        let offset = (pc - ctx.prog.base) as usize;
        let Some(parcel) = hulkv_rv::fetch_parcel(&ctx.prog.bytes, offset, xlen, xpulp) else {
            break;
        };
        let dead = parcel.inst.is_some() && !ctx.cfg.reachable(pc);
        match (dead, run_start) {
            (true, None) => run_start = Some((pc, parcel.raw)),
            (false, Some(s)) => {
                runs.push(s);
                run_start = None;
            }
            _ => {}
        }
        pc += u64::from(parcel.len);
    }
    runs.extend(run_start);
    for (pc, raw) in runs {
        // The CFG never decoded this PC, so bypass disasm_at.
        ctx.findings.push(Finding {
            kind: CheckKind::Unreachable,
            severity: CheckKind::Unreachable.severity(),
            pc,
            disasm: disassemble_word(raw, xlen, xpulp),
            message: "code not reachable from the entry point".to_string(),
        });
    }
}

fn check_out_of_image(ctx: &mut Ctx<'_>) {
    let pcs: Vec<u64> = ctx.cfg.out_of_image.iter().copied().collect();
    for pc in pcs {
        ctx.emit(
            CheckKind::OutOfImageJump,
            pc,
            format!(
                "direct control transfer leaves the image [{:#x}, {:#x})",
                ctx.prog.base,
                ctx.prog.end()
            ),
        );
    }
}

/// Map, IOPMP, alignment and self-modifying-code checks — everything
/// driven by the abstract address of a data access.
fn check_memory(ctx: &mut Ctx<'_>, config: &AnalyzeConfig) {
    if ctx.abs.budget_exhausted {
        return;
    }
    let xlen = ctx.prog.side.xlen();
    let accesses: Vec<(u64, Reg, i64, usize, bool)> = ctx
        .cfg
        .insts
        .iter()
        .filter_map(|(&pc, ci)| {
            let (rs1, offset, size, store) = match ci.inst? {
                Inst::Load {
                    width, rs1, offset, ..
                }
                | Inst::LoadPost {
                    width, rs1, offset, ..
                } => (rs1, offset, width.bytes(), false),
                Inst::Store {
                    width, rs1, offset, ..
                }
                | Inst::StorePost {
                    width, rs1, offset, ..
                } => (rs1, offset, width.bytes(), true),
                Inst::FpLoad {
                    fmt, rs1, offset, ..
                } => (
                    rs1,
                    offset,
                    if fmt == hulkv_rv::inst::FpFmt::S {
                        4
                    } else {
                        8
                    },
                    false,
                ),
                Inst::FpStore {
                    fmt, rs1, offset, ..
                } => (
                    rs1,
                    offset,
                    if fmt == hulkv_rv::inst::FpFmt::S {
                        4
                    } else {
                        8
                    },
                    true,
                ),
                Inst::LoadReserved { double, rs1, .. } => {
                    (rs1, 0, if double { 8 } else { 4 }, false)
                }
                Inst::StoreConditional { double, rs1, .. } | Inst::Amo { double, rs1, .. } => {
                    (rs1, 0, if double { 8 } else { 4 }, true)
                }
                _ => return None,
            };
            Some((pc, rs1, offset, size, store))
        })
        .collect();

    for (pc, rs1, offset, size, store) in accesses {
        let Some(addr) = ctx.abs.addr_at(pc, rs1, offset, xlen) else {
            continue;
        };
        if addr.is_top(xlen) {
            continue;
        }
        // Alignment: every value in the set is `lo (mod stride)`, so the
        // access is provably misaligned when the stride preserves the
        // misaligned residue.
        let s = size as u64;
        if s > 1 && addr.stride % s == 0 && addr.lo % s != 0 {
            ctx.emit(
                CheckKind::Misaligned,
                pc,
                format!(
                    "{}-byte access at address ≡ {:#x} (mod {}) is always misaligned",
                    size,
                    addr.lo % s,
                    s
                ),
            );
        }
        // Map / IOPMP: provable only when the whole footprint misses
        // every allowed window.
        if let Some(view) = &config.view {
            let legal = view
                .regions
                .iter()
                .any(|r| r.contains_span(addr.lo, addr.hi, size));
            let possibly_legal = view.regions.iter().any(|r| {
                // Some value of the set could land inside the window.
                addr.lo < r.base.saturating_add(r.size) && addr.hi >= r.base
            });
            if !legal && !possibly_legal {
                ctx.emit(
                    view.deny_kind,
                    pc,
                    format!(
                        "{} of [{:#x}, {:#x}]+{} is outside every allowed window",
                        if store { "store" } else { "load" },
                        addr.lo,
                        addr.hi,
                        size
                    ),
                );
            }
            // Cross-side SMC: host store into the PMCA kernel-code half
            // of the L2SPM.
            if store {
                if let Some((code_base, code_size)) = view.cluster_code {
                    let code = crate::Region {
                        name: String::new(),
                        base: code_base,
                        size: code_size,
                    };
                    if code.contains_span(addr.lo, addr.hi, size) {
                        ctx.emit(
                            CheckKind::CrossSideSmc,
                            pc,
                            "store into the L2SPM kernel-code window; the PMCA's \
                             shared I-cache needs a flush_icache doorbell before \
                             the next offload"
                                .to_string(),
                        );
                    }
                }
            }
        }
        // Self-modifying code within this image.
        if store {
            check_smc(ctx, pc, addr.lo, addr.hi, size);
        }
    }
}

/// A store whose footprint provably lands inside this image's code: walk
/// forward from the store, stopping at `fence.i`; if a stored-to PC is
/// executable on such a path, stale pre-modification bytes can run.
fn check_smc(ctx: &mut Ctx<'_>, store_pc: u64, lo: u64, hi: u64, size: usize) {
    let span_end = hi.saturating_add(size as u64);
    if span_end <= ctx.prog.base || lo >= ctx.prog.end() {
        return;
    }
    let mut seen = BTreeSet::new();
    let mut work: Vec<u64> = ctx
        .cfg
        .succs
        .get(&store_pc)
        .into_iter()
        .flatten()
        .copied()
        .collect();
    while let Some(pc) = work.pop() {
        if !seen.insert(pc) {
            continue;
        }
        let Some(ci) = ctx.cfg.insts.get(&pc) else {
            continue;
        };
        if matches!(ci.inst, Some(Inst::FenceI)) {
            continue; // This path is safe past the fence.
        }
        if pc.wrapping_add(u64::from(ci.len)) > lo && pc < span_end {
            ctx.emit(
                CheckKind::SmcNoFence,
                store_pc,
                format!(
                    "store overwrites code at [{lo:#x}, {span_end:#x}) which is \
                     reachable without an intervening fence.i (e.g. at {pc:#x})"
                ),
            );
            return;
        }
        work.extend(ctx.cfg.succs.get(&pc).into_iter().flatten().copied());
    }
}

fn region_contains(l: &HwLoopRegion, pc: u64) -> bool {
    pc >= l.start && pc < l.end
}

fn check_hw_loops(ctx: &mut Ctx<'_>) {
    let loops = ctx.cfg.loops.clone();
    for l in &loops {
        // Degenerate bodies.
        if l.end <= l.start {
            ctx.emit(
                CheckKind::HwLoopBody,
                l.setup_pc,
                format!(
                    "hardware loop {} body [{:#x}, {:#x}) is empty or inverted",
                    l.idx, l.start, l.end
                ),
            );
            continue;
        }
        // The back-edge fires when an instruction *falls through* onto
        // `end`: `end` must be an instruction boundary and the last body
        // instruction must not itself transfer control.
        let last = ctx
            .cfg
            .insts
            .range(l.start..l.end)
            .next_back()
            .map(|(&pc, ci)| (pc, ci.len, ci.inst));
        match last {
            Some((pc, len, inst)) if pc + u64::from(len) == l.end => {
                if matches!(
                    inst,
                    Some(
                        Inst::Jal { .. }
                            | Inst::Jalr { .. }
                            | Inst::Branch { .. }
                            | Inst::Ebreak
                            | Inst::Mret
                            | Inst::Sret
                    )
                ) {
                    ctx.emit(
                        CheckKind::HwLoopBody,
                        pc,
                        format!(
                            "last instruction of hardware loop {} body is a control \
                             transfer; the zero-cycle back-edge at {:#x} never fires",
                            l.idx, l.end
                        ),
                    );
                }
            }
            _ => {
                ctx.emit(
                    CheckKind::HwLoopBody,
                    l.setup_pc,
                    format!(
                        "hardware loop {} end marker {:#x} is not an instruction \
                         boundary; the back-edge never fires",
                        l.idx, l.end
                    ),
                );
            }
        }
        // Branches crossing the body boundary, and loop state written
        // inside the body.
        let insts: Vec<(u64, Option<Inst>)> = ctx
            .cfg
            .insts
            .iter()
            .map(|(&pc, ci)| (pc, ci.inst))
            .collect();
        for (pc, inst) in insts {
            let Some(inst) = inst else { continue };
            let inside = region_contains(l, pc);
            let target = match inst {
                Inst::Jal { offset, .. } | Inst::Branch { offset, .. } => {
                    Some(pc.wrapping_add(offset as u64))
                }
                _ => None,
            };
            if let Some(t) = target {
                // A branch from the last body slot to `end` is the idiom
                // for "skip the back-edge", which is exactly the hazard:
                // count state stays armed. Flag any boundary crossing.
                if inside != (t >= l.start && t < l.end) {
                    ctx.emit(
                        CheckKind::HwLoopBranch,
                        pc,
                        format!(
                            "control transfer {} hardware loop {} body [{:#x}, {:#x})",
                            if inside { "out of" } else { "into" },
                            l.idx,
                            l.start,
                            l.end
                        ),
                    );
                }
            }
            if inside && matches!(inst, Inst::HwLoop { .. }) {
                ctx.emit(
                    CheckKind::HwLoopSetupInBody,
                    pc,
                    format!(
                        "hardware-loop state written inside loop {} body [{:#x}, {:#x})",
                        l.idx, l.start, l.end
                    ),
                );
            }
        }
        // Provably zero iteration count: a counti 0, or a count from a
        // register holding a known zero.
        let setups: Vec<(u64, Inst)> = ctx
            .cfg
            .insts
            .iter()
            .filter_map(|(&pc, ci)| ci.inst.map(|i| (pc, i)))
            .collect();
        for (pc, inst) in setups {
            if let Inst::HwLoop {
                op,
                loop_idx,
                value,
                rs1,
            } = inst
            {
                if loop_idx & 1 != l.idx || region_contains(l, pc) {
                    continue;
                }
                let zero = match op {
                    hulkv_rv::inst::HwLoopOp::Counti => value == 0,
                    hulkv_rv::inst::HwLoopOp::Count => ctx
                        .abs
                        .states
                        .get(&pc)
                        .map(|s| s[rs1.index() as usize].as_const() == Some(0))
                        .unwrap_or(false),
                    _ => false,
                };
                if zero {
                    ctx.emit(
                        CheckKind::HwLoopCount,
                        pc,
                        format!("hardware loop {} armed with a zero count", l.idx),
                    );
                }
            }
        }
    }
    // Overlap without nesting (including two regions in the same slot).
    for (i, a) in loops.iter().enumerate() {
        for b in &loops[i + 1..] {
            let overlap = a.start < b.end && b.start < a.end;
            let nested =
                (a.start <= b.start && b.end <= a.end) || (b.start <= a.start && a.end <= b.end);
            if overlap && (!nested || a.idx == b.idx) {
                ctx.emit(
                    CheckKind::HwLoopNesting,
                    b.setup_pc,
                    format!(
                        "hardware-loop bodies [{:#x}, {:#x}) (slot {}) and \
                         [{:#x}, {:#x}) (slot {}) overlap illegally",
                        a.start, a.end, a.idx, b.start, b.end, b.idx
                    ),
                );
            }
        }
    }
}

/// The CSRs the cores implement (see `hulkv_rv::csr`); anything else
/// reads zero / ignores writes in the model but traps on real hardware.
/// The HPM group (`mcounteren`/`mcountinhibit`, `mhpmevent3..10`,
/// `mhpmcounter3..10` and the user `hpmcounter3..10` shadows) is matched
/// by [`addr::is_hpm_managed`] rather than listed here.
const KNOWN_CSRS: &[u16] = &[
    addr::MSTATUS,
    addr::MISA,
    addr::MEDELEG,
    addr::MIDELEG,
    addr::MIE,
    addr::MTVEC,
    addr::MSCRATCH,
    addr::MEPC,
    addr::MCAUSE,
    addr::MTVAL,
    addr::MIP,
    addr::MHARTID,
    addr::SSTATUS,
    addr::STVEC,
    addr::SSCRATCH,
    addr::SEPC,
    addr::SCAUSE,
    addr::STVAL,
    addr::SATP,
    addr::CYCLE,
    addr::TIME,
    addr::INSTRET,
    addr::MCYCLE,
    addr::MINSTRET,
    addr::FFLAGS,
    addr::FRM,
    addr::FCSR,
];

fn check_csrs(ctx: &mut Ctx<'_>) {
    let csr_insts: Vec<(u64, CsrOp, u16, CsrSrc)> = ctx
        .cfg
        .insts
        .iter()
        .filter_map(|(&pc, ci)| match ci.inst? {
            Inst::Csr { op, csr, src, .. } => Some((pc, op, csr, src)),
            _ => None,
        })
        .collect();
    for (pc, op, csr, src) in csr_insts {
        // `csrrs/rc` with a zero source are pure reads by the spec.
        let writes = match (op, src) {
            (CsrOp::Rw, _) => true,
            (_, CsrSrc::Reg(r)) => r != Reg::Zero,
            (_, CsrSrc::Imm(i)) => i != 0,
        };
        if !KNOWN_CSRS.contains(&csr) && !addr::is_hpm_managed(csr) {
            ctx.emit(
                CheckKind::CsrUnknown,
                pc,
                format!("CSR {csr:#x} is not implemented by either core"),
            );
            continue;
        }
        // Addresses with the top two bits of the access field set are
        // architecturally read-only (csr[11:10] == 0b11).
        if writes && (csr >> 10) == 0b11 {
            ctx.emit(
                CheckKind::CsrReadOnly,
                pc,
                format!("write to read-only CSR {csr:#x} traps on real hardware"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalyzeConfig, GuestProgram, Side};
    use hulkv_rv::{Asm, Xlen};

    fn kinds(prog: &GuestProgram, cfg: &AnalyzeConfig) -> Vec<CheckKind> {
        analyze(prog, cfg).findings.iter().map(|f| f.kind).collect()
    }

    #[test]
    fn clean_program_is_clean() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, hulkv_cluster::TCDM_BASE as i64);
        a.lw(Reg::T1, Reg::T0, 0);
        a.addi(Reg::T1, Reg::T1, 1);
        a.sw(Reg::T1, Reg::T0, 4);
        a.ebreak();
        let p = GuestProgram::from_words("clean", &a.assemble().unwrap(), 0, Side::Cluster);
        assert!(kinds(&p, &AnalyzeConfig::for_side(Side::Cluster)).is_empty());
    }

    #[test]
    fn iopmp_denied_store_is_flagged() {
        let mut a = Asm::new(Xlen::Rv32);
        // The peripheral window is not IOPMP-whitelisted for the cluster.
        a.li(Reg::T0, hulkv::map::PERIPH_BASE as i64);
        a.sw(Reg::T1, Reg::T0, 0);
        a.ebreak();
        let p = GuestProgram::from_words("denied", &a.assemble().unwrap(), 0, Side::Cluster);
        assert!(
            kinds(&p, &AnalyzeConfig::for_side(Side::Cluster)).contains(&CheckKind::IopmpDenied)
        );
    }

    #[test]
    fn host_map_violation_is_flagged() {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 0x4000_0000); // between PLIC and DRAM: unmapped
        a.ld(Reg::T1, Reg::T0, 0);
        a.ebreak();
        let p = GuestProgram::from_words("unmapped", &a.assemble().unwrap(), 0, Side::Host);
        assert!(kinds(&p, &AnalyzeConfig::for_side(Side::Host)).contains(&CheckKind::MemMap));
    }

    #[test]
    fn misaligned_amo_is_flagged() {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, (hulkv::map::DRAM_BASE + 2) as i64);
        a.amoadd_w(Reg::T1, Reg::T2, Reg::T0);
        a.ebreak();
        let p = GuestProgram::from_words("amo", &a.assemble().unwrap(), 0, Side::Host);
        assert!(kinds(&p, &AnalyzeConfig::for_side(Side::Host)).contains(&CheckKind::Misaligned));
    }

    #[test]
    fn runtime_argument_addresses_do_not_false_positive() {
        let mut a = Asm::new(Xlen::Rv32);
        a.lw(Reg::T0, Reg::A0, 0); // a0 is a kernel argument: top
        a.sw(Reg::T0, Reg::A1, 0);
        a.ebreak();
        let p = GuestProgram::from_words("args", &a.assemble().unwrap(), 0, Side::Cluster);
        assert!(kinds(&p, &AnalyzeConfig::for_side(Side::Cluster)).is_empty());
    }

    #[test]
    fn hw_loop_branch_out_is_flagged() {
        let mut a = Asm::new(Xlen::Rv32);
        a.lp_counti(0, 4);
        let (ls, le) = (a.label(), a.label());
        a.lp_starti(0, ls);
        a.lp_endi(0, le);
        a.bind(ls);
        a.addi(Reg::T0, Reg::T0, 1);
        a.bnez(Reg::T0, le); // branch out of the body
        a.addi(Reg::T1, Reg::T1, 1);
        a.bind(le);
        a.ebreak();
        let p = GuestProgram::from_words("loop", &a.assemble().unwrap(), 0, Side::Cluster);
        assert!(kinds(&p, &AnalyzeConfig::default()).contains(&CheckKind::HwLoopBranch));
    }

    #[test]
    fn hw_loop_setup_in_body_is_flagged() {
        let mut a = Asm::new(Xlen::Rv32);
        a.lp_counti(0, 4);
        let (ls, le) = (a.label(), a.label());
        a.lp_starti(0, ls);
        a.lp_endi(0, le);
        a.bind(ls);
        a.lp_counti(0, 2); // rewrites the armed count inside the body
        a.addi(Reg::T0, Reg::T0, 1);
        a.bind(le);
        a.ebreak();
        let p = GuestProgram::from_words("loop", &a.assemble().unwrap(), 0, Side::Cluster);
        assert!(kinds(&p, &AnalyzeConfig::default()).contains(&CheckKind::HwLoopSetupInBody));
    }

    #[test]
    fn csr_misuse_is_flagged() {
        let mut a = Asm::new(Xlen::Rv64);
        a.csrw(addr::CYCLE, Reg::T0); // read-only
        a.csrr(Reg::T1, 0x7C0); // custom CSR, not implemented
        a.ebreak();
        let p = GuestProgram::from_words("csr", &a.assemble().unwrap(), 0, Side::Host);
        let ks = kinds(&p, &AnalyzeConfig::default());
        assert!(ks.contains(&CheckKind::CsrReadOnly));
        assert!(ks.contains(&CheckKind::CsrUnknown));
    }

    #[test]
    fn hpm_csrs_are_known_and_user_shadows_are_read_only() {
        // The full HPM group is implemented: selecting events, zeroing
        // machine counters and reading the user shadows must not trip
        // `CsrUnknown`.
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 7);
        a.csrw(addr::MHPMEVENT3, Reg::T0);
        a.csrw(addr::MHPMCOUNTER3 + addr::HPM_COUNTERS - 1, Reg::Zero);
        a.csrw(addr::MCOUNTINHIBIT, Reg::Zero);
        a.csrw(addr::MCOUNTEREN, Reg::T0);
        a.csrr(Reg::T1, addr::MHPMCOUNTER3);
        a.csrr(Reg::T2, addr::HPMCOUNTER3);
        a.ebreak();
        let p = GuestProgram::from_words("hpm-ok", &a.assemble().unwrap(), 0, Side::Host);
        let ks = kinds(&p, &AnalyzeConfig::default());
        assert!(!ks.contains(&CheckKind::CsrUnknown), "got {ks:?}");
        assert!(!ks.contains(&CheckKind::CsrReadOnly), "got {ks:?}");

        // The user shadows sit in the architecturally read-only quadrant:
        // writing one is still flagged.
        let mut a = Asm::new(Xlen::Rv64);
        a.csrw(addr::HPMCOUNTER3, Reg::T0);
        a.ebreak();
        let p = GuestProgram::from_words("hpm-ro", &a.assemble().unwrap(), 0, Side::Host);
        let ks = kinds(&p, &AnalyzeConfig::default());
        assert!(ks.contains(&CheckKind::CsrReadOnly));
        assert!(!ks.contains(&CheckKind::CsrUnknown));
    }

    #[test]
    fn smc_without_fence_is_flagged() {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 0x100); // base of this image
        a.li(Reg::T1, 0x13); // nop encoding
        a.sw(Reg::T1, Reg::T0, 16); // patch an upcoming instruction
        a.addi(Reg::T2, Reg::T2, 1);
        a.addi(Reg::T2, Reg::T2, 2);
        a.ebreak();
        let p = GuestProgram::from_words("smc", &a.assemble().unwrap(), 0x100, Side::Host);
        assert!(kinds(&p, &AnalyzeConfig::default()).contains(&CheckKind::SmcNoFence));
    }

    #[test]
    fn smc_with_fence_is_clean() {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 0x100);
        a.li(Reg::T1, 0x13);
        a.sw(Reg::T1, Reg::T0, 16);
        a.fence_i();
        a.addi(Reg::T2, Reg::T2, 1);
        a.addi(Reg::T2, Reg::T2, 2);
        a.ebreak();
        let p = GuestProgram::from_words("smc", &a.assemble().unwrap(), 0x100, Side::Host);
        assert!(!kinds(&p, &AnalyzeConfig::default()).contains(&CheckKind::SmcNoFence));
    }
}
