//! A constant/alignment/range abstract interpreter over the integer
//! register file.
//!
//! The domain is a strided interval: `Abs { lo, hi, stride }` denotes the
//! set `{ lo, lo+stride, …, hi }` (unsigned, non-wrapping; `stride == 0`
//! denotes the singleton `{ lo }`). That is exactly the information the
//! checks need — constants (`lo == hi`), alignment (`stride` and
//! `lo % size`), and the conservative footprint `[lo, hi + size)` of a
//! memory access.
//!
//! The fixpoint is a worklist over the recovered CFG with per-PC join
//! counters: after [`WIDEN_AFTER`] joins at the same PC a register is
//! widened straight to top, and a hard iteration cap (proportional to the
//! instruction count) bails the whole analysis out to top — so the
//! interpreter terminates on any input, including adversarial
//! fuzzer-generated CFGs.

use crate::cfg::Cfg;
use crate::GuestProgram;
use hulkv_rv::inst::{AluOp, Inst, MulDivOp, Reg};
use hulkv_rv::Xlen;
use std::collections::{BTreeMap, VecDeque};

/// Joins before a register is widened to top at a given PC.
pub const WIDEN_AFTER: u32 = 8;

/// A strided unsigned interval: the values `{ lo, lo+stride, …, hi }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abs {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
    /// Common difference; `0` means the singleton `{ lo }`.
    pub stride: u64,
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Abs {
    /// The full value set of the given register width.
    pub fn top(xlen: Xlen) -> Abs {
        Abs {
            lo: 0,
            hi: match xlen {
                Xlen::Rv32 => u64::from(u32::MAX),
                Xlen::Rv64 => u64::MAX,
            },
            stride: 1,
        }
    }

    /// A known constant.
    pub fn constant(v: u64) -> Abs {
        Abs {
            lo: v,
            hi: v,
            stride: 0,
        }
    }

    /// Whether this is a known constant.
    pub fn as_const(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether this is the top element for `xlen`.
    pub fn is_top(&self, xlen: Xlen) -> bool {
        *self == Abs::top(xlen)
    }

    /// Least upper bound.
    pub fn join(self, other: Abs) -> Abs {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let stride = gcd(gcd(self.stride, other.stride), self.lo.abs_diff(other.lo));
        Abs { lo, hi, stride }
    }

    /// Abstract wrapping addition of a constant.
    fn add_const(self, c: u64, xlen: Xlen) -> Abs {
        let lo = self.lo.wrapping_add(c);
        let hi = self.hi.wrapping_add(c);
        // Give up on wrap-around rather than modeling circular intervals.
        if hi < lo || masked(hi, xlen) != hi || masked(lo, xlen) != lo {
            return Abs::top(xlen);
        }
        Abs { lo, hi, ..self }
    }

    /// Abstract addition.
    fn add(self, other: Abs, xlen: Xlen) -> Abs {
        if let Some(c) = other.as_const() {
            return self.add_const(c, xlen);
        }
        if let Some(c) = self.as_const() {
            return other.add_const(c, xlen);
        }
        let (lo, o1) = self.lo.overflowing_add(other.lo);
        let (hi, o2) = self.hi.overflowing_add(other.hi);
        if o1 || o2 || masked(hi, xlen) != hi {
            return Abs::top(xlen);
        }
        Abs {
            lo,
            hi,
            stride: gcd(self.stride, other.stride),
        }
    }

    /// Abstract left shift by a known amount.
    fn shl_const(self, sh: u32, xlen: Xlen) -> Abs {
        let bits = xlen.bits();
        let sh = sh % bits;
        if sh == 0 {
            return self;
        }
        if self.hi.leading_zeros() < sh + (64 - bits) {
            return Abs::top(xlen);
        }
        Abs {
            lo: self.lo << sh,
            hi: self.hi << sh,
            stride: if self.stride == 0 {
                0
            } else {
                self.stride << sh
            },
        }
    }

    /// Abstract multiplication by a known constant.
    fn mul_const(self, c: u64, xlen: Xlen) -> Abs {
        if c == 0 {
            return Abs::constant(0);
        }
        let (hi, o) = self.hi.overflowing_mul(c);
        if o || masked(hi, xlen) != hi {
            return Abs::top(xlen);
        }
        Abs {
            lo: self.lo * c,
            hi,
            stride: self.stride.saturating_mul(c),
        }
    }
}

fn masked(v: u64, xlen: Xlen) -> u64 {
    match xlen {
        Xlen::Rv32 => v & u64::from(u32::MAX),
        Xlen::Rv64 => v,
    }
}

/// Abstract register file: one [`Abs`] per integer register (`x0` is
/// pinned to the constant zero).
pub type AbsRegs = [Abs; 32];

/// Fixpoint result: the abstract state *before* each reachable
/// instruction, plus whether the iteration budget was exhausted.
#[derive(Debug)]
pub struct AbsintResult {
    /// Pre-state per PC.
    pub states: BTreeMap<u64, AbsRegs>,
    /// True when the hard iteration cap fired and every state was widened
    /// to top (reported as [`crate::CheckKind::AnalysisBudget`]).
    pub budget_exhausted: bool,
}

impl AbsintResult {
    /// Evaluates the address of a `rs1 + offset` access at `pc`.
    pub fn addr_at(&self, pc: u64, rs1: Reg, offset: i64, xlen: Xlen) -> Option<Abs> {
        let regs = self.states.get(&pc)?;
        let base = regs[rs1.index() as usize];
        Some(base.add_const(masked(offset as u64, xlen), xlen))
    }
}

fn entry_state(xlen: Xlen) -> AbsRegs {
    let mut regs = [Abs::top(xlen); 32];
    regs[0] = Abs::constant(0);
    regs
}

/// One instruction's abstract transfer function.
fn transfer(inst: &Inst, pc: u64, len: u64, regs: &mut AbsRegs, xlen: Xlen) {
    let top = Abs::top(xlen);
    let set = |regs: &mut AbsRegs, rd: Reg, v: Abs| {
        if rd != Reg::Zero {
            regs[rd.index() as usize] = Abs {
                lo: masked(v.lo, xlen),
                hi: masked(v.hi, xlen),
                stride: v.stride,
            };
        }
    };
    let get = |regs: &AbsRegs, r: Reg| regs[r.index() as usize];
    match *inst {
        Inst::Lui { rd, imm } => set(regs, rd, Abs::constant(masked((imm << 12) as u64, xlen))),
        Inst::Auipc { rd, imm } => set(
            regs,
            rd,
            Abs::constant(masked(pc.wrapping_add((imm << 12) as u64), xlen)),
        ),
        Inst::Jal { rd, .. } | Inst::Jalr { rd, .. } => {
            set(regs, rd, Abs::constant(masked(pc + len, xlen)));
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            let a = get(regs, rs1);
            let v = match op {
                AluOp::Add => a.add_const(masked(imm as u64, xlen), xlen),
                AluOp::Sll => a.shl_const(imm as u32, xlen),
                AluOp::And | AluOp::Or | AluOp::Xor => match (a.as_const(), op) {
                    (Some(c), AluOp::And) => Abs::constant(c & masked(imm as u64, xlen)),
                    (Some(c), AluOp::Or) => Abs::constant(c | masked(imm as u64, xlen)),
                    (Some(c), AluOp::Xor) => Abs::constant(c ^ masked(imm as u64, xlen)),
                    _ => top,
                },
                AluOp::Srl => match a.as_const() {
                    Some(c) => Abs::constant(c >> (imm as u32 % xlen.bits())),
                    None => top,
                },
                _ => top,
            };
            set(regs, rd, v);
        }
        Inst::OpImm32 { op, rd, rs1, imm } => {
            // addiw & friends: compute in 32 bits, sign-extend. Keep only
            // results that stay in the non-negative 32-bit range, where
            // sign extension is the identity.
            let a = get(regs, rs1);
            let v = match (op, a.as_const()) {
                (AluOp::Add, Some(c)) => {
                    let r = (c as u32).wrapping_add(imm as u32);
                    if r <= i32::MAX as u32 {
                        Abs::constant(u64::from(r))
                    } else {
                        top
                    }
                }
                _ => top,
            };
            set(regs, rd, v);
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let a = get(regs, rs1);
            let b = get(regs, rs2);
            let v = match op {
                AluOp::Add => a.add(b, xlen),
                AluOp::Sub => match b.as_const() {
                    Some(c) if a.lo >= c => Abs {
                        lo: a.lo - c,
                        hi: a.hi - c,
                        stride: a.stride,
                    },
                    _ => top,
                },
                AluOp::Sll => match b.as_const() {
                    Some(c) => a.shl_const(c as u32, xlen),
                    None => top,
                },
                _ => top,
            };
            set(regs, rd, v);
        }
        Inst::MulDiv {
            op: MulDivOp::Mul,
            rd,
            rs1,
            rs2,
        } => {
            let a = get(regs, rs1);
            let b = get(regs, rs2);
            let v = match (a.as_const(), b.as_const()) {
                (_, Some(c)) => a.mul_const(c, xlen),
                (Some(c), _) => b.mul_const(c, xlen),
                _ => top,
            };
            set(regs, rd, v);
        }
        Inst::Load { rd, .. } | Inst::LoadReserved { rd, .. } => set(regs, rd, top),
        Inst::LoadPost {
            rd, rs1, offset, ..
        } => {
            set(regs, rd, top);
            let v = get(regs, rs1).add_const(masked(offset as u64, xlen), xlen);
            set(regs, rs1, v);
        }
        Inst::StorePost { rs1, offset, .. } => {
            let v = get(regs, rs1).add_const(masked(offset as u64, xlen), xlen);
            set(regs, rs1, v);
        }
        Inst::StoreConditional { rd, .. } | Inst::Amo { rd, .. } => set(regs, rd, top),
        Inst::Csr { rd, .. } => set(regs, rd, top),
        Inst::FpToInt { rd, .. } | Inst::FpMvToInt { rd, .. } | Inst::FpCmp { rd, .. } => {
            set(regs, rd, top)
        }
        Inst::Op32 { rd, .. }
        | Inst::MulDiv32 { rd, .. }
        | Inst::MulDiv { rd, .. }
        | Inst::Mac { rd, .. }
        | Inst::PulpAlu { rd, .. }
        | Inst::Simd { rd, .. }
        | Inst::SimdFp { rd, .. } => set(regs, rd, top),
        // Branches, stores, fences, hw-loop setup, FP-only ops: no integer
        // register is written.
        _ => {}
    }
}

/// Runs the fixpoint over a recovered CFG.
pub fn interpret(prog: &GuestProgram, cfg: &Cfg) -> AbsintResult {
    let xlen = prog.side.xlen();
    let mut states: BTreeMap<u64, AbsRegs> = BTreeMap::new();
    let mut join_counts: BTreeMap<u64, u32> = BTreeMap::new();
    let mut work: VecDeque<u64> = VecDeque::new();
    if cfg.reachable(prog.base) {
        states.insert(prog.base, entry_state(xlen));
        work.push_back(prog.base);
    }
    let budget = cfg.insts.len().saturating_mul(64).max(1024);
    let mut iterations = 0usize;
    let mut budget_exhausted = false;

    while let Some(pc) = work.pop_front() {
        iterations += 1;
        if iterations > budget {
            budget_exhausted = true;
            break;
        }
        let Some(ci) = cfg.insts.get(&pc) else {
            continue;
        };
        let mut regs = states[&pc];
        if let Some(inst) = &ci.inst {
            transfer(inst, pc, u64::from(ci.len), &mut regs, xlen);
        }
        for &succ in cfg.succs.get(&pc).into_iter().flatten() {
            let changed = match states.get_mut(&succ) {
                None => {
                    states.insert(succ, regs);
                    true
                }
                Some(old) => {
                    let count = join_counts.entry(succ).or_insert(0);
                    let mut joined = *old;
                    let mut any = false;
                    for i in 1..32 {
                        let j = if *count >= WIDEN_AFTER && old[i] != regs[i] {
                            Abs::top(xlen)
                        } else {
                            old[i].join(regs[i])
                        };
                        if j != old[i] {
                            joined[i] = j;
                            any = true;
                        }
                    }
                    if any {
                        *count += 1;
                        *old = joined;
                    }
                    any
                }
            };
            if changed {
                work.push_back(succ);
            }
        }
    }

    if budget_exhausted {
        let top_state = entry_state(xlen);
        for s in states.values_mut() {
            *s = top_state;
        }
    }
    AbsintResult {
        states,
        budget_exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::recover;
    use crate::Side;
    use hulkv_rv::{Asm, Reg, Xlen};

    #[test]
    fn join_and_stride() {
        let a = Abs::constant(4).join(Abs::constant(12));
        assert_eq!(
            a,
            Abs {
                lo: 4,
                hi: 12,
                stride: 8
            }
        );
        let b = a.join(Abs::constant(8));
        assert_eq!(b.stride, 4);
        assert!(Abs::top(Xlen::Rv32).join(a).is_top(Xlen::Rv32));
    }

    #[test]
    fn li_materializes_constants() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, 0x1000_0004);
        a.lw(Reg::T1, Reg::T0, 8);
        a.ebreak();
        let p = GuestProgram::from_words("t", &a.assemble().unwrap(), 0, Side::Cluster);
        let cfg = recover(&p);
        let r = interpret(&p, &cfg);
        let (&load_pc, _) = cfg
            .insts
            .iter()
            .find(|(_, i)| matches!(i.inst, Some(Inst::Load { .. })))
            .unwrap();
        let addr = r.addr_at(load_pc, Reg::T0, 8, Xlen::Rv32).unwrap();
        assert_eq!(addr.as_const(), Some(0x1000_000C));
    }

    #[test]
    fn loop_counter_widens_not_diverges() {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 0);
        let top = a.label();
        a.bind(top);
        a.addi(Reg::T0, Reg::T0, 8);
        a.bnez(Reg::T0, top);
        a.ebreak();
        let p = GuestProgram::from_words("t", &a.assemble().unwrap(), 0, Side::Host);
        let cfg = recover(&p);
        let r = interpret(&p, &cfg);
        assert!(!r.budget_exhausted);
    }

    #[test]
    fn post_increment_tracks_base() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, 0x1000_0000);
        a.p_lw_post(Reg::T1, Reg::T0, 4);
        a.p_lw_post(Reg::T2, Reg::T0, 4);
        a.ebreak();
        let p = GuestProgram::from_words("t", &a.assemble().unwrap(), 0, Side::Cluster);
        let cfg = recover(&p);
        let r = interpret(&p, &cfg);
        let (&second, _) = cfg
            .insts
            .iter()
            .filter(|(_, i)| matches!(i.inst, Some(Inst::LoadPost { .. })))
            .nth(1)
            .unwrap();
        let addr = r.addr_at(second, Reg::T0, 0, Xlen::Rv32).unwrap();
        assert_eq!(addr.as_const(), Some(0x1000_0004));
    }
}
