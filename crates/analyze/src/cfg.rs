//! Control-flow recovery over a raw guest image.
//!
//! The graph is instruction-granular (the programs this repository lints
//! are at most a few kB, so basic-block compression buys nothing) and
//! RVC-aware: decoding starts from the entry point and every
//! direct-branch target, so parcels are resolved at the offsets execution
//! can actually reach — including targets that land in the middle of what
//! a linear sweep would call a 32-bit instruction. Each visited PC is
//! decoded exactly once, which bounds the whole recovery by the image
//! size and makes it terminate on arbitrary (fuzzer-hostile) bytes.

use crate::GuestProgram;
use hulkv_rv::fetch_parcel;
use hulkv_rv::inst::{HwLoopOp, Inst, Reg};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One decoded (or undecodable) instruction slot.
#[derive(Debug, Clone)]
pub struct CfgInst {
    /// Raw parcel bits (16-bit parcels zero-extended).
    pub raw: u32,
    /// Parcel length in bytes (2 or 4).
    pub len: u8,
    /// The decoded instruction, `None` when undecodable on this side.
    pub inst: Option<Inst>,
}

/// A hardware-loop body `[start, end)` discovered from `lp.starti` /
/// `lp.endi` setup pairs (both are PC-relative immediates, so the bounds
/// are static by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwLoopRegion {
    /// Loop slot (0 or 1).
    pub idx: u8,
    /// PC of the setup instruction completing the pair.
    pub setup_pc: u64,
    /// First instruction of the body.
    pub start: u64,
    /// Exclusive end: the back-edge fires when the next PC equals this.
    pub end: u64,
}

/// The recovered control-flow graph.
#[derive(Debug, Default)]
pub struct Cfg {
    /// Decoded instructions reachable from the entry, by PC.
    pub insts: BTreeMap<u64, CfgInst>,
    /// Successor edges (fallthrough, branch, call, hw-loop back-edge).
    pub succs: BTreeMap<u64, Vec<u64>>,
    /// PCs of indirect jumps whose target set is unknown (`jalr` through
    /// a register other than a plain return).
    pub indirect: BTreeSet<u64>,
    /// Whether the program contains a computed goto (`jalr zero` through
    /// a non-`ra` register): when true, reachability is not closed and
    /// unreachable-code findings are suppressed.
    pub has_computed_goto: bool,
    /// PCs of direct control transfers whose target leaves the image.
    pub out_of_image: BTreeSet<u64>,
    /// Hardware-loop regions in discovery order.
    pub loops: Vec<HwLoopRegion>,
}

impl Cfg {
    /// Whether `pc` was reached by the recovery sweep.
    pub fn reachable(&self, pc: u64) -> bool {
        self.insts.contains_key(&pc)
    }
}

fn in_image(prog: &GuestProgram, pc: u64) -> bool {
    pc >= prog.base && pc < prog.end()
}

/// Recovers the CFG of a guest image, starting at its base address.
pub fn recover(prog: &GuestProgram) -> Cfg {
    let mut cfg = Cfg::default();
    let xlen = prog.side.xlen();
    let xpulp = prog.side.xpulp();
    let mut work: VecDeque<u64> = VecDeque::from([prog.base]);
    // Per-slot pending lp.starti/lp.endi immediates, resolved to absolute
    // addresses at the PC of the setup instruction.
    let mut loop_setup: [(Option<u64>, Option<u64>); 2] = Default::default();

    while let Some(pc) = work.pop_front() {
        if cfg.insts.contains_key(&pc) || !in_image(prog, pc) {
            continue;
        }
        let offset = (pc - prog.base) as usize;
        let Some(parcel) = fetch_parcel(&prog.bytes, offset, xlen, xpulp) else {
            // Fewer than two bytes left: treat as an undecodable 2-byte
            // slot so the finding points at a real PC.
            cfg.insts.insert(
                pc,
                CfgInst {
                    raw: *prog.bytes.get(offset).unwrap_or(&0) as u32,
                    len: 2,
                    inst: None,
                },
            );
            continue;
        };
        let len = parcel.len as u64;
        let next = pc.wrapping_add(len);
        let mut succs: Vec<u64> = Vec::new();
        match parcel.inst {
            None => {
                // Undecodable: execution traps here; no successors.
            }
            Some(inst) => match inst {
                Inst::Jal { rd, offset } => {
                    let target = pc.wrapping_add(offset as u64);
                    if in_image(prog, target) {
                        succs.push(target);
                    } else {
                        cfg.out_of_image.insert(pc);
                    }
                    if rd != Reg::Zero {
                        // A call: model the eventual return as fallthrough.
                        succs.push(next);
                    }
                }
                Inst::Jalr { rd, rs1, .. } => {
                    if rd == Reg::Zero && rs1 != Reg::Ra {
                        cfg.has_computed_goto = true;
                        cfg.indirect.insert(pc);
                    } else if rd != Reg::Zero {
                        // Indirect call: returns to the fallthrough.
                        cfg.indirect.insert(pc);
                        succs.push(next);
                    }
                    // `jalr zero, ra` (plain return) transfers to a call
                    // site's fallthrough, which the Jal edge already covers.
                }
                Inst::Branch { offset, .. } => {
                    let target = pc.wrapping_add(offset as u64);
                    if in_image(prog, target) {
                        succs.push(target);
                    } else {
                        cfg.out_of_image.insert(pc);
                    }
                    succs.push(next);
                }
                Inst::Ebreak | Inst::Mret | Inst::Sret => {
                    // Halt convention / trap returns: terminal here.
                }
                Inst::HwLoop {
                    op,
                    loop_idx,
                    value,
                    ..
                } => {
                    let slot = &mut loop_setup[(loop_idx & 1) as usize];
                    match op {
                        HwLoopOp::Starti => slot.0 = Some(pc.wrapping_add(value as u64)),
                        HwLoopOp::Endi => slot.1 = Some(pc.wrapping_add(value as u64)),
                        HwLoopOp::Count | HwLoopOp::Counti => {}
                    }
                    if let (Some(start), Some(end)) = *slot {
                        if !cfg
                            .loops
                            .iter()
                            .any(|l| l.idx == loop_idx & 1 && l.start == start && l.end == end)
                        {
                            cfg.loops.push(HwLoopRegion {
                                idx: loop_idx & 1,
                                setup_pc: pc,
                                start,
                                end,
                            });
                        }
                    }
                    succs.push(next);
                }
                _ => {
                    succs.push(next);
                }
            },
        }
        cfg.insts.insert(
            pc,
            CfgInst {
                raw: parcel.raw,
                len: parcel.len,
                inst: parcel.inst,
            },
        );
        for &s in &succs {
            work.push_back(s);
        }
        cfg.succs.insert(pc, succs);
    }

    add_hw_loop_back_edges(prog, &mut cfg);
    cfg
}

/// The model's back-edge fires on the instruction whose *next* PC equals
/// a loop's `end` (unless that instruction itself transferred control),
/// so add `body-last → start` edges and sweep the bodies into the graph.
fn add_hw_loop_back_edges(prog: &GuestProgram, cfg: &mut Cfg) {
    let loops = cfg.loops.clone();
    for l in &loops {
        if !in_image(prog, l.start) || l.end <= l.start {
            continue;
        }
        // Make sure the body itself is decoded even if the sweep has not
        // walked into it yet (the setup precedes the body textually).
        let mut pc = l.start;
        let xlen = prog.side.xlen();
        let xpulp = prog.side.xpulp();
        while in_image(prog, pc) && pc < l.end {
            let offset = (pc - prog.base) as usize;
            let Some(parcel) = fetch_parcel(&prog.bytes, offset, xlen, xpulp) else {
                break;
            };
            let len = parcel.len as u64;
            let is_last = pc.wrapping_add(len) == l.end;
            if let std::collections::btree_map::Entry::Vacant(slot) = cfg.insts.entry(pc) {
                slot.insert(CfgInst {
                    raw: parcel.raw,
                    len: parcel.len,
                    inst: parcel.inst,
                });
                cfg.succs
                    .insert(pc, if is_last { vec![] } else { vec![pc + len] });
            }
            if is_last {
                let entry = cfg.succs.entry(pc).or_default();
                if !entry.contains(&l.start) {
                    entry.push(l.start);
                }
                break;
            }
            pc += len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Side;
    use hulkv_rv::{Asm, Reg, Xlen};

    fn prog(words: &[u32], side: Side) -> GuestProgram {
        GuestProgram::from_words("t", words, 0x100, side)
    }

    #[test]
    fn straight_line_with_branch() {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 3);
        let top = a.label();
        a.bind(top);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        let p = prog(&a.assemble().unwrap(), Side::Host);
        let cfg = recover(&p);
        assert!(cfg.insts.len() >= 4);
        // The branch has two successors: the loop top and the fallthrough.
        let branch_pc = cfg
            .insts
            .iter()
            .find(|(_, i)| matches!(i.inst, Some(Inst::Branch { .. })))
            .map(|(&pc, _)| pc)
            .unwrap();
        assert_eq!(cfg.succs[&branch_pc].len(), 2);
        assert!(cfg.out_of_image.is_empty());
        assert!(!cfg.has_computed_goto);
    }

    #[test]
    fn hw_loop_region_and_back_edge() {
        let mut a = Asm::new(Xlen::Rv32);
        a.lp_counti(0, 4);
        let (ls, le) = (a.label(), a.label());
        a.lp_starti(0, ls);
        a.lp_endi(0, le);
        a.bind(ls);
        a.addi(Reg::T0, Reg::T0, 1);
        a.bind(le);
        a.ebreak();
        let p = prog(&a.assemble().unwrap(), Side::Cluster);
        let cfg = recover(&p);
        assert_eq!(cfg.loops.len(), 1);
        let l = cfg.loops[0];
        assert!(l.end > l.start);
        // The last body instruction gets a back-edge to the start.
        let last = cfg
            .insts
            .range(l.start..l.end)
            .next_back()
            .map(|(&pc, _)| pc)
            .unwrap();
        assert!(cfg.succs[&last].contains(&l.start));
    }

    #[test]
    fn terminates_on_garbage() {
        let bytes: Vec<u32> = (0..64).map(|i| 0xDEAD_0000 ^ (i * 0x1357)).collect();
        let p = prog(&bytes, Side::Cluster);
        let cfg = recover(&p);
        assert!(!cfg.insts.is_empty());
    }

    #[test]
    fn truncated_tail_parcel() {
        // A 32-bit opcode low half with no upper half in the image.
        let mut p = prog(&[], Side::Host);
        p.bytes = vec![0x03, 0x00, 0x00];
        let cfg = recover(&p);
        assert!(cfg.insts[&0x100].inst.is_none());
    }
}
