//! Dynamic confirmation of static findings.
//!
//! Static findings are predictions; the simulator can test them. This
//! module executes a flagged program on a real [`hulkv::HulkV`] instance
//! with the `protect` trace category enabled and matches the recorded
//! [`TraceEvent`]s back against the report:
//!
//! * a [`CheckKind::Misaligned`] finding is confirmed by a `misaligned`
//!   event at the *same PC* the analyzer flagged;
//! * a [`CheckKind::IopmpDenied`] finding is confirmed by an `iopmp_deny`
//!   event from the cluster's IOPMP port;
//! * a [`CheckKind::MemMap`] finding is confirmed when the run faults
//!   (the host bus has no window to deny from, it just errors).
//!
//! Anything the analyzer flagged on a path execution never took stays
//! `unconfirmed` — that is a property of the chosen inputs, not a
//! refutation — and classes with no runtime signal (e.g. hardware-loop
//! shape warnings) are listed as `unchecked`.

use crate::checks::CheckKind;
use crate::report::Report;
use crate::{GuestProgram, Side};
use hulkv::{map, HulkV, SocConfig};
use hulkv_sim::{category, SharedTracer, TraceEvent, Tracer};
use std::collections::BTreeSet;

/// Outcome of one confirmation run.
#[derive(Debug, Default)]
pub struct DynamicOutcome {
    /// Finding classes with matching runtime evidence.
    pub confirmed: Vec<CheckKind>,
    /// Classes with a runtime signal that produced no evidence on this
    /// run (execution may simply not have reached the flagged path).
    pub unconfirmed: Vec<CheckKind>,
    /// Classes with no runtime signal to check against.
    pub unchecked: Vec<CheckKind>,
    /// Execution error, if the run faulted (often the violation itself).
    pub run_error: Option<String>,
}

/// Whether a class has a runtime signal this harness can observe.
fn has_dynamic_signal(kind: CheckKind) -> bool {
    matches!(
        kind,
        CheckKind::Misaligned | CheckKind::IopmpDenied | CheckKind::MemMap
    )
}

fn words_of(prog: &GuestProgram) -> Vec<u32> {
    prog.bytes
        .chunks(4)
        .map(|c| {
            let mut w = [0u8; 4];
            w[..c.len()].copy_from_slice(c);
            u32::from_le_bytes(w)
        })
        .collect()
}

fn run_host(prog: &GuestProgram, tracer: &SharedTracer, max_cycles: u64) -> Result<(), String> {
    if prog.base != map::HOST_CODE {
        return Err(format!(
            "host confirmation runs execute at {:#x}; program is based at {:#x}",
            map::HOST_CODE,
            prog.base
        ));
    }
    let mut soc = HulkV::new(SocConfig::default()).map_err(|e| e.to_string())?;
    soc.attach_tracer(tracer.clone());
    soc.run_host_program(&words_of(prog), |_| {}, max_cycles)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

fn run_cluster(prog: &GuestProgram, tracer: &SharedTracer, max_cycles: u64) -> Result<(), String> {
    let cfg = SocConfig::default();
    let l2_end = map::L2SPM_BASE + cfg.l2spm_bytes as u64;
    if prog.base < map::L2SPM_BASE || prog.end() > l2_end {
        return Err(format!(
            "cluster confirmation runs execute from the L2SPM [{:#x}, {l2_end:#x}); \
             program spans [{:#x}, {:#x})",
            map::L2SPM_BASE,
            prog.base,
            prog.end()
        ));
    }
    let mut soc = HulkV::new(cfg).map_err(|e| e.to_string())?;
    soc.attach_tracer(tracer.clone());
    soc.write_mem(prog.base, &prog.bytes)
        .map_err(|e| e.to_string())?;
    soc.cluster_mut()
        .run_team(prog.base, &[], 1, max_cycles)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Executes `prog` with protection tracing enabled and matches the
/// recorded events against `report`'s findings.
pub fn confirm(prog: &GuestProgram, report: &Report, max_cycles: u64) -> DynamicOutcome {
    let tracer = Tracer::shared(1 << 16);
    tracer.borrow_mut().enable(category::PROTECT);
    confirm_with_tracer(prog, report, max_cycles, &tracer)
}

/// Like [`confirm`], but records onto a caller-provided tracer, so a lint
/// campaign can accumulate every confirmation run into one exported
/// Chrome trace. Only events recorded *by this run* are matched against
/// the report — evidence from earlier programs on the same tracer never
/// cross-confirms. The caller must keep [`category::PROTECT`] enabled for
/// confirmation to see anything.
pub fn confirm_with_tracer(
    prog: &GuestProgram,
    report: &Report,
    max_cycles: u64,
    tracer: &SharedTracer,
) -> DynamicOutcome {
    let kinds: BTreeSet<CheckKind> = report.findings.iter().map(|f| f.kind).collect();
    let mut out = DynamicOutcome {
        unchecked: kinds
            .iter()
            .copied()
            .filter(|&k| !has_dynamic_signal(k))
            .collect(),
        ..DynamicOutcome::default()
    };
    let traceable: Vec<CheckKind> = kinds
        .into_iter()
        .filter(|&k| has_dynamic_signal(k))
        .collect();
    if traceable.is_empty() {
        return out;
    }

    let skip = tracer.borrow().events().count();
    out.run_error = match prog.side {
        Side::Host => run_host(prog, tracer, max_cycles),
        Side::Cluster => run_cluster(prog, tracer, max_cycles),
    }
    .err();

    let mut misaligned_pcs: BTreeSet<u64> = BTreeSet::new();
    let mut iopmp_denied = false;
    {
        let t = tracer.borrow();
        for rec in t.events().skip(skip) {
            match rec.event {
                TraceEvent::Misaligned { pc, .. } => {
                    misaligned_pcs.insert(pc);
                }
                TraceEvent::IopmpDeny { .. } => iopmp_denied = true,
                _ => {}
            }
        }
    }

    for k in traceable {
        let hit = match k {
            CheckKind::Misaligned => report
                .findings
                .iter()
                .any(|f| f.kind == k && misaligned_pcs.contains(&f.pc)),
            CheckKind::IopmpDenied => iopmp_denied,
            CheckKind::MemMap => out.run_error.is_some(),
            _ => false,
        };
        if hit {
            out.confirmed.push(k);
        } else {
            out.unconfirmed.push(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalyzeConfig};
    use hulkv_rv::{Asm, Reg, Xlen};

    #[test]
    fn misaligned_finding_confirmed_by_trace_event() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, (hulkv_cluster::TCDM_BASE + 2) as i64);
        a.lw(Reg::T1, Reg::T0, 0);
        a.ebreak();
        let prog = GuestProgram::from_words(
            "misaligned",
            &a.assemble().unwrap(),
            map::L2SPM_BASE,
            Side::Cluster,
        );
        let report = analyze(&prog, &AnalyzeConfig::for_side(Side::Cluster));
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == CheckKind::Misaligned));
        let out = confirm(&prog, &report, 100_000);
        assert!(
            out.confirmed.contains(&CheckKind::Misaligned),
            "expected dynamic confirmation, got {out:?}"
        );
    }

    #[test]
    fn iopmp_denied_finding_confirmed_by_trace_event() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, hulkv::map::PERIPH_BASE as i64);
        a.sw(Reg::T1, Reg::T0, 0);
        a.ebreak();
        let prog = GuestProgram::from_words(
            "denied",
            &a.assemble().unwrap(),
            map::L2SPM_BASE,
            Side::Cluster,
        );
        let report = analyze(&prog, &AnalyzeConfig::for_side(Side::Cluster));
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == CheckKind::IopmpDenied));
        let out = confirm(&prog, &report, 100_000);
        assert!(
            out.confirmed.contains(&CheckKind::IopmpDenied),
            "expected dynamic confirmation, got {out:?}"
        );
        // The denial aborts the team run, which the outcome reports.
        assert!(out.run_error.is_some());
    }

    #[test]
    fn clean_program_has_nothing_to_confirm() {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, hulkv_cluster::TCDM_BASE as i64);
        a.sw(Reg::T1, Reg::T0, 0);
        a.ebreak();
        let prog = GuestProgram::from_words(
            "clean",
            &a.assemble().unwrap(),
            map::L2SPM_BASE,
            Side::Cluster,
        );
        let report = analyze(&prog, &AnalyzeConfig::for_side(Side::Cluster));
        let out = confirm(&prog, &report, 100_000);
        assert!(out.confirmed.is_empty() && out.unconfirmed.is_empty());
    }
}
