//! Report rendering and baseline diffing.
//!
//! A [`Report`] is the findings of one program; [`Baseline`] is the
//! committed per-`(program, check)` budget of *accepted* findings with a
//! one-line justification each. `hulkv-lint --ci` fails only when a
//! program exceeds its budget — new findings break the build, known ones
//! do not, and a baseline entry whose findings disappeared is reported so
//! the budget can be tightened.

use crate::checks::{Finding, Severity};
use hulkv_sim::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The findings of one analyzed program.
#[derive(Debug)]
pub struct Report {
    /// Program name (stable across runs; baseline key).
    pub program: String,
    /// Findings sorted by `(pc, kind)`.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Highest severity present, or `None` when clean.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("program", Json::from(self.program.as_str())),
            (
                "findings",
                Json::Arr(self.findings.iter().map(finding_json).collect()),
            ),
        ])
    }

    /// Renders the report as human-readable text, one line per finding.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}: {}: {:#010x}: {} [{}]  # {}",
                self.program,
                f.severity.name(),
                f.pc,
                f.kind.name(),
                f.disasm,
                f.message
            );
        }
        out
    }
}

fn finding_json(f: &Finding) -> Json {
    Json::obj([
        ("check", Json::from(f.kind.name())),
        ("severity", Json::from(f.severity.name())),
        ("pc", Json::from(f.pc)),
        ("disasm", Json::from(f.disasm.as_str())),
        ("message", Json::from(f.message.as_str())),
    ])
}

/// One accepted-findings budget: how many findings of one check one
/// program may produce, and why they are acceptable.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Accepted finding count.
    pub count: usize,
    /// One-line justification.
    pub why: String,
}

/// The committed baseline: accepted findings per `(program, check)`.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String), BaselineEntry>,
}

/// Result of diffing one run against the baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// `(program, check, found, accepted)` where found > accepted: these
    /// fail CI.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// `(program, check, found, accepted)` where found < accepted: the
    /// baseline is stale and can be tightened (does not fail CI).
    pub stale: Vec<(String, String, usize, usize)>,
}

impl Baseline {
    /// Parses a baseline from its JSON rendering.
    pub fn parse(text: &str) -> Result<Self, String> {
        let json = Json::parse(text)?;
        let arr = json
            .get("accepted")
            .and_then(Json::as_arr)
            .ok_or("baseline: missing `accepted` array")?;
        let mut entries = BTreeMap::new();
        for e in arr {
            let field = |k: &str| {
                e.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline entry: missing `{k}`"))
            };
            let program = field("program")?;
            let check = field("check")?;
            let count = e
                .get("count")
                .and_then(Json::as_f64)
                .ok_or("baseline entry: missing `count`")? as usize;
            let why = field("why")?;
            entries.insert((program, check), BaselineEntry { count, why });
        }
        Ok(Baseline { entries })
    }

    /// Number of accepted `(program, check)` budgets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline accepts nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes reports into baseline JSON, carrying over existing
    /// justifications and marking new entries for a human to fill in.
    pub fn from_reports(reports: &[Report], previous: &Baseline) -> String {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for r in reports {
            for f in &r.findings {
                *counts
                    .entry((r.program.clone(), f.kind.name().to_string()))
                    .or_default() += 1;
            }
        }
        let accepted: Vec<Json> = counts
            .iter()
            .map(|((program, check), &count)| {
                let why = previous
                    .entries
                    .get(&(program.clone(), check.clone()))
                    .map(|e| e.why.clone())
                    .unwrap_or_else(|| "TODO: justify".to_string());
                Json::obj([
                    ("program", Json::from(program.as_str())),
                    ("check", Json::from(check.as_str())),
                    ("count", Json::from(count as u64)),
                    ("why", Json::from(why.as_str())),
                ])
            })
            .collect();
        Json::obj([("accepted", Json::Arr(accepted))]).to_string()
    }

    /// Diffs reports against the accepted budgets.
    pub fn diff(&self, reports: &[Report]) -> BaselineDiff {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for r in reports {
            for f in &r.findings {
                *counts
                    .entry((r.program.clone(), f.kind.name().to_string()))
                    .or_default() += 1;
            }
        }
        let mut diff = BaselineDiff::default();
        for (key, &found) in &counts {
            let accepted = self.entries.get(key).map_or(0, |e| e.count);
            if found > accepted {
                diff.regressions
                    .push((key.0.clone(), key.1.clone(), found, accepted));
            }
        }
        for (key, entry) in &self.entries {
            let found = counts.get(key).copied().unwrap_or(0);
            if found < entry.count {
                diff.stale
                    .push((key.0.clone(), key.1.clone(), found, entry.count));
            }
        }
        diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::CheckKind;

    fn finding(kind: CheckKind, pc: u64) -> Finding {
        Finding {
            kind,
            severity: kind.severity(),
            pc,
            disasm: "nop".into(),
            message: "m".into(),
        }
    }

    fn report(name: &str, kinds: &[CheckKind]) -> Report {
        Report {
            program: name.into(),
            findings: kinds
                .iter()
                .enumerate()
                .map(|(i, &k)| finding(k, i as u64 * 4))
                .collect(),
        }
    }

    #[test]
    fn baseline_round_trip_and_diff() {
        let reports = [
            report("a", &[CheckKind::Misaligned, CheckKind::Misaligned]),
            report("b", &[CheckKind::CsrUnknown]),
        ];
        let text = Baseline::from_reports(&reports, &Baseline::default());
        let base = Baseline::parse(&text).unwrap();
        assert_eq!(base.len(), 2);
        // Exactly the baselined findings: clean diff.
        let d = base.diff(&reports);
        assert!(d.regressions.is_empty() && d.stale.is_empty());
        // One more misaligned finding in `a`: a regression.
        let worse = [
            report(
                "a",
                &[
                    CheckKind::Misaligned,
                    CheckKind::Misaligned,
                    CheckKind::Misaligned,
                ],
            ),
            report("b", &[CheckKind::CsrUnknown]),
        ];
        let d = base.diff(&worse);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].2, 3);
        // A finding class disappears: stale budget, not a failure.
        let better = [report("b", &[CheckKind::CsrUnknown])];
        let d = base.diff(&better);
        assert!(d.regressions.is_empty());
        assert_eq!(d.stale.len(), 1);
    }

    #[test]
    fn unbaselined_finding_regresses_against_empty_baseline() {
        let base = Baseline::default();
        let d = base.diff(&[report("x", &[CheckKind::MemMap])]);
        assert_eq!(d.regressions.len(), 1);
    }

    #[test]
    fn json_rendering_parses_back() {
        let r = report("p", &[CheckKind::HwLoopBranch]);
        let parsed = Json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(parsed.get("program").and_then(Json::as_str), Some("p"));
        let arr = parsed.get("findings").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("check").and_then(Json::as_str),
            Some("hwloop-branch")
        );
    }
}
