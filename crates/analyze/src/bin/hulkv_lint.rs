//! `hulkv-lint` — static analysis over every guest program this
//! repository generates.
//!
//! The input set is the Figure-6 kernel suite (host and cluster
//! flavours), the IoT benchmarks, the example programs, and any committed
//! fuzzer repros. Findings are diffed against a committed baseline
//! (`crates/analyze/lint_baseline.json`) so CI fails only on *new*
//! findings; intentional ones are accepted there with a one-line
//! justification each.
//!
//! Usage: `hulkv-lint [--ci] [--json] [--write-baseline] [--confirm]
//!                    [--baseline PATH] [--repro-dir DIR]
//!                    [--metrics-out PATH] [--trace-out PATH]`
//!
//! `--metrics-out` writes a schema-v2 `MetricsSnapshot` summarizing the
//! lint campaign (programs, findings, confirmation outcomes).
//! `--trace-out` (with `--confirm`) accumulates every confirmation run
//! onto one tracer and writes the combined Chrome trace.

use hulkv_analyze::{analyze, dynamic, AnalyzeConfig, Baseline, GuestProgram, Report, Side};
use hulkv_sim::{category, Json, MetricsSnapshot, Stats, Tracer};
use std::process::ExitCode;

struct Cli {
    ci: bool,
    json: bool,
    write_baseline: bool,
    confirm: bool,
    baseline: String,
    repro_dir: String,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        ci: false,
        json: false,
        write_baseline: false,
        confirm: false,
        baseline: concat!(env!("CARGO_MANIFEST_DIR"), "/lint_baseline.json").to_string(),
        repro_dir: concat!(env!("CARGO_MANIFEST_DIR"), "/../../fuzz/repros").to_string(),
        metrics_out: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ci" => cli.ci = true,
            "--json" => cli.json = true,
            "--write-baseline" => cli.write_baseline = true,
            "--confirm" => cli.confirm = true,
            "--baseline" => cli.baseline = args.next().ok_or("--baseline needs a value")?,
            "--repro-dir" => cli.repro_dir = args.next().ok_or("--repro-dir needs a value")?,
            "--metrics-out" => {
                cli.metrics_out = Some(args.next().ok_or("--metrics-out needs a value")?);
            }
            "--trace-out" => {
                cli.trace_out = Some(args.next().ok_or("--trace-out needs a value")?);
            }
            other => {
                return Err(format!(
                    "unknown argument {other}\nusage: hulkv-lint [--ci] [--json] \
                     [--write-baseline] [--confirm] [--baseline PATH] [--repro-dir DIR] \
                     [--metrics-out PATH] [--trace-out PATH]"
                ))
            }
        }
    }
    Ok(cli)
}

/// The addresses each flavour executes at on the SoC (see
/// `HulkV::run_host_program` and `HulkV::offload`).
fn host_base() -> u64 {
    hulkv::map::HOST_CODE
}
fn cluster_base() -> u64 {
    hulkv::map::L2SPM_BASE
}

fn catalog(repro_dir: &str) -> Vec<(GuestProgram, AnalyzeConfig)> {
    let mut programs = Vec::new();
    for p in hulkv_kernels::suite::lint_catalog()
        .into_iter()
        .chain(hulkv_kernels::iot::lint_catalog())
    {
        let (side, base) = if p.cluster {
            (Side::Cluster, cluster_base())
        } else {
            (Side::Host, host_base())
        };
        programs.push((
            GuestProgram::from_words(&p.name, &p.words, base, side),
            AnalyzeConfig::for_side(side),
        ));
    }
    for e in hulkv_examples::guest_programs() {
        use hulkv_examples::ExampleTarget;
        let (side, base, cfg) = match e.target {
            ExampleTarget::Host => (Side::Host, host_base(), AnalyzeConfig::for_side(Side::Host)),
            ExampleTarget::Cluster => (
                Side::Cluster,
                cluster_base(),
                AnalyzeConfig::for_side(Side::Cluster),
            ),
            // Raw-core programs have no SoC memory view; the ISA checks
            // (alignment, hw-loops, CSRs) still apply.
            ExampleTarget::Raw { base, xlen } => (
                match xlen {
                    hulkv_rv::Xlen::Rv64 => Side::Host,
                    hulkv_rv::Xlen::Rv32 => Side::Cluster,
                },
                base,
                AnalyzeConfig::default(),
            ),
        };
        programs.push((GuestProgram::from_words(e.name, &e.words, base, side), cfg));
    }
    for (_, prog) in repro_programs(repro_dir) {
        programs.push((prog, AnalyzeConfig::default()));
    }
    programs
}

/// Parses committed fuzzer repros (see `fuzz_iss::render_repro`): the
/// `isa:` / `entry:` headers plus the `  0x........: xxxxxxxx` disassembly
/// lines carry everything needed to re-analyze the program. A missing
/// directory is simply an empty set.
fn repro_programs(dir: &str) -> Vec<(String, GuestProgram)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.extension().and_then(|e| e.to_str()) != Some("txt") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Some((prog, name)) = parse_repro(&text, &path) else {
            eprintln!("hulkv-lint: skipping unparsable repro {}", path.display());
            continue;
        };
        out.push((name, prog));
    }
    out
}

fn parse_repro(text: &str, path: &std::path::Path) -> Option<(GuestProgram, String)> {
    let mut side = None;
    let mut entry = None;
    let mut words: Vec<u32> = Vec::new();
    for line in text.lines() {
        if let Some(isa) = line.strip_prefix("isa: ") {
            // RV32 fuzz ISAs enable Xpulp; RV64 ones do not.
            side = Some(if isa.trim().starts_with("Rv32") {
                Side::Cluster
            } else {
                Side::Host
            });
        } else if let Some(e) = line.strip_prefix("entry: ") {
            entry = u64::from_str_radix(e.trim().trim_start_matches("0x"), 16).ok();
        } else if let Some(rest) = line.strip_prefix("  0x") {
            // "  0x........: xxxxxxxx  <disasm>"
            let (_, tail) = rest.split_once(':')?;
            let word = tail.split_whitespace().next()?;
            words.push(u32::from_str_radix(word, 16).ok()?);
        }
    }
    let name = format!(
        "fuzz/{}",
        path.file_stem().and_then(|s| s.to_str()).unwrap_or("repro")
    );
    Some((
        GuestProgram::from_words(&name, &words, entry?, side?),
        name.clone(),
    ))
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let campaign_tracer = cli.trace_out.as_ref().map(|_| {
        let t = Tracer::shared(1 << 18);
        // PROTECT is what confirmation matches against; the rest makes
        // the exported trace useful on its own.
        t.borrow_mut().enable(category::ALL);
        t
    });
    let inputs = catalog(&cli.repro_dir);
    let mut reports: Vec<Report> = Vec::new();
    let mut confirm_lines: Vec<String> = Vec::new();
    let mut confirm_counts = (0u64, 0u64, 0u64); // confirmed, unconfirmed, unchecked
    for (prog, cfg) in &inputs {
        let report = analyze(prog, cfg);
        if cli.confirm
            && report
                .findings
                .iter()
                .any(|f| f.kind.trace_category().is_some())
        {
            let outcome = match &campaign_tracer {
                Some(t) => dynamic::confirm_with_tracer(prog, &report, 10_000_000, t),
                None => dynamic::confirm(prog, &report, 10_000_000),
            };
            confirm_counts.0 += outcome.confirmed.len() as u64;
            confirm_counts.1 += outcome.unconfirmed.len() as u64;
            confirm_counts.2 += outcome.unchecked.len() as u64;
            confirm_lines.push(format!(
                "{}: confirmed {:?}, unconfirmed {:?}{}",
                prog.name,
                outcome.confirmed,
                outcome.unconfirmed,
                outcome
                    .run_error
                    .as_deref()
                    .map(|e| format!(" (run: {e})"))
                    .unwrap_or_default()
            ));
        }
        reports.push(report);
    }
    let total: usize = reports.iter().map(|r| r.findings.len()).sum();

    if cli.write_baseline {
        let previous = std::fs::read_to_string(&cli.baseline)
            .ok()
            .and_then(|t| Baseline::parse(&t).ok())
            .unwrap_or_default();
        let text = Baseline::from_reports(&reports, &previous);
        if let Err(e) = std::fs::write(&cli.baseline, text) {
            eprintln!("hulkv-lint: cannot write {}: {e}", cli.baseline);
            return ExitCode::FAILURE;
        }
        println!(
            "hulkv-lint: baseline written to {} ({} findings over {} programs)",
            cli.baseline,
            total,
            reports.len()
        );
        return ExitCode::SUCCESS;
    }

    if cli.json {
        let doc = Json::Arr(reports.iter().map(Report::to_json).collect());
        println!("{doc}");
    } else {
        for r in &reports {
            print!("{}", r.render_text());
        }
        println!(
            "hulkv-lint: {} programs analyzed, {} findings",
            reports.len(),
            total
        );
    }
    for line in &confirm_lines {
        println!("confirm: {line}");
    }

    if let Some(path) = &cli.metrics_out {
        let mut snap = MetricsSnapshot::new();
        let mut s = Stats::new("lint");
        s.add("programs", reports.len() as u64);
        s.add("findings", total as u64);
        if cli.confirm {
            s.add("confirmed", confirm_counts.0);
            s.add("unconfirmed", confirm_counts.1);
            s.add("unchecked", confirm_counts.2);
        }
        snap.push_block(s);
        if let Err(e) = std::fs::write(path, format!("{}\n", snap.to_json())) {
            eprintln!("hulkv-lint: cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("hulkv-lint: metrics written to {path}");
    }
    if let (Some(path), Some(t)) = (&cli.trace_out, &campaign_tracer) {
        let t = t.borrow();
        if let Err(e) = std::fs::write(path, format!("{}\n", t.chrome_trace())) {
            eprintln!("hulkv-lint: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "hulkv-lint: trace written to {path} ({} events{})",
            t.len(),
            if t.dropped() > 0 {
                format!(", {} dropped", t.dropped())
            } else {
                String::new()
            }
        );
    }

    if cli.ci {
        let baseline = match std::fs::read_to_string(&cli.baseline) {
            Ok(t) => match Baseline::parse(&t) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("hulkv-lint: bad baseline {}: {e}", cli.baseline);
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => Baseline::default(),
        };
        let diff = baseline.diff(&reports);
        for (prog, check, found, accepted) in &diff.stale {
            println!(
                "hulkv-lint: stale baseline: {prog}/{check} accepts {accepted} but only \
                 {found} found — consider tightening"
            );
        }
        if !diff.regressions.is_empty() {
            for (prog, check, found, accepted) in &diff.regressions {
                eprintln!(
                    "hulkv-lint: NEW findings: {prog}/{check}: {found} found, \
                     {accepted} accepted by baseline"
                );
            }
            eprintln!(
                "hulkv-lint: fix the findings or re-run with --write-baseline and \
                 justify them in {}",
                cli.baseline
            );
            return ExitCode::FAILURE;
        }
        println!(
            "hulkv-lint: CI clean against baseline ({} accepted budgets)",
            baseline.len()
        );
    }
    ExitCode::SUCCESS
}
