//! The IOPMP filtering the cluster's AXI master port.

use hulkv_mem::{MemoryDevice, SharedMem};
use hulkv_sim::{Cycles, SimError, Stats};

/// An I/O physical-memory-protection filter.
///
/// In HULK-V "an IOPMP controlled by CVA6 filters master transactions" from
/// the PMCA: the host whitelists the address windows the accelerator may
/// touch (the shared main-memory region and the L2SPM), and everything else
/// faults. The model wraps the SoC interconnect and checks each transaction
/// against the configured windows.
///
/// # Example
///
/// ```
/// use hulkv::IoPmp;
/// use hulkv_mem::{shared, MemoryDevice, Sram};
/// use hulkv_sim::Cycles;
///
/// let bus = shared(Sram::new("mem", 0x1000, Cycles::new(1)));
/// let mut pmp = IoPmp::new(bus);
/// pmp.allow(0x100, 0x100);
/// assert!(pmp.write(0x100, &[1]).is_ok());
/// assert!(pmp.write(0x00, &[1]).is_err());
/// ```
#[derive(Debug)]
pub struct IoPmp {
    inner: SharedMem,
    windows: Vec<(u64, u64)>,
    stats: Stats,
}

impl IoPmp {
    /// Creates a filter with no windows (everything denied).
    pub fn new(inner: SharedMem) -> Self {
        IoPmp {
            inner,
            windows: Vec::new(),
            stats: Stats::new("iopmp"),
        }
    }

    /// Whitelists `[base, base + size)`.
    pub fn allow(&mut self, base: u64, size: u64) {
        self.windows.push((base, size));
    }

    /// Removes every window.
    pub fn clear(&mut self) {
        self.windows.clear();
    }

    /// Whether an access is inside a single whitelisted window.
    pub fn permits(&self, addr: u64, len: usize) -> bool {
        self.windows
            .iter()
            .any(|&(base, size)| addr >= base && addr + len as u64 <= base + size)
    }

    fn check(&mut self, addr: u64, len: usize) -> Result<(), SimError> {
        if self.permits(addr, len) {
            Ok(())
        } else {
            self.stats.inc("denied");
            Err(SimError::Model(format!(
                "iopmp denied cluster access to {addr:#x}..{:#x}",
                addr + len as u64
            )))
        }
    }
}

impl MemoryDevice for IoPmp {
    fn size_bytes(&self) -> u64 {
        self.inner.borrow().size_bytes()
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        self.check(offset, buf.len())?;
        self.stats.inc("reads");
        self.inner.borrow_mut().read(offset, buf)
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        self.check(offset, data.len())?;
        self.stats.inc("writes");
        self.inner.borrow_mut().write(offset, data)
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv_mem::{shared, Sram};

    fn pmp() -> IoPmp {
        let mem = shared(Sram::new("m", 0x10000, Cycles::new(1)));
        let mut p = IoPmp::new(mem);
        p.allow(0x1000, 0x1000);
        p.allow(0x8000, 0x100);
        p
    }

    #[test]
    fn inside_window_passes() {
        let mut p = pmp();
        assert!(p.write(0x1800, &[1, 2, 3]).is_ok());
        let mut b = [0u8; 3];
        assert!(p.read(0x1800, &mut b).is_ok());
        assert_eq!(b, [1, 2, 3]);
    }

    #[test]
    fn outside_window_denied() {
        let mut p = pmp();
        assert!(p.write(0x0, &[1]).is_err());
        assert!(p.write(0x8100, &[1]).is_err());
        assert_eq!(p.stats().get("denied"), 2);
    }

    #[test]
    fn straddling_window_edge_denied() {
        let mut p = pmp();
        assert!(p.write(0x1FFE, &[0; 4]).is_err());
    }

    #[test]
    fn clear_revokes_everything() {
        let mut p = pmp();
        p.clear();
        assert!(!p.permits(0x1000, 1));
        let mut b = [0u8; 1];
        assert!(p.read(0x1000, &mut b).is_err());
    }
}
