//! The IOPMP filtering the cluster's AXI master port.

use hulkv_mem::{MemoryDevice, SharedMem};
use hulkv_sim::{Cycles, SharedTracer, SimError, Stats, TraceEvent, Track};

/// An I/O physical-memory-protection filter.
///
/// In HULK-V "an IOPMP controlled by CVA6 filters master transactions" from
/// the PMCA: the host whitelists the address windows the accelerator may
/// touch (the shared main-memory region and the L2SPM), and everything else
/// faults. The model wraps the SoC interconnect and checks each transaction
/// against the configured windows.
///
/// # Example
///
/// ```
/// use hulkv::IoPmp;
/// use hulkv_mem::{shared, MemoryDevice, Sram};
/// use hulkv_sim::Cycles;
///
/// let bus = shared(Sram::new("mem", 0x1000, Cycles::new(1)));
/// let mut pmp = IoPmp::new(bus);
/// pmp.allow(0x100, 0x100);
/// assert!(pmp.write(0x100, &[1]).is_ok());
/// assert!(pmp.write(0x00, &[1]).is_err());
/// ```
#[derive(Debug)]
pub struct IoPmp {
    inner: SharedMem,
    windows: Vec<(u64, u64)>,
    stats: Stats,
    tracer: Option<SharedTracer>,
}

impl IoPmp {
    /// Creates a filter with no windows (everything denied).
    pub fn new(inner: SharedMem) -> Self {
        IoPmp {
            inner,
            windows: Vec::new(),
            stats: Stats::new("iopmp"),
            tracer: None,
        }
    }

    /// Whitelists `[base, base + size)`.
    pub fn allow(&mut self, base: u64, size: u64) {
        self.windows.push((base, size));
    }

    /// Removes every window.
    pub fn clear(&mut self) {
        self.windows.clear();
    }

    /// The configured allow windows as `(base, size)` pairs.
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.windows
    }

    /// Whether an access is inside a single whitelisted window.
    ///
    /// Arithmetic is widened so queries that touch the very end of the
    /// address space (where `addr + len` would wrap) are answered instead
    /// of overflowing. Zero-length queries succeed whenever `addr` lies
    /// inside (or exactly at the end of) a window.
    pub fn permits(&self, addr: u64, len: usize) -> bool {
        let span_end = addr as u128 + len as u128;
        self.windows
            .iter()
            .any(|&(base, size)| addr >= base && span_end <= base as u128 + size as u128)
    }

    /// FNV-1a digest of the protection state: the allow windows in
    /// configuration order. Stats are excluded: they count traffic, not
    /// state.
    pub fn state_digest(&self) -> u64 {
        let mut h = hulkv_sim::Fnv64::new();
        h.write_u64(self.windows.len() as u64);
        for &(base, size) in &self.windows {
            h.write_u64(base).write_u64(size);
        }
        h.finish()
    }

    /// Serializes the allow windows and stats.
    pub fn snapshot_json(&self) -> hulkv_sim::Json {
        use hulkv_sim::snap::{hex, stats_to_json};
        use hulkv_sim::Json;
        Json::obj([
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(|&(base, size)| Json::Arr(vec![hex(base), hex(size)]))
                        .collect(),
                ),
            ),
            ("stats", stats_to_json(&self.stats)),
        ])
    }

    /// Restores state written by [`IoPmp::snapshot_json`].
    ///
    /// # Errors
    ///
    /// On a malformed section.
    pub fn restore_json(&mut self, j: &hulkv_sim::Json) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, get_arr, restore_stats, unhex, SnapError};
        use hulkv_sim::Json;
        let mut windows = Vec::new();
        for w in get_arr(j, "windows")? {
            let Json::Arr(pair) = w else {
                return Err(SnapError::msg("iopmp window is not a [base, size] pair"));
            };
            if pair.len() != 2 {
                return Err(SnapError::msg("iopmp window is not a [base, size] pair"));
            }
            windows.push((unhex(&pair[0])?, unhex(&pair[1])?));
        }
        self.windows = windows;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }

    fn check(&mut self, addr: u64, len: usize) -> Result<(), SimError> {
        if self.permits(addr, len) {
            Ok(())
        } else {
            self.stats.inc("denied");
            if let Some(t) = &self.tracer {
                t.borrow_mut().record(
                    Track::Soc,
                    TraceEvent::IopmpDeny {
                        addr,
                        bytes: len.min(u32::MAX as usize) as u32,
                    },
                );
            }
            Err(SimError::Model(format!(
                "iopmp denied cluster access to {addr:#x}..{:#x}",
                addr as u128 + len as u128
            )))
        }
    }
}

impl MemoryDevice for IoPmp {
    fn size_bytes(&self) -> u64 {
        self.inner.borrow().size_bytes()
    }

    fn peek(&self, offset: u64, buf: &mut [u8]) -> Result<(), SimError> {
        // Debugger backdoor: enforce the windows (so a peek sees what the
        // cluster could see) but without the denial counter or trace event.
        if !self.permits(offset, buf.len()) {
            return Err(SimError::Model(format!(
                "iopmp denies cluster access to {offset:#x}"
            )));
        }
        self.inner.borrow().peek(offset, buf)
    }

    fn read(&mut self, offset: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        self.check(offset, buf.len())?;
        self.stats.inc("reads");
        self.inner.borrow_mut().read(offset, buf)
    }

    fn write(&mut self, offset: u64, data: &[u8]) -> Result<Cycles, SimError> {
        self.check(offset, data.len())?;
        self.stats.inc("writes");
        self.inner.borrow_mut().write(offset, data)
    }

    fn stats(&self) -> &Stats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn attach_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hulkv_mem::{shared, Sram};

    fn pmp() -> IoPmp {
        let mem = shared(Sram::new("m", 0x10000, Cycles::new(1)));
        let mut p = IoPmp::new(mem);
        p.allow(0x1000, 0x1000);
        p.allow(0x8000, 0x100);
        p
    }

    #[test]
    fn inside_window_passes() {
        let mut p = pmp();
        assert!(p.write(0x1800, &[1, 2, 3]).is_ok());
        let mut b = [0u8; 3];
        assert!(p.read(0x1800, &mut b).is_ok());
        assert_eq!(b, [1, 2, 3]);
    }

    #[test]
    fn outside_window_denied() {
        let mut p = pmp();
        assert!(p.write(0x0, &[1]).is_err());
        assert!(p.write(0x8100, &[1]).is_err());
        assert_eq!(p.stats().get("denied"), 2);
    }

    #[test]
    fn straddling_window_edge_denied() {
        let mut p = pmp();
        assert!(p.write(0x1FFE, &[0; 4]).is_err());
    }

    #[test]
    fn clear_revokes_everything() {
        let mut p = pmp();
        p.clear();
        assert!(!p.permits(0x1000, 1));
        let mut b = [0u8; 1];
        assert!(p.read(0x1000, &mut b).is_err());
        assert_eq!(p.stats().get("denied"), 1);
    }

    #[test]
    fn abutting_windows_do_not_merge() {
        let mem = shared(Sram::new("m", 0x10000, Cycles::new(1)));
        let mut p = IoPmp::new(mem);
        p.allow(0x1000, 0x100);
        p.allow(0x1100, 0x100);
        // Each window permits accesses wholly inside it…
        assert!(p.permits(0x10F0, 0x10));
        assert!(p.permits(0x1100, 0x10));
        // …but a span crossing the seam is inside no *single* window.
        assert!(!p.permits(0x10F8, 0x10));
        assert_eq!(p.windows().len(), 2);
    }

    #[test]
    fn overlapping_windows_each_checked_alone() {
        let mem = shared(Sram::new("m", 0x10000, Cycles::new(1)));
        let mut p = IoPmp::new(mem);
        p.allow(0x1000, 0x200);
        p.allow(0x1100, 0x200);
        // Inside the overlap, either window covers the access.
        assert!(p.permits(0x1180, 8));
        // A span covering the union but exceeding both windows is denied.
        assert!(!p.permits(0x1000, 0x300));
    }

    #[test]
    fn zero_length_queries() {
        let p = pmp();
        assert!(p.permits(0x1000, 0));
        // The exclusive end of a window still "contains" an empty access.
        assert!(p.permits(0x2000, 0));
        assert!(!p.permits(0x2001, 0));
        assert!(!p.permits(0x0, 0));
    }

    #[test]
    fn end_of_address_space_queries_do_not_overflow() {
        let mem = shared(Sram::new("m", 0x10000, Cycles::new(1)));
        let mut p = IoPmp::new(mem);
        p.allow(u64::MAX - 0xFFF, 0x1000);
        // `addr + len` == 2^64: representable only in widened arithmetic.
        assert!(p.permits(u64::MAX - 0x7, 8));
        assert!(p.permits(u64::MAX, 1));
        assert!(!p.permits(u64::MAX, 2));
        // An unconfigured filter must also answer (not overflow) at the top.
        let mem2 = shared(Sram::new("m", 0x10, Cycles::new(1)));
        let q = IoPmp::new(mem2);
        assert!(!q.permits(u64::MAX, 16));
    }

    #[test]
    fn denied_access_records_trace_event() {
        use hulkv_sim::{category, Tracer};
        let mut p = pmp();
        let tracer = Tracer::shared(16);
        tracer.borrow_mut().enable(category::PROTECT);
        p.attach_tracer(tracer.clone());
        assert!(p.write(0x0, &[1, 2]).is_err());
        let t = tracer.borrow();
        let rec = t
            .events()
            .find(|r| matches!(r.event, TraceEvent::IopmpDeny { .. }))
            .expect("deny should be traced");
        assert!(matches!(
            rec.event,
            TraceEvent::IopmpDeny { addr: 0, bytes: 2 }
        ));
    }
}
