//! The HULK-V SoC top level.

use crate::config::{MainMemory, SocConfig};
use crate::iopmp::IoPmp;
use crate::mailbox::Mailbox;
use hulkv_cluster::{Cluster, TeamResult};
use hulkv_host::{Clint, Host, Plic};
use hulkv_mem::{Bus, Ddr, DmaEngine, HyperRam, Llc, SharedMem, Sram, Transfer1d};
use hulkv_rv::{Core, Reg, RvError};
use hulkv_sim::{
    convert_freq, Cycles, Json, MetricsSnapshot, SharedTracer, SimError, SnapResult, Snapshot,
    Stats, Timeline, TraceEvent, Track,
};
use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// The HULK-V physical address map.
pub mod map {
    /// Core-local interruptor.
    pub const CLINT_BASE: u64 = 0x0200_0000;
    /// Platform-level interrupt controller.
    pub const PLIC_BASE: u64 = 0x0C00_0000;
    /// Base of the peripheral-domain register windows (UART, I2S, …).
    pub const PERIPH_BASE: u64 = 0x1A10_0000;
    /// 512 kB L2 scratchpad of the host domain.
    pub const L2SPM_BASE: u64 = 0x1C00_0000;
    /// Main DRAM (HyperRAM or DDR4) window.
    pub const DRAM_BASE: u64 = 0x8000_0000;
    /// Host benchmark code region inside DRAM.
    pub const HOST_CODE: u64 = DRAM_BASE + 0x0010_0000;
    /// Kernel fat-binary store inside DRAM (where the Linux driver keeps
    /// PMCA binaries before they are lazily loaded into the L2SPM).
    pub const KERNEL_STORE: u64 = DRAM_BASE + 0x0100_0000;
    /// Start of the `hulk_malloc` shared window (32-bit addressable, so
    /// the PMCA can dereference host pointers directly).
    pub const SHARED_BASE: u64 = DRAM_BASE + 0x0200_0000;
}

/// The IOPMP allow windows [`HulkV::new`] configures for `cfg`: the L2SPM
/// (kernel code) and the whole DRAM window (shared buffers). Exposed so
/// tooling (e.g. the static analyzer) can reason about the cluster's view
/// of the address space without instantiating a SoC.
pub fn default_iopmp_windows(cfg: &SocConfig) -> Vec<(u64, u64)> {
    vec![
        (map::L2SPM_BASE, cfg.l2spm_bytes as u64),
        (map::DRAM_BASE, cfg.main_memory_bytes()),
    ]
}

/// The host-visible physical regions `(name, base, size)` the AXI bus in
/// [`HulkV::new`] maps for `cfg`. Data accesses outside these windows fault
/// on the real interconnect; tooling uses this as the host's memory view.
pub fn host_regions(cfg: &SocConfig) -> Vec<(&'static str, u64, u64)> {
    vec![
        ("clint", map::CLINT_BASE, 0xC000),
        ("plic", map::PLIC_BASE, 0x40_0000),
        ("l2spm", map::L2SPM_BASE, cfg.l2spm_bytes as u64),
        ("dram", map::DRAM_BASE, cfg.main_memory_bytes()),
    ]
}

/// Errors from SoC-level operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum SocError {
    /// A memory-system failure.
    Mem(SimError),
    /// A core execution failure.
    Exec(RvError),
    /// The shared-region allocator is exhausted.
    OutOfSharedMemory {
        /// Bytes requested.
        requested: usize,
    },
    /// The L2SPM cannot hold another kernel binary.
    OutOfKernelSpace,
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::Mem(e) => write!(f, "memory system: {e}"),
            SocError::Exec(e) => write!(f, "execution: {e}"),
            SocError::OutOfSharedMemory { requested } => {
                write!(f, "hulk_malloc cannot satisfy {requested} bytes")
            }
            SocError::OutOfKernelSpace => write!(f, "no L2SPM space left for kernel code"),
        }
    }
}

impl Error for SocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SocError::Mem(e) => Some(e),
            SocError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SocError {
    fn from(e: SimError) -> Self {
        SocError::Mem(e)
    }
}

impl From<RvError> for SocError {
    fn from(e: RvError) -> Self {
        SocError::Exec(e)
    }
}

/// Handle to a registered PMCA kernel binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelId(usize);

impl KernelId {
    /// The kernel's registration index (ids are handed out sequentially).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug)]
struct KernelState {
    dram_addr: u64,
    bytes: usize,
    loaded_at: Option<u64>,
}

/// Result of one [`HulkV::offload`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffloadResult {
    /// End-to-end offload time in SoC-domain cycles (overhead + team).
    pub total_soc_cycles: Cycles,
    /// The overhead part: driver descriptor, mailbox doorbells and (on the
    /// first call) the lazy code load into the L2SPM.
    pub overhead_cycles: Cycles,
    /// The cluster-side execution, in cluster cycles.
    pub team: TeamResult,
    /// Whether this call performed the lazy code load.
    pub code_loaded: bool,
}

/// Typed handle onto the main-memory device, so snapshots can reach the
/// concrete type's backdoors without `MemoryDevice::read` side effects.
#[derive(Debug)]
enum DramDevice {
    Hyper(Rc<RefCell<HyperRam>>),
    Ddr(Rc<RefCell<Ddr>>),
}

impl DramDevice {
    fn content_digest(&self) -> u64 {
        match self {
            DramDevice::Hyper(h) => h.borrow().content_digest(),
            DramDevice::Ddr(d) => d.borrow().content_digest(),
        }
    }
}

/// A complete HULK-V SoC instance.
///
/// See the [crate docs](crate) for the offload example; host-only
/// benchmarks use [`HulkV::run_host_program`].
#[derive(Debug)]
pub struct HulkV {
    cfg: SocConfig,
    host: Host,
    cluster: Cluster,
    bus: SharedMem,
    bus_typed: Rc<RefCell<Bus>>,
    clint: Rc<RefCell<Clint>>,
    plic: Rc<RefCell<Plic>>,
    l2spm: SharedMem,
    // Typed aliases of the erased handles above/below, so snapshot and
    // digest paths read device internals directly (no stats perturbation).
    l2spm_typed: Rc<RefCell<Sram>>,
    dram_typed: DramDevice,
    llc_typed: Option<Rc<RefCell<Llc>>>,
    iopmp: Rc<RefCell<IoPmp>>,
    dram_raw: SharedMem,
    dram_front: SharedMem,
    udma: DmaEngine,
    mailbox: Mailbox,
    kernels: Vec<KernelState>,
    kernel_store_next: u64,
    l2_code_next: u64,
    shared_next: u64,
    stats: Stats,
    tracer: Option<SharedTracer>,
    timeline: Option<Timeline>,
    /// Telemetry cycle cursor in the SoC-interconnect clock domain.
    timeline_now: u64,
}

impl HulkV {
    /// Builds the SoC from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Mem`] for inconsistent memory geometry.
    pub fn new(cfg: SocConfig) -> Result<Self, SocError> {
        let (dram_typed, dram_raw): (DramDevice, SharedMem) = match &cfg.main_memory {
            MainMemory::HyperRam(h) => {
                let t = Rc::new(RefCell::new(HyperRam::try_new(h.clone())?));
                (DramDevice::Hyper(t.clone()), t)
            }
            MainMemory::Ddr(d) => {
                let t = Rc::new(RefCell::new(Ddr::new(*d)));
                (DramDevice::Ddr(t.clone()), t)
            }
        };
        let (llc_typed, dram_front): (Option<Rc<RefCell<Llc>>>, SharedMem) = match &cfg.llc {
            Some(llc_cfg) => {
                let t = Rc::new(RefCell::new(Llc::new(llc_cfg.clone(), dram_raw.clone())?));
                (Some(t.clone()), t)
            }
            None => (None, dram_raw.clone()),
        };

        let l2spm_typed = Rc::new(RefCell::new(Sram::new(
            "l2spm",
            cfg.l2spm_bytes,
            Cycles::new(1),
        )));
        let l2spm: SharedMem = l2spm_typed.clone();
        let clint = Rc::new(RefCell::new(Clint::new()));
        let plic = Rc::new(RefCell::new(Plic::new()));
        let mut bus = Bus::new("axi", Cycles::new(2));
        bus.map("clint", map::CLINT_BASE, clint.clone())?;
        bus.map("plic", map::PLIC_BASE, plic.clone())?;
        bus.map("l2spm", map::L2SPM_BASE, l2spm.clone())?;
        bus.map("dram", map::DRAM_BASE, dram_front.clone())?;
        let bus_typed = Rc::new(RefCell::new(bus));
        let bus: SharedMem = bus_typed.clone();

        let host = Host::new(cfg.host.clone(), bus.clone());

        // The IOPMP lets the cluster reach the L2SPM (kernel code) and the
        // whole DRAM window (shared buffers); nothing else.
        let mut pmp = IoPmp::new(bus.clone());
        pmp.allow(map::L2SPM_BASE, cfg.l2spm_bytes as u64);
        pmp.allow(map::DRAM_BASE, cfg.main_memory_bytes());
        let iopmp = Rc::new(RefCell::new(pmp));
        let cluster = Cluster::new(cfg.cluster.clone(), iopmp.clone());

        Ok(HulkV {
            host,
            cluster,
            bus,
            bus_typed,
            clint,
            plic,
            l2spm,
            l2spm_typed,
            dram_typed,
            llc_typed,
            iopmp,
            dram_raw,
            dram_front,
            udma: DmaEngine::new("udma", Cycles::new(12), 64),
            mailbox: Mailbox::new(8),
            kernels: Vec::new(),
            kernel_store_next: map::KERNEL_STORE,
            l2_code_next: 0,
            shared_next: map::SHARED_BASE,
            stats: Stats::new("soc"),
            tracer: None,
            timeline: None,
            timeline_now: 0,
            cfg,
        })
    }

    /// Attaches a structured tracer to the whole SoC: the host core and its
    /// L1 caches, the cluster cores and DMA, the µDMA, the LLC and the main
    /// memory all record onto their own tracks, and the SoC level records
    /// offload and mailbox events.
    pub fn attach_tracer(&mut self, tracer: SharedTracer) {
        self.host.set_tracer(tracer.clone());
        self.cluster.set_tracer(tracer.clone());
        self.udma.set_tracer(tracer.clone(), Track::Dma);
        // Covers both memory setups: with an LLC the front device forwards
        // the handle to the raw DRAM behind it; without one it *is* the
        // raw DRAM.
        self.dram_front.borrow_mut().attach_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    fn trace(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().record(Track::Soc, event);
        }
    }

    /// Enables windowed telemetry: every `period_cycles` SoC-interconnect
    /// cycles the SoC snapshots all block counters into a [`Timeline`]
    /// window. Sampling is read-only — an identical run with the sampler
    /// off is cycle-bit-identical (see the neutrality test).
    pub fn enable_timeline(&mut self, period_cycles: u64) {
        self.timeline = Some(Timeline::new(period_cycles));
        self.timeline_now = 0;
    }

    /// The telemetry timeline, when enabled.
    pub fn timeline(&self) -> Option<&Timeline> {
        self.timeline.as_ref()
    }

    /// Detaches the telemetry timeline (for enrichment and export after a
    /// run); sampling stops until [`HulkV::enable_timeline`] is called
    /// again.
    pub fn take_timeline(&mut self) -> Option<Timeline> {
        self.timeline.take()
    }

    /// The telemetry cycle cursor (SoC-interconnect domain).
    pub fn timeline_cycle(&self) -> u64 {
        self.timeline_now
    }

    /// Closes the current telemetry window at the cursor, recording every
    /// block's counter deltas. No-op when the timeline is off or the
    /// cursor has not advanced past the open window's start.
    pub fn timeline_sample(&mut self) {
        if self.timeline.is_none() {
            return;
        }
        let blocks = self.metrics_snapshot().blocks;
        let now = self.timeline_now;
        if let Some(tl) = self.timeline.as_mut() {
            tl.sample(now, &blocks);
        }
    }

    /// The configuration this SoC was built with.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    /// The CVA6 host subsystem.
    pub fn host(&self) -> &Host {
        &self.host
    }

    /// Mutable host access.
    pub fn host_mut(&mut self) -> &mut Host {
        &mut self.host
    }

    /// The PMCA.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable PMCA access.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// The mailbox between the subsystems.
    pub fn mailbox(&self) -> &Mailbox {
        &self.mailbox
    }

    /// Maps an extra device (typically a peripheral at
    /// [`map::PERIPH_BASE`]`+ …`) onto the host interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::Mem`] if the region overlaps an existing one.
    pub fn map_device(
        &mut self,
        name: impl Into<String>,
        base: u64,
        device: SharedMem,
    ) -> Result<(), SocError> {
        self.bus_typed.borrow_mut().map(name, base, device)?;
        Ok(())
    }

    /// Runs a µDMA transfer between two interconnect addresses (e.g.
    /// draining an I2S FIFO into the L2SPM) and returns its SoC cycles.
    ///
    /// # Errors
    ///
    /// Propagates routing/range errors from either end.
    pub fn udma_transfer(&mut self, src: u64, dst: u64, bytes: usize) -> Result<Cycles, SocError> {
        let lat = self
            .udma
            .run_1d(&self.bus, &self.bus, Transfer1d { src, dst, bytes })?;
        self.stats.add("udma_bytes", bytes as u64);
        Ok(lat)
    }

    /// Advances the peripheral-domain time base by `ticks` and refreshes
    /// the host core's pending-interrupt bits from the CLINT and PLIC.
    pub fn advance_time(&mut self, ticks: u64) {
        self.clint.borrow_mut().advance(ticks);
        self.refresh_interrupts();
    }

    /// Asserts peripheral interrupt line `id` at the PLIC.
    ///
    /// # Panics
    ///
    /// Panics for source id 0 or ≥ 64.
    pub fn raise_peripheral_irq(&mut self, id: u32) {
        self.plic.borrow_mut().raise(id);
        self.refresh_interrupts();
    }

    fn refresh_interrupts(&mut self) {
        let timer = self.clint.borrow().timer_pending();
        let sw = self.clint.borrow().software_pending();
        let ext = self.plic.borrow().external_pending();
        let core = self.host.core_mut();
        core.set_interrupt_pending(7, timer);
        core.set_interrupt_pending(3, sw);
        core.set_interrupt_pending(11, ext);
    }

    /// SoC-level activity counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Clones the counters of a shared device — the one aggregation path
    /// for every block surfaced through a [`SharedMem`] handle.
    fn device_stats(dev: &SharedMem) -> Stats {
        dev.borrow().stats().clone()
    }

    /// Statistics of the raw main-memory device (bytes moved, bursts…).
    pub fn dram_stats(&self) -> Stats {
        Self::device_stats(&self.dram_raw)
    }

    /// LLC hit/miss statistics (empty when the LLC is absent).
    pub fn llc_stats(&self) -> Stats {
        if self.cfg.llc.is_some() {
            // The front device is the LLC; its cache stats live one level in.
            // We surface them through the generic stats() of the device.
            Self::device_stats(&self.dram_front)
        } else {
            Stats::new("llc_absent")
        }
    }

    /// Collects the counters of every block of the SoC into one
    /// machine-readable snapshot: SoC level, host core, L1 caches, cluster,
    /// µDMA, LLC and main memory. Power and figure entries are left for the
    /// caller to fill in.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push_block(self.stats.clone());
        snap.push_block(self.host.core().stats());
        snap.push_block(self.host.l1i_stats().clone());
        snap.push_block(self.host.l1d_stats().clone());
        snap.push_block(self.cluster.stats().clone());
        snap.push_block(self.udma.stats().clone());
        snap.push_block(self.llc_stats());
        snap.push_block(self.dram_stats());
        snap
    }

    /// FNV-1a digest of the complete SoC state: host (core + L1s), CLINT,
    /// PLIC, mailbox, IOPMP, L2SPM, main memory, LLC, cluster, and the
    /// runtime bookkeeping (kernel table and allocator cursors). Two
    /// identically-driven SoCs agree on this digest; a snapshot restore
    /// reproduces it exactly.
    pub fn state_digest(&self) -> u64 {
        let mut h = hulkv_sim::Fnv64::new();
        h.write_u64(self.host.state_digest())
            .write_u64(self.clint.borrow().state_digest())
            .write_u64(self.plic.borrow().state_digest())
            .write_u64(self.mailbox.state_digest())
            .write_u64(self.iopmp.borrow().state_digest())
            .write_u64(self.l2spm_typed.borrow().content_digest())
            .write_u64(self.dram_typed.content_digest())
            .write_u64(
                self.llc_typed
                    .as_ref()
                    .map_or(0, |llc| llc.borrow().state_digest()),
            )
            .write_u64(self.cluster.state_digest());
        h.write_u64(self.kernels.len() as u64);
        for k in &self.kernels {
            h.write_u64(k.dram_addr)
                .write_u64(k.bytes as u64)
                .write_u64(k.loaded_at.map_or(u64::MAX, |o| o));
        }
        h.write_u64(self.kernel_store_next)
            .write_u64(self.l2_code_next)
            .write_u64(self.shared_next)
            .finish()
    }

    /// Serializes the complete SoC into a versioned, schema-checked
    /// [`Snapshot`]: every core register/CSR/decode-cache entry, device
    /// registers, cache contents, memory images (page-compact) and runtime
    /// bookkeeping. Taking a snapshot reads nothing through the timed
    /// memory paths, so it perturbs no counters — snapshot-then-continue is
    /// bit-identical to an uninterrupted run.
    ///
    /// Observability attachments (tracer, timeline windows) are not
    /// captured; re-attach them after restore if needed.
    pub fn snapshot(&self) -> Snapshot {
        use hulkv_sim::snap::{hex, stats_to_json};
        let mut snap = Snapshot::new();
        snap.set_section("config", self.cfg.to_json());
        let host = self.host.snapshot_into(&mut snap);
        snap.set_section("host", host);
        snap.set_section("clint", self.clint.borrow().snapshot_json());
        snap.set_section("plic", self.plic.borrow().snapshot_json());
        snap.set_section("mailbox", self.mailbox.snapshot_json());
        snap.set_section("iopmp", self.iopmp.borrow().snapshot_json());
        let l2 = self.l2spm_typed.borrow().snapshot_into(&mut snap);
        snap.set_section("l2spm", l2);
        let dram = match &self.dram_typed {
            DramDevice::Hyper(h) => {
                let dev = h.borrow().snapshot_into(&mut snap);
                Json::obj([("kind", Json::Str("hyperram".into())), ("dev", dev)])
            }
            DramDevice::Ddr(d) => {
                let dev = d.borrow().snapshot_into(&mut snap);
                Json::obj([("kind", Json::Str("ddr".into())), ("dev", dev)])
            }
        };
        snap.set_section("dram", dram);
        if let Some(llc) = &self.llc_typed {
            let l = llc.borrow().snapshot_into(&mut snap);
            snap.set_section("llc", l);
        }
        let cluster = self.cluster.snapshot_into(&mut snap);
        snap.set_section("cluster", cluster);
        let kernels = Json::Arr(
            self.kernels
                .iter()
                .map(|k| {
                    Json::obj([
                        ("dram_addr", hex(k.dram_addr)),
                        ("bytes", hex(k.bytes as u64)),
                        ("loaded_at", k.loaded_at.map_or(Json::Null, hex)),
                    ])
                })
                .collect(),
        );
        snap.set_section(
            "soc",
            Json::obj([
                ("kernels", kernels),
                ("kernel_store_next", hex(self.kernel_store_next)),
                ("l2_code_next", hex(self.l2_code_next)),
                ("shared_next", hex(self.shared_next)),
                ("timeline_now", hex(self.timeline_now)),
                ("stats", stats_to_json(&self.stats)),
                ("udma", self.udma.snapshot_json()),
                ("bus", self.bus_typed.borrow().snapshot_json()),
            ]),
        );
        snap
    }

    /// Restores state written by [`HulkV::snapshot`] into a SoC built with
    /// the identical configuration (checked). Continuing after a restore is
    /// bit-identical — same cycles, same stats, same digests — to the run
    /// the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// On configuration mismatch or a malformed snapshot.
    pub fn restore(&mut self, snap: &Snapshot) -> SnapResult<()> {
        use hulkv_sim::snap::{get, get_arr, get_u64, restore_stats, unhex, SnapError};
        if snap.section("config")?.to_string() != self.cfg.to_json().to_string() {
            return Err(SnapError::msg(
                "snapshot configuration differs from this SoC's — use HulkV::from_snapshot",
            ));
        }
        self.host.restore_from(snap, snap.section("host")?)?;
        self.clint
            .borrow_mut()
            .restore_json(snap.section("clint")?)?;
        self.plic.borrow_mut().restore_json(snap.section("plic")?)?;
        self.mailbox.restore_json(snap.section("mailbox")?)?;
        self.iopmp
            .borrow_mut()
            .restore_json(snap.section("iopmp")?)?;
        self.l2spm_typed
            .borrow_mut()
            .restore_from(snap, snap.section("l2spm")?)?;
        let dram = snap.section("dram")?;
        match (&self.dram_typed, get(dram, "kind")?.as_str()) {
            (DramDevice::Hyper(h), Some("hyperram")) => {
                h.borrow_mut().restore_from(snap, get(dram, "dev")?)?;
            }
            (DramDevice::Ddr(d), Some("ddr")) => {
                d.borrow_mut().restore_from(snap, get(dram, "dev")?)?;
            }
            _ => return Err(SnapError::msg("main-memory kind mismatch")),
        }
        match (&self.llc_typed, snap.has_section("llc")) {
            (Some(llc), true) => llc.borrow_mut().restore_from(snap, snap.section("llc")?)?,
            (None, false) => {}
            _ => return Err(SnapError::msg("LLC presence mismatch")),
        }
        self.cluster.restore_from(snap, snap.section("cluster")?)?;
        let s = snap.section("soc")?;
        let mut kernels = Vec::new();
        for k in get_arr(s, "kernels")? {
            kernels.push(KernelState {
                dram_addr: get_u64(k, "dram_addr")?,
                bytes: get_u64(k, "bytes")? as usize,
                loaded_at: match get(k, "loaded_at")? {
                    Json::Null => None,
                    v => Some(unhex(v)?),
                },
            });
        }
        self.kernels = kernels;
        self.kernel_store_next = get_u64(s, "kernel_store_next")?;
        self.l2_code_next = get_u64(s, "l2_code_next")?;
        self.shared_next = get_u64(s, "shared_next")?;
        self.timeline_now = get_u64(s, "timeline_now")?;
        restore_stats(&mut self.stats, get(s, "stats")?)?;
        self.udma.restore_json(get(s, "udma")?)?;
        self.bus_typed.borrow_mut().restore_json(get(s, "bus")?)?;
        // The host core's pending-interrupt bits (MIP) were restored with
        // its CSR file; deriving them again from CLINT/PLIC here would bump
        // the CSR version and perturb the decode-cache stamps.
        Ok(())
    }

    /// Builds a SoC from a snapshot alone: reconstructs the configuration
    /// embedded in the `config` section, then restores the full state.
    ///
    /// # Errors
    ///
    /// On a malformed snapshot or an unbuildable configuration.
    pub fn from_snapshot(snap: &Snapshot) -> SnapResult<HulkV> {
        use hulkv_sim::snap::SnapError;
        let cfg = SocConfig::from_json(snap.section("config")?)?;
        let mut soc = HulkV::new(cfg)
            .map_err(|e| SnapError::msg(format!("snapshot config does not build: {e}")))?;
        soc.restore(snap)?;
        Ok(soc)
    }

    /// Side-effect-free memory read through the interconnect: no latency,
    /// no counters, no cache-LRU or claim-register perturbation; resident
    /// cache lines overlay their backing stores. The debugger's inspection
    /// path — interleaving peeks into a run leaves it bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates routing/range errors.
    pub fn peek_mem(&self, addr: u64, buf: &mut [u8]) -> Result<(), SocError> {
        use hulkv_mem::MemoryDevice;
        self.bus_typed.borrow().peek(addr, buf)?;
        Ok(())
    }

    /// Loads a host program at [`map::HOST_CODE`] and prepares the core
    /// (PC, stack pointer, then `regs`), leaving it resumed but not yet
    /// run: the flight recorder and the replay debugger drive execution in
    /// explicit [`HulkV::run_host_until`] windows.
    ///
    /// # Errors
    ///
    /// Propagates loading errors.
    pub fn start_host_program(
        &mut self,
        words: &[u32],
        regs: &[(Reg, u64)],
    ) -> Result<(), SocError> {
        self.host.load_program(map::HOST_CODE, words)?;
        let core = self.host.core_mut();
        core.set_pc(map::HOST_CODE);
        core.set_reg(Reg::Sp, map::L2SPM_BASE + self.cfg.l2spm_bytes as u64);
        for &(r, v) in regs {
            core.set_reg(r, v);
        }
        core.resume();
        Ok(())
    }

    /// Advances an in-flight host program (started with
    /// [`HulkV::start_host_program`] or left mid-run by a restored
    /// snapshot) until the host core's *total* cycle count reaches `target`
    /// or the program halts; returns whether it halted. Timeline sampling
    /// boundaries are honored inside the window, and the underlying step
    /// sequence is the one an unchunked run would execute, so any chunking
    /// of the same program is cycle-bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates execution errors (never a timeout — budget enforcement is
    /// the caller's).
    pub fn run_host_until(&mut self, target: u64) -> Result<bool, SocError> {
        if self.timeline.is_none() {
            return Ok(self.host.run_until_cycle(target)?);
        }
        let host_freq = self.cfg.host.freq;
        let soc_freq = self.cfg.host.soc_freq;
        loop {
            let next_due = self.timeline.as_ref().map_or(u64::MAX, Timeline::next_due);
            let delta_soc = next_due.saturating_sub(self.timeline_now).max(1);
            let delta_host = convert_freq(Cycles::new(delta_soc), soc_freq, host_freq)
                .get()
                .max(1);
            let anchor = self.host.core().cycles().get();
            let chunk = anchor.saturating_add(delta_host).min(target);
            let halted = self.host.run_until_cycle(chunk)?;
            let now = self.host.core().cycles().get();
            self.timeline_now += convert_freq(Cycles::new(now - anchor), host_freq, soc_freq).get();
            if halted {
                self.timeline_sample();
                return Ok(true);
            }
            if self
                .timeline
                .as_ref()
                .is_some_and(|tl| tl.due(self.timeline_now))
            {
                self.timeline_sample();
            }
            if now >= target {
                return Ok(false);
            }
        }
    }

    /// Backdoor memory write through the interconnect (no cycles charged).
    ///
    /// # Errors
    ///
    /// Propagates routing/range errors.
    pub fn write_mem(&mut self, addr: u64, data: &[u8]) -> Result<(), SocError> {
        self.bus.borrow_mut().write(addr, data)?;
        Ok(())
    }

    /// Backdoor memory read through the interconnect.
    ///
    /// # Errors
    ///
    /// Propagates routing/range errors.
    pub fn read_mem(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), SocError> {
        self.bus.borrow_mut().read(addr, buf)?;
        Ok(())
    }

    /// Allocates `bytes` in the shared main-memory window, 64-byte aligned
    /// — the `hulk_malloc()` of the user-space runtime. The returned
    /// address is below 4 GB, so the 32-bit PMCA can dereference it.
    ///
    /// # Errors
    ///
    /// [`SocError::OutOfSharedMemory`] when the window is exhausted.
    pub fn hulk_malloc(&mut self, bytes: usize) -> Result<u64, SocError> {
        let addr = self.shared_next;
        let end = addr
            .checked_add(bytes as u64)
            .ok_or(SocError::OutOfSharedMemory { requested: bytes })?;
        if end > map::DRAM_BASE + self.cfg.main_memory_bytes() {
            return Err(SocError::OutOfSharedMemory { requested: bytes });
        }
        self.shared_next = (end + 63) & !63;
        self.stats.add("hulk_malloc_bytes", bytes as u64);
        Ok(addr)
    }

    /// Registers a PMCA kernel binary: writes it into the DRAM kernel
    /// store (the boot/driver path) and returns a handle for
    /// [`HulkV::offload`]. The code is *not* loaded into the L2SPM yet —
    /// that happens lazily on first offload, as in the paper's OpenMP
    /// runtime.
    ///
    /// # Errors
    ///
    /// Propagates memory errors when the binary does not fit.
    pub fn register_kernel(&mut self, words: &[u32]) -> Result<KernelId, SocError> {
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let addr = self.kernel_store_next;
        self.dram_raw
            .borrow_mut()
            .write(addr - map::DRAM_BASE, &bytes)?;
        self.kernel_store_next = (addr + bytes.len() as u64 + 63) & !63;
        self.kernels.push(KernelState {
            dram_addr: addr,
            bytes: bytes.len(),
            loaded_at: None,
        });
        Ok(KernelId(self.kernels.len() - 1))
    }

    /// Drops the cached L2SPM copy of a kernel, so the next offload pays
    /// the code load again (used by the Figure-6 "×1" experiments).
    pub fn evict_kernel(&mut self, kernel: KernelId) {
        self.kernels[kernel.0].loaded_at = None;
    }

    /// The handle for the `index`-th registered kernel, if it exists.
    /// Replay streams store kernels by registration index.
    pub fn kernel_id(&self, index: usize) -> Option<KernelId> {
        (index < self.kernels.len()).then_some(KernelId(index))
    }

    /// Offloads `kernel` to the PMCA: lazy code load, descriptor + mailbox
    /// doorbell, fork/join team execution, completion doorbell.
    ///
    /// # Errors
    ///
    /// Propagates memory and execution errors.
    pub fn offload(
        &mut self,
        kernel: KernelId,
        args: &[(Reg, u64)],
        num_cores: usize,
        max_cycles: u64,
    ) -> Result<OffloadResult, SocError> {
        let team_cores = num_cores.min(self.cfg.cluster.cores).max(1);
        self.trace(TraceEvent::OffloadBegin {
            kernel: kernel.0 as u32,
            cores: team_cores as u32,
        });
        let mut overhead = Cycles::new(self.cfg.offload_descriptor_cycles);
        overhead += self.mailbox.doorbell_cost() * 2;

        // Lazy code load: µDMA the binary from the DRAM store into the
        // L2SPM (the µDMA connects them directly, bypassing the LLC).
        let k = &self.kernels[kernel.0];
        let (entry_l2, loaded_now) = match k.loaded_at {
            Some(off) => (off, false),
            None => {
                let off = self.l2_code_next;
                if off as usize + k.bytes > self.cfg.l2spm_bytes / 2 {
                    return Err(SocError::OutOfKernelSpace);
                }
                let l2 = self.l2spm.clone();
                let lat = self.udma.run_1d(
                    &self.dram_raw,
                    &l2,
                    Transfer1d {
                        src: k.dram_addr - map::DRAM_BASE,
                        dst: off,
                        bytes: k.bytes,
                    },
                )?;
                overhead += lat;
                self.l2_code_next = (off + k.bytes as u64 + 63) & !63;
                self.kernels[kernel.0].loaded_at = Some(off);
                self.stats.inc("kernel_loads");
                (off, true)
            }
        };

        // Doorbell: descriptor pointer to the cluster, completion back.
        let descriptor = map::L2SPM_BASE + entry_l2;
        let _ = self.mailbox.host_send(descriptor);
        self.trace(TraceEvent::MailboxSend {
            to_cluster: true,
            value: descriptor,
        });
        let _ = self.mailbox.cluster_recv();
        self.trace(TraceEvent::MailboxRecv {
            by_host: false,
            value: descriptor,
        });

        let team =
            self.cluster
                .run_team(map::L2SPM_BASE + entry_l2, args, num_cores, max_cycles)?;

        let _ = self.mailbox.cluster_send(0);
        self.trace(TraceEvent::MailboxSend {
            to_cluster: false,
            value: 0,
        });
        let _ = self.mailbox.host_recv();
        self.trace(TraceEvent::MailboxRecv {
            by_host: true,
            value: 0,
        });

        let team_soc = convert_freq(team.cycles, self.cfg.cluster.freq, self.cfg.host.soc_freq);
        self.stats.inc("offloads");
        if let Some(t) = &self.tracer {
            // The completion span covers the SoC-side overhead; the team's
            // own time already advanced the trace clock core by core.
            t.borrow_mut().record_span(
                Track::Soc,
                TraceEvent::OffloadEnd {
                    kernel: kernel.0 as u32,
                },
                overhead.get(),
            );
        }
        if self.timeline.is_some() {
            self.timeline_now += (overhead + team_soc).get();
            self.timeline_sample();
        }
        Ok(OffloadResult {
            total_soc_cycles: overhead + team_soc,
            overhead_cycles: overhead,
            team,
            code_loaded: loaded_now,
        })
    }

    /// Assembles `src` (see [`hulkv_rv::parse_program`]) and runs it on the
    /// host — the quickest way to script the SoC.
    ///
    /// # Errors
    ///
    /// Propagates assembly, loading and execution errors.
    ///
    /// # Example
    ///
    /// ```
    /// use hulkv::{HulkV, SocConfig};
    ///
    /// let mut soc = HulkV::new(SocConfig::default())?;
    /// soc.run_host_assembly("li a0, 40\naddi a0, a0, 2\nebreak\n")?;
    /// assert_eq!(soc.host().core().reg(hulkv_rv::Reg::A0), 42);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn run_host_assembly(&mut self, src: &str) -> Result<Cycles, SocError> {
        let words = hulkv_rv::parse_program(src, hulkv_rv::Xlen::Rv64)?;
        self.run_host_program(&words, |_| {}, 10_000_000_000)
    }

    /// Loads a host program at [`map::HOST_CODE`], applies `setup` to the
    /// core (arguments, stack), runs to `ebreak`, and returns the consumed
    /// host-core cycles.
    ///
    /// # Errors
    ///
    /// Propagates loading and execution errors.
    pub fn run_host_program(
        &mut self,
        words: &[u32],
        setup: impl FnOnce(&mut Core),
        max_cycles: u64,
    ) -> Result<Cycles, SocError> {
        self.host.load_program(map::HOST_CODE, words)?;
        let core = self.host.core_mut();
        core.set_pc(map::HOST_CODE);
        core.set_reg(Reg::Sp, map::L2SPM_BASE + self.cfg.l2spm_bytes as u64);
        setup(core);
        core.resume();
        if self.timeline.is_none() {
            return Ok(self.host.run(max_cycles)?);
        }
        self.run_host_sampled(max_cycles)
    }

    /// Window-by-window host run used when the timeline is enabled. The
    /// step sequence is exactly the one [`Host::run`] would execute — the
    /// run is only paused at sampling boundaries — so sampled and
    /// unsampled runs stay cycle-bit-identical.
    fn run_host_sampled(&mut self, max_cycles: u64) -> Result<Cycles, SocError> {
        let host_freq = self.cfg.host.freq;
        let soc_freq = self.cfg.host.soc_freq;
        let start = self.host.core().cycles().get();
        let limit = start.saturating_add(max_cycles);
        loop {
            // Convert the next due SoC-domain boundary to a host-core
            // cycle target, capped at the run budget (+1 so the overrun
            // that [`Host::run`] reports as Timeout is observable).
            let next_due = self.timeline.as_ref().map_or(u64::MAX, Timeline::next_due);
            let delta_soc = next_due.saturating_sub(self.timeline_now).max(1);
            let delta_host = convert_freq(Cycles::new(delta_soc), soc_freq, host_freq)
                .get()
                .max(1);
            let anchor = self.host.core().cycles().get();
            let target = anchor
                .saturating_add(delta_host)
                .min(limit.saturating_add(1));
            let halted = self.host.run_until_cycle(target)?;
            let now = self.host.core().cycles().get();
            self.timeline_now += convert_freq(Cycles::new(now - anchor), host_freq, soc_freq).get();
            if halted {
                self.timeline_sample();
                return Ok(Cycles::new(now - start));
            }
            if now > limit {
                return Err(RvError::Timeout {
                    cycles: now - start,
                }
                .into());
            }
            if self
                .timeline
                .as_ref()
                .is_some_and(|tl| tl.due(self.timeline_now))
            {
                self.timeline_sample();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemorySetup;
    use hulkv_rv::{Asm, Xlen};

    #[test]
    fn builds_all_memory_setups() {
        for setup in MemorySetup::ALL {
            let soc = HulkV::new(SocConfig::with_memory_setup(setup)).unwrap();
            assert_eq!(soc.config().main_memory_bytes(), 512 << 20);
        }
    }

    #[test]
    fn hulk_malloc_is_aligned_and_monotonic() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let a = soc.hulk_malloc(100).unwrap();
        let b = soc.hulk_malloc(10).unwrap();
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert!(a >= map::SHARED_BASE);
        // The PMCA can address it.
        assert!(a < 1 << 32);
    }

    #[test]
    fn hulk_malloc_exhausts() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let err = soc.hulk_malloc(600 << 20);
        assert!(matches!(err, Err(SocError::OutOfSharedMemory { .. })));
    }

    #[test]
    fn host_program_runs_from_dram() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::A0, 21);
        a.add(Reg::A0, Reg::A0, Reg::A0);
        a.ebreak();
        soc.run_host_program(&a.assemble().unwrap(), |_| {}, 1_000_000)
            .unwrap();
        assert_eq!(soc.host().core().reg(Reg::A0), 42);
    }

    fn counting_loop(iters: i64) -> Vec<u32> {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::A0, iters);
        a.li(Reg::A1, 0);
        let top = a.label();
        a.bind(top);
        a.addi(Reg::A1, Reg::A1, 1);
        a.addi(Reg::A0, Reg::A0, -1);
        a.bnez(Reg::A0, top);
        a.ebreak();
        a.assemble().unwrap()
    }

    #[test]
    fn timeline_samples_host_runs_window_by_window() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        soc.enable_timeline(200);
        soc.run_host_program(&counting_loop(2000), |_| {}, 10_000_000)
            .unwrap();
        let tl = soc.timeline().unwrap();
        assert!(tl.len() >= 3, "expected several windows, got {}", tl.len());
        let mut last_end = 0;
        let mut instret = 0;
        for w in tl.windows() {
            assert_eq!(w.start_cycle, last_end);
            assert!(w.end_cycle > w.start_cycle);
            last_end = w.end_cycle;
            instret += w.deltas.get("core.instret").copied().unwrap_or(0);
        }
        // The windows' deltas add up to the whole run.
        assert_eq!(instret, soc.host().core().instret());
        assert_eq!(last_end, soc.timeline_cycle());
    }

    #[test]
    fn timeline_sampling_is_cycle_neutral() {
        let run = |sampled: bool| {
            let mut soc = HulkV::new(SocConfig::default()).unwrap();
            if sampled {
                // An aggressive period maximizes chunking.
                soc.enable_timeline(64);
            }
            let cycles = soc
                .run_host_program(&counting_loop(3000), |_| {}, 10_000_000)
                .unwrap();
            let buf = soc.hulk_malloc(32).unwrap();
            let kernel = soc.register_kernel(&trivial_kernel()).unwrap();
            let off = soc
                .offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)
                .unwrap();
            (
                cycles,
                off.total_soc_cycles,
                soc.host().core().instret(),
                soc.metrics_snapshot().to_json().to_string(),
            )
        };
        let (c_on, o_on, i_on, snap_on) = run(true);
        let (c_off, o_off, i_off, snap_off) = run(false);
        assert_eq!(c_on, c_off, "sampling changed host cycles");
        assert_eq!(o_on, o_off, "sampling changed offload cycles");
        assert_eq!(i_on, i_off);
        assert_eq!(snap_on, snap_off, "sampling perturbed a block counter");
    }

    #[test]
    fn timeline_offload_closes_a_window() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        soc.enable_timeline(1_000_000);
        let buf = soc.hulk_malloc(32).unwrap();
        let kernel = soc.register_kernel(&trivial_kernel()).unwrap();
        let r = soc
            .offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)
            .unwrap();
        let tl = soc.take_timeline().unwrap();
        assert_eq!(tl.len(), 1);
        let w = &tl.windows()[0];
        assert_eq!(w.cycles(), r.total_soc_cycles.get());
        assert!(w.deltas.contains_key("cluster.instret"));
        // Detached: further runs don't sample.
        assert!(soc.timeline().is_none());
    }

    #[test]
    fn sampled_runs_still_time_out() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        soc.enable_timeline(100);
        let err = soc.run_host_program(&counting_loop(100_000), |_| {}, 1_000);
        assert!(matches!(err, Err(SocError::Exec(RvError::Timeout { .. }))));
    }

    fn trivial_kernel() -> Vec<u32> {
        let mut k = Asm::new(Xlen::Rv32);
        k.csrr(Reg::T0, hulkv_rv::csr::addr::MHARTID);
        k.slli(Reg::T1, Reg::T0, 2);
        k.add(Reg::T1, Reg::A0, Reg::T1);
        k.addi(Reg::T0, Reg::T0, 1);
        k.sw(Reg::T0, Reg::T1, 0);
        k.ebreak();
        k.assemble().unwrap()
    }

    #[test]
    fn offload_round_trip_writes_shared_buffer() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let buf = soc.hulk_malloc(32).unwrap();
        let kernel = soc.register_kernel(&trivial_kernel()).unwrap();
        let r = soc
            .offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)
            .unwrap();
        assert!(r.code_loaded);
        for hart in 0..8u64 {
            let mut b = [0u8; 4];
            soc.read_mem(buf + hart * 4, &mut b).unwrap();
            assert_eq!(u32::from_le_bytes(b), hart as u32 + 1);
        }
    }

    #[test]
    fn lazy_code_load_amortizes() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let buf = soc.hulk_malloc(32).unwrap();
        let kernel = soc.register_kernel(&trivial_kernel()).unwrap();
        let first = soc
            .offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)
            .unwrap();
        let second = soc
            .offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)
            .unwrap();
        assert!(first.code_loaded);
        assert!(!second.code_loaded);
        assert!(first.overhead_cycles > second.overhead_cycles);
        assert!(first.total_soc_cycles > second.total_soc_cycles);
        assert_eq!(soc.stats().get("kernel_loads"), 1);
        assert_eq!(soc.stats().get("offloads"), 2);

        // Evicting the kernel makes the next offload pay again.
        soc.evict_kernel(kernel);
        let third = soc
            .offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)
            .unwrap();
        assert!(third.code_loaded);
    }

    #[test]
    fn cluster_cannot_touch_the_clint() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        // Kernel that pokes the CLINT — the IOPMP must kill it.
        let mut k = Asm::new(Xlen::Rv32);
        k.li(Reg::T0, map::CLINT_BASE as i64);
        k.sw(Reg::Zero, Reg::T0, 0);
        k.ebreak();
        let kernel = soc.register_kernel(&k.assemble().unwrap()).unwrap();
        let err = soc.offload(kernel, &[], 1, 1_000_000);
        assert!(err.is_err());
    }

    #[test]
    fn llc_accelerates_host_dram_loop() {
        // Two passes over a 64 kB region: bigger than the 32 kB L1D (so the
        // second pass misses L1) but smaller than the 128 kB LLC (so it hits
        // there). Streaming with no reuse would not benefit from the LLC.
        let mut prog = Asm::new(Xlen::Rv64);
        prog.li(Reg::T3, 2); // passes
        let pass = prog.label();
        prog.bind(pass);
        prog.li(Reg::T0, (map::DRAM_BASE + 0x40_0000) as i64);
        prog.li(Reg::T2, 8192);
        let top = prog.label();
        prog.bind(top);
        prog.ld(Reg::T1, Reg::T0, 0);
        prog.addi(Reg::T0, Reg::T0, 8);
        prog.addi(Reg::T2, Reg::T2, -1);
        prog.bnez(Reg::T2, top);
        prog.addi(Reg::T3, Reg::T3, -1);
        prog.bnez(Reg::T3, pass);
        prog.ebreak();
        let words = prog.assemble().unwrap();

        let mut with_llc =
            HulkV::new(SocConfig::with_memory_setup(MemorySetup::HyperWithLlc)).unwrap();
        let c1 = with_llc
            .run_host_program(&words, |_| {}, 100_000_000)
            .unwrap();
        let mut without = HulkV::new(SocConfig::with_memory_setup(MemorySetup::HyperOnly)).unwrap();
        let c2 = without
            .run_host_program(&words, |_| {}, 100_000_000)
            .unwrap();
        // With write-allocated 64 B lines, the LLC turns most accesses into
        // hits; without it every L1 miss pays full HyperRAM latency.
        assert!(c2 > c1, "with LLC {c1}, without {c2}");
    }

    #[test]
    fn tracer_covers_host_cluster_dma_and_llc_tracks() {
        use hulkv_sim::{category, Tracer};

        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let tracer = Tracer::shared(1 << 16);
        tracer.borrow_mut().enable(category::ALL);
        soc.attach_tracer(tracer.clone());

        let buf = soc.hulk_malloc(32).unwrap();
        let kernel = soc.register_kernel(&trivial_kernel()).unwrap();
        soc.offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)
            .unwrap();
        // Touch DRAM from the host so the L1/LLC/DRAM path records too.
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, (map::DRAM_BASE + 0x10_0000) as i64);
        a.ld(Reg::T1, Reg::T0, 0);
        a.ebreak();
        soc.run_host_program(&a.assemble().unwrap(), |_| {}, 1_000_000)
            .unwrap();

        let t = tracer.borrow();
        let tracks: std::collections::BTreeSet<u64> = t.events().map(|r| r.track.tid()).collect();
        for required in [
            Track::HostHart,
            Track::ClusterCore(0),
            Track::Dma,
            Track::Llc,
        ] {
            assert!(
                tracks.contains(&required.tid()),
                "missing track {:?} in {tracks:?}",
                required
            );
        }
        // Offload + mailbox events landed on the SoC track.
        let names: std::collections::BTreeSet<&str> = t.events().map(|r| r.event.name()).collect();
        for required in ["offload_begin", "offload", "mailbox_send", "mailbox_recv"] {
            assert!(names.contains(required), "missing {required} in {names:?}");
        }
    }

    #[test]
    fn metrics_snapshot_collects_every_block() {
        let mut soc = HulkV::new(SocConfig::default()).unwrap();
        let buf = soc.hulk_malloc(32).unwrap();
        let kernel = soc.register_kernel(&trivial_kernel()).unwrap();
        soc.offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)
            .unwrap();
        let snap = soc.metrics_snapshot();
        let names: Vec<&str> = snap.blocks.iter().map(|b| b.name()).collect();
        for required in ["soc", "core", "l1i", "l1d", "cluster", "udma", "hyperram"] {
            assert!(names.contains(&required), "missing {required} in {names:?}");
        }
        // The simulator's decode-cache counters ride along in the cluster
        // block (the offload above ran 8 cores through the fast path).
        let cluster_block = snap.blocks.iter().find(|b| b.name() == "cluster").unwrap();
        assert!(cluster_block.get("decode_hits") + cluster_block.get("decode_misses") > 0);
        // Round-trips through the JSON exporter.
        let parsed = MetricsSnapshot::parse(&snap.to_json().to_string()).unwrap();
        assert_eq!(parsed.blocks.len(), snap.blocks.len());
    }

    #[test]
    fn error_display_and_source() {
        let e = SocError::OutOfSharedMemory { requested: 64 };
        assert!(e.to_string().contains("64"));
        let e: SocError = SimError::UnmappedAddress { addr: 1 }.into();
        assert!(e.source().is_some());
    }
}
