//! The hardware mailbox between host and cluster.

use hulkv_sim::{Cycles, Stats};
use std::collections::VecDeque;

/// A bidirectional hardware mailbox.
///
/// HULK-V implements "efficient communication between cluster and host
/// domain through a dedicated hardware mailbox": a pair of small FIFOs with
/// doorbell interrupts. The offload runtime pushes a task descriptor
/// pointer from the host side and the cluster's rendezvous core pops it;
/// completion flows the other way.
///
/// # Example
///
/// ```
/// use hulkv::Mailbox;
///
/// let mut mb = Mailbox::new(4);
/// mb.host_send(0xDEAD).unwrap();
/// assert_eq!(mb.cluster_recv(), Some(0xDEAD));
/// assert_eq!(mb.cluster_recv(), None);
/// ```
#[derive(Debug)]
pub struct Mailbox {
    depth: usize,
    to_cluster: VecDeque<u64>,
    to_host: VecDeque<u64>,
    stats: Stats,
}

impl Mailbox {
    /// Creates a mailbox with FIFOs of `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "mailbox depth must be non-zero");
        Mailbox {
            depth,
            to_cluster: VecDeque::new(),
            to_host: VecDeque::new(),
            stats: Stats::new("mailbox"),
        }
    }

    /// Cost of one mailbox doorbell transaction, in SoC cycles.
    pub fn doorbell_cost(&self) -> Cycles {
        Cycles::new(6)
    }

    /// Host pushes a message toward the cluster.
    ///
    /// # Errors
    ///
    /// Returns the message back when the FIFO is full.
    pub fn host_send(&mut self, msg: u64) -> Result<(), u64> {
        if self.to_cluster.len() >= self.depth {
            self.stats.inc("full_rejections");
            return Err(msg);
        }
        self.to_cluster.push_back(msg);
        self.stats.inc("host_to_cluster");
        Ok(())
    }

    /// Cluster pops the next message from the host.
    pub fn cluster_recv(&mut self) -> Option<u64> {
        self.to_cluster.pop_front()
    }

    /// Cluster pushes a message toward the host.
    ///
    /// # Errors
    ///
    /// Returns the message back when the FIFO is full.
    pub fn cluster_send(&mut self, msg: u64) -> Result<(), u64> {
        if self.to_host.len() >= self.depth {
            self.stats.inc("full_rejections");
            return Err(msg);
        }
        self.to_host.push_back(msg);
        self.stats.inc("cluster_to_host");
        Ok(())
    }

    /// Host pops the next message from the cluster.
    pub fn host_recv(&mut self) -> Option<u64> {
        self.to_host.pop_front()
    }

    /// Pending messages in the host→cluster direction.
    pub fn pending_for_cluster(&self) -> usize {
        self.to_cluster.len()
    }

    /// Activity counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_both_directions() {
        let mut mb = Mailbox::new(8);
        mb.host_send(1).unwrap();
        mb.host_send(2).unwrap();
        assert_eq!(mb.cluster_recv(), Some(1));
        assert_eq!(mb.cluster_recv(), Some(2));
        mb.cluster_send(3).unwrap();
        mb.cluster_send(4).unwrap();
        assert_eq!(mb.host_recv(), Some(3));
        assert_eq!(mb.host_recv(), Some(4));
    }

    #[test]
    fn full_fifo_rejects() {
        let mut mb = Mailbox::new(2);
        mb.host_send(1).unwrap();
        mb.host_send(2).unwrap();
        assert_eq!(mb.host_send(3), Err(3));
        assert_eq!(mb.pending_for_cluster(), 2);
        assert_eq!(mb.stats().get("full_rejections"), 1);
    }

    #[test]
    fn empty_recv_is_none() {
        let mut mb = Mailbox::new(1);
        assert_eq!(mb.host_recv(), None);
        assert_eq!(mb.cluster_recv(), None);
    }
}
