//! The hardware mailbox between host and cluster.

use hulkv_sim::{Cycles, Stats};
use std::collections::VecDeque;

/// A bidirectional hardware mailbox.
///
/// HULK-V implements "efficient communication between cluster and host
/// domain through a dedicated hardware mailbox": a pair of small FIFOs with
/// doorbell interrupts. The offload runtime pushes a task descriptor
/// pointer from the host side and the cluster's rendezvous core pops it;
/// completion flows the other way.
///
/// # Example
///
/// ```
/// use hulkv::Mailbox;
///
/// let mut mb = Mailbox::new(4);
/// mb.host_send(0xDEAD).unwrap();
/// assert_eq!(mb.cluster_recv(), Some(0xDEAD));
/// assert_eq!(mb.cluster_recv(), None);
/// ```
#[derive(Debug)]
pub struct Mailbox {
    depth: usize,
    to_cluster: VecDeque<u64>,
    to_host: VecDeque<u64>,
    stats: Stats,
}

impl Mailbox {
    /// Creates a mailbox with FIFOs of `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "mailbox depth must be non-zero");
        Mailbox {
            depth,
            to_cluster: VecDeque::new(),
            to_host: VecDeque::new(),
            stats: Stats::new("mailbox"),
        }
    }

    /// Cost of one mailbox doorbell transaction, in SoC cycles.
    pub fn doorbell_cost(&self) -> Cycles {
        Cycles::new(6)
    }

    /// Host pushes a message toward the cluster.
    ///
    /// # Errors
    ///
    /// Returns the message back when the FIFO is full.
    pub fn host_send(&mut self, msg: u64) -> Result<(), u64> {
        if self.to_cluster.len() >= self.depth {
            self.stats.inc("full_rejections");
            return Err(msg);
        }
        self.to_cluster.push_back(msg);
        self.stats.inc("host_to_cluster");
        Ok(())
    }

    /// Cluster pops the next message from the host.
    pub fn cluster_recv(&mut self) -> Option<u64> {
        self.to_cluster.pop_front()
    }

    /// Cluster pushes a message toward the host.
    ///
    /// # Errors
    ///
    /// Returns the message back when the FIFO is full.
    pub fn cluster_send(&mut self, msg: u64) -> Result<(), u64> {
        if self.to_host.len() >= self.depth {
            self.stats.inc("full_rejections");
            return Err(msg);
        }
        self.to_host.push_back(msg);
        self.stats.inc("cluster_to_host");
        Ok(())
    }

    /// Host pops the next message from the cluster.
    pub fn host_recv(&mut self) -> Option<u64> {
        self.to_host.pop_front()
    }

    /// Pending messages in the host→cluster direction.
    pub fn pending_for_cluster(&self) -> usize {
        self.to_cluster.len()
    }

    /// Activity counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// FNV-1a digest of the FIFO state: depth and the queued messages in
    /// order, both directions. Stats are excluded: they count traffic, not
    /// state.
    pub fn state_digest(&self) -> u64 {
        let mut h = hulkv_sim::Fnv64::new();
        h.write_u64(self.depth as u64);
        h.write_u64(self.to_cluster.len() as u64);
        for m in &self.to_cluster {
            h.write_u64(*m);
        }
        h.write_u64(self.to_host.len() as u64);
        for m in &self.to_host {
            h.write_u64(*m);
        }
        h.finish()
    }

    /// Serializes the FIFOs and stats.
    pub fn snapshot_json(&self) -> hulkv_sim::Json {
        use hulkv_sim::snap::{hex, stats_to_json};
        use hulkv_sim::Json;
        let fifo = |q: &VecDeque<u64>| Json::Arr(q.iter().map(|&m| hex(m)).collect());
        Json::obj([
            ("depth", hex(self.depth as u64)),
            ("to_cluster", fifo(&self.to_cluster)),
            ("to_host", fifo(&self.to_host)),
            ("stats", stats_to_json(&self.stats)),
        ])
    }

    /// Restores state written by [`Mailbox::snapshot_json`]. The mailbox
    /// must have been constructed with the same depth.
    ///
    /// # Errors
    ///
    /// On depth mismatch or a malformed section.
    pub fn restore_json(&mut self, j: &hulkv_sim::Json) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, get_arr, get_u64, restore_stats, unhex, SnapError};
        let depth = get_u64(j, "depth")? as usize;
        if depth != self.depth {
            return Err(SnapError::msg(format!(
                "mailbox depth mismatch: snapshot {depth}, target {}",
                self.depth
            )));
        }
        let fifo = |v: &[hulkv_sim::Json]| -> hulkv_sim::SnapResult<VecDeque<u64>> {
            v.iter().map(unhex).collect()
        };
        self.to_cluster = fifo(get_arr(j, "to_cluster")?)?;
        self.to_host = fifo(get_arr(j, "to_host")?)?;
        restore_stats(&mut self.stats, get(j, "stats")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_both_directions() {
        let mut mb = Mailbox::new(8);
        mb.host_send(1).unwrap();
        mb.host_send(2).unwrap();
        assert_eq!(mb.cluster_recv(), Some(1));
        assert_eq!(mb.cluster_recv(), Some(2));
        mb.cluster_send(3).unwrap();
        mb.cluster_send(4).unwrap();
        assert_eq!(mb.host_recv(), Some(3));
        assert_eq!(mb.host_recv(), Some(4));
    }

    #[test]
    fn full_fifo_rejects() {
        let mut mb = Mailbox::new(2);
        mb.host_send(1).unwrap();
        mb.host_send(2).unwrap();
        assert_eq!(mb.host_send(3), Err(3));
        assert_eq!(mb.pending_for_cluster(), 2);
        assert_eq!(mb.stats().get("full_rejections"), 1);
    }

    #[test]
    fn empty_recv_is_none() {
        let mut mb = Mailbox::new(1);
        assert_eq!(mb.host_recv(), None);
        assert_eq!(mb.cluster_recv(), None);
    }
}
