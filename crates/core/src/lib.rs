//! # HULK-V: a Heterogeneous Ultra-Low-power Linux-capable RISC-V SoC
//!
//! This crate is the top level of the HULK-V reproduction: it assembles the
//! substrates — the CVA6 host ([`hulkv_host`]), the 8-core PMCA
//! ([`hulkv_cluster`]), and the fully digital memory hierarchy
//! ([`hulkv_mem`]: L2SPM, LLC, HyperRAM or DDR4 main memory, µDMA) — into
//! one SoC behind a single builder, and implements the heterogeneous
//! runtime of §IV:
//!
//! * [`HulkV::hulk_malloc`] — allocation in the shared main-memory window
//!   addressable by both the 64-bit host (Sv39) and the 32-bit PMCA;
//! * [`HulkV::register_kernel`] / [`HulkV::offload`] — the OpenMP-style
//!   offload path with *lazy* code loading: the first offload pays for
//!   copying the kernel binary into the L2SPM (the overhead that dominates
//!   short kernels in Figure 6), subsequent offloads ride the cached copy;
//! * the hardware mailbox and IOPMP sitting between the two subsystems.
//!
//! # Example
//!
//! ```
//! use hulkv::{HulkV, SocConfig};
//! use hulkv_rv::{Asm, Reg, Xlen};
//!
//! let mut soc = HulkV::new(SocConfig::default())?;
//!
//! // A trivial cluster kernel: every core writes its hart id + 100 into
//! // the result buffer passed in a0.
//! let mut k = Asm::new(Xlen::Rv32);
//! k.csrr(Reg::T0, hulkv_rv::csr::addr::MHARTID);
//! k.slli(Reg::T1, Reg::T0, 2);
//! k.add(Reg::T1, Reg::A0, Reg::T1);
//! k.addi(Reg::T0, Reg::T0, 100);
//! k.sw(Reg::T0, Reg::T1, 0);
//! k.ebreak();
//!
//! let buf = soc.hulk_malloc(8 * 4)?;
//! let kernel = soc.register_kernel(&k.assemble()?)?;
//! let result = soc.offload(kernel, &[(Reg::A0, buf)], 8, 1_000_000)?;
//! assert!(result.code_loaded);
//!
//! let mut out = [0u8; 4];
//! soc.read_mem(buf + 3 * 4, &mut out)?;
//! assert_eq!(u32::from_le_bytes(out), 103);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod iopmp;
mod mailbox;
mod record;
mod soc;

pub use config::{MainMemory, MemorySetup, SocConfig};
pub use iopmp::IoPmp;
pub use mailbox::Mailbox;
pub use record::{
    apply_command, Checkpoint, Command, RecordError, Recorder, Recording, RECORDING_FORMAT,
    RECORDING_MAGIC,
};
pub use soc::{default_iopmp_windows, host_regions, map, HulkV, KernelId, OffloadResult, SocError};
