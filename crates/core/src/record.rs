//! The flight recorder: deterministic record & replay of SoC runs.
//!
//! The simulator is single-threaded and every source of nondeterminism
//! enters through the SoC's public driving API — host programs, offloads,
//! backdoor writes, peripheral interrupts, time advances. The recorder
//! therefore journals exactly that **command stream** (the nondeterminism
//! frontier) and, while executing it, drops full-machine [`Snapshot`]s
//! into a bounded ring every `period` host cycles. Any window of the run
//! can then be reproduced bit-identically: restore the nearest checkpoint
//! at or before the point of interest and re-execute the journal from
//! there — same cycles, same stats, same [`HulkV::state_digest`].
//!
//! Checkpoints inside a host program are legal (the host core snapshots
//! mid-flight); checkpoints inside an offload are not — cluster team
//! cores are transient — so the recorder only snapshots at host-program
//! window boundaries and between commands, which are the only points
//! where the machine is quiescent.

use crate::config::SocConfig;
use crate::soc::{HulkV, SocError};
use hulkv_rv::{Reg, RvError};
use hulkv_sim::snap::{get, get_arr, get_bool, get_u64, hex, unhex, SnapError};
use hulkv_sim::{Cycles, Json, SnapResult, Snapshot};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Magic prefixing a serialized [`Recording`].
pub const RECORDING_MAGIC: &[u8; 8] = b"HULKVREC";
/// Format version written by [`Recording::to_bytes`].
pub const RECORDING_FORMAT: u32 = 1;

/// One entry of the command journal: everything the outside world can do
/// to the SoC, with every input captured by value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// [`HulkV::run_host_program`] — program words, initial registers
    /// (applied after the default PC/SP setup) and the cycle budget.
    RunHostProgram {
        /// The program image loaded at [`crate::map::HOST_CODE`].
        words: Vec<u32>,
        /// Initial register values applied before the run.
        regs: Vec<(Reg, u64)>,
        /// Host-cycle budget (overrun is a recorded failure, not UB).
        max_cycles: u64,
    },
    /// [`HulkV::hulk_malloc`].
    HulkMalloc {
        /// Allocation size.
        bytes: usize,
    },
    /// [`HulkV::register_kernel`].
    RegisterKernel {
        /// The PMCA binary.
        words: Vec<u32>,
    },
    /// [`HulkV::offload`], kernel referenced by registration index.
    Offload {
        /// Registration index of the kernel.
        kernel: usize,
        /// Kernel arguments.
        args: Vec<(Reg, u64)>,
        /// Requested team width.
        num_cores: usize,
        /// Cluster-cycle budget.
        max_cycles: u64,
    },
    /// [`HulkV::evict_kernel`], by registration index.
    EvictKernel {
        /// Registration index of the kernel.
        kernel: usize,
    },
    /// [`HulkV::advance_time`].
    AdvanceTime {
        /// CLINT ticks.
        ticks: u64,
    },
    /// [`HulkV::raise_peripheral_irq`].
    RaisePeripheralIrq {
        /// PLIC source id.
        id: u32,
    },
    /// [`HulkV::write_mem`] (backdoor).
    WriteMem {
        /// Destination address.
        addr: u64,
        /// Bytes written.
        data: Vec<u8>,
    },
    /// [`hulkv_cluster::Cluster::tcdm_write`] (backdoor working-set
    /// staging).
    TcdmWrite {
        /// TCDM offset.
        offset: u64,
        /// Bytes written.
        data: Vec<u8>,
    },
    /// [`HulkV::udma_transfer`].
    UdmaTransfer {
        /// Source address.
        src: u64,
        /// Destination address.
        dst: u64,
        /// Transfer length.
        bytes: usize,
    },
}

fn regs_to_json(regs: &[(Reg, u64)]) -> Json {
    Json::Arr(
        regs.iter()
            .map(|&(r, v)| Json::Arr(vec![hex(u64::from(r.index())), hex(v)]))
            .collect(),
    )
}

fn regs_from_json(v: &[Json]) -> SnapResult<Vec<(Reg, u64)>> {
    let mut regs = Vec::with_capacity(v.len());
    for pair in v {
        let Json::Arr(p) = pair else {
            return Err(SnapError::msg(
                "register binding is not a [reg, value] pair",
            ));
        };
        if p.len() != 2 {
            return Err(SnapError::msg(
                "register binding is not a [reg, value] pair",
            ));
        }
        let idx = unhex(&p[0])?;
        if idx >= 32 {
            return Err(SnapError::msg(format!("register index {idx} out of range")));
        }
        regs.push((Reg::from_index(idx as u8), unhex(&p[1])?));
    }
    Ok(regs)
}

fn words_to_json(words: &[u32]) -> Json {
    Json::Arr(words.iter().map(|&w| hex(u64::from(w))).collect())
}

fn words_from_json(v: &[Json]) -> SnapResult<Vec<u32>> {
    v.iter().map(|w| Ok(unhex(w)? as u32)).collect()
}

impl Command {
    /// Serializes the command.
    pub fn to_json(&self) -> Json {
        match self {
            Command::RunHostProgram {
                words,
                regs,
                max_cycles,
            } => Json::obj([
                ("kind", Json::Str("run_host_program".into())),
                ("words", words_to_json(words)),
                ("regs", regs_to_json(regs)),
                ("max_cycles", hex(*max_cycles)),
            ]),
            Command::HulkMalloc { bytes } => Json::obj([
                ("kind", Json::Str("hulk_malloc".into())),
                ("bytes", hex(*bytes as u64)),
            ]),
            Command::RegisterKernel { words } => Json::obj([
                ("kind", Json::Str("register_kernel".into())),
                ("words", words_to_json(words)),
            ]),
            Command::Offload {
                kernel,
                args,
                num_cores,
                max_cycles,
            } => Json::obj([
                ("kind", Json::Str("offload".into())),
                ("kernel", hex(*kernel as u64)),
                ("args", regs_to_json(args)),
                ("num_cores", hex(*num_cores as u64)),
                ("max_cycles", hex(*max_cycles)),
            ]),
            Command::EvictKernel { kernel } => Json::obj([
                ("kind", Json::Str("evict_kernel".into())),
                ("kernel", hex(*kernel as u64)),
            ]),
            Command::AdvanceTime { ticks } => Json::obj([
                ("kind", Json::Str("advance_time".into())),
                ("ticks", hex(*ticks)),
            ]),
            Command::RaisePeripheralIrq { id } => Json::obj([
                ("kind", Json::Str("raise_peripheral_irq".into())),
                ("id", hex(u64::from(*id))),
            ]),
            Command::WriteMem { addr, data } => Json::obj([
                ("kind", Json::Str("write_mem".into())),
                ("addr", hex(*addr)),
                (
                    "data",
                    Json::Arr(data.iter().map(|&b| hex(u64::from(b))).collect()),
                ),
            ]),
            Command::TcdmWrite { offset, data } => Json::obj([
                ("kind", Json::Str("tcdm_write".into())),
                ("offset", hex(*offset)),
                (
                    "data",
                    Json::Arr(data.iter().map(|&b| hex(u64::from(b))).collect()),
                ),
            ]),
            Command::UdmaTransfer { src, dst, bytes } => Json::obj([
                ("kind", Json::Str("udma_transfer".into())),
                ("src", hex(*src)),
                ("dst", hex(*dst)),
                ("bytes", hex(*bytes as u64)),
            ]),
        }
    }

    /// Deserializes a command written by [`Command::to_json`].
    ///
    /// # Errors
    ///
    /// On an unknown kind or malformed fields.
    pub fn from_json(j: &Json) -> SnapResult<Command> {
        let kind = get(j, "kind")?
            .as_str()
            .ok_or_else(|| SnapError::msg("command kind is not a string"))?;
        Ok(match kind {
            "run_host_program" => Command::RunHostProgram {
                words: words_from_json(get_arr(j, "words")?)?,
                regs: regs_from_json(get_arr(j, "regs")?)?,
                max_cycles: get_u64(j, "max_cycles")?,
            },
            "hulk_malloc" => Command::HulkMalloc {
                bytes: get_u64(j, "bytes")? as usize,
            },
            "register_kernel" => Command::RegisterKernel {
                words: words_from_json(get_arr(j, "words")?)?,
            },
            "offload" => Command::Offload {
                kernel: get_u64(j, "kernel")? as usize,
                args: regs_from_json(get_arr(j, "args")?)?,
                num_cores: get_u64(j, "num_cores")? as usize,
                max_cycles: get_u64(j, "max_cycles")?,
            },
            "evict_kernel" => Command::EvictKernel {
                kernel: get_u64(j, "kernel")? as usize,
            },
            "advance_time" => Command::AdvanceTime {
                ticks: get_u64(j, "ticks")?,
            },
            "raise_peripheral_irq" => Command::RaisePeripheralIrq {
                id: get_u64(j, "id")? as u32,
            },
            "write_mem" => Command::WriteMem {
                addr: get_u64(j, "addr")?,
                data: get_arr(j, "data")?
                    .iter()
                    .map(|b| Ok(unhex(b)? as u8))
                    .collect::<SnapResult<Vec<u8>>>()?,
            },
            "tcdm_write" => Command::TcdmWrite {
                offset: get_u64(j, "offset")?,
                data: get_arr(j, "data")?
                    .iter()
                    .map(|b| Ok(unhex(b)? as u8))
                    .collect::<SnapResult<Vec<u8>>>()?,
            },
            "udma_transfer" => Command::UdmaTransfer {
                src: get_u64(j, "src")?,
                dst: get_u64(j, "dst")?,
                bytes: get_u64(j, "bytes")? as usize,
            },
            other => return Err(SnapError::msg(format!("unknown command kind {other:?}"))),
        })
    }
}

/// A checkpoint in the flight-recorder ring: a full-machine snapshot plus
/// its position in the command journal.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Commands fully applied before this checkpoint. When `in_progress`,
    /// `commands[cmd_index]` is the host program the snapshot sits inside.
    pub cmd_index: usize,
    /// Host-core cycle count at the checkpoint.
    pub host_cycle: u64,
    /// Host-core retired-instruction count at the checkpoint.
    pub instret: u64,
    /// Whether the snapshot was taken mid-host-program.
    pub in_progress: bool,
    /// Absolute host-cycle budget of the in-flight program (meaningful
    /// only when `in_progress`).
    pub limit: u64,
    /// The serialized [`Snapshot`].
    pub bytes: Vec<u8>,
}

/// Record/replay failures: a replayed command erroring, or a malformed
/// recording/snapshot.
#[derive(Debug)]
pub enum RecordError {
    /// A (re)executed command failed.
    Soc(SocError),
    /// The recording or an embedded snapshot is malformed.
    Snap(SnapError),
    /// The journal and the machine disagree — e.g. a program that halted
    /// during recording refuses to halt on replay.
    Diverged(String),
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Soc(e) => write!(f, "replayed command failed: {e}"),
            RecordError::Snap(e) => write!(f, "malformed recording: {e}"),
            RecordError::Diverged(what) => write!(f, "replay diverged: {what}"),
        }
    }
}

impl Error for RecordError {}

impl From<SocError> for RecordError {
    fn from(e: SocError) -> Self {
        RecordError::Soc(e)
    }
}

impl From<SnapError> for RecordError {
    fn from(e: SnapError) -> Self {
        RecordError::Snap(e)
    }
}

/// Re-executes one journal entry against `soc`. Return values (allocation
/// addresses, kernel ids, cycle counts) are deterministic functions of the
/// SoC state, so replay discards them.
///
/// # Errors
///
/// Propagates the underlying command's error; a host program that exceeds
/// its recorded budget fails with the same timeout the recording saw.
pub fn apply_command(soc: &mut HulkV, cmd: &Command) -> Result<(), RecordError> {
    match cmd {
        Command::RunHostProgram {
            words,
            regs,
            max_cycles,
        } => {
            soc.start_host_program(words, regs)?;
            let start = soc.host().core().cycles().get();
            let limit = start.saturating_add(*max_cycles);
            let halted = soc.run_host_until(limit.saturating_add(1))?;
            if !halted {
                let cycles = soc.host().core().cycles().get() - start;
                return Err(RecordError::Soc(RvError::Timeout { cycles }.into()));
            }
            Ok(())
        }
        Command::HulkMalloc { bytes } => {
            soc.hulk_malloc(*bytes)?;
            Ok(())
        }
        Command::RegisterKernel { words } => {
            soc.register_kernel(words)?;
            Ok(())
        }
        Command::Offload {
            kernel,
            args,
            num_cores,
            max_cycles,
        } => {
            let id = soc.kernel_id(*kernel).ok_or_else(|| {
                RecordError::Diverged(format!("offload references unknown kernel {kernel}"))
            })?;
            soc.offload(id, args, *num_cores, *max_cycles)?;
            Ok(())
        }
        Command::EvictKernel { kernel } => {
            let id = soc.kernel_id(*kernel).ok_or_else(|| {
                RecordError::Diverged(format!("evict references unknown kernel {kernel}"))
            })?;
            soc.evict_kernel(id);
            Ok(())
        }
        Command::AdvanceTime { ticks } => {
            soc.advance_time(*ticks);
            Ok(())
        }
        Command::RaisePeripheralIrq { id } => {
            soc.raise_peripheral_irq(*id);
            Ok(())
        }
        Command::WriteMem { addr, data } => {
            soc.write_mem(*addr, data)?;
            Ok(())
        }
        Command::TcdmWrite { offset, data } => {
            soc.cluster_mut()
                .tcdm_write(*offset, data)
                .map_err(SocError::from)?;
            Ok(())
        }
        Command::UdmaTransfer { src, dst, bytes } => {
            soc.udma_transfer(*src, *dst, *bytes)?;
            Ok(())
        }
    }
}

/// The flight recorder: owns a [`HulkV`], journals every command driven
/// through it, and keeps a bounded ring of periodic checkpoints.
///
/// # Example
///
/// ```
/// use hulkv::{Recorder, SocConfig};
///
/// let mut rec = Recorder::new(SocConfig::default(), 10_000, 8)?;
/// let words = hulkv_rv::parse_program("li a0, 7\nebreak\n", hulkv_rv::Xlen::Rv64)?;
/// rec.run_host_program(&words, &[], 1_000_000)?;
/// let recording = rec.recording();
/// let replayed = recording.replay_to_end()?;
/// assert_eq!(replayed.state_digest(), rec.soc().state_digest());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Recorder {
    soc: HulkV,
    config: Json,
    commands: Vec<Command>,
    checkpoints: VecDeque<Checkpoint>,
    period: u64,
    capacity: usize,
    last_checkpoint_cycle: u64,
}

impl Recorder {
    /// Builds the SoC from `cfg` and takes the initial checkpoint.
    /// `period` is the target host-cycle distance between checkpoints;
    /// the ring keeps the most recent `capacity` of them.
    ///
    /// # Errors
    ///
    /// Propagates SoC construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `capacity` is zero.
    pub fn new(cfg: SocConfig, period: u64, capacity: usize) -> Result<Self, SocError> {
        assert!(period > 0, "checkpoint period must be non-zero");
        assert!(capacity > 0, "checkpoint ring capacity must be non-zero");
        let soc = HulkV::new(cfg)?;
        let config = soc.config().to_json();
        let mut rec = Recorder {
            soc,
            config,
            commands: Vec::new(),
            checkpoints: VecDeque::new(),
            period,
            capacity,
            last_checkpoint_cycle: 0,
        };
        rec.push_checkpoint(false, 0);
        Ok(rec)
    }

    /// The recorded SoC (read-only: mutate it only through the journaling
    /// wrappers, or replay will diverge).
    pub fn soc(&self) -> &HulkV {
        &self.soc
    }

    /// The journal so far.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// The checkpoint ring, oldest first.
    pub fn checkpoints(&self) -> impl Iterator<Item = &Checkpoint> {
        self.checkpoints.iter()
    }

    fn push_checkpoint(&mut self, in_progress: bool, limit: u64) {
        let snap = self.soc.snapshot();
        let cp = Checkpoint {
            cmd_index: self.commands.len() - usize::from(in_progress),
            host_cycle: self.soc.host().core().cycles().get(),
            instret: self.soc.host().core().instret(),
            in_progress,
            limit,
            bytes: snap.to_bytes(),
        };
        self.last_checkpoint_cycle = cp.host_cycle;
        self.checkpoints.push_back(cp);
        while self.checkpoints.len() > self.capacity {
            self.checkpoints.pop_front();
        }
    }

    fn checkpoint_if_due(&mut self) {
        if self.soc.host().core().cycles().get() >= self.last_checkpoint_cycle + self.period {
            self.push_checkpoint(false, 0);
        }
    }

    /// Journals and runs a host program, checkpointing every `period`
    /// host cycles while it executes. Semantically identical to
    /// [`HulkV::run_host_program`] with the register bindings applied as
    /// setup.
    ///
    /// # Errors
    ///
    /// Propagates loading and execution errors; exceeding `max_cycles` is
    /// a timeout exactly as in the unrecorded path.
    pub fn run_host_program(
        &mut self,
        words: &[u32],
        regs: &[(Reg, u64)],
        max_cycles: u64,
    ) -> Result<Cycles, SocError> {
        self.commands.push(Command::RunHostProgram {
            words: words.to_vec(),
            regs: regs.to_vec(),
            max_cycles,
        });
        self.soc.start_host_program(words, regs)?;
        let start = self.soc.host().core().cycles().get();
        let limit = start.saturating_add(max_cycles);
        loop {
            let target = (self.soc.host().core().cycles().get())
                .saturating_add(self.period)
                .min(limit.saturating_add(1));
            let halted = self.soc.run_host_until(target)?;
            let now = self.soc.host().core().cycles().get();
            if halted {
                self.checkpoint_if_due();
                return Ok(Cycles::new(now - start));
            }
            if now > limit {
                return Err(RvError::Timeout {
                    cycles: now - start,
                }
                .into());
            }
            self.push_checkpoint(true, limit);
        }
    }

    /// Journals [`HulkV::hulk_malloc`].
    ///
    /// # Errors
    ///
    /// Propagates the allocation error.
    pub fn hulk_malloc(&mut self, bytes: usize) -> Result<u64, SocError> {
        self.commands.push(Command::HulkMalloc { bytes });
        let addr = self.soc.hulk_malloc(bytes)?;
        self.checkpoint_if_due();
        Ok(addr)
    }

    /// Journals [`HulkV::register_kernel`].
    ///
    /// # Errors
    ///
    /// Propagates registration errors.
    pub fn register_kernel(&mut self, words: &[u32]) -> Result<crate::KernelId, SocError> {
        self.commands.push(Command::RegisterKernel {
            words: words.to_vec(),
        });
        let id = self.soc.register_kernel(words)?;
        self.checkpoint_if_due();
        Ok(id)
    }

    /// Journals [`HulkV::offload`]. No checkpoint lands inside the
    /// offload — team cores are transient — so the ring advances only at
    /// its completion.
    ///
    /// # Errors
    ///
    /// Propagates offload errors.
    pub fn offload(
        &mut self,
        kernel: crate::KernelId,
        args: &[(Reg, u64)],
        num_cores: usize,
        max_cycles: u64,
    ) -> Result<crate::OffloadResult, SocError> {
        self.commands.push(Command::Offload {
            kernel: kernel.index(),
            args: args.to_vec(),
            num_cores,
            max_cycles,
        });
        let r = self.soc.offload(kernel, args, num_cores, max_cycles)?;
        self.checkpoint_if_due();
        Ok(r)
    }

    /// Journals [`HulkV::evict_kernel`].
    pub fn evict_kernel(&mut self, kernel: crate::KernelId) {
        self.commands.push(Command::EvictKernel {
            kernel: kernel.index(),
        });
        self.soc.evict_kernel(kernel);
    }

    /// Journals [`HulkV::advance_time`].
    pub fn advance_time(&mut self, ticks: u64) {
        self.commands.push(Command::AdvanceTime { ticks });
        self.soc.advance_time(ticks);
    }

    /// Journals [`HulkV::raise_peripheral_irq`].
    pub fn raise_peripheral_irq(&mut self, id: u32) {
        self.commands.push(Command::RaisePeripheralIrq { id });
        self.soc.raise_peripheral_irq(id);
    }

    /// Journals [`HulkV::write_mem`].
    ///
    /// # Errors
    ///
    /// Propagates routing/range errors.
    pub fn write_mem(&mut self, addr: u64, data: &[u8]) -> Result<(), SocError> {
        self.commands.push(Command::WriteMem {
            addr,
            data: data.to_vec(),
        });
        self.soc.write_mem(addr, data)
    }

    /// Journals [`hulkv_cluster::Cluster::tcdm_write`].
    ///
    /// # Errors
    ///
    /// Propagates range errors.
    pub fn tcdm_write(&mut self, offset: u64, data: &[u8]) -> Result<(), SocError> {
        self.commands.push(Command::TcdmWrite {
            offset,
            data: data.to_vec(),
        });
        self.soc
            .cluster_mut()
            .tcdm_write(offset, data)
            .map_err(SocError::from)
    }

    /// Journals [`HulkV::udma_transfer`].
    ///
    /// # Errors
    ///
    /// Propagates transfer errors.
    pub fn udma_transfer(&mut self, src: u64, dst: u64, bytes: usize) -> Result<Cycles, SocError> {
        self.commands
            .push(Command::UdmaTransfer { src, dst, bytes });
        let lat = self.soc.udma_transfer(src, dst, bytes)?;
        self.checkpoint_if_due();
        Ok(lat)
    }

    /// The finished [`Recording`]: configuration, journal, and the
    /// surviving checkpoint ring.
    pub fn recording(&self) -> Recording {
        Recording {
            config: self.config.clone(),
            commands: self.commands.clone(),
            checkpoints: self.checkpoints.iter().cloned().collect(),
        }
    }

    /// Consumes the recorder, returning the SoC and the recording.
    pub fn finish(self) -> (HulkV, Recording) {
        let Recorder {
            soc,
            config,
            commands,
            checkpoints,
            ..
        } = self;
        (
            soc,
            Recording {
                config,
                commands,
                checkpoints: checkpoints.into_iter().collect(),
            },
        )
    }
}

/// A serializable flight-recorder capture: the SoC configuration, the
/// command journal from cycle zero, and the checkpoint ring.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The SoC configuration ([`SocConfig::to_json`]).
    pub config: Json,
    /// The command journal, in execution order.
    pub commands: Vec<Command>,
    /// Surviving checkpoints, oldest first.
    pub checkpoints: Vec<Checkpoint>,
}

impl Recording {
    /// Serializes to the `HULKVREC` container: magic, format word, a JSON
    /// header (config, journal, checkpoint metadata), then the raw
    /// checkpoint snapshot blobs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = Json::obj([
            ("config", self.config.clone()),
            (
                "commands",
                Json::Arr(self.commands.iter().map(Command::to_json).collect()),
            ),
            (
                "checkpoints",
                Json::Arr(
                    self.checkpoints
                        .iter()
                        .map(|cp| {
                            Json::obj([
                                ("cmd_index", hex(cp.cmd_index as u64)),
                                ("host_cycle", hex(cp.host_cycle)),
                                ("instret", hex(cp.instret)),
                                ("in_progress", Json::Bool(cp.in_progress)),
                                ("limit", hex(cp.limit)),
                                ("bytes_len", hex(cp.bytes.len() as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string();
        let mut out = Vec::with_capacity(
            8 + 4
                + 8
                + header.len()
                + self
                    .checkpoints
                    .iter()
                    .map(|c| c.bytes.len())
                    .sum::<usize>(),
        );
        out.extend_from_slice(RECORDING_MAGIC);
        out.extend_from_slice(&RECORDING_FORMAT.to_le_bytes());
        out.extend_from_slice(&(header.len() as u64).to_le_bytes());
        out.extend_from_slice(header.as_bytes());
        for cp in &self.checkpoints {
            out.extend_from_slice(&cp.bytes);
        }
        out
    }

    /// Deserializes a container written by [`Recording::to_bytes`].
    ///
    /// # Errors
    ///
    /// On a wrong magic, an unsupported format word, or truncation.
    pub fn from_bytes(bytes: &[u8]) -> SnapResult<Recording> {
        let need = |n: usize, at: usize| {
            if bytes.len() < at + n {
                Err(SnapError::msg("recording truncated"))
            } else {
                Ok(())
            }
        };
        need(8 + 4 + 8, 0)?;
        if &bytes[..8] != RECORDING_MAGIC {
            return Err(SnapError::msg("not a HULKVREC recording"));
        }
        let format = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if format != RECORDING_FORMAT {
            return Err(SnapError::msg(format!(
                "unsupported recording format {format} (expected {RECORDING_FORMAT})"
            )));
        }
        let header_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        need(header_len, 20)?;
        let header = std::str::from_utf8(&bytes[20..20 + header_len])
            .map_err(|_| SnapError::msg("recording header is not UTF-8"))?;
        let header = Json::parse(header).map_err(SnapError::msg)?;
        let config = get(&header, "config")?.clone();
        let mut commands = Vec::new();
        for c in get_arr(&header, "commands")? {
            commands.push(Command::from_json(c)?);
        }
        let mut checkpoints = Vec::new();
        let mut cursor = 20 + header_len;
        for cp in get_arr(&header, "checkpoints")? {
            let len = get_u64(cp, "bytes_len")? as usize;
            need(len, cursor)?;
            checkpoints.push(Checkpoint {
                cmd_index: get_u64(cp, "cmd_index")? as usize,
                host_cycle: get_u64(cp, "host_cycle")?,
                instret: get_u64(cp, "instret")?,
                in_progress: get_bool(cp, "in_progress")?,
                limit: get_u64(cp, "limit")?,
                bytes: bytes[cursor..cursor + len].to_vec(),
            });
            cursor += len;
        }
        Ok(Recording {
            config,
            commands,
            checkpoints,
        })
    }

    /// Builds a fresh SoC from the embedded configuration (the cycle-zero
    /// state — replay never needs a checkpoint to start from the top).
    ///
    /// # Errors
    ///
    /// On a malformed or unbuildable configuration.
    pub fn fresh_soc(&self) -> Result<HulkV, RecordError> {
        let cfg = SocConfig::from_json(&self.config)?;
        Ok(HulkV::new(cfg)?)
    }

    /// Replays the whole journal from cycle zero and returns the final
    /// machine — bit-identical to the recorded run's end state.
    ///
    /// # Errors
    ///
    /// Propagates command and configuration errors.
    pub fn replay_to_end(&self) -> Result<HulkV, RecordError> {
        let mut soc = self.fresh_soc()?;
        for cmd in &self.commands {
            apply_command(&mut soc, cmd)?;
        }
        Ok(soc)
    }

    /// Restores checkpoint `idx` and replays the rest of the journal; the
    /// returned machine is bit-identical to [`Recording::replay_to_end`].
    ///
    /// # Errors
    ///
    /// Propagates restore and command errors; a mid-program checkpoint
    /// whose program no longer halts within its recorded budget is a
    /// divergence.
    pub fn resume_from(&self, idx: usize) -> Result<HulkV, RecordError> {
        let cp = self
            .checkpoints
            .get(idx)
            .ok_or_else(|| RecordError::Diverged(format!("no checkpoint {idx}")))?;
        let mut soc = self.restore_checkpoint(cp)?;
        let mut next = cp.cmd_index;
        if cp.in_progress {
            let halted = soc.run_host_until(cp.limit.saturating_add(1))?;
            if !halted {
                return Err(RecordError::Diverged(
                    "in-flight host program did not halt within its recorded budget".into(),
                ));
            }
            next += 1;
        }
        for cmd in &self.commands[next..] {
            apply_command(&mut soc, cmd)?;
        }
        Ok(soc)
    }

    /// Restores a checkpoint's snapshot into a freshly built SoC without
    /// replaying anything after it.
    ///
    /// # Errors
    ///
    /// On a malformed snapshot or configuration.
    pub fn restore_checkpoint(&self, cp: &Checkpoint) -> Result<HulkV, RecordError> {
        let snap = Snapshot::from_bytes(&cp.bytes)?;
        Ok(HulkV::from_snapshot(&snap)?)
    }

    /// The index of the latest checkpoint at or before `host_cycle`, if
    /// any survives in the ring.
    pub fn checkpoint_at_or_before(&self, host_cycle: u64) -> Option<usize> {
        self.checkpoints
            .iter()
            .enumerate()
            .rev()
            .find(|(_, cp)| cp.host_cycle <= host_cycle)
            .map(|(i, _)| i)
    }

    /// Same lookup keyed by retired-instruction count.
    pub fn checkpoint_at_or_before_instret(&self, instret: u64) -> Option<usize> {
        self.checkpoints
            .iter()
            .enumerate()
            .rev()
            .find(|(_, cp)| cp.instret <= instret)
            .map(|(i, _)| i)
    }
}
