//! SoC-level configuration.

use hulkv_cluster::ClusterConfig;
use hulkv_host::HostConfig;
use hulkv_mem::{DdrConfig, HyperRamConfig, LlcConfig};
use hulkv_sim::snap::{get, get_bool, get_u64, hex, SnapError};
use hulkv_sim::{Cycles, Freq, Json, SnapResult};

/// Which main-memory technology backs the SoC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MainMemory {
    /// The fully digital HyperRAM subsystem (the HULK-V way).
    HyperRam(HyperRamConfig),
    /// An LPDDR4/DDR4 subsystem (the power-hungry baseline).
    Ddr(DdrConfig),
}

/// The four memory configurations benchmarked in Figures 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySetup {
    /// DDR4 main memory behind the LLC (configuration 1).
    DdrWithLlc,
    /// HyperRAM behind the LLC — the shipping HULK-V (configuration 2).
    HyperWithLlc,
    /// DDR4 without the LLC (configuration 3).
    DdrOnly,
    /// HyperRAM without the LLC (configuration 4).
    HyperOnly,
}

impl MemorySetup {
    /// All four configurations, in the paper's order.
    pub const ALL: [MemorySetup; 4] = [
        MemorySetup::DdrWithLlc,
        MemorySetup::HyperWithLlc,
        MemorySetup::DdrOnly,
        MemorySetup::HyperOnly,
    ];

    /// Human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            MemorySetup::DdrWithLlc => "DDR4+LLC",
            MemorySetup::HyperWithLlc => "Hyper+LLC",
            MemorySetup::DdrOnly => "DDR4",
            MemorySetup::HyperOnly => "Hyper",
        }
    }
}

/// Full static configuration of a [`HulkV`](crate::HulkV) instance.
///
/// # Example
///
/// ```
/// use hulkv::{MemorySetup, SocConfig};
///
/// // The flagship chip: HyperRAM + 128 kB LLC.
/// let flagship = SocConfig::default();
/// assert!(flagship.llc.is_some());
///
/// // The Figure-7 baseline: raw DDR4, no LLC.
/// let baseline = SocConfig::with_memory_setup(MemorySetup::DdrOnly);
/// assert!(baseline.llc.is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Main-memory technology and parameters.
    pub main_memory: MainMemory,
    /// Last-level cache geometry; `None` removes the LLC.
    pub llc: Option<LlcConfig>,
    /// Host (CVA6) configuration.
    pub host: HostConfig,
    /// PMCA configuration.
    pub cluster: ClusterConfig,
    /// L2 scratchpad size (512 kB in HULK-V).
    pub l2spm_bytes: usize,
    /// Fixed driver/descriptor/mailbox cost of one offload, in SoC cycles
    /// (calibrated so that, with lazy code loading, sub-100k-cycle kernels
    /// see their speedup halved on the first call, as in Figure 6).
    pub offload_descriptor_cycles: u64,
}

impl Default for SocConfig {
    /// The flagship HULK-V: 512 MB HyperRAM behind a 128 kB LLC.
    fn default() -> Self {
        SocConfig {
            main_memory: MainMemory::HyperRam(HyperRamConfig::default()),
            llc: Some(LlcConfig::default()),
            host: HostConfig::default(),
            cluster: ClusterConfig::default(),
            l2spm_bytes: 512 * 1024,
            offload_descriptor_cycles: 1500,
        }
    }
}

impl SocConfig {
    /// Builds the configuration for one of the four Figure-7/8 memory
    /// setups, leaving everything else at the flagship defaults.
    pub fn with_memory_setup(setup: MemorySetup) -> Self {
        let mut cfg = SocConfig::default();
        match setup {
            MemorySetup::DdrWithLlc => {
                cfg.main_memory = MainMemory::Ddr(DdrConfig::default());
            }
            MemorySetup::HyperWithLlc => {}
            MemorySetup::DdrOnly => {
                cfg.main_memory = MainMemory::Ddr(DdrConfig::default());
                cfg.llc = None;
            }
            MemorySetup::HyperOnly => {
                cfg.llc = None;
            }
        }
        cfg
    }

    /// Main-memory capacity in bytes.
    pub fn main_memory_bytes(&self) -> u64 {
        match &self.main_memory {
            MainMemory::HyperRam(h) => h.total_bytes(),
            MainMemory::Ddr(d) => d.size_bytes,
        }
    }

    /// Serializes the full configuration — recording and snapshot headers
    /// embed this so a replay tool can rebuild an identical SoC from the
    /// file alone.
    pub fn to_json(&self) -> Json {
        let main = match &self.main_memory {
            MainMemory::HyperRam(h) => Json::obj([
                ("kind", Json::Str("hyperram".into())),
                ("chips_per_bus", hex(h.chips_per_bus as u64)),
                ("chip_bytes", hex(h.chip_bytes)),
                ("dual_bus", Json::Bool(h.dual_bus)),
                ("bus_freq_khz", hex(h.bus_freq.khz())),
                ("soc_freq_khz", hex(h.soc_freq.khz())),
                ("ca_cycles", hex(h.ca_cycles)),
                ("access_cycles", hex(h.access_cycles)),
                ("fixed_2x_latency", Json::Bool(h.fixed_2x_latency)),
                ("max_burst_bytes", hex(h.max_burst_bytes as u64)),
                ("frontend_cycles", hex(h.frontend_cycles)),
            ]),
            MainMemory::Ddr(d) => Json::obj([
                ("kind", Json::Str("ddr".into())),
                ("size_bytes", hex(d.size_bytes)),
                ("latency_cycles", hex(d.latency_cycles)),
                ("bytes_per_cycle", hex(d.bytes_per_cycle)),
            ]),
        };
        let llc = match &self.llc {
            None => Json::Null,
            Some(l) => Json::obj([
                ("blocks", hex(l.blocks as u64)),
                ("lines", hex(l.lines as u64)),
                ("ways", hex(l.ways as u64)),
                ("axi_bytes", hex(l.axi_bytes as u64)),
                ("hit_latency", hex(l.hit_latency.get())),
                ("cacheable_start", hex(l.cacheable_start)),
                ("cacheable_end", hex(l.cacheable_end)),
            ]),
        };
        let host = Json::obj([
            ("freq_khz", hex(self.host.freq.khz())),
            ("soc_freq_khz", hex(self.host.soc_freq.khz())),
            ("l1i_bytes", hex(self.host.l1i_bytes as u64)),
            ("l1d_bytes", hex(self.host.l1d_bytes as u64)),
            ("line_bytes", hex(self.host.line_bytes as u64)),
            ("caches_enabled", Json::Bool(self.host.caches_enabled)),
            ("cacheable_start", hex(self.host.cacheable_start)),
            ("decode_cache", Json::Bool(self.host.decode_cache)),
        ]);
        let cluster = Json::obj([
            ("cores", hex(self.cluster.cores as u64)),
            ("banks", hex(self.cluster.banks as u64)),
            ("bank_bytes", hex(self.cluster.bank_bytes as u64)),
            (
                "icache_private_bytes",
                hex(self.cluster.icache_private_bytes as u64),
            ),
            (
                "icache_shared_bytes",
                hex(self.cluster.icache_shared_bytes as u64),
            ),
            ("freq_khz", hex(self.cluster.freq.khz())),
            ("soc_freq_khz", hex(self.cluster.soc_freq.khz())),
            ("barrier_cycles", hex(self.cluster.barrier_cycles)),
            ("stack_bytes", hex(self.cluster.stack_bytes as u64)),
            ("decode_cache", Json::Bool(self.cluster.decode_cache)),
        ]);
        Json::obj([
            ("main_memory", main),
            ("llc", llc),
            ("host", host),
            ("cluster", cluster),
            ("l2spm_bytes", hex(self.l2spm_bytes as u64)),
            (
                "offload_descriptor_cycles",
                hex(self.offload_descriptor_cycles),
            ),
        ])
    }

    /// Rebuilds a configuration written by [`SocConfig::to_json`].
    ///
    /// # Errors
    ///
    /// On a malformed or unknown-kind document.
    pub fn from_json(j: &Json) -> SnapResult<SocConfig> {
        let m = get(j, "main_memory")?;
        let main_memory = match get(m, "kind")?.as_str() {
            Some("hyperram") => MainMemory::HyperRam(HyperRamConfig {
                chips_per_bus: get_u64(m, "chips_per_bus")? as usize,
                chip_bytes: get_u64(m, "chip_bytes")?,
                dual_bus: get_bool(m, "dual_bus")?,
                bus_freq: Freq::khz_new(get_u64(m, "bus_freq_khz")?),
                soc_freq: Freq::khz_new(get_u64(m, "soc_freq_khz")?),
                ca_cycles: get_u64(m, "ca_cycles")?,
                access_cycles: get_u64(m, "access_cycles")?,
                fixed_2x_latency: get_bool(m, "fixed_2x_latency")?,
                max_burst_bytes: get_u64(m, "max_burst_bytes")? as usize,
                frontend_cycles: get_u64(m, "frontend_cycles")?,
            }),
            Some("ddr") => MainMemory::Ddr(DdrConfig {
                size_bytes: get_u64(m, "size_bytes")?,
                latency_cycles: get_u64(m, "latency_cycles")?,
                bytes_per_cycle: get_u64(m, "bytes_per_cycle")?,
            }),
            other => {
                return Err(SnapError::msg(format!(
                    "unknown main-memory kind {other:?}"
                )))
            }
        };
        let llc = match get(j, "llc")? {
            Json::Null => None,
            l => Some(LlcConfig {
                blocks: get_u64(l, "blocks")? as usize,
                lines: get_u64(l, "lines")? as usize,
                ways: get_u64(l, "ways")? as usize,
                axi_bytes: get_u64(l, "axi_bytes")? as usize,
                hit_latency: Cycles::new(get_u64(l, "hit_latency")?),
                cacheable_start: get_u64(l, "cacheable_start")?,
                cacheable_end: get_u64(l, "cacheable_end")?,
            }),
        };
        let h = get(j, "host")?;
        let host = HostConfig {
            freq: Freq::khz_new(get_u64(h, "freq_khz")?),
            soc_freq: Freq::khz_new(get_u64(h, "soc_freq_khz")?),
            l1i_bytes: get_u64(h, "l1i_bytes")? as usize,
            l1d_bytes: get_u64(h, "l1d_bytes")? as usize,
            line_bytes: get_u64(h, "line_bytes")? as usize,
            caches_enabled: get_bool(h, "caches_enabled")?,
            cacheable_start: get_u64(h, "cacheable_start")?,
            decode_cache: get_bool(h, "decode_cache")?,
        };
        let c = get(j, "cluster")?;
        let cluster = ClusterConfig {
            cores: get_u64(c, "cores")? as usize,
            banks: get_u64(c, "banks")? as usize,
            bank_bytes: get_u64(c, "bank_bytes")? as usize,
            icache_private_bytes: get_u64(c, "icache_private_bytes")? as usize,
            icache_shared_bytes: get_u64(c, "icache_shared_bytes")? as usize,
            freq: Freq::khz_new(get_u64(c, "freq_khz")?),
            soc_freq: Freq::khz_new(get_u64(c, "soc_freq_khz")?),
            barrier_cycles: get_u64(c, "barrier_cycles")?,
            stack_bytes: get_u64(c, "stack_bytes")? as usize,
            decode_cache: get_bool(c, "decode_cache")?,
        };
        Ok(SocConfig {
            main_memory,
            llc,
            host,
            cluster,
            l2spm_bytes: get_u64(j, "l2spm_bytes")? as usize,
            offload_descriptor_cycles: get_u64(j, "offload_descriptor_cycles")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_flagship() {
        let cfg = SocConfig::default();
        assert!(matches!(cfg.main_memory, MainMemory::HyperRam(_)));
        assert_eq!(cfg.main_memory_bytes(), 512 << 20);
        assert_eq!(cfg.l2spm_bytes, 512 * 1024);
    }

    #[test]
    fn memory_setups_cover_the_grid() {
        for setup in MemorySetup::ALL {
            let cfg = SocConfig::with_memory_setup(setup);
            let is_ddr = matches!(cfg.main_memory, MainMemory::Ddr(_));
            let has_llc = cfg.llc.is_some();
            match setup {
                MemorySetup::DdrWithLlc => assert!(is_ddr && has_llc),
                MemorySetup::HyperWithLlc => assert!(!is_ddr && has_llc),
                MemorySetup::DdrOnly => assert!(is_ddr && !has_llc),
                MemorySetup::HyperOnly => assert!(!is_ddr && !has_llc),
            }
        }
    }

    #[test]
    fn setup_names_unique() {
        let names: std::collections::HashSet<_> =
            MemorySetup::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
