//! SoC-level configuration.

use hulkv_cluster::ClusterConfig;
use hulkv_host::HostConfig;
use hulkv_mem::{DdrConfig, HyperRamConfig, LlcConfig};

/// Which main-memory technology backs the SoC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MainMemory {
    /// The fully digital HyperRAM subsystem (the HULK-V way).
    HyperRam(HyperRamConfig),
    /// An LPDDR4/DDR4 subsystem (the power-hungry baseline).
    Ddr(DdrConfig),
}

/// The four memory configurations benchmarked in Figures 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySetup {
    /// DDR4 main memory behind the LLC (configuration 1).
    DdrWithLlc,
    /// HyperRAM behind the LLC — the shipping HULK-V (configuration 2).
    HyperWithLlc,
    /// DDR4 without the LLC (configuration 3).
    DdrOnly,
    /// HyperRAM without the LLC (configuration 4).
    HyperOnly,
}

impl MemorySetup {
    /// All four configurations, in the paper's order.
    pub const ALL: [MemorySetup; 4] = [
        MemorySetup::DdrWithLlc,
        MemorySetup::HyperWithLlc,
        MemorySetup::DdrOnly,
        MemorySetup::HyperOnly,
    ];

    /// Human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            MemorySetup::DdrWithLlc => "DDR4+LLC",
            MemorySetup::HyperWithLlc => "Hyper+LLC",
            MemorySetup::DdrOnly => "DDR4",
            MemorySetup::HyperOnly => "Hyper",
        }
    }
}

/// Full static configuration of a [`HulkV`](crate::HulkV) instance.
///
/// # Example
///
/// ```
/// use hulkv::{MemorySetup, SocConfig};
///
/// // The flagship chip: HyperRAM + 128 kB LLC.
/// let flagship = SocConfig::default();
/// assert!(flagship.llc.is_some());
///
/// // The Figure-7 baseline: raw DDR4, no LLC.
/// let baseline = SocConfig::with_memory_setup(MemorySetup::DdrOnly);
/// assert!(baseline.llc.is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Main-memory technology and parameters.
    pub main_memory: MainMemory,
    /// Last-level cache geometry; `None` removes the LLC.
    pub llc: Option<LlcConfig>,
    /// Host (CVA6) configuration.
    pub host: HostConfig,
    /// PMCA configuration.
    pub cluster: ClusterConfig,
    /// L2 scratchpad size (512 kB in HULK-V).
    pub l2spm_bytes: usize,
    /// Fixed driver/descriptor/mailbox cost of one offload, in SoC cycles
    /// (calibrated so that, with lazy code loading, sub-100k-cycle kernels
    /// see their speedup halved on the first call, as in Figure 6).
    pub offload_descriptor_cycles: u64,
}

impl Default for SocConfig {
    /// The flagship HULK-V: 512 MB HyperRAM behind a 128 kB LLC.
    fn default() -> Self {
        SocConfig {
            main_memory: MainMemory::HyperRam(HyperRamConfig::default()),
            llc: Some(LlcConfig::default()),
            host: HostConfig::default(),
            cluster: ClusterConfig::default(),
            l2spm_bytes: 512 * 1024,
            offload_descriptor_cycles: 1500,
        }
    }
}

impl SocConfig {
    /// Builds the configuration for one of the four Figure-7/8 memory
    /// setups, leaving everything else at the flagship defaults.
    pub fn with_memory_setup(setup: MemorySetup) -> Self {
        let mut cfg = SocConfig::default();
        match setup {
            MemorySetup::DdrWithLlc => {
                cfg.main_memory = MainMemory::Ddr(DdrConfig::default());
            }
            MemorySetup::HyperWithLlc => {}
            MemorySetup::DdrOnly => {
                cfg.main_memory = MainMemory::Ddr(DdrConfig::default());
                cfg.llc = None;
            }
            MemorySetup::HyperOnly => {
                cfg.llc = None;
            }
        }
        cfg
    }

    /// Main-memory capacity in bytes.
    pub fn main_memory_bytes(&self) -> u64 {
        match &self.main_memory {
            MainMemory::HyperRam(h) => h.total_bytes(),
            MainMemory::Ddr(d) => d.size_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_flagship() {
        let cfg = SocConfig::default();
        assert!(matches!(cfg.main_memory, MainMemory::HyperRam(_)));
        assert_eq!(cfg.main_memory_bytes(), 512 << 20);
        assert_eq!(cfg.l2spm_bytes, 512 * 1024);
    }

    #[test]
    fn memory_setups_cover_the_grid() {
        for setup in MemorySetup::ALL {
            let cfg = SocConfig::with_memory_setup(setup);
            let is_ddr = matches!(cfg.main_memory, MainMemory::Ddr(_));
            let has_llc = cfg.llc.is_some();
            match setup {
                MemorySetup::DdrWithLlc => assert!(is_ddr && has_llc),
                MemorySetup::HyperWithLlc => assert!(!is_ddr && has_llc),
                MemorySetup::DdrOnly => assert!(is_ddr && !has_llc),
                MemorySetup::HyperOnly => assert!(!is_ddr && !has_llc),
            }
        }
    }

    #[test]
    fn setup_names_unique() {
        let names: std::collections::HashSet<_> =
            MemorySetup::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
