//! Control and status registers, privilege modes and trap state.

use std::collections::BTreeMap;

/// RISC-V privilege modes. CVA6 implements all three; the PMCA cores run
/// machine-mode only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrivMode {
    /// User mode (Linux processes).
    User = 0,
    /// Supervisor mode (the Linux kernel).
    Supervisor = 1,
    /// Machine mode (firmware / bare-metal).
    Machine = 3,
}

impl PrivMode {
    /// Encodes the mode in the two-bit form used by `mstatus.MPP`.
    pub const fn bits(self) -> u64 {
        self as u64
    }

    /// Decodes a two-bit mode field (reserved value 2 maps to machine).
    pub fn from_bits(v: u64) -> PrivMode {
        match v & 3 {
            0 => PrivMode::User,
            1 => PrivMode::Supervisor,
            _ => PrivMode::Machine,
        }
    }
}

/// Well-known CSR addresses used by the model.
#[allow(missing_docs)]
pub mod addr {
    pub const MSTATUS: u16 = 0x300;
    pub const MISA: u16 = 0x301;
    pub const MEDELEG: u16 = 0x302;
    pub const MIDELEG: u16 = 0x303;
    pub const MIE: u16 = 0x304;
    pub const MTVEC: u16 = 0x305;
    pub const MSCRATCH: u16 = 0x340;
    pub const MEPC: u16 = 0x341;
    pub const MCAUSE: u16 = 0x342;
    pub const MTVAL: u16 = 0x343;
    pub const MIP: u16 = 0x344;
    pub const MHARTID: u16 = 0xF14;
    pub const SSTATUS: u16 = 0x100;
    pub const STVEC: u16 = 0x105;
    pub const SSCRATCH: u16 = 0x140;
    pub const SEPC: u16 = 0x141;
    pub const SCAUSE: u16 = 0x142;
    pub const STVAL: u16 = 0x143;
    pub const SATP: u16 = 0x180;
    pub const CYCLE: u16 = 0xC00;
    pub const TIME: u16 = 0xC01;
    pub const INSTRET: u16 = 0xC02;
    pub const MCYCLE: u16 = 0xB00;
    pub const MINSTRET: u16 = 0xB02;
    pub const FFLAGS: u16 = 0x001;
    pub const FRM: u16 = 0x002;
    pub const FCSR: u16 = 0x003;
    pub const MCOUNTEREN: u16 = 0x306;
    pub const MCOUNTINHIBIT: u16 = 0x320;
    /// First machine event selector; `MHPMEVENT3 + i` selects counter `3+i`.
    pub const MHPMEVENT3: u16 = 0x323;
    /// First machine HPM counter; the model implements counters 3..=10.
    pub const MHPMCOUNTER3: u16 = 0xB03;
    /// First user-mode read-only HPM counter shadow.
    pub const HPMCOUNTER3: u16 = 0xC03;

    /// Number of implemented hardware performance counters (3..=10).
    pub const HPM_COUNTERS: u16 = 8;

    /// Machine HPM counter index (`0..HPM_COUNTERS`) for `csr`, if any.
    pub fn mhpmcounter_index(csr: u16) -> Option<u16> {
        (MHPMCOUNTER3..MHPMCOUNTER3 + HPM_COUNTERS)
            .contains(&csr)
            .then(|| csr - MHPMCOUNTER3)
    }

    /// User HPM counter-shadow index for `csr`, if any.
    pub fn hpmcounter_index(csr: u16) -> Option<u16> {
        (HPMCOUNTER3..HPMCOUNTER3 + HPM_COUNTERS)
            .contains(&csr)
            .then(|| csr - HPMCOUNTER3)
    }

    /// Event-selector index for `csr`, if any.
    pub fn mhpmevent_index(csr: u16) -> Option<u16> {
        (MHPMEVENT3..MHPMEVENT3 + HPM_COUNTERS)
            .contains(&csr)
            .then(|| csr - MHPMEVENT3)
    }

    /// Whether `csr` belongs to the HPM register group the interpreter
    /// routes through its bus-aware slow path (counters, selectors,
    /// `mcounteren`/`mcountinhibit`, and the gated user counter shadows).
    pub fn is_hpm_managed(csr: u16) -> bool {
        matches!(csr, MCOUNTEREN | MCOUNTINHIBIT)
            || mhpmcounter_index(csr).is_some()
            || hpmcounter_index(csr).is_some()
            || mhpmevent_index(csr).is_some()
    }
}

/// Trap causes (the subset the model can raise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TrapCause {
    InstAddrMisaligned,
    IllegalInstruction,
    Breakpoint,
    LoadAddrMisaligned,
    StoreAddrMisaligned,
    EcallFromU,
    EcallFromS,
    EcallFromM,
    InstPageFault,
    LoadPageFault,
    StorePageFault,
}

impl TrapCause {
    /// The `mcause` exception code.
    pub const fn code(self) -> u64 {
        match self {
            TrapCause::InstAddrMisaligned => 0,
            TrapCause::IllegalInstruction => 2,
            TrapCause::Breakpoint => 3,
            TrapCause::LoadAddrMisaligned => 4,
            TrapCause::StoreAddrMisaligned => 6,
            TrapCause::EcallFromU => 8,
            TrapCause::EcallFromS => 9,
            TrapCause::EcallFromM => 11,
            TrapCause::InstPageFault => 12,
            TrapCause::LoadPageFault => 13,
            TrapCause::StorePageFault => 15,
        }
    }
}

/// The CSR file of one hart.
///
/// Hardware-backed counters (`cycle`, `instret`) are wired to the core's
/// counters by the interpreter; everything else is plain storage with the
/// handful of side effects the model needs (`mstatus` field extraction for
/// trap entry/return, `satp` for the MMU).
///
/// # Example
///
/// ```
/// use hulkv_rv::csr::{addr, CsrFile};
///
/// let mut csrs = CsrFile::new(0);
/// csrs.write(addr::MSCRATCH, 0x55);
/// assert_eq!(csrs.read(addr::MSCRATCH), 0x55);
/// assert_eq!(csrs.read(addr::MHARTID), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrFile {
    regs: BTreeMap<u16, u64>,
    /// Bumped on every mutation; lets the interpreter cache CSR-derived
    /// state (MMU mode, interrupt summary, fetch micro-TLB) and revalidate
    /// it with one integer compare instead of re-reading the register file.
    version: u64,
}

impl CsrFile {
    /// Creates a CSR file for hart `hartid`.
    pub fn new(hartid: u64) -> Self {
        let mut regs = BTreeMap::new();
        regs.insert(addr::MHARTID, hartid);
        // RV64 misa: I, M, A, F, D, C, S, U.
        let misa: u64 = (2 << 62)
            | (1 << 8)  // I
            | (1 << 12) // M
            | (1 << 0)  // A
            | (1 << 5)  // F
            | (1 << 3)  // D
            | (1 << 2)  // C
            | (1 << 18) // S
            | (1 << 20); // U
        regs.insert(addr::MISA, misa);
        // Bare-metal firmware init state: all counters visible to S/U mode
        // (Linux' early boot does the same before filtering). Gating logic
        // is real — clearing a bit makes the matching user shadow trap.
        regs.insert(addr::MCOUNTEREN, 0xFFFF_FFFF);
        CsrFile { regs, version: 1 }
    }

    /// Monotonic mutation counter. Any value cached against an older
    /// version must be recomputed. Every trap entry/exit path funnels
    /// through [`CsrFile::write`], so comparing versions is sufficient to
    /// detect `satp`, `mstatus`, `mip`/`mie` and privilege-related changes.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Reads a CSR (unimplemented CSRs read as zero, like the RTL's
    /// read-only-zero default).
    pub fn read(&self, csr: u16) -> u64 {
        self.regs.get(&csr).copied().unwrap_or(0)
    }

    /// Writes a CSR. Read-only CSRs (`mhartid`, the user-mode counter
    /// shadows) ignore writes.
    pub fn write(&mut self, csr: u16, value: u64) {
        // Bumped even for ignored writes: a spurious bump only costs a
        // cache refresh, while a missed one would serve stale state.
        self.version += 1;
        match csr {
            addr::MHARTID | addr::CYCLE | addr::TIME | addr::INSTRET => {}
            addr::SSTATUS => {
                // sstatus is a restricted view of mstatus.
                const SSTATUS_MASK: u64 = 0x8000_0003_000D_E762;
                let m = self.read(addr::MSTATUS);
                self.regs
                    .insert(addr::MSTATUS, (m & !SSTATUS_MASK) | (value & SSTATUS_MASK));
            }
            _ => {
                self.regs.insert(csr, value);
            }
        }
    }

    /// `satp` (for the Sv39 walker).
    pub fn satp(&self) -> u64 {
        self.read(addr::SATP)
    }

    /// FNV-1a digest over the architectural register contents, in address
    /// order. The mutation counter is excluded: it tracks *how* the state
    /// was reached (including ignored writes), not what the state is, so
    /// two runs with identical architectural CSR contents digest equal.
    /// Zero-valued entries are skipped so a register explicitly written to
    /// zero digests the same as one never touched — both read as zero.
    pub fn digest(&self) -> u64 {
        let mut h = hulkv_sim::Fnv64::new();
        for (&a, &v) in &self.regs {
            if v != 0 {
                h.write_u64(u64::from(a)).write_u64(v);
            }
        }
        h.finish()
    }

    /// Serializes the register map and the exact mutation counter.
    ///
    /// The counter matters: decoded-instruction-cache entries are stamped
    /// against it, so restoring a snapshot with a rounded-off version would
    /// spuriously invalidate (or worse, revalidate) decode-cache state and
    /// change the `decode_hits`/`decode_misses` counters versus the run the
    /// snapshot was taken from.
    pub fn snapshot_json(&self) -> hulkv_sim::Json {
        use hulkv_sim::snap::hex;
        hulkv_sim::Json::obj([
            ("version", hex(self.version)),
            (
                "regs",
                hulkv_sim::Json::obj(
                    self.regs
                        .iter()
                        .map(|(&a, &v)| (format!("{a:#x}"), hex(v)))
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
    }

    /// Restores state written by [`CsrFile::snapshot_json`], replacing all
    /// registers and the mutation counter.
    ///
    /// # Errors
    ///
    /// On a malformed section.
    pub fn restore_json(&mut self, j: &hulkv_sim::Json) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, get_u64, unhex, SnapError};
        let hulkv_sim::Json::Obj(regs) = get(j, "regs")? else {
            return Err(SnapError::msg("csr regs section is not an object"));
        };
        let mut map = BTreeMap::new();
        for (k, v) in regs {
            let a = k.strip_prefix("0x").unwrap_or(k);
            let a = u16::from_str_radix(a, 16)
                .map_err(|e| SnapError::msg(format!("bad CSR address {k:?}: {e}")))?;
            map.insert(a, unhex(v)?);
        }
        self.regs = map;
        self.version = get_u64(j, "version")?;
        Ok(())
    }

    /// Performs machine-trap entry bookkeeping and returns the trap vector.
    pub fn enter_trap_m(&mut self, cause: TrapCause, pc: u64, tval: u64, prev: PrivMode) -> u64 {
        self.enter_trap_m_raw(cause.code(), pc, tval, prev)
    }

    /// Machine-interrupt entry: like [`CsrFile::enter_trap_m`] but with an
    /// interrupt cause code (`mcause` has its top bit set).
    pub fn enter_interrupt_m(&mut self, code: u64, pc: u64, prev: PrivMode) -> u64 {
        self.enter_trap_m_raw((1 << 63) | code, pc, 0, prev)
    }

    fn enter_trap_m_raw(&mut self, mcause: u64, pc: u64, tval: u64, prev: PrivMode) -> u64 {
        self.write(addr::MEPC, pc);
        self.write(addr::MCAUSE, mcause);
        self.write(addr::MTVAL, tval);
        let mut mstatus = self.read(addr::MSTATUS);
        let mie = (mstatus >> 3) & 1;
        // MPIE <= MIE; MIE <= 0; MPP <= prev.
        mstatus &= !((1 << 7) | (1 << 3) | (3 << 11));
        mstatus |= (mie << 7) | (prev.bits() << 11);
        self.write(addr::MSTATUS, mstatus);
        self.read(addr::MTVEC) & !3
    }

    /// Performs `mret` bookkeeping; returns `(new_pc, new_priv)`.
    pub fn leave_trap_m(&mut self) -> (u64, PrivMode) {
        let mut mstatus = self.read(addr::MSTATUS);
        let mpie = (mstatus >> 7) & 1;
        let mpp = PrivMode::from_bits((mstatus >> 11) & 3);
        // MIE <= MPIE; MPIE <= 1; MPP <= U.
        mstatus &= !((1 << 3) | (3 << 11));
        mstatus |= (mpie << 3) | (1 << 7);
        self.write(addr::MSTATUS, mstatus);
        (self.read(addr::MEPC), mpp)
    }

    /// Performs `sret` bookkeeping; returns `(new_pc, new_priv)`.
    pub fn leave_trap_s(&mut self) -> (u64, PrivMode) {
        let mut mstatus = self.read(addr::MSTATUS);
        let spie = (mstatus >> 5) & 1;
        let spp = if (mstatus >> 8) & 1 == 1 {
            PrivMode::Supervisor
        } else {
            PrivMode::User
        };
        mstatus &= !((1 << 1) | (1 << 8));
        mstatus |= (spie << 1) | (1 << 5);
        self.write(addr::MSTATUS, mstatus);
        (self.read(addr::SEPC), spp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unimplemented_reads_zero() {
        let c = CsrFile::new(3);
        assert_eq!(c.read(0x7C0), 0);
        assert_eq!(c.read(addr::MHARTID), 3);
    }

    #[test]
    fn hartid_read_only() {
        let mut c = CsrFile::new(5);
        c.write(addr::MHARTID, 99);
        assert_eq!(c.read(addr::MHARTID), 5);
    }

    #[test]
    fn misa_advertises_gc() {
        let c = CsrFile::new(0);
        let misa = c.read(addr::MISA);
        for ext in ['i', 'm', 'a', 'f', 'd', 'c', 's', 'u'] {
            let bit = ext as u32 - 'a' as u32;
            assert!(misa & (1 << bit) != 0, "missing extension {ext}");
        }
    }

    #[test]
    fn trap_entry_and_return() {
        let mut c = CsrFile::new(0);
        c.write(addr::MTVEC, 0x8000_0100);
        c.write(addr::MSTATUS, 1 << 3); // MIE set
        let vec = c.enter_trap_m(TrapCause::EcallFromU, 0x4000, 0, PrivMode::User);
        assert_eq!(vec, 0x8000_0100);
        assert_eq!(c.read(addr::MEPC), 0x4000);
        assert_eq!(c.read(addr::MCAUSE), 8);
        let mstatus = c.read(addr::MSTATUS);
        assert_eq!((mstatus >> 3) & 1, 0, "MIE cleared");
        assert_eq!((mstatus >> 7) & 1, 1, "MPIE saved");
        assert_eq!((mstatus >> 11) & 3, 0, "MPP = U");

        let (pc, mode) = c.leave_trap_m();
        assert_eq!(pc, 0x4000);
        assert_eq!(mode, PrivMode::User);
        assert_eq!((c.read(addr::MSTATUS) >> 3) & 1, 1, "MIE restored");
    }

    #[test]
    fn sret_returns_to_spp() {
        let mut c = CsrFile::new(0);
        c.write(addr::SEPC, 0x1234);
        c.write(addr::MSTATUS, (1 << 8) | (1 << 5)); // SPP=S, SPIE=1
        let (pc, mode) = c.leave_trap_s();
        assert_eq!(pc, 0x1234);
        assert_eq!(mode, PrivMode::Supervisor);
        assert_eq!((c.read(addr::MSTATUS) >> 1) & 1, 1, "SIE restored");
    }

    #[test]
    fn sstatus_is_mstatus_view() {
        let mut c = CsrFile::new(0);
        c.write(addr::SSTATUS, 1 << 1); // SIE
        assert_eq!((c.read(addr::MSTATUS) >> 1) & 1, 1);
        // Machine-only bits not writable through sstatus.
        c.write(addr::SSTATUS, 1 << 3);
        assert_eq!((c.read(addr::MSTATUS) >> 3) & 1, 0);
    }

    #[test]
    fn priv_mode_bits() {
        assert_eq!(PrivMode::Machine.bits(), 3);
        assert_eq!(PrivMode::from_bits(0), PrivMode::User);
        assert_eq!(PrivMode::from_bits(1), PrivMode::Supervisor);
        assert_eq!(PrivMode::from_bits(2), PrivMode::Machine);
        assert!(PrivMode::User < PrivMode::Supervisor);
    }

    #[test]
    fn version_bumps_on_every_mutation_path() {
        let mut c = CsrFile::new(0);
        let v0 = c.version();
        c.write(addr::SATP, 8 << 60);
        assert!(c.version() > v0, "plain write bumps");
        let v1 = c.version();
        c.enter_trap_m(TrapCause::EcallFromU, 0x100, 0, PrivMode::User);
        assert!(c.version() > v1, "trap entry bumps");
        let v2 = c.version();
        c.leave_trap_m();
        assert!(c.version() > v2, "mret bumps");
        let v3 = c.version();
        c.leave_trap_s();
        assert!(c.version() > v3, "sret bumps");
    }

    #[test]
    fn trap_cause_codes() {
        assert_eq!(TrapCause::IllegalInstruction.code(), 2);
        assert_eq!(TrapCause::StorePageFault.code(), 15);
    }
}
