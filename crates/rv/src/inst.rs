//! Decoded instruction representation shared by the assembler, decoder and
//! interpreter.

use std::error::Error;
use std::fmt;

/// Register width of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Xlen {
    /// 32-bit (the PMCA's RI5CY-class cores).
    Rv32,
    /// 64-bit (the CVA6 host).
    Rv64,
}

impl Xlen {
    /// Register width in bits.
    pub const fn bits(self) -> u32 {
        match self {
            Xlen::Rv32 => 32,
            Xlen::Rv64 => 64,
        }
    }
}

/// An integer register, by ABI name.
///
/// # Example
///
/// ```
/// use hulkv_rv::Reg;
///
/// assert_eq!(Reg::Sp.index(), 2);
/// assert_eq!(Reg::from_index(10), Reg::A0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
#[repr(u8)]
pub enum Reg {
    Zero = 0,
    Ra = 1,
    Sp = 2,
    Gp = 3,
    Tp = 4,
    T0 = 5,
    T1 = 6,
    T2 = 7,
    S0 = 8,
    S1 = 9,
    A0 = 10,
    A1 = 11,
    A2 = 12,
    A3 = 13,
    A4 = 14,
    A5 = 15,
    A6 = 16,
    A7 = 17,
    S2 = 18,
    S3 = 19,
    S4 = 20,
    S5 = 21,
    S6 = 22,
    S7 = 23,
    S8 = 24,
    S9 = 25,
    S10 = 26,
    S11 = 27,
    T3 = 28,
    T4 = 29,
    T5 = 30,
    T6 = 31,
}

impl Reg {
    /// All registers in index order.
    pub const ALL: [Reg; 32] = [
        Reg::Zero,
        Reg::Ra,
        Reg::Sp,
        Reg::Gp,
        Reg::Tp,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
        Reg::S11,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
    ];

    /// The encoding index (0–31).
    pub const fn index(self) -> u8 {
        self as u8
    }

    /// Register for an encoding index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn from_index(i: u8) -> Reg {
        Reg::ALL[i as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        f.write_str(names[self.index() as usize])
    }
}

/// A floating-point register `f0`–`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Comparison used by conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// Width and signedness of integer loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum LoadWidth {
    B,
    H,
    W,
    D,
    Bu,
    Hu,
    Wu,
}

impl LoadWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W | LoadWidth::Wu => 4,
            LoadWidth::D => 8,
        }
    }
}

/// Width of integer stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum StoreWidth {
    B,
    H,
    W,
    D,
}

impl StoreWidth {
    /// Access size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
            StoreWidth::D => 8,
        }
    }
}

/// Register–register and register–immediate ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
}

/// M-extension operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MulDivOp {
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
}

/// Atomic memory operations (A extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AmoOp {
    Swap,
    Add,
    Xor,
    And,
    Or,
    Min,
    Max,
    Minu,
    Maxu,
}

/// CSR access operations (Zicsr).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CsrOp {
    Rw,
    Rs,
    Rc,
}

/// Floating-point precision of an F/D instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpFmt {
    S,
    D,
}

/// Floating-point computational operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpOp {
    Add,
    Sub,
    Mul,
    Div,
    Sqrt,
    Min,
    Max,
    SgnJ,
    SgnJn,
    SgnJx,
}

/// Floating-point comparisons (write an integer register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FpCmp {
    Eq,
    Lt,
    Le,
}

/// Scalar Xpulp ALU operations (custom-3 space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum PulpAluOp {
    Min,
    Max,
    Minu,
    Maxu,
    Abs,
    Exths,
    Exthz,
    Extbs,
    Extbz,
    Clip,
    /// Population count (`p.cnt`).
    Cnt,
    /// Find first set bit, 32 when none (`p.ff1`).
    Ff1,
    /// Find last set bit, 32 when none (`p.fl1`).
    Fl1,
    /// Rotate right by `rs2 & 31` (`p.ror`).
    Ror,
}

/// Element width of packed-SIMD operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdFmt {
    /// Four 8-bit lanes.
    B,
    /// Two 16-bit lanes.
    H,
}

impl SimdFmt {
    /// Number of lanes in a 32-bit register.
    pub const fn lanes(self) -> usize {
        match self {
            SimdFmt::B => 4,
            SimdFmt::H => 2,
        }
    }
}

/// Packed integer SIMD operations (`pv.*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SimdOp {
    Add,
    Sub,
    Avg,
    Avgu,
    Min,
    Minu,
    Max,
    Maxu,
    Srl,
    Sra,
    And,
    Or,
    Xor,
    Abs,
    /// Unsigned × unsigned dot product, overwriting rd.
    Dotup,
    /// Unsigned × signed dot product, overwriting rd.
    Dotusp,
    /// Signed × signed dot product, overwriting rd.
    Dotsp,
    /// Accumulating unsigned dot product (`rd += …`).
    Sdotup,
    /// Accumulating unsigned × signed dot product.
    Sdotusp,
    /// Accumulating signed dot product — the MAC workhorse of int8 kernels.
    Sdotsp,
    /// Extract lane `rs2 mod lanes` of rs1, sign-extended (`pv.extract`).
    Extract,
    /// Insert rs1's low lane into lane `rs2 mod lanes` of rd (`pv.insert`).
    Insert,
    /// Permute rs1's lanes by the indices in rs2's lanes (`pv.shuffle`).
    Shuffle,
}

/// Packed FP16 SIMD operations (`vf*.h`, two half-precision lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SimdFpOp {
    Add,
    Sub,
    Mul,
    Mac,
    Min,
    Max,
    /// Dot product of the two f16 lane pairs, accumulated into `rd`
    /// interpreted as f32 (`vfdotpex.s.h`).
    DotpexS,
}

/// Hardware-loop setup instructions (two nesting levels, `L ∈ {0, 1}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwLoopOp {
    /// `lp.starti L, off` — loop body starts at `pc + off`.
    Starti,
    /// `lp.endi L, off` — loop body ends just before `pc + off`.
    Endi,
    /// `lp.count L, rs1` — iteration count from a register.
    Count,
    /// `lp.counti L, imm` — immediate iteration count.
    Counti,
}

/// A fully decoded instruction.
///
/// One enum covers both cores; the decoder only produces variants legal for
/// the requested [`Xlen`] and extension set, and the interpreter rejects
/// stray variants with an illegal-instruction trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Inst {
    Lui {
        rd: Reg,
        imm: i64,
    },
    Auipc {
        rd: Reg,
        imm: i64,
    },
    Jal {
        rd: Reg,
        offset: i64,
    },
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: i64,
    },
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        offset: i64,
    },
    Load {
        width: LoadWidth,
        rd: Reg,
        rs1: Reg,
        offset: i64,
    },
    Store {
        width: StoreWidth,
        rs2: Reg,
        rs1: Reg,
        offset: i64,
    },
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    },
    /// RV64 W-suffixed immediate ops (`addiw`, `slliw`, …).
    OpImm32 {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i64,
    },
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// RV64 W-suffixed register ops (`addw`, `sllw`, …).
    Op32 {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    MulDiv {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// RV64 W-suffixed M ops (`mulw`, `divw`, …).
    MulDiv32 {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `lr.w`/`lr.d`.
    LoadReserved {
        double: bool,
        rd: Reg,
        rs1: Reg,
    },
    /// `sc.w`/`sc.d`.
    StoreConditional {
        double: bool,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Amo {
        op: AmoOp,
        double: bool,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Fence,
    FenceI,
    Ecall,
    Ebreak,
    Mret,
    Sret,
    Wfi,
    Csr {
        op: CsrOp,
        rd: Reg,
        csr: u16,
        src: CsrSrc,
    },

    // --- F/D ---
    FpLoad {
        fmt: FpFmt,
        rd: FReg,
        rs1: Reg,
        offset: i64,
    },
    FpStore {
        fmt: FpFmt,
        rs2: FReg,
        rs1: Reg,
        offset: i64,
    },
    FpOp3 {
        fmt: FpFmt,
        op: FpOp,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
    },
    /// Fused multiply-add family: `rd = ±(rs1 × rs2) ± rs3`.
    FpFma {
        fmt: FpFmt,
        rd: FReg,
        rs1: FReg,
        rs2: FReg,
        rs3: FReg,
        negate_product: bool,
        negate_addend: bool,
    },
    FpCmp {
        fmt: FpFmt,
        cmp: FpCmp,
        rd: Reg,
        rs1: FReg,
        rs2: FReg,
    },
    /// `fcvt.{w,wu,l,lu}.{s,d}` — FP to integer.
    FpToInt {
        fmt: FpFmt,
        rd: Reg,
        rs1: FReg,
        signed: bool,
        wide: bool,
    },
    /// `fcvt.{s,d}.{w,wu,l,lu}` — integer to FP.
    IntToFp {
        fmt: FpFmt,
        rd: FReg,
        rs1: Reg,
        signed: bool,
        wide: bool,
    },
    /// `fcvt.s.d` / `fcvt.d.s`.
    FpCvt {
        to: FpFmt,
        rd: FReg,
        rs1: FReg,
    },
    /// `fmv.x.w` / `fmv.x.d`.
    FpMvToInt {
        fmt: FpFmt,
        rd: Reg,
        rs1: FReg,
    },
    /// `fmv.w.x` / `fmv.d.x`.
    FpMvFromInt {
        fmt: FpFmt,
        rd: FReg,
        rs1: Reg,
    },

    // --- Xpulp (custom opcode spaces; RV32 cluster cores only) ---
    /// Post-increment load: `rd = mem[rs1]; rs1 += offset`.
    LoadPost {
        width: LoadWidth,
        rd: Reg,
        rs1: Reg,
        offset: i64,
    },
    /// Post-increment store: `mem[rs1] = rs2; rs1 += offset`.
    StorePost {
        width: StoreWidth,
        rs2: Reg,
        rs1: Reg,
        offset: i64,
    },
    /// `p.mac rd, rs1, rs2` (`rd += rs1 × rs2`) / `p.msu`.
    Mac {
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        subtract: bool,
    },
    PulpAlu {
        op: PulpAluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    HwLoop {
        op: HwLoopOp,
        loop_idx: u8,
        value: i64,
        rs1: Reg,
    },
    /// Packed integer SIMD; `scalar_rs2` replicates `rs2`'s low lane.
    Simd {
        op: SimdOp,
        fmt: SimdFmt,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        scalar_rs2: bool,
    },
    /// Packed FP16 SIMD on the integer register file.
    SimdFp {
        op: SimdFpOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
}

/// Source operand of a CSR instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrSrc {
    /// Register form (`csrrw` etc.).
    Reg(Reg),
    /// Immediate form (`csrrwi` etc.), 5-bit zero-extended.
    Imm(u8),
}

impl Inst {
    /// Whether this instruction is an Xpulp extension (illegal on the RV64
    /// host core).
    pub fn is_xpulp(&self) -> bool {
        matches!(
            self,
            Inst::LoadPost { .. }
                | Inst::StorePost { .. }
                | Inst::Mac { .. }
                | Inst::PulpAlu { .. }
                | Inst::HwLoop { .. }
                | Inst::Simd { .. }
                | Inst::SimdFp { .. }
        )
    }

    /// Whether this instruction accesses data memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. }
                | Inst::Store { .. }
                | Inst::FpLoad { .. }
                | Inst::FpStore { .. }
                | Inst::LoadPost { .. }
                | Inst::StorePost { .. }
                | Inst::LoadReserved { .. }
                | Inst::StoreConditional { .. }
                | Inst::Amo { .. }
        )
    }
}

/// Errors produced by the RISC-V toolchain and interpreter.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RvError {
    /// The assembler saw an unencodable operand (immediate out of range…).
    Encode(String),
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// The interpreter fetched an undecodable word.
    IllegalInstruction {
        /// Program counter of the illegal word.
        pc: u64,
        /// The raw word.
        word: u32,
    },
    /// An instruction is not legal on this core (e.g. Xpulp on the host).
    UnsupportedOnCore {
        /// Program counter.
        pc: u64,
        /// Description of the offending instruction.
        what: String,
    },
    /// A data access or fetch failed in the memory system.
    Memory {
        /// Faulting address.
        addr: u64,
        /// Underlying description.
        cause: String,
    },
    /// A page-table walk failed.
    PageFault {
        /// Faulting virtual address.
        vaddr: u64,
    },
    /// The run exceeded its cycle budget without reaching a breakpoint.
    Timeout {
        /// Cycles consumed when the budget expired.
        cycles: u64,
    },
    /// Internal control-flow marker: a synchronous trap was taken and the
    /// current instruction must be abandoned. Never escapes the
    /// interpreter.
    #[doc(hidden)]
    TrapTaken,
}

impl fmt::Display for RvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvError::Encode(msg) => write!(f, "encoding error: {msg}"),
            RvError::UnboundLabel(id) => write!(f, "label {id} was never bound"),
            RvError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#x}")
            }
            RvError::UnsupportedOnCore { pc, what } => {
                write!(
                    f,
                    "instruction {what} unsupported on this core at pc {pc:#x}"
                )
            }
            RvError::Memory { addr, cause } => {
                write!(f, "memory fault at {addr:#x}: {cause}")
            }
            RvError::PageFault { vaddr } => write!(f, "page fault at vaddr {vaddr:#x}"),
            RvError::Timeout { cycles } => {
                write!(f, "execution did not terminate within {cycles} cycles")
            }
            RvError::TrapTaken => write!(f, "internal: trap taken"),
        }
    }
}

impl Error for RvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_index_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
            assert_eq!(Reg::from_index(i as u8), *r);
        }
    }

    #[test]
    fn reg_display_abi_names() {
        assert_eq!(Reg::Zero.to_string(), "zero");
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::T6.to_string(), "t6");
        assert_eq!(FReg(7).to_string(), "f7");
    }

    #[test]
    fn widths() {
        assert_eq!(LoadWidth::D.bytes(), 8);
        assert_eq!(LoadWidth::Bu.bytes(), 1);
        assert_eq!(StoreWidth::H.bytes(), 2);
        assert_eq!(SimdFmt::B.lanes(), 4);
        assert_eq!(SimdFmt::H.lanes(), 2);
        assert_eq!(Xlen::Rv32.bits(), 32);
        assert_eq!(Xlen::Rv64.bits(), 64);
    }

    #[test]
    fn xpulp_classification() {
        let mac = Inst::Mac {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            subtract: false,
        };
        assert!(mac.is_xpulp());
        assert!(!mac.is_memory());
        let lw = Inst::Load {
            width: LoadWidth::W,
            rd: Reg::A0,
            rs1: Reg::Sp,
            offset: 0,
        };
        assert!(!lw.is_xpulp());
        assert!(lw.is_memory());
        let lwp = Inst::LoadPost {
            width: LoadWidth::W,
            rd: Reg::A0,
            rs1: Reg::Sp,
            offset: 4,
        };
        assert!(lwp.is_xpulp());
        assert!(lwp.is_memory());
    }

    #[test]
    fn error_display() {
        let e = RvError::IllegalInstruction { pc: 0x80, word: 0 };
        assert!(e.to_string().contains("0x80"));
        let e = RvError::Timeout { cycles: 10 };
        assert!(e.to_string().contains("10"));
    }
}
