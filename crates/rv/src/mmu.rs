//! Sv39 virtual-memory translation (the paging mode of CVA6).

use crate::csr::PrivMode;

/// The kind of access being translated, which selects the permission bit
/// that must be set in the leaf PTE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (needs X).
    Fetch,
    /// Data load (needs R).
    Load,
    /// Data store (needs W and D).
    Store,
}

/// Why a translation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkFault {
    /// A PTE was invalid, malformed, or lacked permissions.
    PageFault,
    /// A PTE read from physical memory failed.
    AccessFault,
}

const PTE_V: u64 = 1 << 0;
const PTE_R: u64 = 1 << 1;
const PTE_W: u64 = 1 << 2;
const PTE_X: u64 = 1 << 3;
const PTE_U: u64 = 1 << 4;
const PTE_A: u64 = 1 << 6;
const PTE_D: u64 = 1 << 7;

/// Translates `vaddr` under Sv39 with the given `satp`, walking page tables
/// through `read_pte` (a physical 8-byte read — the interpreter charges its
/// latency through the cache hierarchy).
///
/// Returns the physical address. Machine mode and `satp.MODE == Bare`
/// translate identically (the caller short-circuits those; this function
/// assumes Sv39 is active).
///
/// The walker follows the privileged-spec rules CVA6 implements: invalid or
/// write-only PTEs fault, leaf permissions are checked against the access
/// kind and privilege (with no MXR/SUM modeling — Linux-style mappings keep
/// those clear for the workloads here), superpages must be aligned, and a
/// clear A bit (or clear D on a store) faults so software can fix it up.
///
/// # Errors
///
/// [`WalkFault::PageFault`] per the rules above; [`WalkFault::AccessFault`]
/// when `read_pte` fails.
///
/// # Example
///
/// ```
/// use hulkv_rv::mmu::{translate_sv39, AccessKind};
/// use hulkv_rv::PrivMode;
///
/// // One gigapage: VA 0 → PA 0, RWX, A|D set.
/// let root = 0x1000u64;
/// let pte = (0u64 >> 12) << 10 | 0xCF; // PPN 0, DAXWRV
/// let satp = (8u64 << 60) | (root >> 12);
/// let pa = translate_sv39(0x1234, satp, AccessKind::Load, PrivMode::Supervisor, |addr| {
///     assert_eq!(addr, root); // level-2 entry 0
///     Ok(pte)
/// })
/// .unwrap();
/// assert_eq!(pa, 0x1234);
/// ```
pub fn translate_sv39<F>(
    vaddr: u64,
    satp: u64,
    kind: AccessKind,
    mode: PrivMode,
    mut read_pte: F,
) -> Result<u64, WalkFault>
where
    F: FnMut(u64) -> Result<u64, WalkFault>,
{
    // Sv39 requires VA bits 63:39 to equal bit 38.
    let sext = (vaddr as i64) << 25 >> 25;
    if sext as u64 != vaddr {
        return Err(WalkFault::PageFault);
    }

    let mut table = (satp & ((1u64 << 44) - 1)) << 12;
    let vpn = [
        (vaddr >> 12) & 0x1FF,
        (vaddr >> 21) & 0x1FF,
        (vaddr >> 30) & 0x1FF,
    ];

    for level in (0..3).rev() {
        let pte_addr = table + vpn[level] * 8;
        let pte = read_pte(pte_addr)?;
        if pte & PTE_V == 0 || (pte & PTE_R == 0 && pte & PTE_W != 0) {
            return Err(WalkFault::PageFault);
        }
        let ppn = (pte >> 10) & ((1u64 << 44) - 1);
        if pte & (PTE_R | PTE_X) == 0 {
            // Pointer to the next level.
            if level == 0 {
                return Err(WalkFault::PageFault);
            }
            table = ppn << 12;
            continue;
        }
        // Leaf PTE: permission checks.
        let ok = match kind {
            AccessKind::Fetch => pte & PTE_X != 0,
            AccessKind::Load => pte & PTE_R != 0,
            AccessKind::Store => pte & PTE_W != 0,
        };
        if !ok {
            return Err(WalkFault::PageFault);
        }
        // User pages are not accessible from S (no SUM modeling) and
        // supervisor pages never from U.
        match mode {
            PrivMode::User => {
                if pte & PTE_U == 0 {
                    return Err(WalkFault::PageFault);
                }
            }
            PrivMode::Supervisor => {
                if pte & PTE_U != 0 {
                    return Err(WalkFault::PageFault);
                }
            }
            PrivMode::Machine => {}
        }
        if pte & PTE_A == 0 || (kind == AccessKind::Store && pte & PTE_D == 0) {
            return Err(WalkFault::PageFault);
        }
        // Superpage alignment: low PPN fields must be zero.
        let low_mask = match level {
            2 => (1u64 << 18) - 1,
            1 => (1u64 << 9) - 1,
            _ => 0,
        };
        if ppn & low_mask != 0 {
            return Err(WalkFault::PageFault);
        }
        let page_bits = 12 + 9 * level as u32;
        let page_mask = (1u64 << page_bits) - 1;
        return Ok(((ppn << 12) & !page_mask) | (vaddr & page_mask));
    }
    Err(WalkFault::PageFault)
}

/// Whether `satp` selects Sv39 translation.
pub fn sv39_active(satp: u64, mode: PrivMode) -> bool {
    mode != PrivMode::Machine && (satp >> 60) == 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Builds a PTE.
    fn pte(pa: u64, flags: u64) -> u64 {
        ((pa >> 12) << 10) | flags
    }

    struct PtMem(HashMap<u64, u64>);
    impl PtMem {
        fn reader(&self) -> impl FnMut(u64) -> Result<u64, WalkFault> + '_ {
            move |addr| self.0.get(&addr).copied().ok_or(WalkFault::AccessFault)
        }
    }

    const RWX_AD: u64 = PTE_V | PTE_R | PTE_W | PTE_X | PTE_A | PTE_D;

    fn three_level_map(vaddr: u64, paddr: u64, leaf_flags: u64) -> (PtMem, u64) {
        let (l2, l1, l0) = (0x10_000u64, 0x11_000u64, 0x12_000u64);
        let mut m = HashMap::new();
        let vpn2 = (vaddr >> 30) & 0x1FF;
        let vpn1 = (vaddr >> 21) & 0x1FF;
        let vpn0 = (vaddr >> 12) & 0x1FF;
        m.insert(l2 + vpn2 * 8, pte(l1, PTE_V));
        m.insert(l1 + vpn1 * 8, pte(l0, PTE_V));
        m.insert(l0 + vpn0 * 8, pte(paddr, leaf_flags));
        let satp = (8u64 << 60) | (l2 >> 12);
        (PtMem(m), satp)
    }

    #[test]
    fn three_level_translation() {
        let (m, satp) = three_level_map(0x4000_1234, 0x8765_4000, RWX_AD);
        let pa = translate_sv39(
            0x4000_1234,
            satp,
            AccessKind::Load,
            PrivMode::Supervisor,
            m.reader(),
        )
        .unwrap();
        assert_eq!(pa, 0x8765_4234);
    }

    #[test]
    fn megapage_translation() {
        let l2 = 0x10_000u64;
        let l1 = 0x11_000u64;
        let mut m = HashMap::new();
        let vaddr = 0x4020_5678u64;
        m.insert(l2 + ((vaddr >> 30) & 0x1FF) * 8, pte(l1, PTE_V));
        // 2 MB leaf at level 1 mapping to PA 0x20_0000.
        m.insert(l1 + ((vaddr >> 21) & 0x1FF) * 8, pte(0x20_0000, RWX_AD));
        let satp = (8u64 << 60) | (l2 >> 12);
        let pa = translate_sv39(
            vaddr,
            satp,
            AccessKind::Fetch,
            PrivMode::Supervisor,
            PtMem(m).reader(),
        )
        .unwrap();
        assert_eq!(pa, 0x20_0000 | (vaddr & 0x1F_FFFF));
    }

    #[test]
    fn misaligned_superpage_faults() {
        let l2 = 0x10_000u64;
        let mut m = HashMap::new();
        // Gigapage leaf with non-zero low PPN bits.
        m.insert(l2, pte(0x1000, RWX_AD));
        let satp = (8u64 << 60) | (l2 >> 12);
        let r = translate_sv39(
            0x1000,
            satp,
            AccessKind::Load,
            PrivMode::Supervisor,
            PtMem(m).reader(),
        );
        assert_eq!(r, Err(WalkFault::PageFault));
    }

    #[test]
    fn permission_faults() {
        // Read-only page: store faults, load succeeds.
        let flags = PTE_V | PTE_R | PTE_A | PTE_D;
        let (m, satp) = three_level_map(0x1000, 0x2000, flags);
        assert!(translate_sv39(
            0x1000,
            satp,
            AccessKind::Load,
            PrivMode::Supervisor,
            m.reader()
        )
        .is_ok());
        assert_eq!(
            translate_sv39(
                0x1000,
                satp,
                AccessKind::Store,
                PrivMode::Supervisor,
                m.reader()
            ),
            Err(WalkFault::PageFault)
        );
        assert_eq!(
            translate_sv39(
                0x1000,
                satp,
                AccessKind::Fetch,
                PrivMode::Supervisor,
                m.reader()
            ),
            Err(WalkFault::PageFault)
        );
    }

    #[test]
    fn user_supervisor_separation() {
        let user_flags = RWX_AD | PTE_U;
        let (m, satp) = three_level_map(0x1000, 0x2000, user_flags);
        assert!(translate_sv39(0x1000, satp, AccessKind::Load, PrivMode::User, m.reader()).is_ok());
        // S-mode cannot touch U pages without SUM.
        assert_eq!(
            translate_sv39(
                0x1000,
                satp,
                AccessKind::Load,
                PrivMode::Supervisor,
                m.reader()
            ),
            Err(WalkFault::PageFault)
        );
        let (m, satp) = three_level_map(0x1000, 0x2000, RWX_AD);
        assert_eq!(
            translate_sv39(0x1000, satp, AccessKind::Load, PrivMode::User, m.reader()),
            Err(WalkFault::PageFault)
        );
    }

    #[test]
    fn clear_accessed_or_dirty_faults() {
        let flags = PTE_V | PTE_R | PTE_W | PTE_A; // D clear
        let (m, satp) = three_level_map(0x1000, 0x2000, flags);
        assert!(translate_sv39(
            0x1000,
            satp,
            AccessKind::Load,
            PrivMode::Supervisor,
            m.reader()
        )
        .is_ok());
        assert_eq!(
            translate_sv39(
                0x1000,
                satp,
                AccessKind::Store,
                PrivMode::Supervisor,
                m.reader()
            ),
            Err(WalkFault::PageFault)
        );
        let flags = PTE_V | PTE_R; // A clear
        let (m, satp) = three_level_map(0x1000, 0x2000, flags);
        assert_eq!(
            translate_sv39(
                0x1000,
                satp,
                AccessKind::Load,
                PrivMode::Supervisor,
                m.reader()
            ),
            Err(WalkFault::PageFault)
        );
    }

    #[test]
    fn non_canonical_vaddr_faults() {
        let (m, satp) = three_level_map(0x1000, 0x2000, RWX_AD);
        assert_eq!(
            translate_sv39(
                1u64 << 40,
                satp,
                AccessKind::Load,
                PrivMode::Supervisor,
                m.reader()
            ),
            Err(WalkFault::PageFault)
        );
    }

    #[test]
    fn pte_read_failure_propagates() {
        let m = PtMem(HashMap::new());
        let satp = 8u64 << 60;
        assert_eq!(
            translate_sv39(
                0x1000,
                satp,
                AccessKind::Load,
                PrivMode::Supervisor,
                m.reader()
            ),
            Err(WalkFault::AccessFault)
        );
    }

    #[test]
    fn sv39_activation() {
        let satp = 8u64 << 60;
        assert!(sv39_active(satp, PrivMode::Supervisor));
        assert!(sv39_active(satp, PrivMode::User));
        assert!(!sv39_active(satp, PrivMode::Machine));
        assert!(!sv39_active(0, PrivMode::Supervisor));
    }
}
