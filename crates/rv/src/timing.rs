//! Per-microarchitecture instruction cost models.

use crate::inst::{FpOp, Inst};

/// Issue/execute costs of one core microarchitecture, in core cycles.
///
/// The interpreter charges, per retired instruction,
/// `cost(inst) + taken-branch penalty + memory stalls`, where memory stalls
/// are whatever the attached [`CoreBus`](crate::CoreBus) reports beyond the
/// one cycle a pipelined hit hides. With every operand in L1/SPM this makes
/// both cores CPI ≈ 1 on ALU streams — matching the RTL they model.
///
/// # Example
///
/// ```
/// use hulkv_rv::CostModel;
///
/// let cva6 = CostModel::cva6();
/// let ri5cy = CostModel::ri5cy();
/// assert!(cva6.div >= 10 && ri5cy.div >= 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Model name (reports).
    pub name: &'static str,
    /// Default single-issue cost.
    pub base: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide/remainder.
    pub div: u64,
    /// Extra cycles for a taken branch (pipeline flush minus prediction).
    pub branch_taken_penalty: u64,
    /// Extra cycles for `jal`/`jalr`.
    pub jump_penalty: u64,
    /// FP add/sub/min/max/compare.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// Fused multiply-add.
    pub fp_fma: u64,
    /// FP divide.
    pub fp_div: u64,
    /// FP square root.
    pub fp_sqrt: u64,
    /// CSR access.
    pub csr: u64,
}

impl CostModel {
    /// The CVA6 host: 6-stage in-order single-issue, hardware divider,
    /// pipelined FPU, branch predictor (modest taken penalty).
    pub fn cva6() -> Self {
        CostModel {
            name: "cva6",
            base: 1,
            mul: 2,
            div: 20,
            branch_taken_penalty: 2,
            jump_penalty: 1,
            fp_add: 2,
            fp_mul: 3,
            fp_fma: 4,
            fp_div: 15,
            fp_sqrt: 20,
            csr: 1,
        }
    }

    /// A RI5CY/CV32E4 cluster core: 4-stage, single-cycle multiplier and
    /// SIMD/MAC units, iterative divider, shared single-cycle FPU, and a
    /// 2-cycle taken-branch penalty. Hardware loops make loop back-edges
    /// free, which is handled by the interpreter (the `lp.*` setup
    /// instructions themselves cost `base`).
    pub fn ri5cy() -> Self {
        CostModel {
            name: "ri5cy",
            base: 1,
            mul: 1,
            div: 35,
            branch_taken_penalty: 2,
            jump_penalty: 1,
            fp_add: 1,
            fp_mul: 1,
            fp_fma: 1,
            fp_div: 10,
            fp_sqrt: 15,
            csr: 1,
        }
    }

    /// Issue/execute cost of `inst`, excluding branch penalties and memory
    /// stalls.
    pub fn cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::MulDiv { op, .. } | Inst::MulDiv32 { op, .. } => match op {
                crate::inst::MulDivOp::Mul
                | crate::inst::MulDivOp::Mulh
                | crate::inst::MulDivOp::Mulhsu
                | crate::inst::MulDivOp::Mulhu => self.mul,
                _ => self.div,
            },
            Inst::FpOp3 { op, .. } => match op {
                FpOp::Add
                | FpOp::Sub
                | FpOp::Min
                | FpOp::Max
                | FpOp::SgnJ
                | FpOp::SgnJn
                | FpOp::SgnJx => self.fp_add,
                FpOp::Mul => self.fp_mul,
                FpOp::Div => self.fp_div,
                FpOp::Sqrt => self.fp_sqrt,
            },
            Inst::FpFma { .. } => self.fp_fma,
            Inst::FpCmp { .. }
            | Inst::FpToInt { .. }
            | Inst::IntToFp { .. }
            | Inst::FpCvt { .. } => self.fp_add,
            Inst::Csr { .. } => self.csr,
            Inst::Mac { .. } => self.mul,
            // Packed SIMD and FP16 SIMD are single-cycle units on RI5CY.
            Inst::Simd { .. } | Inst::SimdFp { .. } => self.base,
            _ => self.base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::*;

    #[test]
    fn alu_is_single_cycle() {
        let m = CostModel::cva6();
        let add = Inst::Op {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(m.cost(&add), 1);
    }

    #[test]
    fn div_slower_than_mul() {
        for m in [CostModel::cva6(), CostModel::ri5cy()] {
            let mul = Inst::MulDiv {
                op: MulDivOp::Mul,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            };
            let div = Inst::MulDiv {
                op: MulDivOp::Div,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            };
            assert!(m.cost(&div) > m.cost(&mul));
        }
    }

    #[test]
    fn ri5cy_fp_single_cycle() {
        let m = CostModel::ri5cy();
        let fma = Inst::FpFma {
            fmt: FpFmt::S,
            rd: FReg(0),
            rs1: FReg(1),
            rs2: FReg(2),
            rs3: FReg(0),
            negate_product: false,
            negate_addend: false,
        };
        assert_eq!(m.cost(&fma), 1);
        let mac = Inst::Mac {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            subtract: false,
        };
        assert_eq!(m.cost(&mac), 1);
    }

    #[test]
    fn simd_single_cycle() {
        let m = CostModel::ri5cy();
        let dot = Inst::Simd {
            op: SimdOp::Sdotsp,
            fmt: SimdFmt::B,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            scalar_rs2: false,
        };
        assert_eq!(m.cost(&dot), 1);
    }
}
