//! The C (compressed) extension: 16-bit instruction parcels.
//!
//! CVA6 implements RV64GC, so the host fetch path understands 2-byte
//! parcels: any halfword whose low two bits are not `11` expands to a full
//! 32-bit instruction before execution, exactly like the RTL's aligner +
//! expander. [`expand`] performs that mapping; [`compress`] is its partial
//! inverse, used by tests and by code-size-conscious callers.

use crate::inst::*;

#[inline]
fn creg(bits: u16) -> Reg {
    // x8..x15 (the RVC register subset).
    Reg::from_index(8 + (bits & 7) as u8)
}

#[inline]
fn full_reg(bits: u16) -> Reg {
    Reg::from_index((bits & 0x1F) as u8)
}

/// Expands a 16-bit compressed parcel to its 32-bit equivalent.
///
/// Returns `None` for reserved/illegal encodings (including the all-zero
/// halfword, which the ISA defines as illegal).
///
/// # Example
///
/// ```
/// use hulkv_rv::compressed::expand;
/// use hulkv_rv::inst::{AluOp, Inst, Reg, Xlen};
///
/// // c.addi a0, 3
/// let inst = expand(0x050D, Xlen::Rv64).unwrap();
/// assert_eq!(inst, Inst::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 3 });
/// ```
pub fn expand(half: u16, xlen: Xlen) -> Option<Inst> {
    if half == 0 {
        return None;
    }
    let op = half & 3;
    let funct3 = (half >> 13) & 7;
    match (op, funct3) {
        // --- Quadrant 0 ---
        (0b00, 0b000) => {
            // c.addi4spn rd', sp, nzuimm
            let imm = (((half >> 5) & 1) << 3)
                | (((half >> 6) & 1) << 2)
                | (((half >> 7) & 0xF) << 6)
                | (((half >> 11) & 3) << 4);
            if imm == 0 {
                return None;
            }
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd: creg(half >> 2),
                rs1: Reg::Sp,
                imm: imm as i64,
            })
        }
        (0b00, 0b010) => {
            // c.lw rd', offset(rs1')
            let imm =
                (((half >> 6) & 1) << 2) | (((half >> 10) & 7) << 3) | (((half >> 5) & 1) << 6);
            Some(Inst::Load {
                width: LoadWidth::W,
                rd: creg(half >> 2),
                rs1: creg(half >> 7),
                offset: imm as i64,
            })
        }
        (0b00, 0b011) if xlen == Xlen::Rv64 => {
            // c.ld rd', offset(rs1')
            let imm = (((half >> 10) & 7) << 3) | (((half >> 5) & 3) << 6);
            Some(Inst::Load {
                width: LoadWidth::D,
                rd: creg(half >> 2),
                rs1: creg(half >> 7),
                offset: imm as i64,
            })
        }
        (0b00, 0b110) => {
            // c.sw rs2', offset(rs1')
            let imm =
                (((half >> 6) & 1) << 2) | (((half >> 10) & 7) << 3) | (((half >> 5) & 1) << 6);
            Some(Inst::Store {
                width: StoreWidth::W,
                rs2: creg(half >> 2),
                rs1: creg(half >> 7),
                offset: imm as i64,
            })
        }
        (0b00, 0b111) if xlen == Xlen::Rv64 => {
            // c.sd rs2', offset(rs1')
            let imm = (((half >> 10) & 7) << 3) | (((half >> 5) & 3) << 6);
            Some(Inst::Store {
                width: StoreWidth::D,
                rs2: creg(half >> 2),
                rs1: creg(half >> 7),
                offset: imm as i64,
            })
        }

        // --- Quadrant 1 ---
        (0b01, 0b000) => {
            // c.addi rd, nzimm (c.nop when rd=0, imm=0)
            let rd = full_reg(half >> 7);
            let imm = ci_imm6(half);
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm,
            })
        }
        (0b01, 0b001) if xlen == Xlen::Rv64 => {
            // c.addiw rd, imm
            let rd = full_reg(half >> 7);
            if rd == Reg::Zero {
                return None;
            }
            Some(Inst::OpImm32 {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm: ci_imm6(half),
            })
        }
        (0b01, 0b010) => {
            // c.li rd, imm
            let rd = full_reg(half >> 7);
            Some(Inst::OpImm {
                op: AluOp::Add,
                rd,
                rs1: Reg::Zero,
                imm: ci_imm6(half),
            })
        }
        (0b01, 0b011) => {
            let rd = full_reg(half >> 7);
            if rd == Reg::Sp {
                // c.addi16sp
                let imm = ((((half >> 12) & 1) as i64) << 9)
                    | ((((half >> 6) & 1) as i64) << 4)
                    | ((((half >> 5) & 1) as i64) << 6)
                    | ((((half >> 3) & 3) as i64) << 7)
                    | ((((half >> 2) & 1) as i64) << 5);
                let imm = (imm << 54) >> 54; // sign-extend 10 bits
                if imm == 0 {
                    return None;
                }
                Some(Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::Sp,
                    rs1: Reg::Sp,
                    imm,
                })
            } else {
                // c.lui
                let imm = ci_imm6(half);
                if imm == 0 || rd == Reg::Zero {
                    return None;
                }
                Some(Inst::Lui { rd, imm })
            }
        }
        (0b01, 0b100) => {
            let rd = creg(half >> 7);
            match (half >> 10) & 3 {
                0b00 => {
                    // c.srli
                    let sh = shamt6(half, xlen)?;
                    Some(Inst::OpImm {
                        op: AluOp::Srl,
                        rd,
                        rs1: rd,
                        imm: sh,
                    })
                }
                0b01 => {
                    let sh = shamt6(half, xlen)?;
                    Some(Inst::OpImm {
                        op: AluOp::Sra,
                        rd,
                        rs1: rd,
                        imm: sh,
                    })
                }
                0b10 => Some(Inst::OpImm {
                    op: AluOp::And,
                    rd,
                    rs1: rd,
                    imm: ci_imm6(half),
                }),
                _ => {
                    let rs2 = creg(half >> 2);
                    let word = (half >> 12) & 1 == 1;
                    let op = match (word, (half >> 5) & 3) {
                        (false, 0b00) => AluOp::Sub,
                        (false, 0b01) => AluOp::Xor,
                        (false, 0b10) => AluOp::Or,
                        (false, 0b11) => AluOp::And,
                        (true, 0b00) if xlen == Xlen::Rv64 => {
                            return Some(Inst::Op32 {
                                op: AluOp::Sub,
                                rd,
                                rs1: rd,
                                rs2,
                            });
                        }
                        (true, 0b01) if xlen == Xlen::Rv64 => {
                            return Some(Inst::Op32 {
                                op: AluOp::Add,
                                rd,
                                rs1: rd,
                                rs2,
                            });
                        }
                        _ => return None,
                    };
                    Some(Inst::Op {
                        op,
                        rd,
                        rs1: rd,
                        rs2,
                    })
                }
            }
        }
        (0b01, 0b101) => {
            // c.j
            Some(Inst::Jal {
                rd: Reg::Zero,
                offset: cj_offset(half),
            })
        }
        (0b01, 0b110) => Some(Inst::Branch {
            cond: BranchCond::Eq,
            rs1: creg(half >> 7),
            rs2: Reg::Zero,
            offset: cb_offset(half),
        }),
        (0b01, 0b111) => Some(Inst::Branch {
            cond: BranchCond::Ne,
            rs1: creg(half >> 7),
            rs2: Reg::Zero,
            offset: cb_offset(half),
        }),

        // --- Quadrant 2 ---
        (0b10, 0b000) => {
            // c.slli
            let rd = full_reg(half >> 7);
            let sh = shamt6(half, xlen)?;
            Some(Inst::OpImm {
                op: AluOp::Sll,
                rd,
                rs1: rd,
                imm: sh,
            })
        }
        (0b10, 0b010) => {
            // c.lwsp
            let rd = full_reg(half >> 7);
            if rd == Reg::Zero {
                return None;
            }
            let imm = (((half >> 4) & 7) << 2) | (((half >> 12) & 1) << 5) | ((half & 0xC) << 4);
            Some(Inst::Load {
                width: LoadWidth::W,
                rd,
                rs1: Reg::Sp,
                offset: imm as i64,
            })
        }
        (0b10, 0b011) if xlen == Xlen::Rv64 => {
            // c.ldsp
            let rd = full_reg(half >> 7);
            if rd == Reg::Zero {
                return None;
            }
            let imm =
                (((half >> 5) & 3) << 3) | (((half >> 12) & 1) << 5) | (((half >> 2) & 7) << 6);
            Some(Inst::Load {
                width: LoadWidth::D,
                rd,
                rs1: Reg::Sp,
                offset: imm as i64,
            })
        }
        (0b10, 0b100) => {
            let rd = full_reg(half >> 7);
            let rs2 = full_reg(half >> 2);
            let bit12 = (half >> 12) & 1 == 1;
            match (bit12, rd, rs2) {
                (false, Reg::Zero, _) => None,
                (false, _, Reg::Zero) => {
                    // c.jr
                    Some(Inst::Jalr {
                        rd: Reg::Zero,
                        rs1: rd,
                        offset: 0,
                    })
                }
                (false, _, _) => {
                    // c.mv
                    Some(Inst::Op {
                        op: AluOp::Add,
                        rd,
                        rs1: Reg::Zero,
                        rs2,
                    })
                }
                (true, Reg::Zero, Reg::Zero) => Some(Inst::Ebreak),
                (true, _, Reg::Zero) => {
                    // c.jalr
                    Some(Inst::Jalr {
                        rd: Reg::Ra,
                        rs1: rd,
                        offset: 0,
                    })
                }
                (true, _, _) => {
                    // c.add
                    Some(Inst::Op {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        rs2,
                    })
                }
            }
        }
        (0b10, 0b110) => {
            // c.swsp
            let imm = (((half >> 9) & 0xF) << 2) | (((half >> 7) & 3) << 6);
            Some(Inst::Store {
                width: StoreWidth::W,
                rs2: full_reg(half >> 2),
                rs1: Reg::Sp,
                offset: imm as i64,
            })
        }
        (0b10, 0b111) if xlen == Xlen::Rv64 => {
            // c.sdsp
            let imm = (((half >> 10) & 7) << 3) | (((half >> 7) & 7) << 6);
            Some(Inst::Store {
                width: StoreWidth::D,
                rs2: full_reg(half >> 2),
                rs1: Reg::Sp,
                offset: imm as i64,
            })
        }
        _ => None,
    }
}

/// Sign-extended CI-format immediate (bits 12 and 6:2).
fn ci_imm6(half: u16) -> i64 {
    let raw = (((half >> 12) & 1) << 5) | ((half >> 2) & 0x1F);
    ((raw as i64) << 58) >> 58
}

/// 6-bit shift amount (bit 12 | bits 6:2); RV32 restricts to 5 bits.
fn shamt6(half: u16, xlen: Xlen) -> Option<i64> {
    let sh = ((((half >> 12) & 1) << 5) | ((half >> 2) & 0x1F)) as i64;
    if sh == 0 || (xlen == Xlen::Rv32 && sh >= 32) {
        return None;
    }
    Some(sh)
}

/// CJ-format jump offset.
fn cj_offset(half: u16) -> i64 {
    let x = half as i64;
    let imm = (((x >> 12) & 1) << 11)
        | (((x >> 11) & 1) << 4)
        | (((x >> 9) & 3) << 8)
        | (((x >> 8) & 1) << 10)
        | (((x >> 7) & 1) << 6)
        | (((x >> 6) & 1) << 7)
        | (((x >> 3) & 7) << 1)
        | (((x >> 2) & 1) << 5);
    (imm << 52) >> 52
}

/// CB-format branch offset.
fn cb_offset(half: u16) -> i64 {
    let x = half as i64;
    let imm = (((x >> 12) & 1) << 8)
        | (((x >> 10) & 3) << 3)
        | (((x >> 5) & 3) << 6)
        | (((x >> 3) & 3) << 1)
        | (((x >> 2) & 1) << 5);
    (imm << 55) >> 55
}

fn is_creg(r: Reg) -> Option<u16> {
    let i = r.index();
    (8..16).contains(&i).then_some((i - 8) as u16)
}

/// Compresses an instruction into a 16-bit parcel, when a compressed form
/// exists. The partial inverse of [`expand`]: every `Some` result expands
/// back to the input (verified by property tests).
///
/// # Example
///
/// ```
/// use hulkv_rv::compressed::{compress, expand};
/// use hulkv_rv::inst::{AluOp, Inst, Reg, Xlen};
///
/// let i = Inst::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 3 };
/// let half = compress(&i, Xlen::Rv64).unwrap();
/// assert_eq!(expand(half, Xlen::Rv64), Some(i));
/// ```
pub fn compress(inst: &Inst, xlen: Xlen) -> Option<u16> {
    match *inst {
        Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        } if rd == rs1 && rd != Reg::Zero => {
            // c.addi (funct3 = 000, op = 01)
            (-32..32).contains(&imm).then(|| {
                let u = (imm & 0x3F) as u16;
                ((u >> 5) << 12) | ((rd.index() as u16) << 7) | ((u & 0x1F) << 2) | 0b01
            })
        }
        Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1: Reg::Zero,
            imm,
        } if rd != Reg::Zero => {
            // c.li
            (-32..32).contains(&imm).then(|| {
                let u = (imm & 0x3F) as u16;
                (0b010 << 13)
                    | ((u >> 5) << 12)
                    | ((rd.index() as u16) << 7)
                    | ((u & 0x1F) << 2)
                    | 0b01
            })
        }
        Inst::Op {
            op: AluOp::Add,
            rd,
            rs1: Reg::Zero,
            rs2,
        } if rd != Reg::Zero && rs2 != Reg::Zero => {
            // c.mv
            Some((0b100 << 13) | ((rd.index() as u16) << 7) | ((rs2.index() as u16) << 2) | 0b10)
        }
        Inst::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        } if rd == rs1 && rd != Reg::Zero && rs2 != Reg::Zero => {
            // c.add
            Some(
                (0b100 << 13)
                    | (1 << 12)
                    | ((rd.index() as u16) << 7)
                    | ((rs2.index() as u16) << 2)
                    | 0b10,
            )
        }
        Inst::Op { op, rd, rs1, rs2 } if rd == rs1 => {
            // c.sub/xor/or/and on the RVC register subset.
            let rdc = is_creg(rd)?;
            let rs2c = is_creg(rs2)?;
            let f2 = match op {
                AluOp::Sub => 0b00,
                AluOp::Xor => 0b01,
                AluOp::Or => 0b10,
                AluOp::And => 0b11,
                _ => return None,
            };
            Some((0b100 << 13) | (0b011 << 10) | (rdc << 7) | (f2 << 5) | (rs2c << 2) | 0b01)
        }
        Inst::Load {
            width: LoadWidth::W,
            rd,
            rs1,
            offset,
        } => {
            let rdc = is_creg(rd)?;
            let rs1c = is_creg(rs1)?;
            if !(0..=0x7C).contains(&offset) || offset & 3 != 0 {
                return None;
            }
            let o = offset as u16;
            Some(
                (0b010 << 13)
                    | (((o >> 3) & 7) << 10)
                    | (rs1c << 7)
                    | (((o >> 2) & 1) << 6)
                    | (((o >> 6) & 1) << 5)
                    | (rdc << 2),
            )
        }
        Inst::Store {
            width: StoreWidth::W,
            rs2,
            rs1,
            offset,
        } => {
            let rs2c = is_creg(rs2)?;
            let rs1c = is_creg(rs1)?;
            if !(0..=0x7C).contains(&offset) || offset & 3 != 0 {
                return None;
            }
            let o = offset as u16;
            Some(
                (0b110 << 13)
                    | (((o >> 3) & 7) << 10)
                    | (rs1c << 7)
                    | (((o >> 2) & 1) << 6)
                    | (((o >> 6) & 1) << 5)
                    | (rs2c << 2),
            )
        }
        Inst::Load {
            width: LoadWidth::D,
            rd,
            rs1,
            offset,
        } if xlen == Xlen::Rv64 => {
            let rdc = is_creg(rd)?;
            let rs1c = is_creg(rs1)?;
            if !(0..=0xF8).contains(&offset) || offset & 7 != 0 {
                return None;
            }
            let o = offset as u16;
            Some(
                (0b011 << 13)
                    | (((o >> 3) & 7) << 10)
                    | (rs1c << 7)
                    | (((o >> 6) & 3) << 5)
                    | (rdc << 2),
            )
        }
        Inst::Store {
            width: StoreWidth::D,
            rs2,
            rs1,
            offset,
        } if xlen == Xlen::Rv64 => {
            let rs2c = is_creg(rs2)?;
            let rs1c = is_creg(rs1)?;
            if !(0..=0xF8).contains(&offset) || offset & 7 != 0 {
                return None;
            }
            let o = offset as u16;
            Some(
                (0b111 << 13)
                    | (((o >> 3) & 7) << 10)
                    | (rs1c << 7)
                    | (((o >> 6) & 3) << 5)
                    | (rs2c << 2),
            )
        }
        Inst::Jalr {
            rd: Reg::Zero,
            rs1,
            offset: 0,
        } if rs1 != Reg::Zero => {
            // c.jr
            Some((0b100 << 13) | ((rs1.index() as u16) << 7) | 0b10)
        }
        Inst::Ebreak => Some((0b100 << 13) | (1 << 12) | 0b10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_expansions() {
        // Cross-checked against riscv-gnu-toolchain objdump output.
        let cases: Vec<(u16, Inst)> = vec![
            // c.addi a0, 3 = 0x050d
            (
                0x050D,
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    imm: 3,
                },
            ),
            // c.li a5, -1 = 0x57fd
            (
                0x57FD,
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A5,
                    rs1: Reg::Zero,
                    imm: -1,
                },
            ),
            // c.mv a0, a1 = 0x852e
            (
                0x852E,
                Inst::Op {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::Zero,
                    rs2: Reg::A1,
                },
            ),
            // c.add a0, a1 = 0x952e
            (
                0x952E,
                Inst::Op {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                },
            ),
            // c.lw a2, 0(a0) = 0x4110
            (
                0x4110,
                Inst::Load {
                    width: LoadWidth::W,
                    rd: Reg::A2,
                    rs1: Reg::A0,
                    offset: 0,
                },
            ),
            // c.sw a2, 4(a0) = 0xc150
            (
                0xC150,
                Inst::Store {
                    width: StoreWidth::W,
                    rs2: Reg::A2,
                    rs1: Reg::A0,
                    offset: 4,
                },
            ),
            // c.ld a2, 8(a0) = 0x6510
            (
                0x6510,
                Inst::Load {
                    width: LoadWidth::D,
                    rd: Reg::A2,
                    rs1: Reg::A0,
                    offset: 8,
                },
            ),
            // c.jr ra = 0x8082 (ret)
            (
                0x8082,
                Inst::Jalr {
                    rd: Reg::Zero,
                    rs1: Reg::Ra,
                    offset: 0,
                },
            ),
            // c.ebreak = 0x9002
            (0x9002, Inst::Ebreak),
            // c.sub s0, s1 = 0x8c05
            (
                0x8C05,
                Inst::Op {
                    op: AluOp::Sub,
                    rd: Reg::S0,
                    rs1: Reg::S0,
                    rs2: Reg::S1,
                },
            ),
            // c.slli a0, 2 = 0x050a
            (
                0x050A,
                Inst::OpImm {
                    op: AluOp::Sll,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    imm: 2,
                },
            ),
            // c.addi4spn a0, sp, 16 = 0x0808
            (
                0x0808,
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::Sp,
                    imm: 16,
                },
            ),
            // c.addi16sp sp, -32 = 0x7139
            (
                0x7139,
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::Sp,
                    rs1: Reg::Sp,
                    imm: -64,
                },
            ),
        ];
        for (half, expect) in cases {
            assert_eq!(expand(half, Xlen::Rv64), Some(expect), "half {half:#06x}");
        }
    }

    #[test]
    fn branch_and_jump_offsets() {
        // c.j +0 = 0xa001; c.beqz a0, +4 = 0xc111; c.beqz a0, +8 = 0xc501.
        assert_eq!(
            expand(0xA001, Xlen::Rv64),
            Some(Inst::Jal {
                rd: Reg::Zero,
                offset: 0
            })
        );
        assert_eq!(
            expand(0xC111, Xlen::Rv64),
            Some(Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: 4
            })
        );
        assert_eq!(
            expand(0xC501, Xlen::Rv64),
            Some(Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: 8
            })
        );
    }

    #[test]
    fn illegal_parcels_rejected() {
        assert_eq!(expand(0, Xlen::Rv64), None);
        // c.addiw with rd=0 is reserved.
        assert_eq!(expand(0x2001, Xlen::Rv64), None);
        // c.ld on RV32 is not a thing (it's c.flw, unimplemented here).
        assert_eq!(expand(0x6510, Xlen::Rv32), None);
    }

    #[test]
    fn compress_expand_round_trip() {
        let cases = vec![
            Inst::OpImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: -5,
            },
            Inst::OpImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::Zero,
                imm: 31,
            },
            Inst::Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::Zero,
                rs2: Reg::A1,
            },
            Inst::Op {
                op: AluOp::Add,
                rd: Reg::S2,
                rs1: Reg::S2,
                rs2: Reg::T3,
            },
            Inst::Op {
                op: AluOp::Xor,
                rd: Reg::S0,
                rs1: Reg::S0,
                rs2: Reg::A5,
            },
            Inst::Load {
                width: LoadWidth::W,
                rd: Reg::A3,
                rs1: Reg::A4,
                offset: 64,
            },
            Inst::Store {
                width: StoreWidth::D,
                rs2: Reg::S1,
                rs1: Reg::A0,
                offset: 0xF8,
            },
            Inst::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            },
            Inst::Ebreak,
        ];
        for inst in cases {
            let half = compress(&inst, Xlen::Rv64).unwrap_or_else(|| panic!("{inst:?}"));
            assert!(half & 3 != 3, "not a compressed parcel");
            assert_eq!(expand(half, Xlen::Rv64), Some(inst), "{half:#06x}");
        }
    }

    #[test]
    fn uncompressible_forms() {
        assert_eq!(
            compress(
                &Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    imm: 100
                },
                Xlen::Rv64
            ),
            None
        );
        assert_eq!(compress(&Inst::Ecall, Xlen::Rv64), None);
        assert_eq!(
            compress(
                &Inst::Load {
                    width: LoadWidth::W,
                    rd: Reg::T6,
                    rs1: Reg::T5,
                    offset: 0
                },
                Xlen::Rv64
            ),
            None,
            "t5/t6 are outside the RVC register subset"
        );
    }
}
