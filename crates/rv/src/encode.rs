//! Instruction encoding: [`Inst`] → 32-bit word.
//!
//! Standard RV32/RV64 IMAFD+Zicsr instructions use the real RISC-V
//! encodings. Xpulp instructions use the custom-0/1/2/3 opcode spaces with
//! the layout documented in [`mod@crate::decode`]; [`encode`] and
//! [`crate::decode::decode`] are exact mirrors, which the property tests
//! verify by round-tripping.

use crate::inst::*;

const OP_LOAD: u32 = 0x03;
const OP_LOAD_FP: u32 = 0x07;
const OP_CUSTOM0: u32 = 0x0B;
const OP_MISC_MEM: u32 = 0x0F;
const OP_IMM: u32 = 0x13;
const OP_AUIPC: u32 = 0x17;
const OP_IMM_32: u32 = 0x1B;
const OP_STORE: u32 = 0x23;
const OP_STORE_FP: u32 = 0x27;
const OP_CUSTOM1: u32 = 0x2B;
const OP_AMO: u32 = 0x2F;
const OP_OP: u32 = 0x33;
const OP_LUI: u32 = 0x37;
const OP_OP_32: u32 = 0x3B;
const OP_MADD: u32 = 0x43;
const OP_MSUB: u32 = 0x47;
const OP_NMSUB: u32 = 0x4B;
const OP_NMADD: u32 = 0x4F;
const OP_FP: u32 = 0x53;
const OP_CUSTOM2: u32 = 0x5B;
const OP_BRANCH: u32 = 0x63;
const OP_JALR: u32 = 0x67;
const OP_JAL: u32 = 0x6F;
const OP_SYSTEM: u32 = 0x73;
const OP_CUSTOM3: u32 = 0x7B;

fn r_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, rs2: u32, funct7: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(opcode: u32, rd: u32, funct3: u32, rs1: u32, imm: i64) -> Result<u32, RvError> {
    check_imm(imm, 12)?;
    let imm = (imm as u32) & 0xFFF;
    Ok((imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode)
}

fn s_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i64) -> Result<u32, RvError> {
    check_imm(imm, 12)?;
    let imm = (imm as u32) & 0xFFF;
    Ok(((imm >> 5) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode)
}

fn b_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i64) -> Result<u32, RvError> {
    if imm % 2 != 0 {
        return Err(RvError::Encode(format!("branch offset {imm} is odd")));
    }
    check_imm(imm, 13)?;
    let imm = (imm as u32) & 0x1FFF;
    let b12 = (imm >> 12) & 1;
    let b11 = (imm >> 11) & 1;
    let b10_5 = (imm >> 5) & 0x3F;
    let b4_1 = (imm >> 1) & 0xF;
    Ok((b12 << 31)
        | (b10_5 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (b4_1 << 8)
        | (b11 << 7)
        | opcode)
}

fn u_type(opcode: u32, rd: u32, imm: i64) -> Result<u32, RvError> {
    // imm is the value placed in bits [31:12].
    if !(-(1 << 19)..(1 << 19)).contains(&imm) {
        return Err(RvError::Encode(format!(
            "U-type immediate {imm} out of range"
        )));
    }
    Ok((((imm as u32) & 0xF_FFFF) << 12) | (rd << 7) | opcode)
}

fn j_type(opcode: u32, rd: u32, imm: i64) -> Result<u32, RvError> {
    if imm % 2 != 0 {
        return Err(RvError::Encode(format!("jump offset {imm} is odd")));
    }
    check_imm(imm, 21)?;
    let imm = (imm as u32) & 0x1F_FFFF;
    let b20 = (imm >> 20) & 1;
    let b19_12 = (imm >> 12) & 0xFF;
    let b11 = (imm >> 11) & 1;
    let b10_1 = (imm >> 1) & 0x3FF;
    Ok((b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | opcode)
}

fn check_imm(imm: i64, bits: u32) -> Result<(), RvError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if imm < min || imm > max {
        return Err(RvError::Encode(format!(
            "immediate {imm} does not fit in {bits} signed bits"
        )));
    }
    Ok(())
}

fn load_funct3(w: LoadWidth) -> u32 {
    match w {
        LoadWidth::B => 0b000,
        LoadWidth::H => 0b001,
        LoadWidth::W => 0b010,
        LoadWidth::D => 0b011,
        LoadWidth::Bu => 0b100,
        LoadWidth::Hu => 0b101,
        LoadWidth::Wu => 0b110,
    }
}

fn store_funct3(w: StoreWidth) -> u32 {
    match w {
        StoreWidth::B => 0b000,
        StoreWidth::H => 0b001,
        StoreWidth::W => 0b010,
        StoreWidth::D => 0b011,
    }
}

fn branch_funct3(c: BranchCond) -> u32 {
    match c {
        BranchCond::Eq => 0b000,
        BranchCond::Ne => 0b001,
        BranchCond::Lt => 0b100,
        BranchCond::Ge => 0b101,
        BranchCond::Ltu => 0b110,
        BranchCond::Geu => 0b111,
    }
}

fn alu_funct(op: AluOp) -> (u32, u32) {
    // (funct3, funct7)
    match op {
        AluOp::Add => (0b000, 0b0000000),
        AluOp::Sub => (0b000, 0b0100000),
        AluOp::Sll => (0b001, 0b0000000),
        AluOp::Slt => (0b010, 0b0000000),
        AluOp::Sltu => (0b011, 0b0000000),
        AluOp::Xor => (0b100, 0b0000000),
        AluOp::Srl => (0b101, 0b0000000),
        AluOp::Sra => (0b101, 0b0100000),
        AluOp::Or => (0b110, 0b0000000),
        AluOp::And => (0b111, 0b0000000),
    }
}

fn muldiv_funct3(op: MulDivOp) -> u32 {
    match op {
        MulDivOp::Mul => 0b000,
        MulDivOp::Mulh => 0b001,
        MulDivOp::Mulhsu => 0b010,
        MulDivOp::Mulhu => 0b011,
        MulDivOp::Div => 0b100,
        MulDivOp::Divu => 0b101,
        MulDivOp::Rem => 0b110,
        MulDivOp::Remu => 0b111,
    }
}

fn amo_funct5(op: AmoOp) -> u32 {
    match op {
        AmoOp::Add => 0b00000,
        AmoOp::Swap => 0b00001,
        AmoOp::Xor => 0b00100,
        AmoOp::Or => 0b01000,
        AmoOp::And => 0b01100,
        AmoOp::Min => 0b10000,
        AmoOp::Max => 0b10100,
        AmoOp::Minu => 0b11000,
        AmoOp::Maxu => 0b11100,
    }
}

fn fp_fmt_bits(fmt: FpFmt) -> u32 {
    match fmt {
        FpFmt::S => 0,
        FpFmt::D => 1,
    }
}

pub(crate) fn simd_op_index(op: SimdOp) -> u32 {
    match op {
        SimdOp::Add => 0,
        SimdOp::Sub => 1,
        SimdOp::Avg => 2,
        SimdOp::Avgu => 3,
        SimdOp::Min => 4,
        SimdOp::Minu => 5,
        SimdOp::Max => 6,
        SimdOp::Maxu => 7,
        SimdOp::Srl => 8,
        SimdOp::Sra => 9,
        SimdOp::And => 10,
        SimdOp::Or => 11,
        SimdOp::Xor => 12,
        SimdOp::Abs => 13,
        SimdOp::Dotup => 14,
        SimdOp::Dotusp => 15,
        SimdOp::Dotsp => 16,
        SimdOp::Sdotup => 17,
        SimdOp::Sdotusp => 18,
        SimdOp::Sdotsp => 19,
        SimdOp::Extract => 20,
        SimdOp::Insert => 21,
        SimdOp::Shuffle => 22,
    }
}

pub(crate) fn simd_fp_op_index(op: SimdFpOp) -> u32 {
    match op {
        SimdFpOp::Add => 0,
        SimdFpOp::Sub => 1,
        SimdFpOp::Mul => 2,
        SimdFpOp::Mac => 3,
        SimdFpOp::Min => 4,
        SimdFpOp::Max => 5,
        SimdFpOp::DotpexS => 6,
    }
}

pub(crate) fn pulp_alu_index(op: PulpAluOp) -> u32 {
    match op {
        PulpAluOp::Min => 0,
        PulpAluOp::Max => 1,
        PulpAluOp::Minu => 2,
        PulpAluOp::Maxu => 3,
        PulpAluOp::Abs => 4,
        PulpAluOp::Exths => 5,
        PulpAluOp::Exthz => 6,
        PulpAluOp::Extbs => 7,
        PulpAluOp::Extbz => 8,
        PulpAluOp::Clip => 9,
        PulpAluOp::Cnt => 10,
        PulpAluOp::Ff1 => 11,
        PulpAluOp::Fl1 => 12,
        PulpAluOp::Ror => 13,
    }
}

/// Encodes a decoded instruction into its 32-bit word.
///
/// # Errors
///
/// Returns [`RvError::Encode`] when an operand does not fit its field
/// (immediate out of range, odd branch offset…).
///
/// # Example
///
/// ```
/// use hulkv_rv::inst::{AluOp, Inst, Reg};
///
/// // addi a0, a0, 1 == 0x00150513
/// let w = hulkv_rv::encode(&Inst::OpImm {
///     op: AluOp::Add,
///     rd: Reg::A0,
///     rs1: Reg::A0,
///     imm: 1,
/// })?;
/// assert_eq!(w, 0x0015_0513);
/// # Ok::<(), hulkv_rv::RvError>(())
/// ```
pub fn encode(inst: &Inst) -> Result<u32, RvError> {
    let r = |reg: Reg| reg.index() as u32;
    let fr = |reg: FReg| reg.0 as u32;
    match *inst {
        Inst::Lui { rd, imm } => u_type(OP_LUI, r(rd), imm),
        Inst::Auipc { rd, imm } => u_type(OP_AUIPC, r(rd), imm),
        Inst::Jal { rd, offset } => j_type(OP_JAL, r(rd), offset),
        Inst::Jalr { rd, rs1, offset } => i_type(OP_JALR, r(rd), 0, r(rs1), offset),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => b_type(OP_BRANCH, branch_funct3(cond), r(rs1), r(rs2), offset),
        Inst::Load {
            width,
            rd,
            rs1,
            offset,
        } => i_type(OP_LOAD, r(rd), load_funct3(width), r(rs1), offset),
        Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        } => s_type(OP_STORE, store_funct3(width), r(rs1), r(rs2), offset),
        Inst::OpImm { op, rd, rs1, imm } => {
            let (f3, f7) = alu_funct(op);
            match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    if !(0..64).contains(&imm) {
                        return Err(RvError::Encode(format!("shift amount {imm} out of range")));
                    }
                    Ok(r_type(
                        OP_IMM,
                        r(rd),
                        f3,
                        r(rs1),
                        (imm as u32) & 0x1F,
                        f7 | ((imm as u32 >> 5) & 1),
                    ))
                }
                AluOp::Sub => Err(RvError::Encode("subi does not exist; use addi".into())),
                _ => i_type(OP_IMM, r(rd), f3, r(rs1), imm),
            }
        }
        Inst::OpImm32 { op, rd, rs1, imm } => {
            let (f3, f7) = alu_funct(op);
            match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    if !(0..32).contains(&imm) {
                        return Err(RvError::Encode(format!("shift amount {imm} out of range")));
                    }
                    Ok(r_type(OP_IMM_32, r(rd), f3, r(rs1), imm as u32, f7))
                }
                AluOp::Sub => Err(RvError::Encode("subiw does not exist".into())),
                _ => i_type(OP_IMM_32, r(rd), f3, r(rs1), imm),
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (f3, f7) = alu_funct(op);
            Ok(r_type(OP_OP, r(rd), f3, r(rs1), r(rs2), f7))
        }
        Inst::Op32 { op, rd, rs1, rs2 } => {
            let (f3, f7) = alu_funct(op);
            Ok(r_type(OP_OP_32, r(rd), f3, r(rs1), r(rs2), f7))
        }
        Inst::MulDiv { op, rd, rs1, rs2 } => Ok(r_type(
            OP_OP,
            r(rd),
            muldiv_funct3(op),
            r(rs1),
            r(rs2),
            0b0000001,
        )),
        Inst::MulDiv32 { op, rd, rs1, rs2 } => Ok(r_type(
            OP_OP_32,
            r(rd),
            muldiv_funct3(op),
            r(rs1),
            r(rs2),
            0b0000001,
        )),
        Inst::LoadReserved { double, rd, rs1 } => {
            let f3 = if double { 0b011 } else { 0b010 };
            Ok(r_type(OP_AMO, r(rd), f3, r(rs1), 0, 0b00010 << 2))
        }
        Inst::StoreConditional {
            double,
            rd,
            rs1,
            rs2,
        } => {
            let f3 = if double { 0b011 } else { 0b010 };
            Ok(r_type(OP_AMO, r(rd), f3, r(rs1), r(rs2), 0b00011 << 2))
        }
        Inst::Amo {
            op,
            double,
            rd,
            rs1,
            rs2,
        } => {
            let f3 = if double { 0b011 } else { 0b010 };
            Ok(r_type(
                OP_AMO,
                r(rd),
                f3,
                r(rs1),
                r(rs2),
                amo_funct5(op) << 2,
            ))
        }
        Inst::Fence => Ok(OP_MISC_MEM),
        Inst::FenceI => Ok(OP_MISC_MEM | (0b001 << 12)),
        Inst::Ecall => Ok(0x0000_0073),
        Inst::Ebreak => Ok(0x0010_0073),
        Inst::Mret => Ok(0x3020_0073),
        Inst::Sret => Ok(0x1020_0073),
        Inst::Wfi => Ok(0x1050_0073),
        Inst::Csr { op, rd, csr, src } => {
            let base = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            let (f3, field) = match src {
                CsrSrc::Reg(rs1) => (base, r(rs1)),
                CsrSrc::Imm(v) => {
                    if v >= 32 {
                        return Err(RvError::Encode(format!("CSR immediate {v} out of range")));
                    }
                    (base | 0b100, v as u32)
                }
            };
            Ok(((csr as u32) << 20) | (field << 15) | (f3 << 12) | (r(rd) << 7) | OP_SYSTEM)
        }

        // --- F/D ---
        Inst::FpLoad {
            fmt,
            rd,
            rs1,
            offset,
        } => {
            let f3 = match fmt {
                FpFmt::S => 0b010,
                FpFmt::D => 0b011,
            };
            i_type(OP_LOAD_FP, fr(rd), f3, r(rs1), offset)
        }
        Inst::FpStore {
            fmt,
            rs2,
            rs1,
            offset,
        } => {
            let f3 = match fmt {
                FpFmt::S => 0b010,
                FpFmt::D => 0b011,
            };
            s_type(OP_STORE_FP, f3, r(rs1), fr(rs2), offset)
        }
        Inst::FpOp3 {
            fmt,
            op,
            rd,
            rs1,
            rs2,
        } => {
            let fb = fp_fmt_bits(fmt);
            let (f7, f3, rs2v) = match op {
                FpOp::Add => (fb, 0b000, fr(rs2)),
                FpOp::Sub => (0b0000100 | fb, 0b000, fr(rs2)),
                FpOp::Mul => (0b0001000 | fb, 0b000, fr(rs2)),
                FpOp::Div => (0b0001100 | fb, 0b000, fr(rs2)),
                FpOp::Sqrt => (0b0101100 | fb, 0b000, 0),
                FpOp::SgnJ => (0b0010000 | fb, 0b000, fr(rs2)),
                FpOp::SgnJn => (0b0010000 | fb, 0b001, fr(rs2)),
                FpOp::SgnJx => (0b0010000 | fb, 0b010, fr(rs2)),
                FpOp::Min => (0b0010100 | fb, 0b000, fr(rs2)),
                FpOp::Max => (0b0010100 | fb, 0b001, fr(rs2)),
            };
            Ok(r_type(OP_FP, fr(rd), f3, fr(rs1), rs2v, f7))
        }
        Inst::FpFma {
            fmt,
            rd,
            rs1,
            rs2,
            rs3,
            negate_product,
            negate_addend,
        } => {
            let opcode = match (negate_product, negate_addend) {
                (false, false) => OP_MADD,
                (false, true) => OP_MSUB,
                (true, false) => OP_NMSUB,
                (true, true) => OP_NMADD,
            };
            let fmt2 = fp_fmt_bits(fmt);
            Ok(((fr(rs3)) << 27)
                | (fmt2 << 25)
                | (fr(rs2) << 20)
                | (fr(rs1) << 15)
                | (fr(rd) << 7)
                | opcode)
        }
        Inst::FpCmp {
            fmt,
            cmp,
            rd,
            rs1,
            rs2,
        } => {
            let f3 = match cmp {
                FpCmp::Le => 0b000,
                FpCmp::Lt => 0b001,
                FpCmp::Eq => 0b010,
            };
            Ok(r_type(
                OP_FP,
                r(rd),
                f3,
                fr(rs1),
                fr(rs2),
                0b1010000 | fp_fmt_bits(fmt),
            ))
        }
        Inst::FpToInt {
            fmt,
            rd,
            rs1,
            signed,
            wide,
        } => {
            let rs2 = match (wide, signed) {
                (false, true) => 0b00000,
                (false, false) => 0b00001,
                (true, true) => 0b00010,
                (true, false) => 0b00011,
            };
            Ok(r_type(
                OP_FP,
                r(rd),
                0b001,
                fr(rs1),
                rs2,
                0b1100000 | fp_fmt_bits(fmt),
            ))
        }
        Inst::IntToFp {
            fmt,
            rd,
            rs1,
            signed,
            wide,
        } => {
            let rs2 = match (wide, signed) {
                (false, true) => 0b00000,
                (false, false) => 0b00001,
                (true, true) => 0b00010,
                (true, false) => 0b00011,
            };
            Ok(r_type(
                OP_FP,
                fr(rd),
                0b000,
                r(rs1),
                rs2,
                0b1101000 | fp_fmt_bits(fmt),
            ))
        }
        Inst::FpCvt { to, rd, rs1 } => {
            // fcvt.s.d: funct7 0100000 rs2=1; fcvt.d.s: 0100001 rs2=0.
            let (f7, rs2) = match to {
                FpFmt::S => (0b0100000, 1),
                FpFmt::D => (0b0100001, 0),
            };
            Ok(r_type(OP_FP, fr(rd), 0b000, fr(rs1), rs2, f7))
        }
        Inst::FpMvToInt { fmt, rd, rs1 } => Ok(r_type(
            OP_FP,
            r(rd),
            0b000,
            fr(rs1),
            0,
            0b1110000 | fp_fmt_bits(fmt),
        )),
        Inst::FpMvFromInt { fmt, rd, rs1 } => Ok(r_type(
            OP_FP,
            fr(rd),
            0b000,
            r(rs1),
            0,
            0b1111000 | fp_fmt_bits(fmt),
        )),

        // --- Xpulp ---
        Inst::LoadPost {
            width,
            rd,
            rs1,
            offset,
        } => {
            if matches!(width, LoadWidth::D | LoadWidth::Wu) {
                return Err(RvError::Encode("post-increment loads are RV32-only".into()));
            }
            i_type(OP_CUSTOM0, r(rd), load_funct3(width), r(rs1), offset)
        }
        Inst::StorePost {
            width,
            rs2,
            rs1,
            offset,
        } => {
            if matches!(width, StoreWidth::D) {
                return Err(RvError::Encode(
                    "post-increment stores are RV32-only".into(),
                ));
            }
            s_type(OP_CUSTOM1, store_funct3(width), r(rs1), r(rs2), offset)
        }
        Inst::Mac {
            rd,
            rs1,
            rs2,
            subtract,
        } => {
            let f7 = if subtract { 1 } else { 0 };
            Ok(r_type(OP_CUSTOM1, r(rd), 0b111, r(rs1), r(rs2), f7))
        }
        Inst::PulpAlu { op, rd, rs1, rs2 } => Ok(r_type(
            OP_CUSTOM3,
            r(rd),
            0b100,
            r(rs1),
            r(rs2),
            pulp_alu_index(op),
        )),
        Inst::HwLoop {
            op,
            loop_idx,
            value,
            rs1,
        } => {
            if loop_idx > 1 {
                return Err(RvError::Encode(format!(
                    "hardware loop index {loop_idx} > 1"
                )));
            }
            let rd = loop_idx as u32;
            match op {
                HwLoopOp::Starti => i_type(OP_CUSTOM3, rd, 0b000, 0, value),
                HwLoopOp::Endi => i_type(OP_CUSTOM3, rd, 0b001, 0, value),
                HwLoopOp::Count => Ok(r_type(OP_CUSTOM3, rd, 0b010, r(rs1), 0, 0)),
                HwLoopOp::Counti => {
                    if !(0..4096).contains(&value) {
                        return Err(RvError::Encode(format!(
                            "hardware loop count {value} does not fit in 12 bits"
                        )));
                    }
                    Ok((((value as u32) & 0xFFF) << 20) | (0b011 << 12) | (rd << 7) | OP_CUSTOM3)
                }
            }
        }
        Inst::Simd {
            op,
            fmt,
            rd,
            rs1,
            rs2,
            scalar_rs2,
        } => {
            let f3 = match (fmt, scalar_rs2) {
                (SimdFmt::B, false) => 0b000,
                (SimdFmt::H, false) => 0b001,
                (SimdFmt::B, true) => 0b010,
                (SimdFmt::H, true) => 0b011,
            };
            Ok(r_type(
                OP_CUSTOM2,
                r(rd),
                f3,
                r(rs1),
                r(rs2),
                simd_op_index(op),
            ))
        }
        Inst::SimdFp { op, rd, rs1, rs2 } => Ok(r_type(
            OP_CUSTOM2,
            r(rd),
            0b100,
            r(rs1),
            r(rs2),
            simd_fp_op_index(op),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_golden_words() {
        // Cross-checked against riscv-gnu binutils output.
        let cases: Vec<(Inst, u32)> = vec![
            (
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    imm: 1,
                },
                0x0015_0513,
            ),
            (
                Inst::Lui {
                    rd: Reg::T0,
                    imm: 0x12345,
                },
                0x1234_52B7,
            ),
            (
                Inst::Jal {
                    rd: Reg::Ra,
                    offset: 8,
                },
                0x0080_00EF,
            ),
            (
                Inst::Load {
                    width: LoadWidth::W,
                    rd: Reg::A5,
                    rs1: Reg::Sp,
                    offset: 12,
                },
                0x00C1_2783,
            ),
            (
                Inst::Store {
                    width: StoreWidth::D,
                    rs2: Reg::A0,
                    rs1: Reg::Sp,
                    offset: 0,
                },
                0x00A1_3023,
            ),
            (
                Inst::Op {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                0x00C5_8533,
            ),
            (
                Inst::Op {
                    op: AluOp::Sub,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                0x40C5_8533,
            ),
            (
                Inst::MulDiv {
                    op: MulDivOp::Mul,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                0x02C5_8533,
            ),
            (Inst::Ecall, 0x0000_0073),
            (Inst::Ebreak, 0x0010_0073),
        ];
        for (inst, expect) in cases {
            assert_eq!(encode(&inst).unwrap(), expect, "{inst:?}");
        }
    }

    #[test]
    fn branch_offset_encoding() {
        // beq a0, a1, +16 → 00b50863
        let w = encode(&Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            offset: 16,
        })
        .unwrap();
        assert_eq!(w, 0x00B5_0863);
        // Negative offset.
        let w = encode(&Inst::Branch {
            cond: BranchCond::Ne,
            rs1: Reg::T0,
            rs2: Reg::Zero,
            offset: -4,
        })
        .unwrap();
        assert_eq!(w, 0xFE02_9EE3);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(encode(&Inst::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 5000,
        })
        .is_err());
        assert!(encode(&Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A0,
            offset: 3,
        })
        .is_err());
        assert!(encode(&Inst::HwLoop {
            op: HwLoopOp::Counti,
            loop_idx: 2,
            value: 4,
            rs1: Reg::Zero,
        })
        .is_err());
    }

    #[test]
    fn shift_immediates() {
        // slli a0, a0, 33 (RV64) has funct7 bit set for shamt[5].
        let w = encode(&Inst::OpImm {
            op: AluOp::Sll,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 33,
        })
        .unwrap();
        assert_eq!(w, 0x0215_1513);
        assert!(encode(&Inst::OpImm {
            op: AluOp::Srl,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 64,
        })
        .is_err());
    }

    #[test]
    fn custom_opcodes_in_custom_space() {
        let w = encode(&Inst::Mac {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            subtract: false,
        })
        .unwrap();
        assert_eq!(w & 0x7F, 0x2B);
        let w = encode(&Inst::Simd {
            op: SimdOp::Sdotsp,
            fmt: SimdFmt::B,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            scalar_rs2: false,
        })
        .unwrap();
        assert_eq!(w & 0x7F, 0x5B);
        let w = encode(&Inst::HwLoop {
            op: HwLoopOp::Counti,
            loop_idx: 0,
            value: 100,
            rs1: Reg::Zero,
        })
        .unwrap();
        assert_eq!(w & 0x7F, 0x7B);
    }
}
