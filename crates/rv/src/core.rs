//! The decode–execute interpreter shared by the CVA6 host model and the
//! PMCA cluster cores.

use crate::csr::{addr, CsrFile, PrivMode, TrapCause};
use crate::decode::decode;
use crate::fp16::{pack2, unpack2};
use crate::inst::*;
use crate::mmu::{self, AccessKind, WalkFault};
use crate::timing::CostModel;
use hulkv_sim::{Cycles, PcProfile, SharedTracer, SimError, Stats, TraceEvent, Track};

/// The memory interface a core executes against.
///
/// Latencies are *stall* cycles: the cycles the access adds beyond the one
/// cycle a pipelined L1/SPM hit hides. A scratchpad or cache hit therefore
/// reports `Cycles::ZERO` and the core sustains CPI ≈ 1.
pub trait CoreBus {
    /// Fetches the 32-bit instruction word at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying memory-system error for unmapped or otherwise
    /// failing fetches.
    fn fetch(&mut self, addr: u64) -> Result<(u32, Cycles), SimError>;

    /// Reads `buf.len()` bytes at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying memory-system error.
    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<Cycles, SimError>;

    /// Writes `data` at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying memory-system error.
    fn store(&mut self, addr: u64, data: &[u8]) -> Result<Cycles, SimError>;

    /// Revalidates a decoded-instruction-cache hit: returns `true` iff a
    /// 4-byte fetch at `addr` would be a zero-stall hit right now, *and*
    /// performs exactly the side effects that hit would have (statistics,
    /// trace events, LRU recency). Returning `false` must leave the memory
    /// system untouched; the core then issues the real [`CoreBus::fetch`].
    ///
    /// The default (`false`) disables decoded-instruction replay on buses
    /// that do not opt in.
    fn fetch_touch(&mut self, _addr: u64) -> bool {
        false
    }

    /// Content-stability epoch for fetches: must change whenever the bytes
    /// a resident fetch returns may have changed (cache refill or flush).
    /// A decoded entry recorded under one epoch is only replayed while the
    /// epoch is unchanged. Buses with immutable fetch timing return a
    /// constant.
    fn fetch_epoch(&self) -> u64 {
        0
    }

    /// Whether every access on this bus is zero-latency and free of
    /// history-dependent state (no LRU, no occupancy counters). Only on
    /// such buses may the core skip a Sv39 page-table walk via its fetch
    /// micro-TLB: on cached buses the walk's PTE loads move L1D state, so
    /// the walk must really execute to keep timing bit-exact.
    fn timing_stateless(&self) -> bool {
        false
    }

    /// Running total of instruction-cache misses this bus has served —
    /// the `IcacheMiss` HPM event source. Buses without an instruction
    /// cache report zero, so the matching counter simply reads zero.
    fn hpm_icache_misses(&self) -> u64 {
        0
    }

    /// Running total of data-cache misses — the `DcacheMiss` HPM event
    /// source. Zero on buses without a data cache.
    fn hpm_dcache_misses(&self) -> u64 {
        0
    }

    /// Running total of interconnect conflict stall cycles (TCDM banking
    /// conflicts on the cluster) — the `ConflictStall` HPM event source.
    fn hpm_conflict_stalls(&self) -> u64 {
        0
    }
}

/// A flat zero-wait-state memory for tests, examples and kernel golden runs.
///
/// # Example
///
/// ```
/// use hulkv_rv::{CoreBus, FlatBus};
///
/// let mut bus = FlatBus::new(1024);
/// bus.write_bytes(0, &[0x13, 0x00, 0x00, 0x00]); // nop
/// let (word, _) = bus.fetch(0)?;
/// assert_eq!(word, 0x13);
/// # Ok::<(), hulkv_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlatBus {
    mem: Vec<u8>,
}

impl FlatBus {
    /// Creates a flat memory of `size` bytes.
    pub fn new(size: usize) -> Self {
        FlatBus { mem: vec![0; size] }
    }

    /// Copies instruction words to `addr` (little-endian).
    pub fn load_words(&mut self, addr: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let o = addr as usize + i * 4;
            self.mem[o..o + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Backdoor byte write.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let o = addr as usize;
        self.mem[o..o + data.len()].copy_from_slice(data);
    }

    /// Backdoor byte read.
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    /// Backdoor little-endian `u32` read.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr, 4).try_into().expect("4 bytes"))
    }

    /// Backdoor little-endian `u64` read.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr, 8).try_into().expect("8 bytes"))
    }

    /// FNV-1a digest of the full memory image (no timing side effects).
    /// The differential co-simulation driver compares this between a
    /// fast-path and a reference run at every checkpoint.
    pub fn content_digest(&self) -> u64 {
        hulkv_sim::Fnv64::new().write(&self.mem).finish()
    }

    /// The memory size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.mem.len()
    }

    /// Serializes the memory image (page-compact, zero pages skipped).
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        hulkv_sim::Json::obj([("mem", snap.push_pages(&self.mem))])
    }

    /// Restores an image written by [`FlatBus::snapshot_into`] into a bus
    /// of the same size.
    ///
    /// # Errors
    ///
    /// On size mismatch or a malformed section.
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        snap.restore_pages(hulkv_sim::snap::get(j, "mem")?, &mut self.mem)
    }

    fn check(&self, addr: u64, len: usize) -> Result<usize, SimError> {
        let end = addr as usize + len;
        if end > self.mem.len() {
            return Err(SimError::OutOfRange {
                what: "flat bus access",
                value: end as u64,
                limit: self.mem.len() as u64,
            });
        }
        Ok(addr as usize)
    }
}

impl CoreBus for FlatBus {
    #[inline]
    fn fetch(&mut self, addr: u64) -> Result<(u32, Cycles), SimError> {
        let o = self.check(addr, 4)?;
        let w = u32::from_le_bytes(self.mem[o..o + 4].try_into().expect("4 bytes"));
        Ok((w, Cycles::ZERO))
    }

    #[inline]
    fn load(&mut self, addr: u64, buf: &mut [u8]) -> Result<Cycles, SimError> {
        let o = self.check(addr, buf.len())?;
        buf.copy_from_slice(&self.mem[o..o + buf.len()]);
        Ok(Cycles::ZERO)
    }

    #[inline]
    fn store(&mut self, addr: u64, data: &[u8]) -> Result<Cycles, SimError> {
        let o = self.check(addr, data.len())?;
        self.mem[o..o + data.len()].copy_from_slice(data);
        Ok(Cycles::ZERO)
    }

    #[inline]
    fn fetch_touch(&mut self, addr: u64) -> bool {
        // A flat memory has no per-access state; a fetch "hits" whenever
        // it is in bounds, with no side effects to mirror.
        addr as usize + 4 <= self.mem.len()
    }

    #[inline]
    fn timing_stateless(&self) -> bool {
        true
    }
}

/// The result of one [`Core::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Cycles the instruction occupied the core.
    pub cycles: Cycles,
    /// Whether the core hit `ebreak` (the model's halt convention).
    pub halted: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct HwLoopState {
    start: u64,
    end: u64,
    count: u64,
}

/// Entries in the per-core decoded-instruction cache, indexed by
/// `(vaddr >> 1) & (DECODE_CACHE_ENTRIES - 1)` — 2-byte granularity so
/// adjacent RVC parcels get distinct slots. Indexing by *virtual* PC lets
/// the replay path start the entry load before the µTLB resolves the
/// physical address; the entry is still *tagged* by physical address, so
/// a remapped page can never replay another page's decode.
const DECODE_CACHE_ENTRIES: usize = 4096;

/// One slot of the decoded-instruction cache. Entries are installed only
/// for fetches whose whole fetch path (translation walk + instruction
/// fetch) added **zero** stall cycles, so a replay charges zero extra
/// cycles — exactly what the slow path would charge for the same
/// steady-state hit.
#[derive(Debug, Clone, Copy)]
struct DecodedEntry {
    /// Virtual PC the entry was installed for (the tag; distinct VAs can
    /// share a slot, so the full address must match).
    va: u64,
    /// Physical address of the fetch, replayed into
    /// [`CoreBus::fetch_touch`]. Trustworthy whenever `version`/`mode`
    /// match: the translation inputs (`satp`, privilege) are covered by
    /// the stamp.
    pa: u64,
    /// Core-side invalidation generation; stale when != `Core::decode_gen`.
    gen: u64,
    /// [`CsrFile::version`] at install time. Any CSR write bumps it, so a
    /// matching stamp proves both "no interrupt became takeable" and
    /// "fetch translation unchanged" without re-deriving either.
    version: u64,
    /// [`CoreBus::fetch_epoch`] at install time; stale when the bus has
    /// refilled or flushed since.
    epoch: u64,
    /// Raw instruction word (for the trace ring and Retire events).
    word: u32,
    /// Parcel length in bytes: 2 (RVC) or 4.
    ilen: u8,
    /// [`CostModel::cost`] of `inst`: a pure function of the decoded
    /// instruction, cached so a replay skips the cost-model match.
    cost: u8,
    /// Privilege mode at install time (part of the stamp).
    mode: PrivMode,
    /// Whether the fetch translation went through Sv39. Paged entries
    /// only replay on timing-stateless buses (the walk has memory-system
    /// side effects on cached ones) and count as µTLB hits.
    paged: bool,
    /// The pre-decoded instruction.
    inst: Inst,
}

impl DecodedEntry {
    /// Filler for empty slots; `gen: 0` never matches (generations start
    /// at 1), so the other fields are never consulted.
    const DEAD: DecodedEntry = DecodedEntry {
        va: 0,
        pa: 0,
        gen: 0,
        version: 0,
        epoch: 0,
        word: 0,
        ilen: 0,
        cost: 0,
        mode: PrivMode::Machine,
        paged: false,
        inst: Inst::Ebreak,
    };
}

/// Hot-path activity counters, kept as plain fields (the `Stats` registry
/// costs a B-tree lookup plus a key allocation per bump) and materialized
/// into a [`Stats`] by [`Core::stats`].
#[derive(Debug, Clone, Copy, Default)]
struct CoreCounters {
    arith_ops: u64,
    loads: u64,
    stores: u64,
    taken_branches: u64,
    mem_stall_cycles: u64,
    simd_insts: u64,
    fp_insts: u64,
    interrupts: u64,
    traps: u64,
    hwloop_iters: u64,
    decode_hits: u64,
    decode_misses: u64,
    decode_invalidations: u64,
    itlb_hits: u64,
    itlb_misses: u64,
}

/// The HPM event matrix: what a `mhpmevent*` selector can count. The
/// numeric values are the architectural selector encoding guest code
/// writes (mirroring how CVA6 numbers its HPM events); unknown selectors
/// count nothing, like the RTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum HpmEvent {
    /// Selector 0: counter disabled (reads as written value only).
    None = 0,
    /// Instruction-cache misses (bus-observed).
    IcacheMiss = 1,
    /// Data-cache misses (bus-observed).
    DcacheMiss = 2,
    /// Fetch µTLB / iTLB misses.
    ItlbMiss = 3,
    /// Decoded-instruction-cache hits (simulator fast path).
    DecodeHit = 4,
    /// Decoded-instruction-cache misses.
    DecodeMiss = 5,
    /// Load/store stall cycles (memory time beyond the pipelined cycle).
    MemStall = 6,
    /// Taken branches.
    TakenBranch = 7,
    /// Synchronous traps taken (exceptions, not interrupts).
    Trap = 8,
    /// Loads retired.
    Load = 9,
    /// Stores retired.
    Store = 10,
    /// Interrupts taken.
    Interrupt = 11,
    /// Xpulp hardware-loop back-edges taken.
    HwLoopIter = 12,
    /// TCDM banking-conflict stall cycles (cluster cores).
    ConflictStall = 13,
}

impl HpmEvent {
    /// Decodes an event-selector value (unknown selectors count nothing).
    pub fn from_selector(sel: u64) -> HpmEvent {
        match sel {
            1 => HpmEvent::IcacheMiss,
            2 => HpmEvent::DcacheMiss,
            3 => HpmEvent::ItlbMiss,
            4 => HpmEvent::DecodeHit,
            5 => HpmEvent::DecodeMiss,
            6 => HpmEvent::MemStall,
            7 => HpmEvent::TakenBranch,
            8 => HpmEvent::Trap,
            9 => HpmEvent::Load,
            10 => HpmEvent::Store,
            11 => HpmEvent::Interrupt,
            12 => HpmEvent::HwLoopIter,
            13 => HpmEvent::ConflictStall,
            _ => HpmEvent::None,
        }
    }
}

/// Per-counter HPM bookkeeping. Counters are *virtual*: a read returns
/// `running_event_total - offset`, so counting adds zero work to the
/// interpreter hot loop — the existing activity counters and bus
/// statistics are the running totals, and programming or writing a
/// counter only re-anchors its offset. `mcountinhibit` latches the live
/// value into `frozen`; clearing the inhibit bit re-anchors the offset so
/// the counter resumes from the latched value.
#[derive(Debug, Clone, Copy, Default)]
struct HpmCounter {
    /// Subtracted from the selected event's running total on reads.
    offset: u64,
    /// Value latched while the counter is inhibited.
    frozen: u64,
}

/// 1-entry fetch micro-TLB: while fetches stay on one virtual page and the
/// CSR file and privilege mode are unchanged, the translation is linear in
/// the page offset (true for 4 KiB pages and superpages alike).
#[derive(Debug, Clone, Copy)]
struct FetchTlb {
    valid: bool,
    /// Virtual page number (`vaddr >> 12`).
    page: u64,
    /// Physical page base (`pa & !0xFFF`).
    base: u64,
    /// CSR-file version the walk ran under.
    version: u64,
    /// Privilege mode the walk ran under.
    mode: PrivMode,
}

/// Cached `satp`/privilege view so the hot loop revalidates the MMU mode
/// with one integer compare instead of a CSR-file read per instruction.
#[derive(Debug, Clone, Copy)]
struct MmuCache {
    version: u64,
    mode: PrivMode,
    satp: u64,
    active: bool,
}

/// Cached result of [`Core::takeable_interrupt`], keyed by CSR version and
/// privilege mode (its only inputs).
#[derive(Debug, Clone, Copy)]
struct IrqCache {
    version: u64,
    mode: PrivMode,
    takeable: Option<u64>,
}

/// One simulated RISC-V hart.
///
/// The same engine runs both HULK-V machines; construction selects the ISA
/// surface and the cost model:
///
/// * [`Core::cva6`] — RV64 IMAFD+Zicsr, M/S/U privileges, Sv39.
/// * [`Core::ri5cy`] — RV32 IMF + Xpulp, machine mode only.
///
/// `ebreak` halts the core (the bare-metal runtime's exit convention);
/// `ecall` and faults trap through `mtvec` when one is installed and
/// otherwise abort the run with an error.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Core {
    xlen: Xlen,
    xpulp: bool,
    cost: CostModel,
    pc: u64,
    x: [u64; 32],
    f: [u64; 32],
    csrs: CsrFile,
    priv_mode: PrivMode,
    hwloops: [HwLoopState; 2],
    reservation: Option<u64>,
    cycles: Cycles,
    instret: u64,
    halted: bool,
    stats_name: String,
    counters: CoreCounters,
    hpm: [HpmCounter; addr::HPM_COUNTERS as usize],
    decode_cache: Option<Box<[DecodedEntry]>>,
    decode_enabled: bool,
    decode_gen: u64,
    /// Coarse dirty filter: the PA watermarks `[code_lo, code_hi)` cover
    /// every installed entry; a store overlapping the range invalidates.
    code_lo: u64,
    code_hi: u64,
    itlb: FetchTlb,
    mmu_cache: MmuCache,
    irq_cache: IrqCache,
    trace: Option<std::collections::VecDeque<TraceEntry>>,
    trace_capacity: usize,
    tracer: Option<SharedTracer>,
    track: Track,
    trace_base: u64,
    profile: Option<PcProfile>,
    /// True when any of `trace`/`tracer`/`profile` is attached: one flag
    /// the retire path checks instead of three `Option`s.
    observe: bool,
}

/// One retired instruction in the execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Program counter of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
}

impl Core {
    /// Creates a core with an explicit ISA width and cost model (Xpulp off).
    pub fn new(xlen: Xlen, cost: CostModel) -> Self {
        Core {
            xlen,
            xpulp: false,
            cost,
            pc: 0,
            x: [0; 32],
            f: [0; 32],
            csrs: CsrFile::new(0),
            priv_mode: PrivMode::Machine,
            hwloops: [HwLoopState::default(); 2],
            reservation: None,
            cycles: Cycles::ZERO,
            instret: 0,
            halted: false,
            stats_name: "core".into(),
            counters: CoreCounters::default(),
            hpm: [HpmCounter::default(); addr::HPM_COUNTERS as usize],
            decode_cache: None,
            decode_enabled: true,
            decode_gen: 1,
            code_lo: u64::MAX,
            code_hi: 0,
            itlb: FetchTlb {
                valid: false,
                page: 0,
                base: 0,
                version: 0,
                mode: PrivMode::Machine,
            },
            mmu_cache: MmuCache {
                version: 0,
                mode: PrivMode::Machine,
                satp: 0,
                active: false,
            },
            irq_cache: IrqCache {
                version: 0,
                mode: PrivMode::Machine,
                takeable: None,
            },
            trace: None,
            trace_capacity: 0,
            tracer: None,
            track: Track::HostHart,
            trace_base: 0,
            profile: None,
            observe: false,
        }
    }

    /// The CVA6 host configuration.
    pub fn cva6() -> Self {
        Core::new(Xlen::Rv64, CostModel::cva6())
    }

    /// A PMCA cluster core with hart id `hartid` (RV32 + Xpulp).
    pub fn ri5cy(hartid: u64) -> Self {
        let mut c = Core::new(Xlen::Rv32, CostModel::ri5cy());
        c.xpulp = true;
        c.csrs = CsrFile::new(hartid);
        c.stats_name = format!("core{hartid}");
        c.track = Track::ClusterCore(hartid as u8);
        c
    }

    /// Enables or disables the Xpulp extension surface.
    pub fn set_xpulp(&mut self, enabled: bool) {
        self.xpulp = enabled;
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Sets the program counter (e.g. to an entry point).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.x[r.index() as usize]
    }

    /// Writes an integer register (`zero` stays zero; RV32 masks to 32 bits).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        // Branchless: store, then re-pin x0 to zero. Cheaper on the retire
        // path than branching on `r == zero` and on the XLEN.
        let mask = match self.xlen {
            Xlen::Rv32 => 0xFFFF_FFFF,
            Xlen::Rv64 => u64::MAX,
        };
        self.x[r.index() as usize] = v & mask;
        self.x[0] = 0;
    }

    /// Reads a floating-point register's raw bits.
    pub fn freg(&self, r: FReg) -> u64 {
        self.f[r.0 as usize]
    }

    /// Writes a floating-point register's raw bits.
    pub fn set_freg(&mut self, r: FReg, v: u64) {
        self.f[r.0 as usize] = v;
    }

    /// Total cycles consumed so far.
    pub fn cycles(&self) -> Cycles {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Whether the core has executed `ebreak`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Clears the halt flag (to resume after inspection).
    pub fn resume(&mut self) {
        self.halted = false;
    }

    /// Current privilege mode.
    pub fn priv_mode(&self) -> PrivMode {
        self.priv_mode
    }

    /// Sets the privilege mode (used by loaders that enter S or U mode).
    pub fn set_priv_mode(&mut self, mode: PrivMode) {
        self.priv_mode = mode;
    }

    /// The CSR file.
    pub fn csrs(&self) -> &CsrFile {
        &self.csrs
    }

    /// Mutable CSR access (test and firmware setup).
    pub fn csrs_mut(&mut self) -> &mut CsrFile {
        &mut self.csrs
    }

    /// Activity counters: `instret`, `arith_ops` (GOps-weighted), `loads`,
    /// `stores`, `taken_branches`, `mem_stall_cycles`, plus the
    /// simulator's own fast-path counters (`decode_hits`, `decode_misses`,
    /// `decode_invalidations`, `itlb_hits`, `itlb_misses`).
    ///
    /// The hot loop keeps counters as plain fields (a `Stats` bump costs a
    /// B-tree lookup and a key allocation per instruction); this
    /// materializes them into a registry on demand. Counters that are zero
    /// are omitted, matching the lazily-populated registry the interpreter
    /// previously updated in place — except the decode-cache trio, which
    /// is always present so metrics exports carry the fast-path story even
    /// for all-miss ablation runs.
    pub fn stats(&self) -> Stats {
        let c = &self.counters;
        let mut s = Stats::new(self.stats_name.clone());
        for (k, v) in [
            ("instret", self.instret),
            ("arith_ops", c.arith_ops),
            ("loads", c.loads),
            ("stores", c.stores),
            ("taken_branches", c.taken_branches),
            ("mem_stall_cycles", c.mem_stall_cycles),
            ("simd_insts", c.simd_insts),
            ("fp_insts", c.fp_insts),
            ("interrupts", c.interrupts),
            ("traps", c.traps),
            ("hwloop_iters", c.hwloop_iters),
            ("itlb_hits", c.itlb_hits),
            ("itlb_misses", c.itlb_misses),
        ] {
            if v != 0 {
                s.set(k, v);
            }
        }
        s.set("decode_hits", c.decode_hits);
        s.set("decode_misses", c.decode_misses);
        s.set("decode_invalidations", c.decode_invalidations);
        s
    }

    /// FNV-1a digest of the complete architectural state: PC, privilege
    /// mode, integer and FP register files, the LR/SC reservation, Xpulp
    /// hardware-loop state, the halt flag, and the CSR file (via
    /// [`CsrFile::digest`]). Microarchitectural bookkeeping — decode cache,
    /// µTLB, counters, the CSR mutation version — is deliberately excluded:
    /// the lockstep co-simulation driver compares this digest between a
    /// fast-path and a reference run, which must agree on architecture while
    /// differing freely in simulator internals. Cycle and instret counts
    /// are also excluded; the driver compares those separately so a timing
    /// divergence is reported as such rather than as a state mismatch.
    pub fn state_digest(&self) -> u64 {
        let mut h = hulkv_sim::Fnv64::new();
        h.write_u64(self.pc)
            .write_u64(self.priv_mode as u64)
            .write_u64(u64::from(self.halted));
        for v in self.x.iter().chain(self.f.iter()) {
            h.write_u64(*v);
        }
        h.write_u64(
            self.reservation
                .map_or(u64::MAX, |r| r ^ 0x5555_5555_5555_5555),
        );
        for l in &self.hwloops {
            h.write_u64(l.start).write_u64(l.end).write_u64(l.count);
        }
        h.write_u64(self.csrs.digest());
        h.finish()
    }

    /// Serializes the complete core state: architectural (PC, register
    /// files, CSRs, privilege, hardware loops, LR/SC reservation, halt
    /// flag), timing (cycles, instret), activity counters, the HPM offset
    /// group, and the microarchitectural fast-path state — live
    /// decoded-instruction-cache entries, the fetch µTLB and the
    /// MMU/interrupt revalidation caches.
    ///
    /// The microarchitectural state is serialized *exactly* rather than
    /// invalidated on restore: the `decode_hits`/`decode_misses`/`itlb_*`
    /// counters are part of the core's [`Stats`], so a restore that cleared
    /// the decode cache would make a resumed run's statistics diverge from
    /// the straight-line run it is replaying. Observability attachments
    /// (trace ring, tracer, profiler) are deliberately excluded — they are
    /// host-side instrumentation, not machine state.
    pub fn snapshot_into(&self, snap: &mut hulkv_sim::Snapshot) -> hulkv_sim::Json {
        use hulkv_sim::snap::hex;
        use hulkv_sim::Json;
        let mut regs = Vec::with_capacity(64 * 8);
        for v in self.x.iter().chain(self.f.iter()) {
            regs.extend_from_slice(&v.to_le_bytes());
        }
        let regs = snap.push_blob(&regs);
        let c = &self.counters;
        let counters = Json::obj([
            ("arith_ops", hex(c.arith_ops)),
            ("loads", hex(c.loads)),
            ("stores", hex(c.stores)),
            ("taken_branches", hex(c.taken_branches)),
            ("mem_stall_cycles", hex(c.mem_stall_cycles)),
            ("simd_insts", hex(c.simd_insts)),
            ("fp_insts", hex(c.fp_insts)),
            ("interrupts", hex(c.interrupts)),
            ("traps", hex(c.traps)),
            ("hwloop_iters", hex(c.hwloop_iters)),
            ("decode_hits", hex(c.decode_hits)),
            ("decode_misses", hex(c.decode_misses)),
            ("decode_invalidations", hex(c.decode_invalidations)),
            ("itlb_hits", hex(c.itlb_hits)),
            ("itlb_misses", hex(c.itlb_misses)),
        ]);
        let hpm = Json::Arr(
            self.hpm
                .iter()
                .map(|h| Json::obj([("offset", hex(h.offset)), ("frozen", hex(h.frozen))]))
                .collect(),
        );
        let hwloops = Json::Arr(
            self.hwloops
                .iter()
                .map(|l| {
                    Json::obj([
                        ("start", hex(l.start)),
                        ("end", hex(l.end)),
                        ("count", hex(l.count)),
                    ])
                })
                .collect(),
        );
        // Live decoded entries, packed binary. `inst` is not serialized:
        // it is a pure function of `word` and the core's ISA surface, so
        // restore re-derives it — the snapshot stays ISA-agnostic bytes.
        let mut packed = Vec::new();
        let mut live = 0u64;
        if let Some(cache) = &self.decode_cache {
            for (slot, e) in cache.iter().enumerate() {
                if e.gen != self.decode_gen {
                    continue;
                }
                packed.extend_from_slice(&(slot as u32).to_le_bytes());
                packed.extend_from_slice(&e.va.to_le_bytes());
                packed.extend_from_slice(&e.pa.to_le_bytes());
                packed.extend_from_slice(&e.version.to_le_bytes());
                packed.extend_from_slice(&e.epoch.to_le_bytes());
                packed.extend_from_slice(&e.word.to_le_bytes());
                packed.extend_from_slice(&[e.ilen, e.cost, e.mode.bits() as u8, u8::from(e.paged)]);
                live += 1;
            }
        }
        let decode_entries = snap.push_blob(&packed);
        Json::obj([
            ("pc", hex(self.pc)),
            ("regs", regs),
            ("csrs", self.csrs.snapshot_json()),
            ("priv", hex(self.priv_mode.bits())),
            ("hwloops", hwloops),
            ("reservation", self.reservation.map_or(Json::Null, hex)),
            ("cycles", hex(self.cycles.get())),
            ("instret", hex(self.instret)),
            ("halted", Json::Bool(self.halted)),
            ("counters", counters),
            ("hpm", hpm),
            ("decode_enabled", Json::Bool(self.decode_enabled)),
            ("decode_gen", hex(self.decode_gen)),
            ("code_lo", hex(self.code_lo)),
            ("code_hi", hex(self.code_hi)),
            ("decode_count", hex(live)),
            ("decode_entries", decode_entries),
            (
                "itlb",
                Json::obj([
                    ("valid", Json::Bool(self.itlb.valid)),
                    ("page", hex(self.itlb.page)),
                    ("base", hex(self.itlb.base)),
                    ("version", hex(self.itlb.version)),
                    ("mode", hex(self.itlb.mode.bits())),
                ]),
            ),
            (
                "mmu",
                Json::obj([
                    ("version", hex(self.mmu_cache.version)),
                    ("mode", hex(self.mmu_cache.mode.bits())),
                    ("satp", hex(self.mmu_cache.satp)),
                    ("active", Json::Bool(self.mmu_cache.active)),
                ]),
            ),
            (
                "irq",
                Json::obj([
                    ("version", hex(self.irq_cache.version)),
                    ("mode", hex(self.irq_cache.mode.bits())),
                    ("takeable", self.irq_cache.takeable.map_or(Json::Null, hex)),
                ]),
            ),
        ])
    }

    /// Restores state written by [`Core::snapshot_into`] into a core built
    /// by the same constructor (ISA surface and cost model are not
    /// serialized). After restore, [`Core::state_digest`], timing and every
    /// counter match the snapshotted core exactly.
    ///
    /// # Errors
    ///
    /// On a malformed section, or when a decoded entry's instruction word
    /// no longer decodes under this core's ISA surface (a constructor
    /// mismatch).
    pub fn restore_from(
        &mut self,
        snap: &hulkv_sim::Snapshot,
        j: &hulkv_sim::Json,
    ) -> hulkv_sim::SnapResult<()> {
        use hulkv_sim::snap::{get, get_arr, get_bool, get_u64, unhex, SnapError};
        use hulkv_sim::Json;
        let regs = snap.blob(get(j, "regs")?)?;
        if regs.len() != 64 * 8 {
            return Err(SnapError::msg(format!(
                "core register blob is {} bytes, expected {}",
                regs.len(),
                64 * 8
            )));
        }
        for (i, r) in regs.chunks_exact(8).enumerate() {
            let v = u64::from_le_bytes(r.try_into().expect("8 bytes"));
            if i < 32 {
                self.x[i] = v;
            } else {
                self.f[i - 32] = v;
            }
        }
        self.pc = get_u64(j, "pc")?;
        self.csrs.restore_json(get(j, "csrs")?)?;
        self.priv_mode = PrivMode::from_bits(get_u64(j, "priv")?);
        let hwloops = get_arr(j, "hwloops")?;
        if hwloops.len() != self.hwloops.len() {
            return Err(SnapError::msg("hwloop count mismatch"));
        }
        for (l, h) in self.hwloops.iter_mut().zip(hwloops) {
            l.start = get_u64(h, "start")?;
            l.end = get_u64(h, "end")?;
            l.count = get_u64(h, "count")?;
        }
        self.reservation = match get(j, "reservation")? {
            Json::Null => None,
            v => Some(unhex(v)?),
        };
        self.cycles = Cycles::new(get_u64(j, "cycles")?);
        self.instret = get_u64(j, "instret")?;
        self.halted = get_bool(j, "halted")?;
        let c = get(j, "counters")?;
        self.counters = CoreCounters {
            arith_ops: get_u64(c, "arith_ops")?,
            loads: get_u64(c, "loads")?,
            stores: get_u64(c, "stores")?,
            taken_branches: get_u64(c, "taken_branches")?,
            mem_stall_cycles: get_u64(c, "mem_stall_cycles")?,
            simd_insts: get_u64(c, "simd_insts")?,
            fp_insts: get_u64(c, "fp_insts")?,
            interrupts: get_u64(c, "interrupts")?,
            traps: get_u64(c, "traps")?,
            hwloop_iters: get_u64(c, "hwloop_iters")?,
            decode_hits: get_u64(c, "decode_hits")?,
            decode_misses: get_u64(c, "decode_misses")?,
            decode_invalidations: get_u64(c, "decode_invalidations")?,
            itlb_hits: get_u64(c, "itlb_hits")?,
            itlb_misses: get_u64(c, "itlb_misses")?,
        };
        let hpm = get_arr(j, "hpm")?;
        if hpm.len() != self.hpm.len() {
            return Err(SnapError::msg("HPM counter count mismatch"));
        }
        for (slot, h) in self.hpm.iter_mut().zip(hpm) {
            slot.offset = get_u64(h, "offset")?;
            slot.frozen = get_u64(h, "frozen")?;
        }
        self.decode_enabled = get_bool(j, "decode_enabled")?;
        self.decode_gen = get_u64(j, "decode_gen")?;
        self.code_lo = get_u64(j, "code_lo")?;
        self.code_hi = get_u64(j, "code_hi")?;
        let live = get_u64(j, "decode_count")?;
        let packed = snap.blob(get(j, "decode_entries")?)?;
        const REC: usize = 4 + 8 + 8 + 8 + 8 + 4 + 4;
        if packed.len() != live as usize * REC {
            return Err(SnapError::msg(format!(
                "decode-cache blob is {} bytes, expected {}",
                packed.len(),
                live as usize * REC
            )));
        }
        self.decode_cache = if live == 0 {
            None
        } else {
            let mut cache = vec![DecodedEntry::DEAD; DECODE_CACHE_ENTRIES].into_boxed_slice();
            for r in packed.chunks_exact(REC) {
                let u32_at = |o: usize| u32::from_le_bytes(r[o..o + 4].try_into().expect("4"));
                let u64_at = |o: usize| u64::from_le_bytes(r[o..o + 8].try_into().expect("8"));
                let slot = u32_at(0) as usize;
                if slot >= DECODE_CACHE_ENTRIES {
                    return Err(SnapError::msg(format!("decode slot {slot} out of range")));
                }
                let word = u32_at(36);
                let (ilen, cost, mode, paged) = (r[40], r[41], r[42], r[43]);
                let inst = if word & 3 != 3 {
                    crate::compressed::expand(word as u16, self.xlen)
                } else {
                    decode(word, self.xlen, self.xpulp)
                };
                let Some(inst) = inst else {
                    return Err(SnapError::msg(format!(
                        "decoded entry word {word:#010x} does not decode — \
                         snapshot from a different ISA surface?"
                    )));
                };
                cache[slot] = DecodedEntry {
                    va: u64_at(4),
                    pa: u64_at(12),
                    gen: self.decode_gen,
                    version: u64_at(20),
                    epoch: u64_at(28),
                    word,
                    ilen,
                    cost,
                    mode: PrivMode::from_bits(u64::from(mode)),
                    paged: paged != 0,
                    inst,
                };
            }
            Some(cache)
        };
        let itlb = get(j, "itlb")?;
        self.itlb = FetchTlb {
            valid: get_bool(itlb, "valid")?,
            page: get_u64(itlb, "page")?,
            base: get_u64(itlb, "base")?,
            version: get_u64(itlb, "version")?,
            mode: PrivMode::from_bits(get_u64(itlb, "mode")?),
        };
        let mmu = get(j, "mmu")?;
        self.mmu_cache = MmuCache {
            version: get_u64(mmu, "version")?,
            mode: PrivMode::from_bits(get_u64(mmu, "mode")?),
            satp: get_u64(mmu, "satp")?,
            active: get_bool(mmu, "active")?,
        };
        let irq = get(j, "irq")?;
        self.irq_cache = IrqCache {
            version: get_u64(irq, "version")?,
            mode: PrivMode::from_bits(get_u64(irq, "mode")?),
            takeable: match get(irq, "takeable")? {
                Json::Null => None,
                v => Some(unhex(v)?),
            },
        };
        Ok(())
    }

    /// Enables or disables the decoded-instruction cache and fetch µTLB
    /// fast path (the ablation knob). Timing, architectural state and
    /// memory-system statistics are bit-identical either way; only
    /// wall-clock simulation speed and the `decode_*`/`itlb_*` counters
    /// change. Default: enabled.
    pub fn set_decode_cache(&mut self, enabled: bool) {
        if self.decode_enabled != enabled {
            self.decode_enabled = enabled;
            self.drop_decoded();
        }
    }

    /// Whether the decoded-instruction fast path is active.
    pub fn decode_cache_enabled(&self) -> bool {
        self.decode_enabled
    }

    /// Drops every decoded entry and the fetch µTLB without counting an
    /// architectural invalidation (configuration changes).
    fn drop_decoded(&mut self) {
        self.decode_gen += 1;
        self.itlb.valid = false;
        self.code_lo = u64::MAX;
        self.code_hi = 0;
    }

    /// Invalidates the decoded-instruction cache and fetch µTLB — the
    /// `fence.i` / store-to-cached-code / program-reload path. Ticks the
    /// `decode_invalidations` counter and emits a [`TraceEvent::DecodeCache`]
    /// sample when a tracer is attached.
    pub fn invalidate_decoded(&mut self) {
        self.drop_decoded();
        self.counters.decode_invalidations += 1;
        self.trace_decode_counters();
    }

    fn trace_decode_counters(&mut self) {
        if let Some(t) = &self.tracer {
            let mut t = t.borrow_mut();
            t.set_now(self.trace_base + self.cycles.get());
            t.record(
                self.track,
                TraceEvent::DecodeCache {
                    hits: self.counters.decode_hits,
                    misses: self.counters.decode_misses,
                    invalidations: self.counters.decode_invalidations,
                },
            );
        }
    }

    /// Enables execution tracing, keeping the last `capacity` retired
    /// instructions in a ring buffer (tracing slows simulation; leave off
    /// for benchmarking).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(std::collections::VecDeque::with_capacity(capacity));
        self.trace_capacity = capacity.max(1);
        self.refresh_observe();
    }

    /// The trace ring buffer, oldest first (empty when tracing is off).
    pub fn trace(&self) -> Vec<TraceEntry> {
        self.trace
            .as_ref()
            .map(|t| t.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Renders the trace as disassembly, one instruction per line.
    pub fn trace_disassembly(&self) -> String {
        self.trace()
            .iter()
            .map(|e| format!("{:#010x}: {}\n", e.pc, crate::disasm::disassemble(&e.inst)))
            .collect()
    }

    /// Attaches a structured SoC tracer: retired instructions (and taken
    /// interrupts) are recorded on this core's track, stamped relative to
    /// the tracer's global clock at attach time.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.trace_base = tracer.borrow().now();
        self.tracer = Some(tracer);
        self.refresh_observe();
    }

    /// Detaches the structured tracer (instrumentation back to one branch).
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
        self.refresh_observe();
    }

    /// The track this core's trace events are recorded on.
    pub fn track(&self) -> Track {
        self.track
    }

    /// Enables per-PC cycle profiling on the commit path.
    pub fn enable_profile(&mut self) {
        self.profile = Some(PcProfile::new());
        self.refresh_observe();
    }

    /// The per-PC cycle histogram (`None` until [`Core::enable_profile`]).
    pub fn profile(&self) -> Option<&PcProfile> {
        self.profile.as_ref()
    }

    /// Takes the per-PC histogram out of the core, leaving profiling off.
    pub fn take_profile(&mut self) -> Option<PcProfile> {
        let p = self.profile.take();
        self.refresh_observe();
        p
    }

    fn refresh_observe(&mut self) {
        self.observe = self.trace.is_some() || self.tracer.is_some() || self.profile.is_some();
    }

    /// Resets cycle/instruction/activity counters (not architectural state).
    pub fn reset_counters(&mut self) {
        self.cycles = Cycles::ZERO;
        self.instret = 0;
        self.counters = CoreCounters::default();
    }

    fn sval(&self, r: Reg) -> i64 {
        let v = self.reg(r);
        match self.xlen {
            Xlen::Rv32 => v as u32 as i32 as i64,
            Xlen::Rv64 => v as i64,
        }
    }

    fn shamt_mask(&self) -> u32 {
        self.xlen.bits() - 1
    }

    fn read_f32(&self, r: FReg) -> f32 {
        f32::from_bits(self.f[r.0 as usize] as u32)
    }

    fn write_f32(&mut self, r: FReg, v: f32) {
        // NaN-box single-precision values in the 64-bit register.
        self.f[r.0 as usize] = 0xFFFF_FFFF_0000_0000 | v.to_bits() as u64;
    }

    fn read_f64(&self, r: FReg) -> f64 {
        f64::from_bits(self.f[r.0 as usize])
    }

    fn write_f64(&mut self, r: FReg, v: f64) {
        self.f[r.0 as usize] = v.to_bits();
    }

    /// Raises a synchronous trap: redirects through `mtvec` when installed,
    /// otherwise aborts the simulation with a descriptive error.
    fn raise(&mut self, cause: TrapCause, tval: u64) -> Result<(), RvError> {
        if self.csrs.read(addr::MTVEC) != 0 {
            let prev = self.priv_mode;
            self.pc = self.csrs.enter_trap_m(cause, self.pc, tval, prev);
            self.priv_mode = PrivMode::Machine;
            self.counters.traps += 1;
            return Ok(());
        }
        Err(match cause {
            TrapCause::IllegalInstruction => RvError::IllegalInstruction {
                pc: self.pc,
                word: tval as u32,
            },
            TrapCause::InstPageFault | TrapCause::LoadPageFault | TrapCause::StorePageFault => {
                RvError::PageFault { vaddr: tval }
            }
            _ => RvError::Memory {
                addr: tval,
                cause: format!("unhandled trap {cause:?}"),
            },
        })
    }

    /// Refreshes the cached `satp`/paging-mode view when the CSR file or
    /// privilege mode has changed since the last look.
    #[inline]
    fn mmu_refresh(&mut self) {
        let v = self.csrs.version();
        if self.mmu_cache.version != v || self.mmu_cache.mode != self.priv_mode {
            let satp = self.csrs.satp();
            self.mmu_cache = MmuCache {
                version: v,
                mode: self.priv_mode,
                satp,
                active: mmu::sv39_active(satp, self.priv_mode),
            };
        }
    }

    /// Translates a virtual address, charging PTE-walk memory time.
    fn translate<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        vaddr: u64,
        kind: AccessKind,
        extra: &mut Cycles,
    ) -> Result<u64, WalkFault> {
        self.mmu_refresh();
        if !self.mmu_cache.active {
            return Ok(vaddr);
        }
        let satp = self.mmu_cache.satp;
        let mut walk_cycles = Cycles::ZERO;
        let pa = mmu::translate_sv39(vaddr, satp, kind, self.priv_mode, |pte_addr| {
            let mut b = [0u8; 8];
            match bus.load(pte_addr, &mut b) {
                Ok(lat) => {
                    walk_cycles += lat;
                    Ok(u64::from_le_bytes(b))
                }
                Err(_) => Err(WalkFault::AccessFault),
            }
        })?;
        *extra += walk_cycles;
        Ok(pa)
    }

    /// Translates a data access, splitting it at a 4 KiB page boundary when
    /// Sv39 is active: each page translates (and can fault) independently,
    /// and a fault reports the virtual address of the first byte *on the
    /// faulting page* — not the base address of the access. Both
    /// translations resolve before the caller touches memory, so a store
    /// whose second page faults commits nothing.
    ///
    /// Returns `(pa, split)`: `split` is `Some((first_len, second_pa))`
    /// when the access straddles a boundary and must be issued as two bus
    /// transactions.
    #[inline]
    fn translate_span<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        vaddr: u64,
        len: usize,
        kind: AccessKind,
        extra: &mut Cycles,
    ) -> Result<(u64, Option<(usize, u64)>), RvError> {
        let cause = match kind {
            AccessKind::Store => TrapCause::StorePageFault,
            _ => TrapCause::LoadPageFault,
        };
        self.mmu_refresh();
        let straddles = self.mmu_cache.active && (vaddr & 0xFFF) + len as u64 > 0x1000;
        let pa = match self.translate(bus, vaddr, kind, extra) {
            Ok(pa) => pa,
            Err(_) => {
                self.raise(cause, vaddr)?;
                return Err(RvError::TrapTaken);
            }
        };
        if !straddles {
            return Ok((pa, None));
        }
        let first_len = (0x1000 - (vaddr & 0xFFF)) as usize;
        let second_va = (vaddr & !0xFFF).wrapping_add(0x1000);
        let second_pa = match self.translate(bus, second_va, kind, extra) {
            Ok(pa) => pa,
            Err(_) => {
                self.raise(cause, second_va)?;
                return Err(RvError::TrapTaken);
            }
        };
        Ok((pa, Some((first_len, second_pa))))
    }

    /// Records a [`TraceEvent::Misaligned`] when a tracer is attached and
    /// the access is not naturally aligned — purely observational (the
    /// model executes misaligned accesses), and free when no tracer is
    /// attached. This is the dynamic confirmation signal for the static
    /// analyzer's misalignment findings.
    #[inline]
    fn trace_misaligned(&mut self, vaddr: u64, len: usize) {
        if let Some(t) = &self.tracer {
            if len > 1 && vaddr & (len as u64 - 1) != 0 {
                let mut t = t.borrow_mut();
                t.set_now(self.trace_base + self.cycles.get());
                t.record(
                    self.track,
                    TraceEvent::Misaligned {
                        pc: self.pc,
                        addr: vaddr,
                        bytes: len as u32,
                    },
                );
            }
        }
    }

    #[inline]
    fn mem_load<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        vaddr: u64,
        buf: &mut [u8],
        extra: &mut Cycles,
    ) -> Result<(), RvError> {
        self.trace_misaligned(vaddr, buf.len());
        let (pa, split) = self.translate_span(bus, vaddr, buf.len(), AccessKind::Load, extra)?;
        match split {
            None => {
                let lat = bus.load(pa, buf).map_err(|e| RvError::Memory {
                    addr: pa,
                    cause: e.to_string(),
                })?;
                *extra += lat;
            }
            Some((first_len, second_pa)) => {
                let (lo, hi) = buf.split_at_mut(first_len);
                for (seg_pa, seg) in [(pa, lo), (second_pa, hi)] {
                    let lat = bus.load(seg_pa, seg).map_err(|e| RvError::Memory {
                        addr: seg_pa,
                        cause: e.to_string(),
                    })?;
                    *extra += lat;
                }
            }
        }
        self.counters.loads += 1;
        Ok(())
    }

    /// One physically-contiguous store segment: the bus write plus the
    /// coarse self-modifying-code filter — a store overlapping the PA
    /// range the decode cache has installed entries for drops the whole
    /// cache (single range compare per store; exact invalidation is the
    /// rare case and handled by the generation bump).
    #[inline]
    fn store_segment<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        pa: u64,
        data: &[u8],
        extra: &mut Cycles,
    ) -> Result<(), RvError> {
        let lat = bus.store(pa, data).map_err(|e| RvError::Memory {
            addr: pa,
            cause: e.to_string(),
        })?;
        *extra += lat;
        if pa < self.code_hi && pa.saturating_add(data.len() as u64) > self.code_lo {
            self.invalidate_decoded();
        }
        Ok(())
    }

    #[inline]
    fn mem_store<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        vaddr: u64,
        data: &[u8],
        extra: &mut Cycles,
    ) -> Result<(), RvError> {
        self.trace_misaligned(vaddr, data.len());
        let (pa, split) = self.translate_span(bus, vaddr, data.len(), AccessKind::Store, extra)?;
        match split {
            None => self.store_segment(bus, pa, data, extra)?,
            Some((first_len, second_pa)) => {
                self.store_segment(bus, pa, &data[..first_len], extra)?;
                self.store_segment(bus, second_pa, &data[first_len..], extra)?;
            }
        }
        self.counters.stores += 1;
        Ok(())
    }

    #[inline]
    fn load_int<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        vaddr: u64,
        width: LoadWidth,
        extra: &mut Cycles,
    ) -> Result<u64, RvError> {
        let mut b = [0u8; 8];
        let n = width.bytes();
        self.mem_load(bus, vaddr, &mut b[..n], extra)?;
        let raw = u64::from_le_bytes(b);
        Ok(match width {
            LoadWidth::B => raw as u8 as i8 as i64 as u64,
            LoadWidth::Bu => raw & 0xFF,
            LoadWidth::H => raw as u16 as i16 as i64 as u64,
            LoadWidth::Hu => raw & 0xFFFF,
            LoadWidth::W => raw as u32 as i32 as i64 as u64,
            LoadWidth::Wu => raw & 0xFFFF_FFFF,
            LoadWidth::D => raw,
        })
    }

    fn alu(&self, op: AluOp, a: u64, b: u64) -> u64 {
        let sh = (b as u32) & self.shamt_mask();
        match (op, self.xlen) {
            (AluOp::Add, _) => a.wrapping_add(b),
            (AluOp::Sub, _) => a.wrapping_sub(b),
            (AluOp::And, _) => a & b,
            (AluOp::Or, _) => a | b,
            (AluOp::Xor, _) => a ^ b,
            (AluOp::Sll, _) => a << sh,
            (AluOp::Srl, Xlen::Rv32) => ((a as u32) >> sh) as u64,
            (AluOp::Srl, Xlen::Rv64) => a >> sh,
            (AluOp::Sra, Xlen::Rv32) => ((a as u32 as i32) >> sh) as u32 as u64,
            (AluOp::Sra, Xlen::Rv64) => ((a as i64) >> sh) as u64,
            (AluOp::Slt, Xlen::Rv32) => ((a as u32 as i32) < (b as u32 as i32)) as u64,
            (AluOp::Slt, Xlen::Rv64) => ((a as i64) < (b as i64)) as u64,
            (AluOp::Sltu, Xlen::Rv32) => ((a as u32) < (b as u32)) as u64,
            (AluOp::Sltu, Xlen::Rv64) => (a < b) as u64,
        }
    }

    fn alu32(op: AluOp, a: u64, b: u64) -> u64 {
        let a = a as u32;
        let b = b as u32;
        let sh = b & 31;
        let r = match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a << sh,
            AluOp::Srl => a >> sh,
            AluOp::Sra => ((a as i32) >> sh) as u32,
            _ => unreachable!("no 32-bit variant for {op:?}"),
        };
        r as i32 as i64 as u64
    }

    fn muldiv(&self, op: MulDivOp, a: u64, b: u64) -> u64 {
        match self.xlen {
            Xlen::Rv64 => {
                let sa = a as i64;
                let sb = b as i64;
                match op {
                    MulDivOp::Mul => a.wrapping_mul(b),
                    MulDivOp::Mulh => ((sa as i128 * sb as i128) >> 64) as u64,
                    MulDivOp::Mulhsu => ((sa as i128 * b as u128 as i128) >> 64) as u64,
                    MulDivOp::Mulhu => ((a as u128 * b as u128) >> 64) as u64,
                    // `checked_div`/`checked_rem` return `None` exactly on
                    // the two cases the ISA defines specially: divide by
                    // zero (quotient all-ones, remainder = dividend) and
                    // signed overflow MIN/-1 (quotient MIN = the dividend,
                    // remainder 0).
                    MulDivOp::Div => sa
                        .checked_div(sb)
                        .map_or(if sb == 0 { u64::MAX } else { a }, |v| v as u64),
                    MulDivOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
                    MulDivOp::Rem => sa
                        .checked_rem(sb)
                        .map_or(if sb == 0 { a } else { 0 }, |v| v as u64),
                    MulDivOp::Remu => a.checked_rem(b).unwrap_or(a),
                }
            }
            Xlen::Rv32 => {
                let ua = a as u32;
                let ub = b as u32;
                let sa = ua as i32;
                let sb = ub as i32;
                let r: u32 = match op {
                    MulDivOp::Mul => ua.wrapping_mul(ub),
                    MulDivOp::Mulh => ((sa as i64 * sb as i64) >> 32) as u32,
                    MulDivOp::Mulhsu => ((sa as i64 * ub as i64) >> 32) as u32,
                    MulDivOp::Mulhu => ((ua as u64 * ub as u64) >> 32) as u32,
                    MulDivOp::Div => sa
                        .checked_div(sb)
                        .map_or(if sb == 0 { u32::MAX } else { ua }, |v| v as u32),
                    MulDivOp::Divu => ua.checked_div(ub).unwrap_or(u32::MAX),
                    MulDivOp::Rem => sa
                        .checked_rem(sb)
                        .map_or(if sb == 0 { ua } else { 0 }, |v| v as u32),
                    MulDivOp::Remu => ua.checked_rem(ub).unwrap_or(ua),
                };
                r as u64
            }
        }
    }

    fn csr_read(&self, csr: u16) -> u64 {
        match csr {
            addr::CYCLE | addr::MCYCLE | addr::TIME => self.cycles.get(),
            addr::INSTRET | addr::MINSTRET => self.instret,
            _ => self.csrs.read(csr),
        }
    }

    /// Running total of the event behind `sel` — the core's own activity
    /// counters, or the bus statistics for memory-system events. These are
    /// exactly the values [`Core::stats`] and the block `Stats` registries
    /// report, which is what makes guest HPM reads equal the simulator's
    /// own numbers.
    fn hpm_event_total<B: CoreBus + ?Sized>(&self, bus: &B, sel: u64) -> u64 {
        let c = &self.counters;
        match HpmEvent::from_selector(sel) {
            HpmEvent::None => 0,
            HpmEvent::IcacheMiss => bus.hpm_icache_misses(),
            HpmEvent::DcacheMiss => bus.hpm_dcache_misses(),
            HpmEvent::ItlbMiss => c.itlb_misses,
            HpmEvent::DecodeHit => c.decode_hits,
            HpmEvent::DecodeMiss => c.decode_misses,
            HpmEvent::MemStall => c.mem_stall_cycles,
            HpmEvent::TakenBranch => c.taken_branches,
            HpmEvent::Trap => c.traps,
            HpmEvent::Load => c.loads,
            HpmEvent::Store => c.stores,
            HpmEvent::Interrupt => c.interrupts,
            HpmEvent::HwLoopIter => c.hwloop_iters,
            HpmEvent::ConflictStall => bus.hpm_conflict_stalls(),
        }
    }

    fn hpm_inhibited(&self, i: u16) -> bool {
        self.csrs.read(addr::MCOUNTINHIBIT) >> (3 + i) & 1 == 1
    }

    /// Live value of HPM counter `i` (index 0 is `mhpmcounter3`).
    fn hpm_counter_read<B: CoreBus + ?Sized>(&self, bus: &B, i: u16) -> u64 {
        let slot = self.hpm[i as usize];
        if self.hpm_inhibited(i) {
            return slot.frozen;
        }
        let sel = self.csrs.read(addr::MHPMEVENT3 + i);
        self.hpm_event_total(bus, sel).wrapping_sub(slot.offset)
    }

    /// Writes HPM counter `i` by re-anchoring its offset (or updating the
    /// latched value while inhibited), so the counter continues from `v`.
    fn hpm_counter_write<B: CoreBus + ?Sized>(&mut self, bus: &B, i: u16, v: u64) {
        if self.hpm_inhibited(i) {
            self.hpm[i as usize].frozen = v;
            return;
        }
        let sel = self.csrs.read(addr::MHPMEVENT3 + i);
        self.hpm[i as usize].offset = self.hpm_event_total(bus, sel).wrapping_sub(v);
    }

    /// The bus-aware slow path for the HPM CSR group: real privilege
    /// checks (machine counters and selectors are M-mode-only, user
    /// shadows are read-only and gated by `mcounteren`), virtual-counter
    /// reads/writes, and freeze/unfreeze bookkeeping on `mcountinhibit`
    /// transitions. Called from the `Inst::Csr` arm only for addresses
    /// [`addr::is_hpm_managed`] matches, so every pre-existing CSR keeps
    /// its exact previous behavior.
    fn exec_csr_hpm<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        op: CsrOp,
        rd: Reg,
        csr: u16,
        src: CsrSrc,
        word: u32,
    ) -> Result<(), RvError> {
        let illegal = |core: &mut Self| -> Result<(), RvError> {
            core.raise(TrapCause::IllegalInstruction, word as u64)?;
            Err(RvError::TrapTaken)
        };
        // User shadows: read-only, and only visible below M-mode when the
        // matching mcounteren bit is set.
        if let Some(i) = addr::hpmcounter_index(csr) {
            let writes = match src {
                CsrSrc::Reg(r) => op == CsrOp::Rw || r != Reg::Zero,
                CsrSrc::Imm(v) => op == CsrOp::Rw || v != 0,
            };
            if writes {
                return illegal(self);
            }
            if self.priv_mode != PrivMode::Machine
                && self.csrs.read(addr::MCOUNTEREN) >> (3 + i) & 1 == 0
            {
                return illegal(self);
            }
            let old = self.hpm_counter_read(bus, i);
            self.set_reg(rd, old);
            return Ok(());
        }
        // Everything else in the group is a machine-mode register.
        if self.priv_mode != PrivMode::Machine {
            return illegal(self);
        }
        let old = if let Some(i) = addr::mhpmcounter_index(csr) {
            self.hpm_counter_read(bus, i)
        } else {
            self.csrs.read(csr)
        };
        let arg = match src {
            CsrSrc::Reg(r) => self.reg(r),
            CsrSrc::Imm(v) => v as u64,
        };
        let skip_write = match src {
            CsrSrc::Reg(r) => op != CsrOp::Rw && r == Reg::Zero,
            CsrSrc::Imm(v) => op != CsrOp::Rw && v == 0,
        };
        if !skip_write {
            let new = match op {
                CsrOp::Rw => arg,
                CsrOp::Rs => old | arg,
                CsrOp::Rc => old & !arg,
            };
            if let Some(i) = addr::mhpmcounter_index(csr) {
                self.hpm_counter_write(bus, i, new);
            } else if let Some(i) = addr::mhpmevent_index(csr) {
                // Re-anchor so the architectural value is preserved across
                // a selector change, exactly like writing the counter.
                let value = self.hpm_counter_read(bus, i);
                self.csrs.write(csr, new);
                self.hpm_counter_write(bus, i, value);
            } else if csr == addr::MCOUNTINHIBIT {
                // Freeze counters whose bit rises, thaw those whose bit
                // falls; both preserve the architectural counter value.
                let prev = self.csrs.read(addr::MCOUNTINHIBIT);
                let masked = new & 0x7F8; // only hpm bits 3..=10 exist
                for i in 0..addr::HPM_COUNTERS {
                    let was = prev >> (3 + i) & 1 == 1;
                    let now = masked >> (3 + i) & 1 == 1;
                    if !was && now {
                        self.hpm[i as usize].frozen = self.hpm_counter_read(bus, i);
                    }
                }
                self.csrs.write(csr, masked);
                for i in 0..addr::HPM_COUNTERS {
                    let was = prev >> (3 + i) & 1 == 1;
                    let now = masked >> (3 + i) & 1 == 1;
                    if was && !now {
                        let frozen = self.hpm[i as usize].frozen;
                        self.hpm_counter_write(bus, i, frozen);
                    }
                }
            } else {
                // mcounteren: plain 32-bit storage, consulted on shadow reads.
                self.csrs.write(csr, new & 0xFFFF_FFFF);
            }
        }
        self.set_reg(rd, old);
        Ok(())
    }

    fn simd_lanes(&self, fmt: SimdFmt, v: u32, scalar: bool) -> [i32; 4] {
        let mut out = [0i32; 4];
        match fmt {
            SimdFmt::B => {
                for (i, lane) in out.iter_mut().enumerate() {
                    let byte = if scalar {
                        v as u8
                    } else {
                        (v >> (8 * i)) as u8
                    };
                    *lane = byte as i8 as i32;
                }
            }
            SimdFmt::H => {
                for (i, lane) in out.iter_mut().take(2).enumerate() {
                    let h = if scalar {
                        v as u16
                    } else {
                        (v >> (16 * i)) as u16
                    };
                    *lane = h as i16 as i32;
                }
            }
        }
        out
    }

    fn simd_pack(fmt: SimdFmt, lanes: &[i32; 4]) -> u32 {
        match fmt {
            SimdFmt::B => lanes
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, &l)| acc | (((l as u8) as u32) << (8 * i))),
            SimdFmt::H => ((lanes[0] as u16) as u32) | (((lanes[1] as u16) as u32) << 16),
        }
    }

    fn exec_simd(&mut self, op: SimdOp, fmt: SimdFmt, rd: Reg, rs1: Reg, rs2: Reg, scalar: bool) {
        let a = self.reg(rs1) as u32;
        let b = self.reg(rs2) as u32;
        let la = self.simd_lanes(fmt, a, false);
        let lb = self.simd_lanes(fmt, b, scalar);
        let n = fmt.lanes();
        let lane_bits = 32 / n as u32;

        let dot = |sgn_a: bool, sgn_b: bool| -> i64 {
            let mut acc = 0i64;
            for i in 0..n {
                let va = if sgn_a {
                    la[i] as i64
                } else {
                    (la[i] as u32 & ((1 << lane_bits) - 1)) as i64
                };
                let vb = if sgn_b {
                    lb[i] as i64
                } else {
                    (lb[i] as u32 & ((1 << lane_bits) - 1)) as i64
                };
                acc += va * vb;
            }
            acc
        };

        let (value, ops): (u32, u64) = match op {
            SimdOp::Extract => {
                let lane = (b as usize) % n;
                (la[lane] as u32, 1)
            }
            SimdOp::Insert => {
                let lane = (b as usize) % n;
                let acc = self.reg(rd) as u32;
                let (mask, sh) = match fmt {
                    SimdFmt::B => (0xFFu32, 8 * lane),
                    SimdFmt::H => (0xFFFF, 16 * lane),
                };
                ((acc & !(mask << sh)) | ((a & mask) << sh), 1)
            }
            SimdOp::Shuffle => {
                let mut lanes = [0i32; 4];
                for (i, lane) in lanes.iter_mut().take(n).enumerate() {
                    let idx = match fmt {
                        SimdFmt::B => ((b >> (8 * i)) as usize) % n,
                        SimdFmt::H => ((b >> (16 * i)) as usize) % n,
                    };
                    *lane = la[idx];
                }
                (Self::simd_pack(fmt, &lanes), n as u64)
            }
            SimdOp::And => (a & b, n as u64),
            SimdOp::Or => (a | b, n as u64),
            SimdOp::Xor => (a ^ b, n as u64),
            SimdOp::Dotup => ((dot(false, false) as i32) as u32, 2 * n as u64),
            SimdOp::Dotusp => ((dot(false, true) as i32) as u32, 2 * n as u64),
            SimdOp::Dotsp => ((dot(true, true) as i32) as u32, 2 * n as u64),
            SimdOp::Sdotup => (
                (self.reg(rd) as u32).wrapping_add(dot(false, false) as u32),
                2 * n as u64,
            ),
            SimdOp::Sdotusp => (
                (self.reg(rd) as u32).wrapping_add(dot(false, true) as u32),
                2 * n as u64,
            ),
            SimdOp::Sdotsp => (
                (self.reg(rd) as u32).wrapping_add(dot(true, true) as u32),
                2 * n as u64,
            ),
            _ => {
                let mut lanes = [0i32; 4];
                let umask = (1u32 << lane_bits).wrapping_sub(1);
                for i in 0..n {
                    let (x, y) = (la[i], lb[i]);
                    let (ux, uy) = (x as u32 & umask, y as u32 & umask);
                    lanes[i] = match op {
                        SimdOp::Add => x.wrapping_add(y),
                        SimdOp::Sub => x.wrapping_sub(y),
                        SimdOp::Avg => (x + y) >> 1,
                        SimdOp::Avgu => ((ux + uy) >> 1) as i32,
                        SimdOp::Min => x.min(y),
                        SimdOp::Max => x.max(y),
                        SimdOp::Minu => ux.min(uy) as i32,
                        SimdOp::Maxu => ux.max(uy) as i32,
                        SimdOp::Srl => (ux >> (uy & (lane_bits - 1))) as i32,
                        SimdOp::Sra => x >> (uy & (lane_bits - 1)),
                        SimdOp::Abs => x.wrapping_abs(),
                        _ => unreachable!("handled above"),
                    };
                }
                (Self::simd_pack(fmt, &lanes), n as u64)
            }
        };
        self.set_reg(rd, value as u64);
        self.counters.arith_ops += ops;
        self.counters.simd_insts += 1;
    }

    fn exec_simd_fp(&mut self, op: SimdFpOp, rd: Reg, rs1: Reg, rs2: Reg) {
        let (a0, a1) = unpack2(self.reg(rs1) as u32);
        let (b0, b1) = unpack2(self.reg(rs2) as u32);
        match op {
            SimdFpOp::DotpexS => {
                let acc = f32::from_bits(self.reg(rd) as u32);
                let r = a0 * b0 + a1 * b1 + acc;
                self.set_reg(rd, r.to_bits() as u64);
                self.counters.arith_ops += 4;
            }
            SimdFpOp::Mac => {
                let (d0, d1) = unpack2(self.reg(rd) as u32);
                self.set_reg(rd, pack2(d0 + a0 * b0, d1 + a1 * b1) as u64);
                self.counters.arith_ops += 4;
            }
            _ => {
                let f = |x: f32, y: f32| match op {
                    SimdFpOp::Add => x + y,
                    SimdFpOp::Sub => x - y,
                    SimdFpOp::Mul => x * y,
                    SimdFpOp::Min => x.min(y),
                    SimdFpOp::Max => x.max(y),
                    _ => unreachable!(),
                };
                self.set_reg(rd, pack2(f(a0, b0), f(a1, b1)) as u64);
                self.counters.arith_ops += 2;
            }
        }
        self.counters.fp_insts += 1;
    }

    /// Marks a machine interrupt pending (or clears it): `code` is the
    /// standard cause (3 = software, 7 = timer, 11 = external). The SoC
    /// harness drives this from the CLINT/PLIC models; the interrupt is
    /// taken at the next [`Core::step`] when `mie`/`mstatus.MIE` allow.
    pub fn set_interrupt_pending(&mut self, code: u64, pending: bool) {
        let mip = self.csrs.read(addr::MIP);
        let bit = 1u64 << code;
        self.csrs
            .write(addr::MIP, if pending { mip | bit } else { mip & !bit });
    }

    /// Returns the cause code of a takeable machine interrupt, if any.
    fn takeable_interrupt(&self) -> Option<u64> {
        let pending = self.csrs.read(addr::MIP) & self.csrs.read(addr::MIE);
        if pending == 0 {
            return None;
        }
        let mstatus_mie = self.csrs.read(addr::MSTATUS) & (1 << 3) != 0;
        if self.priv_mode == PrivMode::Machine && !mstatus_mie {
            return None;
        }
        // Standard priority: external (11) > software (3) > timer (7).
        [11u64, 3, 7].into_iter().find(|&c| pending & (1 << c) != 0)
    }

    /// [`Core::takeable_interrupt`] behind a CSR-version cache: its only
    /// inputs are `mip`/`mie`/`mstatus` and the privilege mode, so the
    /// result is stable until either changes.
    #[inline]
    fn takeable_interrupt_cached(&mut self) -> Option<u64> {
        let v = self.csrs.version();
        if self.irq_cache.version != v || self.irq_cache.mode != self.priv_mode {
            self.irq_cache = IrqCache {
                version: v,
                mode: self.priv_mode,
                takeable: self.takeable_interrupt(),
            };
        }
        self.irq_cache.takeable
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns an [`RvError`] when the core cannot continue: illegal
    /// instruction / fault with no trap handler installed, or a memory
    /// system failure.
    #[inline]
    pub fn step<B: CoreBus + ?Sized>(&mut self, bus: &mut B) -> Result<StepOutcome, RvError> {
        if self.halted {
            return Ok(StepOutcome {
                cycles: Cycles::ZERO,
                halted: true,
            });
        }
        let pc = self.pc;

        if self.decode_enabled {
            // Fast path: replay a decoded entry stamped with the CSR-file
            // version and privilege mode of the step that installed it.
            // An unchanged stamp proves, without re-deriving anything,
            // that (a) no CSR write happened since, so no interrupt can
            // have become takeable (`mip`/`mie`/`mstatus` writes all bump
            // the version — the install step's prologue already concluded
            // "no interrupt" at this exact stamp), and (b) the fetch
            // translation is unchanged (`satp` is a CSR, the mode is
            // compared). A paged entry additionally requires a
            // timing-stateless bus: on cached buses the Sv39 walk's PTE
            // loads move L1D LRU state, so the walk must really run.
            // Entries are installed only for zero-stall fetches, so
            // replaying `extra = 0` is exactly what the slow path would
            // charge; the bus revalidates the fetch as a hit with
            // identical side effects via `fetch_touch`.
            if let Some(cache) = &self.decode_cache {
                let e = &cache[(pc >> 1) as usize & (DECODE_CACHE_ENTRIES - 1)];
                // Branchless stamp check: OR the XOR of every u64 field so
                // the common all-match case costs one predicted branch.
                let stale = (e.gen ^ self.decode_gen)
                    | (e.va ^ pc)
                    | (e.version ^ self.csrs.version())
                    | (e.epoch ^ bus.fetch_epoch());
                if stale == 0
                    && e.mode == self.priv_mode
                    && (!e.paged || bus.timing_stateless())
                    && bus.fetch_touch(e.pa)
                {
                    let (inst, ilen, word, cost) =
                        (e.inst, u64::from(e.ilen), e.word, u64::from(e.cost));
                    self.counters.decode_hits += 1;
                    // A paged replay is also a served-without-a-walk fetch
                    // translation; account it as a µTLB hit.
                    self.counters.itlb_hits += u64::from(e.paged);
                    return self.execute(bus, pc, inst, ilen, word, cost, Cycles::ZERO);
                }
            }
        }
        if let Some(code) = self.takeable_interrupt_cached() {
            if self.csrs.read(addr::MTVEC) != 0 {
                let prev = self.priv_mode;
                self.pc = self.csrs.enter_interrupt_m(code, self.pc, prev);
                self.priv_mode = PrivMode::Machine;
                self.counters.interrupts += 1;
                let c = Cycles::new(self.cost.branch_taken_penalty + 1);
                self.cycles += c;
                if let Some(t) = &self.tracer {
                    let mut t = t.borrow_mut();
                    t.set_now(self.trace_base + self.cycles.get());
                    t.record(self.track, TraceEvent::IrqClaim { irq: code as u32 });
                }
                return Ok(StepOutcome {
                    cycles: c,
                    halted: false,
                });
            }
        }

        if self.decode_enabled {
            self.counters.decode_misses += 1;
            let known_pa = self.fetch_pa_cached(pc, bus.timing_stateless());
            return self.step_decode(bus, pc, known_pa);
        }
        self.step_decode(bus, pc, None)
    }

    /// Fetch translation that provably costs zero cycles and touches no
    /// memory-system state: paging off (identity mapping), or a fetch-µTLB
    /// hit on a timing-stateless bus. On cached buses the Sv39 walk's PTE
    /// loads move L1D LRU state, so the walk must really run there.
    #[inline]
    fn fetch_pa_cached(&mut self, pc: u64, stateless: bool) -> Option<u64> {
        self.mmu_refresh();
        if !self.mmu_cache.active {
            return Some(pc);
        }
        if stateless
            && self.itlb.valid
            && self.itlb.page == pc >> 12
            && self.itlb.version == self.mmu_cache.version
            && self.itlb.mode == self.priv_mode
        {
            self.counters.itlb_hits += 1;
            return Some(self.itlb.base | (pc & 0xFFF));
        }
        None
    }

    /// The full decode path: translate (unless `known_pa` already proves a
    /// zero-cost translation), fetch, expand/decode, execute. Installs a
    /// decoded-instruction-cache entry when the whole fetch path added
    /// zero stall cycles.
    ///
    /// Kept out of line so the replay fast path in [`Core::step`] stays
    /// small enough to inline into the run loop.
    #[inline(never)]
    fn step_decode<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        pc: u64,
        known_pa: Option<u64>,
    ) -> Result<StepOutcome, RvError> {
        let mut extra = Cycles::ZERO;

        // Fetch (with translation when paging is on).
        let fetch_pa = match known_pa {
            Some(pa) => pa,
            None => match self.translate(bus, pc, AccessKind::Fetch, &mut extra) {
                Ok(pa) => pa,
                Err(_) => {
                    self.raise(TrapCause::InstPageFault, pc)?;
                    let c = Cycles::new(self.cost.base) + extra;
                    self.cycles += c;
                    return Ok(StepOutcome {
                        cycles: c,
                        halted: false,
                    });
                }
            },
        };
        // Install the fetch µTLB entry: translation is linear within a
        // page (4 KiB pages and superpages alike), so same-page fetches
        // can reuse it while the CSR file and privilege are unchanged.
        if known_pa.is_none()
            && self.decode_enabled
            && self.mmu_cache.active
            && bus.timing_stateless()
        {
            self.counters.itlb_misses += 1;
            self.itlb = FetchTlb {
                valid: true,
                page: pc >> 12,
                base: fetch_pa & !0xFFF,
                version: self.mmu_cache.version,
                mode: self.priv_mode,
            };
        }
        let (word, fetch_lat) = bus.fetch(fetch_pa).map_err(|e| RvError::Memory {
            addr: fetch_pa,
            cause: e.to_string(),
        })?;
        extra += fetch_lat;

        // C extension: a parcel whose low bits are not 0b11 is a 16-bit
        // compressed instruction; expand it before execution.
        let (decoded, ilen) = if word & 3 != 3 {
            (crate::compressed::expand(word as u16, self.xlen), 2u64)
        } else {
            (decode(word, self.xlen, self.xpulp), 4u64)
        };
        let Some(inst) = decoded else {
            self.raise(TrapCause::IllegalInstruction, word as u64)?;
            let c = Cycles::new(self.cost.base) + extra;
            self.cycles += c;
            return Ok(StepOutcome {
                cycles: c,
                halted: false,
            });
        };

        // Install only when the fetch path was zero-stall (steady-state
        // I-side hit): replaying such an entry charges zero extra cycles,
        // which is exactly what the slow path produces for the same hit.
        // First-touch misses (stall > 0) never install, so a replay can
        // never smear miss latency into later iterations.
        let cost = self.cost.cost(&inst);
        // `cost` is cached as a u8 in the entry; a cost model exceeding
        // that range simply never installs (correctness over speed).
        if self.decode_enabled && extra == Cycles::ZERO && cost <= u64::from(u8::MAX) {
            let cache = self.decode_cache.get_or_insert_with(|| {
                vec![DecodedEntry::DEAD; DECODE_CACHE_ENTRIES].into_boxed_slice()
            });
            cache[(pc >> 1) as usize & (DECODE_CACHE_ENTRIES - 1)] = DecodedEntry {
                va: pc,
                pa: fetch_pa,
                gen: self.decode_gen,
                version: self.csrs.version(),
                epoch: bus.fetch_epoch(),
                word,
                ilen: ilen as u8,
                cost: cost as u8,
                mode: self.priv_mode,
                paged: self.mmu_cache.active,
                inst,
            };
            self.code_lo = self.code_lo.min(fetch_pa);
            self.code_hi = self.code_hi.max(fetch_pa + 4);
        }

        self.execute(bus, pc, inst, ilen, word, cost, extra)
    }

    /// Executes an already-fetched, already-decoded instruction and
    /// commits its timing — shared by the decode-cache fast path and the
    /// full decode path. `base_cost` is the instruction's static
    /// [`CostModel::cost`], computed once at decode time and replayed from
    /// the decoded-entry cache.
    #[allow(clippy::too_many_arguments)]
    fn execute<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        pc: u64,
        inst: Inst,
        ilen: u64,
        word: u32,
        base_cost: u64,
        mut extra: Cycles,
    ) -> Result<StepOutcome, RvError> {
        if self.observe {
            if let Some(trace) = &mut self.trace {
                if trace.len() == self.trace_capacity {
                    trace.pop_front();
                }
                trace.push_back(TraceEntry { pc, inst });
            }
        }

        let mut next_pc = pc.wrapping_add(ilen);
        let mut penalty = 0u64;
        let mut halted = false;
        let mut control_transfer = false;
        let mut trapped = false;

        let exec_result: Result<(), RvError> = (|| {
            match inst {
                Inst::Lui { rd, imm } => self.set_reg(rd, (imm << 12) as u64),
                Inst::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add((imm << 12) as u64)),
                Inst::Jal { rd, offset } => {
                    self.set_reg(rd, pc.wrapping_add(ilen));
                    next_pc = pc.wrapping_add(offset as u64);
                    penalty += self.cost.jump_penalty;
                    control_transfer = true;
                }
                Inst::Jalr { rd, rs1, offset } => {
                    let target = self.reg(rs1).wrapping_add(offset as u64) & !1;
                    self.set_reg(rd, pc.wrapping_add(ilen));
                    next_pc = target;
                    penalty += self.cost.jump_penalty;
                    control_transfer = true;
                }
                Inst::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset,
                } => {
                    let taken = match cond {
                        BranchCond::Eq => self.reg(rs1) == self.reg(rs2),
                        BranchCond::Ne => self.reg(rs1) != self.reg(rs2),
                        BranchCond::Lt => self.sval(rs1) < self.sval(rs2),
                        BranchCond::Ge => self.sval(rs1) >= self.sval(rs2),
                        BranchCond::Ltu => self.reg(rs1) < self.reg(rs2),
                        BranchCond::Geu => self.reg(rs1) >= self.reg(rs2),
                    };
                    if taken {
                        next_pc = pc.wrapping_add(offset as u64);
                        penalty += self.cost.branch_taken_penalty;
                        self.counters.taken_branches += 1;
                        control_transfer = true;
                    }
                }
                Inst::Load {
                    width,
                    rd,
                    rs1,
                    offset,
                } => {
                    let vaddr = self.reg(rs1).wrapping_add(offset as u64);
                    let v = self.load_int(bus, vaddr, width, &mut extra)?;
                    self.set_reg(rd, v);
                }
                Inst::Store {
                    width,
                    rs2,
                    rs1,
                    offset,
                } => {
                    let vaddr = self.reg(rs1).wrapping_add(offset as u64);
                    let data = self.reg(rs2).to_le_bytes();
                    self.mem_store(bus, vaddr, &data[..width.bytes()], &mut extra)?;
                }
                Inst::OpImm { op, rd, rs1, imm } => {
                    let v = self.alu(op, self.reg(rs1), imm as u64);
                    self.set_reg(rd, v);
                    self.counters.arith_ops += 1;
                }
                Inst::OpImm32 { op, rd, rs1, imm } => {
                    self.set_reg(rd, Self::alu32(op, self.reg(rs1), imm as u64));
                    self.counters.arith_ops += 1;
                }
                Inst::Op { op, rd, rs1, rs2 } => {
                    let v = self.alu(op, self.reg(rs1), self.reg(rs2));
                    self.set_reg(rd, v);
                    self.counters.arith_ops += 1;
                }
                Inst::Op32 { op, rd, rs1, rs2 } => {
                    self.set_reg(rd, Self::alu32(op, self.reg(rs1), self.reg(rs2)));
                    self.counters.arith_ops += 1;
                }
                Inst::MulDiv { op, rd, rs1, rs2 } => {
                    let v = self.muldiv(op, self.reg(rs1), self.reg(rs2));
                    self.set_reg(rd, v);
                    self.counters.arith_ops += 1;
                }
                Inst::MulDiv32 { op, rd, rs1, rs2 } => {
                    let a = self.reg(rs1) as u32;
                    let b = self.reg(rs2) as u32;
                    let sa = a as i32;
                    let sb = b as i32;
                    let r: u32 = match op {
                        MulDivOp::Mul => a.wrapping_mul(b),
                        MulDivOp::Div => sa
                            .checked_div(sb)
                            .map_or(if sb == 0 { u32::MAX } else { a }, |v| v as u32),
                        MulDivOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
                        MulDivOp::Rem => sa
                            .checked_rem(sb)
                            .map_or(if sb == 0 { a } else { 0 }, |v| v as u32),
                        MulDivOp::Remu => a.checked_rem(b).unwrap_or(a),
                        _ => 0,
                    };
                    self.set_reg(rd, r as i32 as i64 as u64);
                    self.counters.arith_ops += 1;
                }
                Inst::LoadReserved { double, rd, rs1 } => {
                    let vaddr = self.reg(rs1);
                    let width = if double { LoadWidth::D } else { LoadWidth::W };
                    let v = self.load_int(bus, vaddr, width, &mut extra)?;
                    self.set_reg(rd, v);
                    self.reservation = Some(vaddr);
                }
                Inst::StoreConditional {
                    double,
                    rd,
                    rs1,
                    rs2,
                } => {
                    let vaddr = self.reg(rs1);
                    if self.reservation == Some(vaddr) {
                        let data = self.reg(rs2).to_le_bytes();
                        let n = if double { 8 } else { 4 };
                        self.mem_store(bus, vaddr, &data[..n], &mut extra)?;
                        self.set_reg(rd, 0);
                    } else {
                        self.set_reg(rd, 1);
                    }
                    self.reservation = None;
                }
                Inst::Amo {
                    op,
                    double,
                    rd,
                    rs1,
                    rs2,
                } => {
                    let vaddr = self.reg(rs1);
                    let width = if double { LoadWidth::D } else { LoadWidth::W };
                    let old = self.load_int(bus, vaddr, width, &mut extra)?;
                    let b = self.reg(rs2);
                    let new = match (op, double) {
                        (AmoOp::Swap, _) => b,
                        (AmoOp::Add, _) => old.wrapping_add(b),
                        (AmoOp::Xor, _) => old ^ b,
                        (AmoOp::And, _) => old & b,
                        (AmoOp::Or, _) => old | b,
                        (AmoOp::Min, true) => (old as i64).min(b as i64) as u64,
                        (AmoOp::Max, true) => (old as i64).max(b as i64) as u64,
                        (AmoOp::Min, false) => {
                            ((old as u32 as i32).min(b as u32 as i32)) as u32 as u64
                        }
                        (AmoOp::Max, false) => {
                            ((old as u32 as i32).max(b as u32 as i32)) as u32 as u64
                        }
                        (AmoOp::Minu, true) => old.min(b),
                        (AmoOp::Maxu, true) => old.max(b),
                        (AmoOp::Minu, false) => ((old as u32).min(b as u32)) as u64,
                        (AmoOp::Maxu, false) => ((old as u32).max(b as u32)) as u64,
                    };
                    let data = new.to_le_bytes();
                    let n = if double { 8 } else { 4 };
                    self.mem_store(bus, vaddr, &data[..n], &mut extra)?;
                    self.set_reg(rd, old);
                }
                Inst::Fence => {}
                // fence.i orders the instruction stream after stores: the
                // architectural invalidation point for decoded entries.
                Inst::FenceI => self.invalidate_decoded(),
                Inst::Ecall => {
                    let cause = match self.priv_mode {
                        PrivMode::User => TrapCause::EcallFromU,
                        PrivMode::Supervisor => TrapCause::EcallFromS,
                        PrivMode::Machine => TrapCause::EcallFromM,
                    };
                    self.raise(cause, 0)?;
                    next_pc = self.pc;
                    control_transfer = true;
                }
                Inst::Ebreak => {
                    halted = true;
                }
                Inst::Mret => {
                    if self.priv_mode != PrivMode::Machine {
                        self.raise(TrapCause::IllegalInstruction, word as u64)?;
                        next_pc = self.pc;
                    } else {
                        let (epc, mode) = self.csrs.leave_trap_m();
                        next_pc = epc;
                        self.priv_mode = mode;
                    }
                    control_transfer = true;
                }
                Inst::Sret => {
                    if self.priv_mode < PrivMode::Supervisor {
                        self.raise(TrapCause::IllegalInstruction, word as u64)?;
                        next_pc = self.pc;
                    } else {
                        let (epc, mode) = self.csrs.leave_trap_s();
                        next_pc = epc;
                        self.priv_mode = mode;
                    }
                    control_transfer = true;
                }
                Inst::Wfi => {}
                Inst::Csr { op, rd, csr, src } if addr::is_hpm_managed(csr) => {
                    self.exec_csr_hpm(bus, op, rd, csr, src, word)?;
                }
                Inst::Csr { op, rd, csr, src } => {
                    let old = self.csr_read(csr);
                    let arg = match src {
                        CsrSrc::Reg(r) => self.reg(r),
                        CsrSrc::Imm(v) => v as u64,
                    };
                    let skip_write = match src {
                        CsrSrc::Reg(r) => op != CsrOp::Rw && r == Reg::Zero,
                        CsrSrc::Imm(v) => op != CsrOp::Rw && v == 0,
                    };
                    if !skip_write {
                        let new = match op {
                            CsrOp::Rw => arg,
                            CsrOp::Rs => old | arg,
                            CsrOp::Rc => old & !arg,
                        };
                        self.csrs.write(csr, new);
                    }
                    self.set_reg(rd, old);
                }

                // --- F/D ---
                Inst::FpLoad {
                    fmt,
                    rd,
                    rs1,
                    offset,
                } => {
                    let vaddr = self.reg(rs1).wrapping_add(offset as u64);
                    let mut b = [0u8; 8];
                    let n = if fmt == FpFmt::S { 4 } else { 8 };
                    self.mem_load(bus, vaddr, &mut b[..n], &mut extra)?;
                    if fmt == FpFmt::S {
                        self.write_f32(
                            rd,
                            f32::from_bits(u32::from_le_bytes(b[..4].try_into().expect("4"))),
                        );
                    } else {
                        self.f[rd.0 as usize] = u64::from_le_bytes(b);
                    }
                }
                Inst::FpStore {
                    fmt,
                    rs2,
                    rs1,
                    offset,
                } => {
                    let vaddr = self.reg(rs1).wrapping_add(offset as u64);
                    let bits = self.f[rs2.0 as usize].to_le_bytes();
                    let n = if fmt == FpFmt::S { 4 } else { 8 };
                    self.mem_store(bus, vaddr, &bits[..n], &mut extra)?;
                }
                Inst::FpOp3 {
                    fmt,
                    op,
                    rd,
                    rs1,
                    rs2,
                } => {
                    match fmt {
                        FpFmt::S => {
                            let a = self.read_f32(rs1);
                            let b = self.read_f32(rs2);
                            let r = match op {
                                FpOp::Add => a + b,
                                FpOp::Sub => a - b,
                                FpOp::Mul => a * b,
                                FpOp::Div => a / b,
                                FpOp::Sqrt => a.sqrt(),
                                FpOp::Min => a.min(b),
                                FpOp::Max => a.max(b),
                                FpOp::SgnJ => a.copysign(b),
                                FpOp::SgnJn => a.copysign(-b),
                                FpOp::SgnJx => {
                                    f32::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000))
                                }
                            };
                            self.write_f32(rd, r);
                        }
                        FpFmt::D => {
                            let a = self.read_f64(rs1);
                            let b = self.read_f64(rs2);
                            let r = match op {
                                FpOp::Add => a + b,
                                FpOp::Sub => a - b,
                                FpOp::Mul => a * b,
                                FpOp::Div => a / b,
                                FpOp::Sqrt => a.sqrt(),
                                FpOp::Min => a.min(b),
                                FpOp::Max => a.max(b),
                                FpOp::SgnJ => a.copysign(b),
                                FpOp::SgnJn => a.copysign(-b),
                                FpOp::SgnJx => f64::from_bits(
                                    a.to_bits() ^ (b.to_bits() & 0x8000_0000_0000_0000),
                                ),
                            };
                            self.write_f64(rd, r);
                        }
                    }
                    self.counters.arith_ops += 1;
                    self.counters.fp_insts += 1;
                }
                Inst::FpFma {
                    fmt,
                    rd,
                    rs1,
                    rs2,
                    rs3,
                    negate_product,
                    negate_addend,
                } => {
                    match fmt {
                        FpFmt::S => {
                            let a = self.read_f32(rs1);
                            let b = self.read_f32(rs2);
                            let c = self.read_f32(rs3);
                            let a = if negate_product { -a } else { a };
                            let c = if negate_addend { -c } else { c };
                            self.write_f32(rd, a.mul_add(b, c));
                        }
                        FpFmt::D => {
                            let a = self.read_f64(rs1);
                            let b = self.read_f64(rs2);
                            let c = self.read_f64(rs3);
                            let a = if negate_product { -a } else { a };
                            let c = if negate_addend { -c } else { c };
                            self.write_f64(rd, a.mul_add(b, c));
                        }
                    }
                    self.counters.arith_ops += 2;
                    self.counters.fp_insts += 1;
                }
                Inst::FpCmp {
                    fmt,
                    cmp,
                    rd,
                    rs1,
                    rs2,
                } => {
                    let r = match fmt {
                        FpFmt::S => {
                            let a = self.read_f32(rs1);
                            let b = self.read_f32(rs2);
                            match cmp {
                                FpCmp::Eq => a == b,
                                FpCmp::Lt => a < b,
                                FpCmp::Le => a <= b,
                            }
                        }
                        FpFmt::D => {
                            let a = self.read_f64(rs1);
                            let b = self.read_f64(rs2);
                            match cmp {
                                FpCmp::Eq => a == b,
                                FpCmp::Lt => a < b,
                                FpCmp::Le => a <= b,
                            }
                        }
                    };
                    self.set_reg(rd, r as u64);
                    self.counters.fp_insts += 1;
                }
                Inst::FpToInt {
                    fmt,
                    rd,
                    rs1,
                    signed,
                    wide,
                } => {
                    let v = match fmt {
                        FpFmt::S => self.read_f32(rs1) as f64,
                        FpFmt::D => self.read_f64(rs1),
                    };
                    let r = match (wide, signed) {
                        (false, true) => (v as i32) as i64 as u64,
                        (false, false) => (v as u32) as i32 as i64 as u64,
                        (true, true) => (v as i64) as u64,
                        (true, false) => v as u64,
                    };
                    self.set_reg(rd, r);
                    self.counters.fp_insts += 1;
                }
                Inst::IntToFp {
                    fmt,
                    rd,
                    rs1,
                    signed,
                    wide,
                } => {
                    let raw = self.reg(rs1);
                    let v: f64 = match (wide, signed) {
                        (false, true) => raw as u32 as i32 as f64,
                        (false, false) => raw as u32 as f64,
                        (true, true) => raw as i64 as f64,
                        (true, false) => raw as f64,
                    };
                    match fmt {
                        FpFmt::S => self.write_f32(rd, v as f32),
                        FpFmt::D => self.write_f64(rd, v),
                    }
                    self.counters.fp_insts += 1;
                }
                Inst::FpCvt { to, rd, rs1 } => {
                    match to {
                        FpFmt::S => {
                            let v = self.read_f64(rs1);
                            self.write_f32(rd, v as f32);
                        }
                        FpFmt::D => {
                            let v = self.read_f32(rs1);
                            self.write_f64(rd, v as f64);
                        }
                    }
                    self.counters.fp_insts += 1;
                }
                Inst::FpMvToInt { fmt, rd, rs1 } => {
                    let v = match fmt {
                        FpFmt::S => self.f[rs1.0 as usize] as u32 as i32 as i64 as u64,
                        FpFmt::D => self.f[rs1.0 as usize],
                    };
                    self.set_reg(rd, v);
                }
                Inst::FpMvFromInt { fmt, rd, rs1 } => match fmt {
                    FpFmt::S => self.write_f32(rd, f32::from_bits(self.reg(rs1) as u32)),
                    FpFmt::D => self.f[rd.0 as usize] = self.reg(rs1),
                },

                // --- Xpulp ---
                Inst::LoadPost {
                    width,
                    rd,
                    rs1,
                    offset,
                } => {
                    let vaddr = self.reg(rs1);
                    let v = self.load_int(bus, vaddr, width, &mut extra)?;
                    self.set_reg(rs1, vaddr.wrapping_add(offset as u64));
                    self.set_reg(rd, v);
                }
                Inst::StorePost {
                    width,
                    rs2,
                    rs1,
                    offset,
                } => {
                    let vaddr = self.reg(rs1);
                    let data = self.reg(rs2).to_le_bytes();
                    self.mem_store(bus, vaddr, &data[..width.bytes()], &mut extra)?;
                    self.set_reg(rs1, vaddr.wrapping_add(offset as u64));
                }
                Inst::Mac {
                    rd,
                    rs1,
                    rs2,
                    subtract,
                } => {
                    let prod = (self.reg(rs1) as u32).wrapping_mul(self.reg(rs2) as u32);
                    let acc = self.reg(rd) as u32;
                    let r = if subtract {
                        acc.wrapping_sub(prod)
                    } else {
                        acc.wrapping_add(prod)
                    };
                    self.set_reg(rd, r as u64);
                    self.counters.arith_ops += 2;
                }
                Inst::PulpAlu { op, rd, rs1, rs2 } => {
                    let a = self.reg(rs1) as u32;
                    let b = self.reg(rs2) as u32;
                    let sa = a as i32;
                    let sb = b as i32;
                    let r: u32 = match op {
                        PulpAluOp::Min => sa.min(sb) as u32,
                        PulpAluOp::Max => sa.max(sb) as u32,
                        PulpAluOp::Minu => a.min(b),
                        PulpAluOp::Maxu => a.max(b),
                        PulpAluOp::Abs => sa.wrapping_abs() as u32,
                        PulpAluOp::Exths => (a as u16 as i16 as i32) as u32,
                        PulpAluOp::Exthz => a & 0xFFFF,
                        PulpAluOp::Extbs => (a as u8 as i8 as i32) as u32,
                        PulpAluOp::Extbz => a & 0xFF,
                        PulpAluOp::Clip => {
                            let lo = -(sb.max(0)) - 1;
                            let hi = sb.max(0);
                            sa.clamp(lo, hi) as u32
                        }
                        PulpAluOp::Cnt => a.count_ones(),
                        PulpAluOp::Ff1 => a.trailing_zeros().min(32),
                        PulpAluOp::Fl1 => {
                            if a == 0 {
                                32
                            } else {
                                31 - a.leading_zeros()
                            }
                        }
                        PulpAluOp::Ror => a.rotate_right(b & 31),
                    };
                    self.set_reg(rd, r as u64);
                    self.counters.arith_ops += 1;
                }
                Inst::HwLoop {
                    op,
                    loop_idx,
                    value,
                    rs1,
                } => {
                    let l = &mut self.hwloops[loop_idx as usize];
                    match op {
                        HwLoopOp::Starti => l.start = pc.wrapping_add(value as u64),
                        HwLoopOp::Endi => l.end = pc.wrapping_add(value as u64),
                        HwLoopOp::Count => l.count = self.x[rs1.index() as usize] as u32 as u64,
                        HwLoopOp::Counti => l.count = value as u64,
                    }
                }
                Inst::Simd {
                    op,
                    fmt,
                    rd,
                    rs1,
                    rs2,
                    scalar_rs2,
                } => {
                    self.exec_simd(op, fmt, rd, rs1, rs2, scalar_rs2);
                }
                Inst::SimdFp { op, rd, rs1, rs2 } => {
                    self.exec_simd_fp(op, rd, rs1, rs2);
                }
            }
            Ok(())
        })();
        match exec_result {
            Ok(()) => {}
            // A data-access trap was taken: the instruction is abandoned
            // and control resumes at the handler `raise` installed.
            Err(RvError::TrapTaken) => {
                next_pc = self.pc;
                control_transfer = true;
                trapped = true;
            }
            Err(e) => return Err(e),
        }
        if trapped {
            penalty += self.cost.branch_taken_penalty;
        }

        // Hardware loops: zero-cycle back-edge at the end of a loop body.
        // Only Xpulp cores can ever arm one, so gate the scan on the
        // extension flag rather than probing both slots every retire.
        if self.xpulp && !control_transfer && !halted {
            for i in 0..2 {
                let l = &mut self.hwloops[i];
                if l.count > 0 && next_pc == l.end {
                    if l.count > 1 {
                        l.count -= 1;
                        next_pc = l.start;
                        self.counters.hwloop_iters += 1;
                    } else {
                        l.count = 0;
                    }
                    break;
                }
            }
        }

        self.pc = next_pc;
        self.halted = halted;
        self.instret += 1;
        self.counters.mem_stall_cycles += extra.get();
        let total = Cycles::new(base_cost + penalty) + extra;
        self.cycles += total;
        if self.observe {
            if let Some(t) = &self.tracer {
                let mut t = t.borrow_mut();
                t.set_now(self.trace_base + self.cycles.get());
                t.record(self.track, TraceEvent::Retire { pc, word });
            }
            if let Some(p) = &mut self.profile {
                p.record(pc, word, total.get());
            }
        }
        if halted {
            // Final decode-cache counter sample for the Chrome trace.
            self.trace_decode_counters();
        }
        Ok(StepOutcome {
            cycles: total,
            halted,
        })
    }

    /// Runs until `ebreak` or until `max_cycles` elapse.
    ///
    /// Returns the cycles consumed by this call.
    ///
    /// # Errors
    ///
    /// Propagates [`Core::step`] errors and returns [`RvError::Timeout`]
    /// when the budget expires.
    pub fn run<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        max_cycles: u64,
    ) -> Result<Cycles, RvError> {
        let start = self.cycles;
        let limit = start.get().saturating_add(max_cycles);
        while !self.halted {
            let out = self.step(bus)?;
            if out.halted {
                break;
            }
            if self.cycles.get() > limit {
                return Err(RvError::Timeout {
                    cycles: (self.cycles - start).get(),
                });
            }
        }
        Ok(self.cycles - start)
    }

    /// Runs until `ebreak` or until the core's *total* cycle count reaches
    /// `target`, whichever comes first, and reports whether the core
    /// halted. Unlike [`Core::run`] reaching the target is not an error:
    /// the timeline sampler uses this to chunk a run into sampling windows
    /// — the step sequence is identical to one uninterrupted [`Core::run`],
    /// so chunked and unchunked runs are cycle-bit-identical.
    ///
    /// # Errors
    ///
    /// Propagates [`Core::step`] errors.
    pub fn run_until_cycle<B: CoreBus + ?Sized>(
        &mut self,
        bus: &mut B,
        target: u64,
    ) -> Result<bool, RvError> {
        while !self.halted && self.cycles.get() < target {
            if self.step(bus)?.halted {
                break;
            }
        }
        Ok(self.halted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn run_rv64(build: impl FnOnce(&mut Asm)) -> (Core, FlatBus) {
        let mut a = Asm::new(Xlen::Rv64);
        build(&mut a);
        a.ebreak();
        let mut bus = FlatBus::new(1 << 16);
        bus.load_words(0, &a.assemble().expect("assemble"));
        let mut core = Core::cva6();
        core.set_reg(Reg::Sp, 0x8000);
        core.run(&mut bus, 1_000_000).expect("run");
        (core, bus)
    }

    fn run_rv32(build: impl FnOnce(&mut Asm)) -> (Core, FlatBus) {
        let mut a = Asm::new(Xlen::Rv32);
        build(&mut a);
        a.ebreak();
        let mut bus = FlatBus::new(1 << 16);
        bus.load_words(0, &a.assemble().expect("assemble"));
        let mut core = Core::ri5cy(0);
        core.set_reg(Reg::Sp, 0x8000);
        core.run(&mut bus, 1_000_000).expect("run");
        (core, bus)
    }

    #[test]
    fn arithmetic_basics() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 20);
            a.li(Reg::T1, 22);
            a.add(Reg::A0, Reg::T0, Reg::T1);
            a.sub(Reg::A1, Reg::T0, Reg::T1);
            a.mul(Reg::A2, Reg::T0, Reg::T1);
        });
        assert_eq!(c.reg(Reg::A0), 42);
        assert_eq!(c.reg(Reg::A1) as i64, -2);
        assert_eq!(c.reg(Reg::A2), 440);
    }

    #[test]
    fn zero_register_immutable() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 5);
            a.add(Reg::Zero, Reg::T0, Reg::T0);
            a.add(Reg::A0, Reg::Zero, Reg::Zero);
        });
        assert_eq!(c.reg(Reg::A0), 0);
    }

    #[test]
    fn loads_and_stores() {
        let (c, bus) = run_rv64(|a| {
            a.li(Reg::T0, 0x1234_5678_9ABC_DEF0u64 as i64);
            a.sd(Reg::T0, Reg::Sp, 0);
            a.lw(Reg::A0, Reg::Sp, 0);
            a.lwu(Reg::A1, Reg::Sp, 0);
            a.lb(Reg::A2, Reg::Sp, 0);
            a.lbu(Reg::A3, Reg::Sp, 0);
            a.lh(Reg::A4, Reg::Sp, 0);
            a.ld(Reg::A5, Reg::Sp, 0);
        });
        assert_eq!(bus.read_u64(0x8000), 0x1234_5678_9ABC_DEF0);
        assert_eq!(c.reg(Reg::A0), 0xFFFF_FFFF_9ABC_DEF0); // sign-extended
        assert_eq!(c.reg(Reg::A1), 0x9ABC_DEF0);
        assert_eq!(c.reg(Reg::A2), 0xFFFF_FFFF_FFFF_FFF0);
        assert_eq!(c.reg(Reg::A3), 0xF0);
        assert_eq!(c.reg(Reg::A4), 0xFFFF_FFFF_FFFF_DEF0);
        assert_eq!(c.reg(Reg::A5), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn branches_and_loops() {
        // Compute 10! iteratively.
        let (c, _) = run_rv64(|a| {
            a.li(Reg::A0, 1);
            a.li(Reg::T0, 10);
            let top = a.label();
            a.bind(top);
            a.mul(Reg::A0, Reg::A0, Reg::T0);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
        });
        assert_eq!(c.reg(Reg::A0), 3_628_800);
    }

    #[test]
    fn division_edge_cases() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 7);
            a.li(Reg::T1, 0);
            a.div(Reg::A0, Reg::T0, Reg::T1); // div by zero -> -1
            a.rem(Reg::A1, Reg::T0, Reg::T1); // rem by zero -> dividend
            a.li(Reg::T2, i64::MIN);
            a.li(Reg::T3, -1);
            a.div(Reg::A2, Reg::T2, Reg::T3); // overflow -> MIN
        });
        assert_eq!(c.reg(Reg::A0), u64::MAX);
        assert_eq!(c.reg(Reg::A1), 7);
        assert_eq!(c.reg(Reg::A2), i64::MIN as u64);
    }

    #[test]
    fn rv64_word_ops_sign_extend() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 0x7FFF_FFFF);
            a.addiw(Reg::A0, Reg::T0, 1); // wraps to i32::MIN, sign-extends
            a.li(Reg::T1, 1);
            a.sllw(Reg::A1, Reg::T1, Reg::T0); // shift by 31 (mod 32)
        });
        assert_eq!(c.reg(Reg::A0), 0xFFFF_FFFF_8000_0000);
        assert_eq!(c.reg(Reg::A1), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn jal_and_jalr_link() {
        let (c, _) = run_rv64(|a| {
            let func = a.label();
            let done = a.label();
            a.li(Reg::A0, 0);
            a.call(func);
            a.j(done);
            a.bind(func);
            a.li(Reg::A0, 99);
            a.ret();
            a.bind(done);
        });
        assert_eq!(c.reg(Reg::A0), 99);
    }

    #[test]
    fn fp_single_precision() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 3);
            a.fcvt_s_w(crate::inst::FReg(0), Reg::T0);
            a.li(Reg::T1, 4);
            a.fcvt_s_w(crate::inst::FReg(1), Reg::T1);
            a.fmul_s(
                crate::inst::FReg(2),
                crate::inst::FReg(0),
                crate::inst::FReg(1),
            );
            a.fcvt_w_s(Reg::A0, crate::inst::FReg(2));
            // fma: 3*4+4 = 16
            a.fmadd_s(
                crate::inst::FReg(3),
                crate::inst::FReg(0),
                crate::inst::FReg(1),
                crate::inst::FReg(1),
            );
            a.fcvt_w_s(Reg::A1, crate::inst::FReg(3));
        });
        assert_eq!(c.reg(Reg::A0), 12);
        assert_eq!(c.reg(Reg::A1), 16);
    }

    #[test]
    fn fp_double_precision_division() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 1);
            a.fcvt_d_l(crate::inst::FReg(0), Reg::T0);
            a.li(Reg::T1, 8);
            a.fcvt_d_l(crate::inst::FReg(1), Reg::T1);
            a.fdiv_d(
                crate::inst::FReg(2),
                crate::inst::FReg(0),
                crate::inst::FReg(1),
            );
            a.fmv_x_d(Reg::A0, crate::inst::FReg(2));
        });
        assert_eq!(f64::from_bits(c.reg(Reg::A0)), 0.125);
    }

    #[test]
    fn xpulp_post_increment() {
        let (c, _) = run_rv32(|a| {
            a.li(Reg::T0, 0x100);
            a.li(Reg::T1, 7);
            a.sw(Reg::T1, Reg::T0, 0);
            a.li(Reg::T1, 9);
            a.sw(Reg::T1, Reg::T0, 4);
            a.p_lw_post(Reg::A0, Reg::T0, 4);
            a.p_lw_post(Reg::A1, Reg::T0, 4);
            a.mv(Reg::A2, Reg::T0);
        });
        assert_eq!(c.reg(Reg::A0), 7);
        assert_eq!(c.reg(Reg::A1), 9);
        assert_eq!(c.reg(Reg::A2), 0x108);
    }

    #[test]
    fn xpulp_mac() {
        let (c, _) = run_rv32(|a| {
            a.li(Reg::A0, 100);
            a.li(Reg::T0, 6);
            a.li(Reg::T1, 7);
            a.p_mac(Reg::A0, Reg::T0, Reg::T1);
            a.p_msu(Reg::A0, Reg::T0, Reg::T1);
            a.p_mac(Reg::A0, Reg::T0, Reg::T1);
        });
        assert_eq!(c.reg(Reg::A0), 142);
    }

    #[test]
    fn xpulp_hardware_loop() {
        // Sum 1..=100 with a zero-overhead loop.
        let (c, _) = run_rv32(|a| {
            a.li(Reg::A0, 0);
            a.li(Reg::T0, 1);
            a.lp_counti(0, 100);
            let (start, end) = (a.label(), a.label());
            a.lp_starti(0, start);
            a.lp_endi(0, end);
            a.bind(start);
            a.add(Reg::A0, Reg::A0, Reg::T0);
            a.addi(Reg::T0, Reg::T0, 1);
            a.bind(end);
        });
        assert_eq!(c.reg(Reg::A0), 5050);
    }

    #[test]
    fn hardware_loop_is_zero_overhead() {
        // The same reduction with a hw loop vs a bnez loop: the hw loop
        // saves the taken-branch penalty every iteration.
        let body = 1000u64;
        let (hw, _) = run_rv32(|a| {
            a.li(Reg::A0, 0);
            a.lp_counti(0, body as i64);
            let (s, e) = (a.label(), a.label());
            a.lp_starti(0, s);
            a.lp_endi(0, e);
            a.bind(s);
            a.addi(Reg::A0, Reg::A0, 1);
            a.bind(e);
        });
        let (sw, _) = run_rv32(|a| {
            a.li(Reg::A0, 0);
            a.li(Reg::T0, body as i64);
            let top = a.label();
            a.bind(top);
            a.addi(Reg::A0, Reg::A0, 1);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
        });
        assert_eq!(hw.reg(Reg::A0), body);
        assert_eq!(sw.reg(Reg::A0), body);
        assert!(hw.cycles().get() + 2 * body < sw.cycles().get());
    }

    #[test]
    fn nested_hardware_loops() {
        let (c, _) = run_rv32(|a| {
            a.li(Reg::A0, 0);
            a.lp_counti(1, 10);
            let (s1, e1) = (a.label(), a.label());
            a.lp_starti(1, s1);
            a.lp_endi(1, e1);
            a.bind(s1);
            a.lp_counti(0, 10);
            let (s0, e0) = (a.label(), a.label());
            a.lp_starti(0, s0);
            a.lp_endi(0, e0);
            a.bind(s0);
            a.addi(Reg::A0, Reg::A0, 1);
            a.bind(e0);
            // The two loop end addresses must differ (as in RI5CY).
            a.nop();
            a.bind(e1);
        });
        assert_eq!(c.reg(Reg::A0), 100);
    }

    #[test]
    fn simd_int8_dot_product() {
        let (c, _) = run_rv32(|a| {
            // a = [1, 2, 3, 4], b = [10, 20, 30, 40] (packed bytes)
            a.li(Reg::T0, 0x0403_0201);
            a.li(
                Reg::T1,
                i64::from(10u32 | (20 << 8) | (30 << 16) | (40 << 24)),
            );
            a.li(Reg::A0, 5);
            a.pv_sdotsp_b(Reg::A0, Reg::T0, Reg::T1);
        });
        // 5 + 1*10 + 2*20 + 3*30 + 4*40 = 305
        assert_eq!(c.reg(Reg::A0), 305);
    }

    #[test]
    fn simd_negative_lanes() {
        let (c, _) = run_rv32(|a| {
            // a = [-1, -2, 3, 4]
            let av = (0xFFu32) | (0xFE << 8) | (3 << 16) | (4 << 24);
            a.li(Reg::T0, av as i64);
            let bv = 1u32 | (1 << 8) | (1 << 16) | (1 << 24);
            a.li(Reg::T1, bv as i64);
            a.li(Reg::A0, 0);
            a.pv_sdotsp_b(Reg::A0, Reg::T0, Reg::T1);
            a.pv_add_b(Reg::A1, Reg::T0, Reg::T1);
        });
        assert_eq!(c.reg(Reg::A0), 4); // -1-2+3+4
        let lanes = c.reg(Reg::A1) as u32;
        assert_eq!(lanes & 0xFF, 0); // -1+1
        assert_eq!((lanes >> 8) & 0xFF, 0xFF); // -2+1 = -1
    }

    #[test]
    fn simd_fp16() {
        use crate::fp16::pack2;
        let (c, _) = run_rv32(|a| {
            a.li(Reg::T0, pack2(1.5, 2.0) as i64);
            a.li(Reg::T1, pack2(4.0, 0.5) as i64);
            a.li(Reg::A0, 0);
            a.vfdotpex_s_h(Reg::A0, Reg::T0, Reg::T1);
            a.vfadd_h(Reg::A1, Reg::T0, Reg::T1);
        });
        assert_eq!(f32::from_bits(c.reg(Reg::A0) as u32), 7.0); // 1.5*4 + 2*0.5
        let (lo, hi) = crate::fp16::unpack2(c.reg(Reg::A1) as u32);
        assert_eq!((lo, hi), (5.5, 2.5));
    }

    #[test]
    fn pulp_alu_clip_and_ext() {
        let (c, _) = run_rv32(|a| {
            a.li(Reg::T0, 300);
            a.li(Reg::T1, 127);
            a.p_clip(Reg::A0, Reg::T0, Reg::T1);
            a.li(Reg::T0, -300);
            a.p_clip(Reg::A1, Reg::T0, Reg::T1);
            a.li(Reg::T0, 0xFFFF_8001u32 as i64);
            a.p_exths(Reg::A2, Reg::T0);
            a.p_exthz(Reg::A3, Reg::T0);
        });
        assert_eq!(c.reg(Reg::A0), 127);
        assert_eq!(c.reg(Reg::A1) as u32 as i32, -128);
        assert_eq!(c.reg(Reg::A2) as u32, 0xFFFF_8001);
        assert_eq!(c.reg(Reg::A3), 0x8001);
    }

    #[test]
    fn xpulp_bit_manipulation() {
        let (c, _) = run_rv32(|a| {
            a.li(Reg::T0, 0b1011_0000);
            a.p_cnt(Reg::A0, Reg::T0);
            a.p_ff1(Reg::A1, Reg::T0);
            a.p_fl1(Reg::A2, Reg::T0);
            a.li(Reg::T1, 8);
            a.p_ror(Reg::A3, Reg::T0, Reg::T1);
            a.li(Reg::T2, 0);
            a.p_cnt(Reg::A4, Reg::T2);
            a.p_ff1(Reg::A5, Reg::T2);
        });
        assert_eq!(c.reg(Reg::A0), 3);
        assert_eq!(c.reg(Reg::A1), 4);
        assert_eq!(c.reg(Reg::A2), 7);
        assert_eq!(c.reg(Reg::A3), 0xB000_0000);
        assert_eq!(c.reg(Reg::A4), 0);
        assert_eq!(c.reg(Reg::A5), 32);
    }

    #[test]
    fn simd_extract_insert_shuffle() {
        let (c, _) = run_rv32(|a| {
            // lanes = [1, -2, 3, 4]
            let v = 1u32 | (0xFE << 8) | (3 << 16) | (4 << 24);
            a.li(Reg::T0, v as i64);
            a.li(Reg::T1, 1);
            a.pv_extract_b(Reg::A0, Reg::T0, Reg::T1); // lane 1 = -2, sext
                                                       // insert 0x7F into lane 2
            a.mv(Reg::A1, Reg::T0);
            a.li(Reg::T2, 0x7F);
            a.li(Reg::T3, 2);
            a.pv_insert_b(Reg::A1, Reg::T2, Reg::T3);
            // reverse the lanes: indices [3,2,1,0]
            let idx = 3u32 | (2 << 8) | (1 << 16); // lane3 idx = 0
            a.li(Reg::T4, idx as i64);
            a.pv_shuffle_b(Reg::A2, Reg::T0, Reg::T4);
        });
        assert_eq!(c.reg(Reg::A0) as u32 as i32, -2);
        let inserted = c.reg(Reg::A1) as u32;
        assert_eq!((inserted >> 16) & 0xFF, 0x7F);
        assert_eq!(inserted & 0xFFFF, 0xFE01);
        let shuf = c.reg(Reg::A2) as u32;
        assert_eq!(shuf & 0xFF, 4); // lane0 = old lane3
        assert_eq!((shuf >> 8) & 0xFF, 3);
        assert_eq!((shuf >> 16) & 0xFF, 0xFE);
        assert_eq!((shuf >> 24) & 0xFF, 1);
    }

    #[test]
    fn amo_and_lrsc() {
        let (c, bus) = run_rv64(|a| {
            a.li(Reg::T0, 0x4000);
            a.li(Reg::T1, 10);
            a.sd(Reg::T1, Reg::T0, 0);
            a.li(Reg::T2, 32);
            a.amoadd_d(Reg::A0, Reg::T2, Reg::T0); // old = 10, mem = 42
            a.lr_d(Reg::A1, Reg::T0);
            a.li(Reg::T3, 100);
            a.sc_d(Reg::A2, Reg::T3, Reg::T0); // succeeds -> 0
            a.sc_d(Reg::A3, Reg::T3, Reg::T0); // no reservation -> 1
        });
        assert_eq!(c.reg(Reg::A0), 10);
        assert_eq!(c.reg(Reg::A1), 42);
        assert_eq!(c.reg(Reg::A2), 0);
        assert_eq!(c.reg(Reg::A3), 1);
        assert_eq!(bus.read_u64(0x4000), 100);
    }

    #[test]
    fn csr_cycle_and_instret() {
        let (c, _) = run_rv64(|a| {
            a.csrr(Reg::A0, addr::INSTRET);
            a.nop();
            a.nop();
            a.csrr(Reg::A1, addr::INSTRET);
            a.csrr(Reg::A2, addr::CYCLE);
        });
        assert_eq!(c.reg(Reg::A1) - c.reg(Reg::A0), 3);
        assert!(c.reg(Reg::A2) > 0);
    }

    #[test]
    fn ecall_traps_to_mtvec() {
        let mut a = Asm::new(Xlen::Rv64);
        // handler at 0x100: set a0=77, mret.
        a.li(Reg::T0, 0x100);
        a.csrw(addr::MTVEC, Reg::T0);
        a.ecall();
        a.ebreak();
        let words = a.assemble().unwrap();
        let mut h = Asm::new(Xlen::Rv64);
        h.li(Reg::A0, 77);
        h.csrr(Reg::T1, addr::MEPC);
        h.addi(Reg::T1, Reg::T1, 4);
        h.csrw(addr::MEPC, Reg::T1);
        h.mret();
        let handler = h.assemble().unwrap();
        let mut bus = FlatBus::new(1 << 16);
        bus.load_words(0, &words);
        bus.load_words(0x100, &handler);
        let mut core = Core::cva6();
        core.run(&mut bus, 100_000).unwrap();
        assert_eq!(core.reg(Reg::A0), 77);
        assert!(core.is_halted());
    }

    #[test]
    fn executes_compressed_instructions() {
        // Hand-packed mixed stream: c.li a0, 5 ; c.addi a0, 3 ; c.mv a1, a0 ;
        // 32-bit addi a2, a1, 100 ; c.ebreak.
        let mut bus = FlatBus::new(256);
        let halves: [u16; 3] = [0x4515, 0x050D, 0x85AA];
        let mut bytes = Vec::new();
        for h in halves {
            bytes.extend_from_slice(&h.to_le_bytes());
        }
        bytes.extend_from_slice(
            &crate::encode::encode(&Inst::OpImm {
                op: AluOp::Add,
                rd: Reg::A2,
                rs1: Reg::A1,
                imm: 100,
            })
            .unwrap()
            .to_le_bytes(),
        );
        bytes.extend_from_slice(&0x9002u16.to_le_bytes()); // c.ebreak
        bus.write_bytes(0, &bytes);

        let mut core = Core::cva6();
        core.run(&mut bus, 1000).unwrap();
        assert!(core.is_halted());
        assert_eq!(core.reg(Reg::A0), 8);
        assert_eq!(core.reg(Reg::A1), 8);
        assert_eq!(core.reg(Reg::A2), 108);
        // pc stops on the c.ebreak at byte 10, which advances it by 2.
        assert_eq!(core.pc(), 12);
        assert_eq!(core.instret(), 5);
    }

    #[test]
    fn compressed_jalr_links_pc_plus_2() {
        // c.jalr through t0 must link pc+2, not pc+4.
        let mut bus = FlatBus::new(256);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(
            &crate::encode::encode(&Inst::OpImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::Zero,
                imm: 0x20,
            })
            .unwrap()
            .to_le_bytes(),
        );
        bytes.extend_from_slice(&0x9282u16.to_le_bytes()); // c.jalr t0
        bus.write_bytes(0, &bytes);
        bus.load_words(0x20, &[0x0010_0073]); // ebreak at the target
        let mut core = Core::cva6();
        core.run(&mut bus, 1000).unwrap();
        assert_eq!(core.reg(Reg::Ra), 6, "link = pc(4) + 2");
    }

    #[test]
    fn timer_interrupt_taken_when_enabled() {
        // Main loop spins; the handler sets a flag, clears the interrupt
        // and mret-continues; the loop sees the flag and exits.
        let mut main = Asm::new(Xlen::Rv64);
        main.li(Reg::T0, 0x100);
        main.csrw(addr::MTVEC, Reg::T0);
        main.li(Reg::T0, 1 << 7); // MTIE
        main.csrw(addr::MIE, Reg::T0);
        main.li(Reg::T0, 1 << 3); // MIE
        main.csrw(addr::MSTATUS, Reg::T0);
        let spin = main.label();
        main.bind(spin);
        main.beqz(Reg::A0, spin);
        main.ebreak();
        let mut handler = Asm::new(Xlen::Rv64);
        handler.li(Reg::A0, 1);
        handler.li(Reg::T1, 1 << 7);
        handler.csrr(Reg::T2, addr::MIP);
        handler.xor(Reg::T2, Reg::T2, Reg::T1);
        handler.csrw(addr::MIP, Reg::T2); // clear MTIP
        handler.mret();

        let mut bus = FlatBus::new(1 << 12);
        bus.load_words(0, &main.assemble().unwrap());
        bus.load_words(0x100, &handler.assemble().unwrap());
        let mut core = Core::cva6();
        // Run a few instructions, then the "CLINT" fires.
        for _ in 0..6 {
            core.step(&mut bus).unwrap();
        }
        assert_eq!(core.stats().get("interrupts"), 0);
        core.set_interrupt_pending(7, true);
        core.run(&mut bus, 10_000).unwrap();
        assert!(core.is_halted());
        assert_eq!(core.reg(Reg::A0), 1);
        assert_eq!(core.stats().get("interrupts"), 1);
        // mcause recorded the interrupt.
        assert_eq!(core.csrs().read(addr::MCAUSE), (1 << 63) | 7);
    }

    #[test]
    fn interrupt_masked_when_mie_clear() {
        let mut main = Asm::new(Xlen::Rv64);
        main.li(Reg::T0, 0x100);
        main.csrw(addr::MTVEC, Reg::T0);
        main.li(Reg::T0, 1 << 7);
        main.csrw(addr::MIE, Reg::T0);
        // mstatus.MIE left clear: interrupt must not fire in M-mode.
        for _ in 0..10 {
            main.nop();
        }
        main.ebreak();
        let mut bus = FlatBus::new(1 << 12);
        bus.load_words(0, &main.assemble().unwrap());
        let mut core = Core::cva6();
        core.set_interrupt_pending(7, true);
        core.run(&mut bus, 10_000).unwrap();
        assert!(core.is_halted());
        assert_eq!(core.stats().get("interrupts"), 0);
    }

    #[test]
    fn illegal_instruction_without_handler_errors() {
        let mut bus = FlatBus::new(64);
        bus.load_words(0, &[0xFFFF_FFFF]);
        let mut core = Core::cva6();
        let err = core.run(&mut bus, 100).unwrap_err();
        assert!(matches!(err, RvError::IllegalInstruction { .. }));
    }

    #[test]
    fn xpulp_rejected_on_host() {
        let mut a = Asm::new(Xlen::Rv32);
        a.p_mac(Reg::A0, Reg::A1, Reg::A2);
        let words = a.assemble().unwrap();
        let mut bus = FlatBus::new(64);
        bus.load_words(0, &words);
        let mut core = Core::cva6();
        let err = core.run(&mut bus, 100).unwrap_err();
        assert!(matches!(err, RvError::IllegalInstruction { .. }));
    }

    #[test]
    fn cpi_is_one_on_alu_stream() {
        let (c, _) = run_rv64(|a| {
            for _ in 0..100 {
                a.addi(Reg::T0, Reg::T0, 1);
            }
        });
        // 100 addi + ebreak; all single-cycle on a zero-wait bus.
        assert_eq!(c.cycles().get(), 101);
        assert_eq!(c.instret(), 101);
    }

    #[test]
    fn trace_records_retired_instructions() {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 1);
        a.li(Reg::T1, 2);
        a.add(Reg::A0, Reg::T0, Reg::T1);
        a.ebreak();
        let mut bus = FlatBus::new(1024);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::cva6();
        core.enable_trace(16);
        core.run(&mut bus, 1000).unwrap();
        let t = core.trace();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].pc, 0);
        assert_eq!(t[3].inst, Inst::Ebreak);
        let dis = core.trace_disassembly();
        assert!(dis.contains("add a0, t0, t1"), "{dis}");
        assert!(dis.contains("ebreak"));
    }

    #[test]
    fn trace_ring_keeps_only_the_tail() {
        let mut a = Asm::new(Xlen::Rv64);
        for _ in 0..20 {
            a.nop();
        }
        a.ebreak();
        let mut bus = FlatBus::new(1024);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::cva6();
        core.enable_trace(5);
        core.run(&mut bus, 1000).unwrap();
        let t = core.trace();
        assert_eq!(t.len(), 5);
        assert_eq!(t.last().unwrap().inst, Inst::Ebreak);
        // Oldest retained entry is instruction #16 (pc 64).
        assert_eq!(t[0].pc, 64);
    }

    #[test]
    fn stats_track_activity() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 0x4000);
            a.sd(Reg::Zero, Reg::T0, 0);
            a.ld(Reg::T1, Reg::T0, 0);
            a.add(Reg::T2, Reg::T1, Reg::T1);
        });
        assert_eq!(c.stats().get("loads"), 1);
        assert_eq!(c.stats().get("stores"), 1);
        assert!(c.stats().get("arith_ops") >= 1);
    }

    /// Runs `build` twice on fresh cores, decode cache on and off, and
    /// asserts bit-identical cycles, instret and register state.
    fn assert_decode_neutral(build: impl Fn(&mut Asm)) -> Core {
        let assemble = |build: &dyn Fn(&mut Asm)| {
            let mut a = Asm::new(Xlen::Rv64);
            build(&mut a);
            a.ebreak();
            a.assemble().expect("assemble")
        };
        let words = assemble(&build);
        let run = |decode: bool| {
            let mut bus = FlatBus::new(1 << 16);
            bus.load_words(0, &words);
            let mut core = Core::cva6();
            core.set_decode_cache(decode);
            core.set_reg(Reg::Sp, 0x8000);
            core.run(&mut bus, 1_000_000).expect("run");
            core
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.cycles(), off.cycles(), "cycle-count neutrality");
        assert_eq!(on.instret(), off.instret());
        for r in Reg::ALL {
            assert_eq!(on.reg(r), off.reg(r), "register {r:?}");
        }
        assert_eq!(off.stats().get("decode_hits"), 0);
        on
    }

    #[test]
    fn decode_cache_is_cycle_neutral_on_flat_bus() {
        let on = assert_decode_neutral(|a| {
            a.li(Reg::A0, 1);
            a.li(Reg::T0, 200);
            let top = a.label();
            a.bind(top);
            a.add(Reg::A0, Reg::A0, Reg::T0);
            a.sd(Reg::A0, Reg::Sp, 0);
            a.ld(Reg::A1, Reg::Sp, 0);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
        });
        assert!(on.stats().get("decode_hits") > 500);
    }

    #[test]
    fn fence_i_ticks_invalidation_counter() {
        let (c, _) = run_rv64(|a| {
            a.nop();
            a.fence_i();
            a.nop();
        });
        assert!(c.stats().get("decode_invalidations") >= 1);
    }

    #[test]
    fn self_modifying_code_executes_new_bytes_after_fence_i() {
        // The instruction at address 0 is executed, patched by a store,
        // fence.i'd, and executed again: the second pass must run the new
        // bytes, and the stale decoded entry must be provably dropped.
        let patch = crate::encode::encode(&Inst::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 99,
        })
        .unwrap();
        let mut a = Asm::new(Xlen::Rv64);
        let top = a.label();
        let done = a.label();
        a.bind(top);
        a.addi(Reg::A0, Reg::A0, 1); // patch site, address 0
        a.bnez(Reg::T2, done);
        a.li(Reg::T1, patch as i64);
        a.sw(Reg::T1, Reg::Zero, 0);
        a.fence_i();
        a.li(Reg::T2, 1);
        a.j(top);
        a.bind(done);
        a.ebreak();

        let mut bus = FlatBus::new(1 << 12);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::cva6();
        core.run(&mut bus, 100_000).unwrap();
        assert!(core.is_halted());
        assert_eq!(core.reg(Reg::A0), 100, "1 + patched 99");
        assert!(core.stats().get("decode_invalidations") >= 1);
    }

    #[test]
    fn direct_mapped_index_aliases_resolve_by_tag() {
        // Two code blocks 8 KiB apart alias onto the same decode-cache
        // entries (4096 entries x 2-byte granularity): the pa tag must keep
        // them apart while a loop ping-pongs between the two.
        let mut near = Asm::new(Xlen::Rv64);
        near.addi(Reg::A0, Reg::A0, 1);
        near.ret();
        let mut far = Asm::new(Xlen::Rv64);
        far.addi(Reg::A0, Reg::A0, 7);
        far.ret();
        let mut main = Asm::new(Xlen::Rv64);
        main.li(Reg::T0, 0x4000); // near block, aliases 0x6000 (+8 KiB)
        main.li(Reg::T1, 0x6000);
        main.li(Reg::T2, 50);
        let top = main.label();
        main.bind(top);
        main.inst(Inst::Jalr {
            rd: Reg::Ra,
            rs1: Reg::T0,
            offset: 0,
        });
        main.inst(Inst::Jalr {
            rd: Reg::Ra,
            rs1: Reg::T1,
            offset: 0,
        });
        main.addi(Reg::T2, Reg::T2, -1);
        main.bnez(Reg::T2, top);
        main.ebreak();

        let mut bus = FlatBus::new(1 << 16);
        bus.load_words(0, &main.assemble().unwrap());
        bus.load_words(0x4000, &near.assemble().unwrap());
        bus.load_words(0x6000, &far.assemble().unwrap());
        let mut core = Core::cva6();
        core.run(&mut bus, 1_000_000).unwrap();
        assert_eq!(core.reg(Reg::A0), 50 * 8);
        // The aliasing halves re-miss every iteration; the loop body hits.
        assert!(core.stats().get("decode_hits") > 0);
        assert!(core.stats().get("decode_misses") >= 100);
    }

    #[test]
    fn rvc_mix_is_cycle_neutral_across_entry_boundaries() {
        // Hand-packed stream mixing 16- and 32-bit instructions so that
        // 32-bit words sit at 2-byte offsets, exercising decoded entries at
        // adjacent half-word indices. Run with the cache on and off.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x4515u16.to_le_bytes()); // c.li a0, 5
        bytes.extend_from_slice(
            &crate::encode::encode(&Inst::OpImm {
                op: AluOp::Add,
                rd: Reg::A2,
                rs1: Reg::A0,
                imm: 100,
            })
            .unwrap()
            .to_le_bytes(),
        );
        bytes.extend_from_slice(&0x050Du16.to_le_bytes()); // c.addi a0, 3
        bytes.extend_from_slice(&0x85AAu16.to_le_bytes()); // c.mv a1, a0
                                                           // Loop: addi t0, t0, -1 ; bnez t0, -12 (back to the c.li).
        bytes.extend_from_slice(
            &crate::encode::encode(&Inst::OpImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: -1,
            })
            .unwrap()
            .to_le_bytes(),
        );
        bytes.extend_from_slice(
            &crate::encode::encode(&Inst::Branch {
                cond: crate::inst::BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::Zero,
                offset: -14,
            })
            .unwrap()
            .to_le_bytes(),
        );
        bytes.extend_from_slice(&0x9002u16.to_le_bytes()); // c.ebreak

        let run = |decode: bool| {
            let mut bus = FlatBus::new(1 << 12);
            bus.write_bytes(0x100, &bytes);
            let mut core = Core::cva6();
            core.set_decode_cache(decode);
            core.set_pc(0x100);
            core.set_reg(Reg::T0, 40);
            core.run(&mut bus, 100_000).unwrap();
            core
        };
        let on = run(true);
        let off = run(false);
        assert!(on.is_halted());
        assert_eq!(on.cycles(), off.cycles());
        assert_eq!(on.instret(), off.instret());
        assert_eq!(on.reg(Reg::A0), 8);
        assert_eq!(on.reg(Reg::A1), 8);
        assert_eq!(on.reg(Reg::A2), 105);
        assert!(on.stats().get("decode_hits") > 100);
    }

    /// Writes a Sv39 PTE (`pa` with `flags`) at `at` in flat memory.
    fn write_pte(bus: &mut FlatBus, at: u64, pa: u64, flags: u64) {
        bus.write_bytes(at, &(((pa >> 12) << 10) | flags).to_le_bytes());
    }

    #[test]
    fn micro_tlb_does_not_survive_satp_rewrite() {
        // Two page-table sets map the SAME virtual page to different
        // physical code; after a satp rewrite the fetch µTLB must retranslate
        // rather than serve the stale physical base.
        const PTE_V: u64 = 1 << 0;
        const LEAF: u64 = PTE_V | (1 << 1) | (1 << 3) | (1 << 6); // V|R|X|A
        let mut bus = FlatBus::new(1 << 16);
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::A0, 42);
        a.ebreak();
        bus.load_words(0x3000, &a.assemble().unwrap());
        let mut b = Asm::new(Xlen::Rv64);
        b.li(Reg::A0, 99);
        b.ebreak();
        bus.load_words(0x6000, &b.assemble().unwrap());
        // VA 0x1000: vpn2 = 0, vpn1 = 0, vpn0 = 1.
        for (root, l1, l0, code) in [
            (0x8000u64, 0x9000u64, 0xA000u64, 0x3000u64),
            (0xB000, 0xC000, 0xD000, 0x6000),
        ] {
            write_pte(&mut bus, root, l1, PTE_V);
            write_pte(&mut bus, l1, l0, PTE_V);
            write_pte(&mut bus, l0 + 8, code, LEAF);
        }
        let satp1 = (8u64 << 60) | (0x8000 >> 12);
        let satp2 = (8u64 << 60) | (0xB000 >> 12);

        let mut core = Core::cva6();
        core.set_priv_mode(PrivMode::Supervisor);
        core.csrs_mut().write(addr::SATP, satp1);
        core.set_pc(0x1000);
        core.run(&mut bus, 100_000).unwrap();
        assert_eq!(core.reg(Reg::A0), 42);
        assert!(core.stats().get("itlb_hits") >= 1, "same-page fetches hit");

        core.csrs_mut().write(addr::SATP, satp2);
        core.set_pc(0x1000);
        core.resume();
        core.run(&mut bus, 100_000).unwrap();
        assert_eq!(core.reg(Reg::A0), 99, "stale µTLB served after satp write");
    }

    /// Common Sv39 fixture for the page-straddle tests: code at VA 0x1000
    /// (PA 0x3000), a data page at VA 0x4000 (PA 0x6000), and — only when
    /// `map_second` — a second data page at VA 0x5000 mapped to the
    /// *non-contiguous* PA 0x7000, so a straddling access that translated
    /// only its base address would write the wrong physical bytes. An
    /// M-mode `ebreak` handler at PA 0x2000 catches faults.
    fn straddle_soc(map_second: bool, body: impl FnOnce(&mut Asm)) -> (Core, FlatBus) {
        const PTE_V: u64 = 1 << 0;
        const RWAD: u64 = PTE_V | (1 << 1) | (1 << 2) | (1 << 6) | (1 << 7);
        const XA: u64 = PTE_V | (1 << 1) | (1 << 3) | (1 << 6);
        let mut bus = FlatBus::new(1 << 16);
        let mut a = Asm::new(Xlen::Rv64);
        body(&mut a);
        a.ebreak();
        bus.load_words(0x3000, &a.assemble().unwrap());
        bus.load_words(0x2000, &[crate::encode::encode(&Inst::Ebreak).unwrap()]);
        write_pte(&mut bus, 0x8000, 0x9000, PTE_V);
        write_pte(&mut bus, 0x9000, 0xA000, PTE_V);
        write_pte(&mut bus, 0xA000 + 8, 0x3000, XA);
        write_pte(&mut bus, 0xA000 + 8 * 4, 0x6000, RWAD);
        if map_second {
            write_pte(&mut bus, 0xA000 + 8 * 5, 0x7000, RWAD);
        }
        let mut core = Core::cva6();
        core.csrs_mut().write(addr::MTVEC, 0x2000);
        core.csrs_mut()
            .write(addr::SATP, (8u64 << 60) | (0x8000 >> 12));
        core.set_priv_mode(PrivMode::Supervisor);
        core.set_pc(0x1000);
        core.run(&mut bus, 100_000).unwrap();
        (core, bus)
    }

    #[test]
    fn straddling_store_and_load_translate_each_page() {
        let (core, bus) = straddle_soc(true, |a| {
            a.li(Reg::A1, 0x4FFC);
            a.li(Reg::T0, 0x1122_3344_5566_7788);
            a.sd(Reg::T0, Reg::A1, 0);
            a.ld(Reg::A2, Reg::A1, 0);
        });
        assert!(core.is_halted());
        assert_eq!(core.csrs().read(addr::MCAUSE), 0, "no trap expected");
        assert_eq!(core.reg(Reg::A2), 0x1122_3344_5566_7788);
        // The low half lands at the end of PA 0x6000's page, the high half
        // at the start of the non-contiguous PA 0x7000 — not at PA 0x7000-4.
        assert_eq!(bus.read_u32(0x6FFC), 0x5566_7788);
        assert_eq!(bus.read_u32(0x7000), 0x1122_3344);
    }

    #[test]
    fn straddling_load_faults_on_the_second_page() {
        let (core, _) = straddle_soc(false, |a| {
            a.li(Reg::A1, 0x4FFC);
            a.ld(Reg::A2, Reg::A1, 0);
        });
        assert!(core.is_halted(), "fault must reach the M-mode handler");
        assert_eq!(
            core.csrs().read(addr::MCAUSE),
            TrapCause::LoadPageFault.code()
        );
        // tval reports the first byte on the *faulting* page, not the base.
        assert_eq!(core.csrs().read(addr::MTVAL), 0x5000);
    }

    #[test]
    fn straddling_store_faults_without_partial_commit() {
        let (core, bus) = straddle_soc(false, |a| {
            a.li(Reg::A1, 0x4FFC);
            a.li(Reg::T0, -1);
            a.sd(Reg::T0, Reg::A1, 0);
        });
        assert!(core.is_halted());
        assert_eq!(
            core.csrs().read(addr::MCAUSE),
            TrapCause::StorePageFault.code()
        );
        assert_eq!(core.csrs().read(addr::MTVAL), 0x5000);
        // Both pages translate before any byte is written: the mapped first
        // page must be untouched even though only the second page faulted.
        assert_eq!(bus.read_u32(0x6FFC), 0);
    }

    #[test]
    fn straddling_amo_translates_both_pages() {
        let (core, bus) = straddle_soc(true, |a| {
            a.li(Reg::A1, 0x4FFC);
            a.li(Reg::T0, 1);
            a.amoadd_d(Reg::A2, Reg::T0, Reg::A1);
            a.amoadd_d(Reg::A3, Reg::T0, Reg::A1);
        });
        assert!(core.is_halted());
        assert_eq!(core.reg(Reg::A2), 0, "first AMO reads the initial zero");
        assert_eq!(core.reg(Reg::A3), 1, "second AMO observes the first");
        assert_eq!(bus.read_u32(0x6FFC), 2);
        assert_eq!(bus.read_u32(0x7000), 0);
    }

    #[test]
    fn straddling_amo_faults_on_the_second_page() {
        let (core, bus) = straddle_soc(false, |a| {
            a.li(Reg::A1, 0x4FFC);
            a.li(Reg::T0, 1);
            a.amoadd_d(Reg::A2, Reg::T0, Reg::A1);
        });
        assert!(core.is_halted());
        assert_eq!(
            core.csrs().read(addr::MCAUSE),
            TrapCause::LoadPageFault.code(),
            "the AMO's read phase touches the unmapped page first"
        );
        assert_eq!(core.csrs().read(addr::MTVAL), 0x5000);
        assert_eq!(bus.read_u32(0x6FFC), 0, "no partial commit");
    }

    #[test]
    fn hpm_counts_taken_branches_exactly() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 7); // HpmEvent::TakenBranch
            a.csrw(addr::MHPMEVENT3, Reg::T0);
            a.li(Reg::T0, 5);
            let top = a.label();
            a.bind(top);
            a.addi(Reg::T0, Reg::T0, -1);
            a.bnez(Reg::T0, top);
            a.csrr(Reg::A0, addr::MHPMCOUNTER3);
        });
        // 5 loop iterations: bnez taken 4 times, falls through on the last.
        assert_eq!(c.reg(Reg::A0), 4);
        // No taken branches after the read, so the guest-visible value must
        // equal the simulator-side counter — the cross-check invariant.
        assert_eq!(c.stats().get("taken_branches"), 4);
    }

    #[test]
    fn hpm_counter_write_reanchors() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 9); // HpmEvent::Load
            a.csrw(addr::MHPMEVENT3 + 1, Reg::T0); // mhpmevent4
            a.ld(Reg::T1, Reg::Sp, 0);
            a.ld(Reg::T1, Reg::Sp, 0);
            a.li(Reg::T0, 100);
            a.csrw(addr::MHPMCOUNTER3 + 1, Reg::T0); // mhpmcounter4
            a.ld(Reg::T1, Reg::Sp, 0);
            a.csrr(Reg::A0, addr::MHPMCOUNTER3 + 1);
        });
        assert_eq!(c.reg(Reg::A0), 101, "write sets base; one load after");
    }

    #[test]
    fn hpm_mcountinhibit_freezes_and_resumes() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 9); // HpmEvent::Load
            a.csrw(addr::MHPMEVENT3, Reg::T0);
            a.ld(Reg::T1, Reg::Sp, 0);
            a.li(Reg::T0, 1 << 3);
            a.csrw(addr::MCOUNTINHIBIT, Reg::T0); // freeze hpmcounter3
            a.ld(Reg::T1, Reg::Sp, 0);
            a.ld(Reg::T1, Reg::Sp, 0);
            a.csrr(Reg::A0, addr::MHPMCOUNTER3); // frozen at 1
            a.csrw(addr::MCOUNTINHIBIT, Reg::Zero); // thaw
            a.ld(Reg::T1, Reg::Sp, 0);
            a.csrr(Reg::A1, addr::MHPMCOUNTER3); // resumes from 1
        });
        assert_eq!(c.reg(Reg::A0), 1, "inhibited counter must not advance");
        assert_eq!(c.reg(Reg::A1), 2, "thawed counter resumes from frozen");
    }

    #[test]
    fn hpm_selector_change_preserves_value() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 9); // HpmEvent::Load
            a.csrw(addr::MHPMEVENT3, Reg::T0);
            a.ld(Reg::T1, Reg::Sp, 0);
            a.ld(Reg::T1, Reg::Sp, 0);
            a.ld(Reg::T1, Reg::Sp, 0);
            a.li(Reg::T0, 10); // switch to HpmEvent::Store
            a.csrw(addr::MHPMEVENT3, Reg::T0);
            a.sd(Reg::T1, Reg::Sp, 8);
            a.csrr(Reg::A0, addr::MHPMCOUNTER3);
        });
        // 3 loads carried over, then 1 store under the new selector.
        assert_eq!(c.reg(Reg::A0), 4);
    }

    #[test]
    fn hpm_counts_traps_and_selector_zero_reads_zero() {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 0x100);
        a.csrw(addr::MTVEC, Reg::T0);
        a.li(Reg::T0, 8); // HpmEvent::Trap
        a.csrw(addr::MHPMEVENT3 + 2, Reg::T0); // mhpmevent5
        a.ecall();
        a.ecall();
        a.csrr(Reg::A1, addr::MHPMCOUNTER3 + 2); // mhpmcounter5
        a.csrr(Reg::A2, addr::MHPMCOUNTER3 + 3); // mhpmevent6 = 0 -> always 0
        a.ebreak();
        let words = a.assemble().unwrap();
        let mut h = Asm::new(Xlen::Rv64);
        h.csrr(Reg::T1, addr::MEPC);
        h.addi(Reg::T1, Reg::T1, 4);
        h.csrw(addr::MEPC, Reg::T1);
        h.mret();
        let handler = h.assemble().unwrap();
        let mut bus = FlatBus::new(1 << 16);
        bus.load_words(0, &words);
        bus.load_words(0x100, &handler);
        let mut core = Core::cva6();
        core.run(&mut bus, 100_000).unwrap();
        assert!(core.is_halted());
        assert_eq!(core.reg(Reg::A1), 2, "two ecalls, two synchronous traps");
        assert_eq!(core.reg(Reg::A2), 0, "event 0 is the no-event selector");
        assert_eq!(core.stats().get("traps"), 2);
    }

    #[test]
    fn hpm_user_shadow_write_is_illegal() {
        // Writing the read-only hpmcounter3 shadow must raise illegal
        // instruction even from M-mode; the trap lands in mtvec's handler,
        // which records mcause and skips the instruction.
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 0x100);
        a.csrw(addr::MTVEC, Reg::T0);
        a.li(Reg::T1, 5);
        a.csrw(addr::HPMCOUNTER3, Reg::T1); // illegal: read-only shadow
        a.ebreak();
        let words = a.assemble().unwrap();
        let mut h = Asm::new(Xlen::Rv64);
        h.csrr(Reg::A0, addr::MCAUSE);
        h.csrr(Reg::T1, addr::MEPC);
        h.addi(Reg::T1, Reg::T1, 4);
        h.csrw(addr::MEPC, Reg::T1);
        h.mret();
        let handler = h.assemble().unwrap();
        let mut bus = FlatBus::new(1 << 16);
        bus.load_words(0, &words);
        bus.load_words(0x100, &handler);
        let mut core = Core::cva6();
        core.run(&mut bus, 100_000).unwrap();
        assert!(core.is_halted());
        assert_eq!(
            core.reg(Reg::A0),
            TrapCause::IllegalInstruction.code(),
            "CSR write to a read-only counter shadow must trap"
        );
    }

    #[test]
    fn hpm_user_shadow_reads_match_machine_counter() {
        let (c, _) = run_rv64(|a| {
            a.li(Reg::T0, 9); // HpmEvent::Load
            a.csrw(addr::MHPMEVENT3, Reg::T0);
            a.ld(Reg::T1, Reg::Sp, 0);
            a.csrr(Reg::A0, addr::MHPMCOUNTER3);
            a.csrr(Reg::A1, addr::HPMCOUNTER3);
        });
        // mcounteren resets to all-ones, so the unprivileged shadow mirrors
        // the machine counter (and M-mode may always read it).
        assert_eq!(c.reg(Reg::A0), 1);
        assert_eq!(c.reg(Reg::A1), 1);
    }

    #[test]
    fn hpm_counts_hw_loop_iterations() {
        let (c, _) = run_rv32(|a| {
            a.li(Reg::T0, 12); // HpmEvent::HwLoopIter
            a.csrw(addr::MHPMEVENT3, Reg::T0);
            a.li(Reg::A0, 0);
            a.lp_counti(0, 6);
            let (s, e) = (a.label(), a.label());
            a.lp_starti(0, s);
            a.lp_endi(0, e);
            a.bind(s);
            a.addi(Reg::A0, Reg::A0, 1);
            a.bind(e);
            a.csrr(Reg::A1, addr::MHPMCOUNTER3);
        });
        assert_eq!(c.reg(Reg::A0), 6);
        // 5 back-edges for 6 iterations.
        assert_eq!(c.reg(Reg::A1), 5);
        assert_eq!(c.stats().get("hwloop_iters"), 5);
    }
}
