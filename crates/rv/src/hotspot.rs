//! Hot-spot reporting: renders a [`PcProfile`] collected by a core into a
//! human-readable table with disassembly, and aggregates retire counts per
//! opcode mnemonic.
//!
//! The profile stores the raw instruction word per PC (recording never
//! formats strings); decoding and formatting happen only here, at report
//! time.

use crate::disasm::disassemble;
use crate::inst::{Inst, Xlen};
use hulkv_sim::PcProfile;
use std::collections::BTreeMap;

fn decode_word(word: u32, xlen: Xlen, xpulp: bool) -> Option<Inst> {
    if word & 3 != 3 {
        crate::compressed::expand(word as u16, xlen)
    } else {
        crate::decode::decode(word, xlen, xpulp)
    }
}

/// Formats the `n` hottest PCs as a table: cycles, share of total,
/// retire count, and disassembly.
pub fn hotspot_report(profile: &PcProfile, xlen: Xlen, xpulp: bool, n: usize) -> String {
    let total = profile.total_cycles().max(1) as f64;
    let mut out = format!(
        "hot spots ({} PCs, {} retired, {} cycles)\n{:>12} {:>10} {:>6} {:>8}  {}\n",
        profile.len(),
        profile.total_retired(),
        profile.total_cycles(),
        "pc",
        "cycles",
        "%",
        "count",
        "instruction",
    );
    for (pc, s) in profile.top(n) {
        let text = decode_word(s.word, xlen, xpulp)
            .map(|i| disassemble(&i))
            .unwrap_or_else(|| format!(".word {:#010x}", s.word));
        out.push_str(&format!(
            "{:#12x} {:>10} {:>5.1}% {:>8}  {}\n",
            pc,
            s.cycles,
            100.0 * s.cycles as f64 / total,
            s.count,
            text,
        ));
    }
    out
}

/// Retire counts aggregated per opcode mnemonic (first disassembly token).
pub fn opcode_histogram(profile: &PcProfile, xlen: Xlen, xpulp: bool) -> BTreeMap<String, u64> {
    let mut hist = BTreeMap::new();
    for (_, s) in profile.iter() {
        let op = decode_word(s.word, xlen, xpulp)
            .map(|i| {
                let text = disassemble(&i);
                text.split_whitespace().next().unwrap_or("?").to_owned()
            })
            .unwrap_or_else(|| "illegal".to_owned());
        *hist.entry(op).or_insert(0) += s.count;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{Core, FlatBus};
    use crate::{Asm, Reg};

    fn profiled_loop() -> (Core, PcProfile) {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, 50);
        let top = a.label();
        a.bind(top);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::cva6();
        core.enable_profile();
        core.run(&mut bus, 100_000).unwrap();
        let p = core.take_profile().unwrap();
        (core, p)
    }

    #[test]
    fn profile_attributes_cycles_to_the_loop_body() {
        let (core, p) = profiled_loop();
        assert_eq!(p.total_cycles(), core.cycles().get());
        assert_eq!(p.total_retired(), core.instret());
        // The two loop instructions retire 50 times each and dominate.
        let top = p.top(2);
        assert!(top[0].1.count >= 50, "{:?}", top);
    }

    #[test]
    fn report_contains_disassembly_and_totals() {
        let (_, p) = profiled_loop();
        let report = hotspot_report(&p, Xlen::Rv64, false, 5);
        assert!(report.contains("addi"), "{report}");
        assert!(report.contains("%"), "{report}");
    }

    #[test]
    fn opcode_histogram_counts_retires_per_mnemonic() {
        let (core, p) = profiled_loop();
        let hist = opcode_histogram(&p, Xlen::Rv64, false);
        assert_eq!(hist.values().sum::<u64>(), core.instret());
        assert!(hist.get("addi").copied().unwrap_or(0) >= 50, "{hist:?}");
    }

    #[test]
    fn profiling_off_by_default_and_removable() {
        let mut core = Core::cva6();
        assert!(core.profile().is_none());
        core.enable_profile();
        assert!(core.profile().is_some());
        core.take_profile();
        assert!(core.profile().is_none());
    }
}
