//! IEEE 754 binary16 (half-precision) conversion helpers.
//!
//! The PMCA's FPUs support FP16 with SIMD: two half-precision lanes packed
//! in a 32-bit integer register, as in the RI5CY "smallFloat" extension.
//! The interpreter computes in `f32` and converts at the register boundary,
//! which matches hardware that widens internally, rounds-to-nearest-even on
//! the way out.

/// Converts an IEEE 754 binary16 bit pattern to `f32`.
///
/// # Example
///
/// ```
/// use hulkv_rv::fp16::f16_to_f32;
///
/// assert_eq!(f16_to_f32(0x3C00), 1.0);
/// assert_eq!(f16_to_f32(0xC000), -2.0);
/// assert!(f16_to_f32(0x7C00).is_infinite());
/// ```
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = (bits >> 15) as u32;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let frac = (bits & 0x3FF) as u32;
    let out = match exp {
        0 => {
            if frac == 0 {
                sign << 31
            } else {
                // Subnormal: renormalize.
                let mut e = 127 - 15 + 1;
                let mut f = frac;
                while f & 0x400 == 0 {
                    f <<= 1;
                    e -= 1;
                }
                (sign << 31) | ((e as u32) << 23) | ((f & 0x3FF) << 13)
            }
        }
        0x1F => (sign << 31) | 0x7F80_0000 | (frac << 13),
        _ => (sign << 31) | ((exp + 127 - 15) << 23) | (frac << 13),
    };
    f32::from_bits(out)
}

/// Converts an `f32` to the nearest IEEE 754 binary16 bit pattern
/// (round-to-nearest-even, overflow to infinity).
///
/// # Example
///
/// ```
/// use hulkv_rv::fp16::{f16_to_f32, f32_to_f16};
///
/// assert_eq!(f32_to_f16(1.0), 0x3C00);
/// assert_eq!(f16_to_f32(f32_to_f16(0.333_f32)), 0.33300781);
/// ```
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 31) as u16) << 15;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        let f = if frac != 0 { 0x200 } else { 0 };
        return sign | 0x7C00 | f;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal range: round the 23-bit fraction to 10 bits.
        let mut f = frac >> 13;
        let rem = frac & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && f & 1 == 1) {
            f += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if f == 0x400 {
            f = 0;
            e += 1;
            if e >= 0x1F {
                return sign | 0x7C00;
            }
        }
        return sign | ((e as u16) << 10) | (f as u16);
    }
    if unbiased >= -24 {
        // Subnormal half.
        let shift = (-14 - unbiased) as u32;
        let mant = 0x80_0000 | frac;
        let total_shift = 13 + shift;
        let mut f = mant >> total_shift;
        let rem = mant & ((1 << total_shift) - 1);
        let half = 1u32 << (total_shift - 1);
        if rem > half || (rem == half && f & 1 == 1) {
            f += 1;
        }
        return sign | f as u16;
    }
    sign // underflow to zero
}

/// Splits a 32-bit register into two f16 lanes `(low, high)` as `f32`.
pub fn unpack2(reg: u32) -> (f32, f32) {
    (f16_to_f32(reg as u16), f16_to_f32((reg >> 16) as u16))
}

/// Packs two `f32` lanes back into a 32-bit register (low, high).
pub fn pack2(lo: f32, hi: f32) -> u32 {
    (f32_to_f16(lo) as u32) | ((f32_to_f16(hi) as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1024.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "{v}");
        }
    }

    #[test]
    fn special_values() {
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xFC00);
        assert!(f16_to_f32(0x7E00).is_nan());
        assert!(f32_to_f16(f32::NAN) & 0x7C00 == 0x7C00);
        assert!(f32_to_f16(f32::NAN) & 0x3FF != 0);
        // Negative zero preserves sign.
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f16_to_f32(0x8000), 0.0);
        assert!(f16_to_f32(0x8000).is_sign_negative());
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(f32_to_f16(70000.0), 0x7C00);
        assert_eq!(f32_to_f16(-70000.0), 0xFC00);
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal half: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16(tiny), 1);
        assert_eq!(f16_to_f32(1), tiny);
        // Largest subnormal.
        let big_sub = f16_to_f32(0x03FF);
        assert!(big_sub < 2.0f32.powi(-14));
        assert_eq!(f32_to_f16(big_sub), 0x03FF);
        // Underflow to zero.
        assert_eq!(f32_to_f16(1e-10), 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0009765625 = 1 + 2^-10 exactly representable; the halfway point
        // between it and 1.0 rounds to even (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16(halfway), 0x3C00);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f32_to_f16(above), 0x3C01);
    }

    #[test]
    fn pack_unpack() {
        let r = pack2(1.5, -2.0);
        let (lo, hi) = unpack2(r);
        assert_eq!(lo, 1.5);
        assert_eq!(hi, -2.0);
    }

    #[test]
    fn all_f16_bit_patterns_round_trip_via_f32() {
        // Every finite f16 is exactly representable in f32.
        for bits in 0..=0xFFFFu16 {
            let v = f16_to_f32(bits);
            if v.is_nan() {
                continue;
            }
            assert_eq!(f32_to_f16(v), bits, "bits {bits:#06x} -> {v}");
        }
    }
}
