//! IEEE 754 binary16 (half-precision) conversion helpers.
//!
//! The PMCA's FPUs support FP16 with SIMD: two half-precision lanes packed
//! in a 32-bit integer register, as in the RI5CY "smallFloat" extension.
//! The interpreter computes in `f32` and converts at the register boundary,
//! which matches hardware that widens internally, rounds-to-nearest-even on
//! the way out.

/// Converts an IEEE 754 binary16 bit pattern to `f32`.
///
/// # Example
///
/// ```
/// use hulkv_rv::fp16::f16_to_f32;
///
/// assert_eq!(f16_to_f32(0x3C00), 1.0);
/// assert_eq!(f16_to_f32(0xC000), -2.0);
/// assert!(f16_to_f32(0x7C00).is_infinite());
/// ```
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = (bits >> 15) as u32;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let frac = (bits & 0x3FF) as u32;
    let out = match exp {
        0 => {
            if frac == 0 {
                sign << 31
            } else {
                // Subnormal: renormalize.
                let mut e = 127 - 15 + 1;
                let mut f = frac;
                while f & 0x400 == 0 {
                    f <<= 1;
                    e -= 1;
                }
                (sign << 31) | ((e as u32) << 23) | ((f & 0x3FF) << 13)
            }
        }
        0x1F => (sign << 31) | 0x7F80_0000 | (frac << 13),
        _ => (sign << 31) | ((exp + 127 - 15) << 23) | (frac << 13),
    };
    f32::from_bits(out)
}

/// Converts an `f32` to the nearest IEEE 754 binary16 bit pattern
/// (round-to-nearest-even, overflow to infinity).
///
/// # Example
///
/// ```
/// use hulkv_rv::fp16::{f16_to_f32, f32_to_f16};
///
/// assert_eq!(f32_to_f16(1.0), 0x3C00);
/// assert_eq!(f16_to_f32(f32_to_f16(0.333_f32)), 0.33300781);
/// ```
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 31) as u16) << 15;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;

    if exp == 0xFF {
        if frac != 0 {
            // NaN: canonicalize to the RISC-V quiet NaN (positive, MSB-only
            // payload) rather than propagating the input sign or payload.
            return 0x7E00;
        }
        return sign | 0x7C00;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal range: round the 23-bit fraction to 10 bits.
        let mut f = frac >> 13;
        let rem = frac & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && f & 1 == 1) {
            f += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if f == 0x400 {
            f = 0;
            e += 1;
            if e >= 0x1F {
                return sign | 0x7C00;
            }
        }
        return sign | ((e as u16) << 10) | (f as u16);
    }
    if unbiased >= -25 {
        // Subnormal half. The -25 exponent is below the smallest subnormal
        // (2^-24) but not below half of it: anything strictly between
        // 2^-25 and 2^-24 must round up to the smallest subnormal, and
        // exactly 2^-25 ties to even (zero). The shift-with-sticky below
        // computes both cases; only at -26 and beyond is the result a
        // clean underflow to zero.
        let shift = (-14 - unbiased) as u32;
        let mant = 0x80_0000 | frac;
        let total_shift = 13 + shift;
        let mut f = mant >> total_shift;
        let rem = mant & ((1 << total_shift) - 1);
        let half = 1u32 << (total_shift - 1);
        if rem > half || (rem == half && f & 1 == 1) {
            f += 1;
        }
        return sign | f as u16;
    }
    sign // underflow to zero
}

/// Splits a 32-bit register into two f16 lanes `(low, high)` as `f32`.
pub fn unpack2(reg: u32) -> (f32, f32) {
    (f16_to_f32(reg as u16), f16_to_f32((reg >> 16) as u16))
}

/// Packs two `f32` lanes back into a 32-bit register (low, high).
pub fn pack2(lo: f32, hi: f32) -> u32 {
    (f32_to_f16(lo) as u32) | ((f32_to_f16(hi) as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1024.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "{v}");
        }
    }

    #[test]
    fn special_values() {
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xFC00);
        assert!(f16_to_f32(0x7E00).is_nan());
        assert!(f32_to_f16(f32::NAN) & 0x7C00 == 0x7C00);
        assert!(f32_to_f16(f32::NAN) & 0x3FF != 0);
        // Negative zero preserves sign.
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f16_to_f32(0x8000), 0.0);
        assert!(f16_to_f32(0x8000).is_sign_negative());
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(f32_to_f16(70000.0), 0x7C00);
        assert_eq!(f32_to_f16(-70000.0), 0xFC00);
    }

    #[test]
    fn subnormals() {
        // Smallest positive subnormal half: 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16(tiny), 1);
        assert_eq!(f16_to_f32(1), tiny);
        // Largest subnormal.
        let big_sub = f16_to_f32(0x03FF);
        assert!(big_sub < 2.0f32.powi(-14));
        assert_eq!(f32_to_f16(big_sub), 0x03FF);
        // Underflow to zero.
        assert_eq!(f32_to_f16(1e-10), 0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1.0009765625 = 1 + 2^-10 exactly representable; the halfway point
        // between it and 1.0 rounds to even (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16(halfway), 0x3C00);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f32_to_f16(above), 0x3C01);
    }

    #[test]
    fn pack_unpack() {
        let r = pack2(1.5, -2.0);
        let (lo, hi) = unpack2(r);
        assert_eq!(lo, 1.5);
        assert_eq!(hi, -2.0);
    }

    /// Bit-exact reference conversion, written to share no structure with
    /// the implementation under test: instead of shifting and rounding, it
    /// searches the (monotone in bit pattern) lattice of f16 magnitudes for
    /// the value nearest to the input, breaking ties to the even pattern.
    /// Every finite f16 is exact in f64, and near a tie the two candidates
    /// are within a factor of two of the input, so the f64 subtractions
    /// below are exact where it matters (Sterbenz).
    fn ref_f32_to_f16(v: f32) -> u16 {
        if v.is_nan() {
            return 0x7E00; // RISC-V canonical NaN
        }
        let sign = ((v.to_bits() >> 31) as u16) << 15;
        let a = v.abs() as f64;
        // Magnitude lattice: bit patterns 0..=0x7C00 are monotonically
        // increasing values, with 0x7C00 = +inf standing in for "overflow"
        // (its tie midpoint against the largest normal is 65520).
        let val = |bits: u16| -> f64 {
            if bits == 0x7C00 {
                65536.0 // the would-be next normal, for midpoint purposes
            } else {
                f16_to_f32(bits) as f64
            }
        };
        let (mut lo, mut hi) = (0u16, 0x7C00u16);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if val(mid) <= a {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (dl, dh) = (a - val(lo), val(hi) - a);
        let pick = if dl < dh {
            lo
        } else if dh < dl {
            hi
        } else if lo & 1 == 0 {
            lo
        } else {
            hi
        };
        if pick == 0x7C00 {
            return sign | 0x7C00;
        }
        sign | pick
    }

    #[test]
    fn f32_to_f16_matches_soft_float_reference() {
        use hulkv_sim::SplitMix64;
        let mut rng = SplitMix64::new(0xF16_F16);
        let check = |bits: u32| {
            let v = f32::from_bits(bits);
            assert_eq!(
                f32_to_f16(v),
                ref_f32_to_f16(v),
                "bits {bits:#010x} ({v:e})"
            );
        };
        // Uniform over all f32 bit patterns (mostly out-of-range: exercises
        // overflow, underflow, NaN payloads and both signs).
        for _ in 0..20_000 {
            check(rng.next_u32());
        }
        // Concentrated where f16 has structure: exponents spanning the
        // subnormal boundary (2^-26 .. 2^-13) and the overflow edge, with
        // random significands so halfway cases and sticky bits appear.
        for _ in 0..20_000 {
            let exp = 127 - 26 + rng.next_below(20) as u32;
            let frac = rng.next_u32() & 0x7F_FFFF;
            let sign = rng.next_u32() & 0x8000_0000;
            check(sign | (exp << 23) | frac);
        }
        for _ in 0..10_000 {
            // Around the largest normal half (65504) and the inf midpoint.
            let v = 65000.0 + rng.next_f64() as f32 * 1000.0;
            check(v.to_bits());
        }
        // Directed edges the sweep that motivated this test found: values
        // in (2^-25, 2^-24) must round *up* to the smallest subnormal, the
        // exact midpoint 2^-25 ties to even (zero), and NaNs canonicalize.
        assert_eq!(f32_to_f16(2.0f32.powi(-25)), 0);
        assert_eq!(f32_to_f16(-(2.0f32.powi(-25))), 0x8000);
        assert_eq!(f32_to_f16(f32::from_bits((102 << 23) | 1)), 1);
        assert_eq!(f32_to_f16(2.0f32.powi(-25) * 1.5), 1);
        assert_eq!(f32_to_f16(f32::NAN), 0x7E00);
        assert_eq!(f32_to_f16(-f32::NAN), 0x7E00);
        assert_eq!(f32_to_f16(f32::from_bits(0xFFC0_0001)), 0x7E00);
    }

    #[test]
    fn all_f16_bit_patterns_round_trip_via_f32() {
        // Every finite f16 is exactly representable in f32.
        for bits in 0..=0xFFFFu16 {
            let v = f16_to_f32(bits);
            if v.is_nan() {
                continue;
            }
            assert_eq!(f32_to_f16(v), bits, "bits {bits:#06x} -> {v}");
        }
    }
}
