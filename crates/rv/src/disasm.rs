//! Disassembly: [`Inst`] → assembly text.
//!
//! The output follows GNU `objdump` conventions for standard instructions
//! and the PULP toolchain's spelling for Xpulp (`p.lw rd, imm(rs1!)`,
//! `pv.sdotsp.b`, `lp.counti`, …). [`crate::parse`] accepts everything
//! this module emits, and the property tests round-trip the two.

use crate::inst::*;

fn load_mnemonic(w: LoadWidth) -> &'static str {
    match w {
        LoadWidth::B => "lb",
        LoadWidth::H => "lh",
        LoadWidth::W => "lw",
        LoadWidth::D => "ld",
        LoadWidth::Bu => "lbu",
        LoadWidth::Hu => "lhu",
        LoadWidth::Wu => "lwu",
    }
}

fn store_mnemonic(w: StoreWidth) -> &'static str {
    match w {
        StoreWidth::B => "sb",
        StoreWidth::H => "sh",
        StoreWidth::W => "sw",
        StoreWidth::D => "sd",
    }
}

fn branch_mnemonic(c: BranchCond) -> &'static str {
    match c {
        BranchCond::Eq => "beq",
        BranchCond::Ne => "bne",
        BranchCond::Lt => "blt",
        BranchCond::Ge => "bge",
        BranchCond::Ltu => "bltu",
        BranchCond::Geu => "bgeu",
    }
}

fn alu_mnemonic(op: AluOp, imm: bool, word: bool) -> String {
    let base = match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
    };
    let mut s = String::from(base);
    if imm {
        s.push('i');
    }
    if word {
        s.push('w');
    }
    s
}

fn muldiv_mnemonic(op: MulDivOp, word: bool) -> String {
    let base = match op {
        MulDivOp::Mul => "mul",
        MulDivOp::Mulh => "mulh",
        MulDivOp::Mulhsu => "mulhsu",
        MulDivOp::Mulhu => "mulhu",
        MulDivOp::Div => "div",
        MulDivOp::Divu => "divu",
        MulDivOp::Rem => "rem",
        MulDivOp::Remu => "remu",
    };
    if word {
        format!("{base}w")
    } else {
        base.to_string()
    }
}

fn fp_suffix(fmt: FpFmt) -> &'static str {
    match fmt {
        FpFmt::S => "s",
        FpFmt::D => "d",
    }
}

fn simd_op_name(op: SimdOp) -> &'static str {
    match op {
        SimdOp::Add => "add",
        SimdOp::Sub => "sub",
        SimdOp::Avg => "avg",
        SimdOp::Avgu => "avgu",
        SimdOp::Min => "min",
        SimdOp::Minu => "minu",
        SimdOp::Max => "max",
        SimdOp::Maxu => "maxu",
        SimdOp::Srl => "srl",
        SimdOp::Sra => "sra",
        SimdOp::And => "and",
        SimdOp::Or => "or",
        SimdOp::Xor => "xor",
        SimdOp::Abs => "abs",
        SimdOp::Dotup => "dotup",
        SimdOp::Dotusp => "dotusp",
        SimdOp::Dotsp => "dotsp",
        SimdOp::Sdotup => "sdotup",
        SimdOp::Sdotusp => "sdotusp",
        SimdOp::Sdotsp => "sdotsp",
        SimdOp::Extract => "extract",
        SimdOp::Insert => "insert",
        SimdOp::Shuffle => "shuffle",
    }
}

/// Renders a decoded instruction as assembly text.
///
/// Pc-relative operands (branches, `jal`, hardware-loop bounds) are shown
/// as signed byte offsets from the instruction (`bne t0, zero, -4`).
///
/// # Example
///
/// ```
/// use hulkv_rv::inst::Xlen;
///
/// let i = hulkv_rv::decode(0x0015_0513, Xlen::Rv64, false).unwrap();
/// assert_eq!(hulkv_rv::disassemble(&i), "addi a0, a0, 1");
/// ```
pub fn disassemble(inst: &Inst) -> String {
    match *inst {
        Inst::Lui { rd, imm } => format!("lui {rd}, {imm}"),
        Inst::Auipc { rd, imm } => format!("auipc {rd}, {imm}"),
        Inst::Jal { rd, offset } => {
            if rd == Reg::Zero {
                format!("j {offset}")
            } else {
                format!("jal {rd}, {offset}")
            }
        }
        Inst::Jalr { rd, rs1, offset } => {
            if rd == Reg::Zero && rs1 == Reg::Ra && offset == 0 {
                "ret".to_string()
            } else {
                format!("jalr {rd}, {offset}({rs1})")
            }
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            format!("{} {rs1}, {rs2}, {offset}", branch_mnemonic(cond))
        }
        Inst::Load {
            width,
            rd,
            rs1,
            offset,
        } => {
            format!("{} {rd}, {offset}({rs1})", load_mnemonic(width))
        }
        Inst::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            format!("{} {rs2}, {offset}({rs1})", store_mnemonic(width))
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            if op == AluOp::Add && rs1 == Reg::Zero {
                format!("li {rd}, {imm}")
            } else if op == AluOp::Add && imm == 0 {
                format!("mv {rd}, {rs1}")
            } else {
                format!("{} {rd}, {rs1}, {imm}", alu_mnemonic(op, true, false))
            }
        }
        Inst::OpImm32 { op, rd, rs1, imm } => {
            format!("{} {rd}, {rs1}, {imm}", alu_mnemonic(op, true, true))
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", alu_mnemonic(op, false, false))
        }
        Inst::Op32 { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", alu_mnemonic(op, false, true))
        }
        Inst::MulDiv { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", muldiv_mnemonic(op, false))
        }
        Inst::MulDiv32 { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", muldiv_mnemonic(op, true))
        }
        Inst::LoadReserved { double, rd, rs1 } => {
            format!("lr.{} {rd}, ({rs1})", if double { "d" } else { "w" })
        }
        Inst::StoreConditional {
            double,
            rd,
            rs1,
            rs2,
        } => {
            format!("sc.{} {rd}, {rs2}, ({rs1})", if double { "d" } else { "w" })
        }
        Inst::Amo {
            op,
            double,
            rd,
            rs1,
            rs2,
        } => {
            let name = match op {
                AmoOp::Swap => "amoswap",
                AmoOp::Add => "amoadd",
                AmoOp::Xor => "amoxor",
                AmoOp::And => "amoand",
                AmoOp::Or => "amoor",
                AmoOp::Min => "amomin",
                AmoOp::Max => "amomax",
                AmoOp::Minu => "amominu",
                AmoOp::Maxu => "amomaxu",
            };
            format!(
                "{name}.{} {rd}, {rs2}, ({rs1})",
                if double { "d" } else { "w" }
            )
        }
        Inst::Fence => "fence".to_string(),
        Inst::FenceI => "fence.i".to_string(),
        Inst::Ecall => "ecall".to_string(),
        Inst::Ebreak => "ebreak".to_string(),
        Inst::Mret => "mret".to_string(),
        Inst::Sret => "sret".to_string(),
        Inst::Wfi => "wfi".to_string(),
        Inst::Csr { op, rd, csr, src } => {
            let (name, suffix) = match (op, src) {
                (CsrOp::Rw, CsrSrc::Reg(_)) => ("csrrw", ""),
                (CsrOp::Rs, CsrSrc::Reg(_)) => ("csrrs", ""),
                (CsrOp::Rc, CsrSrc::Reg(_)) => ("csrrc", ""),
                (CsrOp::Rw, CsrSrc::Imm(_)) => ("csrrw", "i"),
                (CsrOp::Rs, CsrSrc::Imm(_)) => ("csrrs", "i"),
                (CsrOp::Rc, CsrSrc::Imm(_)) => ("csrrc", "i"),
            };
            match src {
                CsrSrc::Reg(rs1) => format!("{name}{suffix} {rd}, {csr:#x}, {rs1}"),
                CsrSrc::Imm(v) => format!("{name}{suffix} {rd}, {csr:#x}, {v}"),
            }
        }
        Inst::FpLoad {
            fmt,
            rd,
            rs1,
            offset,
        } => {
            format!(
                "fl{} {rd}, {offset}({rs1})",
                if fmt == FpFmt::S { "w" } else { "d" }
            )
        }
        Inst::FpStore {
            fmt,
            rs2,
            rs1,
            offset,
        } => {
            format!(
                "fs{} {rs2}, {offset}({rs1})",
                if fmt == FpFmt::S { "w" } else { "d" }
            )
        }
        Inst::FpOp3 {
            fmt,
            op,
            rd,
            rs1,
            rs2,
        } => {
            let name = match op {
                FpOp::Add => "fadd",
                FpOp::Sub => "fsub",
                FpOp::Mul => "fmul",
                FpOp::Div => "fdiv",
                FpOp::Sqrt => "fsqrt",
                FpOp::Min => "fmin",
                FpOp::Max => "fmax",
                FpOp::SgnJ => "fsgnj",
                FpOp::SgnJn => "fsgnjn",
                FpOp::SgnJx => "fsgnjx",
            };
            if op == FpOp::Sqrt {
                format!("{name}.{} {rd}, {rs1}", fp_suffix(fmt))
            } else {
                format!("{name}.{} {rd}, {rs1}, {rs2}", fp_suffix(fmt))
            }
        }
        Inst::FpFma {
            fmt,
            rd,
            rs1,
            rs2,
            rs3,
            negate_product,
            negate_addend,
        } => {
            let name = match (negate_product, negate_addend) {
                (false, false) => "fmadd",
                (false, true) => "fmsub",
                (true, false) => "fnmsub",
                (true, true) => "fnmadd",
            };
            format!("{name}.{} {rd}, {rs1}, {rs2}, {rs3}", fp_suffix(fmt))
        }
        Inst::FpCmp {
            fmt,
            cmp,
            rd,
            rs1,
            rs2,
        } => {
            let name = match cmp {
                FpCmp::Eq => "feq",
                FpCmp::Lt => "flt",
                FpCmp::Le => "fle",
            };
            format!("{name}.{} {rd}, {rs1}, {rs2}", fp_suffix(fmt))
        }
        Inst::FpToInt {
            fmt,
            rd,
            rs1,
            signed,
            wide,
        } => {
            let int = match (wide, signed) {
                (false, true) => "w",
                (false, false) => "wu",
                (true, true) => "l",
                (true, false) => "lu",
            };
            format!("fcvt.{int}.{} {rd}, {rs1}", fp_suffix(fmt))
        }
        Inst::IntToFp {
            fmt,
            rd,
            rs1,
            signed,
            wide,
        } => {
            let int = match (wide, signed) {
                (false, true) => "w",
                (false, false) => "wu",
                (true, true) => "l",
                (true, false) => "lu",
            };
            format!("fcvt.{}.{int} {rd}, {rs1}", fp_suffix(fmt))
        }
        Inst::FpCvt { to, rd, rs1 } => match to {
            FpFmt::S => format!("fcvt.s.d {rd}, {rs1}"),
            FpFmt::D => format!("fcvt.d.s {rd}, {rs1}"),
        },
        Inst::FpMvToInt { fmt, rd, rs1 } => {
            format!(
                "fmv.x.{} {rd}, {rs1}",
                if fmt == FpFmt::S { "w" } else { "d" }
            )
        }
        Inst::FpMvFromInt { fmt, rd, rs1 } => {
            format!(
                "fmv.{}.x {rd}, {rs1}",
                if fmt == FpFmt::S { "w" } else { "d" }
            )
        }
        Inst::LoadPost {
            width,
            rd,
            rs1,
            offset,
        } => {
            format!("p.{} {rd}, {offset}({rs1}!)", load_mnemonic(width))
        }
        Inst::StorePost {
            width,
            rs2,
            rs1,
            offset,
        } => {
            format!("p.{} {rs2}, {offset}({rs1}!)", store_mnemonic(width))
        }
        Inst::Mac {
            rd,
            rs1,
            rs2,
            subtract,
        } => {
            format!(
                "p.{} {rd}, {rs1}, {rs2}",
                if subtract { "msu" } else { "mac" }
            )
        }
        Inst::PulpAlu { op, rd, rs1, rs2 } => {
            let name = match op {
                PulpAluOp::Min => "min",
                PulpAluOp::Max => "max",
                PulpAluOp::Minu => "minu",
                PulpAluOp::Maxu => "maxu",
                PulpAluOp::Abs => "abs",
                PulpAluOp::Exths => "exths",
                PulpAluOp::Exthz => "exthz",
                PulpAluOp::Extbs => "extbs",
                PulpAluOp::Extbz => "extbz",
                PulpAluOp::Clip => "clip",
                PulpAluOp::Cnt => "cnt",
                PulpAluOp::Ff1 => "ff1",
                PulpAluOp::Fl1 => "fl1",
                PulpAluOp::Ror => "ror",
            };
            match op {
                PulpAluOp::Abs
                | PulpAluOp::Exths
                | PulpAluOp::Exthz
                | PulpAluOp::Extbs
                | PulpAluOp::Extbz
                | PulpAluOp::Cnt
                | PulpAluOp::Ff1
                | PulpAluOp::Fl1 => {
                    format!("p.{name} {rd}, {rs1}")
                }
                _ => format!("p.{name} {rd}, {rs1}, {rs2}"),
            }
        }
        Inst::HwLoop {
            op,
            loop_idx,
            value,
            rs1,
        } => match op {
            HwLoopOp::Starti => format!("lp.starti x{loop_idx}, {value}"),
            HwLoopOp::Endi => format!("lp.endi x{loop_idx}, {value}"),
            HwLoopOp::Count => format!("lp.count x{loop_idx}, {rs1}"),
            HwLoopOp::Counti => format!("lp.counti x{loop_idx}, {value}"),
        },
        Inst::Simd {
            op,
            fmt,
            rd,
            rs1,
            rs2,
            scalar_rs2,
        } => {
            let lanes = if fmt == SimdFmt::B { "b" } else { "h" };
            let mode = if scalar_rs2 { ".sc" } else { "" };
            format!("pv.{}{mode}.{lanes} {rd}, {rs1}, {rs2}", simd_op_name(op))
        }
        Inst::SimdFp { op, rd, rs1, rs2 } => {
            let name = match op {
                SimdFpOp::Add => "vfadd.h",
                SimdFpOp::Sub => "vfsub.h",
                SimdFpOp::Mul => "vfmul.h",
                SimdFpOp::Mac => "vfmac.h",
                SimdFpOp::Min => "vfmin.h",
                SimdFpOp::Max => "vfmax.h",
                SimdFpOp::DotpexS => "vfdotpex.s.h",
            };
            format!("{name} {rd}, {rs1}, {rs2}")
        }
    }
}

/// Disassembles a raw word, or formats it as data when undecodable.
///
/// # Example
///
/// ```
/// use hulkv_rv::inst::Xlen;
///
/// assert_eq!(hulkv_rv::disassemble_word(0x0000_0073, Xlen::Rv64, false), "ecall");
/// assert!(hulkv_rv::disassemble_word(0xFFFF_FFFF, Xlen::Rv64, false).starts_with(".word"));
/// ```
pub fn disassemble_word(word: u32, xlen: Xlen, xpulp: bool) -> String {
    match crate::decode::decode(word, xlen, xpulp) {
        Some(inst) => disassemble(&inst),
        None => format!(".word {word:#010x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_forms() {
        let cases: Vec<(Inst, &str)> = vec![
            (
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::Sp,
                    imm: -4,
                },
                "addi a0, sp, -4",
            ),
            (
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::Zero,
                    imm: 7,
                },
                "li a0, 7",
            ),
            (
                Inst::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    imm: 0,
                },
                "mv a0, a1",
            ),
            (
                Inst::Op {
                    op: AluOp::Sub,
                    rd: Reg::T0,
                    rs1: Reg::T1,
                    rs2: Reg::T2,
                },
                "sub t0, t1, t2",
            ),
            (
                Inst::Load {
                    width: LoadWidth::W,
                    rd: Reg::A5,
                    rs1: Reg::Sp,
                    offset: 12,
                },
                "lw a5, 12(sp)",
            ),
            (
                Inst::Store {
                    width: StoreWidth::D,
                    rs2: Reg::A0,
                    rs1: Reg::Sp,
                    offset: 0,
                },
                "sd a0, 0(sp)",
            ),
            (
                Inst::Branch {
                    cond: BranchCond::Ne,
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: -4,
                },
                "bne t0, zero, -4",
            ),
            (
                Inst::Jal {
                    rd: Reg::Zero,
                    offset: 16,
                },
                "j 16",
            ),
            (
                Inst::Jalr {
                    rd: Reg::Zero,
                    rs1: Reg::Ra,
                    offset: 0,
                },
                "ret",
            ),
            (Inst::Ecall, "ecall"),
        ];
        for (inst, text) in cases {
            assert_eq!(disassemble(&inst), text);
        }
    }

    #[test]
    fn xpulp_forms() {
        let cases: Vec<(Inst, &str)> = vec![
            (
                Inst::LoadPost {
                    width: LoadWidth::W,
                    rd: Reg::T5,
                    rs1: Reg::T3,
                    offset: 4,
                },
                "p.lw t5, 4(t3!)",
            ),
            (
                Inst::Mac {
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                    subtract: false,
                },
                "p.mac a0, a1, a2",
            ),
            (
                Inst::Simd {
                    op: SimdOp::Sdotsp,
                    fmt: SimdFmt::B,
                    rd: Reg::T4,
                    rs1: Reg::T5,
                    rs2: Reg::T6,
                    scalar_rs2: false,
                },
                "pv.sdotsp.b t4, t5, t6",
            ),
            (
                Inst::Simd {
                    op: SimdOp::Max,
                    fmt: SimdFmt::B,
                    rd: Reg::T2,
                    rs1: Reg::T1,
                    rs2: Reg::T6,
                    scalar_rs2: true,
                },
                "pv.max.sc.b t2, t1, t6",
            ),
            (
                Inst::HwLoop {
                    op: HwLoopOp::Counti,
                    loop_idx: 0,
                    value: 16,
                    rs1: Reg::Zero,
                },
                "lp.counti x0, 16",
            ),
            (
                Inst::SimdFp {
                    op: SimdFpOp::DotpexS,
                    rd: Reg::A0,
                    rs1: Reg::A1,
                    rs2: Reg::A2,
                },
                "vfdotpex.s.h a0, a1, a2",
            ),
        ];
        for (inst, text) in cases {
            assert_eq!(disassemble(&inst), text);
        }
    }

    #[test]
    fn fp_forms() {
        let fma = Inst::FpFma {
            fmt: FpFmt::S,
            rd: FReg(0),
            rs1: FReg(1),
            rs2: FReg(2),
            rs3: FReg(3),
            negate_product: false,
            negate_addend: false,
        };
        assert_eq!(disassemble(&fma), "fmadd.s f0, f1, f2, f3");
        let cvt = Inst::FpToInt {
            fmt: FpFmt::D,
            rd: Reg::A0,
            rs1: FReg(4),
            signed: true,
            wide: true,
        };
        assert_eq!(disassemble(&cvt), "fcvt.l.d a0, f4");
    }

    #[test]
    fn word_fallback() {
        assert!(disassemble_word(0, Xlen::Rv64, false).starts_with(".word"));
        assert_eq!(disassemble_word(0x0010_0073, Xlen::Rv32, true), "ebreak");
    }

    #[test]
    fn every_decodable_word_disassembles() {
        // Fuzz a pile of words; whatever decodes must render non-empty.
        let mut rng = hulkv_sim::SplitMix64::new(42);
        for _ in 0..20_000 {
            let w = rng.next_u64() as u32;
            for (xlen, xp) in [(Xlen::Rv32, true), (Xlen::Rv64, false)] {
                if let Some(i) = crate::decode::decode(w, xlen, xp) {
                    assert!(!disassemble(&i).is_empty());
                }
            }
        }
    }
}
