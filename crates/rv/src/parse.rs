//! A text assembler: assembly source → machine code.
//!
//! Accepts the syntax [`crate::disassemble`] emits (GNU-style standard
//! RISC-V plus PULP-style Xpulp), with labels, comments (`#` or `//`) and
//! the usual pseudo-instructions. Built on top of [`Asm`], so `li` expands
//! and labels resolve exactly as in the builder API.
//!
//! # Example
//!
//! ```
//! use hulkv_rv::{parse_program, Core, CostModel, FlatBus, Reg, Xlen};
//!
//! let words = parse_program(
//!     r#"
//!         li   a0, 0
//!         li   t0, 5
//!     loop:
//!         add  a0, a0, t0
//!         addi t0, t0, -1
//!         bnez t0, loop
//!         ebreak
//!     "#,
//!     Xlen::Rv64,
//! )?;
//! let mut bus = FlatBus::new(4096);
//! bus.load_words(0, &words);
//! let mut core = Core::new(Xlen::Rv64, CostModel::cva6());
//! core.run(&mut bus, 10_000)?;
//! assert_eq!(core.reg(Reg::A0), 15);
//! # Ok::<(), hulkv_rv::RvError>(())
//! ```

use crate::asm::{Asm, Label};
use crate::inst::*;
use std::collections::HashMap;

/// Parses and assembles a whole program.
///
/// # Errors
///
/// Returns [`RvError::Encode`] with a line-numbered message for syntax
/// errors, and the usual assembler errors for unbound labels or
/// out-of-range operands.
pub fn parse_program(src: &str, xlen: Xlen) -> Result<Vec<u32>, RvError> {
    let mut p = Parser {
        a: Asm::new(xlen),
        labels: HashMap::new(),
    };
    for (idx, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        p.line(line)
            .map_err(|e| RvError::Encode(format!("line {}: {e}", idx + 1)))?;
    }
    p.a.assemble()
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find('#')
        .into_iter()
        .chain(line.find("//"))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

struct Parser {
    a: Asm,
    labels: HashMap<String, Label>,
}

type PResult<T = ()> = Result<T, String>;

impl Parser {
    fn label_for(&mut self, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            return l;
        }
        let l = self.a.label();
        self.labels.insert(name.to_string(), l);
        l
    }

    fn line(&mut self, line: &str) -> PResult {
        if let Some(name) = line.strip_suffix(':') {
            let name = name.trim();
            if name.is_empty() || !is_ident(name) {
                return Err(format!("bad label `{name}`"));
            }
            let l = self.label_for(name);
            self.a.bind(l);
            return Ok(());
        }
        let (mnemonic, rest) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim()),
            None => (line, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        self.dispatch(&mnemonic.to_ascii_lowercase(), &ops)
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(&mut self, m: &str, ops: &[&str]) -> PResult {
        // Zero-operand instructions.
        match m {
            "nop" => {
                return {
                    self.a.nop();
                    Ok(())
                }
            }
            "ret" => {
                return {
                    self.a.ret();
                    Ok(())
                }
            }
            "ecall" => {
                return {
                    self.a.ecall();
                    Ok(())
                }
            }
            "ebreak" => {
                return {
                    self.a.ebreak();
                    Ok(())
                }
            }
            "mret" => {
                return {
                    self.a.mret();
                    Ok(())
                }
            }
            "sret" => {
                return {
                    self.a.sret();
                    Ok(())
                }
            }
            "wfi" => {
                return {
                    self.a.inst(Inst::Wfi);
                    Ok(())
                }
            }
            "fence" => {
                return {
                    self.a.fence();
                    Ok(())
                }
            }
            "fence.i" => {
                return {
                    self.a.inst(Inst::FenceI);
                    Ok(())
                }
            }
            _ => {}
        }

        // FP loads/stores.
        match m {
            "flw" | "fld" => {
                let rd = freg(op3(ops, 0)?)?;
                let (offset, rs1, _) = mem_operand(op3(ops, 1)?)?;
                let fmt = if m == "flw" { FpFmt::S } else { FpFmt::D };
                self.a.inst(Inst::FpLoad {
                    fmt,
                    rd,
                    rs1,
                    offset,
                });
                return Ok(());
            }
            "fsw" | "fsd" => {
                let rs2 = freg(op3(ops, 0)?)?;
                let (offset, rs1, _) = mem_operand(op3(ops, 1)?)?;
                let fmt = if m == "fsw" { FpFmt::S } else { FpFmt::D };
                self.a.inst(Inst::FpStore {
                    fmt,
                    rs2,
                    rs1,
                    offset,
                });
                return Ok(());
            }
            _ => {}
        }

        // ALU register-register (with w variants).
        if let Some(op) = alu_from(m, false) {
            let (rd, rs1, rs2) = (reg(op3(ops, 0)?)?, reg(op3(ops, 1)?)?, reg(op3(ops, 2)?)?);
            let word = m.ends_with('w');
            self.a.inst(if word {
                Inst::Op32 { op, rd, rs1, rs2 }
            } else {
                Inst::Op { op, rd, rs1, rs2 }
            });
            return Ok(());
        }
        // ALU immediate.
        if let Some(op) = alu_from(m, true) {
            let (rd, rs1, i) = (reg(op3(ops, 0)?)?, reg(op3(ops, 1)?)?, imm(op3(ops, 2)?)?);
            let word = m.ends_with('w');
            self.a.inst(if word {
                Inst::OpImm32 {
                    op,
                    rd,
                    rs1,
                    imm: i,
                }
            } else {
                Inst::OpImm {
                    op,
                    rd,
                    rs1,
                    imm: i,
                }
            });
            return Ok(());
        }
        // M extension.
        if let Some(op) = muldiv_from(m) {
            let (rd, rs1, rs2) = (reg(op3(ops, 0)?)?, reg(op3(ops, 1)?)?, reg(op3(ops, 2)?)?);
            self.a.inst(if m.ends_with('w') {
                Inst::MulDiv32 { op, rd, rs1, rs2 }
            } else {
                Inst::MulDiv { op, rd, rs1, rs2 }
            });
            return Ok(());
        }
        // Loads / stores (including Xpulp post-increment forms).
        if let Some(width) = load_from(m) {
            let rd = reg(op3(ops, 0)?)?;
            let (offset, rs1, post) = mem_operand(op3(ops, 1)?)?;
            self.a.inst(if post {
                Inst::LoadPost {
                    width,
                    rd,
                    rs1,
                    offset,
                }
            } else {
                Inst::Load {
                    width,
                    rd,
                    rs1,
                    offset,
                }
            });
            return Ok(());
        }
        if let Some(width) = store_from(m) {
            let rs2 = reg(op3(ops, 0)?)?;
            let (offset, rs1, post) = mem_operand(op3(ops, 1)?)?;
            self.a.inst(if post {
                Inst::StorePost {
                    width,
                    rs2,
                    rs1,
                    offset,
                }
            } else {
                Inst::Store {
                    width,
                    rs2,
                    rs1,
                    offset,
                }
            });
            return Ok(());
        }
        // Branches.
        if let Some(cond) = branch_from(m) {
            let (rs1, rs2, target) = (reg(op3(ops, 0)?)?, reg(op3(ops, 1)?)?, op3(ops, 2)?);
            return self.branch(cond, rs1, rs2, target);
        }
        match m {
            "beqz" => {
                let rs1 = reg(op3(ops, 0)?)?;
                return self.branch(BranchCond::Eq, rs1, Reg::Zero, op3(ops, 1)?);
            }
            "bnez" => {
                let rs1 = reg(op3(ops, 0)?)?;
                return self.branch(BranchCond::Ne, rs1, Reg::Zero, op3(ops, 1)?);
            }
            "li" => {
                let rd = reg(op3(ops, 0)?)?;
                let v = imm(op3(ops, 1)?)?;
                self.a.li(rd, v);
                return Ok(());
            }
            "mv" => {
                let (rd, rs) = (reg(op3(ops, 0)?)?, reg(op3(ops, 1)?)?);
                self.a.mv(rd, rs);
                return Ok(());
            }
            "neg" => {
                let (rd, rs) = (reg(op3(ops, 0)?)?, reg(op3(ops, 1)?)?);
                self.a.neg(rd, rs);
                return Ok(());
            }
            "la" => {
                let rd = reg(op3(ops, 0)?)?;
                let l = self.label_for(op3(ops, 1)?);
                self.a.la(rd, l);
                return Ok(());
            }
            "lui" | "auipc" => {
                let rd = reg(op3(ops, 0)?)?;
                let v = imm(op3(ops, 1)?)?;
                self.a.inst(if m == "lui" {
                    Inst::Lui { rd, imm: v }
                } else {
                    Inst::Auipc { rd, imm: v }
                });
                return Ok(());
            }
            "j" => {
                let t = op3(ops, 0)?;
                if let Ok(off) = imm(t) {
                    self.a.inst(Inst::Jal {
                        rd: Reg::Zero,
                        offset: off,
                    });
                } else {
                    let l = self.label_for(t);
                    self.a.j(l);
                }
                return Ok(());
            }
            "jal" => {
                // `jal target` or `jal rd, target`.
                let (rd, t) = if ops.len() == 1 {
                    (Reg::Ra, ops[0])
                } else {
                    (reg(op3(ops, 0)?)?, op3(ops, 1)?)
                };
                if let Ok(off) = imm(t) {
                    self.a.inst(Inst::Jal { rd, offset: off });
                } else {
                    let l = self.label_for(t);
                    self.a.items_jal(rd, l);
                }
                return Ok(());
            }
            "call" => {
                let l = self.label_for(op3(ops, 0)?);
                self.a.call(l);
                return Ok(());
            }
            "jalr" => {
                // `jalr rd, off(rs1)` or `jalr rs1`.
                if ops.len() == 1 {
                    let rs1 = reg(ops[0])?;
                    self.a.inst(Inst::Jalr {
                        rd: Reg::Ra,
                        rs1,
                        offset: 0,
                    });
                } else {
                    let rd = reg(op3(ops, 0)?)?;
                    let (offset, rs1, _) = mem_operand(op3(ops, 1)?)?;
                    self.a.inst(Inst::Jalr { rd, rs1, offset });
                }
                return Ok(());
            }
            "csrr" => {
                let (rd, c) = (reg(op3(ops, 0)?)?, imm(op3(ops, 1)?)? as u16);
                self.a.csrr(rd, c);
                return Ok(());
            }
            "csrw" => {
                let (c, rs) = (imm(op3(ops, 0)?)? as u16, reg(op3(ops, 1)?)?);
                self.a.csrw(c, rs);
                return Ok(());
            }
            _ => {}
        }
        // CSR triple forms: csrrw rd, csr, rs / csrrwi rd, csr, imm.
        if let Some(rest) = m.strip_prefix("csrr") {
            let (op, immediate) = match rest {
                "w" => (CsrOp::Rw, false),
                "s" => (CsrOp::Rs, false),
                "c" => (CsrOp::Rc, false),
                "wi" => (CsrOp::Rw, true),
                "si" => (CsrOp::Rs, true),
                "ci" => (CsrOp::Rc, true),
                _ => return Err(format!("unknown mnemonic `{m}`")),
            };
            let rd = reg(op3(ops, 0)?)?;
            let csr = imm(op3(ops, 1)?)? as u16;
            let src = if immediate {
                CsrSrc::Imm(imm(op3(ops, 2)?)? as u8)
            } else {
                CsrSrc::Reg(reg(op3(ops, 2)?)?)
            };
            self.a.inst(Inst::Csr { op, rd, csr, src });
            return Ok(());
        }
        // Atomics: lr.w/d, sc.w/d, amoXXX.w/d.
        if let Some((base, width)) = m.rsplit_once('.') {
            if let Some(done) = self.try_amo(base, width, ops)? {
                if done {
                    return Ok(());
                }
            }
            if let Some(done) = self.try_fp(base, width, ops)? {
                if done {
                    return Ok(());
                }
            }
        }
        // Xpulp scalar/hw-loop/SIMD families.
        if let Some(rest) = m.strip_prefix("p.") {
            return self.pulp_scalar(rest, ops);
        }
        if let Some(rest) = m.strip_prefix("lp.") {
            return self.hwloop(rest, ops);
        }
        if let Some(rest) = m.strip_prefix("pv.") {
            return self.pulp_simd(rest, ops);
        }
        if m.starts_with("vf") {
            return self.pulp_simd_fp(m, ops);
        }
        Err(format!("unknown mnemonic `{m}`"))
    }

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: &str) -> PResult {
        if let Ok(off) = imm(target) {
            self.a.inst(Inst::Branch {
                cond,
                rs1,
                rs2,
                offset: off,
            });
        } else {
            let l = self.label_for(target);
            self.a.items_branch(cond, rs1, rs2, l);
        }
        Ok(())
    }

    fn try_amo(&mut self, base: &str, width: &str, ops: &[&str]) -> PResult<Option<bool>> {
        let double = match width {
            "w" => false,
            "d" => true,
            _ => return Ok(None),
        };
        match base {
            "lr" => {
                let rd = reg(op3(ops, 0)?)?;
                let (_, rs1, _) = mem_operand(op3(ops, 1)?)?;
                self.a.inst(Inst::LoadReserved { double, rd, rs1 });
                Ok(Some(true))
            }
            "sc" => {
                let (rd, rs2) = (reg(op3(ops, 0)?)?, reg(op3(ops, 1)?)?);
                let (_, rs1, _) = mem_operand(op3(ops, 2)?)?;
                self.a.inst(Inst::StoreConditional {
                    double,
                    rd,
                    rs1,
                    rs2,
                });
                Ok(Some(true))
            }
            _ => {
                let op = match base {
                    "amoswap" => AmoOp::Swap,
                    "amoadd" => AmoOp::Add,
                    "amoxor" => AmoOp::Xor,
                    "amoand" => AmoOp::And,
                    "amoor" => AmoOp::Or,
                    "amomin" => AmoOp::Min,
                    "amomax" => AmoOp::Max,
                    "amominu" => AmoOp::Minu,
                    "amomaxu" => AmoOp::Maxu,
                    _ => return Ok(None),
                };
                let (rd, rs2) = (reg(op3(ops, 0)?)?, reg(op3(ops, 1)?)?);
                let (_, rs1, _) = mem_operand(op3(ops, 2)?)?;
                self.a.inst(Inst::Amo {
                    op,
                    double,
                    rd,
                    rs1,
                    rs2,
                });
                Ok(Some(true))
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn try_fp(&mut self, base: &str, suffix: &str, ops: &[&str]) -> PResult<Option<bool>> {
        // fl/fs are handled by name, conversions by full mnemonic.
        match base {
            "fl" | "fs" => return Ok(None),
            _ => {}
        }
        if base == "flw" || base == "fld" || base == "fsw" || base == "fsd" {
            return Ok(None);
        }
        // fcvt.*.* has two dots; reconstruct.
        let full = format!("{base}.{suffix}");
        if let Some(rest) = full.strip_prefix("fcvt.") {
            let mut parts = rest.split('.');
            let to = parts.next().ok_or("bad fcvt")?;
            let from = parts.next().ok_or("bad fcvt")?;
            let rd_s = op3(ops, 0)?;
            let rs_s = op3(ops, 1)?;
            let int_kind = |s: &str| match s {
                "w" => Some((false, true)),
                "wu" => Some((false, false)),
                "l" => Some((true, true)),
                "lu" => Some((true, false)),
                _ => None,
            };
            let fp_kind = |s: &str| match s {
                "s" => Some(FpFmt::S),
                "d" => Some(FpFmt::D),
                _ => None,
            };
            if let (Some((wide, signed)), Some(fmt)) = (int_kind(to), fp_kind(from)) {
                self.a.inst(Inst::FpToInt {
                    fmt,
                    rd: reg(rd_s)?,
                    rs1: freg(rs_s)?,
                    signed,
                    wide,
                });
                return Ok(Some(true));
            }
            if let (Some(fmt), Some((wide, signed))) = (fp_kind(to), int_kind(from)) {
                self.a.inst(Inst::IntToFp {
                    fmt,
                    rd: freg(rd_s)?,
                    rs1: reg(rs_s)?,
                    signed,
                    wide,
                });
                return Ok(Some(true));
            }
            if let (Some(to_fmt), Some(_)) = (fp_kind(to), fp_kind(from)) {
                self.a.inst(Inst::FpCvt {
                    to: to_fmt,
                    rd: freg(rd_s)?,
                    rs1: freg(rs_s)?,
                });
                return Ok(Some(true));
            }
            return Err(format!("bad fcvt form `{full}`"));
        }
        if full == "fmv.x.w" || full == "fmv.x.d" {
            let fmt = if full.ends_with('w') {
                FpFmt::S
            } else {
                FpFmt::D
            };
            self.a.inst(Inst::FpMvToInt {
                fmt,
                rd: reg(op3(ops, 0)?)?,
                rs1: freg(op3(ops, 1)?)?,
            });
            return Ok(Some(true));
        }
        if full == "fmv.w.x" || full == "fmv.d.x" {
            let fmt = if full.starts_with("fmv.w") {
                FpFmt::S
            } else {
                FpFmt::D
            };
            self.a.inst(Inst::FpMvFromInt {
                fmt,
                rd: freg(op3(ops, 0)?)?,
                rs1: reg(op3(ops, 1)?)?,
            });
            return Ok(Some(true));
        }
        let fmt = match suffix {
            "s" => FpFmt::S,
            "d" => FpFmt::D,
            _ => return Ok(None),
        };
        let cmp = match base {
            "feq" => Some(FpCmp::Eq),
            "flt" => Some(FpCmp::Lt),
            "fle" => Some(FpCmp::Le),
            _ => None,
        };
        if let Some(cmp) = cmp {
            self.a.inst(Inst::FpCmp {
                fmt,
                cmp,
                rd: reg(op3(ops, 0)?)?,
                rs1: freg(op3(ops, 1)?)?,
                rs2: freg(op3(ops, 2)?)?,
            });
            return Ok(Some(true));
        }
        let fma = match base {
            "fmadd" => Some((false, false)),
            "fmsub" => Some((false, true)),
            "fnmsub" => Some((true, false)),
            "fnmadd" => Some((true, true)),
            _ => None,
        };
        if let Some((np, na)) = fma {
            self.a.inst(Inst::FpFma {
                fmt,
                rd: freg(op3(ops, 0)?)?,
                rs1: freg(op3(ops, 1)?)?,
                rs2: freg(op3(ops, 2)?)?,
                rs3: freg(op3(ops, 3)?)?,
                negate_product: np,
                negate_addend: na,
            });
            return Ok(Some(true));
        }
        let op = match base {
            "fadd" => FpOp::Add,
            "fsub" => FpOp::Sub,
            "fmul" => FpOp::Mul,
            "fdiv" => FpOp::Div,
            "fsqrt" => FpOp::Sqrt,
            "fmin" => FpOp::Min,
            "fmax" => FpOp::Max,
            "fsgnj" => FpOp::SgnJ,
            "fsgnjn" => FpOp::SgnJn,
            "fsgnjx" => FpOp::SgnJx,
            _ => return Ok(None),
        };
        let rd = freg(op3(ops, 0)?)?;
        let rs1 = freg(op3(ops, 1)?)?;
        let rs2 = if op == FpOp::Sqrt {
            FReg(0)
        } else {
            freg(op3(ops, 2)?)?
        };
        self.a.inst(Inst::FpOp3 {
            fmt,
            op,
            rd,
            rs1,
            rs2,
        });
        Ok(Some(true))
    }

    fn pulp_scalar(&mut self, rest: &str, ops: &[&str]) -> PResult {
        let two = |p: &mut Self, op: PulpAluOp, ops: &[&str]| -> PResult {
            p.a.inst(Inst::PulpAlu {
                op,
                rd: reg(op3(ops, 0)?)?,
                rs1: reg(op3(ops, 1)?)?,
                rs2: Reg::Zero,
            });
            Ok(())
        };
        let three = |p: &mut Self, op: PulpAluOp, ops: &[&str]| -> PResult {
            p.a.inst(Inst::PulpAlu {
                op,
                rd: reg(op3(ops, 0)?)?,
                rs1: reg(op3(ops, 1)?)?,
                rs2: reg(op3(ops, 2)?)?,
            });
            Ok(())
        };
        match rest {
            "mac" | "msu" => {
                self.a.inst(Inst::Mac {
                    rd: reg(op3(ops, 0)?)?,
                    rs1: reg(op3(ops, 1)?)?,
                    rs2: reg(op3(ops, 2)?)?,
                    subtract: rest == "msu",
                });
                Ok(())
            }
            "min" => three(self, PulpAluOp::Min, ops),
            "max" => three(self, PulpAluOp::Max, ops),
            "minu" => three(self, PulpAluOp::Minu, ops),
            "maxu" => three(self, PulpAluOp::Maxu, ops),
            "clip" => three(self, PulpAluOp::Clip, ops),
            "abs" => two(self, PulpAluOp::Abs, ops),
            "cnt" => two(self, PulpAluOp::Cnt, ops),
            "ff1" => two(self, PulpAluOp::Ff1, ops),
            "fl1" => two(self, PulpAluOp::Fl1, ops),
            "ror" => three(self, PulpAluOp::Ror, ops),
            "exths" => two(self, PulpAluOp::Exths, ops),
            "exthz" => two(self, PulpAluOp::Exthz, ops),
            "extbs" => two(self, PulpAluOp::Extbs, ops),
            "extbz" => two(self, PulpAluOp::Extbz, ops),
            _ => Err(format!("unknown mnemonic `p.{rest}`")),
        }
    }

    fn hwloop(&mut self, rest: &str, ops: &[&str]) -> PResult {
        let idx_s = op3(ops, 0)?;
        let loop_idx = match idx_s {
            "x0" | "0" => 0u8,
            "x1" | "1" => 1,
            _ => return Err(format!("bad loop index `{idx_s}`")),
        };
        match rest {
            "starti" | "endi" => {
                let t = op3(ops, 1)?;
                if let Ok(off) = imm(t) {
                    let op = if rest == "starti" {
                        HwLoopOp::Starti
                    } else {
                        HwLoopOp::Endi
                    };
                    self.a.inst(Inst::HwLoop {
                        op,
                        loop_idx,
                        value: off,
                        rs1: Reg::Zero,
                    });
                } else {
                    let l = self.label_for(t);
                    if rest == "starti" {
                        self.a.lp_starti(loop_idx, l);
                    } else {
                        self.a.lp_endi(loop_idx, l);
                    }
                }
                Ok(())
            }
            "counti" => {
                self.a.lp_counti(loop_idx, imm(op3(ops, 1)?)?);
                Ok(())
            }
            "count" => {
                self.a.lp_count(loop_idx, reg(op3(ops, 1)?)?);
                Ok(())
            }
            _ => Err(format!("unknown mnemonic `lp.{rest}`")),
        }
    }

    fn pulp_simd(&mut self, rest: &str, ops: &[&str]) -> PResult {
        // Forms: <op>.b, <op>.h, <op>.sc.b, <op>.sc.h.
        let mut parts: Vec<&str> = rest.split('.').collect();
        let lanes = match parts.pop() {
            Some("b") => SimdFmt::B,
            Some("h") => SimdFmt::H,
            other => return Err(format!("bad SIMD lane suffix {other:?}")),
        };
        let scalar = parts.last() == Some(&"sc");
        if scalar {
            parts.pop();
        }
        let name = parts.join(".");
        let op = match name.as_str() {
            "add" => SimdOp::Add,
            "sub" => SimdOp::Sub,
            "avg" => SimdOp::Avg,
            "avgu" => SimdOp::Avgu,
            "min" => SimdOp::Min,
            "minu" => SimdOp::Minu,
            "max" => SimdOp::Max,
            "maxu" => SimdOp::Maxu,
            "srl" => SimdOp::Srl,
            "sra" => SimdOp::Sra,
            "and" => SimdOp::And,
            "or" => SimdOp::Or,
            "xor" => SimdOp::Xor,
            "abs" => SimdOp::Abs,
            "dotup" => SimdOp::Dotup,
            "dotusp" => SimdOp::Dotusp,
            "dotsp" => SimdOp::Dotsp,
            "sdotup" => SimdOp::Sdotup,
            "sdotusp" => SimdOp::Sdotusp,
            "sdotsp" => SimdOp::Sdotsp,
            "extract" => SimdOp::Extract,
            "insert" => SimdOp::Insert,
            "shuffle" => SimdOp::Shuffle,
            _ => return Err(format!("unknown mnemonic `pv.{rest}`")),
        };
        self.a.inst(Inst::Simd {
            op,
            fmt: lanes,
            rd: reg(op3(ops, 0)?)?,
            rs1: reg(op3(ops, 1)?)?,
            rs2: reg(op3(ops, 2)?)?,
            scalar_rs2: scalar,
        });
        Ok(())
    }

    fn pulp_simd_fp(&mut self, m: &str, ops: &[&str]) -> PResult {
        let op = match m {
            "vfadd.h" => SimdFpOp::Add,
            "vfsub.h" => SimdFpOp::Sub,
            "vfmul.h" => SimdFpOp::Mul,
            "vfmac.h" => SimdFpOp::Mac,
            "vfmin.h" => SimdFpOp::Min,
            "vfmax.h" => SimdFpOp::Max,
            "vfdotpex.s.h" => SimdFpOp::DotpexS,
            _ => return Err(format!("unknown mnemonic `{m}`")),
        };
        self.a.inst(Inst::SimdFp {
            op,
            rd: reg(op3(ops, 0)?)?,
            rs1: reg(op3(ops, 1)?)?,
            rs2: reg(op3(ops, 2)?)?,
        });
        Ok(())
    }
}

// Small helper methods on Asm for label forms the parser needs.
impl Asm {
    pub(crate) fn items_branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, l: Label) {
        match cond {
            BranchCond::Eq => self.beq(rs1, rs2, l),
            BranchCond::Ne => self.bne(rs1, rs2, l),
            BranchCond::Lt => self.blt(rs1, rs2, l),
            BranchCond::Ge => self.bge(rs1, rs2, l),
            BranchCond::Ltu => self.bltu(rs1, rs2, l),
            BranchCond::Geu => self.bgeu(rs1, rs2, l),
        }
    }

    pub(crate) fn items_jal(&mut self, rd: Reg, l: Label) {
        if rd == Reg::Ra {
            self.call(l);
        } else if rd == Reg::Zero {
            self.j(l);
        } else {
            // Rare form: route through call-like fixup by rebuilding.
            self.call(l);
        }
    }
}

fn alu_from(m: &str, immediate: bool) -> Option<AluOp> {
    let m = m.strip_suffix('w').unwrap_or(m);
    let base = if immediate {
        match m {
            "addi" => "add",
            "andi" => "and",
            "ori" => "or",
            "xori" => "xor",
            "slli" => "sll",
            "srli" => "srl",
            "srai" => "sra",
            "slti" => "slt",
            "sltiu" => "sltu",
            _ => return None,
        }
    } else {
        match m {
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu" => m,
            _ => return None,
        }
    };
    Some(match base {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        _ => AluOp::Sltu,
    })
}

fn muldiv_from(m: &str) -> Option<MulDivOp> {
    let m = m.strip_suffix('w').unwrap_or(m);
    Some(match m {
        "mul" => MulDivOp::Mul,
        "mulh" => MulDivOp::Mulh,
        "mulhsu" => MulDivOp::Mulhsu,
        "mulhu" => MulDivOp::Mulhu,
        "div" => MulDivOp::Div,
        "divu" => MulDivOp::Divu,
        "rem" => MulDivOp::Rem,
        "remu" => MulDivOp::Remu,
        _ => return None,
    })
}

fn load_from(m: &str) -> Option<LoadWidth> {
    let m = m.strip_prefix("p.").unwrap_or(m);
    Some(match m {
        "lb" => LoadWidth::B,
        "lh" => LoadWidth::H,
        "lw" => LoadWidth::W,
        "ld" => LoadWidth::D,
        "lbu" => LoadWidth::Bu,
        "lhu" => LoadWidth::Hu,
        "lwu" => LoadWidth::Wu,
        "flw" | "fld" => return None,
        _ => return None,
    })
}

fn store_from(m: &str) -> Option<StoreWidth> {
    let m = m.strip_prefix("p.").unwrap_or(m);
    Some(match m {
        "sb" => StoreWidth::B,
        "sh" => StoreWidth::H,
        "sw" => StoreWidth::W,
        "sd" => StoreWidth::D,
        _ => return None,
    })
}

fn branch_from(m: &str) -> Option<BranchCond> {
    Some(match m {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

fn op3<'a>(ops: &[&'a str], i: usize) -> PResult<&'a str> {
    ops.get(i)
        .copied()
        .ok_or_else(|| format!("missing operand {}", i + 1))
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn reg(s: &str) -> PResult<Reg> {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    if let Some(i) = NAMES.iter().position(|&n| n == s) {
        return Ok(Reg::from_index(i as u8));
    }
    if s == "fp" {
        return Ok(Reg::S0);
    }
    if let Some(n) = s.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(Reg::from_index(i));
            }
        }
    }
    Err(format!("bad register `{s}`"))
}

fn freg(s: &str) -> PResult<FReg> {
    if let Some(n) = s.strip_prefix('f') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(FReg(i));
            }
        }
    }
    Err(format!("bad FP register `{s}`"))
}

fn imm(s: &str) -> PResult<i64> {
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        // Accept full-width hex (e.g. 0xffff_ffff_ffff_fffc) as the i64
        // bit pattern, like GNU as.
        i64::from_str_radix(hex, 16)
            .or_else(|_| u64::from_str_radix(hex, 16).map(|v| v as i64))
            .map_err(|e| format!("bad immediate `{s}`: {e}"))?
    } else {
        // Decimal, with a u64 fallback so full-width unsigned constants
        // (e.g. satp values) parse as their bit pattern.
        body.parse::<i64>()
            .or_else(|_| body.parse::<u64>().map(|v| v as i64))
            .map_err(|e| format!("bad immediate `{s}`: {e}"))?
    };
    Ok(if neg { -v } else { v })
}

/// Parses `offset(reg)` or `offset(reg!)`; a bare `(reg)` means offset 0.
fn mem_operand(s: &str) -> PResult<(i64, Reg, bool)> {
    let open = s
        .find('(')
        .ok_or_else(|| format!("expected mem operand, got `{s}`"))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| format!("missing `)` in `{s}`"))?;
    let off_s = s[..open].trim();
    let offset = if off_s.is_empty() { 0 } else { imm(off_s)? };
    let mut reg_s = s[open + 1..close].trim();
    let post = reg_s.ends_with('!');
    if post {
        reg_s = reg_s[..reg_s.len() - 1].trim();
    }
    Ok((offset, reg(reg_s)?, post))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{Core, FlatBus};
    use crate::decode::decode;
    use crate::disasm::disassemble;

    #[test]
    fn parses_labels_and_loops() {
        let words = parse_program(
            "
            li t0, 10        # counter
            li a0, 0
        top:
            add a0, a0, t0   // accumulate
            addi t0, t0, -1
            bnez t0, top
            ebreak
            ",
            Xlen::Rv64,
        )
        .unwrap();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &words);
        let mut core = Core::cva6();
        core.run(&mut bus, 10_000).unwrap();
        assert_eq!(core.reg(Reg::A0), 55);
    }

    #[test]
    fn parses_xpulp_program() {
        let words = parse_program(
            "
            li t0, 0x100
            li t1, 0x04030201
            sw t1, 0(t0)
            p.lw t2, 4(t0!)
            li a0, 0
            pv.sdotsp.b a0, t2, t2
            ebreak
            ",
            Xlen::Rv32,
        )
        .unwrap();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &words);
        let mut core = Core::ri5cy(0);
        core.run(&mut bus, 10_000).unwrap();
        // 1+4+9+16 = 30 and the pointer post-incremented.
        assert_eq!(core.reg(Reg::A0), 30);
        assert_eq!(core.reg(Reg::T0), 0x104);
    }

    #[test]
    fn parses_fp_program() {
        let words = parse_program(
            "
            li t0, 3
            fcvt.s.w f0, t0
            fmul.s f1, f0, f0
            fmadd.s f2, f0, f0, f1
            fcvt.w.s a0, f2
            ebreak
            ",
            Xlen::Rv64,
        )
        .unwrap();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &words);
        let mut core = Core::cva6();
        core.run(&mut bus, 10_000).unwrap();
        assert_eq!(core.reg(Reg::A0), 18);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_program("nop\nbogus a0, a1\n", Xlen::Rv64).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_program("addi a0, a0, zzz", Xlen::Rv64).unwrap_err();
        assert!(err.to_string().contains("immediate"), "{err}");
    }

    #[test]
    fn disassembly_round_trips_through_parser() {
        // Assemble a representative program, disassemble every word, parse
        // the disassembly, and compare the binaries.
        let src = "
            lui t0, 0x12
            addi t0, t0, 52
            sub a0, t0, sp
            lw a1, 8(sp)
            sd a1, -16(sp)
            mul a2, a1, a0
            divu a3, a2, t0
            beq a0, a1, 8
            jalr ra, 0(t0)
            amoadd.w t1, a0, (sp)
            csrrs t2, 0x300, a0
            fadd.d f1, f2, f3
            fcvt.lu.d a4, f1
            ecall
            ebreak
        ";
        let words = parse_program(src, Xlen::Rv64).unwrap();
        let round_trip: String = words
            .iter()
            .map(|&w| {
                let i = decode(w, Xlen::Rv64, false).expect("decodable");
                disassemble(&i) + "\n"
            })
            .collect();
        let words2 = parse_program(&round_trip, Xlen::Rv64).unwrap();
        assert_eq!(words, words2, "round trip:\n{round_trip}");
    }

    #[test]
    fn xpulp_disassembly_round_trips() {
        let src = "
            p.lw t5, 4(t3!)
            p.sb a0, -1(t2!)
            p.mac a0, a1, a2
            p.clip a3, a4, a5
            p.abs a6, a7
            lp.counti x0, 16
            lp.count x1, t0
            pv.add.h t0, t1, t2
            pv.max.sc.b t3, t4, t5
            pv.sdotsp.b a0, a1, a2
            vfmac.h s2, s3, s4
            vfdotpex.s.h s5, s6, s7
            ebreak
        ";
        let words = parse_program(src, Xlen::Rv32).unwrap();
        let round_trip: String = words
            .iter()
            .map(|&w| {
                let i = decode(w, Xlen::Rv32, true).expect("decodable");
                disassemble(&i) + "\n"
            })
            .collect();
        let words2 = parse_program(&round_trip, Xlen::Rv32).unwrap();
        assert_eq!(words, words2, "round trip:\n{round_trip}");
    }

    #[test]
    fn numeric_register_names_accepted() {
        let words = parse_program("add x10, x11, x12\nebreak", Xlen::Rv64).unwrap();
        let i = decode(words[0], Xlen::Rv64, false).unwrap();
        assert_eq!(
            i,
            Inst::Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
        );
    }
}
