//! A programmatic RISC-V assembler with labels.
//!
//! The HULK-V reproduction generates every benchmark kernel from Rust
//! builder code instead of hand-written hex: each method appends one (or,
//! for pseudo-instructions like [`Asm::li`], a few) instruction(s), labels
//! resolve pc-relative operands at [`Asm::assemble`] time, and the output
//! feeds straight into the simulated memories.
//!
//! # Example
//!
//! ```
//! use hulkv_rv::{Asm, Reg, Xlen};
//!
//! let mut a = Asm::new(Xlen::Rv32);
//! let done = a.label();
//! a.li(Reg::A0, 1);
//! a.beqz(Reg::A0, done); // not taken
//! a.li(Reg::A0, 2);
//! a.bind(done);
//! a.ebreak();
//! let words = a.assemble()?;
//! assert_eq!(words.len(), 4);
//! # Ok::<(), hulkv_rv::RvError>(())
//! ```

use crate::encode::encode;
use crate::inst::*;

/// A forward- or backward-referenced code position.
///
/// Create with [`Asm::label`], place with [`Asm::bind`], and reference from
/// any branch/jump/hardware-loop method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone)]
enum Item {
    Fixed(Inst),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: Label,
    },
    Jal {
        rd: Reg,
        target: Label,
    },
    HwStart {
        loop_idx: u8,
        target: Label,
    },
    HwEnd {
        loop_idx: u8,
        target: Label,
    },
    /// `auipc rd, hi` — first half of a pc-relative `la`.
    LaHi {
        rd: Reg,
        target: Label,
    },
    /// `addi rd, rd, lo` — second half; `anchor` is the index of the
    /// matching `LaHi` whose pc the offset is relative to.
    LaLo {
        rd: Reg,
        target: Label,
        anchor: usize,
    },
    Word(u32),
}

/// The assembler/builder. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Asm {
    xlen: Xlen,
    items: Vec<Item>,
    labels: Vec<Option<usize>>,
}

impl Asm {
    /// Creates an assembler for the given register width.
    pub fn new(xlen: Xlen) -> Self {
        Asm {
            xlen,
            items: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// The register width this assembler targets.
    pub fn xlen(&self) -> Xlen {
        self.xlen
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.labels[label.0].is_none(),
            "label {} bound twice",
            label.0
        );
        self.labels[label.0] = Some(self.items.len());
    }

    /// Number of instruction words emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Byte offset of the current position from the program start.
    pub fn here(&self) -> u64 {
        (self.items.len() * 4) as u64
    }

    /// Appends a pre-built instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.items.push(Item::Fixed(inst));
    }

    /// Appends a raw 32-bit word (for negative testing).
    pub fn word(&mut self, w: u32) {
        self.items.push(Item::Word(w));
    }

    /// Resolves all labels and encodes the program.
    ///
    /// # Errors
    ///
    /// [`RvError::UnboundLabel`] if a referenced label was never bound, or
    /// [`RvError::Encode`] if an operand does not fit (e.g. a branch target
    /// beyond ±4 kB).
    pub fn assemble(&self) -> Result<Vec<u32>, RvError> {
        let resolve = |l: Label| -> Result<i64, RvError> {
            self.labels[l.0]
                .map(|idx| (idx * 4) as i64)
                .ok_or(RvError::UnboundLabel(l.0))
        };
        let mut out = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let pc = (idx * 4) as i64;
            let word = match item {
                Item::Fixed(inst) => encode(inst)?,
                Item::Word(w) => *w,
                Item::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => encode(&Inst::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    offset: resolve(*target)? - pc,
                })?,
                Item::Jal { rd, target } => encode(&Inst::Jal {
                    rd: *rd,
                    offset: resolve(*target)? - pc,
                })?,
                Item::HwStart { loop_idx, target } => encode(&Inst::HwLoop {
                    op: HwLoopOp::Starti,
                    loop_idx: *loop_idx,
                    value: resolve(*target)? - pc,
                    rs1: Reg::Zero,
                })?,
                Item::HwEnd { loop_idx, target } => encode(&Inst::HwLoop {
                    op: HwLoopOp::Endi,
                    loop_idx: *loop_idx,
                    value: resolve(*target)? - pc,
                    rs1: Reg::Zero,
                })?,
                Item::LaHi { rd, target } => {
                    let off = resolve(*target)? - pc;
                    let hi = (off + 0x800) >> 12;
                    encode(&Inst::Auipc { rd: *rd, imm: hi })?
                }
                Item::LaLo { rd, target, anchor } => {
                    let anchor_pc = (*anchor * 4) as i64;
                    let off = resolve(*target)? - anchor_pc;
                    let lo = off - (((off + 0x800) >> 12) << 12);
                    encode(&Inst::OpImm {
                        op: AluOp::Add,
                        rd: *rd,
                        rs1: *rd,
                        imm: lo,
                    })?
                }
            };
            out.push(word);
        }
        Ok(out)
    }

    // ---- pseudo-instructions ----

    /// Loads an arbitrary constant (expands to the minimal lui/addi/shift
    /// sequence, exactly like `li` in GNU as).
    pub fn li(&mut self, rd: Reg, value: i64) {
        let value = match self.xlen {
            Xlen::Rv32 => value as i32 as i64,
            Xlen::Rv64 => value,
        };
        self.li_rec(rd, value);
    }

    fn li_rec(&mut self, rd: Reg, v: i64) {
        if (-2048..2048).contains(&v) {
            self.addi(rd, Reg::Zero, v);
            return;
        }
        if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
            let hi = (v + 0x800) >> 12;
            let lo = v - (hi << 12);
            // lui sign-extends its 20-bit immediate << 12.
            let hi20 = ((hi as i32) << 12 >> 12) as i64;
            self.inst(Inst::Lui { rd, imm: hi20 });
            if lo != 0 {
                match self.xlen {
                    Xlen::Rv32 => self.addi(rd, rd, lo),
                    Xlen::Rv64 => self.addiw(rd, rd, lo),
                }
            }
            return;
        }
        // 64-bit: materialize the upper part, shift, add 12-bit chunks.
        // i128 avoids the i64::MAX − (−1) overflow corner.
        let lo = (v << 52) >> 52;
        let rest = ((v as i128 - lo as i128) >> 12) as i64;
        self.li_rec(rd, rest);
        self.slli(rd, rd, 12);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
    }

    /// Loads the address of a label (pc-relative `auipc`+`addi` pair).
    pub fn la(&mut self, rd: Reg, target: Label) {
        let anchor = self.items.len();
        self.items.push(Item::LaHi { rd, target });
        self.items.push(Item::LaLo { rd, target, anchor });
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.addi(Reg::Zero, Reg::Zero, 0);
    }

    /// Register move.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, rd: Reg, rs: Reg) {
        self.sub(rd, Reg::Zero, rs);
    }

    /// Unconditional jump to a label.
    pub fn j(&mut self, target: Label) {
        self.items.push(Item::Jal {
            rd: Reg::Zero,
            target,
        });
    }

    /// Call (jal ra).
    pub fn call(&mut self, target: Label) {
        self.items.push(Item::Jal {
            rd: Reg::Ra,
            target,
        });
    }

    /// Return (jalr zero, ra, 0).
    pub fn ret(&mut self) {
        self.inst(Inst::Jalr {
            rd: Reg::Zero,
            rs1: Reg::Ra,
            offset: 0,
        });
    }

    /// Branch if equal to zero.
    pub fn beqz(&mut self, rs: Reg, target: Label) {
        self.beq(rs, Reg::Zero, target);
    }

    /// Branch if not equal to zero.
    pub fn bnez(&mut self, rs: Reg, target: Label) {
        self.bne(rs, Reg::Zero, target);
    }

    // ---- branches ----

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.items.push(Item::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
    }

    /// `beq`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Eq, rs1, rs2, target);
    }
    /// `bne`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ne, rs1, rs2, target);
    }
    /// `blt`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Lt, rs1, rs2, target);
    }
    /// `bge`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ge, rs1, rs2, target);
    }
    /// `bltu`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Ltu, rs1, rs2, target);
    }
    /// `bgeu`.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, target: Label) {
        self.branch(BranchCond::Geu, rs1, rs2, target);
    }

    // ---- ALU ----

    /// `addi`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        });
    }
    /// `andi`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        });
    }
    /// `ori`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        });
    }
    /// `xori`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        });
    }
    /// `slti`.
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
        });
    }
    /// `sltiu`.
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Sltu,
            rd,
            rs1,
            imm,
        });
    }
    /// `slli`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
        });
    }
    /// `srli`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
        });
    }
    /// `srai`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Sra,
            rd,
            rs1,
            imm: shamt,
        });
    }
    /// `addiw` (RV64).
    pub fn addiw(&mut self, rd: Reg, rs1: Reg, imm: i64) {
        self.inst(Inst::OpImm32 {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        });
    }
    /// `slliw` (RV64).
    pub fn slliw(&mut self, rd: Reg, rs1: Reg, shamt: i64) {
        self.inst(Inst::OpImm32 {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
        });
    }

    /// `add`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sub`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }
    /// `and`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        });
    }
    /// `or`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        });
    }
    /// `xor`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sll`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        });
    }
    /// `srl`.
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sra`.
    pub fn sra(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Sra,
            rd,
            rs1,
            rs2,
        });
    }
    /// `slt`.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sltu`.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
        });
    }
    /// `addw` (RV64).
    pub fn addw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op32 {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }
    /// `subw` (RV64).
    pub fn subw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op32 {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sllw` (RV64).
    pub fn sllw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Op32 {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        });
    }

    /// `mul`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }
    /// `mulh`.
    pub fn mulh(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Mulh,
            rd,
            rs1,
            rs2,
        });
    }
    /// `mulhu`.
    pub fn mulhu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Mulhu,
            rd,
            rs1,
            rs2,
        });
    }
    /// `div`.
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Div,
            rd,
            rs1,
            rs2,
        });
    }
    /// `divu`.
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Divu,
            rd,
            rs1,
            rs2,
        });
    }
    /// `rem`.
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Rem,
            rd,
            rs1,
            rs2,
        });
    }
    /// `remu`.
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Remu,
            rd,
            rs1,
            rs2,
        });
    }
    /// `mulw` (RV64).
    pub fn mulw(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::MulDiv32 {
            op: MulDivOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    // ---- memory ----

    /// `lb`.
    pub fn lb(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Load {
            width: LoadWidth::B,
            rd,
            rs1,
            offset,
        });
    }
    /// `lbu`.
    pub fn lbu(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Load {
            width: LoadWidth::Bu,
            rd,
            rs1,
            offset,
        });
    }
    /// `lh`.
    pub fn lh(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Load {
            width: LoadWidth::H,
            rd,
            rs1,
            offset,
        });
    }
    /// `lhu`.
    pub fn lhu(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Load {
            width: LoadWidth::Hu,
            rd,
            rs1,
            offset,
        });
    }
    /// `lw`.
    pub fn lw(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Load {
            width: LoadWidth::W,
            rd,
            rs1,
            offset,
        });
    }
    /// `lwu` (RV64).
    pub fn lwu(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Load {
            width: LoadWidth::Wu,
            rd,
            rs1,
            offset,
        });
    }
    /// `ld` (RV64).
    pub fn ld(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Load {
            width: LoadWidth::D,
            rd,
            rs1,
            offset,
        });
    }
    /// `sb`.
    pub fn sb(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Store {
            width: StoreWidth::B,
            rs2,
            rs1,
            offset,
        });
    }
    /// `sh`.
    pub fn sh(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Store {
            width: StoreWidth::H,
            rs2,
            rs1,
            offset,
        });
    }
    /// `sw`.
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Store {
            width: StoreWidth::W,
            rs2,
            rs1,
            offset,
        });
    }
    /// `sd` (RV64).
    pub fn sd(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::Store {
            width: StoreWidth::D,
            rs2,
            rs1,
            offset,
        });
    }

    // ---- atomics ----

    /// `lr.d`.
    pub fn lr_d(&mut self, rd: Reg, rs1: Reg) {
        self.inst(Inst::LoadReserved {
            double: true,
            rd,
            rs1,
        });
    }
    /// `lr.w`.
    pub fn lr_w(&mut self, rd: Reg, rs1: Reg) {
        self.inst(Inst::LoadReserved {
            double: false,
            rd,
            rs1,
        });
    }
    /// `sc.d`.
    pub fn sc_d(&mut self, rd: Reg, rs2: Reg, rs1: Reg) {
        self.inst(Inst::StoreConditional {
            double: true,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sc.w`.
    pub fn sc_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) {
        self.inst(Inst::StoreConditional {
            double: false,
            rd,
            rs1,
            rs2,
        });
    }
    /// `amoadd.d`.
    pub fn amoadd_d(&mut self, rd: Reg, rs2: Reg, rs1: Reg) {
        self.inst(Inst::Amo {
            op: AmoOp::Add,
            double: true,
            rd,
            rs1,
            rs2,
        });
    }
    /// `amoadd.w`.
    pub fn amoadd_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) {
        self.inst(Inst::Amo {
            op: AmoOp::Add,
            double: false,
            rd,
            rs1,
            rs2,
        });
    }
    /// `amoswap.w`.
    pub fn amoswap_w(&mut self, rd: Reg, rs2: Reg, rs1: Reg) {
        self.inst(Inst::Amo {
            op: AmoOp::Swap,
            double: false,
            rd,
            rs1,
            rs2,
        });
    }

    // ---- system ----

    /// `ecall`.
    pub fn ecall(&mut self) {
        self.inst(Inst::Ecall);
    }
    /// `ebreak` — the model's halt convention.
    pub fn ebreak(&mut self) {
        self.inst(Inst::Ebreak);
    }
    /// `mret`.
    pub fn mret(&mut self) {
        self.inst(Inst::Mret);
    }
    /// `sret`.
    pub fn sret(&mut self) {
        self.inst(Inst::Sret);
    }
    /// `fence`.
    pub fn fence(&mut self) {
        self.inst(Inst::Fence);
    }
    /// `fence.i` — instruction-stream synchronization after self-modifying
    /// code (also drops the simulator's decoded-instruction cache).
    pub fn fence_i(&mut self) {
        self.inst(Inst::FenceI);
    }
    /// `csrr rd, csr`.
    pub fn csrr(&mut self, rd: Reg, csr: u16) {
        self.inst(Inst::Csr {
            op: CsrOp::Rs,
            rd,
            csr,
            src: CsrSrc::Reg(Reg::Zero),
        });
    }
    /// `csrw csr, rs`.
    pub fn csrw(&mut self, csr: u16, rs: Reg) {
        self.inst(Inst::Csr {
            op: CsrOp::Rw,
            rd: Reg::Zero,
            csr,
            src: CsrSrc::Reg(rs),
        });
    }
    /// `csrrw rd, csr, rs`.
    pub fn csrrw(&mut self, rd: Reg, csr: u16, rs: Reg) {
        self.inst(Inst::Csr {
            op: CsrOp::Rw,
            rd,
            csr,
            src: CsrSrc::Reg(rs),
        });
    }
    /// `csrs csr, rs` (set bits).
    pub fn csrs(&mut self, csr: u16, rs: Reg) {
        self.inst(Inst::Csr {
            op: CsrOp::Rs,
            rd: Reg::Zero,
            csr,
            src: CsrSrc::Reg(rs),
        });
    }

    // ---- F/D ----

    /// `flw`.
    pub fn flw(&mut self, rd: FReg, rs1: Reg, offset: i64) {
        self.inst(Inst::FpLoad {
            fmt: FpFmt::S,
            rd,
            rs1,
            offset,
        });
    }
    /// `fld`.
    pub fn fld(&mut self, rd: FReg, rs1: Reg, offset: i64) {
        self.inst(Inst::FpLoad {
            fmt: FpFmt::D,
            rd,
            rs1,
            offset,
        });
    }
    /// `fsw`.
    pub fn fsw(&mut self, rs2: FReg, rs1: Reg, offset: i64) {
        self.inst(Inst::FpStore {
            fmt: FpFmt::S,
            rs2,
            rs1,
            offset,
        });
    }
    /// `fsd`.
    pub fn fsd(&mut self, rs2: FReg, rs1: Reg, offset: i64) {
        self.inst(Inst::FpStore {
            fmt: FpFmt::D,
            rs2,
            rs1,
            offset,
        });
    }
    /// `fadd.s`.
    pub fn fadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpOp3 {
            fmt: FpFmt::S,
            op: FpOp::Add,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fsub.s`.
    pub fn fsub_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpOp3 {
            fmt: FpFmt::S,
            op: FpOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fmul.s`.
    pub fn fmul_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpOp3 {
            fmt: FpFmt::S,
            op: FpOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fdiv.s`.
    pub fn fdiv_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpOp3 {
            fmt: FpFmt::S,
            op: FpOp::Div,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fadd.d`.
    pub fn fadd_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpOp3 {
            fmt: FpFmt::D,
            op: FpOp::Add,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fmul.d`.
    pub fn fmul_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpOp3 {
            fmt: FpFmt::D,
            op: FpOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fdiv.d`.
    pub fn fdiv_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpOp3 {
            fmt: FpFmt::D,
            op: FpOp::Div,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fmadd.s` (`rd = rs1*rs2 + rs3`).
    pub fn fmadd_s(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.inst(Inst::FpFma {
            fmt: FpFmt::S,
            rd,
            rs1,
            rs2,
            rs3,
            negate_product: false,
            negate_addend: false,
        });
    }
    /// `fmadd.d`.
    pub fn fmadd_d(&mut self, rd: FReg, rs1: FReg, rs2: FReg, rs3: FReg) {
        self.inst(Inst::FpFma {
            fmt: FpFmt::D,
            rd,
            rs1,
            rs2,
            rs3,
            negate_product: false,
            negate_addend: false,
        });
    }
    /// `feq.s`.
    pub fn feq_s(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpCmp {
            fmt: FpFmt::S,
            cmp: FpCmp::Eq,
            rd,
            rs1,
            rs2,
        });
    }
    /// `flt.s`.
    pub fn flt_s(&mut self, rd: Reg, rs1: FReg, rs2: FReg) {
        self.inst(Inst::FpCmp {
            fmt: FpFmt::S,
            cmp: FpCmp::Lt,
            rd,
            rs1,
            rs2,
        });
    }
    /// `fcvt.s.w`.
    pub fn fcvt_s_w(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::IntToFp {
            fmt: FpFmt::S,
            rd,
            rs1,
            signed: true,
            wide: false,
        });
    }
    /// `fcvt.w.s` (round toward zero).
    pub fn fcvt_w_s(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpToInt {
            fmt: FpFmt::S,
            rd,
            rs1,
            signed: true,
            wide: false,
        });
    }
    /// `fcvt.d.l`.
    pub fn fcvt_d_l(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::IntToFp {
            fmt: FpFmt::D,
            rd,
            rs1,
            signed: true,
            wide: true,
        });
    }
    /// `fcvt.l.d`.
    pub fn fcvt_l_d(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpToInt {
            fmt: FpFmt::D,
            rd,
            rs1,
            signed: true,
            wide: true,
        });
    }
    /// `fmv.x.w`.
    pub fn fmv_x_w(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpMvToInt {
            fmt: FpFmt::S,
            rd,
            rs1,
        });
    }
    /// `fmv.w.x`.
    pub fn fmv_w_x(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::FpMvFromInt {
            fmt: FpFmt::S,
            rd,
            rs1,
        });
    }
    /// `fmv.x.d`.
    pub fn fmv_x_d(&mut self, rd: Reg, rs1: FReg) {
        self.inst(Inst::FpMvToInt {
            fmt: FpFmt::D,
            rd,
            rs1,
        });
    }
    /// `fmv.d.x`.
    pub fn fmv_d_x(&mut self, rd: FReg, rs1: Reg) {
        self.inst(Inst::FpMvFromInt {
            fmt: FpFmt::D,
            rd,
            rs1,
        });
    }

    // ---- Xpulp ----

    /// `p.lw rd, imm(rs1!)` — post-increment word load.
    pub fn p_lw_post(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::LoadPost {
            width: LoadWidth::W,
            rd,
            rs1,
            offset,
        });
    }
    /// `p.lh rd, imm(rs1!)`.
    pub fn p_lh_post(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::LoadPost {
            width: LoadWidth::H,
            rd,
            rs1,
            offset,
        });
    }
    /// `p.lbu rd, imm(rs1!)`.
    pub fn p_lbu_post(&mut self, rd: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::LoadPost {
            width: LoadWidth::Bu,
            rd,
            rs1,
            offset,
        });
    }
    /// `p.sw rs2, imm(rs1!)` — post-increment word store.
    pub fn p_sw_post(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::StorePost {
            width: StoreWidth::W,
            rs2,
            rs1,
            offset,
        });
    }
    /// `p.sh rs2, imm(rs1!)`.
    pub fn p_sh_post(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::StorePost {
            width: StoreWidth::H,
            rs2,
            rs1,
            offset,
        });
    }
    /// `p.sb rs2, imm(rs1!)`.
    pub fn p_sb_post(&mut self, rs2: Reg, rs1: Reg, offset: i64) {
        self.inst(Inst::StorePost {
            width: StoreWidth::B,
            rs2,
            rs1,
            offset,
        });
    }
    /// `p.mac rd, rs1, rs2` (`rd += rs1 * rs2`).
    pub fn p_mac(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Mac {
            rd,
            rs1,
            rs2,
            subtract: false,
        });
    }
    /// `p.msu rd, rs1, rs2` (`rd -= rs1 * rs2`).
    pub fn p_msu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::Mac {
            rd,
            rs1,
            rs2,
            subtract: true,
        });
    }
    /// `p.min`.
    pub fn p_min(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Min,
            rd,
            rs1,
            rs2,
        });
    }
    /// `p.max`.
    pub fn p_max(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Max,
            rd,
            rs1,
            rs2,
        });
    }
    /// `p.abs`.
    pub fn p_abs(&mut self, rd: Reg, rs1: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Abs,
            rd,
            rs1,
            rs2: Reg::Zero,
        });
    }
    /// `p.clip rd, rs1, rs2` — clamp to `[-(rs2+1), rs2]`.
    pub fn p_clip(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Clip,
            rd,
            rs1,
            rs2,
        });
    }
    /// `p.exths` — sign-extend halfword.
    pub fn p_exths(&mut self, rd: Reg, rs1: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Exths,
            rd,
            rs1,
            rs2: Reg::Zero,
        });
    }
    /// `p.exthz` — zero-extend halfword.
    pub fn p_exthz(&mut self, rd: Reg, rs1: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Exthz,
            rd,
            rs1,
            rs2: Reg::Zero,
        });
    }
    /// `p.cnt` — population count.
    pub fn p_cnt(&mut self, rd: Reg, rs1: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Cnt,
            rd,
            rs1,
            rs2: Reg::Zero,
        });
    }
    /// `p.ff1` — index of the first set bit (32 when none).
    pub fn p_ff1(&mut self, rd: Reg, rs1: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Ff1,
            rd,
            rs1,
            rs2: Reg::Zero,
        });
    }
    /// `p.fl1` — index of the last set bit (32 when none).
    pub fn p_fl1(&mut self, rd: Reg, rs1: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Fl1,
            rd,
            rs1,
            rs2: Reg::Zero,
        });
    }
    /// `p.ror` — rotate right by `rs2 & 31`.
    pub fn p_ror(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::PulpAlu {
            op: PulpAluOp::Ror,
            rd,
            rs1,
            rs2,
        });
    }

    /// `lp.starti L, label`.
    pub fn lp_starti(&mut self, loop_idx: u8, target: Label) {
        self.items.push(Item::HwStart { loop_idx, target });
    }
    /// `lp.endi L, label`.
    pub fn lp_endi(&mut self, loop_idx: u8, target: Label) {
        self.items.push(Item::HwEnd { loop_idx, target });
    }
    /// `lp.counti L, imm`.
    pub fn lp_counti(&mut self, loop_idx: u8, count: i64) {
        self.inst(Inst::HwLoop {
            op: HwLoopOp::Counti,
            loop_idx,
            value: count,
            rs1: Reg::Zero,
        });
    }
    /// `lp.count L, rs1`.
    pub fn lp_count(&mut self, loop_idx: u8, rs1: Reg) {
        self.inst(Inst::HwLoop {
            op: HwLoopOp::Count,
            loop_idx,
            value: 0,
            rs1,
        });
    }

    fn simd(&mut self, op: SimdOp, fmt: SimdFmt, rd: Reg, rs1: Reg, rs2: Reg, scalar: bool) {
        self.inst(Inst::Simd {
            op,
            fmt,
            rd,
            rs1,
            rs2,
            scalar_rs2: scalar,
        });
    }

    /// `pv.add.b`.
    pub fn pv_add_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Add, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.add.h`.
    pub fn pv_add_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Add, SimdFmt::H, rd, rs1, rs2, false);
    }
    /// `pv.sub.b`.
    pub fn pv_sub_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Sub, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.max.b`.
    pub fn pv_max_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Max, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.max.sc.b` — max against a replicated scalar.
    pub fn pv_max_sc_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Max, SimdFmt::B, rd, rs1, rs2, true);
    }
    /// `pv.min.b`.
    pub fn pv_min_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Min, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.avg.h`.
    pub fn pv_avg_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Avg, SimdFmt::H, rd, rs1, rs2, false);
    }
    /// `pv.sra.h` (per-lane arithmetic shift).
    pub fn pv_sra_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Sra, SimdFmt::H, rd, rs1, rs2, true);
    }
    /// `pv.dotsp.b` — signed int8 dot product.
    pub fn pv_dotsp_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Dotsp, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.sdotsp.b` — accumulating signed int8 dot product.
    pub fn pv_sdotsp_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Sdotsp, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.sdotsp.h` — accumulating signed int16 dot product.
    pub fn pv_sdotsp_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Sdotsp, SimdFmt::H, rd, rs1, rs2, false);
    }
    /// `pv.sdotup.b` — accumulating unsigned int8 dot product.
    pub fn pv_sdotup_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Sdotup, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.extract.b` — extract lane `rs2 mod 4`, sign-extended.
    pub fn pv_extract_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Extract, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.extract.h` — extract lane `rs2 mod 2`, sign-extended.
    pub fn pv_extract_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Extract, SimdFmt::H, rd, rs1, rs2, false);
    }
    /// `pv.insert.b` — insert rs1's low byte into lane `rs2 mod 4` of rd.
    pub fn pv_insert_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Insert, SimdFmt::B, rd, rs1, rs2, false);
    }
    /// `pv.shuffle.b` — permute rs1's bytes by the indices in rs2's bytes.
    pub fn pv_shuffle_b(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.simd(SimdOp::Shuffle, SimdFmt::B, rd, rs1, rs2, false);
    }

    /// `vfadd.h` — packed FP16 add.
    pub fn vfadd_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::SimdFp {
            op: SimdFpOp::Add,
            rd,
            rs1,
            rs2,
        });
    }
    /// `vfsub.h`.
    pub fn vfsub_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::SimdFp {
            op: SimdFpOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }
    /// `vfmul.h`.
    pub fn vfmul_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::SimdFp {
            op: SimdFpOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }
    /// `vfmac.h` — packed FP16 multiply-accumulate.
    pub fn vfmac_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::SimdFp {
            op: SimdFpOp::Mac,
            rd,
            rs1,
            rs2,
        });
    }
    /// `vfmax.h`.
    pub fn vfmax_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::SimdFp {
            op: SimdFpOp::Max,
            rd,
            rs1,
            rs2,
        });
    }
    /// `vfdotpex.s.h` — FP16 dot product accumulated into an f32 register.
    pub fn vfdotpex_s_h(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.inst(Inst::SimdFp {
            op: SimdFpOp::DotpexS,
            rd,
            rs1,
            rs2,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new(Xlen::Rv64);
        let back = a.label();
        a.bind(back);
        a.nop();
        let fwd = a.label();
        a.beq(Reg::A0, Reg::A1, fwd); // +8 from idx 1
        a.j(back); // -8 from idx 2
        a.bind(fwd);
        a.ebreak();
        let w = a.assemble().unwrap();
        let b = decode(w[1], Xlen::Rv64, false).unwrap();
        assert_eq!(
            b,
            Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 8
            }
        );
        let j = decode(w[2], Xlen::Rv64, false).unwrap();
        assert_eq!(
            j,
            Inst::Jal {
                rd: Reg::Zero,
                offset: -8
            }
        );
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Asm::new(Xlen::Rv64);
        let l = a.label();
        a.j(l);
        assert!(matches!(a.assemble(), Err(RvError::UnboundLabel(_))));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new(Xlen::Rv64);
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn li_expansions() {
        // Small constants: one instruction.
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::A0, 42);
        assert_eq!(a.len(), 1);
        // 32-bit constants: two.
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::A0, 0x12345678);
        assert_eq!(a.len(), 2);
        // 64-bit constants: more.
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::A0, 0x1234_5678_9ABC_DEF0);
        assert!(a.len() >= 5);
    }

    #[test]
    fn li_values_correct_on_core() {
        use crate::core::{Core, FlatBus};
        let values: Vec<i64> = vec![
            0,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x7FFF_FFFF,
            -0x8000_0000,
            0x1234_5678,
            -0x1234_5678,
            0x1234_5678_9ABC_DEF0,
            i64::MAX,
            i64::MIN,
            0x8000_0000,
            0xFFF_FFFF_F800,
        ];
        for v in values {
            let mut a = Asm::new(Xlen::Rv64);
            a.li(Reg::A0, v);
            a.ebreak();
            let mut bus = FlatBus::new(1024);
            bus.load_words(0, &a.assemble().unwrap());
            let mut core = Core::cva6();
            core.run(&mut bus, 1000).unwrap();
            assert_eq!(core.reg(Reg::A0) as i64, v, "li {v:#x}");
        }
    }

    #[test]
    fn li_rv32_truncates() {
        use crate::core::{Core, FlatBus};
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::A0, 0xDEAD_BEEFu32 as i64);
        a.ebreak();
        let mut bus = FlatBus::new(1024);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::ri5cy(0);
        core.run(&mut bus, 1000).unwrap();
        assert_eq!(core.reg(Reg::A0), 0xDEAD_BEEF);
    }

    #[test]
    fn la_is_pc_relative() {
        use crate::core::{Core, FlatBus};
        let mut a = Asm::new(Xlen::Rv64);
        let data = a.label();
        a.la(Reg::A0, data);
        a.ebreak();
        a.bind(data);
        let words = a.assemble().unwrap();
        // Load at a non-zero base; la must still resolve relative.
        let base = 0x400u64;
        let mut bus = FlatBus::new(4096);
        bus.load_words(base, &words);
        let mut core = Core::cva6();
        core.set_pc(base);
        core.run(&mut bus, 1000).unwrap();
        assert_eq!(core.reg(Reg::A0), base + 3 * 4);
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new(Xlen::Rv32);
        assert!(a.is_empty());
        a.nop();
        a.nop();
        assert_eq!(a.here(), 8);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn raw_word_passthrough() {
        let mut a = Asm::new(Xlen::Rv32);
        a.word(0xDEAD_BEEF);
        assert_eq!(a.assemble().unwrap(), vec![0xDEAD_BEEF]);
    }
}
