//! Instruction decoding: 32-bit word → [`Inst`].
//!
//! # Custom (Xpulp) encoding map
//!
//! The Xpulp instructions live in the RISC-V custom opcode spaces; this
//! simulator and its assembler form a closed toolchain, so the layout below
//! is authoritative for this repository:
//!
//! | opcode | funct3 | format | meaning |
//! |---|---|---|---|
//! | custom-0 `0x0B` | load funct3 | I | post-increment load (`p.lw rd, imm(rs1!)`) |
//! | custom-1 `0x2B` | store funct3 | S | post-increment store |
//! | custom-1 `0x2B` | `111` | R | `p.mac` (funct7 0) / `p.msu` (funct7 1) |
//! | custom-2 `0x5B` | `000/001` | R | packed SIMD `.b`/`.h`, vector × vector (funct7 = op) |
//! | custom-2 `0x5B` | `010/011` | R | packed SIMD `.b`/`.h`, vector × replicated scalar |
//! | custom-2 `0x5B` | `100` | R | packed FP16 SIMD (funct7 = op) |
//! | custom-3 `0x7B` | `000/001` | I | `lp.starti` / `lp.endi` (pc-relative offset, loop# in rd\[0\]) |
//! | custom-3 `0x7B` | `010` | R | `lp.count` (count in rs1, loop# in rd\[0\]) |
//! | custom-3 `0x7B` | `011` | I | `lp.counti` (unsigned 12-bit count, loop# in rd\[0\]) |
//! | custom-3 `0x7B` | `100` | R | scalar PULP ALU (min/max/abs/ext/clip; funct7 = op) |

use crate::inst::*;

#[inline]
fn opcode(w: u32) -> u32 {
    w & 0x7F
}
#[inline]
fn rd(w: u32) -> Reg {
    Reg::from_index(((w >> 7) & 0x1F) as u8)
}
#[inline]
fn frd(w: u32) -> FReg {
    FReg(((w >> 7) & 0x1F) as u8)
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn rs1(w: u32) -> Reg {
    Reg::from_index(((w >> 15) & 0x1F) as u8)
}
#[inline]
fn frs1(w: u32) -> FReg {
    FReg(((w >> 15) & 0x1F) as u8)
}
#[inline]
fn rs2(w: u32) -> Reg {
    Reg::from_index(((w >> 20) & 0x1F) as u8)
}
#[inline]
fn frs2(w: u32) -> FReg {
    FReg(((w >> 20) & 0x1F) as u8)
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}
#[inline]
fn imm_i(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}
#[inline]
fn imm_s(w: u32) -> i64 {
    let hi = ((w as i32) >> 25) as i64;
    let lo = ((w >> 7) & 0x1F) as i64;
    (hi << 5) | lo
}
#[inline]
fn imm_b(w: u32) -> i64 {
    let b12 = ((w as i32) >> 31) as i64; // sign
    let b11 = ((w >> 7) & 1) as i64;
    let b10_5 = ((w >> 25) & 0x3F) as i64;
    let b4_1 = ((w >> 8) & 0xF) as i64;
    (b12 << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1)
}
#[inline]
fn imm_u(w: u32) -> i64 {
    (((w & 0xFFFF_F000) as i32) >> 12) as i64
}
#[inline]
fn imm_j(w: u32) -> i64 {
    let b20 = ((w as i32) >> 31) as i64;
    let b19_12 = ((w >> 12) & 0xFF) as i64;
    let b11 = ((w >> 20) & 1) as i64;
    let b10_1 = ((w >> 21) & 0x3FF) as i64;
    (b20 << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

fn load_width(f3: u32, xlen: Xlen) -> Option<LoadWidth> {
    Some(match f3 {
        0b000 => LoadWidth::B,
        0b001 => LoadWidth::H,
        0b010 => LoadWidth::W,
        0b011 if xlen == Xlen::Rv64 => LoadWidth::D,
        0b100 => LoadWidth::Bu,
        0b101 => LoadWidth::Hu,
        0b110 if xlen == Xlen::Rv64 => LoadWidth::Wu,
        _ => return None,
    })
}

fn store_width(f3: u32, xlen: Xlen) -> Option<StoreWidth> {
    Some(match f3 {
        0b000 => StoreWidth::B,
        0b001 => StoreWidth::H,
        0b010 => StoreWidth::W,
        0b011 if xlen == Xlen::Rv64 => StoreWidth::D,
        _ => return None,
    })
}

fn branch_cond(f3: u32) -> Option<BranchCond> {
    Some(match f3 {
        0b000 => BranchCond::Eq,
        0b001 => BranchCond::Ne,
        0b100 => BranchCond::Lt,
        0b101 => BranchCond::Ge,
        0b110 => BranchCond::Ltu,
        0b111 => BranchCond::Geu,
        _ => return None,
    })
}

fn muldiv_op(f3: u32) -> MulDivOp {
    match f3 {
        0b000 => MulDivOp::Mul,
        0b001 => MulDivOp::Mulh,
        0b010 => MulDivOp::Mulhsu,
        0b011 => MulDivOp::Mulhu,
        0b100 => MulDivOp::Div,
        0b101 => MulDivOp::Divu,
        0b110 => MulDivOp::Rem,
        _ => MulDivOp::Remu,
    }
}

fn simd_op_from_index(i: u32) -> Option<SimdOp> {
    Some(match i {
        0 => SimdOp::Add,
        1 => SimdOp::Sub,
        2 => SimdOp::Avg,
        3 => SimdOp::Avgu,
        4 => SimdOp::Min,
        5 => SimdOp::Minu,
        6 => SimdOp::Max,
        7 => SimdOp::Maxu,
        8 => SimdOp::Srl,
        9 => SimdOp::Sra,
        10 => SimdOp::And,
        11 => SimdOp::Or,
        12 => SimdOp::Xor,
        13 => SimdOp::Abs,
        14 => SimdOp::Dotup,
        15 => SimdOp::Dotusp,
        16 => SimdOp::Dotsp,
        17 => SimdOp::Sdotup,
        18 => SimdOp::Sdotusp,
        19 => SimdOp::Sdotsp,
        20 => SimdOp::Extract,
        21 => SimdOp::Insert,
        22 => SimdOp::Shuffle,
        _ => return None,
    })
}

fn simd_fp_op_from_index(i: u32) -> Option<SimdFpOp> {
    Some(match i {
        0 => SimdFpOp::Add,
        1 => SimdFpOp::Sub,
        2 => SimdFpOp::Mul,
        3 => SimdFpOp::Mac,
        4 => SimdFpOp::Min,
        5 => SimdFpOp::Max,
        6 => SimdFpOp::DotpexS,
        _ => return None,
    })
}

fn pulp_alu_from_index(i: u32) -> Option<PulpAluOp> {
    Some(match i {
        0 => PulpAluOp::Min,
        1 => PulpAluOp::Max,
        2 => PulpAluOp::Minu,
        3 => PulpAluOp::Maxu,
        4 => PulpAluOp::Abs,
        5 => PulpAluOp::Exths,
        6 => PulpAluOp::Exthz,
        7 => PulpAluOp::Extbs,
        8 => PulpAluOp::Extbz,
        9 => PulpAluOp::Clip,
        10 => PulpAluOp::Cnt,
        11 => PulpAluOp::Ff1,
        12 => PulpAluOp::Fl1,
        13 => PulpAluOp::Ror,
        _ => return None,
    })
}

fn fp_fmt(bit: u32) -> FpFmt {
    if bit & 1 == 0 {
        FpFmt::S
    } else {
        FpFmt::D
    }
}

/// Decodes a 32-bit instruction word.
///
/// `xlen` gates RV64-only instructions (`ld`, `addiw`…); `xpulp` gates the
/// custom-space extension set. Returns `None` for undecodable words — the
/// interpreter turns that into an illegal-instruction trap.
///
/// # Example
///
/// ```
/// use hulkv_rv::inst::{AluOp, Inst, Reg, Xlen};
///
/// let i = hulkv_rv::decode(0x0015_0513, Xlen::Rv64, false).unwrap();
/// assert_eq!(i, Inst::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 });
/// ```
pub fn decode(w: u32, xlen: Xlen, xpulp: bool) -> Option<Inst> {
    let f3 = funct3(w);
    let f7 = funct7(w);
    match opcode(w) {
        0x37 => Some(Inst::Lui {
            rd: rd(w),
            imm: imm_u(w),
        }),
        0x17 => Some(Inst::Auipc {
            rd: rd(w),
            imm: imm_u(w),
        }),
        0x6F => Some(Inst::Jal {
            rd: rd(w),
            offset: imm_j(w),
        }),
        0x67 if f3 == 0 => Some(Inst::Jalr {
            rd: rd(w),
            rs1: rs1(w),
            offset: imm_i(w),
        }),
        0x63 => Some(Inst::Branch {
            cond: branch_cond(f3)?,
            rs1: rs1(w),
            rs2: rs2(w),
            offset: imm_b(w),
        }),
        0x03 => Some(Inst::Load {
            width: load_width(f3, xlen)?,
            rd: rd(w),
            rs1: rs1(w),
            offset: imm_i(w),
        }),
        0x23 => Some(Inst::Store {
            width: store_width(f3, xlen)?,
            rs2: rs2(w),
            rs1: rs1(w),
            offset: imm_s(w),
        }),
        0x13 => {
            let op = match f3 {
                0b000 => AluOp::Add,
                0b001 => AluOp::Sll,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b101 => {
                    if f7 >> 1 == 0b010000 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                0b110 => AluOp::Or,
                _ => AluOp::And,
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    let max = xlen.bits() - 1;
                    let shamt = (w >> 20) & 0x3F;
                    if shamt > max {
                        return None;
                    }
                    shamt as i64
                }
                _ => imm_i(w),
            };
            Some(Inst::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            })
        }
        0x1B if xlen == Xlen::Rv64 => {
            let op = match f3 {
                0b000 => AluOp::Add,
                0b001 => AluOp::Sll,
                0b101 => {
                    if f7 == 0b0100000 {
                        AluOp::Sra
                    } else {
                        AluOp::Srl
                    }
                }
                _ => return None,
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => ((w >> 20) & 0x1F) as i64,
                _ => imm_i(w),
            };
            Some(Inst::OpImm32 {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            })
        }
        0x33 => {
            if f7 == 0b0000001 {
                return Some(Inst::MulDiv {
                    op: muldiv_op(f3),
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                });
            }
            let op = match (f3, f7) {
                (0b000, 0b0000000) => AluOp::Add,
                (0b000, 0b0100000) => AluOp::Sub,
                (0b001, 0b0000000) => AluOp::Sll,
                (0b010, 0b0000000) => AluOp::Slt,
                (0b011, 0b0000000) => AluOp::Sltu,
                (0b100, 0b0000000) => AluOp::Xor,
                (0b101, 0b0000000) => AluOp::Srl,
                (0b101, 0b0100000) => AluOp::Sra,
                (0b110, 0b0000000) => AluOp::Or,
                (0b111, 0b0000000) => AluOp::And,
                _ => return None,
            };
            Some(Inst::Op {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            })
        }
        0x3B if xlen == Xlen::Rv64 => {
            if f7 == 0b0000001 {
                let op = muldiv_op(f3);
                if !matches!(
                    op,
                    MulDivOp::Mul | MulDivOp::Div | MulDivOp::Divu | MulDivOp::Rem | MulDivOp::Remu
                ) {
                    return None;
                }
                return Some(Inst::MulDiv32 {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                });
            }
            let op = match (f3, f7) {
                (0b000, 0b0000000) => AluOp::Add,
                (0b000, 0b0100000) => AluOp::Sub,
                (0b001, 0b0000000) => AluOp::Sll,
                (0b101, 0b0000000) => AluOp::Srl,
                (0b101, 0b0100000) => AluOp::Sra,
                _ => return None,
            };
            Some(Inst::Op32 {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            })
        }
        0x2F => {
            let double = match f3 {
                0b010 => false,
                0b011 if xlen == Xlen::Rv64 => true,
                _ => return None,
            };
            let funct5 = f7 >> 2;
            match funct5 {
                0b00010 => Some(Inst::LoadReserved {
                    double,
                    rd: rd(w),
                    rs1: rs1(w),
                }),
                0b00011 => Some(Inst::StoreConditional {
                    double,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                }),
                _ => {
                    let op = match funct5 {
                        0b00000 => AmoOp::Add,
                        0b00001 => AmoOp::Swap,
                        0b00100 => AmoOp::Xor,
                        0b01000 => AmoOp::Or,
                        0b01100 => AmoOp::And,
                        0b10000 => AmoOp::Min,
                        0b10100 => AmoOp::Max,
                        0b11000 => AmoOp::Minu,
                        0b11100 => AmoOp::Maxu,
                        _ => return None,
                    };
                    Some(Inst::Amo {
                        op,
                        double,
                        rd: rd(w),
                        rs1: rs1(w),
                        rs2: rs2(w),
                    })
                }
            }
        }
        0x0F => match f3 {
            0b000 => Some(Inst::Fence),
            0b001 => Some(Inst::FenceI),
            _ => None,
        },
        0x73 => {
            if f3 == 0 {
                return match w {
                    0x0000_0073 => Some(Inst::Ecall),
                    0x0010_0073 => Some(Inst::Ebreak),
                    0x3020_0073 => Some(Inst::Mret),
                    0x1020_0073 => Some(Inst::Sret),
                    0x1050_0073 => Some(Inst::Wfi),
                    _ => None,
                };
            }
            let csr = (w >> 20) as u16;
            let op = match f3 & 0b011 {
                0b001 => CsrOp::Rw,
                0b010 => CsrOp::Rs,
                0b011 => CsrOp::Rc,
                _ => return None,
            };
            let src = if f3 & 0b100 != 0 {
                CsrSrc::Imm(((w >> 15) & 0x1F) as u8)
            } else {
                CsrSrc::Reg(rs1(w))
            };
            Some(Inst::Csr {
                op,
                rd: rd(w),
                csr,
                src,
            })
        }

        // --- F/D ---
        0x07 => {
            let fmt = match f3 {
                0b010 => FpFmt::S,
                0b011 => FpFmt::D,
                _ => return None,
            };
            Some(Inst::FpLoad {
                fmt,
                rd: frd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            })
        }
        0x27 => {
            let fmt = match f3 {
                0b010 => FpFmt::S,
                0b011 => FpFmt::D,
                _ => return None,
            };
            Some(Inst::FpStore {
                fmt,
                rs2: frs2(w),
                rs1: rs1(w),
                offset: imm_s(w),
            })
        }
        op @ (0x43 | 0x47 | 0x4B | 0x4F) => {
            let fmt = match (w >> 25) & 0b11 {
                0b00 => FpFmt::S,
                0b01 => FpFmt::D,
                _ => return None,
            };
            let (np, na) = match op {
                0x43 => (false, false),
                0x47 => (false, true),
                0x4B => (true, false),
                _ => (true, true),
            };
            Some(Inst::FpFma {
                fmt,
                rd: frd(w),
                rs1: frs1(w),
                rs2: frs2(w),
                rs3: FReg((w >> 27) as u8),
                negate_product: np,
                negate_addend: na,
            })
        }
        0x53 => {
            let fmt = fp_fmt(f7);
            let group = f7 >> 1;
            match group {
                0b000000 => Some(Inst::FpOp3 {
                    fmt,
                    op: FpOp::Add,
                    rd: frd(w),
                    rs1: frs1(w),
                    rs2: frs2(w),
                }),
                0b000010 => Some(Inst::FpOp3 {
                    fmt,
                    op: FpOp::Sub,
                    rd: frd(w),
                    rs1: frs1(w),
                    rs2: frs2(w),
                }),
                0b000100 => Some(Inst::FpOp3 {
                    fmt,
                    op: FpOp::Mul,
                    rd: frd(w),
                    rs1: frs1(w),
                    rs2: frs2(w),
                }),
                0b000110 => Some(Inst::FpOp3 {
                    fmt,
                    op: FpOp::Div,
                    rd: frd(w),
                    rs1: frs1(w),
                    rs2: frs2(w),
                }),
                0b010110 => Some(Inst::FpOp3 {
                    fmt,
                    op: FpOp::Sqrt,
                    rd: frd(w),
                    rs1: frs1(w),
                    rs2: frs2(w),
                }),
                0b001000 => {
                    let op = match f3 {
                        0b000 => FpOp::SgnJ,
                        0b001 => FpOp::SgnJn,
                        0b010 => FpOp::SgnJx,
                        _ => return None,
                    };
                    Some(Inst::FpOp3 {
                        fmt,
                        op,
                        rd: frd(w),
                        rs1: frs1(w),
                        rs2: frs2(w),
                    })
                }
                0b001010 => {
                    let op = match f3 {
                        0b000 => FpOp::Min,
                        0b001 => FpOp::Max,
                        _ => return None,
                    };
                    Some(Inst::FpOp3 {
                        fmt,
                        op,
                        rd: frd(w),
                        rs1: frs1(w),
                        rs2: frs2(w),
                    })
                }
                0b010000 => {
                    // fcvt.s.d (f7=0100000, rs2=1) / fcvt.d.s (f7=0100001, rs2=0)
                    let to = if f7 & 1 == 0 { FpFmt::S } else { FpFmt::D };
                    Some(Inst::FpCvt {
                        to,
                        rd: frd(w),
                        rs1: frs1(w),
                    })
                }
                0b101000 => {
                    let cmp = match f3 {
                        0b000 => FpCmp::Le,
                        0b001 => FpCmp::Lt,
                        0b010 => FpCmp::Eq,
                        _ => return None,
                    };
                    Some(Inst::FpCmp {
                        fmt,
                        cmp,
                        rd: rd(w),
                        rs1: frs1(w),
                        rs2: frs2(w),
                    })
                }
                0b110000 => {
                    let (wide, signed) = match (w >> 20) & 0x1F {
                        0b00000 => (false, true),
                        0b00001 => (false, false),
                        0b00010 if xlen == Xlen::Rv64 => (true, true),
                        0b00011 if xlen == Xlen::Rv64 => (true, false),
                        _ => return None,
                    };
                    Some(Inst::FpToInt {
                        fmt,
                        rd: rd(w),
                        rs1: frs1(w),
                        signed,
                        wide,
                    })
                }
                0b110100 => {
                    let (wide, signed) = match (w >> 20) & 0x1F {
                        0b00000 => (false, true),
                        0b00001 => (false, false),
                        0b00010 if xlen == Xlen::Rv64 => (true, true),
                        0b00011 if xlen == Xlen::Rv64 => (true, false),
                        _ => return None,
                    };
                    Some(Inst::IntToFp {
                        fmt,
                        rd: frd(w),
                        rs1: rs1(w),
                        signed,
                        wide,
                    })
                }
                0b111000 if f3 == 0 => Some(Inst::FpMvToInt {
                    fmt,
                    rd: rd(w),
                    rs1: frs1(w),
                }),
                0b111100 if f3 == 0 => Some(Inst::FpMvFromInt {
                    fmt,
                    rd: frd(w),
                    rs1: rs1(w),
                }),
                _ => None,
            }
        }

        // --- Xpulp custom spaces ---
        0x0B if xpulp => {
            let width = load_width(f3, Xlen::Rv32)?;
            Some(Inst::LoadPost {
                width,
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            })
        }
        0x2B if xpulp => {
            if f3 == 0b111 {
                return match f7 {
                    0 => Some(Inst::Mac {
                        rd: rd(w),
                        rs1: rs1(w),
                        rs2: rs2(w),
                        subtract: false,
                    }),
                    1 => Some(Inst::Mac {
                        rd: rd(w),
                        rs1: rs1(w),
                        rs2: rs2(w),
                        subtract: true,
                    }),
                    _ => None,
                };
            }
            let width = store_width(f3, Xlen::Rv32)?;
            Some(Inst::StorePost {
                width,
                rs2: rs2(w),
                rs1: rs1(w),
                offset: imm_s(w),
            })
        }
        0x5B if xpulp => {
            if f3 == 0b100 {
                let op = simd_fp_op_from_index(f7)?;
                return Some(Inst::SimdFp {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                });
            }
            let (fmt, scalar) = match f3 {
                0b000 => (SimdFmt::B, false),
                0b001 => (SimdFmt::H, false),
                0b010 => (SimdFmt::B, true),
                0b011 => (SimdFmt::H, true),
                _ => return None,
            };
            let op = simd_op_from_index(f7)?;
            Some(Inst::Simd {
                op,
                fmt,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
                scalar_rs2: scalar,
            })
        }
        0x7B if xpulp => {
            let loop_idx = ((w >> 7) & 1) as u8;
            match f3 {
                0b000 => Some(Inst::HwLoop {
                    op: HwLoopOp::Starti,
                    loop_idx,
                    value: imm_i(w),
                    rs1: Reg::Zero,
                }),
                0b001 => Some(Inst::HwLoop {
                    op: HwLoopOp::Endi,
                    loop_idx,
                    value: imm_i(w),
                    rs1: Reg::Zero,
                }),
                0b010 => Some(Inst::HwLoop {
                    op: HwLoopOp::Count,
                    loop_idx,
                    value: 0,
                    rs1: rs1(w),
                }),
                0b011 => Some(Inst::HwLoop {
                    op: HwLoopOp::Counti,
                    loop_idx,
                    value: ((w >> 20) & 0xFFF) as i64,
                    rs1: Reg::Zero,
                }),
                0b100 => {
                    let op = pulp_alu_from_index(f7)?;
                    Some(Inst::PulpAlu {
                        op,
                        rd: rd(w),
                        rs1: rs1(w),
                        rs2: rs2(w),
                    })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// One instruction parcel fetched from a flat code image: the raw bits,
/// the parcel length in bytes (2 for RVC, 4 otherwise) and the decode
/// result (`None` when the bits are undecodable or the parcel is
/// truncated by the end of the image).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parcel {
    /// Raw instruction bits (low halfword only when truncated).
    pub raw: u32,
    /// Parcel length in bytes: 2 (RVC) or 4.
    pub len: u8,
    /// The decoded instruction, or `None` for undecodable/truncated bits.
    pub inst: Option<Inst>,
}

/// Fetches and decodes the instruction parcel at byte `offset` of a flat
/// code image, RVC-aware — the static-analysis twin of the interpreter's
/// fetch path (same length determination, same [`decode`]/
/// [`crate::compressed::expand`] calls).
///
/// Returns `None` when fewer than two bytes remain at `offset` (nothing
/// fetchable); a 32-bit parcel whose upper halfword is cut off by the end
/// of the image comes back as `Some` with `inst: None` and `len: 4`, so
/// callers can report "truncated parcel" at a precise pc.
///
/// # Example
///
/// ```
/// use hulkv_rv::decode::fetch_parcel;
/// use hulkv_rv::Xlen;
///
/// let image = 0x0015_0513u32.to_le_bytes(); // addi a0, a0, 1
/// let p = fetch_parcel(&image, 0, Xlen::Rv64, false).unwrap();
/// assert_eq!((p.len, p.raw), (4, 0x0015_0513));
/// assert!(p.inst.is_some());
/// ```
pub fn fetch_parcel(image: &[u8], offset: usize, xlen: Xlen, xpulp: bool) -> Option<Parcel> {
    let lo_bytes = image.get(offset..offset + 2)?;
    let lo = u16::from_le_bytes([lo_bytes[0], lo_bytes[1]]);
    if lo & 3 != 3 {
        return Some(Parcel {
            raw: u32::from(lo),
            len: 2,
            inst: crate::compressed::expand(lo, xlen),
        });
    }
    match image.get(offset + 2..offset + 4) {
        Some(hi_bytes) => {
            let hi = u16::from_le_bytes([hi_bytes[0], hi_bytes[1]]);
            let word = u32::from(lo) | (u32::from(hi) << 16);
            Some(Parcel {
                raw: word,
                len: 4,
                inst: decode(word, xlen, xpulp),
            })
        }
        None => Some(Parcel {
            raw: u32::from(lo),
            len: 4,
            inst: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn decode_golden() {
        let i = decode(0x00C5_8533, Xlen::Rv64, false).unwrap();
        assert_eq!(
            i,
            Inst::Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
        );
        let i = decode(0xFE02_9EE3, Xlen::Rv32, false).unwrap();
        assert_eq!(
            i,
            Inst::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::T0,
                rs2: Reg::Zero,
                offset: -4
            }
        );
    }

    #[test]
    fn rv64_only_gated() {
        // ld is RV64-only.
        let word = encode(&Inst::Load {
            width: LoadWidth::D,
            rd: Reg::A0,
            rs1: Reg::Sp,
            offset: 0,
        })
        .unwrap();
        assert!(decode(word, Xlen::Rv64, false).is_some());
        assert!(decode(word, Xlen::Rv32, false).is_none());
        // addiw is RV64-only.
        let word = encode(&Inst::OpImm32 {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        })
        .unwrap();
        assert!(decode(word, Xlen::Rv64, false).is_some());
        assert!(decode(word, Xlen::Rv32, false).is_none());
    }

    #[test]
    fn xpulp_gated() {
        let word = encode(&Inst::Mac {
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            subtract: false,
        })
        .unwrap();
        assert!(decode(word, Xlen::Rv32, true).is_some());
        assert!(decode(word, Xlen::Rv32, false).is_none());
        assert!(decode(word, Xlen::Rv64, false).is_none());
    }

    #[test]
    fn garbage_rejected() {
        assert!(decode(0xFFFF_FFFF, Xlen::Rv64, true).is_none());
        assert!(decode(0x0000_0000, Xlen::Rv64, true).is_none());
    }

    fn round_trip(inst: Inst, xlen: Xlen, xpulp: bool) {
        let w = encode(&inst).unwrap();
        let back = decode(w, xlen, xpulp).unwrap_or_else(|| panic!("decode failed for {inst:?}"));
        assert_eq!(back, inst, "word {w:#010x}");
    }

    #[test]
    fn round_trip_core_set() {
        use Inst::*;
        let cases = vec![
            Lui {
                rd: Reg::A0,
                imm: -1,
            },
            Auipc {
                rd: Reg::T3,
                imm: 0x7FFFF,
            },
            Jal {
                rd: Reg::Ra,
                offset: -2048,
            },
            Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            },
            Load {
                width: LoadWidth::Hu,
                rd: Reg::S1,
                rs1: Reg::Gp,
                offset: -3,
            },
            Store {
                width: StoreWidth::B,
                rs2: Reg::T6,
                rs1: Reg::Tp,
                offset: 2047,
            },
            OpImm {
                op: AluOp::Xor,
                rd: Reg::A1,
                rs1: Reg::A2,
                imm: -2048,
            },
            OpImm {
                op: AluOp::Sra,
                rd: Reg::A1,
                rs1: Reg::A2,
                imm: 63,
            },
            Op {
                op: AluOp::Sltu,
                rd: Reg::A3,
                rs1: Reg::A4,
                rs2: Reg::A5,
            },
            Op32 {
                op: AluOp::Sub,
                rd: Reg::S2,
                rs1: Reg::S3,
                rs2: Reg::S4,
            },
            MulDiv {
                op: MulDivOp::Remu,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            },
            MulDiv32 {
                op: MulDivOp::Divu,
                rd: Reg::T0,
                rs1: Reg::T1,
                rs2: Reg::T2,
            },
            LoadReserved {
                double: true,
                rd: Reg::A0,
                rs1: Reg::A1,
            },
            StoreConditional {
                double: false,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Amo {
                op: AmoOp::Maxu,
                double: true,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Fence,
            FenceI,
            Ecall,
            Ebreak,
            Mret,
            Sret,
            Wfi,
            Csr {
                op: CsrOp::Rs,
                rd: Reg::A0,
                csr: 0xC00,
                src: CsrSrc::Reg(Reg::Zero),
            },
            Csr {
                op: CsrOp::Rw,
                rd: Reg::Zero,
                csr: 0x300,
                src: CsrSrc::Imm(31),
            },
        ];
        for inst in cases {
            round_trip(inst, Xlen::Rv64, false);
        }
    }

    #[test]
    fn round_trip_fp_set() {
        use Inst::*;
        let cases = vec![
            FpLoad {
                fmt: FpFmt::S,
                rd: FReg(1),
                rs1: Reg::Sp,
                offset: 16,
            },
            FpLoad {
                fmt: FpFmt::D,
                rd: FReg(31),
                rs1: Reg::A0,
                offset: -8,
            },
            FpStore {
                fmt: FpFmt::S,
                rs2: FReg(2),
                rs1: Reg::Sp,
                offset: 20,
            },
            FpOp3 {
                fmt: FpFmt::S,
                op: FpOp::Add,
                rd: FReg(0),
                rs1: FReg(1),
                rs2: FReg(2),
            },
            FpOp3 {
                fmt: FpFmt::D,
                op: FpOp::Div,
                rd: FReg(3),
                rs1: FReg(4),
                rs2: FReg(5),
            },
            FpOp3 {
                fmt: FpFmt::S,
                op: FpOp::Sqrt,
                rd: FReg(6),
                rs1: FReg(7),
                rs2: FReg(0),
            },
            FpOp3 {
                fmt: FpFmt::D,
                op: FpOp::SgnJx,
                rd: FReg(8),
                rs1: FReg(9),
                rs2: FReg(10),
            },
            FpOp3 {
                fmt: FpFmt::S,
                op: FpOp::Max,
                rd: FReg(11),
                rs1: FReg(12),
                rs2: FReg(13),
            },
            FpFma {
                fmt: FpFmt::S,
                rd: FReg(1),
                rs1: FReg(2),
                rs2: FReg(3),
                rs3: FReg(4),
                negate_product: false,
                negate_addend: false,
            },
            FpFma {
                fmt: FpFmt::D,
                rd: FReg(1),
                rs1: FReg(2),
                rs2: FReg(3),
                rs3: FReg(4),
                negate_product: true,
                negate_addend: true,
            },
            FpCmp {
                fmt: FpFmt::S,
                cmp: crate::inst::FpCmp::Lt,
                rd: Reg::A0,
                rs1: FReg(1),
                rs2: FReg(2),
            },
            FpToInt {
                fmt: FpFmt::S,
                rd: Reg::A0,
                rs1: FReg(0),
                signed: true,
                wide: true,
            },
            IntToFp {
                fmt: FpFmt::D,
                rd: FReg(0),
                rs1: Reg::A0,
                signed: false,
                wide: false,
            },
            FpCvt {
                to: FpFmt::S,
                rd: FReg(1),
                rs1: FReg(2),
            },
            FpCvt {
                to: FpFmt::D,
                rd: FReg(1),
                rs1: FReg(2),
            },
            FpMvToInt {
                fmt: FpFmt::S,
                rd: Reg::A0,
                rs1: FReg(3),
            },
            FpMvFromInt {
                fmt: FpFmt::D,
                rd: FReg(3),
                rs1: Reg::A0,
            },
        ];
        for inst in cases {
            round_trip(inst, Xlen::Rv64, false);
        }
    }

    #[test]
    fn round_trip_xpulp_set() {
        use Inst::*;
        let cases = vec![
            LoadPost {
                width: LoadWidth::W,
                rd: Reg::A0,
                rs1: Reg::A1,
                offset: 4,
            },
            LoadPost {
                width: LoadWidth::Bu,
                rd: Reg::T0,
                rs1: Reg::T1,
                offset: -1,
            },
            StorePost {
                width: StoreWidth::H,
                rs2: Reg::A2,
                rs1: Reg::A3,
                offset: 2,
            },
            Mac {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                subtract: false,
            },
            Mac {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                subtract: true,
            },
            PulpAlu {
                op: PulpAluOp::Clip,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            PulpAlu {
                op: PulpAluOp::Abs,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::Zero,
            },
            HwLoop {
                op: HwLoopOp::Starti,
                loop_idx: 0,
                value: 8,
                rs1: Reg::Zero,
            },
            HwLoop {
                op: HwLoopOp::Endi,
                loop_idx: 1,
                value: 40,
                rs1: Reg::Zero,
            },
            HwLoop {
                op: HwLoopOp::Count,
                loop_idx: 0,
                value: 0,
                rs1: Reg::A5,
            },
            HwLoop {
                op: HwLoopOp::Counti,
                loop_idx: 1,
                value: 4095,
                rs1: Reg::Zero,
            },
            Simd {
                op: SimdOp::Sdotsp,
                fmt: SimdFmt::B,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                scalar_rs2: false,
            },
            Simd {
                op: SimdOp::Max,
                fmt: SimdFmt::H,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                scalar_rs2: true,
            },
            Simd {
                op: SimdOp::Avgu,
                fmt: SimdFmt::B,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                scalar_rs2: true,
            },
            SimdFp {
                op: SimdFpOp::Mac,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            SimdFp {
                op: SimdFpOp::DotpexS,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
        ];
        for inst in cases {
            round_trip(inst, Xlen::Rv32, true);
        }
    }
}
