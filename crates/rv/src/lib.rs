//! RISC-V instruction-set simulators for the HULK-V SoC model.
//!
//! HULK-V pairs two very different RISC-V machines:
//!
//! * the **CVA6 host**: a 6-stage, single-issue, in-order 64-bit core
//!   implementing RV64GC with Sv39 virtual memory, three privilege levels
//!   and physical memory protection — the Linux-capable side;
//! * the **PMCA cores**: eight CV32E4/RI5CY-class 32-bit cores with the
//!   Xpulp DSP extension — hardware loops, post-increment load/store,
//!   MAC, packed int8/int16 SIMD (including dot products) and packed FP16
//!   SIMD — the energy-efficiency side.
//!
//! This crate implements both as full decode–execute interpreters over a
//! shared [`Core`] engine, together with the toolchain needed to program
//! them from Rust: a programmatic assembler ([`Asm`]) with labels, an
//! encoder/decoder pair for every supported instruction, a CSR file,
//! an Sv39 page-table walker, and per-microarchitecture cost models.
//!
//! Standard RV32/RV64 IMAFD+Zicsr instructions use their real encodings.
//! The Xpulp extension instructions use a self-consistent encoding in the
//! custom-0/1/2/3 opcode spaces (documented in [`mod@decode`]); since this
//! crate provides both the assembler and the simulator, the pair forms a
//! closed toolchain exactly like the paper's LLVM fork + RTL pair.
//!
//! # Example
//!
//! ```
//! use hulkv_rv::{Asm, Core, CostModel, FlatBus, Reg, Xlen};
//!
//! // Sum 1..=10 on an RV64 core.
//! let mut a = Asm::new(Xlen::Rv64);
//! a.li(Reg::A0, 0);
//! a.li(Reg::T0, 10);
//! let top = a.label();
//! a.bind(top);
//! a.add(Reg::A0, Reg::A0, Reg::T0);
//! a.addi(Reg::T0, Reg::T0, -1);
//! a.bnez(Reg::T0, top);
//! a.ebreak();
//!
//! let mut bus = FlatBus::new(4096);
//! bus.load_words(0, &a.assemble()?);
//! let mut core = Core::new(Xlen::Rv64, CostModel::cva6());
//! core.run(&mut bus, 10_000)?;
//! assert_eq!(core.reg(Reg::A0), 55);
//! # Ok::<(), hulkv_rv::RvError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod compressed;
pub mod core;
pub mod csr;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod fp16;
pub mod hotspot;
pub mod inst;
pub mod mmu;
pub mod parse;
pub mod timing;

pub use crate::core::{Core, CoreBus, FlatBus, HpmEvent, StepOutcome, TraceEntry};
pub use asm::{Asm, Label};
pub use csr::{CsrFile, PrivMode};
pub use decode::{decode, fetch_parcel, Parcel};
pub use disasm::{disassemble, disassemble_word};
pub use encode::encode;
pub use hotspot::{hotspot_report, opcode_histogram};
pub use inst::{Inst, Reg, RvError, Xlen};
pub use parse::parse_program;
pub use timing::CostModel;
