//! Randomized (seeded, deterministic) tests for the RISC-V toolchain:
//! encode/decode mirrors, `li` correctness over arbitrary constants, and
//! SIMD lanes vs scalar reference semantics. These were property-based
//! tests; they now drive the same properties from `SplitMix64` so the
//! workspace has no external dependencies.

use hulkv_rv::inst::{
    AluOp, BranchCond, FReg, FpFmt, FpOp, Inst, LoadWidth, MulDivOp, PulpAluOp, Reg, SimdFmt,
    SimdOp, StoreWidth, Xlen,
};
use hulkv_rv::{decode, encode, Asm, Core, FlatBus};
use hulkv_sim::SplitMix64;

const CASES: u64 = 64;

fn any_reg(rng: &mut SplitMix64) -> Reg {
    Reg::from_index(rng.next_below(32) as u8)
}

fn any_freg(rng: &mut SplitMix64) -> FReg {
    FReg(rng.next_below(32) as u8)
}

fn any_alu_op(rng: &mut SplitMix64) -> AluOp {
    const OPS: [AluOp; 9] = [
        AluOp::Add,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
    ];
    OPS[rng.next_below(OPS.len() as u64) as usize]
}

/// A signed value uniform in `[-bound, bound)`.
fn imm(rng: &mut SplitMix64, bound: i64) -> i64 {
    rng.next_below(2 * bound as u64) as i64 - bound
}

fn any_inst_rv64(rng: &mut SplitMix64) -> Inst {
    match rng.next_below(9) {
        0 => Inst::Lui {
            rd: any_reg(rng),
            imm: imm(rng, 1 << 19),
        },
        1 => Inst::OpImm {
            op: AluOp::Add,
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: imm(rng, 2048),
        },
        2 => Inst::Op {
            op: any_alu_op(rng),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        3 => Inst::Load {
            width: LoadWidth::D,
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: imm(rng, 2048),
        },
        4 => Inst::Store {
            width: StoreWidth::W,
            rs2: any_reg(rng),
            rs1: any_reg(rng),
            offset: imm(rng, 2048),
        },
        5 => Inst::Branch {
            cond: BranchCond::Ltu,
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: imm(rng, 4096) & !1,
        },
        6 => Inst::Jal {
            rd: any_reg(rng),
            offset: imm(rng, 1 << 20) & !1,
        },
        7 => Inst::MulDiv {
            op: MulDivOp::Mulhsu,
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        _ => Inst::FpOp3 {
            fmt: FpFmt::D,
            op: FpOp::Mul,
            rd: any_freg(rng),
            rs1: any_freg(rng),
            rs2: any_freg(rng),
        },
    }
}

fn any_inst_xpulp(rng: &mut SplitMix64) -> Inst {
    match rng.next_below(4) {
        0 => Inst::LoadPost {
            width: LoadWidth::W,
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: imm(rng, 2048),
        },
        1 => Inst::Mac {
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            subtract: rng.next_below(2) == 1,
        },
        2 => Inst::Simd {
            op: SimdOp::Sdotsp,
            fmt: if rng.next_below(2) == 1 {
                SimdFmt::H
            } else {
                SimdFmt::B
            },
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            scalar_rs2: rng.next_below(2) == 1,
        },
        _ => Inst::PulpAlu {
            op: PulpAluOp::Clip,
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
    }
}

#[test]
fn encode_decode_round_trip_rv64() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for _ in 0..4 * CASES {
        let inst = any_inst_rv64(&mut rng);
        let w = encode(&inst).unwrap();
        let back = decode(w, Xlen::Rv64, false).expect("decodable");
        assert_eq!(back, inst);
    }
}

#[test]
fn encode_decode_round_trip_xpulp() {
    let mut rng = SplitMix64::new(0x5eed_0002);
    for _ in 0..4 * CASES {
        let inst = any_inst_xpulp(&mut rng);
        let w = encode(&inst).unwrap();
        let back = decode(w, Xlen::Rv32, true).expect("decodable");
        assert_eq!(back, inst);
    }
}

#[test]
fn li_materializes_any_constant() {
    let mut rng = SplitMix64::new(0x5eed_0003);
    for case in 0..CASES {
        // Mix full-range values with small and boundary ones.
        let v = match case % 4 {
            0 => rng.next_u64() as i64,
            1 => imm(&mut rng, 2048),
            2 => [i64::MIN, i64::MAX, -1, 0][rng.next_below(4) as usize],
            _ => (rng.next_u64() as i64) >> rng.next_below(64),
        };
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::A0, v);
        a.ebreak();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::cva6();
        core.run(&mut bus, 10_000).unwrap();
        assert_eq!(core.reg(Reg::A0) as i64, v);
    }
}

#[test]
fn alu_matches_rust_semantics() {
    let mut rng = SplitMix64::new(0x5eed_0004);
    for _ in 0..CASES / 2 {
        let a_val = rng.next_u64() as i64;
        let b_val = rng.next_u64() as i64;
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, a_val);
        a.li(Reg::T1, b_val);
        a.add(Reg::A0, Reg::T0, Reg::T1);
        a.sub(Reg::A1, Reg::T0, Reg::T1);
        a.xor(Reg::A2, Reg::T0, Reg::T1);
        a.sltu(Reg::A3, Reg::T0, Reg::T1);
        a.mul(Reg::A4, Reg::T0, Reg::T1);
        a.ebreak();
        let mut bus = FlatBus::new(8192);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::cva6();
        core.run(&mut bus, 10_000).unwrap();
        assert_eq!(core.reg(Reg::A0), (a_val as u64).wrapping_add(b_val as u64));
        assert_eq!(core.reg(Reg::A1), (a_val as u64).wrapping_sub(b_val as u64));
        assert_eq!(core.reg(Reg::A2), (a_val ^ b_val) as u64);
        assert_eq!(core.reg(Reg::A3), ((a_val as u64) < (b_val as u64)) as u64);
        assert_eq!(core.reg(Reg::A4), (a_val as u64).wrapping_mul(b_val as u64));
    }
}

#[test]
fn sdotsp_b_matches_scalar_reference() {
    let mut rng = SplitMix64::new(0x5eed_0005);
    for _ in 0..CASES {
        let av = rng.next_u32();
        let bv = rng.next_u32();
        let acc = rng.next_u32() as i32;
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, av as i64);
        a.li(Reg::T1, bv as i64);
        a.li(Reg::A0, acc as i64);
        a.pv_sdotsp_b(Reg::A0, Reg::T0, Reg::T1);
        a.ebreak();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::ri5cy(0);
        core.run(&mut bus, 10_000).unwrap();

        let mut expect = acc;
        for i in 0..4 {
            let x = ((av >> (8 * i)) as u8) as i8 as i32;
            let y = ((bv >> (8 * i)) as u8) as i8 as i32;
            expect = expect.wrapping_add(x.wrapping_mul(y));
        }
        assert_eq!(core.reg(Reg::A0) as u32, expect as u32);
    }
}

#[test]
fn simd_add_h_matches_scalar_reference() {
    let mut rng = SplitMix64::new(0x5eed_0006);
    for _ in 0..CASES {
        let av = rng.next_u32();
        let bv = rng.next_u32();
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, av as i64);
        a.li(Reg::T1, bv as i64);
        a.pv_add_h(Reg::A0, Reg::T0, Reg::T1);
        a.ebreak();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::ri5cy(0);
        core.run(&mut bus, 10_000).unwrap();

        let lo = (av as u16).wrapping_add(bv as u16);
        let hi = ((av >> 16) as u16).wrapping_add((bv >> 16) as u16);
        let expect = (lo as u32) | ((hi as u32) << 16);
        assert_eq!(core.reg(Reg::A0) as u32, expect);
    }
}

#[test]
fn fp16_round_trip_monotone() {
    use hulkv_rv::fp16::{f16_to_f32, f32_to_f16};
    let mut rng = SplitMix64::new(0x5eed_0007);
    for _ in 0..4 * CASES {
        let x = (rng.next_f64() * 2000.0 - 1000.0) as f32;
        let y = f16_to_f32(f32_to_f16(x));
        // Half precision keeps ~3 decimal digits in this range.
        assert!((x - y).abs() <= (x.abs() * 0.001).max(0.001), "{x} vs {y}");
    }
}

#[test]
fn undecodable_words_never_panic() {
    let mut rng = SplitMix64::new(0x5eed_0008);
    for _ in 0..16 * CASES {
        let w = rng.next_u32();
        let _ = decode(w, Xlen::Rv32, true);
        let _ = decode(w, Xlen::Rv64, false);
    }
}

#[test]
fn disassembly_parses_back_rv64() {
    let mut rng = SplitMix64::new(0x5eed_0009);
    for _ in 0..4 * CASES {
        let inst = any_inst_rv64(&mut rng);
        let text = hulkv_rv::disassemble(&inst);
        let words = hulkv_rv::parse_program(&text, Xlen::Rv64)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        assert_eq!(words.len(), 1, "`{text}` expanded");
        assert_eq!(decode(words[0], Xlen::Rv64, false), Some(inst), "`{text}`");
    }
}

#[test]
fn disassembly_parses_back_xpulp() {
    let mut rng = SplitMix64::new(0x5eed_000a);
    for _ in 0..4 * CASES {
        let inst = any_inst_xpulp(&mut rng);
        let text = hulkv_rv::disassemble(&inst);
        let words = hulkv_rv::parse_program(&text, Xlen::Rv32)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        assert_eq!(words.len(), 1, "`{text}` expanded");
        assert_eq!(decode(words[0], Xlen::Rv32, true), Some(inst), "`{text}`");
    }
}
