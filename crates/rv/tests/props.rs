//! Property-based tests for the RISC-V toolchain: encode/decode mirrors,
//! `li` correctness over arbitrary constants, and SIMD lanes vs scalar
//! reference semantics.

use hulkv_rv::inst::{
    AluOp, BranchCond, FReg, FpFmt, FpOp, Inst, LoadWidth, MulDivOp, PulpAluOp, Reg, SimdFmt,
    SimdOp, StoreWidth, Xlen,
};
use hulkv_rv::{decode, encode, Asm, Core, FlatBus};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::from_index)
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(FReg)
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn any_inst_rv64() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_reg(), -(1i64 << 19)..(1i64 << 19)).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (any_reg(), any_reg(), -2048i64..2048).prop_map(|(rd, rs1, imm)| Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm
        }),
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Op { op, rd, rs1, rs2 }),
        (any_reg(), any_reg(), -2048i64..2048).prop_map(|(rd, rs1, offset)| Inst::Load {
            width: LoadWidth::D,
            rd,
            rs1,
            offset
        }),
        (any_reg(), any_reg(), -2048i64..2048).prop_map(|(rs2, rs1, offset)| Inst::Store {
            width: StoreWidth::W,
            rs2,
            rs1,
            offset
        }),
        (any_reg(), any_reg(), -4096i64..4096).prop_map(|(rs1, rs2, off)| Inst::Branch {
            cond: BranchCond::Ltu,
            rs1,
            rs2,
            offset: off & !1
        }),
        (any_reg(), -(1i64 << 20)..(1i64 << 20)).prop_map(|(rd, off)| Inst::Jal {
            rd,
            offset: off & !1
        }),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Inst::MulDiv {
            op: MulDivOp::Mulhsu,
            rd,
            rs1,
            rs2
        }),
        (any_freg(), any_freg(), any_freg()).prop_map(|(rd, rs1, rs2)| Inst::FpOp3 {
            fmt: FpFmt::D,
            op: FpOp::Mul,
            rd,
            rs1,
            rs2
        }),
    ]
}

fn any_inst_xpulp() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (any_reg(), any_reg(), -2048i64..2048).prop_map(|(rd, rs1, offset)| Inst::LoadPost {
            width: LoadWidth::W,
            rd,
            rs1,
            offset
        }),
        (any_reg(), any_reg(), any_reg(), any::<bool>()).prop_map(|(rd, rs1, rs2, subtract)| {
            Inst::Mac { rd, rs1, rs2, subtract }
        }),
        (any_reg(), any_reg(), any_reg(), any::<bool>(), any::<bool>()).prop_map(
            |(rd, rs1, rs2, h, sc)| Inst::Simd {
                op: SimdOp::Sdotsp,
                fmt: if h { SimdFmt::H } else { SimdFmt::B },
                rd,
                rs1,
                rs2,
                scalar_rs2: sc
            }
        ),
        (any_reg(), any_reg(), any_reg()).prop_map(|(rd, rs1, rs2)| Inst::PulpAlu {
            op: PulpAluOp::Clip,
            rd,
            rs1,
            rs2
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip_rv64(inst in any_inst_rv64()) {
        let w = encode(&inst).unwrap();
        let back = decode(w, Xlen::Rv64, false).expect("decodable");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn encode_decode_round_trip_xpulp(inst in any_inst_xpulp()) {
        let w = encode(&inst).unwrap();
        let back = decode(w, Xlen::Rv32, true).expect("decodable");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn li_materializes_any_constant(v in any::<i64>()) {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::A0, v);
        a.ebreak();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::cva6();
        core.run(&mut bus, 10_000).unwrap();
        prop_assert_eq!(core.reg(Reg::A0) as i64, v);
    }

    #[test]
    fn alu_matches_rust_semantics(a_val in any::<i64>(), b_val in any::<i64>()) {
        let mut a = Asm::new(Xlen::Rv64);
        a.li(Reg::T0, a_val);
        a.li(Reg::T1, b_val);
        a.add(Reg::A0, Reg::T0, Reg::T1);
        a.sub(Reg::A1, Reg::T0, Reg::T1);
        a.xor(Reg::A2, Reg::T0, Reg::T1);
        a.sltu(Reg::A3, Reg::T0, Reg::T1);
        a.mul(Reg::A4, Reg::T0, Reg::T1);
        a.ebreak();
        let mut bus = FlatBus::new(8192);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::cva6();
        core.run(&mut bus, 10_000).unwrap();
        prop_assert_eq!(core.reg(Reg::A0), (a_val as u64).wrapping_add(b_val as u64));
        prop_assert_eq!(core.reg(Reg::A1), (a_val as u64).wrapping_sub(b_val as u64));
        prop_assert_eq!(core.reg(Reg::A2), (a_val ^ b_val) as u64);
        prop_assert_eq!(core.reg(Reg::A3), ((a_val as u64) < (b_val as u64)) as u64);
        prop_assert_eq!(core.reg(Reg::A4), (a_val as u64).wrapping_mul(b_val as u64));
    }

    #[test]
    fn sdotsp_b_matches_scalar_reference(av in any::<u32>(), bv in any::<u32>(), acc in any::<i32>()) {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, av as i64);
        a.li(Reg::T1, bv as i64);
        a.li(Reg::A0, acc as i64);
        a.pv_sdotsp_b(Reg::A0, Reg::T0, Reg::T1);
        a.ebreak();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::ri5cy(0);
        core.run(&mut bus, 10_000).unwrap();

        let mut expect = acc;
        for i in 0..4 {
            let x = ((av >> (8 * i)) as u8) as i8 as i32;
            let y = ((bv >> (8 * i)) as u8) as i8 as i32;
            expect = expect.wrapping_add(x.wrapping_mul(y));
        }
        prop_assert_eq!(core.reg(Reg::A0) as u32, expect as u32);
    }

    #[test]
    fn simd_add_h_matches_scalar_reference(av in any::<u32>(), bv in any::<u32>()) {
        let mut a = Asm::new(Xlen::Rv32);
        a.li(Reg::T0, av as i64);
        a.li(Reg::T1, bv as i64);
        a.pv_add_h(Reg::A0, Reg::T0, Reg::T1);
        a.ebreak();
        let mut bus = FlatBus::new(4096);
        bus.load_words(0, &a.assemble().unwrap());
        let mut core = Core::ri5cy(0);
        core.run(&mut bus, 10_000).unwrap();

        let lo = (av as u16).wrapping_add(bv as u16);
        let hi = ((av >> 16) as u16).wrapping_add((bv >> 16) as u16);
        let expect = (lo as u32) | ((hi as u32) << 16);
        prop_assert_eq!(core.reg(Reg::A0) as u32, expect);
    }

    #[test]
    fn fp16_round_trip_monotone(x in -1000.0f32..1000.0) {
        use hulkv_rv::fp16::{f16_to_f32, f32_to_f16};
        let y = f16_to_f32(f32_to_f16(x));
        // Half precision keeps ~3 decimal digits in this range.
        prop_assert!((x - y).abs() <= (x.abs() * 0.001).max(0.001));
    }

    #[test]
    fn undecodable_words_never_panic(w in any::<u32>()) {
        let _ = decode(w, Xlen::Rv32, true);
        let _ = decode(w, Xlen::Rv64, false);
    }

    #[test]
    fn disassembly_parses_back_rv64(inst in any_inst_rv64()) {
        let text = hulkv_rv::disassemble(&inst);
        let words = hulkv_rv::parse_program(&text, Xlen::Rv64)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(words.len(), 1, "`{}` expanded", text);
        prop_assert_eq!(decode(words[0], Xlen::Rv64, false), Some(inst), "`{}`", text);
    }

    #[test]
    fn disassembly_parses_back_xpulp(inst in any_inst_xpulp()) {
        let text = hulkv_rv::disassemble(&inst);
        let words = hulkv_rv::parse_program(&text, Xlen::Rv32)
            .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
        prop_assert_eq!(words.len(), 1, "`{}` expanded", text);
        prop_assert_eq!(decode(words[0], Xlen::Rv32, true), Some(inst), "`{}`", text);
    }
}
