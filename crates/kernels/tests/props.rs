//! Randomized (seeded, deterministic) tests of the generated kernels: for
//! random problem sizes and random inputs, the parallel Xpulp programs
//! must produce exactly the golden results through the full SoC stack.

use hulkv::{HulkV, SocConfig};
use hulkv_cluster::TCDM_BASE;
use hulkv_kernels::{data, golden};
use hulkv_rv::Reg;
use hulkv_sim::SplitMix64;

const CASES: u64 = 12;

fn fresh_soc() -> HulkV {
    HulkV::new(SocConfig::default()).expect("soc")
}

#[test]
fn cluster_matmul_i8_matches_golden() {
    let mut rng = SplitMix64::new(0x3a7_3a7);
    for _ in 0..CASES {
        let n = (1 + rng.next_below(6) as usize) * 4;
        let cores = 1 + rng.next_below(8) as usize;
        let seed = rng.next_u64();
        let a = data::i8_inputs(seed, n * n);
        let b = data::i8_inputs(seed ^ 0xFFFF, n * n);
        let mut soc = fresh_soc();
        soc.cluster_mut()
            .tcdm_write(0, &data::i8_bytes(&a))
            .unwrap();
        soc.cluster_mut()
            .tcdm_write((n * n) as u64, &data::i8_bytes(&b))
            .unwrap();

        let words = matmul_i8_program(n);
        let kernel = soc.register_kernel(&words).unwrap();
        let c_off = (2 * n * n) as u64;
        soc.offload(
            kernel,
            &[
                (Reg::A0, TCDM_BASE),
                (Reg::A1, TCDM_BASE + (n * n) as u64),
                (Reg::A2, TCDM_BASE + c_off),
                (Reg::A3, n as u64),
                (Reg::A7, cores as u64),
            ],
            cores,
            100_000_000,
        )
        .unwrap();

        let mut out = vec![0u8; n * n * 4];
        soc.cluster_mut().tcdm_read(c_off, &mut out).unwrap();
        assert_eq!(data::i32_from_bytes(&out), golden::matmul_i8(&a, &b, n));
    }
}

#[test]
fn cluster_fir_matches_golden() {
    let mut rng = SplitMix64::new(0xf1f1);
    for _ in 0..CASES {
        let n = 8 + rng.next_below(192) as usize;
        let taps = (1 + rng.next_below(8) as usize) * 2;
        let seed = rng.next_u64();
        let x = data::i16_inputs(seed, n + taps - 1);
        let c = data::i16_inputs(seed ^ 0xAB, taps);
        let mut soc = fresh_soc();
        soc.cluster_mut()
            .tcdm_write(0, &data::i16_bytes(&x))
            .unwrap();
        let c_off = (2 * (n + taps - 1)) as u64;
        soc.cluster_mut()
            .tcdm_write(c_off, &data::i16_bytes(&c))
            .unwrap();
        let y_off = (c_off + 2 * taps as u64 + 63) & !63;

        let kernel = soc.register_kernel(&fir_program(taps)).unwrap();
        soc.offload(
            kernel,
            &[
                (Reg::A0, TCDM_BASE),
                (Reg::A1, TCDM_BASE + c_off),
                (Reg::A2, TCDM_BASE + y_off),
                (Reg::A3, n as u64),
                (Reg::A7, 8),
            ],
            8,
            100_000_000,
        )
        .unwrap();

        let mut out = vec![0u8; n * 4];
        soc.cluster_mut().tcdm_read(y_off, &mut out).unwrap();
        assert_eq!(data::i32_from_bytes(&out), &golden::fir_i16(&x, &c)[..n]);
    }
}

#[test]
fn cluster_maxpool_matches_golden() {
    let mut rng = SplitMix64::new(0x9001);
    for _ in 0..CASES {
        let h = (1 + rng.next_below(9) as usize) * 2;
        let w = (1 + rng.next_below(7) as usize) * 4;
        let seed = rng.next_u64();
        let x = data::i8_inputs(seed, h * w);
        let mut soc = fresh_soc();
        soc.cluster_mut()
            .tcdm_write(0, &data::i8_bytes(&x))
            .unwrap();
        let out_off = ((h * w) as u64 + 63) & !63;

        let kernel = soc.register_kernel(&maxpool_program()).unwrap();
        soc.offload(
            kernel,
            &[
                (Reg::A0, TCDM_BASE),
                (Reg::A2, TCDM_BASE + out_off),
                (Reg::A3, h as u64),
                (Reg::A4, w as u64),
                (Reg::A7, 8),
            ],
            8,
            100_000_000,
        )
        .unwrap();

        let mut out = vec![0u8; h * w / 4];
        soc.cluster_mut().tcdm_read(out_off, &mut out).unwrap();
        assert_eq!(data::i8_from_bytes(&out), golden::maxpool2x2_i8(&x, h, w));
    }
}

fn matmul_i8_program(n: usize) -> Vec<u32> {
    hulkv_kernels::suite::cluster_program_for_tests(hulkv_kernels::suite::Kernel::MatMulI8, n)
}

fn fir_program(taps: usize) -> Vec<u32> {
    hulkv_kernels::suite::cluster_program_for_tests(hulkv_kernels::suite::Kernel::FirI16, taps)
}

fn maxpool_program() -> Vec<u32> {
    hulkv_kernels::suite::cluster_program_for_tests(hulkv_kernels::suite::Kernel::MaxPoolI8, 0)
}
